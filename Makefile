# Tier-1 verification plus the race-checked variant the concurrency in
# internal/eval requires. `make check` is the gate every change should pass.

GO ?= go

.PHONY: check vet build test race bench bench-scan bench-eval

check: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The evaluation harness fans trials across goroutines; always race-check it.
race:
	$(GO) test -race ./...

# Full benchmark sweep (regenerates every table/figure on the scaled-down
# protocol).
bench:
	$(GO) test -bench . -benchtime 1x -run TestBenchFixtures .

# Perf-trajectory benches for the PR acceptance numbers.
bench-scan:
	$(GO) test -bench 'BenchmarkScan$$' -run TestBenchFixtures .

bench-eval:
	$(GO) test -bench 'BenchmarkEvaluateParallel$$' -benchtime 2x -run TestBenchFixtures .
