# Tier-1 verification plus the race-checked variant the concurrency in
# internal/eval requires. `make check` is the gate every change should pass.

GO ?= go

.PHONY: check vet staticcheck build test race race-telemetry race-hub race-cluster race-drift race-timing race-scenarios bench bench-scan bench-eval bench-hub bench-recovery bench-cluster bench-drift bench-timing bench-scenarios fuzz-smoke perf-gate

check: vet staticcheck build race-telemetry race-hub race-cluster race-drift race-timing race-scenarios race fuzz-smoke perf-gate

vet:
	$(GO) vet ./...

# staticcheck is optional tooling: run it when the binary is on PATH, skip
# with a notice otherwise so `make check` works in hermetic containers.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The evaluation harness fans trials across goroutines; always race-check it.
race:
	$(GO) test -race ./...

# Fast focused gate on the metrics registry: every pipeline stage hammers
# these counters concurrently, so its race tests run first and by name.
race-telemetry:
	$(GO) test -race -count 2 ./internal/telemetry/

# The multi-tenant hub is the most concurrency-dense package (sharded
# worker pool, live resize, eviction racing ingestion); gate it by name.
race-hub:
	$(GO) test -race ./internal/hub/...

# The federated cluster's seeded chaos drill: three nodes, dropped and
# slowed links, one partition, one live migration, one SIGKILL mid-ingest —
# every home must end bit-identical to a solo gateway, race-checked.
race-cluster:
	$(GO) test -race -run 'TestCluster' ./internal/cluster/

# Online-adaptation drill under the race detector: adapter admission and
# decay, plus the gateway's adapt → checkpoint → restore → rollback path,
# which must reproduce detector output and Explain traces bit for bit.
race-drift:
	$(GO) test -race -run 'Adapt' ./internal/core/ ./internal/gateway/

# Timing-check drill under the race detector: the pluggable check pipeline,
# interval-sketch reinforcement, and the checkpoint path that must resume
# dwell/last-fire state bit for bit.
race-timing:
	$(GO) test -race -run 'Timing' ./internal/core/ ./internal/gateway/ ./internal/faults/

# Multi-fault drill under the race detector: concurrent identification
# episodes, the scenario pipeline (ghosts, replays, occupancy views), and
# the mid-storm checkpoint kill that must resume two open episodes bit for
# bit.
race-scenarios:
	$(GO) test -race -run 'MultiFault|Scenario|Occupancy|Ghost' ./internal/core/ ./internal/gateway/ ./internal/faults/ ./internal/simhome/

# Full benchmark sweep (regenerates every table/figure on the scaled-down
# protocol).
bench:
	$(GO) test -bench . -benchtime 1x -run TestBenchFixtures .

# Perf-trajectory benches for the PR acceptance numbers.
bench-scan:
	$(GO) test -bench 'BenchmarkScan$$' -run TestBenchFixtures .

bench-eval:
	$(GO) test -bench 'BenchmarkEvaluateParallel$$' -benchtime 2x -run TestBenchFixtures .
	$(GO) run ./cmd/dice-eval -exp latency -trials 8 -benchjson BENCH_eval.json

# Multi-home hub throughput (binary batch path vs JSON baseline)
# → BENCH_hub.json.
bench-hub:
	$(GO) run ./cmd/dice-eval -exp hub

# WAL fsync pricing + crash-recovery timing → BENCH_recovery.json.
bench-recovery:
	$(GO) run ./cmd/dice-eval -exp recovery

# Federated cluster drill: migration + node-kill fail-over latency and
# cluster-vs-solo efficiency → BENCH_cluster.json.
bench-cluster:
	$(GO) run ./cmd/dice-eval -exp cluster

# Online-adaptation drill: static vs adaptive detector on a drifted stream,
# plus post-adaptation fault injection → BENCH_drift.json. The run itself
# errors when the adaptive arm misses a fault or fails to beat the static
# arm's false alarms.
bench-drift:
	$(GO) run ./cmd/dice-eval -exp drift

# Timing-check drill: structural-only vs timing-aware arms on stream-stretch
# faults → BENCH_timing.json. The run itself errors when the timing arm
# catches <80% of the structurally missed faults or flags any clean window.
bench-timing:
	$(GO) run ./cmd/dice-eval -exp timing

# Adversarial scenario library: per-scenario detection/identification
# precision-recall + benign false-alarm floor → BENCH_scenarios.json. The
# run itself errors on any clean/benign false alarm or when 2-fault storms
# name every injected device in <80% of trials.
bench-scenarios:
	$(GO) run ./cmd/dice-eval -exp scenarios

# Short fuzz passes over the wire decoders (binary batch + CoAP) and the
# interval-sketch codec. Long campaigns run the same targets with a bigger
# -fuzztime.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz 'FuzzDecodeBatch$$' -fuzztime 5s ./internal/wire/
	$(GO) test -run '^$$' -fuzz 'FuzzMessageUnmarshal$$' -fuzztime 5s ./internal/coap/
	$(GO) test -run '^$$' -fuzz 'FuzzIntervalSketch$$' -fuzztime 5s ./internal/markov/

# CI perf gate: regenerate the hub benchmark and fail on a >15% regression
# of the binary-path speedup vs the committed BENCH_hub.json. The gate
# compares the binary/JSON ratio, not raw events/sec, so it is stable
# across machines of different speeds.
perf-gate:
	$(GO) run ./cmd/dice-eval -exp hub -hubjson /tmp/dice-benchdiff-hub.json >/dev/null
	$(GO) run ./cmd/dice-benchdiff -mode hub -baseline BENCH_hub.json -fresh /tmp/dice-benchdiff-hub.json
	$(GO) run ./cmd/dice-eval -exp cluster -clusterjson /tmp/dice-benchdiff-cluster.json >/dev/null
	$(GO) run ./cmd/dice-benchdiff -mode cluster -baseline BENCH_cluster.json -fresh /tmp/dice-benchdiff-cluster.json -tolerance 0.4
	$(GO) run ./cmd/dice-eval -exp drift -driftjson /tmp/dice-benchdiff-drift.json >/dev/null
	$(GO) run ./cmd/dice-benchdiff -mode drift -baseline BENCH_drift.json -fresh /tmp/dice-benchdiff-drift.json
	$(GO) run ./cmd/dice-eval -exp timing -timingjson /tmp/dice-benchdiff-timing.json >/dev/null
	$(GO) run ./cmd/dice-benchdiff -mode timing -baseline BENCH_timing.json -fresh /tmp/dice-benchdiff-timing.json
	$(GO) run ./cmd/dice-eval -exp scenarios -scenariosjson /tmp/dice-benchdiff-scenarios.json >/dev/null
	$(GO) run ./cmd/dice-benchdiff -mode scenarios -baseline BENCH_scenarios.json -fresh /tmp/dice-benchdiff-scenarios.json
