// Package dice is the public face of this repository: a from-scratch Go
// implementation of DICE ("Detecting and Identifying Faulty IoT Devices in
// Smart Home with Context Extraction", DSN 2018).
//
// DICE watches a smart home's sensor and actuator stream and raises an
// alert naming the probable faulty device. It works in two phases:
//
//   - Precomputation: a fault-free recording is windowed into one-minute
//     sensor state sets; every unique state set becomes a *group*, and
//     three Markov transition matrices (group→group, group→actuator,
//     actuator→group) capture the home's temporal context.
//   - Real time: each live window passes a correlation check (does the
//     state set match a known group?) and a transition check (is this
//     transition possible?); on a violation, an identification loop
//     intersects per-window suspect sets until at most numThre devices
//     remain.
//
// Quick start:
//
//	reg := dice.NewRegistry()
//	motion := reg.MustAdd("motion-kitchen", dice.Binary, dice.Motion, "kitchen")
//	...
//	layout := dice.NewLayout(reg)
//
//	trainer := dice.NewTrainer(layout, time.Minute)
//	// pass 1 over fault-free history:
//	for _, w := range history { trainer.Calibrate(w) }
//	trainer.FinishCalibration()
//	// pass 2:
//	for _, w := range history { trainer.Learn(w) }
//	ctx, _ := trainer.Context()
//
//	det, _ := dice.New(ctx)
//	for _, w := range live {
//	    res, _ := det.Process(w)
//	    if res.Alert != nil { fmt.Println("faulty:", res.Alert.Devices) }
//	}
//
// The subpackages under internal/ hold the substrates: the smart-home
// simulator used for evaluation (internal/simhome), fault injection
// (internal/faults), the evaluation protocol for every table and figure of
// the paper (internal/eval), prior-art baselines (internal/baseline), and
// a CoAP gateway runtime (internal/coap, internal/gateway).
package dice

import (
	"io"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/event"
	"repro/internal/gateway"
	"repro/internal/hub"
	"repro/internal/telemetry"
	"repro/internal/wal"
	"repro/internal/window"
	"repro/internal/wire"
)

// Re-exported device model.
type (
	// Registry holds the home's devices with stable IDs.
	Registry = device.Registry
	// Device describes one registered device.
	Device = device.Device
	// DeviceID identifies a device within a registry.
	DeviceID = device.ID
	// Kind classifies a device (Binary, Numeric, Actuator).
	Kind = device.Kind
	// DeviceType is the physical modality (Motion, Light, ...).
	DeviceType = device.Type
	// Layout maps devices to state-set slots.
	Layout = window.Layout
	// Observation is one fixed-duration window of readings.
	Observation = window.Observation
	// Builder folds an event stream into observations.
	Builder = window.Builder
)

// Device kinds.
const (
	Binary   = device.Binary
	Numeric  = device.Numeric
	Actuator = device.Actuator
)

// Common device types (the full set lives in internal/device).
const (
	Motion      = device.Motion
	DoorContact = device.DoorContact
	PressureMat = device.PressureMat
	Light       = device.Light
	Temperature = device.Temperature
	Humidity    = device.Humidity
	Sound       = device.Sound
	SmartBulb   = device.SmartBulb
	SmartSwitch = device.SmartSwitch
)

// Re-exported algorithm types.
type (
	// Config tunes the detector; the zero value uses the paper's settings.
	Config = core.Config
	// Context is the precomputed correlation + transition context.
	Context = core.Context
	// Trainer runs the precomputation phase.
	Trainer = core.Trainer
	// Detector runs the real-time phase.
	Detector = core.Detector
	// Result is the per-window detector output.
	Result = core.Result
	// Alert names the probable faulty devices.
	Alert = core.Alert
	// CheckKind names which check flagged a window.
	CheckKind = core.CheckKind
	// Cause is the canonical name for CheckKind in new code.
	Cause = core.Cause
	// Explain is the decision trace attached to each alert.
	Explain = core.Explain
	// ExplainStep is one informative window within an Explain trace.
	ExplainStep = core.ExplainStep
	// Option configures a Detector at construction (see New).
	Option = core.Option
	// Check is one pluggable stage of the detector's violation pipeline;
	// DefaultChecks returns the built-in sequence and WithChecks replaces it.
	Check = core.Check
	// CheckInput is the per-window evidence a Check inspects.
	CheckInput = core.CheckInput
	// Finding is a Check's verdict: the cause, the suspects, and (for the
	// timing check) the interval evidence.
	Finding = core.Finding
	// TimingEvidence explains a cause=timing flag: the observed gap, the
	// learned band, and the edge's histogram.
	TimingEvidence = core.TimingEvidence
	// ContextBuilder is the sole mutation path for contexts: it accumulates
	// groups and transitions, then Build seals an immutable Context version.
	ContextBuilder = core.ContextBuilder
	// Adapter evolves a context online from confirmed-non-faulty windows,
	// publishing each adaptation as a new immutable Context version.
	Adapter = core.Adapter
	// AdapterOption configures an Adapter (WithAdmitAfter, WithDecay, ...).
	AdapterOption = core.AdapterOption
	// AdapterState is the adapter's checkpointable candidate ledger.
	AdapterState = core.AdapterState
	// Telemetry is the zero-dependency metrics registry detectors and
	// gateways report into; its WriteText emits Prometheus text format.
	Telemetry = telemetry.Registry
)

// Violation causes. CheckTiming flags a structurally valid transition whose
// inter-window gap falls outside the interval band learned during training
// (Cause.Family() == FamilyTiming). CheckGhost flags actuations reported
// under a device ID the trained layout never issued — a spoofed node.
const (
	CheckNone        = core.CheckNone
	CheckCorrelation = core.CheckCorrelation
	CheckG2G         = core.CheckG2G
	CheckG2A         = core.CheckG2A
	CheckA2G         = core.CheckA2G
	CheckLiveness    = core.CheckLiveness
	CheckTiming      = core.CheckTiming
	CheckGhost       = core.CheckGhost
)

// Cause families, as returned by Cause.Family().
const (
	FamilyCorrelation = core.FamilyCorrelation
	FamilyTransition  = core.FamilyTransition
	FamilyLiveness    = core.FamilyLiveness
	FamilyTiming      = core.FamilyTiming
	FamilyGhost       = core.FamilyGhost
)

// Context payload schema versions: v1 files predate interval sketches and
// load as timing-incapable; v2 carries them (Context.TimingCapable).
const (
	ContextSchemaV1 = core.ContextSchemaV1
	ContextSchemaV2 = core.ContextSchemaV2
)

// DefaultChecks returns the built-in check pipeline in evaluation order:
// ghost, correlation, G2G, G2A, A2G, timing. Pass a reordered or filtered
// slice to WithChecks to reshape the pipeline.
func DefaultChecks() []Check { return core.DefaultChecks() }

// DefaultDuration is the paper's empirically optimal window length.
const DefaultDuration = core.DefaultDuration

// NewRegistry returns an empty device registry.
func NewRegistry() *Registry { return device.NewRegistry() }

// NewLayout derives the state-set layout from a registry.
func NewLayout(reg *Registry) *Layout { return window.NewLayout(reg) }

// NewBuilder returns a window builder with the given duration.
func NewBuilder(layout *Layout, duration time.Duration) *Builder {
	return window.NewBuilder(layout, duration)
}

// NewTrainer starts a precomputation phase.
func NewTrainer(layout *Layout, duration time.Duration) *Trainer {
	return core.NewTrainer(layout, duration)
}

// TrainWindows runs both precomputation passes over a window slice.
func TrainWindows(layout *Layout, duration time.Duration, obs []*Observation) (*Context, error) {
	return core.TrainWindows(layout, duration, obs)
}

// New builds a real-time detector over a trained context with functional
// options (WithConfig, WithTelemetry, WithMaxFaults, ...).
func New(ctx *Context, opts ...Option) (*Detector, error) {
	return core.New(ctx, opts...)
}

// NewTelemetry returns an empty metrics registry to pass to WithTelemetry.
func NewTelemetry() *Telemetry { return telemetry.NewRegistry() }

// Detector options, re-exported from internal/core. WithChecks replaces the
// check pipeline; WithTiming, WithTimingBand, WithTimingQuantiles, and
// WithTimingFlagFast tune the timing check (it runs only against contexts
// whose payload carries interval sketches — Context.TimingCapable).
var (
	WithConfig            = core.WithConfig
	WithDuration          = core.WithDuration
	WithMaxFaults         = core.WithMaxFaults
	WithCandidateDistance = core.WithCandidateDistance
	WithWeights           = core.WithWeights
	WithAttest            = core.WithAttest
	WithTelemetry         = core.WithTelemetry
	WithChecks            = core.WithChecks
	WithTiming            = core.WithTiming
	WithTimingBand        = core.WithTimingBand
	WithTimingQuantiles   = core.WithTimingQuantiles
	WithTimingFlagFast    = core.WithTimingFlagFast
)

// LoadContext reads a context saved with Context.Save and binds it to the
// layout. Both the checksummed DICECKS1 envelope and the legacy plain-JSON
// form load; integrity failures surface as ErrCorruptContext.
func LoadContext(r io.Reader, layout *Layout) (*Context, error) {
	return core.LoadContext(r, layout)
}

// ErrCorruptContext marks a saved context that failed its checksum or
// fingerprint verification.
var ErrCorruptContext = core.ErrCorruptContext

// NewContextBuilder starts an empty epoch-0 context (Trainer does this for
// you; use Context.Derive to adapt an existing version).
func NewContextBuilder(layout *Layout, duration time.Duration, valueThre []float64) (*ContextBuilder, error) {
	return core.NewContextBuilder(layout, duration, valueThre)
}

// NewAdapter returns an online context adapter over a trained context.
func NewAdapter(base *Context, opts ...AdapterOption) (*Adapter, error) {
	return core.NewAdapter(base, opts...)
}

// Adapter options, re-exported from internal/core.
var (
	WithAdmitAfter       = core.WithAdmitAfter
	WithDecay            = core.WithDecay
	WithMaxPending       = core.WithMaxPending
	WithAdapterTelemetry = core.WithAdapterTelemetry
)

// Re-exported multi-tenant hub. A Hub runs many homes behind one process:
// each registered home owns a private detector pipeline, events are routed
// to it on a sharded worker pool (per-home order preserved), and detection
// output is bit-identical to running the home on its own gateway. See
// internal/hub for the full API (CoAP front end, HTTP observability).
type (
	// Hub multiplexes per-home detectors behind one ingress.
	Hub = hub.Hub
	// Tenant is the handle to one registered home.
	Tenant = hub.Tenant
	// TenantAlert is a gateway alert tagged with its home.
	TenantAlert = hub.TenantAlert
	// HubOption configures a Hub at construction.
	HubOption = hub.Option
	// Event is one raw timestamped device reading, the unit of hub
	// ingestion (Hub.Ingest / Hub.TryIngest).
	Event = event.Event
	// GatewayOption configures one tenant's gateway at registration.
	GatewayOption = gateway.Option
	// GatewayStats is a snapshot of one tenant's pipeline counters.
	GatewayStats = gateway.Stats
	// ContextInfo describes a tenant's active context version (epoch,
	// fingerprint, lineage) and its online-adaptation progress; served on
	// GET /tenants/{home}/context.
	ContextInfo = gateway.ContextInfo
)

// NewHub builds an empty hub; homes arrive via Register.
func NewHub(opts ...HubOption) (*Hub, error) { return hub.New(opts...) }

// Hub options, re-exported from internal/hub. The names carry a Hub/Shard
// prefix where the bare core/gateway option name is already taken.
var (
	WithShards             = hub.WithShards
	WithShardQueueDepth    = hub.WithQueueDepth
	WithHubAlertBuffer     = hub.WithAlertBuffer
	WithCheckpointDir      = hub.WithCheckpointDir
	WithCheckpointPaths    = hub.WithCheckpointPaths
	WithCheckpointInterval = hub.WithCheckpointInterval
	WithIdleEviction       = hub.WithIdleEviction
	WithHubTelemetry       = hub.WithTelemetry
	WithWALDir             = hub.WithWALDir
	WithWALSync            = hub.WithWALSync
	WithSupervision        = hub.WithSupervision
	WithRestartBackoff     = hub.WithRestartBackoff
	WithIngestDeadline     = hub.WithIngestDeadline
)

// Self-healing hub surface: a tenant whose pipeline panics is quarantined,
// its poison op dead-lettered, and the tenant rebuilt from checkpoint +
// write-ahead log while its siblings keep running. Health reports where a
// home sits in that state machine (also served on GET
// /tenants/{home}/health); the WAL fsync policies price durability against
// ingest throughput.
type (
	// TenantHealth is one home's supervision state.
	TenantHealth = hub.Health
	// WALSyncPolicy controls when WAL appends reach stable storage.
	WALSyncPolicy = wal.SyncPolicy
)

// Supervision states and WAL fsync policies, re-exported.
const (
	TenantHealthy     = hub.HealthHealthy
	TenantDegraded    = hub.HealthDegraded
	TenantMigrating   = hub.HealthMigrating
	TenantQuarantined = hub.HealthQuarantined
	TenantEvicted     = hub.HealthEvicted

	WALSyncAlways = wal.SyncAlways
	WALSyncBatch  = wal.SyncBatch
	WALSyncNever  = wal.SyncNever
)

// Hub overload errors: ErrShed is TryIngest's full-queue rejection,
// ErrDeadline is blocking Ingest giving up after the configured deadline,
// ErrTenantMigrating is an ingest bouncing off a home mid-handoff (retry
// after the adoption lands).
var (
	ErrShed            = hub.ErrShed
	ErrDeadline        = hub.ErrDeadline
	ErrTenantMigrating = hub.ErrMigrating
)

// ParseWALSyncPolicy maps the -fsync flag values (always|batch|never) onto
// policies.
func ParseWALSyncPolicy(s string) (WALSyncPolicy, error) { return wal.ParseSyncPolicy(s) }

// Tenant gateway options, re-exported from internal/gateway for use with
// Hub.Register. WithGatewayAdaptation turns on online context adaptation
// for the tenant: the detector's context evolves behind the versioned,
// immutable Context API (admission after sustained observation, exponential
// decay), every tenant keeps its own independent epoch sequence, and
// checkpoints pin the exact version so a bad adaptation rolls back through
// the normal restore path.
var (
	WithGatewayConfig     = gateway.WithConfig
	WithGatewayLiveness   = gateway.WithLiveness
	WithGatewayAlertBuf   = gateway.WithAlertBuffer
	WithGatewayAdaptation = gateway.WithAdaptation
)

// Re-exported federated hub cluster (internal/cluster). N nodes place
// homes by rendezvous hashing over a static peer table — no coordinator —
// and share one durable state tree: a tenant moves between nodes by
// drain-and-handoff (ExportTenant → checksummed envelope → Adopt, verified
// bit-identical), and a node death is detected by heartbeat and its homes
// cold-restored on survivors. Every inter-node call retries with
// exponential backoff + jitter.
type (
	// ClusterNode is one member of a federated hub cluster.
	ClusterNode = cluster.Node
	// ClusterClient streams DWB1 batches into any node, following moves.
	ClusterClient = cluster.Client
	// ClusterOption configures a ClusterNode at construction.
	ClusterOption = cluster.Option
	// ClusterResolver materializes a home's trained context on demand.
	ClusterResolver = cluster.Resolver
	// ExportedTenant is the drain-and-handoff envelope (checkpoint + WAL
	// tail + expected counters).
	ExportedTenant = hub.ExportedTenant
)

// NewClusterNode builds one cluster node; Start serves and gossips.
func NewClusterNode(id string, opts ...ClusterOption) (*ClusterNode, error) {
	return cluster.New(id, opts...)
}

// ClusterOwner is the rendezvous placement function: which node of nodes
// owns home. Deterministic and order-independent.
func ClusterOwner(home string, nodes []string) string { return cluster.Owner(home, nodes) }

// Cluster node options, re-exported from internal/cluster.
var (
	WithClusterListen      = cluster.WithListen
	WithClusterPeers       = cluster.WithPeers
	WithClusterCatalog     = cluster.WithCatalog
	WithClusterHubOptions  = cluster.WithHubOptions
	WithClusterHeartbeat   = cluster.WithHeartbeat
	WithClusterRetry       = cluster.WithRetry
	WithClusterCallTimeout = cluster.WithCallTimeout
	WithClusterTransport   = cluster.WithTransport
)

// Binary batch wire format (internal/wire): the length-prefixed,
// CRC-framed encoding devices use to report batches of readings. Both the
// gateway and hub CoAP fronts negotiate it by payload sniffing, so JSON
// and binary devices coexist on the same resource paths; the binary path
// decodes into pooled scratch and ingests a whole batch under one lock
// with one WAL append.
type (
	// WireBatch is one decoded binary payload (report or advance).
	WireBatch = wire.Batch
	// WireKind discriminates report vs advance batches.
	WireKind = wire.Kind
	// AgentWireFormat selects a device agent's wire encoding.
	AgentWireFormat = gateway.WireFormat
)

// Wire kinds and agent encodings, re-exported.
const (
	WireKindReport  = wire.KindReport
	WireKindAdvance = wire.KindAdvance

	AgentWireBinary = gateway.WireBinary
	AgentWireJSON   = gateway.WireJSON
)

// Binary batch codec, re-exported from internal/wire. AppendWireReport and
// AppendWireAdvance encode onto a reusable buffer; DecodeWireBatch decodes
// into reusable scratch and fails with ErrMalformedWire on anything that
// does not verify byte for byte.
var (
	AppendWireReport  = wire.AppendReport
	AppendWireAdvance = wire.AppendAdvance
	DecodeWireBatch   = wire.DecodeBatch
	IsBinaryWire      = wire.IsBinary
	ErrMalformedWire  = wire.ErrMalformed
)
