package faults

import (
	"testing"

	"repro/internal/device"
	"repro/internal/window"
)

// quietObs: a window with nothing happening (m0 fired only, no actuators).
func quietObs(l *window.Layout, idx int, m1 bool) *window.Observation {
	o := l.NewObservation(idx)
	o.Binary[0] = true
	o.Binary[1] = m1
	o.Numeric[0] = []float64{20, 20}
	o.Numeric[1] = []float64{100, 100}
	return o
}

func TestStretchStreamDelaysActuatorFirings(t *testing.T) {
	l := faultLayout(t)
	// Windows 0-9 quiet, window 5 fires the bulb.
	obs := make([]*window.Observation, 10)
	for i := range obs {
		obs[i] = quietObs(l, i+100, false) // non-zero base index
	}
	obs[5].Actuated = []device.ID{4}

	out, err := StretchStream(l, obs, TimingFault{Device: 4, Type: ActuatorDelayed, Delay: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(obs) {
		t.Fatalf("stretched length %d, want %d (truncated)", len(out), len(obs))
	}
	for i, o := range out {
		if o.Index != 100+i {
			t.Fatalf("window %d has index %d, want contiguous from 100", i, o.Index)
		}
	}
	// The firing moved from position 5 to position 8 (3 holds inserted).
	for i, o := range out {
		fired := containsID(o.Actuated, 4)
		if fired != (i == 8) {
			t.Errorf("position %d fired=%v", i, fired)
		}
	}
	// Holds are clones of the pre-trigger window with no firings.
	for i := 5; i < 8; i++ {
		if len(out[i].Actuated) != 0 || !out[i].Binary[0] {
			t.Errorf("hold %d: %+v", i, out[i])
		}
	}
	// Input untouched.
	if obs[5].Index != 105 || !containsID(obs[5].Actuated, 4) {
		t.Error("input stream mutated")
	}
}

func TestStretchStreamDelaysBinaryFlips(t *testing.T) {
	l := faultLayout(t)
	obs := make([]*window.Observation, 8)
	for i := range obs {
		obs[i] = quietObs(l, i, i >= 4) // m1 flips on at window 4
	}
	out, err := StretchStream(l, obs, TimingFault{Device: 1, Type: SlowDegradation, Delay: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(obs) {
		t.Fatalf("stretched length %d, want %d", len(out), len(obs))
	}
	// The flip moved from position 4 to position 6 (2 holds of the old state).
	for i, o := range out {
		if o.Binary[1] != (i >= 6) {
			t.Errorf("position %d m1=%v", i, o.Binary[1])
		}
	}
}

func TestStretchStreamSkipsTriggersAfterFirings(t *testing.T) {
	l := faultLayout(t)
	obs := make([]*window.Observation, 6)
	for i := range obs {
		obs[i] = quietObs(l, i, false)
	}
	// The window before the trigger fired an actuator: holding its state
	// could fabricate an untrained A2G edge, so the trigger passes through.
	obs[2].Actuated = []device.ID{4}
	obs[3].Actuated = []device.ID{4}
	out, err := StretchStream(l, obs, TimingFault{Device: 4, Type: ActuatorDelayed, Onset: 3, Delay: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i, o := range out {
		if containsID(o.Actuated, 4) != (i == 2 || i == 3) {
			t.Errorf("position %d: %v", i, o.Actuated)
		}
	}
}

func TestStretchStreamHonorsOnset(t *testing.T) {
	l := faultLayout(t)
	obs := make([]*window.Observation, 10)
	for i := range obs {
		obs[i] = quietObs(l, i, false)
	}
	obs[2].Actuated = []device.ID{4}
	obs[7].Actuated = []device.ID{4}
	out, err := StretchStream(l, obs, TimingFault{Device: 4, Type: ActuatorDelayed, Onset: 5, Delay: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Pre-onset firing stays at 2; post-onset firing slides from 7 to 9.
	for i, o := range out {
		if containsID(o.Actuated, 4) != (i == 2 || i == 9) {
			t.Errorf("position %d: %v", i, o.Actuated)
		}
	}
}

func TestStretchStreamValidation(t *testing.T) {
	l := faultLayout(t)
	obs := []*window.Observation{quietObs(l, 0, false)}
	cases := []TimingFault{
		{Device: 4, Type: ActuatorDead, Delay: 2},      // not a stream fault
		{Device: 4, Type: ActuatorDelayed, Delay: 0},   // no delay
		{Device: 0, Type: ActuatorDelayed, Delay: 2},   // sensor as delayed actuator
		{Device: 4, Type: SlowDegradation, Delay: 2},   // actuator as degrading sensor
		{Device: 2, Type: SlowDegradation, Delay: 2},   // numeric sensor (binary only)
		{Device: 99, Type: ActuatorDelayed, Delay: 2},  // unknown device
		{Device: 4, Type: ActuatorDelayed, Delay: 2, Onset: -1},
	}
	for _, f := range cases {
		if _, err := StretchStream(l, obs, f); err == nil {
			t.Errorf("%v accepted", f)
		}
	}
	if _, err := StretchStream(l, nil, TimingFault{Device: 4, Type: ActuatorDelayed, Delay: 1}); err == nil {
		t.Error("empty stream accepted")
	}
}

// Regression for the old Injector/StretchStream split: one injector now
// takes point and stream faults together. A stream fault without a delay is
// still rejected, and the per-window Apply pass leaves stream faults to
// ApplyStream.
func TestInjectorAcceptsStreamFaults(t *testing.T) {
	l := faultLayout(t)
	for _, typ := range TimingTypes() {
		if !typ.IsStreamFault() {
			t.Errorf("%s not a stream fault", typ)
		}
		if _, err := NewInjector(l, 1, Fault{Device: 4, Type: typ}); err == nil {
			t.Errorf("injector accepted stream fault %s with no delay", typ)
		}
	}
	if _, err := NewInjector(l, 1, Fault{Device: 4, Type: ActuatorDelayed, Delay: 2}); err != nil {
		t.Errorf("injector rejected delayed actuator fault: %v", err)
	}
	if _, err := NewInjector(l, 1, Fault{Device: 1, Type: SlowDegradation, Delay: 2}); err != nil {
		t.Errorf("injector rejected slow-degradation fault: %v", err)
	}
	if _, err := NewInjector(l, 1, Fault{Device: 2, Type: SlowDegradation, Delay: 2}); err == nil {
		t.Error("slow-degradation accepted on a numeric sensor")
	}
	if _, err := NewInjector(l, 1, Fault{Device: 0, Type: FailStop, Delay: 3}); err == nil {
		t.Error("point fault with a delay accepted")
	}
	for _, typ := range append(SensorTypes(), ActuatorTypes()...) {
		if typ.IsStreamFault() {
			t.Errorf("%s wrongly classified as stream fault", typ)
		}
	}
	if ActuatorDelayed.String() != "actuator-delayed" || SlowDegradation.String() != "slow-degradation" {
		t.Error("timing fault names changed")
	}
}

// Point + stream faults compose through one injector: ApplyStream stretches
// the segment for the delayed actuator exactly as StretchStream would, then
// Apply kills the fail-stopped motion sensor per window.
func TestInjectorComposesPointAndStreamFaults(t *testing.T) {
	l := faultLayout(t)
	obs := make([]*window.Observation, 0, 12)
	for i := 0; i < 12; i++ {
		o := l.NewObservation(i)
		o.Binary[0] = true
		if i == 6 {
			o.Actuated = []device.ID{4}
		}
		obs = append(obs, o)
	}
	in := mustInjector(t, l, 7,
		Fault{Device: 0, Type: FailStop, Onset: 0},
		Fault{Device: 4, Type: ActuatorDelayed, Delay: 3},
	)
	if !in.HasStreamFaults() {
		t.Fatal("HasStreamFaults = false")
	}
	stretched, err := in.ApplyStream(obs)
	if err != nil {
		t.Fatal(err)
	}
	want, err := StretchStream(l, obs, TimingFault{Device: 4, Type: ActuatorDelayed, Delay: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(stretched) != len(want) {
		t.Fatalf("stretched to %d windows, StretchStream gives %d", len(stretched), len(want))
	}
	fireAt := -1
	for i := range stretched {
		if containsID(stretched[i].Actuated, 4) != containsID(want[i].Actuated, 4) {
			t.Fatalf("window %d firing mismatch vs StretchStream", i)
		}
		if containsID(stretched[i].Actuated, 4) {
			fireAt = i
		}
	}
	if fireAt != 9 {
		t.Errorf("delayed firing at window %d, want 9", fireAt)
	}
	for i, o := range stretched {
		got := in.Apply(o, i)
		if got.Binary[0] {
			t.Fatalf("window %d: fail-stopped sensor still firing", i)
		}
		if containsID(got.Actuated, 4) != (i == fireAt) {
			t.Fatalf("window %d: point pass disturbed the stream fault", i)
		}
	}
	// Untouched windows: no stream faults means ApplyStream is the identity.
	only := mustInjector(t, l, 7, Fault{Device: 0, Type: FailStop})
	same, err := only.ApplyStream(obs)
	if err != nil {
		t.Fatal(err)
	}
	if len(same) != len(obs) || same[0] != obs[0] {
		t.Error("ApplyStream without stream faults did not return the input")
	}
}
