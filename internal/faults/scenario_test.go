package faults

import (
	"reflect"
	"testing"

	"repro/internal/device"
	"repro/internal/window"
)

// scenarioStream: motion 0 active throughout, bulb fires at windows 5 and 15.
func scenarioStream(l *window.Layout, n int) []*window.Observation {
	obs := make([]*window.Observation, 0, n)
	for i := 0; i < n; i++ {
		o := l.NewObservation(i)
		o.Binary[0] = true
		o.Numeric[0] = []float64{20, 20, 20}
		if i == 5 || i == 15 {
			o.Actuated = []device.ID{4}
		}
		obs = append(obs, o)
	}
	return obs
}

func TestScenarioValidate(t *testing.T) {
	l := faultLayout(t)
	bad := []Scenario{
		{Name: "", Seed: 1},
		{Name: "ghost-cadence", Seed: 1, Ghosts: []GhostSpec{{Device: 900, Every: 0}}},
		{Name: "ghost-onset", Seed: 1, Ghosts: []GhostSpec{{Device: 900, Onset: -1, Every: 2}}},
		{Name: "ghost-registered", Seed: 1, Ghosts: []GhostSpec{{Device: 4, Every: 2}}},
		{Name: "replay-len", Seed: 1, Replays: []ReplaySpec{{SrcFrom: 0, SrcLen: 0, At: 1}}},
		{Name: "replay-neg", Seed: 1, Replays: []ReplaySpec{{SrcFrom: -1, SrcLen: 2, At: 1}}},
		{Name: "bad-fault", Seed: 1, Faults: []Fault{{Device: 4, Type: FailStop}}},
		{Name: "benign-injects", Seed: 1, Benign: true, Ghosts: []GhostSpec{{Device: 900, Every: 2}}},
	}
	for _, s := range bad {
		if err := s.Validate(l); err == nil {
			t.Errorf("scenario %q validated", s.Name)
		}
	}
	ok := Scenario{Name: "quiet-guest", Seed: 1, Benign: true}
	if err := ok.Validate(l); err != nil {
		t.Errorf("benign scenario rejected: %v", err)
	}
}

// The full pipeline composes: a replayed slice, a stream stretch, a point
// fault, and a ghost — all from one Scenario value, deterministically.
func TestScenarioApplyPipeline(t *testing.T) {
	l := faultLayout(t)
	obs := scenarioStream(l, 20)
	s := Scenario{
		Name: "kitchen-storm",
		Seed: 42,
		Faults: []Fault{
			{Device: 0, Type: FailStop, Onset: 2},
			{Device: 4, Type: ActuatorDelayed, Delay: 2},
		},
		Ghosts:  []GhostSpec{{Device: 900, Onset: 1, Every: 4}},
		Replays: []ReplaySpec{{SrcFrom: 4, SrcLen: 3, At: 10}},
	}
	out, err := s.Apply(l, obs)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(obs) {
		t.Fatalf("got %d windows, want %d", len(out), len(obs))
	}
	for i, o := range out {
		if o.Index != i {
			t.Fatalf("window %d re-indexed to %d", i, o.Index)
		}
		if i >= 2 && o.Binary[0] {
			t.Fatalf("window %d: fail-stopped motion still firing", i)
		}
		wantGhost := i >= 1 && (i-1)%4 == 0
		if containsID(o.Actuated, 900) != wantGhost {
			t.Fatalf("window %d: ghost firing = %v, want %v", i, !wantGhost, wantGhost)
		}
	}
	// The replay copied the bulb firing at source window 5 to window 11;
	// both firings then shift by the 2-window delay stretch.
	var fires []int
	for i, o := range out {
		if containsID(o.Actuated, 4) {
			fires = append(fires, i)
		}
	}
	if len(fires) != 2 {
		t.Fatalf("bulb fired at %v, want two delayed firings", fires)
	}
	if fires[0] != 5+2 || fires[1] <= fires[0] {
		t.Errorf("bulb fired at %v, want first at 7", fires)
	}
	// Input untouched.
	if !obs[2].Binary[0] || len(obs[1].Actuated) != 0 {
		t.Error("Apply mutated its input")
	}
	// Determinism: same scenario, same segment, same bytes.
	again, err := s.Apply(l, obs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out, again) {
		t.Error("scenario application not deterministic")
	}
}

func TestScenarioGroundTruth(t *testing.T) {
	s := Scenario{
		Name: "gt",
		Faults: []Fault{
			{Device: 3, Type: FailStop},
			{Device: 3, Type: HighNoise},
			{Device: 1, Type: StuckAt},
		},
		Ghosts: []GhostSpec{{Device: 900, Every: 3}},
	}
	got := s.FaultyDevices()
	want := []device.ID{1, 3, 900}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("FaultyDevices = %v, want %v", got, want)
	}
	if s.DetectOnly() {
		t.Error("scenario with ground truth marked detect-only")
	}
	replay := Scenario{Name: "replay", Replays: []ReplaySpec{{SrcLen: 5, At: 9}}}
	if !replay.DetectOnly() {
		t.Error("pure replay scenario not detect-only")
	}
	benign := Scenario{Name: "guest", Benign: true}
	if benign.DetectOnly() || len(benign.FaultyDevices()) != 0 {
		t.Error("benign scenario has ground truth")
	}
}
