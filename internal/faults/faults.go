// Package faults implements the paper's fault taxonomy (§4.2) and injects
// faults into windowed observations. Sensor faults follow Ni et al.'s
// classification — outlier, stuck-at, high noise/variance, spike — plus
// fail-stop; actuator faults are spurious activations and dead actuators.
//
// Injectors operate on window.Observation streams rather than raw events so
// the exact same faulty data reaches DICE and every baseline detector.
// All randomness is drawn from a caller-provided seed, keeping every
// experiment reproducible.
package faults

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/device"
	"repro/internal/window"
)

// Type enumerates the injectable fault classes.
type Type int

// Fault classes. FailStop is the only fail-stop class; the remaining sensor
// classes are non-fail-stop. ActuatorSpurious/ActuatorDead apply only to
// actuators.
const (
	FailStop Type = iota + 1
	Outlier
	StuckAt
	HighNoise
	Spike
	ActuatorSpurious
	ActuatorDead
	// ActuatorDelayed and SlowDegradation are the stream-level timing fault
	// family: the device eventually does the right thing, but late. They
	// cannot be expressed as a per-window rewrite (the fault is in *when*
	// windows happen, not what they contain), so an Injector applies them in
	// a separate ApplyStream pass before the per-window Apply pass.
	ActuatorDelayed
	SlowDegradation
)

// String returns the fault class name.
func (t Type) String() string {
	switch t {
	case FailStop:
		return "fail-stop"
	case Outlier:
		return "outlier"
	case StuckAt:
		return "stuck-at"
	case HighNoise:
		return "high-noise"
	case Spike:
		return "spike"
	case ActuatorSpurious:
		return "actuator-spurious"
	case ActuatorDead:
		return "actuator-dead"
	case ActuatorDelayed:
		return "actuator-delayed"
	case SlowDegradation:
		return "slow-degradation"
	default:
		return fmt.Sprintf("Type(%d)", int(t))
	}
}

// SensorTypes lists the four non-fail-stop sensor fault classes of §4.2
// plus fail-stop, i.e. everything the accuracy experiments draw from.
func SensorTypes() []Type {
	return []Type{FailStop, Outlier, StuckAt, HighNoise, Spike}
}

// ActuatorTypes lists the actuator fault classes (§5.1.3).
func ActuatorTypes() []Type {
	return []Type{ActuatorSpurious, ActuatorDead}
}

// TimingTypes lists the stream-level timing fault classes the interval-band
// check is built to catch.
func TimingTypes() []Type {
	return []Type{ActuatorDelayed, SlowDegradation}
}

// IsActuatorFault reports whether t applies to actuators.
func (t Type) IsActuatorFault() bool {
	return t == ActuatorSpurious || t == ActuatorDead || t == ActuatorDelayed
}

// IsStreamFault reports whether t reshapes the window stream itself rather
// than individual observations. An Injector applies stream faults in its
// ApplyStream pass (per-window Apply ignores them), so point and stream
// faults compose in one fault set.
func (t Type) IsStreamFault() bool {
	return t == ActuatorDelayed || t == SlowDegradation
}

// Fault describes one injected fault: a device, a class, and an onset
// window (relative to the segment being corrupted). The fault persists from
// the onset to the end of the segment, which is how the paper's segments
// are built (one fault per duplicated segment).
type Fault struct {
	Device device.ID
	Type   Type
	// Onset is the first affected window index, counted from the start of
	// the segment (not the recording).
	Onset int
	// Delay is the hold-window count for stream faults (ActuatorDelayed,
	// SlowDegradation): how many clones of the pre-trigger window precede
	// each delayed trigger. Required >= 1 for stream faults, ignored (and
	// rejected if set) for point faults.
	Delay int
}

// String renders the fault for logs.
func (f Fault) String() string {
	if f.Type.IsStreamFault() {
		return fmt.Sprintf("%s@dev%d+w%d/d%d", f.Type, int(f.Device), f.Onset, f.Delay)
	}
	return fmt.Sprintf("%s@dev%d+w%d", f.Type, int(f.Device), f.Onset)
}

// Injector rewrites observations to carry one or more faults. Construct
// with NewInjector; one injector corrupts one segment.
type Injector struct {
	layout *window.Layout
	rng    *rand.Rand
	faults []Fault

	// Per-fault mutable state.
	stuckBinary  map[device.ID]bool    // stuck-at for binary: frozen fired state
	stuckNumeric map[device.ID]float64 // stuck-at for numeric: frozen value
	haveStuck    map[device.ID]bool
}

// NewInjector builds an injector for the layout applying the given faults.
// It validates that every fault's class is compatible with its device kind.
func NewInjector(layout *window.Layout, seed int64, faults ...Fault) (*Injector, error) {
	if layout == nil {
		return nil, fmt.Errorf("faults: nil layout")
	}
	for _, f := range faults {
		d, err := layout.Registry().Get(f.Device)
		if err != nil {
			return nil, fmt.Errorf("faults: %w", err)
		}
		if f.Onset < 0 {
			return nil, fmt.Errorf("faults: negative onset %d", f.Onset)
		}
		if f.Type.IsStreamFault() {
			if f.Delay < 1 {
				return nil, fmt.Errorf("faults: stream fault %s needs delay >= 1, got %d", f.Type, f.Delay)
			}
			if f.Type == SlowDegradation {
				if _, ok := layout.BinarySlot(f.Device); !ok {
					return nil, fmt.Errorf("faults: %s needs a binary sensor, device %q is not one", f.Type, d.Name)
				}
				continue
			}
		} else if f.Delay != 0 {
			return nil, fmt.Errorf("faults: point fault %s cannot carry a delay", f.Type)
		}
		if f.Type.IsActuatorFault() != (d.Kind == device.Actuator) {
			return nil, fmt.Errorf("faults: %s cannot apply to %s device %q", f.Type, d.Kind, d.Name)
		}
	}
	return &Injector{
		layout:       layout,
		rng:          rand.New(rand.NewSource(seed)),
		faults:       append([]Fault(nil), faults...),
		stuckBinary:  make(map[device.ID]bool),
		stuckNumeric: make(map[device.ID]float64),
		haveStuck:    make(map[device.ID]bool),
	}, nil
}

// Faults returns a copy of the configured faults.
func (in *Injector) Faults() []Fault { return append([]Fault(nil), in.faults...) }

// FaultyDevices returns the distinct faulty device IDs, ascending.
func (in *Injector) FaultyDevices() []device.ID {
	seen := make(map[device.ID]bool)
	var out []device.ID
	for _, f := range in.faults {
		if !seen[f.Device] {
			seen[f.Device] = true
			out = append(out, f.Device)
		}
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// Apply returns a corrupted copy of the observation; segIdx is the window's
// index within the segment (0-based). The input is never mutated. Windows
// before every fault's onset are still deep-copied so callers can treat the
// output uniformly. Stream faults are skipped here — they reshape the whole
// segment, so they belong to the ApplyStream pass.
func (in *Injector) Apply(o *window.Observation, segIdx int) *window.Observation {
	out := o.Clone()
	for _, f := range in.faults {
		if segIdx < f.Onset || f.Type.IsStreamFault() {
			continue
		}
		in.applyOne(out, f, segIdx)
	}
	return out
}

// HasStreamFaults reports whether any configured fault needs the
// ApplyStream pass.
func (in *Injector) HasStreamFaults() bool {
	for _, f := range in.faults {
		if f.Type.IsStreamFault() {
			return true
		}
	}
	return false
}

// ApplyStream runs the stream-level half of the pipeline: every configured
// stream fault stretches the segment in fault order (each operating on the
// previous one's output), exactly as StretchStream would. Callers then feed
// each stretched window through Apply for the point faults — the two passes
// let a single fault set mix both families. With no stream faults the input
// slice is returned unchanged (and unshared windows are not cloned).
func (in *Injector) ApplyStream(obs []*window.Observation) ([]*window.Observation, error) {
	out := obs
	for _, f := range in.faults {
		if !f.Type.IsStreamFault() {
			continue
		}
		stretched, err := StretchStream(in.layout, out, TimingFault{
			Device: f.Device, Type: f.Type, Onset: f.Onset, Delay: f.Delay,
		})
		if err != nil {
			return nil, err
		}
		out = stretched
	}
	return out, nil
}

func (in *Injector) applyOne(o *window.Observation, f Fault, segIdx int) {
	if f.Type.IsActuatorFault() {
		in.applyActuator(o, f)
		return
	}
	if slot, ok := in.layout.BinarySlot(f.Device); ok {
		in.applyBinary(o, f, slot, segIdx)
		return
	}
	if slot, ok := in.layout.NumericSlot(f.Device); ok {
		in.applyNumeric(o, f, slot, segIdx)
	}
}

func (in *Injector) applyBinary(o *window.Observation, f Fault, slot, segIdx int) {
	switch f.Type {
	case FailStop:
		o.Binary[slot] = false
	case StuckAt:
		if !in.haveStuck[f.Device] {
			in.haveStuck[f.Device] = true
			// Half of stuck-at faults freeze the output at whatever it was
			// when the fault hit; the other half latch the opposite state
			// (a shorted or floating line), per Ni et al.'s taxonomy.
			frozen := o.Binary[slot]
			if in.rng.Float64() < 0.5 {
				frozen = !frozen
			}
			in.stuckBinary[f.Device] = frozen
		}
		o.Binary[slot] = in.stuckBinary[f.Device]
	case Outlier:
		// Sporadic false firings / misses: flip the bit ~15% of windows.
		if in.rng.Float64() < 0.15 {
			o.Binary[slot] = !o.Binary[slot]
		}
	case HighNoise:
		// Chattering sensor: random state roughly half the time.
		if in.rng.Float64() < 0.5 {
			o.Binary[slot] = in.rng.Intn(2) == 1
		}
	case Spike:
		// Bursts of spurious firings: a few windows right after onset and
		// periodically afterwards.
		if (segIdx-f.Onset)%7 < 2 {
			o.Binary[slot] = true
		}
	}
}

func (in *Injector) applyNumeric(o *window.Observation, f Fault, slot, segIdx int) {
	samples := o.Numeric[slot]
	switch f.Type {
	case FailStop:
		o.Numeric[slot] = nil
	case StuckAt:
		if !in.haveStuck[f.Device] {
			in.haveStuck[f.Device] = true
			v := 0.0
			if len(samples) > 0 {
				v = samples[0]
			}
			// Half of stuck-at faults latch an arbitrary wrong level (an
			// ADC rail or floating input) rather than the in-range value
			// at onset.
			if in.rng.Float64() < 0.5 {
				v += outlierMagnitude(samples) * sign(in.rng)
			}
			in.stuckNumeric[f.Device] = v
		}
		stuck := in.stuckNumeric[f.Device]
		if len(samples) == 0 {
			o.Numeric[slot] = []float64{stuck, stuck, stuck}
		} else {
			for i := range samples {
				samples[i] = stuck
			}
		}
	case Outlier:
		// One anomalous sample in ~20% of windows.
		if len(samples) > 0 && in.rng.Float64() < 0.2 {
			i := in.rng.Intn(len(samples))
			samples[i] += outlierMagnitude(samples) * sign(in.rng)
		}
	case HighNoise:
		scale := outlierMagnitude(samples) / 2
		for i := range samples {
			samples[i] += in.rng.NormFloat64() * scale
		}
	case Spike:
		// Several consecutive samples far above the expected value,
		// recurring every few windows.
		if len(samples) > 0 && (segIdx-f.Onset)%5 < 2 {
			mag := outlierMagnitude(samples)
			for i := range samples {
				if i >= len(samples)/2 {
					samples[i] += mag
				}
			}
		}
	}
}

func (in *Injector) applyActuator(o *window.Observation, f Fault) {
	switch f.Type {
	case ActuatorSpurious:
		// The actuator fires on its own in ~40% of windows.
		if in.rng.Float64() < 0.4 && !containsID(o.Actuated, f.Device) {
			o.Actuated = insertID(o.Actuated, f.Device)
		}
	case ActuatorDead:
		// The actuator never fires again.
		o.Actuated = removeID(o.Actuated, f.Device)
	}
}

// outlierMagnitude sizes a disturbance relative to the window's own scale:
// ten times the in-window spread, floored at 10 absolute units so that
// near-constant signals still get visibly corrupted.
func outlierMagnitude(samples []float64) float64 {
	if len(samples) == 0 {
		return 10
	}
	lo, hi := samples[0], samples[0]
	for _, s := range samples[1:] {
		if s < lo {
			lo = s
		}
		if s > hi {
			hi = s
		}
	}
	m := (hi - lo) * 10
	base := math.Abs(samples[0]) * 2
	if m < base {
		m = base
	}
	if m < 10 {
		m = 10
	}
	return m
}

func sign(rng *rand.Rand) float64 {
	if rng.Intn(2) == 0 {
		return -1
	}
	return 1
}

func containsID(ids []device.ID, id device.ID) bool {
	for _, v := range ids {
		if v == id {
			return true
		}
	}
	return false
}

func insertID(ids []device.ID, id device.ID) []device.ID {
	pos := len(ids)
	for i, v := range ids {
		if id < v {
			pos = i
			break
		}
	}
	ids = append(ids, 0)
	copy(ids[pos+1:], ids[pos:])
	ids[pos] = id
	return ids
}

func removeID(ids []device.ID, id device.ID) []device.ID {
	out := ids[:0]
	for _, v := range ids {
		if v != id {
			out = append(out, v)
		}
	}
	return out
}

// Plan draws a random fault assignment for an accuracy experiment: n
// distinct sensors (or actuators for actuator fault classes), each with a
// random compatible class and a random onset within [minOnset, maxOnset).
// It mirrors §4.2: "the sensor type, fault type, and the insertion time
// were chosen randomly".
func Plan(layout *window.Layout, rng *rand.Rand, n int, classes []Type, minOnset, maxOnset int) ([]Fault, error) {
	if n <= 0 {
		return nil, fmt.Errorf("faults: plan size %d", n)
	}
	if len(classes) == 0 {
		return nil, fmt.Errorf("faults: no fault classes")
	}
	if maxOnset <= minOnset {
		return nil, fmt.Errorf("faults: empty onset range [%d, %d)", minOnset, maxOnset)
	}
	actuatorOnly := true
	sensorOnly := true
	for _, c := range classes {
		if c.IsActuatorFault() {
			sensorOnly = false
		} else {
			actuatorOnly = false
		}
	}
	if !actuatorOnly && !sensorOnly {
		return nil, fmt.Errorf("faults: plan cannot mix sensor and actuator classes")
	}
	reg := layout.Registry()
	var pool []device.ID
	if actuatorOnly {
		pool = reg.Actuators()
	} else {
		pool = append(reg.Binaries(), reg.Numerics()...)
	}
	return PlanPool(rng, pool, n, classes, minOnset, maxOnset)
}

// PlanPool is Plan with an explicit device pool. The evaluation harness
// uses it to restrict fault targets to devices that actually produce data
// in the segment under test: corrupting a silent sensor yields a segment
// byte-identical to the fault-free one, for which "detection" is
// ill-defined.
func PlanPool(rng *rand.Rand, pool []device.ID, n int, classes []Type, minOnset, maxOnset int) ([]Fault, error) {
	if n <= 0 {
		return nil, fmt.Errorf("faults: plan size %d", n)
	}
	if len(classes) == 0 {
		return nil, fmt.Errorf("faults: no fault classes")
	}
	if maxOnset <= minOnset {
		return nil, fmt.Errorf("faults: empty onset range [%d, %d)", minOnset, maxOnset)
	}
	if len(pool) < n {
		return nil, fmt.Errorf("faults: want %d devices, pool has %d", n, len(pool))
	}
	pool = append([]device.ID(nil), pool...)
	rng.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })
	out := make([]Fault, n)
	for i := 0; i < n; i++ {
		out[i] = Fault{
			Device: pool[i],
			Type:   classes[rng.Intn(len(classes))],
			Onset:  minOnset + rng.Intn(maxOnset-minOnset),
		}
	}
	return out, nil
}
