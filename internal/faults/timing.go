package faults

import (
	"fmt"

	"repro/internal/device"
	"repro/internal/window"
)

// TimingFault describes one stream-level timing fault: a device whose
// behavior is eventually correct but late. ActuatorDelayed stretches the
// stream before each of the device's firings; SlowDegradation stretches it
// before each state flip of a (binary) sensor — a slowly degrading sensor
// whose responses drift later and later.
type TimingFault struct {
	Device device.ID
	Type   Type
	// Onset is the first segment window (0-based) at which triggers start
	// being delayed; earlier triggers pass through untouched.
	Onset int
	// Delay is how many hold windows are inserted before each delayed
	// trigger — the extra dwell the timing check should measure.
	Delay int
}

// String renders the fault for logs.
func (f TimingFault) String() string {
	return fmt.Sprintf("%s@dev%d+w%d/d%d", f.Type, int(f.Device), f.Onset, f.Delay)
}

// StretchStream injects a timing fault by reshaping the window stream: each
// trigger window (a firing of the delayed actuator, or a state flip of the
// degrading sensor) at or after the onset is preceded by Delay clones of
// its previous window, holding the home in its pre-trigger state for longer
// than training ever saw. The holds carry no actuator firings, and triggers
// whose previous window fired an actuator are left untouched (a hold after
// a firing could fabricate an actuator-to-group transition training never
// saw, which would let the structural checks catch a purely-timing fault).
// The result is truncated to len(obs) windows and reindexed contiguously
// from obs[0].Index, so the faulty segment occupies exactly the original
// segment's window range. The input is never mutated.
func StretchStream(layout *window.Layout, obs []*window.Observation, f TimingFault) ([]*window.Observation, error) {
	if layout == nil {
		return nil, fmt.Errorf("faults: nil layout")
	}
	if len(obs) == 0 {
		return nil, fmt.Errorf("faults: empty stream")
	}
	if !f.Type.IsStreamFault() {
		return nil, fmt.Errorf("faults: %s is not a stream-level fault", f.Type)
	}
	if f.Delay < 1 {
		return nil, fmt.Errorf("faults: delay %d, want >= 1", f.Delay)
	}
	if f.Onset < 0 {
		return nil, fmt.Errorf("faults: negative onset %d", f.Onset)
	}
	binSlot := -1
	switch f.Type {
	case ActuatorDelayed:
		d, err := layout.Registry().Get(f.Device)
		if err != nil {
			return nil, fmt.Errorf("faults: %w", err)
		}
		if d.Kind != device.Actuator {
			return nil, fmt.Errorf("faults: %s cannot apply to %s device %q", f.Type, d.Kind, d.Name)
		}
	case SlowDegradation:
		slot, ok := layout.BinarySlot(f.Device)
		if !ok {
			return nil, fmt.Errorf("faults: %s needs a binary sensor, device %d is not one", f.Type, int(f.Device))
		}
		binSlot = slot
	}

	trigger := func(i int) bool {
		if i < f.Onset || i == 0 {
			return false
		}
		switch f.Type {
		case ActuatorDelayed:
			return containsID(obs[i].Actuated, f.Device)
		default:
			return obs[i].Binary[binSlot] != obs[i-1].Binary[binSlot]
		}
	}

	base := obs[0].Index
	out := make([]*window.Observation, 0, len(obs))
	for i, o := range obs {
		if len(out) >= len(obs) {
			break
		}
		if trigger(i) && len(obs[i-1].Actuated) == 0 {
			for k := 0; k < f.Delay && len(out) < len(obs); k++ {
				hold := obs[i-1].Clone()
				hold.Actuated = nil
				out = append(out, hold)
			}
			if len(out) >= len(obs) {
				break
			}
		}
		out = append(out, o.Clone())
	}
	for k, o := range out {
		o.Index = base + k
	}
	return out, nil
}
