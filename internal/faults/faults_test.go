package faults

import (
	"math/rand"
	"testing"

	"repro/internal/device"
	"repro/internal/window"
)

// faultLayout: devices 0-1 binary, 2-3 numeric, 4 actuator.
func faultLayout(t testing.TB) *window.Layout {
	t.Helper()
	reg := device.NewRegistry()
	reg.MustAdd("m0", device.Binary, device.Motion, "a")
	reg.MustAdd("m1", device.Binary, device.Motion, "b")
	reg.MustAdd("t0", device.Numeric, device.Temperature, "a")
	reg.MustAdd("l0", device.Numeric, device.Light, "b")
	reg.MustAdd("bulb", device.Actuator, device.SmartBulb, "b")
	return window.NewLayout(reg)
}

// normalObs: both motions fired, both numerics reporting, bulb fired.
func normalObs(l *window.Layout, idx int) *window.Observation {
	o := l.NewObservation(idx)
	o.Binary[0] = true
	o.Binary[1] = true
	o.Numeric[0] = []float64{20, 21, 22}
	o.Numeric[1] = []float64{100, 101, 99}
	o.Actuated = []device.ID{4}
	return o
}

func mustInjector(t testing.TB, l *window.Layout, seed int64, fs ...Fault) *Injector {
	t.Helper()
	in, err := NewInjector(l, seed, fs...)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestNewInjectorValidation(t *testing.T) {
	l := faultLayout(t)
	if _, err := NewInjector(nil, 1); err == nil {
		t.Error("nil layout accepted")
	}
	if _, err := NewInjector(l, 1, Fault{Device: 99, Type: FailStop}); err == nil {
		t.Error("unknown device accepted")
	}
	if _, err := NewInjector(l, 1, Fault{Device: 4, Type: FailStop}); err == nil {
		t.Error("sensor fault on actuator accepted")
	}
	if _, err := NewInjector(l, 1, Fault{Device: 0, Type: ActuatorDead}); err == nil {
		t.Error("actuator fault on sensor accepted")
	}
	if _, err := NewInjector(l, 1, Fault{Device: 0, Type: FailStop, Onset: -1}); err == nil {
		t.Error("negative onset accepted")
	}
}

func TestApplyDoesNotMutateInput(t *testing.T) {
	l := faultLayout(t)
	in := mustInjector(t, l, 1, Fault{Device: 2, Type: HighNoise, Onset: 0})
	o := normalObs(l, 0)
	before := o.Numeric[0][0]
	_ = in.Apply(o, 0)
	if o.Numeric[0][0] != before {
		t.Error("Apply mutated its input")
	}
}

func TestOnsetRespected(t *testing.T) {
	l := faultLayout(t)
	in := mustInjector(t, l, 1, Fault{Device: 0, Type: FailStop, Onset: 5})
	pre := in.Apply(normalObs(l, 4), 4)
	if !pre.Binary[0] {
		t.Error("fault applied before onset")
	}
	post := in.Apply(normalObs(l, 5), 5)
	if post.Binary[0] {
		t.Error("fault not applied at onset")
	}
}

func TestFailStopBinary(t *testing.T) {
	l := faultLayout(t)
	in := mustInjector(t, l, 1, Fault{Device: 1, Type: FailStop, Onset: 0})
	got := in.Apply(normalObs(l, 0), 0)
	if got.Binary[1] {
		t.Error("fail-stop binary still fires")
	}
	if !got.Binary[0] {
		t.Error("fault leaked to another sensor")
	}
}

func TestFailStopNumericEmptiesWindow(t *testing.T) {
	l := faultLayout(t)
	in := mustInjector(t, l, 1, Fault{Device: 2, Type: FailStop, Onset: 0})
	got := in.Apply(normalObs(l, 0), 0)
	if len(got.Numeric[0]) != 0 {
		t.Errorf("fail-stop numeric reported %v", got.Numeric[0])
	}
	if len(got.Numeric[1]) == 0 {
		t.Error("fault leaked to another numeric sensor")
	}
}

func TestStuckAtNumericFreezesFirstSeenValue(t *testing.T) {
	l := faultLayout(t)
	in := mustInjector(t, l, 1, Fault{Device: 2, Type: StuckAt, Onset: 2})
	// Window 2 is the first faulty one; the stuck value is its first sample.
	w2 := in.Apply(normalObs(l, 2), 2)
	stuck := w2.Numeric[0][0]
	for _, s := range w2.Numeric[0] {
		if s != stuck {
			t.Errorf("window 2 not constant: %v", w2.Numeric[0])
		}
	}
	// Later windows report the SAME frozen value even though the input
	// differs.
	later := normalObs(l, 7)
	later.Numeric[0] = []float64{55, 56, 57}
	w7 := in.Apply(later, 7)
	for _, s := range w7.Numeric[0] {
		if s != stuck {
			t.Errorf("window 7 diverged from stuck value %v: %v", stuck, w7.Numeric[0])
		}
	}
}

func TestStuckAtNumericOnEmptyWindowStillReports(t *testing.T) {
	l := faultLayout(t)
	in := mustInjector(t, l, 1, Fault{Device: 2, Type: StuckAt, Onset: 0})
	o := normalObs(l, 0)
	o.Numeric[0] = nil
	got := in.Apply(o, 0)
	if len(got.Numeric[0]) == 0 {
		t.Error("stuck-at on empty window should fabricate the stuck value")
	}
}

func TestStuckAtBinaryFreezesState(t *testing.T) {
	l := faultLayout(t)
	in := mustInjector(t, l, 1, Fault{Device: 0, Type: StuckAt, Onset: 0})
	// First faulty window has the sensor fired: it freezes to "fired".
	w0 := in.Apply(normalObs(l, 0), 0)
	if !w0.Binary[0] {
		t.Error("stuck-at should freeze the first observed state")
	}
	quiet := normalObs(l, 1)
	quiet.Binary[0] = false
	w1 := in.Apply(quiet, 1)
	if !w1.Binary[0] {
		t.Error("stuck-at binary did not hold frozen state")
	}
}

func TestOutlierNumericOccasionallyPerturbs(t *testing.T) {
	l := faultLayout(t)
	in := mustInjector(t, l, 42, Fault{Device: 3, Type: Outlier, Onset: 0})
	changed := 0
	for i := 0; i < 200; i++ {
		got := in.Apply(normalObs(l, i), i)
		for j, s := range got.Numeric[1] {
			if s != normalObs(l, i).Numeric[1][j] {
				changed++
				break
			}
		}
	}
	if changed == 0 {
		t.Error("outlier never perturbed any window")
	}
	if changed > 120 {
		t.Errorf("outlier perturbed %d/200 windows; should be sporadic", changed)
	}
}

func TestHighNoisePerturbsEveryWindow(t *testing.T) {
	l := faultLayout(t)
	in := mustInjector(t, l, 7, Fault{Device: 2, Type: HighNoise, Onset: 0})
	got := in.Apply(normalObs(l, 0), 0)
	same := true
	for j, s := range got.Numeric[0] {
		if s != normalObs(l, 0).Numeric[0][j] {
			same = false
		}
	}
	if same {
		t.Error("high-noise left the window untouched")
	}
}

func TestSpikeRaisesLaterSamples(t *testing.T) {
	l := faultLayout(t)
	in := mustInjector(t, l, 7, Fault{Device: 2, Type: Spike, Onset: 0})
	got := in.Apply(normalObs(l, 0), 0) // (0-0)%5 < 2: spiking window
	orig := normalObs(l, 0).Numeric[0]
	if got.Numeric[0][len(orig)-1] <= orig[len(orig)-1] {
		t.Errorf("spike did not raise tail samples: %v", got.Numeric[0])
	}
	// Window 2 is outside the spike burst.
	calm := in.Apply(normalObs(l, 2), 2)
	for j, s := range calm.Numeric[0] {
		if s != orig[j] {
			t.Errorf("non-burst window perturbed: %v", calm.Numeric[0])
		}
	}
}

func TestActuatorDeadRemovesActivation(t *testing.T) {
	l := faultLayout(t)
	in := mustInjector(t, l, 1, Fault{Device: 4, Type: ActuatorDead, Onset: 0})
	got := in.Apply(normalObs(l, 0), 0)
	if len(got.Actuated) != 0 {
		t.Errorf("dead actuator still fired: %v", got.Actuated)
	}
}

func TestActuatorSpuriousAddsActivation(t *testing.T) {
	l := faultLayout(t)
	in := mustInjector(t, l, 3, Fault{Device: 4, Type: ActuatorSpurious, Onset: 0})
	fired := 0
	for i := 0; i < 100; i++ {
		o := l.NewObservation(i) // bulb NOT fired normally
		got := in.Apply(o, i)
		if len(got.Actuated) == 1 && got.Actuated[0] == 4 {
			fired++
		}
	}
	if fired == 0 {
		t.Error("spurious actuator never fired")
	}
	if fired == 100 {
		t.Error("spurious actuator fired every window; should be random")
	}
}

func TestFaultyDevicesSortedDistinct(t *testing.T) {
	l := faultLayout(t)
	in := mustInjector(t, l, 1,
		Fault{Device: 3, Type: Outlier, Onset: 0},
		Fault{Device: 0, Type: FailStop, Onset: 0},
		Fault{Device: 3, Type: Spike, Onset: 5},
	)
	got := in.FaultyDevices()
	if len(got) != 2 || got[0] != 0 || got[1] != 3 {
		t.Errorf("FaultyDevices = %v, want [0 3]", got)
	}
}

func TestDeterministicWithSameSeed(t *testing.T) {
	l := faultLayout(t)
	run := func(seed int64) []float64 {
		in := mustInjector(t, l, seed, Fault{Device: 2, Type: HighNoise, Onset: 0})
		var out []float64
		for i := 0; i < 10; i++ {
			got := in.Apply(normalObs(l, i), i)
			out = append(out, got.Numeric[0]...)
		}
		return out
	}
	a, b := run(5), run(5)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different corruption")
		}
	}
	c := run(6)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical corruption")
	}
}

func TestPlanDrawsValidFaults(t *testing.T) {
	l := faultLayout(t)
	rng := rand.New(rand.NewSource(9))
	fs, err := Plan(l, rng, 2, SensorTypes(), 10, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 2 {
		t.Fatalf("plan size = %d", len(fs))
	}
	if fs[0].Device == fs[1].Device {
		t.Error("plan repeated a device")
	}
	for _, f := range fs {
		if f.Onset < 10 || f.Onset >= 50 {
			t.Errorf("onset %d outside [10, 50)", f.Onset)
		}
		if f.Type.IsActuatorFault() {
			t.Errorf("sensor plan drew actuator fault %v", f.Type)
		}
		if _, err := NewInjector(l, 1, f); err != nil {
			t.Errorf("plan produced invalid fault: %v", err)
		}
	}
}

func TestPlanActuators(t *testing.T) {
	l := faultLayout(t)
	rng := rand.New(rand.NewSource(9))
	fs, err := Plan(l, rng, 1, ActuatorTypes(), 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if fs[0].Device != 4 {
		t.Errorf("actuator plan picked device %d", fs[0].Device)
	}
}

func TestPlanErrors(t *testing.T) {
	l := faultLayout(t)
	rng := rand.New(rand.NewSource(1))
	if _, err := Plan(l, rng, 0, SensorTypes(), 0, 10); err == nil {
		t.Error("zero plan size accepted")
	}
	if _, err := Plan(l, rng, 1, nil, 0, 10); err == nil {
		t.Error("empty classes accepted")
	}
	if _, err := Plan(l, rng, 1, SensorTypes(), 5, 5); err == nil {
		t.Error("empty onset range accepted")
	}
	if _, err := Plan(l, rng, 10, SensorTypes(), 0, 10); err == nil {
		t.Error("oversized plan accepted")
	}
	mixed := []Type{FailStop, ActuatorDead}
	if _, err := Plan(l, rng, 1, mixed, 0, 10); err == nil {
		t.Error("mixed sensor/actuator classes accepted")
	}
}

func TestTypeStrings(t *testing.T) {
	for _, tt := range []Type{FailStop, Outlier, StuckAt, HighNoise, Spike, ActuatorSpurious, ActuatorDead} {
		if tt.String() == "" {
			t.Errorf("empty name for %d", int(tt))
		}
	}
	if Type(99).String() == "" {
		t.Error("unknown type should render")
	}
}

func BenchmarkApplyHighNoise(b *testing.B) {
	reg := device.NewRegistry()
	reg.MustAdd("t0", device.Numeric, device.Temperature, "a")
	l := window.NewLayout(reg)
	in, err := NewInjector(l, 1, Fault{Device: 0, Type: HighNoise, Onset: 0})
	if err != nil {
		b.Fatal(err)
	}
	o := l.NewObservation(0)
	o.Numeric[0] = []float64{20, 21, 22, 23, 24}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in.Apply(o, i)
	}
}
