package faults

import (
	"fmt"
	"sort"

	"repro/internal/device"
	"repro/internal/window"
)

// A Scenario is a seeded, deterministic description of everything done to
// one clean segment: point and stream faults (via the unified Injector),
// spoofed "ghost" devices that were never registered, and replayed slices
// of the home's own history. Benign scenarios (guest, vacation) carry no
// injections at all — the stress lives in the underlying simulation — and
// exist so the evaluation can assert a zero-false-alarm floor on them.
//
// Applying the same Scenario to the same segment always yields the same
// windows: all randomness comes from Seed.
type Scenario struct {
	// Name is the scenario's stable identifier (the -scenario flag value
	// and the key in BENCH_scenarios.json).
	Name string
	// Description says what the scenario stresses, for reports.
	Description string
	// Benign marks scenarios that must NOT raise alerts: any alert on a
	// benign scenario is a false alarm.
	Benign bool
	// Seed drives every random choice during Apply.
	Seed int64
	// Faults are the point and stream faults, applied through one Injector.
	Faults []Fault
	// Ghosts are spoofed device injections.
	Ghosts []GhostSpec
	// Replays are spliced repeats of the segment's own past.
	Replays []ReplaySpec
}

// GhostSpec injects firings of a device ID the registry has never seen — a
// spoofed or rogue node announcing actuations. From Onset, the ghost fires
// every Every windows.
type GhostSpec struct {
	Device device.ID
	Onset  int
	Every  int
}

// ReplaySpec splices a copy of the clean segment's windows
// [SrcFrom, SrcFrom+SrcLen) over [At, At+SrcLen) — a replay attack that
// re-emits captured traffic at a time it does not belong to. The replayed
// windows are re-indexed to their destination so the stream stays
// contiguous.
type ReplaySpec struct {
	SrcFrom int
	SrcLen  int
	At      int
}

// FaultyDevices returns the ground-truth device set an identifier should
// name: every injected fault's device plus every ghost, ascending and
// distinct. Replays carry no device ground truth (the faulty party is the
// network, not a device), so they contribute nothing here — replay
// scenarios are scored on detection only.
func (s *Scenario) FaultyDevices() []device.ID {
	seen := make(map[device.ID]bool)
	var out []device.ID
	for _, f := range s.Faults {
		if !seen[f.Device] {
			seen[f.Device] = true
			out = append(out, f.Device)
		}
	}
	for _, g := range s.Ghosts {
		if !seen[g.Device] {
			seen[g.Device] = true
			out = append(out, g.Device)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// DetectOnly reports whether the scenario is scored on detection alone:
// it injects something (so it is not benign) but names no ground-truth
// devices to identify.
func (s *Scenario) DetectOnly() bool {
	return !s.Benign && len(s.FaultyDevices()) == 0 && len(s.Replays) > 0
}

// Validate checks the scenario against a layout without applying it.
func (s *Scenario) Validate(layout *window.Layout) error {
	if layout == nil {
		return fmt.Errorf("faults: nil layout")
	}
	if s.Name == "" {
		return fmt.Errorf("faults: scenario without a name")
	}
	if _, err := NewInjector(layout, s.Seed, s.Faults...); err != nil {
		return fmt.Errorf("faults: scenario %q: %w", s.Name, err)
	}
	for _, g := range s.Ghosts {
		if g.Every < 1 {
			return fmt.Errorf("faults: scenario %q: ghost cadence %d, want >= 1", s.Name, g.Every)
		}
		if g.Onset < 0 {
			return fmt.Errorf("faults: scenario %q: negative ghost onset %d", s.Name, g.Onset)
		}
		if _, ok := layout.ActuatorSlot(g.Device); ok {
			return fmt.Errorf("faults: scenario %q: ghost device %d is a registered actuator", s.Name, int(g.Device))
		}
	}
	for _, r := range s.Replays {
		if r.SrcLen < 1 {
			return fmt.Errorf("faults: scenario %q: replay length %d, want >= 1", s.Name, r.SrcLen)
		}
		if r.SrcFrom < 0 || r.At < 0 {
			return fmt.Errorf("faults: scenario %q: negative replay offset", s.Name)
		}
	}
	if s.Benign && (len(s.Faults) > 0 || len(s.Ghosts) > 0 || len(s.Replays) > 0) {
		return fmt.Errorf("faults: scenario %q is benign but injects", s.Name)
	}
	return nil
}

// Apply corrupts a clean segment with the whole scenario. The pipeline is
// fixed: replays first (they operate on clean source material), then the
// injector's stream pass (stretches reshape the replayed timeline), then
// the per-window point pass, then ghost injections (a spoofed node is
// oblivious to everything else on the wire). The input is never mutated,
// and the output is re-indexed contiguously from obs[0].Index.
func (s *Scenario) Apply(layout *window.Layout, obs []*window.Observation) ([]*window.Observation, error) {
	if err := s.Validate(layout); err != nil {
		return nil, err
	}
	if len(obs) == 0 {
		return nil, fmt.Errorf("faults: scenario %q: empty stream", s.Name)
	}
	base := obs[0].Index
	out := make([]*window.Observation, len(obs))
	for i, o := range obs {
		out[i] = o.Clone()
	}
	for _, r := range s.Replays {
		if r.SrcFrom+r.SrcLen > len(obs) || r.At+r.SrcLen > len(obs) {
			return nil, fmt.Errorf("faults: scenario %q: replay [%d+%d)->%d overruns %d windows",
				s.Name, r.SrcFrom, r.SrcLen, r.At, len(obs))
		}
		for k := 0; k < r.SrcLen; k++ {
			c := obs[r.SrcFrom+k].Clone()
			c.Index = base + r.At + k
			out[r.At+k] = c
		}
	}
	inj, err := NewInjector(layout, s.Seed, s.Faults...)
	if err != nil {
		return nil, err
	}
	out, err = inj.ApplyStream(out)
	if err != nil {
		return nil, err
	}
	for i, o := range out {
		out[i] = inj.Apply(o, i)
	}
	for _, g := range s.Ghosts {
		for i := g.Onset; i < len(out); i += g.Every {
			if !containsID(out[i].Actuated, g.Device) {
				out[i].Actuated = insertID(out[i].Actuated, g.Device)
			}
		}
	}
	return out, nil
}
