package coap

import (
	"reflect"
	"testing"
)

// FuzzMessageUnmarshal throws arbitrary datagrams at the CoAP decoder. The
// decoder must never panic, and any message it accepts must survive a
// re-encode/re-decode cycle unchanged once normalized: Unmarshal(data) →
// Marshal → Unmarshal must be a fixed point (option deltas can wrap the
// 16-bit number space on hostile input, so the first decode is the
// normalization, not an identity).
func FuzzMessageUnmarshal(f *testing.F) {
	req := &Message{Type: Confirmable, Code: CodePOST, MessageID: 7, Token: []byte{0xde, 0xad}}
	req.SetPath("report/home-07")
	req.Payload = []byte(`[{"at":1000,"d":3,"v":21.5}]`)
	seed, err := req.Marshal()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	ack := &Message{Type: Acknowledgement, Code: CodeChanged, MessageID: 7, Token: []byte{0xde, 0xad}}
	ackSeed, err := ack.Marshal()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(ackSeed)
	f.Add([]byte{})
	f.Add([]byte{0x40, 0x01, 0x00, 0x01})       // minimal GET
	f.Add([]byte{0x40, 0x01, 0x00, 0x01, 0xff}) // marker, no payload
	f.Add([]byte("DWB1 not coap at all, just bytes"))

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Unmarshal(data)
		if err != nil {
			return
		}
		enc, err := m.Marshal()
		if err != nil {
			t.Fatalf("decoded message failed to re-encode: %v", err)
		}
		m2, err := Unmarshal(enc)
		if err != nil {
			t.Fatalf("re-encoded message failed to decode: %v", err)
		}
		enc2, err := m2.Marshal()
		if err != nil {
			t.Fatalf("normalized message failed to re-encode: %v", err)
		}
		m3, err := Unmarshal(enc2)
		if err != nil {
			t.Fatalf("normalized bytes failed to decode: %v", err)
		}
		if !reflect.DeepEqual(m2, m3) {
			t.Fatalf("encode/decode not a fixed point:\n m2=%+v\n m3=%+v", m2, m3)
		}
	})
}
