package coap

import (
	"bytes"
	"context"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/chaos"
)

// rawDial opens a plain UDP socket to the server for hand-crafted
// datagrams (bypassing the client's retransmission machinery).
func rawDial(t *testing.T, srv *Server) *net.UDPConn {
	t.Helper()
	conn, err := net.DialUDP("udp", nil, srv.Addr().(*net.UDPAddr))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return conn
}

func rawExchange(t *testing.T, conn *net.UDPConn, data []byte) []byte {
	t.Helper()
	if _, err := conn.Write(data); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second)) //nolint:errcheck
	buf := make([]byte, 64*1024)
	n, err := conn.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	return append([]byte(nil), buf[:n]...)
}

func TestServerDedupReplaysCachedAck(t *testing.T) {
	var calls int64
	srv, err := ListenAndServe("127.0.0.1:0", func(req *Message) *Message {
		atomic.AddInt64(&calls, 1)
		return &Message{Code: CodeChanged, Payload: []byte("done")}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	conn := rawDial(t, srv)

	req := &Message{Type: Confirmable, Code: CodePOST, MessageID: 0x1234, Token: []byte{9}}
	req.SetPath("report")
	data, err := req.Marshal()
	if err != nil {
		t.Fatal(err)
	}

	ack1 := rawExchange(t, conn, data)
	// Retransmission of the very same datagram: the handler must not run
	// again, and the replayed ACK must be byte-identical.
	ack2 := rawExchange(t, conn, data)
	if !bytes.Equal(ack1, ack2) {
		t.Errorf("replayed ACK differs:\n first: %x\nsecond: %x", ack1, ack2)
	}
	if got := atomic.LoadInt64(&calls); got != 1 {
		t.Errorf("handler ran %d times, want exactly once", got)
	}
	st := srv.Stats()
	if st.Deduped != 1 || st.Handled != 1 || st.Received != 2 {
		t.Errorf("stats = %+v", st)
	}

	resp, err := Unmarshal(ack2)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Type != Acknowledgement || resp.MessageID != 0x1234 || resp.Code != CodeChanged {
		t.Errorf("replayed ACK = %+v", resp)
	}
}

func TestServerDedupAbsorbsInFlightRetransmission(t *testing.T) {
	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	var calls int64
	srv, err := ListenAndServe("127.0.0.1:0", func(req *Message) *Message {
		atomic.AddInt64(&calls, 1)
		entered <- struct{}{}
		<-release
		return &Message{Code: CodeChanged}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	conn := rawDial(t, srv)

	req := &Message{Type: Confirmable, Code: CodePOST, MessageID: 7, Token: []byte{1}}
	data, _ := req.Marshal()
	if _, err := conn.Write(data); err != nil {
		t.Fatal(err)
	}
	<-entered // the handler is now holding the exchange open
	// A retransmission while the original is in flight must be absorbed
	// silently, not handled a second time.
	if _, err := conn.Write(data); err != nil {
		t.Fatal(err)
	}
	close(release)

	conn.SetReadDeadline(time.Now().Add(5 * time.Second)) //nolint:errcheck
	buf := make([]byte, 1024)
	if _, err := conn.Read(buf); err != nil {
		t.Fatal(err)
	}
	if got := atomic.LoadInt64(&calls); got != 1 {
		t.Errorf("handler ran %d times, want exactly once", got)
	}
}

func TestClientRetransmitOverChaoticLinkExactlyOnce(t *testing.T) {
	var calls int64
	srv, err := ListenAndServe("127.0.0.1:0", func(req *Message) *Message {
		atomic.AddInt64(&calls, 1)
		return &Message{Code: CodeContent, Payload: req.Payload}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	inner, err := net.Dial("udp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	link := chaos.WrapConn(inner, chaos.Config{Seed: 11, Drop: 0.35, Dup: 0.2})
	cli := NewClient(link)
	defer cli.Close()
	cli.AckTimeout = 20 * time.Millisecond
	cli.MaxRetransmit = 12

	const exchanges = 8
	for i := 0; i < exchanges; i++ {
		req := &Message{Code: CodePOST, Payload: []byte{byte(i)}}
		req.SetPath("report")
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		resp, err := cli.Do(ctx, req)
		cancel()
		if err != nil {
			t.Fatalf("exchange %d failed: %v", i, err)
		}
		if len(resp.Payload) != 1 || resp.Payload[0] != byte(i) {
			t.Fatalf("exchange %d echoed %x", i, resp.Payload)
		}
	}
	if got := atomic.LoadInt64(&calls); got != exchanges {
		t.Errorf("handler ran %d times for %d exchanges; dedup must absorb every retransmission", got, exchanges)
	}
	if cs := link.Stats(); cs.Dropped == 0 && cs.Dups == 0 {
		t.Error("chaos link injected no faults; test exercised nothing")
	}
}

func TestClientMessageIDsMonotonic(t *testing.T) {
	var mids []uint16
	var mu chan struct{} = make(chan struct{}, 1)
	mu <- struct{}{}
	srv, err := ListenAndServe("127.0.0.1:0", func(req *Message) *Message {
		<-mu
		mids = append(mids, req.MessageID)
		mu <- struct{}{}
		return &Message{Code: CodeContent}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cli, err := Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	for i := 0; i < 4; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		_, err := cli.Do(ctx, &Message{Code: CodeGET})
		cancel()
		if err != nil {
			t.Fatal(err)
		}
	}
	<-mu
	if len(mids) != 4 {
		t.Fatalf("server saw %d requests", len(mids))
	}
	for i := 1; i < len(mids); i++ {
		if mids[i] != mids[i-1]+1 { // uint16 arithmetic wraps as the RFC wants
			t.Errorf("MessageIDs %v not monotonic per §4.4", mids)
		}
	}
}

func TestServerShedsWhenQueueFull(t *testing.T) {
	entered := make(chan struct{}, 8)
	release := make(chan struct{})
	var calls int64
	conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := Serve(conn, func(req *Message) *Message {
		atomic.AddInt64(&calls, 1)
		entered <- struct{}{}
		<-release
		return &Message{Code: CodeChanged}
	}, WithWorkers(1), WithQueueDepth(1))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	raw := rawDial(t, srv)

	send := func(mid uint16) {
		m := &Message{Type: Confirmable, Code: CodePOST, MessageID: mid, Token: []byte{byte(mid)}}
		data, _ := m.Marshal()
		if _, err := raw.Write(data); err != nil {
			t.Fatal(err)
		}
	}
	send(1)
	<-entered // worker busy
	send(2)   // sits in the queue
	// Wait until request 2 is actually queued before overflowing.
	deadline := time.Now().Add(5 * time.Second)
	for srv.Stats().Received < 2 {
		if time.Now().After(deadline) {
			t.Fatal("request 2 never received")
		}
		time.Sleep(time.Millisecond)
	}
	send(3) // queue full: shed
	for srv.Stats().Dropped < 1 {
		if time.Now().After(deadline) {
			t.Fatalf("shed never counted: %+v", srv.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	close(release)

	// The shed request was forgotten, so its retransmission is handled.
	for atomic.LoadInt64(&calls) < 2 {
		if time.Now().After(deadline) {
			t.Fatal("queued request never handled")
		}
		time.Sleep(time.Millisecond)
	}
	send(3)
	for atomic.LoadInt64(&calls) < 3 {
		if time.Now().After(deadline) {
			t.Fatal("retransmission of shed request never handled")
		}
		time.Sleep(time.Millisecond)
	}
	if st := srv.Stats(); st.Dropped != 1 {
		t.Errorf("Dropped = %d, want 1", st.Dropped)
	}
}

func TestDedupExportRestoreRoundTrip(t *testing.T) {
	var calls int64
	srv, err := ListenAndServe("127.0.0.1:0", func(req *Message) *Message {
		atomic.AddInt64(&calls, 1)
		return &Message{Code: CodeChanged, Payload: []byte("v1")}
	})
	if err != nil {
		t.Fatal(err)
	}
	conn := rawDial(t, srv)

	req := &Message{Type: Confirmable, Code: CodePOST, MessageID: 99, Token: []byte{5}}
	data, _ := req.Marshal()
	ack1 := rawExchange(t, conn, data)
	entries := srv.ExportDedup()
	if len(entries) != 1 {
		t.Fatalf("exported %d entries, want 1", len(entries))
	}
	srv.Close()

	// A "restarted" server on the same port, with a handler that would
	// betray a re-ingest by answering differently.
	lc, err := net.ListenUDP("udp", srv.Addr().(*net.UDPAddr))
	if err != nil {
		t.Fatal(err)
	}
	srv2, err := Serve(lc, func(req *Message) *Message {
		atomic.AddInt64(&calls, 1)
		return &Message{Code: CodeChanged, Payload: []byte("v2")}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	srv2.RestoreDedup(entries)

	ack2 := rawExchange(t, conn, data)
	if !bytes.Equal(ack1, ack2) {
		t.Error("restored server did not replay the pre-restart ACK")
	}
	if got := atomic.LoadInt64(&calls); got != 1 {
		t.Errorf("handler ran %d times across the restart, want once", got)
	}
}
