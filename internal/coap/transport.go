package coap

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"
)

// Handler processes an incoming request and returns the response message
// (its Type/MessageID/Token are filled in by the server).
type Handler func(req *Message) *Message

// Server is a minimal CoAP-over-UDP server: it answers confirmable and
// non-confirmable requests through a single handler.
type Server struct {
	conn    *net.UDPConn
	handler Handler

	mu     sync.Mutex
	closed bool
	wg     sync.WaitGroup
}

// ListenAndServe starts a server on addr (e.g. "127.0.0.1:5683"); pass
// port 0 to pick a free port. The returned server is already serving.
func ListenAndServe(addr string, handler Handler) (*Server, error) {
	if handler == nil {
		return nil, errors.New("coap: nil handler")
	}
	udpAddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("coap: resolve %q: %w", addr, err)
	}
	conn, err := net.ListenUDP("udp", udpAddr)
	if err != nil {
		return nil, fmt.Errorf("coap: listen: %w", err)
	}
	s := &Server{conn: conn, handler: handler}
	s.wg.Add(1)
	go s.serve()
	return s, nil
}

// Addr returns the server's bound address.
func (s *Server) Addr() *net.UDPAddr {
	return s.conn.LocalAddr().(*net.UDPAddr)
}

// Close stops the server and waits for the read loop to exit.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	err := s.conn.Close()
	s.wg.Wait()
	return err
}

func (s *Server) serve() {
	defer s.wg.Done()
	buf := make([]byte, 64*1024)
	for {
		n, peer, err := s.conn.ReadFromUDP(buf)
		if err != nil {
			return // closed
		}
		req, err := Unmarshal(buf[:n])
		if err != nil {
			continue // drop malformed datagrams
		}
		if req.Type != Confirmable && req.Type != NonConfirmable {
			continue // we never originate requests, so ACK/RST are stray
		}
		resp := s.handler(req)
		if resp == nil {
			resp = &Message{Code: CodeNotFound}
		}
		if req.Type == Confirmable {
			// Piggybacked response (RFC 7252 §5.2.1).
			resp.Type = Acknowledgement
			resp.MessageID = req.MessageID
		} else {
			resp.Type = NonConfirmable
			resp.MessageID = req.MessageID
		}
		resp.Token = req.Token
		data, err := resp.Marshal()
		if err != nil {
			continue
		}
		if _, err := s.conn.WriteToUDP(data, peer); err != nil {
			return
		}
	}
}

// Client sends CoAP requests to one server.
type Client struct {
	conn *net.UDPConn
	rng  *rand.Rand
	mu   sync.Mutex

	// AckTimeout is the initial retransmission timeout (RFC 7252 §4.8:
	// ACK_TIMEOUT, default 2s; the tests shrink it).
	AckTimeout time.Duration
	// MaxRetransmit bounds retransmissions (default 4).
	MaxRetransmit int
}

// Dial connects a client to a server address.
func Dial(addr string) (*Client, error) {
	udpAddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("coap: resolve %q: %w", addr, err)
	}
	conn, err := net.DialUDP("udp", nil, udpAddr)
	if err != nil {
		return nil, fmt.Errorf("coap: dial: %w", err)
	}
	return &Client{
		conn:          conn,
		rng:           rand.New(rand.NewSource(time.Now().UnixNano())),
		AckTimeout:    2 * time.Second,
		MaxRetransmit: 4,
	}, nil
}

// Close releases the client socket.
func (c *Client) Close() error { return c.conn.Close() }

// Do sends a confirmable request and waits for the matching response,
// retransmitting with exponential backoff per RFC 7252 §4.2. The context
// bounds the whole exchange.
func (c *Client) Do(ctx context.Context, req *Message) (*Message, error) {
	c.mu.Lock()
	defer c.mu.Unlock()

	req.Type = Confirmable
	req.MessageID = uint16(c.rng.Intn(1 << 16))
	if len(req.Token) == 0 {
		tok := make([]byte, 4)
		c.rng.Read(tok)
		req.Token = tok
	}
	data, err := req.Marshal()
	if err != nil {
		return nil, err
	}

	timeout := c.AckTimeout
	buf := make([]byte, 64*1024)
	for attempt := 0; attempt <= c.MaxRetransmit; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if _, err := c.conn.Write(data); err != nil {
			return nil, fmt.Errorf("coap: send: %w", err)
		}
		deadline := time.Now().Add(timeout)
		if d, ok := ctx.Deadline(); ok && d.Before(deadline) {
			deadline = d
		}
		if err := c.conn.SetReadDeadline(deadline); err != nil {
			return nil, err
		}
		for {
			n, err := c.conn.Read(buf)
			if err != nil {
				if ne, ok := err.(net.Error); ok && ne.Timeout() {
					break // retransmit
				}
				return nil, fmt.Errorf("coap: recv: %w", err)
			}
			resp, err := Unmarshal(buf[:n])
			if err != nil {
				continue // drop malformed
			}
			if !tokensEqual(resp.Token, req.Token) {
				continue // stale response from an earlier exchange
			}
			return resp, nil
		}
		timeout *= 2
	}
	return nil, fmt.Errorf("coap: no response after %d attempts", c.MaxRetransmit+1)
}

func tokensEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
