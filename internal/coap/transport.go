package coap

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"repro/internal/telemetry"
)

// Handler processes an incoming request and returns the response message
// (its Type/MessageID/Token are filled in by the server).
type Handler func(req *Message) *Message

// ServerConfig tunes the server's robustness machinery. The zero value
// selects the defaults noted on each field.
type ServerConfig struct {
	// Workers is the number of handler goroutines (default 8). The read
	// loop never calls the handler inline, so one slow request cannot
	// stall reads.
	Workers int
	// QueueDepth bounds requests waiting for a free worker (default 64).
	// When the queue is full the request is dropped and counted; a
	// confirmable sender recovers by retransmitting.
	QueueDepth int
	// ExchangeLifetime is how long a (peer, MessageID) exchange stays in
	// the deduplication cache (RFC 7252 §4.8.2 EXCHANGE_LIFETIME,
	// default 247s).
	ExchangeLifetime time.Duration
}

func (c ServerConfig) withDefaults() ServerConfig {
	if c.Workers <= 0 {
		c.Workers = 8
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.ExchangeLifetime <= 0 {
		c.ExchangeLifetime = 247 * time.Second
	}
	return c
}

// ServerStats counts server activity; all fields are cumulative. It is a
// snapshot view over the server's telemetry counters, so the same numbers
// appear here and on a /metrics exposition of the shared registry.
type ServerStats struct {
	// Received counts well-formed requests read off the socket.
	Received int64
	// Handled counts handler invocations (each exchange exactly once).
	Handled int64
	// Deduped counts retransmissions absorbed by the exchange cache,
	// including retransmissions of exchanges still being handled.
	Deduped int64
	// Dropped counts requests discarded because the worker queue was full.
	Dropped int64
	// Malformed counts datagrams that failed to parse.
	Malformed int64
}

// CoAP-stage metric names. Registered against the gateway's registry when
// the server is built with WithTelemetry; against a private registry
// otherwise, so ServerStats always has a backing store.
const (
	metricCoAPReceived   = "dice_coap_received_total"
	metricCoAPHandled    = "dice_coap_handled_total"
	metricCoAPDeduped    = "dice_coap_deduped_total"
	metricCoAPDropped    = "dice_coap_dropped_total"
	metricCoAPMalformed  = "dice_coap_malformed_total"
	metricCoAPQueueDepth = "dice_coap_queue_depth"
)

// srvMetrics is the telemetry backing of ServerStats plus the worker-pool
// queue gauge.
type srvMetrics struct {
	received   *telemetry.Counter
	handled    *telemetry.Counter
	deduped    *telemetry.Counter
	dropped    *telemetry.Counter
	malformed  *telemetry.Counter
	queueDepth *telemetry.Gauge
}

func newSrvMetrics(reg *telemetry.Registry) srvMetrics {
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	return srvMetrics{
		received:   reg.Counter(metricCoAPReceived, "Well-formed CoAP requests read off the socket."),
		handled:    reg.Counter(metricCoAPHandled, "Handler invocations (each exchange exactly once)."),
		deduped:    reg.Counter(metricCoAPDeduped, "Retransmissions absorbed by the RFC 7252 exchange cache."),
		dropped:    reg.Counter(metricCoAPDropped, "Requests shed because the worker queue was full."),
		malformed:  reg.Counter(metricCoAPMalformed, "Datagrams that failed to parse."),
		queueDepth: reg.Gauge(metricCoAPQueueDepth, "Requests currently waiting for or held by a worker."),
	}
}

// dedupKey identifies one exchange per RFC 7252 §4.5: the source endpoint
// plus the Message ID.
type dedupKey struct {
	peer string
	mid  uint16
}

// exchange is one dedup-cache entry. resp stays nil while the handler is
// still running; a retransmission arriving in that window is silently
// absorbed (the sender's next retransmission finds the cached response).
type exchange struct {
	resp []byte
	born time.Time
}

type job struct {
	req  *Message
	peer net.Addr
	key  dedupKey
	con  bool
}

// Server is a minimal CoAP-over-UDP server: it answers confirmable and
// non-confirmable requests through a single handler, deduplicating
// retransmitted exchanges and dispatching handlers on a bounded worker
// pool.
type Server struct {
	conn    net.PacketConn
	handler Handler
	cfg     ServerConfig
	queue   chan job
	done    chan struct{} // closed by Close, releases the context watcher

	mu     sync.Mutex // guards closed, dedup, order
	closed bool
	dedup  map[dedupKey]*exchange
	order  []dedupKey // insertion order, for expiry

	met srvMetrics

	serveWG  sync.WaitGroup
	workerWG sync.WaitGroup
}

// ServerOption configures a Server at construction.
type ServerOption func(*srvOptions)

type srvOptions struct {
	cfg ServerConfig
	tel *telemetry.Registry
	ctx context.Context
}

// WithServerConfig replaces the whole tuning config.
func WithServerConfig(cfg ServerConfig) ServerOption {
	return func(o *srvOptions) { o.cfg = cfg }
}

// WithWorkers sets the handler goroutine count.
func WithWorkers(n int) ServerOption {
	return func(o *srvOptions) { o.cfg.Workers = n }
}

// WithQueueDepth bounds requests waiting for a free worker.
func WithQueueDepth(n int) ServerOption {
	return func(o *srvOptions) { o.cfg.QueueDepth = n }
}

// WithExchangeLifetime sets the dedup-cache entry lifetime.
func WithExchangeLifetime(d time.Duration) ServerOption {
	return func(o *srvOptions) { o.cfg.ExchangeLifetime = d }
}

// WithTelemetry registers the server's counters against a shared registry
// (typically the gateway's) instead of a private one, so they appear on
// the /metrics exposition.
func WithTelemetry(reg *telemetry.Registry) ServerOption {
	return func(o *srvOptions) { o.tel = reg }
}

// WithContext ties the server's lifetime to ctx: when ctx is cancelled the
// server closes itself (read loop and workers drain and exit), replacing
// ad-hoc stop channels with the standard cancellation surface. Equivalent
// to ServeContext.
func WithContext(ctx context.Context) ServerOption {
	return func(o *srvOptions) { o.ctx = ctx }
}

// ListenAndServe starts a server on addr (e.g. "127.0.0.1:5683"); pass
// port 0 to pick a free port. The returned server is already serving.
func ListenAndServe(addr string, handler Handler, opts ...ServerOption) (*Server, error) {
	udpAddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("coap: resolve %q: %w", addr, err)
	}
	conn, err := net.ListenUDP("udp", udpAddr)
	if err != nil {
		return nil, fmt.Errorf("coap: listen: %w", err)
	}
	s, err := Serve(conn, handler, opts...)
	if err != nil {
		conn.Close()
		return nil, err
	}
	return s, nil
}

// Serve serves CoAP on an existing packet conn (which may be a
// fault-injecting wrapper) and takes ownership of it. The returned server
// is already serving. It is ServeContext with a background context —
// lifetime managed solely through Close.
func Serve(conn net.PacketConn, handler Handler, opts ...ServerOption) (*Server, error) {
	return ServeContext(context.Background(), conn, handler, opts...)
}

// ServeContext is the canonical constructor: it serves CoAP on conn until
// ctx is cancelled or Close is called, whichever comes first. The returned
// server is already serving.
func ServeContext(ctx context.Context, conn net.PacketConn, handler Handler, opts ...ServerOption) (*Server, error) {
	if handler == nil {
		return nil, errors.New("coap: nil handler")
	}
	if conn == nil {
		return nil, errors.New("coap: nil conn")
	}
	o := srvOptions{ctx: ctx}
	for _, opt := range opts {
		opt(&o)
	}
	cfg := o.cfg.withDefaults()
	s := &Server{
		conn:    conn,
		handler: handler,
		cfg:     cfg,
		queue:   make(chan job, cfg.QueueDepth),
		done:    make(chan struct{}),
		dedup:   make(map[dedupKey]*exchange),
		met:     newSrvMetrics(o.tel),
	}
	s.workerWG.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	s.serveWG.Add(1)
	go s.serve()
	if o.ctx != nil && o.ctx.Done() != nil {
		go func() {
			select {
			case <-o.ctx.Done():
				s.Close() //nolint:errcheck // conn close error surfaces nowhere useful here
			case <-s.done:
			}
		}()
	}
	return s, nil
}

// Addr returns the server's bound address.
func (s *Server) Addr() net.Addr {
	return s.conn.LocalAddr()
}

// Stats returns a snapshot of the server counters.
func (s *Server) Stats() ServerStats {
	return ServerStats{
		Received:  s.met.received.Value(),
		Handled:   s.met.handled.Value(),
		Deduped:   s.met.deduped.Value(),
		Dropped:   s.met.dropped.Value(),
		Malformed: s.met.malformed.Value(),
	}
}

// Close stops the server and waits for the read loop and workers to exit.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	close(s.done)
	err := s.conn.Close()
	s.serveWG.Wait() // serve() is the only sender on queue
	close(s.queue)
	s.workerWG.Wait()
	return err
}

func (s *Server) serve() {
	defer s.serveWG.Done()
	buf := make([]byte, 64*1024)
	for {
		n, peer, err := s.conn.ReadFrom(buf)
		if err != nil {
			return // closed
		}
		req, err := Unmarshal(buf[:n])
		if err != nil {
			s.met.malformed.Inc()
			continue // drop malformed datagrams
		}
		if req.Type != Confirmable && req.Type != NonConfirmable {
			continue // we never originate requests, so ACK/RST are stray
		}
		key := dedupKey{peer: peer.String(), mid: req.MessageID}

		s.met.received.Inc()
		s.mu.Lock()
		s.purgeLocked(time.Now())
		if e, ok := s.dedup[key]; ok {
			// RFC 7252 §4.5: a retransmitted exchange must not reach the
			// handler again. Replay the cached piggybacked ACK for a
			// Confirmable retransmission; while the original is still in
			// flight (resp == nil), or for a NON duplicate, stay silent.
			s.met.deduped.Inc()
			resp := e.resp
			s.mu.Unlock()
			if resp != nil && req.Type == Confirmable {
				s.conn.WriteTo(resp, peer) //nolint:errcheck // peer retransmits on loss
			}
			continue
		}
		s.dedup[key] = &exchange{born: time.Now()}
		s.order = append(s.order, key)
		s.mu.Unlock()

		select {
		case s.queue <- job{req: req, peer: peer, key: key, con: req.Type == Confirmable}:
			s.met.queueDepth.Add(1)
		default:
			// Queue full: shed the request. Forget the exchange so the
			// sender's retransmission gets a fresh chance at a worker.
			s.mu.Lock()
			delete(s.dedup, key)
			s.mu.Unlock()
			s.met.dropped.Inc()
		}
	}
}

// purgeLocked expires exchanges older than ExchangeLifetime. Entries are
// appended to order at birth, so the prefix is oldest-first; a key whose
// map entry is missing was shed by the queue-full path.
func (s *Server) purgeLocked(now time.Time) {
	cut := 0
	for _, key := range s.order {
		e, ok := s.dedup[key]
		if ok && now.Sub(e.born) < s.cfg.ExchangeLifetime {
			break
		}
		if ok {
			delete(s.dedup, key)
		}
		cut++
	}
	if cut > 0 {
		s.order = append(s.order[:0], s.order[cut:]...)
	}
}

func (s *Server) worker() {
	defer s.workerWG.Done()
	for jb := range s.queue {
		s.met.queueDepth.Add(-1)
		resp := s.handler(jb.req)
		if resp == nil {
			resp = &Message{Code: CodeNotFound}
		}
		if jb.con {
			// Piggybacked response (RFC 7252 §5.2.1).
			resp.Type = Acknowledgement
		} else {
			resp.Type = NonConfirmable
		}
		resp.MessageID = jb.req.MessageID
		resp.Token = jb.req.Token
		data, err := resp.Marshal()

		s.met.handled.Inc()
		s.mu.Lock()
		if err == nil {
			if e, ok := s.dedup[jb.key]; ok {
				e.resp = data
			}
		}
		s.mu.Unlock()
		if err != nil {
			continue
		}
		s.conn.WriteTo(data, jb.peer) //nolint:errcheck // peer retransmits on loss
	}
}

// DedupEntry is the persisted form of one completed exchange, exported for
// gateway checkpoints so a restarted gateway keeps absorbing retransmissions
// of pre-crash requests instead of double-ingesting them.
type DedupEntry struct {
	Peer      string `json:"peer"`
	MessageID uint16 `json:"mid"`
	Response  []byte `json:"resp"`
	AgeMS     int64  `json:"age_ms"`
}

// ExportDedup snapshots the completed exchanges in the dedup cache,
// oldest first. In-flight exchanges (handler still running) are skipped —
// their effects are not yet in any checkpointed state, so replaying them
// after a restart is exactly once, not twice.
func (s *Server) ExportDedup() []DedupEntry {
	now := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []DedupEntry
	for _, key := range s.order {
		e, ok := s.dedup[key]
		if !ok || e.resp == nil {
			continue
		}
		out = append(out, DedupEntry{
			Peer:      key.peer,
			MessageID: key.mid,
			Response:  e.resp,
			AgeMS:     now.Sub(e.born).Milliseconds(),
		})
	}
	return out
}

// RestoreDedup seeds the dedup cache from a checkpoint. Entries whose
// remaining lifetime has already elapsed are skipped.
func (s *Server) RestoreDedup(entries []DedupEntry) {
	now := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, en := range entries {
		age := time.Duration(en.AgeMS) * time.Millisecond
		if age >= s.cfg.ExchangeLifetime {
			continue
		}
		key := dedupKey{peer: en.Peer, mid: en.MessageID}
		if _, ok := s.dedup[key]; ok {
			continue
		}
		s.dedup[key] = &exchange{resp: en.Response, born: now.Add(-age)}
		s.order = append(s.order, key)
	}
}

// Client sends CoAP requests to one server.
type Client struct {
	conn net.Conn
	rng  *rand.Rand
	mu   sync.Mutex

	// nextMID is the Message ID of the next exchange. RFC 7252 §4.4: a
	// random initial value incremented per message, so concurrent or
	// back-to-back exchanges never collide (a fresh random draw per
	// request could).
	nextMID uint16

	// AckTimeout is the initial retransmission timeout (RFC 7252 §4.8:
	// ACK_TIMEOUT, default 2s; the tests shrink it).
	AckTimeout time.Duration
	// MaxRetransmit bounds retransmissions (default 4).
	MaxRetransmit int
}

// Dial connects a client to a server address.
func Dial(addr string) (*Client, error) {
	udpAddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("coap: resolve %q: %w", addr, err)
	}
	conn, err := net.DialUDP("udp", nil, udpAddr)
	if err != nil {
		return nil, fmt.Errorf("coap: dial: %w", err)
	}
	return NewClient(conn), nil
}

// NewClient wraps an existing connected datagram conn (which may be a
// fault-injecting wrapper) and takes ownership of it.
func NewClient(conn net.Conn) *Client {
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	return &Client{
		conn:          conn,
		rng:           rng,
		nextMID:       uint16(rng.Intn(1 << 16)),
		AckTimeout:    2 * time.Second,
		MaxRetransmit: 4,
	}
}

// Close releases the client socket.
func (c *Client) Close() error { return c.conn.Close() }

// Do sends a confirmable request and waits for the matching response,
// retransmitting with exponential backoff per RFC 7252 §4.2. The context
// bounds the whole exchange.
func (c *Client) Do(ctx context.Context, req *Message) (*Message, error) {
	c.mu.Lock()
	defer c.mu.Unlock()

	req.Type = Confirmable
	req.MessageID = c.nextMID
	c.nextMID++
	if len(req.Token) == 0 {
		tok := make([]byte, 4)
		c.rng.Read(tok)
		req.Token = tok
	}
	data, err := req.Marshal()
	if err != nil {
		return nil, err
	}

	timeout := c.AckTimeout
	buf := make([]byte, 64*1024)
	for attempt := 0; attempt <= c.MaxRetransmit; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if _, err := c.conn.Write(data); err != nil {
			return nil, fmt.Errorf("coap: send: %w", err)
		}
		deadline := time.Now().Add(timeout)
		if d, ok := ctx.Deadline(); ok && d.Before(deadline) {
			deadline = d
		}
		if err := c.conn.SetReadDeadline(deadline); err != nil {
			return nil, err
		}
		for {
			n, err := c.conn.Read(buf)
			if err != nil {
				if ne, ok := err.(net.Error); ok && ne.Timeout() {
					break // retransmit
				}
				return nil, fmt.Errorf("coap: recv: %w", err)
			}
			resp, err := Unmarshal(buf[:n])
			if err != nil {
				continue // drop malformed
			}
			if !tokensEqual(resp.Token, req.Token) {
				continue // stale response from an earlier exchange
			}
			if resp.Type == Acknowledgement && resp.MessageID != req.MessageID {
				continue // ACK for a different exchange
			}
			return resp, nil
		}
		timeout *= 2
	}
	return nil, fmt.Errorf("coap: no response after %d attempts", c.MaxRetransmit+1)
}

func tokensEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
