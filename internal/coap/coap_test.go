package coap

import (
	"bytes"
	"context"
	"testing"
	"testing/quick"
	"time"
)

func TestMarshalUnmarshalRoundTrip(t *testing.T) {
	m := &Message{
		Type:      Confirmable,
		Code:      CodePOST,
		MessageID: 0xBEEF,
		Token:     []byte{1, 2, 3, 4},
		Payload:   []byte(`{"v":21.5}`),
	}
	m.SetPath("sensors/temp-kitchen")
	m.AddOption(OptionContentFormat, []byte{50}) // application/json

	data, err := m.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != Confirmable || got.Code != CodePOST || got.MessageID != 0xBEEF {
		t.Errorf("header mismatch: %+v", got)
	}
	if !bytes.Equal(got.Token, m.Token) {
		t.Errorf("token mismatch: %v", got.Token)
	}
	if got.Path() != "sensors/temp-kitchen" {
		t.Errorf("path = %q", got.Path())
	}
	if !bytes.Equal(got.Payload, m.Payload) {
		t.Errorf("payload mismatch: %q", got.Payload)
	}
}

func TestMarshalNoPayloadNoOptions(t *testing.T) {
	m := &Message{Type: Acknowledgement, Code: CodeEmpty, MessageID: 7}
	data, err := m.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != 4 {
		t.Errorf("empty ACK should be 4 bytes, got %d", len(data))
	}
	got, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.MessageID != 7 || len(got.Options) != 0 || len(got.Payload) != 0 {
		t.Errorf("round trip: %+v", got)
	}
}

func TestLargeOptionNumbersAndValues(t *testing.T) {
	m := &Message{Type: NonConfirmable, Code: CodeGET, MessageID: 1}
	big := bytes.Repeat([]byte{'x'}, 300) // needs 2-byte length extension
	m.AddOption(2000, big)                // needs 2-byte delta extension
	m.AddOption(OptionURIPath, []byte("a"))
	data, err := m.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Options) != 2 {
		t.Fatalf("options = %d, want 2", len(got.Options))
	}
	// Options come back sorted by number.
	if got.Options[0].Number != OptionURIPath || got.Options[1].Number != 2000 {
		t.Errorf("option numbers: %d, %d", got.Options[0].Number, got.Options[1].Number)
	}
	if !bytes.Equal(got.Options[1].Value, big) {
		t.Error("large option value corrupted")
	}
}

func TestUnmarshalErrors(t *testing.T) {
	tests := []struct {
		name string
		data []byte
	}{
		{"short", []byte{0x40}},
		{"bad version", []byte{0x00, 0x01, 0x00, 0x01}},
		{"bad token length", []byte{0x49, 0x01, 0x00, 0x01}},
		{"truncated token", []byte{0x44, 0x01, 0x00, 0x01, 0xAA}},
		{"empty payload after marker", []byte{0x40, 0x01, 0x00, 0x01, 0xFF}},
		{"reserved nibble", []byte{0x40, 0x01, 0x00, 0x01, 0xF0}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Unmarshal(tt.data); err == nil {
				t.Errorf("Unmarshal(%x) succeeded", tt.data)
			}
		})
	}
}

func TestMarshalRejectsLongToken(t *testing.T) {
	m := &Message{Token: bytes.Repeat([]byte{1}, 9)}
	if _, err := m.Marshal(); err == nil {
		t.Error("9-byte token accepted")
	}
}

func TestSetPathEdgeCases(t *testing.T) {
	var m Message
	m.SetPath("a/b/c")
	if m.Path() != "a/b/c" {
		t.Errorf("Path = %q", m.Path())
	}
	var m2 Message
	m2.SetPath("/leading//double/")
	if m2.Path() != "leading/double" {
		t.Errorf("Path = %q", m2.Path())
	}
}

func TestCodeStrings(t *testing.T) {
	if CodeGET.String() != "0.01" {
		t.Errorf("GET = %q", CodeGET.String())
	}
	if CodeContent.String() != "2.05" {
		t.Errorf("Content = %q", CodeContent.String())
	}
	if CodeNotFound.String() != "4.04" {
		t.Errorf("NotFound = %q", CodeNotFound.String())
	}
	if Confirmable.String() != "CON" || Reset.String() != "RST" {
		t.Error("type strings")
	}
}

// Property: round trip preserves arbitrary token/payload.
func TestRoundTripProperty(t *testing.T) {
	f := func(tok []byte, payload []byte, id uint16) bool {
		if len(tok) > 8 {
			tok = tok[:8]
		}
		m := &Message{Type: Confirmable, Code: CodePUT, MessageID: id, Token: tok, Payload: payload}
		data, err := m.Marshal()
		if err != nil {
			return false
		}
		got, err := Unmarshal(data)
		if err != nil {
			return false
		}
		if got.MessageID != id || !bytes.Equal(got.Token, tok) {
			return false
		}
		if len(payload) == 0 {
			return len(got.Payload) == 0
		}
		return bytes.Equal(got.Payload, payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestClientServerExchange(t *testing.T) {
	srv, err := ListenAndServe("127.0.0.1:0", func(req *Message) *Message {
		if req.Path() != "report" {
			return &Message{Code: CodeNotFound}
		}
		return &Message{Code: CodeChanged, Payload: append([]byte("ok:"), req.Payload...)}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cli, err := Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	cli.AckTimeout = 200 * time.Millisecond

	req := &Message{Code: CodePOST, Payload: []byte("hello")}
	req.SetPath("report")
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	resp, err := cli.Do(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Code != CodeChanged {
		t.Errorf("code = %v", resp.Code)
	}
	if string(resp.Payload) != "ok:hello" {
		t.Errorf("payload = %q", resp.Payload)
	}
	if resp.Type != Acknowledgement {
		t.Errorf("type = %v, want piggybacked ACK", resp.Type)
	}

	// Unknown path -> 4.04.
	req2 := &Message{Code: CodeGET}
	req2.SetPath("missing")
	resp2, err := cli.Do(ctx, req2)
	if err != nil {
		t.Fatal(err)
	}
	if resp2.Code != CodeNotFound {
		t.Errorf("code = %v, want 4.04", resp2.Code)
	}
}

func TestClientTimesOutWithoutServer(t *testing.T) {
	cli, err := Dial("127.0.0.1:1") // nothing listens here
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	cli.AckTimeout = 20 * time.Millisecond
	cli.MaxRetransmit = 1

	req := &Message{Code: CodePOST}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if _, err := cli.Do(ctx, req); err == nil {
		t.Error("expected timeout error")
	}
}

func TestClientHonorsContextCancellation(t *testing.T) {
	cli, err := Dial("127.0.0.1:1")
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	cli.AckTimeout = 10 * time.Second // would block forever without ctx

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = cli.Do(ctx, &Message{Code: CodeGET})
	if err == nil {
		t.Fatal("expected error")
	}
	if time.Since(start) > 2*time.Second {
		t.Error("context deadline not honored")
	}
}

func TestServerSurvivesMalformedDatagram(t *testing.T) {
	srv, err := ListenAndServe("127.0.0.1:0", func(req *Message) *Message {
		return &Message{Code: CodeContent}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cli, err := Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	cli.AckTimeout = 200 * time.Millisecond

	// Throw garbage at the server first.
	garbage, err := Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer garbage.Close()
	if _, err := garbageConnWrite(garbage, []byte{0xde, 0xad}); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	resp, err := cli.Do(ctx, &Message{Code: CodeGET})
	if err != nil {
		t.Fatalf("server died after malformed datagram: %v", err)
	}
	if resp.Code != CodeContent {
		t.Errorf("code = %v", resp.Code)
	}
}

func garbageConnWrite(c *Client, data []byte) (int, error) {
	return c.conn.Write(data)
}

func BenchmarkMarshal(b *testing.B) {
	m := &Message{Type: Confirmable, Code: CodePOST, MessageID: 1, Token: []byte{1, 2}}
	m.SetPath("sensors/temp")
	m.Payload = []byte(`{"at":123456,"v":21.5}`)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Marshal(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUnmarshal(b *testing.B) {
	m := &Message{Type: Confirmable, Code: CodePOST, MessageID: 1, Token: []byte{1, 2}}
	m.SetPath("sensors/temp")
	m.Payload = []byte(`{"at":123456,"v":21.5}`)
	data, err := m.Marshal()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Unmarshal(data); err != nil {
			b.Fatal(err)
		}
	}
}
