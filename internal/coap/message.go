// Package coap implements the subset of CoAP (RFC 7252) that the smart-home
// gateway substrate needs: message encoding/decoding (header, token,
// options, payload), confirmable exchanges with retransmission, and a tiny
// UDP client/server. The paper's testbed runs on IoTivity, whose transport
// is CoAP; device agents POST their readings to the gateway with it.
package coap

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// Version is the only CoAP protocol version (RFC 7252 §3).
const Version = 1

// Type is the CoAP message type.
type Type uint8

// Message types (RFC 7252 §4.2-4.3).
const (
	Confirmable     Type = 0
	NonConfirmable  Type = 1
	Acknowledgement Type = 2
	Reset           Type = 3
)

// String returns the type name.
func (t Type) String() string {
	switch t {
	case Confirmable:
		return "CON"
	case NonConfirmable:
		return "NON"
	case Acknowledgement:
		return "ACK"
	case Reset:
		return "RST"
	default:
		return fmt.Sprintf("Type(%d)", uint8(t))
	}
}

// Code is the CoAP method/response code, packed as 3-bit class + 5-bit
// detail (RFC 7252 §3).
type Code uint8

// Request method and response codes.
const (
	CodeEmpty      Code = 0
	CodeGET        Code = 1
	CodePOST       Code = 2
	CodePUT        Code = 3
	CodeDELETE     Code = 4
	CodeCreated    Code = 2<<5 | 1 // 2.01
	CodeChanged    Code = 2<<5 | 4 // 2.04
	CodeContent    Code = 2<<5 | 5 // 2.05
	CodeBadRequest Code = 4<<5 | 0 // 4.00
	CodeNotFound   Code = 4<<5 | 4 // 4.04
	CodeInternal   Code = 5<<5 | 0 // 5.00
)

// String renders the code in the dotted class.detail notation.
func (c Code) String() string {
	return fmt.Sprintf("%d.%02d", uint8(c)>>5, uint8(c)&0x1f)
}

// Option numbers used by the gateway protocol.
const (
	OptionURIPath       uint16 = 11
	OptionContentFormat uint16 = 12
	OptionURIQuery      uint16 = 15
)

// Option is one CoAP option (number + raw value).
type Option struct {
	Number uint16
	Value  []byte
}

// Message is a CoAP message.
type Message struct {
	Type      Type
	Code      Code
	MessageID uint16
	Token     []byte
	Options   []Option
	Payload   []byte
}

// AddOption appends an option.
func (m *Message) AddOption(number uint16, value []byte) {
	m.Options = append(m.Options, Option{Number: number, Value: value})
}

// Path joins the message's Uri-Path options with '/'.
func (m *Message) Path() string {
	out := ""
	for _, o := range m.Options {
		if o.Number == OptionURIPath {
			if out != "" {
				out += "/"
			}
			out += string(o.Value)
		}
	}
	return out
}

// SetPath splits a '/'-separated path into Uri-Path options.
func (m *Message) SetPath(path string) {
	start := 0
	for i := 0; i <= len(path); i++ {
		if i == len(path) || path[i] == '/' {
			if i > start {
				m.AddOption(OptionURIPath, []byte(path[start:i]))
			}
			start = i + 1
		}
	}
}

// payloadMarker separates options from payload (RFC 7252 §3).
const payloadMarker = 0xFF

// Marshal encodes the message to its wire form.
func (m *Message) Marshal() ([]byte, error) {
	if len(m.Token) > 8 {
		return nil, fmt.Errorf("coap: token longer than 8 bytes")
	}
	buf := make([]byte, 0, 16+len(m.Payload))
	buf = append(buf, byte(Version<<6)|byte(m.Type)<<4|byte(len(m.Token)))
	buf = append(buf, byte(m.Code))
	buf = binary.BigEndian.AppendUint16(buf, m.MessageID)
	buf = append(buf, m.Token...)

	// Options must be encoded in ascending number order with deltas.
	opts := append([]Option(nil), m.Options...)
	sort.SliceStable(opts, func(i, j int) bool { return opts[i].Number < opts[j].Number })
	prev := uint16(0)
	for _, o := range opts {
		delta := o.Number - prev
		prev = o.Number
		db, dx := optNibble(uint32(delta))
		lb, lx := optNibble(uint32(len(o.Value)))
		buf = append(buf, db<<4|lb)
		buf = append(buf, dx...)
		buf = append(buf, lx...)
		buf = append(buf, o.Value...)
	}
	if len(m.Payload) > 0 {
		buf = append(buf, payloadMarker)
		buf = append(buf, m.Payload...)
	}
	return buf, nil
}

// optNibble encodes an option delta/length into its nibble and extension
// bytes (RFC 7252 §3.1).
func optNibble(v uint32) (byte, []byte) {
	switch {
	case v < 13:
		return byte(v), nil
	case v < 269:
		return 13, []byte{byte(v - 13)}
	default:
		ext := make([]byte, 2)
		binary.BigEndian.PutUint16(ext, uint16(v-269))
		return 14, ext
	}
}

// Unmarshal decodes a wire-form message.
func Unmarshal(data []byte) (*Message, error) {
	if len(data) < 4 {
		return nil, fmt.Errorf("coap: message shorter than header (%d bytes)", len(data))
	}
	if v := data[0] >> 6; v != Version {
		return nil, fmt.Errorf("coap: unsupported version %d", v)
	}
	tkl := int(data[0] & 0x0f)
	if tkl > 8 {
		return nil, fmt.Errorf("coap: token length %d invalid", tkl)
	}
	m := &Message{
		Type:      Type(data[0] >> 4 & 0x3),
		Code:      Code(data[1]),
		MessageID: binary.BigEndian.Uint16(data[2:4]),
	}
	pos := 4
	if len(data) < pos+tkl {
		return nil, fmt.Errorf("coap: truncated token")
	}
	m.Token = append([]byte(nil), data[pos:pos+tkl]...)
	pos += tkl

	prev := uint16(0)
	for pos < len(data) {
		if data[pos] == payloadMarker {
			pos++
			if pos == len(data) {
				return nil, fmt.Errorf("coap: payload marker with empty payload")
			}
			m.Payload = append([]byte(nil), data[pos:]...)
			return m, nil
		}
		db := data[pos] >> 4
		lb := data[pos] & 0x0f
		pos++
		delta, n, err := optValue(db, data[pos:])
		if err != nil {
			return nil, err
		}
		pos += n
		length, n, err := optValue(lb, data[pos:])
		if err != nil {
			return nil, err
		}
		pos += n
		if len(data) < pos+int(length) {
			return nil, fmt.Errorf("coap: truncated option value")
		}
		prev += uint16(delta)
		m.Options = append(m.Options, Option{
			Number: prev,
			Value:  append([]byte(nil), data[pos:pos+int(length)]...),
		})
		pos += int(length)
	}
	return m, nil
}

// optValue decodes a nibble plus extension bytes.
func optValue(nib byte, rest []byte) (uint32, int, error) {
	switch nib {
	case 15:
		return 0, 0, fmt.Errorf("coap: reserved option nibble 15")
	case 14:
		if len(rest) < 2 {
			return 0, 0, fmt.Errorf("coap: truncated 2-byte option extension")
		}
		return uint32(binary.BigEndian.Uint16(rest)) + 269, 2, nil
	case 13:
		if len(rest) < 1 {
			return 0, 0, fmt.Errorf("coap: truncated 1-byte option extension")
		}
		return uint32(rest[0]) + 13, 1, nil
	default:
		return uint32(nib), 0, nil
	}
}
