package device

import (
	"strings"
	"testing"
)

func buildTestRegistry(t *testing.T) *Registry {
	t.Helper()
	r := NewRegistry()
	r.MustAdd("motion-kitchen", Binary, Motion, "kitchen")
	r.MustAdd("light-kitchen", Numeric, Light, "kitchen")
	r.MustAdd("bulb-kitchen", Actuator, SmartBulb, "kitchen")
	r.MustAdd("motion-bedroom", Binary, Motion, "bedroom")
	r.MustAdd("temp-bedroom", Numeric, Temperature, "bedroom")
	return r
}

func TestAddAssignsDenseIDs(t *testing.T) {
	r := buildTestRegistry(t)
	if r.Len() != 5 {
		t.Fatalf("Len = %d, want 5", r.Len())
	}
	for i := 0; i < r.Len(); i++ {
		d := r.MustGet(ID(i))
		if d.ID != ID(i) {
			t.Errorf("device %d has ID %d", i, d.ID)
		}
	}
}

func TestAddRejectsDuplicates(t *testing.T) {
	r := NewRegistry()
	if _, err := r.Add("a", Binary, Motion, "x"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Add("a", Numeric, Light, "x"); err == nil {
		t.Error("duplicate name accepted")
	}
}

func TestAddRejectsEmptyNameAndBadKind(t *testing.T) {
	r := NewRegistry()
	if _, err := r.Add("", Binary, Motion, "x"); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := r.Add("b", Kind(99), Motion, "x"); err == nil {
		t.Error("invalid kind accepted")
	}
}

func TestMustAddPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustAdd should panic on error")
		}
	}()
	NewRegistry().MustAdd("", Binary, Motion, "x")
}

func TestKindPartitions(t *testing.T) {
	r := buildTestRegistry(t)
	if got := r.NumBinary(); got != 2 {
		t.Errorf("NumBinary = %d, want 2", got)
	}
	if got := r.NumNumeric(); got != 2 {
		t.Errorf("NumNumeric = %d, want 2", got)
	}
	if got := r.NumActuators(); got != 1 {
		t.Errorf("NumActuators = %d, want 1", got)
	}
	if got := r.NumSensors(); got != 4 {
		t.Errorf("NumSensors = %d, want 4", got)
	}
	bins := r.Binaries()
	if len(bins) != 2 || bins[0] != 0 || bins[1] != 3 {
		t.Errorf("Binaries = %v, want [0 3]", bins)
	}
	nums := r.Numerics()
	if len(nums) != 2 || nums[0] != 1 || nums[1] != 4 {
		t.Errorf("Numerics = %v, want [1 4]", nums)
	}
	acts := r.Actuators()
	if len(acts) != 1 || acts[0] != 2 {
		t.Errorf("Actuators = %v, want [2]", acts)
	}
}

func TestPartitionSlicesAreCopies(t *testing.T) {
	r := buildTestRegistry(t)
	bins := r.Binaries()
	bins[0] = 999
	if r.Binaries()[0] == 999 {
		t.Error("Binaries returned internal slice")
	}
}

func TestLookup(t *testing.T) {
	r := buildTestRegistry(t)
	id, ok := r.Lookup("temp-bedroom")
	if !ok || id != 4 {
		t.Errorf("Lookup = (%d, %v), want (4, true)", id, ok)
	}
	if _, ok := r.Lookup("missing"); ok {
		t.Error("Lookup found missing device")
	}
}

func TestGetErrors(t *testing.T) {
	r := buildTestRegistry(t)
	if _, err := r.Get(ID(-1)); err == nil {
		t.Error("negative ID accepted")
	}
	if _, err := r.Get(ID(5)); err == nil {
		t.Error("out-of-range ID accepted")
	}
}

func TestMustGetPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustGet should panic on unknown ID")
		}
	}()
	buildTestRegistry(t).MustGet(ID(42))
}

func TestRooms(t *testing.T) {
	r := buildTestRegistry(t)
	rooms := r.Rooms()
	if len(rooms) != 2 || rooms[0] != "bedroom" || rooms[1] != "kitchen" {
		t.Errorf("Rooms = %v, want [bedroom kitchen]", rooms)
	}
}

func TestByRoom(t *testing.T) {
	r := buildTestRegistry(t)
	ids := r.ByRoom("kitchen")
	if len(ids) != 3 {
		t.Errorf("ByRoom(kitchen) = %v, want 3 devices", ids)
	}
	if got := r.ByRoom("garage"); len(got) != 0 {
		t.Errorf("ByRoom(garage) = %v, want empty", got)
	}
}

func TestByType(t *testing.T) {
	r := buildTestRegistry(t)
	ids := r.ByType(Motion)
	if len(ids) != 2 {
		t.Errorf("ByType(Motion) = %v, want 2 devices", ids)
	}
}

func TestAllIsCopy(t *testing.T) {
	r := buildTestRegistry(t)
	all := r.All()
	all[0].Name = "hacked"
	if r.MustGet(0).Name == "hacked" {
		t.Error("All returned internal slice")
	}
}

func TestStringers(t *testing.T) {
	if Binary.String() != "binary" || Numeric.String() != "numeric" || Actuator.String() != "actuator" {
		t.Error("Kind.String mismatch")
	}
	if !strings.Contains(Kind(9).String(), "9") {
		t.Error("unknown kind should embed its value")
	}
	if Motion.String() != "motion" || SmartBulb.String() != "bulb" {
		t.Error("Type.String mismatch")
	}
	if !strings.Contains(Type(999).String(), "999") {
		t.Error("unknown type should embed its value")
	}
	d := Device{Name: "m1", Kind: Binary, Type: Motion, Room: "hall"}
	if got := d.String(); !strings.Contains(got, "m1") || !strings.Contains(got, "hall") {
		t.Errorf("Device.String = %q", got)
	}
}
