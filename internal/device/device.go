// Package device models the IoT devices of a smart home: binary sensors,
// numeric sensors, and actuators, together with a registry that fixes a
// stable ordering. DICE's state-set bit layout (one bit per binary sensor,
// three bits per numeric sensor) is derived from that ordering, so the
// registry is the single source of truth shared by the binarizer, the
// simulator, the fault injectors, and the evaluation harness.
package device

import (
	"fmt"
	"sort"
)

// ID identifies a device within a registry. IDs are dense, assigned in
// registration order, and stable for the lifetime of the registry.
type ID int

// Kind classifies the device's data model.
type Kind int

// Device kinds.
const (
	// Binary is an event sensor that fires activations (motion, door,
	// pressure mat, flame trip, ...). Represented by one state-set bit.
	Binary Kind = iota + 1
	// Numeric is a sampled sensor reporting real values (light level,
	// temperature, ...). Represented by three state-set bits (Eqs. 3.2-3.4).
	Numeric
	// Actuator is a controllable device whose activations feed the G2A and
	// A2G transition matrices rather than the state set.
	Actuator
)

// String returns the kind name.
func (k Kind) String() string {
	switch k {
	case Binary:
		return "binary"
	case Numeric:
		return "numeric"
	case Actuator:
		return "actuator"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Type is the physical modality of a device, e.g. a motion sensor or a smart
// bulb. It drives the simulator's value models and is reported in alerts;
// the DICE algorithm itself never branches on it.
type Type int

// Sensor and actuator types deployed in the paper's testbeds.
const (
	TypeUnknown Type = iota
	// Binary sensor types.
	Motion
	DoorContact
	PressureMat
	FlameDetector
	FloatSwitch
	// Numeric sensor types.
	Light
	Temperature
	Humidity
	Sound
	Ultrasonic
	Gas
	Weight
	RSSI
	Battery
	// Actuator types.
	SmartBulb
	SmartSwitch
	SmartBlind
	SmartSpeaker
	FanController
	HumidifierSwitch
)

var typeNames = map[Type]string{
	TypeUnknown:      "unknown",
	Motion:           "motion",
	DoorContact:      "door",
	PressureMat:      "pressure",
	FlameDetector:    "flame",
	FloatSwitch:      "float",
	Light:            "light",
	Temperature:      "temperature",
	Humidity:         "humidity",
	Sound:            "sound",
	Ultrasonic:       "ultrasonic",
	Gas:              "gas",
	Weight:           "weight",
	RSSI:             "rssi",
	Battery:          "battery",
	SmartBulb:        "bulb",
	SmartSwitch:      "switch",
	SmartBlind:       "blind",
	SmartSpeaker:     "speaker",
	FanController:    "fan",
	HumidifierSwitch: "humidifier",
}

// String returns the lowercase type name.
func (t Type) String() string {
	if s, ok := typeNames[t]; ok {
		return s
	}
	return fmt.Sprintf("Type(%d)", int(t))
}

// Device describes one registered IoT device.
type Device struct {
	ID   ID
	Name string
	Kind Kind
	Type Type
	Room string
}

// String renders a short human-readable description.
func (d Device) String() string {
	return fmt.Sprintf("%s(%s/%s@%s)", d.Name, d.Kind, d.Type, d.Room)
}

// Registry holds a fixed set of devices with dense IDs. It is not safe for
// concurrent mutation; register everything up front, then share read-only.
type Registry struct {
	devices  []Device
	byName   map[string]ID
	binaries []ID
	numerics []ID
	acts     []ID
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]ID)}
}

// Add registers a device and returns its ID. Names must be unique and
// non-empty; the kind must be valid.
func (r *Registry) Add(name string, kind Kind, typ Type, room string) (ID, error) {
	if name == "" {
		return 0, fmt.Errorf("device: empty name")
	}
	if _, dup := r.byName[name]; dup {
		return 0, fmt.Errorf("device: duplicate name %q", name)
	}
	switch kind {
	case Binary, Numeric, Actuator:
	default:
		return 0, fmt.Errorf("device: invalid kind %d for %q", int(kind), name)
	}
	id := ID(len(r.devices))
	r.devices = append(r.devices, Device{ID: id, Name: name, Kind: kind, Type: typ, Room: room})
	r.byName[name] = id
	switch kind {
	case Binary:
		r.binaries = append(r.binaries, id)
	case Numeric:
		r.numerics = append(r.numerics, id)
	case Actuator:
		r.acts = append(r.acts, id)
	}
	return id, nil
}

// MustAdd is Add but panics on error; it is meant for static deployments
// built in code, where a failure is a programming bug.
func (r *Registry) MustAdd(name string, kind Kind, typ Type, room string) ID {
	id, err := r.Add(name, kind, typ, room)
	if err != nil {
		panic(err)
	}
	return id
}

// Len returns the number of registered devices.
func (r *Registry) Len() int { return len(r.devices) }

// Get returns the device with the given ID.
func (r *Registry) Get(id ID) (Device, error) {
	if int(id) < 0 || int(id) >= len(r.devices) {
		return Device{}, fmt.Errorf("device: unknown id %d", int(id))
	}
	return r.devices[id], nil
}

// MustGet is Get but panics on unknown IDs.
func (r *Registry) MustGet(id ID) Device {
	d, err := r.Get(id)
	if err != nil {
		panic(err)
	}
	return d
}

// Lookup returns the ID for a device name.
func (r *Registry) Lookup(name string) (ID, bool) {
	id, ok := r.byName[name]
	return id, ok
}

// Binaries returns the IDs of all binary sensors in registration order.
// The returned slice is a copy.
func (r *Registry) Binaries() []ID { return append([]ID(nil), r.binaries...) }

// Numerics returns the IDs of all numeric sensors in registration order.
// The returned slice is a copy.
func (r *Registry) Numerics() []ID { return append([]ID(nil), r.numerics...) }

// Actuators returns the IDs of all actuators in registration order.
// The returned slice is a copy.
func (r *Registry) Actuators() []ID { return append([]ID(nil), r.acts...) }

// NumBinary returns the number of binary sensors.
func (r *Registry) NumBinary() int { return len(r.binaries) }

// NumNumeric returns the number of numeric sensors.
func (r *Registry) NumNumeric() int { return len(r.numerics) }

// NumActuators returns the number of actuators.
func (r *Registry) NumActuators() int { return len(r.acts) }

// NumSensors returns the number of sensors (binary + numeric).
func (r *Registry) NumSensors() int { return len(r.binaries) + len(r.numerics) }

// All returns a copy of every registered device, ordered by ID.
func (r *Registry) All() []Device { return append([]Device(nil), r.devices...) }

// Rooms returns the sorted set of distinct room names.
func (r *Registry) Rooms() []string {
	seen := make(map[string]bool)
	var rooms []string
	for _, d := range r.devices {
		if d.Room != "" && !seen[d.Room] {
			seen[d.Room] = true
			rooms = append(rooms, d.Room)
		}
	}
	sort.Strings(rooms)
	return rooms
}

// ByRoom returns the IDs of devices in the given room, ordered by ID.
func (r *Registry) ByRoom(room string) []ID {
	var ids []ID
	for _, d := range r.devices {
		if d.Room == room {
			ids = append(ids, d.ID)
		}
	}
	return ids
}

// ByType returns the IDs of devices of the given type, ordered by ID.
func (r *Registry) ByType(typ Type) []ID {
	var ids []ID
	for _, d := range r.devices {
		if d.Type == typ {
			ids = append(ids, d.ID)
		}
	}
	return ids
}
