package chaos

import (
	"bytes"
	"io"
	"net"
	"reflect"
	"sync"
	"testing"
	"time"
)

// recConn is an in-memory net.Conn that records written datagrams and
// serves queued inbound ones.
type recConn struct {
	mu   sync.Mutex
	sent [][]byte
	in   [][]byte
}

func (c *recConn) Write(b []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sent = append(c.sent, append([]byte(nil), b...))
	return len(b), nil
}

func (c *recConn) Read(b []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.in) == 0 {
		return 0, io.EOF
	}
	n := copy(b, c.in[0])
	c.in = c.in[1:]
	return n, nil
}

func (c *recConn) Close() error                       { return nil }
func (c *recConn) LocalAddr() net.Addr                { return nil }
func (c *recConn) RemoteAddr() net.Addr               { return nil }
func (c *recConn) SetDeadline(t time.Time) error      { return nil }
func (c *recConn) SetReadDeadline(t time.Time) error  { return nil }
func (c *recConn) SetWriteDeadline(t time.Time) error { return nil }

func (c *recConn) recorded() [][]byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([][]byte(nil), c.sent...)
}

func pkt(i int) []byte { return []byte{byte(i), byte(i >> 8), 0xAB} }

func TestSameSeedSameFaultPattern(t *testing.T) {
	run := func(seed int64) [][]byte {
		inner := &recConn{}
		c := WrapConn(inner, Config{Seed: seed, Drop: 0.3, Dup: 0.2, Reorder: 0.1, Corrupt: 0.1})
		for i := 0; i < 200; i++ {
			if _, err := c.Write(pkt(i)); err != nil {
				t.Fatal(err)
			}
		}
		return inner.recorded()
	}
	a, b := run(42), run(42)
	if !reflect.DeepEqual(a, b) {
		t.Error("same seed produced different wire traffic")
	}
	if other := run(43); reflect.DeepEqual(a, other) {
		t.Error("different seed produced identical wire traffic (suspicious)")
	}
}

func TestDropRateAndStats(t *testing.T) {
	inner := &recConn{}
	c := WrapConn(inner, Config{Seed: 1, Drop: 0.5})
	const n = 400
	for i := 0; i < n; i++ {
		c.Write(pkt(i)) //nolint:errcheck
	}
	st := c.Stats()
	if st.Sent != n {
		t.Errorf("Sent = %d, want %d", st.Sent, n)
	}
	if st.Delivered != st.Sent-st.Dropped {
		t.Errorf("Delivered %d != Sent %d - Dropped %d", st.Delivered, st.Sent, st.Dropped)
	}
	if st.Dropped < n/4 || st.Dropped > 3*n/4 {
		t.Errorf("Dropped = %d out of %d, far from the 0.5 rate", st.Dropped, n)
	}
	if got := len(inner.recorded()); int64(got) != st.Delivered {
		t.Errorf("wire saw %d datagrams, stats say %d", got, st.Delivered)
	}
}

func TestDuplicateEveryDatagram(t *testing.T) {
	inner := &recConn{}
	c := WrapConn(inner, Config{Seed: 1, Dup: 1.0})
	c.Write(pkt(1)) //nolint:errcheck
	c.Write(pkt(2)) //nolint:errcheck
	got := inner.recorded()
	want := [][]byte{pkt(1), pkt(1), pkt(2), pkt(2)}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("wire = %v, want %v", got, want)
	}
	if st := c.Stats(); st.Dups != 2 || st.Delivered != 4 {
		t.Errorf("stats = %+v", st)
	}
}

func TestReorderHoldsOneAndReleasesBehindNext(t *testing.T) {
	inner := &recConn{}
	c := WrapConn(inner, Config{Seed: 1, Reorder: 1.0})
	c.Write(pkt(1)) //nolint:errcheck // held
	c.Write(pkt(2)) //nolint:errcheck // delivered, then releases 1
	c.Write(pkt(3)) //nolint:errcheck // held again
	if got, want := inner.recorded(), [][]byte{pkt(2), pkt(1)}; !reflect.DeepEqual(got, want) {
		t.Fatalf("wire = %v, want %v", got, want)
	}
	c.Close() //nolint:errcheck // flushes the held datagram
	if got := inner.recorded(); len(got) != 3 || !bytes.Equal(got[2], pkt(3)) {
		t.Errorf("after close wire = %v", got)
	}
}

func TestCorruptFlipsExactlyOneBit(t *testing.T) {
	inner := &recConn{}
	c := WrapConn(inner, Config{Seed: 9, Corrupt: 1.0})
	orig := []byte{0x00, 0xFF, 0x55}
	c.Write(orig) //nolint:errcheck
	got := inner.recorded()
	if len(got) != 1 {
		t.Fatalf("wire saw %d datagrams", len(got))
	}
	diffBits := 0
	for i := range orig {
		x := orig[i] ^ got[0][i]
		for ; x != 0; x &= x - 1 {
			diffBits++
		}
	}
	if diffBits != 1 {
		t.Errorf("corrupted datagram differs by %d bits, want 1", diffBits)
	}
	// The caller's buffer must stay untouched.
	if !bytes.Equal(orig, []byte{0x00, 0xFF, 0x55}) {
		t.Error("Write corrupted the caller's buffer")
	}
}

func TestInboundDrop(t *testing.T) {
	inner := &recConn{in: [][]byte{pkt(1), pkt(2), pkt(3)}}
	c := WrapConn(inner, Config{Seed: 5, Drop: 1.0})
	buf := make([]byte, 16)
	if _, err := c.Read(buf); err != io.EOF {
		t.Errorf("Read with full inbound drop = %v, want EOF after draining", err)
	}
	st := c.Stats()
	if st.Received != 0 || st.Dropped != 3 {
		t.Errorf("stats = %+v, want 3 inbound drops and 0 received", st)
	}
}

func TestInboundPassThrough(t *testing.T) {
	inner := &recConn{in: [][]byte{pkt(7)}}
	c := WrapConn(inner, Config{Seed: 5}) // no faults
	buf := make([]byte, 16)
	n, err := c.Read(buf)
	if err != nil || !bytes.Equal(buf[:n], pkt(7)) {
		t.Errorf("Read = %v %v", buf[:n], err)
	}
}

func TestParseSpec(t *testing.T) {
	cfg, err := ParseSpec("seed=42, drop=0.1,dup=0.05,reorder=0.02,corrupt=0.01,delay=20ms,jitter=5ms")
	if err != nil {
		t.Fatal(err)
	}
	want := Config{Seed: 42, Drop: 0.1, Dup: 0.05, Reorder: 0.02, Corrupt: 0.01,
		Delay: 20 * time.Millisecond, Jitter: 5 * time.Millisecond}
	if cfg != want {
		t.Errorf("cfg = %+v, want %+v", cfg, want)
	}
	if !cfg.Enabled() {
		t.Error("Enabled() = false for a faulty config")
	}
	if (Config{Seed: 1}).Enabled() {
		t.Error("Enabled() = true for a no-fault config")
	}
	for _, bad := range []string{"drop=2", "drop=x", "nope=1", "delay=-1s", "drop"} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) accepted", bad)
		}
	}
	if cfg, err := ParseSpec(""); err != nil || cfg.Enabled() {
		t.Errorf("empty spec: %+v, %v", cfg, err)
	}
}
