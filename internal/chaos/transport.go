package chaos

import (
	"fmt"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// Transport wraps an http.RoundTripper with the same seeded fault model the
// datagram wrappers apply to CoAP links, adapted to request/response calls:
// drop (the request errors before it is sent), fixed delay, and jitter.
// Because a dropped request never reaches the wire, the caller's retry
// discipline sees exactly what a refused connection looks like — faults
// never create a second delivery of a request that already landed, so the
// cluster's exactly-once ack contract survives any drop probability.
//
// On top of the seeded faults, two runtime switches let a drill reshape the
// topology mid-run: Partition(host) makes every call to that host fail, and
// Slow(host, d) stretches its calls by a fixed extra latency. Both are
// keyed by the request URL's Host and safe for concurrent use.
type Transport struct {
	inner http.RoundTripper

	mu          sync.Mutex
	rng         *rand.Rand
	cfg         Config
	partitioned map[string]bool
	slowed      map[string]time.Duration

	stats Stats
}

// NewTransport wraps inner (nil means http.DefaultTransport) with seeded
// fault injection. Only Drop, Delay, and Jitter from cfg apply — dup,
// reorder, and corrupt have no honest meaning for a reliable byte-stream
// call and are ignored.
func NewTransport(inner http.RoundTripper, cfg Config) *Transport {
	if inner == nil {
		inner = http.DefaultTransport
	}
	return &Transport{
		inner:       inner,
		rng:         rand.New(rand.NewSource(cfg.Seed)),
		cfg:         cfg,
		partitioned: make(map[string]bool),
		slowed:      make(map[string]time.Duration),
	}
}

// ErrInjected marks a failure manufactured by the transport, so tests can
// tell injected faults from real ones.
type ErrInjected struct{ Host, Why string }

func (e *ErrInjected) Error() string {
	return fmt.Sprintf("chaos: injected %s for %s", e.Why, e.Host)
}

// Partition cuts or restores the link to host (as it appears in request
// URLs). While cut, every call errors without reaching the wire.
func (t *Transport) Partition(host string, cut bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if cut {
		t.partitioned[host] = true
	} else {
		delete(t.partitioned, host)
	}
}

// Slow adds a fixed extra latency to every call to host; zero restores it.
func (t *Transport) Slow(host string, d time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if d <= 0 {
		delete(t.slowed, host)
	} else {
		t.slowed[host] = d
	}
}

// Stats snapshots the fault counters: Sent counts calls offered, Delivered
// calls that reached the inner transport, Dropped seeded or partition kills.
func (t *Transport) Stats() Stats { return snapshot(&t.stats) }

// RoundTrip applies the fault plan and forwards to the inner transport.
// All seeded decisions happen before the request is sent, under one lock in
// call order, so a given seed produces one deterministic fault sequence.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	host := req.URL.Host
	t.mu.Lock()
	atomic.AddInt64(&t.stats.Sent, 1)
	if t.partitioned[host] {
		atomic.AddInt64(&t.stats.Dropped, 1)
		t.mu.Unlock()
		return nil, &ErrInjected{Host: host, Why: "partition"}
	}
	if t.cfg.Drop > 0 && t.rng.Float64() < t.cfg.Drop {
		atomic.AddInt64(&t.stats.Dropped, 1)
		t.mu.Unlock()
		return nil, &ErrInjected{Host: host, Why: "drop"}
	}
	delay := t.cfg.Delay + t.slowed[host]
	if t.cfg.Jitter > 0 {
		delay += time.Duration(t.rng.Int63n(int64(t.cfg.Jitter)))
	}
	atomic.AddInt64(&t.stats.Delivered, 1)
	t.mu.Unlock()
	if delay > 0 {
		time.Sleep(delay)
	}
	return t.inner.RoundTrip(req)
}
