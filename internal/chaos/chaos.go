// Package chaos wraps network connections with seeded, deterministic fault
// injection: datagram drop, duplication, reordering, corruption, and added
// latency. The gateway's robustness claims (CoAP dedup, retransmission,
// checkpoint/restore) are only credible if they hold under exactly the lossy
// links a smart home runs on, so the chaos wrappers are used both by the
// test suite (asserting bit-identical detector output with and without
// faults) and by `dice-device --chaos` for live lossy-link replays.
//
// Fault decisions are drawn from rand.Rand seeded by Config.Seed, one
// fixed-order draw sequence per datagram, so a given seed yields the same
// fault pattern for the same sequence of sends. Drop and corrupt apply to
// both directions (independent seeded streams); duplicate, reorder, and
// delay apply to outbound datagrams only.
package chaos

import (
	"fmt"
	"math/rand"
	"net"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Config sets per-datagram fault probabilities (each in [0,1]) and latency.
type Config struct {
	// Seed selects the deterministic fault pattern.
	Seed int64
	// Drop is the probability a datagram is silently discarded.
	Drop float64
	// Dup is the probability an outbound datagram is sent twice.
	Dup float64
	// Reorder is the probability an outbound datagram is held back and
	// delivered after the next send (a one-slot reorder buffer; a held
	// datagram with no successor stays held until the next write or Close).
	Reorder float64
	// Corrupt is the probability one random bit of the datagram is flipped.
	Corrupt float64
	// Delay is a fixed latency added before every outbound send.
	Delay time.Duration
	// Jitter adds a uniformly random extra latency in [0, Jitter).
	Jitter time.Duration
}

// Enabled reports whether the config injects any fault at all.
func (c Config) Enabled() bool {
	return c.Drop > 0 || c.Dup > 0 || c.Reorder > 0 || c.Corrupt > 0 ||
		c.Delay > 0 || c.Jitter > 0
}

// Stats counts injected faults. All fields are updated atomically.
type Stats struct {
	Sent      int64 // datagrams offered to the write path
	Delivered int64 // datagrams actually written (includes duplicates)
	Dropped   int64 // outbound + inbound drops
	Dups      int64
	Reordered int64
	Corrupted int64
	Received  int64 // datagrams passed up the read path
}

// ParseSpec parses a CLI chaos spec of comma-separated key=value pairs:
//
//	seed=42,drop=0.1,dup=0.05,reorder=0.02,corrupt=0,delay=20ms,jitter=5ms
//
// Unknown keys are rejected; omitted keys default to zero.
func ParseSpec(spec string) (Config, error) {
	var cfg Config
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		kv := strings.SplitN(part, "=", 2)
		if len(kv) != 2 {
			return Config{}, fmt.Errorf("chaos: bad spec entry %q, want key=value", part)
		}
		key, val := strings.TrimSpace(kv[0]), strings.TrimSpace(kv[1])
		switch key {
		case "seed":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return Config{}, fmt.Errorf("chaos: bad seed %q: %w", val, err)
			}
			cfg.Seed = n
		case "drop", "dup", "reorder", "corrupt":
			p, err := strconv.ParseFloat(val, 64)
			if err != nil || p < 0 || p > 1 {
				return Config{}, fmt.Errorf("chaos: bad probability %s=%q (want [0,1])", key, val)
			}
			switch key {
			case "drop":
				cfg.Drop = p
			case "dup":
				cfg.Dup = p
			case "reorder":
				cfg.Reorder = p
			case "corrupt":
				cfg.Corrupt = p
			}
		case "delay", "jitter":
			d, err := time.ParseDuration(val)
			if err != nil || d < 0 {
				return Config{}, fmt.Errorf("chaos: bad duration %s=%q", key, val)
			}
			if key == "delay" {
				cfg.Delay = d
			} else {
				cfg.Jitter = d
			}
		default:
			return Config{}, fmt.Errorf("chaos: unknown spec key %q", key)
		}
	}
	return cfg, nil
}

// packet is one held or planned datagram (addr is nil on connected sockets).
type packet struct {
	data []byte
	addr net.Addr
}

// injector holds the seeded decision state for one direction-pair. It is
// shared by Conn and PacketConn; all methods are mutex-guarded because
// worker pools write concurrently.
type injector struct {
	cfg   Config
	stats *Stats

	outMu  sync.Mutex
	outRng *rand.Rand
	held   *packet // one-slot reorder buffer

	inMu  sync.Mutex
	inRng *rand.Rand
}

func newInjector(cfg Config, stats *Stats) *injector {
	return &injector{
		cfg:    cfg,
		stats:  stats,
		outRng: rand.New(rand.NewSource(cfg.Seed)),
		// Decorrelate the inbound stream from the outbound one so read
		// timing never perturbs write-path decisions.
		inRng: rand.New(rand.NewSource(cfg.Seed ^ 0x1e3779b97f4a7c15)),
	}
}

// planWrite runs the fixed draw sequence for one outbound datagram and
// returns the packets to put on the wire, in order. It also computes the
// latency to sleep before sending (outside the lock).
func (j *injector) planWrite(data []byte, addr net.Addr) (sends []*packet, delay time.Duration) {
	j.outMu.Lock()
	defer j.outMu.Unlock()
	atomic.AddInt64(&j.stats.Sent, 1)

	var cur []*packet
	dropped := j.cfg.Drop > 0 && j.outRng.Float64() < j.cfg.Drop
	if dropped {
		atomic.AddInt64(&j.stats.Dropped, 1)
	} else {
		body := append([]byte(nil), data...)
		if j.cfg.Corrupt > 0 && j.outRng.Float64() < j.cfg.Corrupt {
			flipRandomBit(body, j.outRng)
			atomic.AddInt64(&j.stats.Corrupted, 1)
		}
		cur = append(cur, &packet{data: body, addr: addr})
		if j.cfg.Dup > 0 && j.outRng.Float64() < j.cfg.Dup {
			cur = append(cur, &packet{data: append([]byte(nil), body...), addr: addr})
			atomic.AddInt64(&j.stats.Dups, 1)
		}
		if j.cfg.Reorder > 0 && j.held == nil && j.outRng.Float64() < j.cfg.Reorder {
			// Hold the first copy back; it rides behind the next send.
			j.held = cur[0]
			cur = cur[1:]
			atomic.AddInt64(&j.stats.Reordered, 1)
		}
	}
	// A datagram held on an earlier write is released now, riding behind
	// the current one — that is the reordering. It stays held across
	// dropped writes (nothing to ride behind).
	if j.held != nil && len(cur) > 0 {
		cur = append(cur, j.held)
		j.held = nil
	}

	if j.cfg.Delay > 0 || j.cfg.Jitter > 0 {
		delay = j.cfg.Delay
		if j.cfg.Jitter > 0 {
			delay += time.Duration(j.outRng.Int63n(int64(j.cfg.Jitter)))
		}
	}
	return cur, delay
}

// flush returns (and clears) any held datagram so Close can release it.
func (j *injector) flush() *packet {
	j.outMu.Lock()
	defer j.outMu.Unlock()
	p := j.held
	j.held = nil
	return p
}

// admitRead decides the fate of one inbound datagram, corrupting it in
// place when the corrupt draw fires. It reports whether to deliver it.
func (j *injector) admitRead(data []byte) bool {
	j.inMu.Lock()
	defer j.inMu.Unlock()
	if j.cfg.Drop > 0 && j.inRng.Float64() < j.cfg.Drop {
		atomic.AddInt64(&j.stats.Dropped, 1)
		return false
	}
	if j.cfg.Corrupt > 0 && j.inRng.Float64() < j.cfg.Corrupt {
		flipRandomBit(data, j.inRng)
		atomic.AddInt64(&j.stats.Corrupted, 1)
	}
	atomic.AddInt64(&j.stats.Received, 1)
	return true
}

func flipRandomBit(b []byte, rng *rand.Rand) {
	if len(b) == 0 {
		return
	}
	bit := rng.Intn(len(b) * 8)
	b[bit/8] ^= 1 << (bit % 8)
}

// Conn is a fault-injecting wrapper around a connected datagram socket
// (the CoAP client side).
type Conn struct {
	net.Conn
	inj   *injector
	stats Stats
}

// WrapConn wraps a connected datagram conn with fault injection.
func WrapConn(inner net.Conn, cfg Config) *Conn {
	c := &Conn{Conn: inner}
	c.inj = newInjector(cfg, &c.stats)
	return c
}

// Write applies the outbound fault plan to one datagram.
func (c *Conn) Write(b []byte) (int, error) {
	sends, delay := c.inj.planWrite(b, nil)
	if delay > 0 {
		time.Sleep(delay)
	}
	for _, p := range sends {
		if _, err := c.Conn.Write(p.data); err != nil {
			return 0, err
		}
		atomic.AddInt64(&c.stats.Delivered, 1)
	}
	// A dropped or held datagram still reports success: the fault is
	// indistinguishable from wire loss to the caller, by design.
	return len(b), nil
}

// Read applies inbound drop/corrupt faults, looping past dropped datagrams.
func (c *Conn) Read(b []byte) (int, error) {
	for {
		n, err := c.Conn.Read(b)
		if err != nil {
			return n, err
		}
		if c.inj.admitRead(b[:n]) {
			return n, nil
		}
	}
}

// Close releases any held reorder datagram onto the wire before closing.
func (c *Conn) Close() error {
	if p := c.inj.flush(); p != nil {
		c.Conn.Write(p.data) //nolint:errcheck // best-effort flush
	}
	return c.Conn.Close()
}

// Stats returns a snapshot of the injected-fault counters.
func (c *Conn) Stats() Stats { return snapshot(&c.stats) }

// PacketConn is a fault-injecting wrapper around an unconnected datagram
// socket (the CoAP server side).
type PacketConn struct {
	net.PacketConn
	inj   *injector
	stats Stats
}

// WrapPacketConn wraps a packet conn with fault injection.
func WrapPacketConn(inner net.PacketConn, cfg Config) *PacketConn {
	c := &PacketConn{PacketConn: inner}
	c.inj = newInjector(cfg, &c.stats)
	return c
}

// WriteTo applies the outbound fault plan to one datagram.
func (c *PacketConn) WriteTo(b []byte, addr net.Addr) (int, error) {
	sends, delay := c.inj.planWrite(b, addr)
	if delay > 0 {
		time.Sleep(delay)
	}
	for _, p := range sends {
		to := p.addr
		if to == nil {
			to = addr
		}
		if _, err := c.PacketConn.WriteTo(p.data, to); err != nil {
			return 0, err
		}
		atomic.AddInt64(&c.stats.Delivered, 1)
	}
	return len(b), nil
}

// ReadFrom applies inbound drop/corrupt faults, looping past dropped
// datagrams.
func (c *PacketConn) ReadFrom(b []byte) (int, net.Addr, error) {
	for {
		n, addr, err := c.PacketConn.ReadFrom(b)
		if err != nil {
			return n, addr, err
		}
		if c.inj.admitRead(b[:n]) {
			return n, addr, nil
		}
	}
}

// Close releases any held reorder datagram before closing.
func (c *PacketConn) Close() error {
	if p := c.inj.flush(); p != nil && p.addr != nil {
		c.PacketConn.WriteTo(p.data, p.addr) //nolint:errcheck // best-effort flush
	}
	return c.PacketConn.Close()
}

// Stats returns a snapshot of the injected-fault counters.
func (c *PacketConn) Stats() Stats { return snapshot(&c.stats) }

func snapshot(s *Stats) Stats {
	return Stats{
		Sent:      atomic.LoadInt64(&s.Sent),
		Delivered: atomic.LoadInt64(&s.Delivered),
		Dropped:   atomic.LoadInt64(&s.Dropped),
		Dups:      atomic.LoadInt64(&s.Dups),
		Reordered: atomic.LoadInt64(&s.Reordered),
		Corrupted: atomic.LoadInt64(&s.Corrupted),
		Received:  atomic.LoadInt64(&s.Received),
	}
}
