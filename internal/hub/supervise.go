package hub

import (
	"runtime/debug"
	"time"

	"repro/internal/gateway"
	"repro/internal/wal"
)

// Health is a tenant's position in the supervision state machine.
//
//	Healthy     — applying ops normally
//	Degraded    — alive, but the overload policy shed events for it recently
//	Migrating   — mid-handoff to another node: ops already queued still
//	              apply (they are covered by the exported state), new ones
//	              are rejected with ErrMigrating so the caller re-routes
//	Quarantined — its gateway panicked; ops are dropped while the supervisor
//	              rebuilds it from checkpoint + WAL (or forever, once the
//	              circuit breaker has tripped)
//	Evicted     — unregistered; only the durable state remains
type Health int32

const (
	HealthHealthy Health = iota
	HealthDegraded
	// HealthMigrating sits below HealthQuarantined so applyOp's drop
	// threshold (>= Quarantined) still applies the queued ops a migration
	// barrier is waiting on.
	HealthMigrating
	HealthQuarantined
	HealthEvicted
)

func (s Health) String() string {
	switch s {
	case HealthHealthy:
		return "healthy"
	case HealthDegraded:
		return "degraded"
	case HealthMigrating:
		return "migrating"
	case HealthQuarantined:
		return "quarantined"
	case HealthEvicted:
		return "evicted"
	default:
		return "unknown"
	}
}

// MarshalJSON renders the state as its lowercase name.
func (s Health) MarshalJSON() ([]byte, error) {
	return []byte(`"` + s.String() + `"`), nil
}

// degradedWindow is how long after a shed a tenant reports Degraded.
const degradedWindow = 10 * time.Second

// maxRestartBackoff caps the exponential restart delay.
const maxRestartBackoff = 30 * time.Second

// currentHealth derives the externally visible state: the stored state,
// except that a recently shed (but otherwise healthy) tenant is Degraded.
func (t *tenant) currentHealth() Health {
	st := Health(t.health.Load())
	if st != HealthHealthy {
		return st
	}
	if ls := t.lastShed.Load(); ls != 0 && time.Since(time.Unix(0, ls)) < degradedWindow {
		return HealthDegraded
	}
	return HealthHealthy
}

// shedNow stamps the tenant as having just lost an event to overload.
func (t *tenant) shedNow() { t.lastShed.Store(time.Now().UnixNano()) }

// hotness is the tenant's recent op volume: the current epoch plus the
// previous one, so a tenant stays "hot" across an epoch boundary.
func (t *tenant) hotness() int64 { return t.recentCur.Load() + t.recentPrev.Load() }

// rollEpochs ages every tenant's hotness window (previous ← current).
// Run calls it periodically; between rolls, hotness only accumulates,
// which still orders tenants correctly for the shedding policy.
func (h *Hub) rollEpochs() {
	h.mu.RLock()
	defer h.mu.RUnlock()
	for _, t := range h.tenants {
		t.recentPrev.Store(t.recentCur.Swap(0))
	}
}

// isHotLocked reports whether t's recent volume is at or above the mean
// across tenants — the overload policy sheds cold tenants immediately and
// spends the ingest deadline only on hot ones. Integer cross-multiply
// avoids float drift; a lone tenant is always hot. Caller holds h.mu.
func (h *Hub) isHotLocked(t *tenant) bool {
	var sum int64
	for _, other := range h.tenants {
		sum += other.hotness()
	}
	return t.hotness()*int64(len(h.tenants)) >= sum
}

// updateQuarantineGauge recounts quarantined tenants after a transition.
func (h *Hub) updateQuarantineGauge() {
	h.mu.RLock()
	defer h.mu.RUnlock()
	n := 0
	for _, t := range h.tenants {
		if Health(t.health.Load()) == HealthQuarantined {
			n++
		}
	}
	h.met.quarantined.Set(int64(n))
}

// stopForwarderLocked ends the tenant's alert forwarder and waits for it
// to flush. Caller holds t.sup; safe to call twice.
func (t *tenant) stopForwarderLocked() {
	if t.stop == nil {
		return
	}
	close(t.stop)
	<-t.fwdDone
	t.stop = nil
}

// onPanic is the supervisor's catch: the op that blew up is captured to
// the tenant's dead-letter file, the tenant is quarantined (its in-memory
// state is now suspect and will never be checkpointed), and — unless the
// circuit breaker trips — a restart from durable state is scheduled with
// exponential backoff. Runs on the shard worker, so every later op for
// this tenant already sees the quarantine.
func (h *Hub) onPanic(t *tenant, o op, p any, stack []byte) {
	h.met.panics.Inc()
	seq := t.gateway().WALSeq()
	if o.kind == opIngestBatch && o.evs != nil {
		// Which event in the batch was poison is unknown here; capture them
		// all. WAL replay after restart pins down the exact record.
		for _, e := range *o.evs {
			//nolint:errcheck // forensics must not block supervision
			t.dl.Record(wal.Entry(t.home, seq, wal.IngestRecord(e), p, stack, false))
		}
	} else {
		rec := wal.IngestRecord(o.ev)
		if o.kind == opAdvance {
			rec = wal.AdvanceRecord(o.at)
		}
		//nolint:errcheck // forensics must not block supervision
		t.dl.Record(wal.Entry(t.home, seq, rec, p, stack, false))
	}

	t.suspect.Store(true)
	t.health.Store(int32(HealthQuarantined))
	h.updateQuarantineGauge()

	t.sup.Lock()
	now := time.Now()
	cutoff := now.Add(-h.o.panicWindow)
	keep := t.panicTimes[:0]
	for _, pt := range t.panicTimes {
		if pt.After(cutoff) {
			keep = append(keep, pt)
		}
	}
	t.panicTimes = append(keep, now)
	strikes := len(t.panicTimes)
	t.sup.Unlock()

	if strikes >= h.o.maxPanics {
		// Circuit open: this tenant has panicked maxPanics times inside the
		// window — restarting it again would just burn CPU replaying its way
		// back into the same crash. It stays quarantined (ops dropped,
		// siblings untouched) until evicted or the operator intervenes.
		h.met.breakerTrips.Inc()
		return
	}
	backoff := h.o.restartBackoff << (strikes - 1)
	if backoff > maxRestartBackoff || backoff <= 0 {
		backoff = maxRestartBackoff
	}
	go func() {
		time.Sleep(backoff)
		h.restartTenant(t)
	}()
}

// restartTenant rebuilds a quarantined tenant's pipeline from durable
// state: a fresh gateway on the same trained context, options, telemetry
// registry, and WAL, restored from the on-disk checkpoint and the WAL tail
// (the poison record, if it reached the log, dead-letters and skips during
// replay). On success the new gateway is swapped in atomically and the
// tenant returns to Healthy.
func (h *Hub) restartTenant(t *tenant) {
	h.mu.RLock()
	stale := h.closed || h.tenants[t.home] != t
	h.mu.RUnlock()
	if stale {
		return
	}
	t.sup.Lock()
	defer t.sup.Unlock()
	if Health(t.health.Load()) == HealthEvicted {
		return
	}
	gw, err := gateway.New(t.cctx, t.gwOpts...)
	if err == nil {
		err = h.restoreGateway(t, gw)
	}
	if err != nil {
		// The durable state itself cannot be loaded — retrying is pointless,
		// so the breaker opens and the tenant stays quarantined.
		h.met.breakerTrips.Inc()
		return
	}
	t.stopForwarderLocked()
	t.gw.Store(gw)
	t.stop = make(chan struct{})
	t.fwdDone = make(chan struct{})
	go h.forward(t, gw, t.stop, t.fwdDone)
	t.suspect.Store(false)
	t.health.Store(int32(HealthHealthy))
	h.met.restarts.Inc()
	h.updateQuarantineGauge()
}

// Health reports one home's supervision state. Evicted homes (known to
// this hub instance) report HealthEvicted; unknown homes report false.
func (h *Hub) Health(home string) (Health, bool) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	if t, ok := h.tenants[home]; ok {
		return t.currentHealth(), true
	}
	if h.evicted[home] {
		return HealthEvicted, true
	}
	return HealthHealthy, false
}

// Health reports the tenant's current supervision state.
func (tn *Tenant) Health() Health { return tn.t.currentHealth() }

// applyOp runs one data op on its tenant's gateway with the supervisor
// wrapped around it: quarantined tenants drop ops, lazily-restored state
// loads first, and a panic in dispatch is converted into quarantine +
// scheduled restart instead of killing the shard (and with it every tenant
// that hashes there).
func (h *Hub) applyOp(o op, f func(*gateway.Gateway) error) {
	t := o.t
	if Health(t.health.Load()) >= HealthQuarantined {
		h.met.droppedOps.Inc()
		return
	}
	if err := t.ensureRestored(h); err != nil {
		h.met.ingestErrors.Inc()
		return
	}
	t.lastOp.Store(time.Now().UnixNano())
	t.recentCur.Add(1)
	defer func() {
		if p := recover(); p != nil {
			h.onPanic(t, o, p, debug.Stack())
		}
	}()
	if err := f(t.gateway()); err != nil {
		h.met.ingestErrors.Inc()
	}
}
