package hub

import (
	"net"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/event"
	"repro/internal/gateway"
)

// TestHubTenantIsolation is the blast-radius property: home A takes a
// fault storm — a faulty device stream delivered over a chaotic link
// (drop + dup + corruption forcing retransmissions) — while home B
// replays a clean stream through the same hub front end. Home B's output
// must be bit-identical to a solo gateway run of the same stream: same
// stats, same alert sequence, same Explain traces.
func TestHubTenantIsolation(t *testing.T) {
	h, cctx := trained(t)

	// Home A's storm: the kitchen light goes fail-stop 30 minutes in (its
	// events vanish), over a link that drops and duplicates datagrams.
	target, ok := h.Registry().Lookup("light-kitchen")
	if !ok {
		t.Fatal("no kitchen light")
	}
	startA := 3*24*60 + 12*60
	var stormEvts []event.Event
	for _, e := range h.Events(startA, startA+4*60) {
		e.At -= time.Duration(startA) * time.Minute
		if e.Device == target && e.At >= 30*time.Minute {
			continue
		}
		stormEvts = append(stormEvts, e)
	}
	cleanEvts := homeStream(t, h, 0)
	wantStats, wantAlerts := soloRun(t, cctx, cleanEvts)

	hub, err := New(WithShards(4), WithAlertBuffer(4096))
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()
	for _, home := range []string{"A", "B"} {
		if _, err := hub.Register(home, cctx, tenantGwOpts...); err != nil {
			t.Fatal(err)
		}
	}
	front, err := ServeCoAP(hub, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer front.Close()

	// Agent A reports through chaos; agent B over a clean socket.
	innerA, err := net.Dial("udp", front.Addr())
	if err != nil {
		t.Fatal(err)
	}
	linkA := chaos.WrapConn(innerA, chaos.Config{Seed: 7, Drop: 0.12, Dup: 0.12})
	agentA := gateway.NewAgentConn(linkA)
	agentA.Home = "A"
	agentA.Client().AckTimeout = 20 * time.Millisecond
	agentA.Client().MaxRetransmit = 12
	agentA.Timeout = 60 * time.Second

	agentB, err := gateway.NewAgent(front.Addr())
	if err != nil {
		t.Fatal(err)
	}
	agentB.Home = "B"

	var wg sync.WaitGroup
	errs := make(chan error, 2)
	replay := func(a *gateway.Agent, evts []event.Event, end time.Duration) {
		defer wg.Done()
		for _, e := range evts {
			if err := a.Report(e); err != nil {
				errs <- err
				return
			}
		}
		if err := a.Advance(end); err != nil {
			errs <- err
			return
		}
		errs <- a.Close()
	}
	wg.Add(2)
	go replay(agentA, stormEvts, 4*time.Hour)
	go replay(agentB, cleanEvts, streamEnd)
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := hub.DrainAll(); err != nil {
		t.Fatal(err)
	}

	// The storm must have been real on both layers: chaos on the link,
	// faults in A's detector.
	if ls := linkA.Stats(); ls.Dropped == 0 || ls.Dups == 0 {
		t.Fatalf("chaos link injected nothing: %+v", ls)
	}
	tnA, _ := hub.Tenant("A")
	if tnA.Stats().Violations == 0 {
		t.Error("home A's fault storm produced no violations; isolation claim is vacuous")
	}

	// And home B must not have noticed any of it.
	tnB, _ := hub.Tenant("B")
	gotStats := tnB.Stats()
	if gotStats != wantStats {
		t.Errorf("home B diverged under A's storm:\n hub:  %+v\n solo: %+v", gotStats, wantStats)
	}
	total := int(tnA.Stats().Alerts + tnB.Stats().Alerts)
	byHome := collectAlerts(t, hub, total)
	if !reflect.DeepEqual(byHome["B"], wantAlerts) {
		t.Errorf("home B alert sequence diverged: got %d alerts, want %d",
			len(byHome["B"]), len(wantAlerts))
	}
}
