package hub

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/event"
	"repro/internal/gateway"
	"repro/internal/wal"
)

// poisonValue is a sensor reading no simulated device ever produces; the
// poison hook panics on it, modelling an event that crashes the pipeline.
const poisonValue = 12345.5

func poisonHook(e event.Event) error {
	if e.Value == poisonValue {
		panic("poison event")
	}
	return nil
}

// waitHealth polls one home's supervision state until it reaches want.
func waitHealth(t *testing.T, h *Hub, home string, want Health) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		st, ok := h.Health(home)
		if ok && st == want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s health = %v, never reached %v", home, st, want)
		}
		time.Sleep(time.Millisecond)
	}
}

// readDeadLetters parses a dead-letter JSONL file.
func readDeadLetters(t *testing.T, path string) []wal.DeadLetterEntry {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatalf("dead-letter file: %v", err)
	}
	defer f.Close()
	var out []wal.DeadLetterEntry
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var e wal.DeadLetterEntry
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("dead-letter line %d: %v", len(out)+1, err)
		}
		out = append(out, e)
	}
	return out
}

func alertsEqual(got, want []gateway.Alert) bool {
	if len(got) == 0 && len(want) == 0 {
		return true
	}
	return reflect.DeepEqual(got, want)
}

// TestHubPoisonQuarantineIsolation is the supervision acceptance property:
// a poison event that panics one tenant's pipeline quarantines and restarts
// that tenant from checkpoint + WAL, dead-letters the event, and leaves
// every sibling bit-identical to a solo run — and the poisoned tenant
// itself ends bit-identical to a run that never saw the poison.
func TestHubPoisonQuarantineIsolation(t *testing.T) {
	h, cctx := trained(t)
	const homes = 3
	const victim = "home-1"
	streams := make([][]event.Event, homes)
	wantStats := make([]gateway.Stats, homes)
	wantAlerts := make([][]gateway.Alert, homes)
	totalAlerts := 0
	for i := 0; i < homes; i++ {
		streams[i] = homeStream(t, h, i)
		wantStats[i], wantAlerts[i] = soloRun(t, cctx, streams[i])
		totalAlerts += len(wantAlerts[i])
	}
	if totalAlerts == 0 {
		t.Fatal("no home produced alerts; the comparison is vacuous")
	}

	cpDir, walDir := t.TempDir(), t.TempDir()
	hub, err := New(WithShards(2),
		WithCheckpointDir(cpDir), WithWALDir(walDir), WithWALSync(wal.SyncNever),
		WithAlertBuffer(4*totalAlerts+64), WithRestartBackoff(time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()
	for i := 0; i < homes; i++ {
		home := fmt.Sprintf("home-%d", i)
		opts := tenantGwOpts
		if home == victim {
			opts = append(append([]gateway.Option(nil), opts...), gateway.WithIngestHook(poisonHook))
		}
		if _, err := hub.Register(home, cctx, opts...); err != nil {
			t.Fatal(err)
		}
	}

	half := make([]int, homes)
	for i := 0; i < homes; i++ {
		half[i] = len(streams[i]) / 2
		home := fmt.Sprintf("home-%d", i)
		for _, e := range streams[i][:half[i]] {
			if err := hub.Ingest(home, e); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Checkpoint right before the poison: replay after the restart then has
	// nothing to re-emit, keeping alert delivery exactly-once in this test
	// (in general it is at-least-once across a restart).
	if err := hub.CheckpointAll(); err != nil {
		t.Fatal(err)
	}

	vi := 1 // victim's stream index
	poison := event.Event{At: streams[vi][half[vi]].At, Device: streams[vi][half[vi]].Device, Value: poisonValue}
	if err := hub.Ingest(victim, poison); err != nil {
		t.Fatal(err)
	}
	if err := hub.Drain(victim); err != nil {
		t.Fatal(err)
	}
	waitHealth(t, hub, victim, HealthHealthy)
	if n := hub.met.panics.Value(); n != 1 {
		t.Errorf("panics = %d, want 1", n)
	}
	if n := hub.met.restarts.Value(); n != 1 {
		t.Errorf("restarts = %d, want 1", n)
	}

	for i := 0; i < homes; i++ {
		home := fmt.Sprintf("home-%d", i)
		for _, e := range streams[i][half[i]:] {
			if err := hub.Ingest(home, e); err != nil {
				t.Fatal(err)
			}
		}
		if err := hub.Advance(home, streamEnd); err != nil {
			t.Fatal(err)
		}
	}
	if err := hub.DrainAll(); err != nil {
		t.Fatal(err)
	}

	byHome := collectAlerts(t, hub, totalAlerts)
	for i := 0; i < homes; i++ {
		home := fmt.Sprintf("home-%d", i)
		tn, ok := hub.Tenant(home)
		if !ok {
			t.Fatalf("%s vanished", home)
		}
		if got := tn.Stats(); got != wantStats[i] {
			t.Errorf("%s stats diverged:\n hub:  %+v\n solo: %+v", home, got, wantStats[i])
		}
		if !alertsEqual(byHome[home], wantAlerts[i]) {
			t.Errorf("%s alert sequence diverged: got %d alerts, want %d",
				home, len(byHome[home]), len(wantAlerts[i]))
		}
	}
	if n := hub.met.droppedOps.Value(); n != 0 {
		t.Errorf("droppedOps = %d with no ops sent during quarantine", n)
	}

	// The poison event must be on the forensic record twice: once from the
	// live panic, once when WAL replay re-encountered and skipped it.
	dead := readDeadLetters(t, filepath.Join(walDir, victim+".dead.jsonl"))
	if len(dead) != 2 {
		t.Fatalf("dead-letter entries = %d, want 2 (live + replay)", len(dead))
	}
	for i, d := range dead {
		if d.Home != victim || d.Value != poisonValue {
			t.Errorf("dead[%d] = home %q value %v, want %q %v", i, d.Home, d.Value, victim, poisonValue)
		}
		if !strings.Contains(d.Panic, "poison") {
			t.Errorf("dead[%d].Panic = %q, want the panic value", i, d.Panic)
		}
	}
	if dead[0].Replayed || !dead[1].Replayed {
		t.Errorf("dead-letter replay flags = %v,%v, want false,true", dead[0].Replayed, dead[1].Replayed)
	}
}

// TestHubBreakerStaysQuarantined: repeated panics within the supervision
// window open the circuit breaker — the tenant stays quarantined, its ops
// are dropped (not applied, not crashing anything), and the health
// endpoint says so.
func TestHubBreakerStaysQuarantined(t *testing.T) {
	h, cctx := trained(t)
	stream := homeStream(t, h, 0)

	cpDir, walDir := t.TempDir(), t.TempDir()
	hub, err := New(WithShards(1),
		WithCheckpointDir(cpDir), WithWALDir(walDir), WithWALSync(wal.SyncNever),
		WithAlertBuffer(4096), WithRestartBackoff(time.Millisecond),
		WithSupervision(2, time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()
	opts := append(append([]gateway.Option(nil), tenantGwOpts...), gateway.WithIngestHook(poisonHook))
	if _, err := hub.Register("casa", cctx, opts...); err != nil {
		t.Fatal(err)
	}
	const n = 50
	for _, e := range stream[:n] {
		if err := hub.Ingest("casa", e); err != nil {
			t.Fatal(err)
		}
	}
	at := stream[n].At

	// Strike one: quarantine, restart (cold + WAL replay), back to healthy.
	if err := hub.Ingest("casa", event.Event{At: at, Device: stream[n].Device, Value: poisonValue}); err != nil {
		t.Fatal(err)
	}
	if err := hub.Drain("casa"); err != nil {
		t.Fatal(err)
	}
	waitHealth(t, hub, "casa", HealthHealthy)

	// Strike two inside the window: the breaker opens, no restart comes.
	if err := hub.Ingest("casa", event.Event{At: at, Device: stream[n].Device, Value: poisonValue}); err != nil {
		t.Fatal(err)
	}
	if err := hub.Drain("casa"); err != nil {
		t.Fatal(err)
	}
	waitHealth(t, hub, "casa", HealthQuarantined)
	time.Sleep(20 * time.Millisecond) // several restart backoffs
	if st, _ := hub.Health("casa"); st != HealthQuarantined {
		t.Fatalf("health = %v after breaker trip, want quarantined", st)
	}
	if n := hub.met.breakerTrips.Value(); n == 0 {
		t.Error("breaker trip never counted")
	}

	// Ops for the broken tenant are dropped, not applied.
	if err := hub.Ingest("casa", stream[n]); err != nil {
		t.Fatal(err)
	}
	if err := hub.Drain("casa"); err != nil {
		t.Fatal(err)
	}
	if got := hub.met.droppedOps.Value(); got == 0 {
		t.Error("quarantined tenant's op was not counted as dropped")
	}
	tn, _ := hub.Tenant("casa")
	if got := tn.Stats().Events; got != n {
		t.Errorf("events = %d after quarantine, want %d (dropped op must not apply)", got, n)
	}

	// The health endpoint reports it.
	srv := httptest.NewServer(hub.HTTPHandler())
	defer srv.Close()
	for _, tc := range []struct {
		path, want string
		code       int
	}{
		{"/tenants/casa/health", "quarantined", 200},
		{"/tenants/nadie/health", "", 404},
	} {
		resp, err := srv.Client().Get(srv.URL + tc.path)
		if err != nil {
			t.Fatal(err)
		}
		body := make([]byte, 512)
		m, _ := resp.Body.Read(body)
		resp.Body.Close()
		if resp.StatusCode != tc.code {
			t.Errorf("GET %s = %d, want %d", tc.path, resp.StatusCode, tc.code)
		}
		if tc.want != "" && !strings.Contains(string(body[:m]), tc.want) {
			t.Errorf("GET %s body %q, want %q", tc.path, body[:m], tc.want)
		}
	}
}

// TestHubCrashRecoveryBitIdentical is the crash acceptance property: a hub
// abandoned without Close (SIGKILL semantics — no final checkpoint, no WAL
// close) restarts on the same directories and finishes the streams with
// stats and alerts bit-identical to uninterrupted solo runs. Zero windows
// lost; replay past the last checkpoint re-emits that span's alerts.
func TestHubCrashRecoveryBitIdentical(t *testing.T) {
	h, cctx := trained(t)
	const homes = 2
	streams := make([][]event.Event, homes)
	wantStats := make([]gateway.Stats, homes)
	wantAlerts := make([][]gateway.Alert, homes)
	for i := 0; i < homes; i++ {
		streams[i] = homeStream(t, h, i)
		wantStats[i], wantAlerts[i] = soloRun(t, cctx, streams[i])
	}

	cpDir, walDir := t.TempDir(), t.TempDir()
	newHub := func() *Hub {
		hub, err := New(WithShards(2),
			WithCheckpointDir(cpDir), WithWALDir(walDir), WithWALSync(wal.SyncNever),
			WithAlertBuffer(4096))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < homes; i++ {
			if _, err := hub.Register(fmt.Sprintf("home-%d", i), cctx, tenantGwOpts...); err != nil {
				t.Fatal(err)
			}
		}
		return hub
	}

	// First incarnation: 40% of each stream, a checkpoint, then 20% more
	// that exists only in the WAL when the "crash" hits.
	hub1 := newHub()
	feed := func(hub *Hub, from, to func(n int) int) {
		for i := 0; i < homes; i++ {
			home := fmt.Sprintf("home-%d", i)
			n := len(streams[i])
			for _, e := range streams[i][from(n):to(n)] {
				if err := hub.Ingest(home, e); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	feed(hub1, func(n int) int { return 0 }, func(n int) int { return 4 * n / 10 })
	if err := hub1.CheckpointAll(); err != nil {
		t.Fatal(err)
	}
	cpAlerts := make([]int, homes)
	for i := 0; i < homes; i++ {
		tn, _ := hub1.Tenant(fmt.Sprintf("home-%d", i))
		cpAlerts[i] = int(tn.Stats().Alerts)
	}
	feed(hub1, func(n int) int { return 4 * n / 10 }, func(n int) int { return 6 * n / 10 })
	if err := hub1.DrainAll(); err != nil {
		t.Fatal(err)
	}
	// Crash: hub1 is abandoned with dirty state — no Close, no checkpoint.

	hub2 := newHub()
	defer hub2.Close()
	feed(hub2, func(n int) int { return 6 * n / 10 }, func(n int) int { return n })
	for i := 0; i < homes; i++ {
		if err := hub2.Advance(fmt.Sprintf("home-%d", i), streamEnd); err != nil {
			t.Fatal(err)
		}
	}
	if err := hub2.DrainAll(); err != nil {
		t.Fatal(err)
	}

	wantTotal := 0
	for i := 0; i < homes; i++ {
		wantTotal += len(wantAlerts[i]) - cpAlerts[i]
	}
	byHome := collectAlerts(t, hub2, wantTotal)
	for i := 0; i < homes; i++ {
		home := fmt.Sprintf("home-%d", i)
		tn, ok := hub2.Tenant(home)
		if !ok {
			t.Fatalf("%s vanished", home)
		}
		if got := tn.Stats(); got != wantStats[i] {
			t.Errorf("%s stats diverged after crash recovery:\n hub:  %+v\n solo: %+v", home, got, wantStats[i])
		}
		// The restarted hub re-emits everything after its last checkpoint:
		// the replayed 40–60% span plus the live tail.
		if !alertsEqual(byHome[home], wantAlerts[i][cpAlerts[i]:]) {
			t.Errorf("%s post-crash alerts diverged: got %d, want %d",
				home, len(byHome[home]), len(wantAlerts[i])-cpAlerts[i])
		}
	}
}

// TestHubOverloadShedsColdFirst: with an ingest deadline configured and a
// full shard queue, a cold tenant sheds immediately while a hot tenant
// spends the deadline waiting for a slot — and blocking Ingest converts
// the timeout into ErrDeadline instead of waiting forever.
func TestHubOverloadShedsColdFirst(t *testing.T) {
	_, cctx := trained(t)
	const deadline = 80 * time.Millisecond
	hub, err := New(WithShards(1), WithQueueDepth(2), WithIngestDeadline(deadline))
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()
	for _, home := range []string{"hot", "cold"} {
		if _, err := hub.Register(home, cctx, tenantGwOpts...); err != nil {
			t.Fatal(err)
		}
	}
	hub.mu.RLock()
	s := hub.shards[0]
	hub.tenants["hot"].recentCur.Add(1000)
	hub.mu.RUnlock()

	stall := make(chan struct{})
	defer func() {
		select {
		case <-stall:
		default:
			close(stall)
		}
	}()
	s.depth.Add(1)
	s.ops <- op{kind: opStall, done: stall}
	for deadlineAt := time.Now().Add(5 * time.Second); len(s.ops) != 0; {
		if time.Now().After(deadlineAt) {
			t.Fatal("worker never picked up the stall op")
		}
		time.Sleep(time.Millisecond)
	}
	e := event.Event{At: time.Second, Device: 0, Value: 1}
	for i := 0; i < 2; i++ {
		if err := hub.TryIngest("hot", e); err != nil {
			t.Fatalf("fill op %d: %v", i, err)
		}
	}

	start := time.Now()
	if err := hub.TryIngest("cold", e); !errors.Is(err, ErrShed) {
		t.Fatalf("cold TryIngest = %v, want ErrShed", err)
	}
	if el := time.Since(start); el > deadline/2 {
		t.Errorf("cold tenant shed after %v, want immediate", el)
	}
	start = time.Now()
	if err := hub.TryIngest("hot", e); !errors.Is(err, ErrShed) {
		t.Fatalf("hot TryIngest = %v, want ErrShed", err)
	}
	if el := time.Since(start); el < deadline/2 {
		t.Errorf("hot tenant shed after %v, want ~the %v deadline", el, deadline)
	}
	start = time.Now()
	if err := hub.Ingest("hot", e); !errors.Is(err, ErrDeadline) {
		t.Fatalf("blocking Ingest on full queue = %v, want ErrDeadline", err)
	}
	if el := time.Since(start); el < deadline/2 {
		t.Errorf("blocking Ingest returned after %v, want ~the %v deadline", el, deadline)
	}
	if n := hub.met.deadlineSheds.Value(); n != 3 {
		t.Errorf("deadline sheds = %d, want 3", n)
	}
	if st, _ := hub.Health("cold"); st != HealthDegraded {
		t.Errorf("cold health = %v after shed, want degraded", st)
	}

	close(stall)
	if err := hub.DrainAll(); err != nil {
		t.Fatal(err)
	}
	tn, _ := hub.Tenant("hot")
	if got := tn.Stats().Events; got != 2 {
		t.Errorf("hot events = %d, want the 2 queued before overload", got)
	}
}

// TestHubCorruptCheckpointColdStart: a checkpoint that fails its checksum
// envelope is treated as absent — the tenant cold-starts and rebuilds the
// same state from full WAL replay, and the damage is counted.
func TestHubCorruptCheckpointColdStart(t *testing.T) {
	h, cctx := trained(t)
	stream := homeStream(t, h, 1)
	const n = 200

	ref, err := gateway.New(cctx, tenantGwOpts...)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range stream[:n] {
		if err := ref.Ingest(e); err != nil {
			t.Fatal(err)
		}
	}
	refStats := ref.Stats()

	cpDir, walDir := t.TempDir(), t.TempDir()
	mk := func() *Hub {
		hub, err := New(WithShards(1),
			WithCheckpointDir(cpDir), WithWALDir(walDir), WithWALSync(wal.SyncNever),
			WithAlertBuffer(4096))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := hub.Register("casa", cctx, tenantGwOpts...); err != nil {
			t.Fatal(err)
		}
		return hub
	}
	hub1 := mk()
	for _, e := range stream[:n] {
		if err := hub1.Ingest("casa", e); err != nil {
			t.Fatal(err)
		}
	}
	if err := hub1.Close(); err != nil {
		t.Fatal(err)
	}

	cpPath := filepath.Join(cpDir, "casa.ckpt")
	data, err := os.ReadFile(cpPath)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-2] ^= 0x40
	if err := os.WriteFile(cpPath, data, 0o644); err != nil {
		t.Fatal(err)
	}

	hub2 := mk()
	defer hub2.Close()
	// CheckpointAll forces the lazy restore (corrupt file → cold start +
	// full WAL replay) and then overwrites the damage with a good file.
	if err := hub2.CheckpointAll(); err != nil {
		t.Fatal(err)
	}
	if got := hub2.met.corruptCkpts.Value(); got != 1 {
		t.Errorf("corrupt checkpoints = %d, want 1", got)
	}
	tn, _ := hub2.Tenant("casa")
	if got := tn.Stats(); got != refStats {
		t.Errorf("cold-start state diverged:\n hub:  %+v\n solo: %+v", got, refStats)
	}
	cp, err := gateway.ReadCheckpoint(cpPath)
	if err != nil {
		t.Fatalf("rewritten checkpoint unreadable: %v", err)
	}
	if cp.Stats.Events != n {
		t.Errorf("rewritten checkpoint events = %d, want %d", cp.Stats.Events, n)
	}
}
