package hub

import (
	"encoding/json"
	"errors"
	"testing"
)

// TestHubExportAdoptShippedTail is the drain-and-handoff unit drill with
// nothing shared between the hubs: the envelope alone (checkpoint + WAL
// tail) must carry the tenant, and the adopted tenant must finish the
// stream bit-identical to a solo gateway.
func TestHubExportAdoptShippedTail(t *testing.T) {
	h, cctx := trained(t)
	stream := homeStream(t, h, 1) // odd home: produces real alerts
	wantStats, wantAlerts := soloRun(t, cctx, stream)

	const home = "home-01"
	dirA := t.TempDir()
	src, err := New(WithShards(2), WithWALDir(dirA), WithCheckpointDir(dirA), WithAlertBuffer(4096))
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	if _, err := src.Register(home, cctx, tenantGwOpts...); err != nil {
		t.Fatal(err)
	}
	half := len(stream) / 2
	if err := src.IngestBatch(home, stream[:half]); err != nil {
		t.Fatal(err)
	}
	if err := src.Drain(home); err != nil {
		t.Fatal(err)
	}

	exp, err := src.ExportTenant(home)
	if err != nil {
		t.Fatal(err)
	}
	if exp.Home != home || len(exp.Checkpoint) == 0 {
		t.Fatalf("export envelope: home=%q, %d checkpoint bytes", exp.Home, len(exp.Checkpoint))
	}
	// The export is an eviction: the source no longer serves the home.
	if _, ok := src.Tenant(home); ok {
		t.Fatal("source still hosts the tenant after export")
	}
	if err := src.Ingest(home, stream[half]); !errors.Is(err, ErrUnknownHome) {
		t.Fatalf("ingest after export = %v, want ErrUnknownHome", err)
	}

	// The envelope must round-trip through its wire encoding — that is
	// what actually crosses the node boundary.
	wireBytes, err := json.Marshal(exp)
	if err != nil {
		t.Fatal(err)
	}
	var shipped ExportedTenant
	if err := json.Unmarshal(wireBytes, &shipped); err != nil {
		t.Fatal(err)
	}

	dirB := t.TempDir()
	dst, err := New(WithShards(2), WithWALDir(dirB), WithCheckpointDir(dirB), WithAlertBuffer(4096))
	if err != nil {
		t.Fatal(err)
	}
	defer dst.Close()
	if _, err := dst.Adopt(&shipped, cctx, tenantGwOpts...); err != nil {
		t.Fatalf("adopt: %v", err)
	}

	if err := dst.IngestBatch(home, stream[half:]); err != nil {
		t.Fatal(err)
	}
	if err := dst.Advance(home, streamEnd); err != nil {
		t.Fatal(err)
	}
	if err := dst.Drain(home); err != nil {
		t.Fatal(err)
	}
	tn, ok := dst.Tenant(home)
	if !ok {
		t.Fatal("adopted tenant vanished")
	}
	if got := tn.Stats(); got != wantStats {
		t.Fatalf("adopted stats diverged:\n hub:  %+v\n solo: %+v", got, wantStats)
	}
	last, ok := tn.LastAlert()
	if !ok || len(wantAlerts) == 0 {
		t.Fatalf("alert coverage lost: hub has alert=%v, solo raised %d", ok, len(wantAlerts))
	}
	gotJSON, _ := json.Marshal(last)
	wantJSON, _ := json.Marshal(wantAlerts[len(wantAlerts)-1])
	if string(gotJSON) != string(wantJSON) {
		t.Fatalf("last alert diverged:\n hub:  %s\n solo: %s", gotJSON, wantJSON)
	}

	// The adopted WAL continues the donor's sequence space: a crash right
	// now must recover from the destination's own disk, bit-identical.
	if err := dst.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := New(WithShards(2), WithWALDir(dirB), WithCheckpointDir(dirB), WithAlertBuffer(4096))
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	rt, err := re.Register(home, cctx, tenantGwOpts...)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Restore(); err != nil {
		t.Fatal(err)
	}
	if got := rt.Stats(); got != wantStats {
		t.Fatalf("post-adopt recovery diverged:\n hub:  %+v\n solo: %+v", got, wantStats)
	}
}

// TestHubExportTenantUnknown: exporting a home the hub does not host is an
// error, not an empty envelope.
func TestHubExportTenantUnknown(t *testing.T) {
	_, cctx := trained(t)
	hb, err := New(WithShards(1))
	if err != nil {
		t.Fatal(err)
	}
	defer hb.Close()
	if _, err := hb.Register("present", cctx, tenantGwOpts...); err != nil {
		t.Fatal(err)
	}
	if _, err := hb.ExportTenant("absent"); !errors.Is(err, ErrUnknownHome) {
		t.Fatalf("ExportTenant(absent) = %v, want ErrUnknownHome", err)
	}
}
