package hub

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/gateway"
)

// ErrMigrating is returned for data ops on a tenant that is mid-handoff to
// another node. The op was not applied and will not be covered by the
// exported state; the caller should retry against the new owner.
var ErrMigrating = errors.New("hub: tenant migrating")

// ExportedTenant is the wire-shippable closure of one tenant's durable
// state: a checksummed checkpoint envelope, the WAL tail past it (empty by
// construction — ExportTenant checkpoints after the drain — but shipped so
// an adopter never has to trust that), and the source's settled counters,
// which the adopter re-derives and compares as a bit-identity oracle.
type ExportedTenant struct {
	Home       string        `json:"home"`
	Checkpoint []byte        `json:"checkpoint"`
	Tail       [][]byte      `json:"tail,omitempty"`
	Stats      gateway.Stats `json:"stats"`
}

// ExportTenant drains a tenant and packages its full state for adoption by
// another hub, evicting it locally on the way out:
//
//  1. the tenant enters Migrating — ops already queued still apply (the
//     export happens after the drain, so they are covered), new data ops
//     are rejected with ErrMigrating so the caller re-routes them;
//  2. a barrier proves every accepted op has been applied;
//  3. a fresh checkpoint is written locally (the shared-state fail-over
//     path sees it too) and encoded into the envelope, with the WAL tail
//     past it;
//  4. the tenant is evicted and its WAL closed, so the adopter is the only
//     writer from here on.
//
// On failure before eviction the tenant returns to Healthy and keeps
// serving locally. A quarantined or suspect tenant refuses to export: its
// in-memory state is not trustworthy, and fail-over from durable state is
// the correct path for it.
func (h *Hub) ExportTenant(home string) (*ExportedTenant, error) {
	h.mu.RLock()
	if h.closed {
		h.mu.RUnlock()
		return nil, ErrClosed
	}
	t, ok := h.tenants[home]
	h.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownHome, home)
	}
	if !t.health.CompareAndSwap(int32(HealthHealthy), int32(HealthMigrating)) {
		return nil, fmt.Errorf("hub: tenant %q is %s, not migratable", home, Health(t.health.Load()))
	}
	abort := func(err error) (*ExportedTenant, error) {
		t.health.CompareAndSwap(int32(HealthMigrating), int32(HealthHealthy))
		return nil, err
	}
	if err := h.Drain(home); err != nil {
		return abort(err)
	}
	// A panic while the queue drained would have flipped the tenant to
	// Quarantined and marked it suspect — its memory is no longer exportable.
	if Health(t.health.Load()) != HealthMigrating || t.suspect.Load() {
		return nil, fmt.Errorf("hub: tenant %q crashed during migration drain", home)
	}
	if err := t.ensureRestored(h); err != nil {
		return abort(err)
	}
	cp := t.gateway().ExportCheckpoint()
	cp.Home = home
	env, err := gateway.EncodeCheckpoint(cp)
	if err != nil {
		return abort(err)
	}
	if t.cpPath != "" {
		if err := gateway.WriteCheckpoint(t.cpPath, cp); err != nil {
			return abort(err)
		}
	}
	exp := &ExportedTenant{Home: home, Checkpoint: env, Stats: t.gateway().Stats()}
	if t.wl != nil {
		if err := t.wl.TruncateThrough(cp.WALSeq); err != nil {
			return abort(err)
		}
		tail, err := t.wl.ExportTail(cp.WALSeq)
		if err != nil {
			return abort(err)
		}
		exp.Tail = tail
	}

	// Point of no return: evict, so the adopter becomes the sole writer.
	h.mu.Lock()
	delete(h.tenants, home)
	h.evicted[home] = true
	h.met.tenants.Set(int64(len(h.tenants)))
	h.mu.Unlock()
	t.sup.Lock()
	t.health.Store(int32(HealthEvicted))
	t.stopForwarderLocked()
	t.sup.Unlock()
	h.updateQuarantineGauge()
	h.met.evictions.Inc()
	if t.wl != nil {
		if err := t.wl.Close(); err != nil {
			return exp, err
		}
	}
	return exp, nil
}

// Adopt registers a tenant from an ExportTenant envelope and restores it
// eagerly: checkpoint first, then the WAL — the local log's own tail when
// the nodes share durable state (the adopter's Register reopened the
// donor's WAL directory), the shipped tail otherwise, appended so the
// donor's sequence space continues unbroken. The restored counters must
// equal the donor's settled Stats — the same oracle the crash-recovery
// drills gate on — or the adoption fails before the tenant serves anything.
func (h *Hub) Adopt(exp *ExportedTenant, cctx *core.Context, opts ...gateway.Option) (*Tenant, error) {
	if exp == nil {
		return nil, errors.New("hub: nil tenant export")
	}
	cp, err := gateway.DecodeCheckpoint(exp.Checkpoint)
	if err != nil {
		return nil, err
	}
	if cp.Home != "" && cp.Home != exp.Home {
		return nil, fmt.Errorf("hub: export for %q carries checkpoint for %q", exp.Home, cp.Home)
	}
	tn, err := h.Register(exp.Home, cctx, opts...)
	if err != nil {
		return nil, err
	}
	t := tn.t
	t.restore.Do(func() {
		gw := t.gateway()
		t.restoreErr = gw.RestoreCheckpoint(cp)
		if t.restoreErr != nil {
			return
		}
		if t.wl != nil && t.wl.LastSeq() > 0 {
			// Shared durable state: the reopened log already holds the
			// donor's frames; replay anything past the checkpoint.
			t.restoreErr = gw.RecoverWAL()
		} else {
			t.restoreErr = gw.ImportTail(exp.Tail)
		}
	})
	if t.restoreErr != nil {
		h.Evict(exp.Home) //nolint:errcheck // adoption failed; best-effort cleanup
		return nil, fmt.Errorf("hub: adopt %q: %w", exp.Home, t.restoreErr)
	}
	if got := t.gateway().Stats(); got != exp.Stats {
		h.Evict(exp.Home) //nolint:errcheck // adoption failed; best-effort cleanup
		return nil, fmt.Errorf("hub: adopt %q: restored stats %+v != donor %+v", exp.Home, got, exp.Stats)
	}
	if err := h.checkpointTenant(t); err != nil {
		return nil, err
	}
	return tn, nil
}

// Restore forces the tenant's lazy durable-state load to run now. A no-op
// if it already ran; the cold fail-over path calls it so a re-placed home
// is proven loadable (and its counters settled) before traffic resumes.
func (tn *Tenant) Restore() error { return tn.t.ensureRestored(tn.h) }
