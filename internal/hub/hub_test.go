package hub

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/event"
	"repro/internal/gateway"
	"repro/internal/simhome"
)

// Training is the expensive part of every hub test, and the trained
// context is immutable (gateways only read it), so one context is shared
// by the whole package.
var (
	trainOnce sync.Once
	trainedH  *simhome.Home
	trainedC  *core.Context
	trainErr  error
)

func trained(t testing.TB) (*simhome.Home, *core.Context) {
	t.Helper()
	trainOnce.Do(func() {
		spec := simhome.SpecDHouseA()
		spec.Name = "hub-test"
		spec.Hours = 5 * 24
		h, err := simhome.New(spec, 21)
		if err != nil {
			trainErr = err
			return
		}
		trainW := 3 * 24 * 60
		tr := core.NewTrainer(h.Layout(), time.Minute)
		for i := 0; i < trainW; i++ {
			if err := tr.Calibrate(h.Window(i)); err != nil {
				trainErr = err
				return
			}
		}
		if err := tr.FinishCalibration(); err != nil {
			trainErr = err
			return
		}
		for i := 0; i < trainW; i++ {
			if err := tr.Learn(h.Window(i)); err != nil {
				trainErr = err
				return
			}
		}
		trainedH = h
		trainedC, trainErr = tr.Context()
	})
	if trainErr != nil {
		t.Fatal(trainErr)
	}
	return trainedH, trainedC
}

// homeStream is one tenant's replay: a 2-hour slice of the simulated home
// starting at a per-home hour offset, rebased to stream time zero. Odd
// homes get a spurious-bulb actuator fault so the workload produces real
// alerts, not just clean windows.
func homeStream(t testing.TB, h *simhome.Home, i int) []event.Event {
	t.Helper()
	src := h
	start := 3*24*60 + i*60
	if i%2 == 1 {
		bulb, ok := h.Registry().Lookup("bulb-kitchen")
		if !ok {
			t.Fatal("no kitchen bulb")
		}
		src = h.WithActuatorFaults(simhome.ActuatorFaults{
			Spurious:   map[device.ID]bool{bulb: true},
			Seed:       int64(100 + i),
			FromMinute: start,
		})
	}
	evts := src.Events(start, start+2*60)
	out := make([]event.Event, 0, len(evts))
	for _, e := range evts {
		e.At -= time.Duration(start) * time.Minute
		out = append(out, e)
	}
	return out
}

const streamEnd = 2 * time.Hour

var tenantGwOpts = []gateway.Option{
	gateway.WithConfig(core.Config{}),
	gateway.WithAlertBuffer(4096),
}

// soloRun replays one stream through a standalone gateway — the reference
// the hub must reproduce bit-identically per home.
func soloRun(t testing.TB, cctx *core.Context, evts []event.Event) (gateway.Stats, []gateway.Alert) {
	t.Helper()
	gw, err := gateway.New(cctx, tenantGwOpts...)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range evts {
		if err := gw.Ingest(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := gw.AdvanceTo(streamEnd); err != nil {
		t.Fatal(err)
	}
	st := gw.Stats()
	if st.AlertsDropped != 0 {
		t.Fatalf("solo run dropped %d alerts; reference is unusable", st.AlertsDropped)
	}
	var alerts []gateway.Alert
	for {
		select {
		case a := <-gw.Alerts():
			alerts = append(alerts, a)
		default:
			return st, alerts
		}
	}
}

// collectAlerts drains the hub channel until every home has produced its
// expected count (read from tenant stats) or the deadline passes.
func collectAlerts(t testing.TB, h *Hub, want int) map[string][]gateway.Alert {
	t.Helper()
	byHome := make(map[string][]gateway.Alert)
	total := 0
	deadline := time.Now().Add(10 * time.Second)
	for total < want {
		select {
		case a := <-h.Alerts():
			byHome[a.Home] = append(byHome[a.Home], a.Alert)
			total++
		default:
			if time.Now().After(deadline) {
				t.Fatalf("collected %d/%d hub alerts before deadline", total, want)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	return byHome
}

// TestHubBitIdenticalToSolo is the tentpole acceptance property: 8 homes
// replayed concurrently through one hub produce, per home, exactly the
// stats and alert sequence (Explain traces included) of 8 standalone
// gateway runs — at every shard count.
func TestHubBitIdenticalToSolo(t *testing.T) {
	h, cctx := trained(t)
	const homes = 8
	streams := make([][]event.Event, homes)
	wantStats := make([]gateway.Stats, homes)
	wantAlerts := make([][]gateway.Alert, homes)
	totalAlerts := 0
	for i := 0; i < homes; i++ {
		streams[i] = homeStream(t, h, i)
		wantStats[i], wantAlerts[i] = soloRun(t, cctx, streams[i])
		totalAlerts += len(wantAlerts[i])
	}
	if totalAlerts == 0 {
		t.Fatal("no home produced alerts; the comparison is vacuous")
	}

	for _, shards := range []int{1, 3, 8} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			hub, err := New(WithShards(shards), WithQueueDepth(64), WithAlertBuffer(4*totalAlerts+64))
			if err != nil {
				t.Fatal(err)
			}
			defer hub.Close()
			for i := 0; i < homes; i++ {
				if _, err := hub.Register(fmt.Sprintf("home-%d", i), cctx, tenantGwOpts...); err != nil {
					t.Fatal(err)
				}
			}
			var wg sync.WaitGroup
			errs := make(chan error, homes)
			for i := 0; i < homes; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					home := fmt.Sprintf("home-%d", i)
					for _, e := range streams[i] {
						if err := hub.Ingest(home, e); err != nil {
							errs <- err
							return
						}
					}
					errs <- hub.Advance(home, streamEnd)
				}(i)
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				if err != nil {
					t.Fatal(err)
				}
			}
			if err := hub.DrainAll(); err != nil {
				t.Fatal(err)
			}
			byHome := collectAlerts(t, hub, totalAlerts)
			for i := 0; i < homes; i++ {
				home := fmt.Sprintf("home-%d", i)
				tn, ok := hub.Tenant(home)
				if !ok {
					t.Fatalf("%s vanished", home)
				}
				if got := tn.Stats(); got != wantStats[i] {
					t.Errorf("%s stats diverged:\n hub:  %+v\n solo: %+v", home, got, wantStats[i])
				}
				if !reflect.DeepEqual(byHome[home], wantAlerts[i]) {
					t.Errorf("%s alert sequence diverged: got %d alerts, want %d",
						home, len(byHome[home]), len(wantAlerts[i]))
				}
			}
			if n := hub.met.ingestErrors.Value(); n != 0 {
				t.Errorf("hub recorded %d ingest errors on a valid replay", n)
			}
		})
	}
}

// TestHubEvictResumeFromCheckpoint replays one home in two halves with an
// eviction in between: the final state must match an uninterrupted solo
// run, proving the final checkpoint on Evict and the lazy restore on the
// first op after re-registration.
func TestHubEvictResumeFromCheckpoint(t *testing.T) {
	h, cctx := trained(t)
	stream := homeStream(t, h, 1)
	wantStats, wantAlerts := soloRun(t, cctx, stream)

	dir := t.TempDir()
	hub, err := New(WithShards(2), WithCheckpointDir(dir), WithAlertBuffer(4096))
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()
	if _, err := hub.Register("casa", cctx, tenantGwOpts...); err != nil {
		t.Fatal(err)
	}
	half := len(stream) / 2
	for _, e := range stream[:half] {
		if err := hub.Ingest("casa", e); err != nil {
			t.Fatal(err)
		}
	}
	var firstHalf []gateway.Alert
	if err := hub.Drain("casa"); err != nil {
		t.Fatal(err)
	}
	tn, _ := hub.Tenant("casa")
	firstHalf = append(firstHalf, collectAlerts(t, hub, int(tn.Stats().Alerts))["casa"]...)
	if err := hub.Evict("casa"); err != nil {
		t.Fatal(err)
	}
	if _, ok := hub.Tenant("casa"); ok {
		t.Fatal("evicted tenant still registered")
	}
	cp, err := gateway.ReadCheckpoint(filepath.Join(dir, "casa.ckpt"))
	if err != nil {
		t.Fatal(err)
	}
	if cp.Home != "casa" {
		t.Errorf("checkpoint home = %q, want casa", cp.Home)
	}
	if cp.V != gateway.CheckpointVersion {
		t.Errorf("checkpoint v = %d, want %d", cp.V, gateway.CheckpointVersion)
	}

	if _, err := hub.Register("casa", cctx, tenantGwOpts...); err != nil {
		t.Fatal(err)
	}
	for _, e := range stream[half:] {
		if err := hub.Ingest("casa", e); err != nil {
			t.Fatal(err)
		}
	}
	if err := hub.Advance("casa", streamEnd); err != nil {
		t.Fatal(err)
	}
	if err := hub.Drain("casa"); err != nil {
		t.Fatal(err)
	}
	tn, _ = hub.Tenant("casa")
	got := tn.Stats()
	if got != wantStats {
		t.Errorf("stitched run diverged:\n hub:  %+v\n solo: %+v", got, wantStats)
	}
	rest := collectAlerts(t, hub, int(got.Alerts)-len(firstHalf))["casa"]
	stitched := append(firstHalf, rest...)
	if !reflect.DeepEqual(stitched, wantAlerts) {
		t.Errorf("stitched alerts diverged: got %d, want %d", len(stitched), len(wantAlerts))
	}
}

// TestHubRejectsForeignCheckpoint: a checkpoint stamped with another home
// must not restore into this tenant; the op is dropped and counted.
func TestHubRejectsForeignCheckpoint(t *testing.T) {
	h, cctx := trained(t)
	dir := t.TempDir()

	gw, err := gateway.New(cctx, tenantGwOpts...)
	if err != nil {
		t.Fatal(err)
	}
	cp := gw.ExportCheckpoint()
	cp.Home = "other"
	if err := gateway.WriteCheckpoint(filepath.Join(dir, "casa.ckpt"), cp); err != nil {
		t.Fatal(err)
	}

	hub, err := New(WithShards(1), WithCheckpointDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()
	if _, err := hub.Register("casa", cctx, tenantGwOpts...); err != nil {
		t.Fatal(err)
	}
	stream := homeStream(t, h, 0)
	if err := hub.Ingest("casa", stream[0]); err != nil {
		t.Fatal(err)
	}
	if err := hub.Drain("casa"); err != nil {
		t.Fatal(err)
	}
	if n := hub.met.ingestErrors.Value(); n == 0 {
		t.Error("foreign checkpoint restored without complaint")
	}
	tn, _ := hub.Tenant("casa")
	if tn.Stats().Events != 0 {
		t.Error("event applied despite failed restore")
	}
}

// TestHubResizeMidStream rebalances the shard pool in the middle of a
// replay; detection output must not change.
func TestHubResizeMidStream(t *testing.T) {
	h, cctx := trained(t)
	stream := homeStream(t, h, 3)
	wantStats, _ := soloRun(t, cctx, stream)

	hub, err := New(WithShards(1), WithAlertBuffer(4096))
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()
	if _, err := hub.Register("casa", cctx, tenantGwOpts...); err != nil {
		t.Fatal(err)
	}
	half := len(stream) / 2
	for _, e := range stream[:half] {
		if err := hub.Ingest("casa", e); err != nil {
			t.Fatal(err)
		}
	}
	if err := hub.Resize(3); err != nil {
		t.Fatal(err)
	}
	if got := hub.Shards(); got != 3 {
		t.Fatalf("shards = %d after resize, want 3", got)
	}
	for _, e := range stream[half:] {
		if err := hub.Ingest("casa", e); err != nil {
			t.Fatal(err)
		}
	}
	if err := hub.Advance("casa", streamEnd); err != nil {
		t.Fatal(err)
	}
	if err := hub.Drain("casa"); err != nil {
		t.Fatal(err)
	}
	tn, _ := hub.Tenant("casa")
	if got := tn.Stats(); got != wantStats {
		t.Errorf("resized run diverged:\n hub:  %+v\n solo: %+v", got, wantStats)
	}
	if n := hub.met.rebalances.Value(); n != 1 {
		t.Errorf("rebalances = %d, want 1", n)
	}
}

// TestHubIdleEviction: Run evicts a tenant that stops sending ops, with a
// final checkpoint on disk.
func TestHubIdleEviction(t *testing.T) {
	h, cctx := trained(t)
	dir := t.TempDir()
	hub, err := New(WithShards(1), WithCheckpointDir(dir), WithIdleEviction(50*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()
	if _, err := hub.Register("casa", cctx, tenantGwOpts...); err != nil {
		t.Fatal(err)
	}
	stream := homeStream(t, h, 0)
	for _, e := range stream[:100] {
		if err := hub.Ingest("casa", e); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	runDone := make(chan error, 1)
	go func() { runDone <- hub.Run(ctx, nil) }()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, ok := hub.Tenant("casa"); !ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("idle tenant never evicted")
		}
		time.Sleep(10 * time.Millisecond)
	}
	cancel()
	if err := <-runDone; err != nil {
		t.Fatal(err)
	}
	if n := hub.met.evictions.Value(); n == 0 {
		t.Error("eviction counter never moved")
	}
	cp, err := gateway.ReadCheckpoint(filepath.Join(dir, "casa.ckpt"))
	if err != nil {
		t.Fatal(err)
	}
	if cp.Stats.Events != 100 {
		t.Errorf("checkpointed events = %d, want 100", cp.Stats.Events)
	}
}

// TestHubShedsWhenQueueFull: with the worker parked and the queue full,
// TryIngest sheds (counted) while Ingest would block — backpressure and
// load-shedding are both real.
func TestHubShedsWhenQueueFull(t *testing.T) {
	_, cctx := trained(t)
	hub, err := New(WithShards(1), WithQueueDepth(2))
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()
	if _, err := hub.Register("casa", cctx, tenantGwOpts...); err != nil {
		t.Fatal(err)
	}
	hub.mu.RLock()
	s := hub.shards[0]
	hub.mu.RUnlock()
	stall := make(chan struct{})
	release := sync.OnceFunc(func() { close(stall) })
	defer release() // the parked worker must be released even on a Fatalf
	s.depth.Add(1)
	s.ops <- op{kind: opStall, done: stall}
	// Wait for the worker to dequeue the stall and park, so the queue's
	// two slots are genuinely free.
	for deadline := time.Now().Add(5 * time.Second); len(s.ops) != 0; {
		if time.Now().After(deadline) {
			t.Fatal("worker never picked up the stall op")
		}
		time.Sleep(time.Millisecond)
	}
	e := event.Event{At: time.Second, Device: 0, Value: 1}
	for i := 0; i < 2; i++ {
		if err := hub.TryIngest("casa", e); err != nil {
			t.Fatalf("op %d shed with queue space free: %v", i, err)
		}
	}
	if err := hub.TryIngest("casa", e); err != ErrShed {
		t.Fatalf("full queue returned %v, want ErrShed", err)
	}
	if n := s.shed.Value(); n != 1 {
		t.Errorf("shed counter = %d, want 1", n)
	}
	release()
	if err := hub.Drain("casa"); err != nil {
		t.Fatal(err)
	}
	tn, _ := hub.Tenant("casa")
	if got := tn.Stats().Events; got != 2 {
		t.Errorf("events = %d after shedding, want 2", got)
	}
}

// TestHubUnknownHome: routing errors are immediate, not queued.
func TestHubUnknownHome(t *testing.T) {
	_, cctx := trained(t)
	hub, err := New(WithShards(1))
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()
	if _, err := hub.Register("casa", cctx, tenantGwOpts...); err != nil {
		t.Fatal(err)
	}
	if err := hub.Ingest("nadie", event.Event{At: time.Second}); err == nil {
		t.Error("ingest for unregistered home accepted")
	}
	if err := hub.Evict("nadie"); err == nil {
		t.Error("evicting unregistered home succeeded")
	}
	if _, err := hub.Register("casa", cctx); err == nil {
		t.Error("double registration accepted")
	}
	if _, err := hub.Register("a/b", cctx); err == nil {
		t.Error("home ID with path separator accepted")
	}
	if _, err := hub.Register("", cctx); err == nil {
		t.Error("empty home ID accepted")
	}
}

// TestHubClosedHubRefusesEverything: Close is terminal.
func TestHubClosedHubRefusesEverything(t *testing.T) {
	_, cctx := trained(t)
	hub, err := New(WithShards(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := hub.Register("casa", cctx, tenantGwOpts...); err != nil {
		t.Fatal(err)
	}
	if err := hub.Close(); err != nil {
		t.Fatal(err)
	}
	if err := hub.Close(); err != nil {
		t.Fatal("second Close errored")
	}
	if err := hub.Ingest("casa", event.Event{At: time.Second}); err != ErrClosed {
		t.Errorf("ingest on closed hub: %v, want ErrClosed", err)
	}
	if _, err := hub.Register("otra", cctx); err != ErrClosed {
		t.Errorf("register on closed hub: %v, want ErrClosed", err)
	}
	if err := hub.Resize(2); err != ErrClosed {
		t.Errorf("resize on closed hub: %v, want ErrClosed", err)
	}
}

// TestHubCloseWritesCheckpoints: Close persists every tenant.
func TestHubCloseWritesCheckpoints(t *testing.T) {
	h, cctx := trained(t)
	dir := t.TempDir()
	hub, err := New(WithShards(2), WithCheckpointDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	for _, home := range []string{"a", "b"} {
		if _, err := hub.Register(home, cctx, tenantGwOpts...); err != nil {
			t.Fatal(err)
		}
	}
	stream := homeStream(t, h, 0)
	for _, e := range stream[:50] {
		if err := hub.Ingest("a", e); err != nil {
			t.Fatal(err)
		}
	}
	if err := hub.Close(); err != nil {
		t.Fatal(err)
	}
	for _, home := range []string{"a", "b"} {
		if _, err := os.Stat(filepath.Join(dir, home+".ckpt")); err != nil {
			t.Errorf("no checkpoint for %s after Close: %v", home, err)
		}
	}
	cp, err := gateway.ReadCheckpoint(filepath.Join(dir, "a.ckpt"))
	if err != nil {
		t.Fatal(err)
	}
	if cp.Stats.Events != 50 {
		t.Errorf("checkpointed events = %d, want 50", cp.Stats.Events)
	}
}
