package hub

import (
	"context"
	"encoding/json"
	"testing"
	"time"

	"repro/internal/coap"
	"repro/internal/core"
	"repro/internal/gateway"
)

// GET /context/{home} over CoAP must report the active schema and timing
// capability, matching the HTTP /tenants/{home}/context view.
func TestHubCoAPContextResource(t *testing.T) {
	_, cctx := trained(t)
	hub, err := New(WithShards(1))
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()
	if _, err := hub.Register("home-a", cctx, tenantGwOpts...); err != nil {
		t.Fatal(err)
	}
	front, err := ServeCoAP(hub, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer front.Close()

	cl, err := coap.Dial(front.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	get := func(path string) *coap.Message {
		t.Helper()
		req := &coap.Message{Code: coap.CodeGET}
		req.SetPath(path)
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		resp, err := cl.Do(ctx, req)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	resp := get("context/home-a")
	if resp.Code != coap.CodeContent {
		t.Fatalf("GET /context/home-a code = %v", resp.Code)
	}
	var info gateway.ContextInfo
	if err := json.Unmarshal(resp.Payload, &info); err != nil {
		t.Fatalf("payload: %v", err)
	}
	if info.ContextSchema != core.ContextSchemaV2 || !info.TimingCapable {
		t.Errorf("GET /context/home-a = %+v, want schema %d and timing capable",
			info, core.ContextSchemaV2)
	}
	if resp := get("context/nobody"); resp.Code != coap.CodeNotFound {
		t.Errorf("GET /context/nobody code = %v, want 4.04", resp.Code)
	}
}
