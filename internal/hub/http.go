package hub

import (
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"

	"repro/internal/gateway"
	"repro/internal/telemetry"
)

// HTTPHandler returns the hub's observability mux:
//
//	GET /metrics                     merged exposition: every tenant's
//	                                 pipeline series stamped home="<id>",
//	                                 plus the hub's own dice_hub_* series
//	GET /tenants                     registered homes with Stats summaries
//	GET /tenants/{home}/stats        one tenant's Stats (drained first)
//	GET /tenants/{home}/alerts/last  the tenant's last alert with Explain
//	GET /tenants/{home}/liveness     the tenant's silence tracker
//	GET /tenants/{home}/context      the tenant's context version +
//	                                 adaptation progress (drained first)
//	GET /tenants/{home}/health       the tenant's supervision state
//	                                 (healthy/degraded/quarantined/evicted)
//	GET /healthz                     200 ok
//	GET /debug/pprof/                the standard pprof index
//
// The mux is standalone (not http.DefaultServeMux) so callers can mount it
// anywhere without leaking pprof onto other servers.
func (h *Hub) HTTPHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		h.WriteMetrics(w) //nolint:errcheck // client went away
	})
	mux.HandleFunc("GET /tenants", func(w http.ResponseWriter, r *http.Request) {
		type row struct {
			Home  string        `json:"home"`
			Stats gateway.Stats `json:"stats"`
		}
		out := []row{}
		for _, home := range h.Homes() {
			if t, ok := h.Tenant(home); ok {
				out = append(out, row{Home: home, Stats: t.Stats()})
			}
		}
		writeJSON(w, out)
	})
	lookup := func(w http.ResponseWriter, r *http.Request) (*Tenant, bool) {
		t, ok := h.Tenant(r.PathValue("home"))
		if !ok {
			http.Error(w, "unknown home", http.StatusNotFound)
		}
		return t, ok
	}
	mux.HandleFunc("GET /tenants/{home}/stats", func(w http.ResponseWriter, r *http.Request) {
		h.Drain(r.PathValue("home")) //nolint:errcheck // lookup below reports the miss
		if t, ok := lookup(w, r); ok {
			writeJSON(w, t.Stats())
		}
	})
	mux.HandleFunc("GET /tenants/{home}/alerts/last", func(w http.ResponseWriter, r *http.Request) {
		t, ok := lookup(w, r)
		if !ok {
			return
		}
		a, ok := t.LastAlert()
		if !ok {
			http.Error(w, "no alerts yet", http.StatusNotFound)
			return
		}
		writeJSON(w, a)
	})
	mux.HandleFunc("GET /tenants/{home}/liveness", func(w http.ResponseWriter, r *http.Request) {
		if t, ok := lookup(w, r); ok {
			writeJSON(w, t.Liveness())
		}
	})
	mux.HandleFunc("GET /tenants/{home}/context", func(w http.ResponseWriter, r *http.Request) {
		h.Drain(r.PathValue("home")) //nolint:errcheck // lookup below reports the miss
		if t, ok := lookup(w, r); ok {
			writeJSON(w, t.ContextInfo())
		}
	})
	mux.HandleFunc("GET /tenants/{home}/health", func(w http.ResponseWriter, r *http.Request) {
		home := r.PathValue("home")
		st, ok := h.Health(home)
		if !ok {
			http.Error(w, "unknown home", http.StatusNotFound)
			return
		}
		writeJSON(w, struct {
			Home   string `json:"home"`
			Health Health `json:"health"`
		}{Home: home, Health: st})
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok\n")) //nolint:errcheck // client went away
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// WriteMetrics renders the merged exposition: the hub's own registry
// unlabelled, then one view per tenant stamped home="<id>", tenants in
// sorted order so the scrape is stable.
func (h *Hub) WriteMetrics(w io.Writer) error {
	h.mu.RLock()
	views := make([]telemetry.View, 0, len(h.tenants)+1)
	views = append(views, telemetry.View{Registry: h.tel})
	homes := make([]string, 0, len(h.tenants))
	for home := range h.tenants {
		homes = append(homes, home)
	}
	h.mu.RUnlock()
	sort.Strings(homes)
	for _, home := range homes {
		if t, ok := h.Tenant(home); ok {
			views = append(views, telemetry.View{Registry: t.Telemetry(), Label: "home", Value: home})
		}
	}
	return telemetry.WriteTextMerged(w, views...)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client went away
}

// HTTPServer is a running hub observability endpoint.
type HTTPServer struct {
	srv *http.Server
	ln  net.Listener
}

// ServeHTTP starts the observability endpoint on addr (":0" picks a free
// port). The returned server is already serving.
func ServeHTTP(h *Hub, addr string) (*HTTPServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &HTTPServer{srv: &http.Server{Handler: h.HTTPHandler()}, ln: ln}
	go s.srv.Serve(ln) //nolint:errcheck // ErrServerClosed after Close
	return s, nil
}

// Addr returns the bound TCP address string.
func (s *HTTPServer) Addr() string { return s.ln.Addr().String() }

// Close stops the server.
func (s *HTTPServer) Close() error { return s.srv.Close() }
