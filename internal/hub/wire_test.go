package hub

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/device"
	"repro/internal/event"
	"repro/internal/gateway"
	"repro/internal/simhome"
)

// TestHubWireFormatsEquivalent replays the same faulty stream into two
// tenants of one hub — one over the legacy JSON wire, one over binary
// batches — and requires identical per-home detection output. Event times
// are ms-aligned so both encodings carry the same stream (JSON quantizes
// At to milliseconds).
func TestHubWireFormatsEquivalent(t *testing.T) {
	h, cctx := trained(t)
	bulb, ok := h.Registry().Lookup("bulb-kitchen")
	if !ok {
		t.Fatal("no kitchen bulb")
	}
	start := 3*24*60 + 12*60
	faulty := h.WithActuatorFaults(simhome.ActuatorFaults{
		Spurious:   map[device.ID]bool{bulb: true},
		Seed:       3,
		FromMinute: start,
	})
	var evts []event.Event
	for _, e := range faulty.Events(start, start+2*60) {
		e.At -= time.Duration(start) * time.Minute
		e.At = e.At.Truncate(time.Millisecond)
		evts = append(evts, e)
	}

	hub, err := New(WithShards(2), WithAlertBuffer(4096))
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()
	for _, home := range []string{"json", "binary"} {
		if _, err := hub.Register(home, cctx, tenantGwOpts...); err != nil {
			t.Fatal(err)
		}
	}
	front, err := ServeCoAP(hub, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer front.Close()

	for _, home := range []string{"json", "binary"} {
		agent, err := gateway.NewAgent(front.Addr())
		if err != nil {
			t.Fatal(err)
		}
		agent.Home = home
		if home == "json" {
			agent.Format = gateway.WireJSON
		}
		for _, e := range evts {
			if err := agent.Report(e); err != nil {
				t.Fatal(err)
			}
		}
		if err := agent.Advance(streamEnd); err != nil {
			t.Fatal(err)
		}
		if err := agent.Close(); err != nil {
			t.Fatal(err)
		}
	}
	if err := hub.DrainAll(); err != nil {
		t.Fatal(err)
	}

	tnJSON, _ := hub.Tenant("json")
	tnBin, _ := hub.Tenant("binary")
	if tnJSON.Stats() != tnBin.Stats() {
		t.Errorf("stats diverged:\n json   %+v\n binary %+v", tnJSON.Stats(), tnBin.Stats())
	}
	if tnJSON.Stats().Violations == 0 {
		t.Error("faulty stream produced no violations; the comparison is vacuous")
	}
	total := int(tnJSON.Stats().Alerts + tnBin.Stats().Alerts)
	byHome := collectAlerts(t, hub, total)
	if !reflect.DeepEqual(byHome["json"], byHome["binary"]) {
		t.Errorf("alert sequences diverged: json=%d binary=%d alerts",
			len(byHome["json"]), len(byHome["binary"]))
	}
	if f := front.malformed.Value(); f != 0 {
		t.Errorf("malformed counter = %d on a clean link", f)
	}
}
