// Package hub multiplexes many homes behind one gateway process. Each
// registered home (a tenant) owns a private gateway.Gateway — its own
// trained context, detector, window builder, and telemetry registry — and
// the hub routes ingress to it over a sharded worker pool: a home is pinned
// to a shard by consistent hash, each shard is one goroutine draining a
// bounded queue, so events for one home are always applied in arrival
// order while different homes proceed in parallel. Detection output is
// identical to running each home on its own gateway; the hub adds routing,
// lifecycle (register / evict / idle eviction), per-tenant checkpoints,
// and a merged metrics exposition where every per-tenant series carries a
// home label.
package hub

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/gateway"
	"repro/internal/telemetry"
	"repro/internal/wal"
)

// ErrShed is returned by TryIngest when the target shard's queue is full.
var ErrShed = errors.New("hub: shard queue full, event shed")

// ErrDeadline is returned by Ingest when an ingest deadline is configured
// and the shard queue stayed full for its whole duration.
var ErrDeadline = errors.New("hub: ingest deadline exceeded, event shed")

// ErrClosed is returned by every operation on a closed hub.
var ErrClosed = errors.New("hub: closed")

// ErrUnknownHome wraps the home ID in errors for unregistered tenants.
var ErrUnknownHome = errors.New("hub: unknown home")

// TenantAlert is a gateway alert tagged with the home it came from.
type TenantAlert struct {
	Home string `json:"home"`
	gateway.Alert
}

// Hub metric names. Per-tenant pipeline series keep their dice_gateway_*
// (and dice_detector_*, dice_windows_*, dice_coap_*) names and gain a home
// label at exposition time; the dice_hub_* series below are the hub's own.
const (
	metricHubTenants       = "dice_hub_tenants"
	metricHubQueueDepth    = "dice_hub_shard_queue_depth"
	metricHubShed          = "dice_hub_shard_shed_total"
	metricHubOps           = "dice_hub_shard_ops_total"
	metricHubEvictions     = "dice_hub_evictions_total"
	metricHubRebalances    = "dice_hub_rebalances_total"
	metricHubAlertsDropped = "dice_hub_alerts_dropped_total"
	metricHubIngestErrors  = "dice_hub_ingest_errors_total"
	metricHubPanics        = "dice_hub_panics_total"
	metricHubRestarts      = "dice_hub_restarts_total"
	metricHubQuarantined   = "dice_hub_quarantined"
	metricHubDroppedOps    = "dice_hub_dropped_ops_total"
	metricHubDeadlineSheds = "dice_hub_degraded_sheds_total"
	metricHubCorruptCkpts  = "dice_hub_corrupt_checkpoints_total"
	metricHubBreakerTrips  = "dice_hub_breaker_trips_total"
)

type hubMetrics struct {
	tenants       *telemetry.Gauge
	evictions     *telemetry.Counter
	rebalances    *telemetry.Counter
	alertsDropped *telemetry.Counter
	ingestErrors  *telemetry.Counter
	panics        *telemetry.Counter
	restarts      *telemetry.Counter
	quarantined   *telemetry.Gauge
	droppedOps    *telemetry.Counter
	deadlineSheds *telemetry.Counter
	corruptCkpts  *telemetry.Counter
	breakerTrips  *telemetry.Counter
}

func newHubMetrics(reg *telemetry.Registry) hubMetrics {
	return hubMetrics{
		tenants:       reg.Gauge(metricHubTenants, "Homes currently registered with the hub."),
		evictions:     reg.Counter(metricHubEvictions, "Tenants evicted (explicitly or by idle timeout)."),
		rebalances:    reg.Counter(metricHubRebalances, "Shard pool resizes."),
		alertsDropped: reg.Counter(metricHubAlertsDropped, "Tenant alerts dropped because the hub buffer was full."),
		ingestErrors:  reg.Counter(metricHubIngestErrors, "Shard ops rejected by a tenant gateway."),
		panics:        reg.Counter(metricHubPanics, "Tenant dispatch panics caught by the supervisor."),
		restarts:      reg.Counter(metricHubRestarts, "Tenant gateways rebuilt from durable state after a panic."),
		quarantined:   reg.Gauge(metricHubQuarantined, "Tenants currently quarantined."),
		droppedOps:    reg.Counter(metricHubDroppedOps, "Ops dropped because their tenant was quarantined."),
		deadlineSheds: reg.Counter(metricHubDeadlineSheds, "Events shed by the overload policy (cold shed or deadline)."),
		corruptCkpts:  reg.Counter(metricHubCorruptCkpts, "Checkpoints rejected by the checksum envelope (cold start + WAL replay instead)."),
		breakerTrips:  reg.Counter(metricHubBreakerTrips, "Times a tenant's restart circuit breaker opened."),
	}
}

// opKind discriminates shard queue entries.
type opKind uint8

const (
	opIngest opKind = iota
	opAdvance
	opBarrier
	// opStall parks the worker until done is closed by the sender — the
	// inverse of a barrier. Only tests enqueue it, to fill a queue
	// deterministically and observe shedding.
	opStall
	// opIngestBatch applies a whole decoded binary batch in one gateway
	// call (one WAL append, one lock acquisition). Its events live in a
	// hub-pooled slice the worker recycles after apply.
	opIngestBatch
)

// op is one unit of shard work. Barriers carry a done channel the worker
// closes when it reaches them; because a queue is FIFO, a barrier's close
// proves every op enqueued before it has been applied.
type op struct {
	t    *tenant
	kind opKind
	ev   event.Event
	evs  *[]event.Event // opIngestBatch only; hub-pooled, worker-recycled
	at   time.Duration
	done chan struct{}
}

// batchPool recycles the event slices batch ops travel in. The front's
// decode scratch belongs to internal/wire's pool and is returned as soon as
// the enqueue copy is taken, because shard ops apply asynchronously — the
// hub must own the memory it queues.
var batchPool = sync.Pool{
	New: func() any {
		s := make([]event.Event, 0, 256)
		return &s
	},
}

// shard is one worker: a bounded op queue, the goroutine draining it, and
// its slice of the hub's per-shard instruments.
type shard struct {
	id     int
	ops    chan op
	done   chan struct{} // closed when the worker exits
	depth  *telemetry.Gauge
	shed   *telemetry.Counter
	opsCnt *telemetry.Counter
}

// tenant is the hub's private per-home state around the public gateway.
type tenant struct {
	home   string
	tel    *telemetry.Registry
	cpPath string

	// Rebuild inputs: after a panic the supervisor reconstructs the
	// gateway from the same trained context, resolved options (which embed
	// the telemetry registry, WAL, and dead-letter sink), and durable state.
	cctx   *core.Context
	gwOpts []gateway.Option
	wl     *wal.Log
	dl     *wal.DeadLetter

	// gw is the live gateway, swapped atomically on supervised restart so
	// shard workers and HTTP readers never see a torn pipeline.
	gw atomic.Pointer[gateway.Gateway]

	// restore runs at most once, on the first shard op (or the first
	// checkpoint/evict if no op ever arrives): lazy loading keeps hub
	// startup O(1) in tenants with checkpoints on disk.
	restore    sync.Once
	restoreErr error

	// lastOp is wall-clock nanos of the last applied op, for idle eviction.
	lastOp atomic.Int64

	// Supervision state: health is the stored state machine position,
	// suspect marks in-memory gateway state that must never be
	// checkpointed (set on panic, cleared by a successful restart), and
	// panicTimes is the circuit breaker's strike record (guarded by sup).
	health     atomic.Int32
	suspect    atomic.Bool
	panicTimes []time.Time

	// Overload accounting: op volume in the current and previous hotness
	// epochs, and when the shedding policy last cost this tenant an event.
	recentCur  atomic.Int64
	recentPrev atomic.Int64
	lastShed   atomic.Int64

	// sup serializes forwarder lifecycle and restart against eviction.
	// stop ends the alert forwarder; fwdDone confirms it drained and left.
	sup     sync.Mutex
	stop    chan struct{}
	fwdDone chan struct{}
}

// gateway returns the tenant's live gateway.
func (t *tenant) gateway() *gateway.Gateway { return t.gw.Load() }

func (t *tenant) ensureRestored(h *Hub) error {
	t.restore.Do(func() { t.restoreErr = h.restoreGateway(t, t.gateway()) })
	return t.restoreErr
}

// restoreGateway loads the tenant's durable state into gw: the on-disk
// checkpoint if a valid one exists — a file that fails its checksum
// envelope is counted and treated as absent (cold start), per the
// corruption contract — followed by WAL replay of everything past it.
func (h *Hub) restoreGateway(t *tenant, gw *gateway.Gateway) error {
	if t.cpPath != "" {
		if _, serr := os.Stat(t.cpPath); serr == nil {
			cp, err := gateway.ReadCheckpoint(t.cpPath)
			switch {
			case errors.Is(err, gateway.ErrCorruptCheckpoint):
				h.met.corruptCkpts.Inc()
			case err != nil:
				return err
			case cp.Home != "" && cp.Home != t.home:
				return fmt.Errorf("hub: checkpoint %s belongs to home %q, not %q", t.cpPath, cp.Home, t.home)
			default:
				if err := gw.RestoreCheckpoint(cp); err != nil {
					return err
				}
			}
		} else if !errors.Is(serr, fs.ErrNotExist) {
			return serr
		}
	}
	return gw.RecoverWAL()
}

// Tenant is the public handle to one registered home.
type Tenant struct {
	h *Hub
	t *tenant
}

// Home returns the tenant's home ID.
func (tn *Tenant) Home() string { return tn.t.home }

// Stats snapshots the tenant gateway's counters. Queued-but-unapplied
// shard ops are not yet reflected; Drain first for a settled view.
func (tn *Tenant) Stats() gateway.Stats { return tn.t.gateway().Stats() }

// LastAlert returns the tenant's most recent alert with its Explain trace.
func (tn *Tenant) LastAlert() (gateway.Alert, bool) { return tn.t.gateway().LastAlert() }

// Liveness snapshots the tenant's silence tracker.
func (tn *Tenant) Liveness() []gateway.DeviceLiveness { return tn.t.gateway().Liveness() }

// ContextInfo snapshots the tenant's active context version and, when the
// gateway runs with adaptation, its online-adaptation progress.
func (tn *Tenant) ContextInfo() gateway.ContextInfo { return tn.t.gateway().ContextInfo() }

// Telemetry returns the tenant's private registry — the series that show
// up under this tenant's home label on the hub's merged /metrics.
func (tn *Tenant) Telemetry() *telemetry.Registry { return tn.t.tel }

// Option configures a Hub at construction.
type Option func(*options)

type options struct {
	shards         int
	queueDepth     int
	alertBuf       int
	cpPath         func(home string) string
	cpInterval     time.Duration
	idle           time.Duration
	tel            *telemetry.Registry
	walDir         string
	walSync        wal.SyncPolicy
	maxPanics      int
	panicWindow    time.Duration
	restartBackoff time.Duration
	ingestDeadline time.Duration
}

// WithShards sets the worker pool size (default 4). Any positive count
// produces identical per-home detection output; shards only set how many
// homes make progress concurrently.
func WithShards(n int) Option {
	return func(o *options) { o.shards = n }
}

// WithQueueDepth bounds each shard's op queue (default 256). Ingest blocks
// on a full queue (backpressure); TryIngest sheds instead.
func WithQueueDepth(n int) Option {
	return func(o *options) { o.queueDepth = n }
}

// WithAlertBuffer sets the hub alert channel capacity (default 256). A
// full buffer drops tenant alerts (counted) rather than blocking the
// per-tenant forwarders.
func WithAlertBuffer(n int) Option {
	return func(o *options) { o.alertBuf = n }
}

// WithCheckpointDir persists each tenant to dir/<home>.ckpt: written
// atomically on checkpoint ticks, eviction, and Close; restored lazily on
// the tenant's first op after registration.
func WithCheckpointDir(dir string) Option {
	return func(o *options) {
		o.cpPath = func(home string) string { return filepath.Join(dir, home+".ckpt") }
	}
}

// WithCheckpointPaths overrides the home→file mapping — e.g. to keep one
// legacy single-home checkpoint path working behind the hub.
func WithCheckpointPaths(fn func(home string) string) Option {
	return func(o *options) { o.cpPath = fn }
}

// WithCheckpointInterval makes Run write all tenant checkpoints every d;
// zero (the default) checkpoints only on eviction and Close.
func WithCheckpointInterval(d time.Duration) Option {
	return func(o *options) { o.cpInterval = d }
}

// WithIdleEviction makes Run evict tenants that have had no shard ops for
// d (final checkpoint included); zero (the default) never evicts. An
// evicted home re-registers on demand and resumes from its checkpoint.
func WithIdleEviction(d time.Duration) Option {
	return func(o *options) { o.idle = d }
}

// WithTelemetry registers the hub's own instruments (dice_hub_*) against a
// caller-owned registry instead of a fresh private one. Tenant pipelines
// always get private registries; the hub merges them at exposition time.
func WithTelemetry(reg *telemetry.Registry) Option {
	return func(o *options) { o.tel = reg }
}

// WithWALDir gives every tenant a write-ahead log under dir/<home>/: ops
// append (per the sync policy) before they mutate detector state, restarts
// replay the tail past the last checkpoint, and a successful checkpoint
// truncates the covered segments. With both a checkpoint dir and a WAL
// dir, a hard kill at any instant loses nothing. Dead-letter files land at
// dir/<home>.dead.jsonl.
func WithWALDir(dir string) Option {
	return func(o *options) { o.walDir = dir }
}

// WithWALSync sets the WAL fsync policy (default wal.SyncBatch) — the
// durability/throughput trade-off of the -fsync flag.
func WithWALSync(p wal.SyncPolicy) Option {
	return func(o *options) { o.walSync = p }
}

// WithSupervision tunes the per-tenant circuit breaker: maxPanics caught
// panics within window open the breaker, leaving the tenant quarantined
// instead of restarting it again. Defaults: 5 panics in 1 minute.
func WithSupervision(maxPanics int, window time.Duration) Option {
	return func(o *options) {
		o.maxPanics = maxPanics
		o.panicWindow = window
	}
}

// WithRestartBackoff sets the base delay before a quarantined tenant is
// rebuilt (default 250ms); each strike within the breaker window doubles
// it, capped at 30s.
func WithRestartBackoff(d time.Duration) Option {
	return func(o *options) { o.restartBackoff = d }
}

// WithIngestDeadline bounds how long an enqueue may wait on a full shard
// queue before shedding the event: Ingest returns ErrDeadline instead of
// blocking forever, and TryIngest spends the deadline waiting only for hot
// (recently busy) tenants — cold tenants shed immediately, so under
// overload the tenants with the most signal keep the queue slots. Zero
// (the default) preserves pure backpressure semantics.
func WithIngestDeadline(d time.Duration) Option {
	return func(o *options) { o.ingestDeadline = d }
}

// Hub owns N tenants and the shard pool that feeds them.
type Hub struct {
	mu      sync.RWMutex // guards tenants, evicted, shards, closed
	tenants map[string]*tenant
	evicted map[string]bool // homes this instance evicted, for /health
	shards  []*shard
	closed  bool

	alerts chan TenantAlert
	tel    *telemetry.Registry
	met    hubMetrics
	o      options

	// killed models a SIGKILL for crash drills: once set, workers discard
	// queued data ops (a real kill would lose them too) and Kill closes the
	// WALs without a final checkpoint, so recovery must come from the
	// durable state exactly as it would after a process death.
	killed atomic.Bool
}

// New builds an empty hub; homes arrive via Register.
func New(opts ...Option) (*Hub, error) {
	var o options
	for _, opt := range opts {
		opt(&o)
	}
	if o.shards <= 0 {
		o.shards = 4
	}
	if o.queueDepth <= 0 {
		o.queueDepth = 256
	}
	if o.alertBuf <= 0 {
		o.alertBuf = 256
	}
	if o.maxPanics <= 0 {
		o.maxPanics = 5
	}
	if o.panicWindow <= 0 {
		o.panicWindow = time.Minute
	}
	if o.restartBackoff <= 0 {
		o.restartBackoff = 250 * time.Millisecond
	}
	tel := o.tel
	if tel == nil {
		tel = telemetry.NewRegistry()
	}
	h := &Hub{
		tenants: make(map[string]*tenant),
		evicted: make(map[string]bool),
		alerts:  make(chan TenantAlert, o.alertBuf),
		tel:     tel,
		met:     newHubMetrics(tel),
		o:       o,
	}
	h.shards = h.startShards(o.shards)
	return h, nil
}

// startShards builds and starts n workers. Per-shard instruments are
// get-or-create by label, so resizing back to a previous count reuses the
// same series.
func (h *Hub) startShards(n int) []*shard {
	shards := make([]*shard, n)
	for i := range shards {
		lbl := strconv.Itoa(i)
		s := &shard{
			id:     i,
			ops:    make(chan op, h.o.queueDepth),
			done:   make(chan struct{}),
			depth:  h.tel.LabeledGauge(metricHubQueueDepth, "Ops queued (or blocked enqueuing) per shard.", "shard", lbl),
			shed:   h.tel.LabeledCounter(metricHubShed, "Events shed by TryIngest because the shard queue was full.", "shard", lbl),
			opsCnt: h.tel.LabeledCounter(metricHubOps, "Ops applied per shard.", "shard", lbl),
		}
		shards[i] = s
		go h.worker(s)
	}
	return shards
}

// worker drains one shard queue until the queue is closed (Resize/Close).
func (h *Hub) worker(s *shard) {
	defer close(s.done)
	for o := range s.ops {
		s.depth.Add(-1)
		s.opsCnt.Inc()
		if h.killed.Load() && o.kind != opBarrier && o.kind != opStall {
			// Post-kill: queued data ops vanish, exactly as they would have
			// inside a process that took SIGKILL mid-flight.
			if o.kind == opIngestBatch {
				*o.evs = (*o.evs)[:0]
				batchPool.Put(o.evs)
			}
			continue
		}
		switch o.kind {
		case opBarrier:
			close(o.done)
		case opStall:
			<-o.done
		case opIngest:
			h.applyOp(o, func(g *gateway.Gateway) error { return g.Ingest(o.ev) })
		case opIngestBatch:
			h.applyOp(o, func(g *gateway.Gateway) error { return g.IngestBatch(*o.evs) })
			*o.evs = (*o.evs)[:0]
			batchPool.Put(o.evs)
		case opAdvance:
			h.applyOp(o, func(g *gateway.Gateway) error { return g.AdvanceTo(o.at) })
		}
	}
}

// Telemetry returns the hub's own registry (the dice_hub_* series plus
// whatever the CoAP front registers).
func (h *Hub) Telemetry() *telemetry.Registry { return h.tel }

// Alerts returns the merged tenant alert channel. It is never closed;
// buffer overruns are counted, not blocking.
func (h *Hub) Alerts() <-chan TenantAlert { return h.alerts }

// validHome rejects IDs that would break routing (empty, path separators).
func validHome(home string) error {
	if home == "" {
		return errors.New("hub: empty home ID")
	}
	if strings.ContainsAny(home, "/\\") {
		return fmt.Errorf("hub: home ID %q contains a path separator", home)
	}
	return nil
}

// Register adds a home built around its trained context. The tenant's
// pipeline registers against a fresh private registry (so its series can
// be stamped with the home label on /metrics); a gateway.WithTelemetry
// among opts is overridden. If the hub has a checkpoint path for the home
// and a file exists there, it is restored lazily on the first op.
func (h *Hub) Register(home string, cctx *core.Context, opts ...gateway.Option) (*Tenant, error) {
	if err := validHome(home); err != nil {
		return nil, err
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return nil, ErrClosed
	}
	if _, ok := h.tenants[home]; ok {
		return nil, fmt.Errorf("hub: home %q already registered", home)
	}
	tel := telemetry.NewRegistry()
	// The resolved option set is stored on the tenant so a supervised
	// restart rebuilds an identical pipeline: same registry (counters
	// resume via checkpoint restore), same WAL, same dead-letter sink.
	resolved := append(append([]gateway.Option(nil), opts...),
		gateway.WithTelemetry(tel), gateway.WithHome(home))
	t := &tenant{
		home: home,
		tel:  tel,
		cctx: cctx,
	}
	if h.o.cpPath != nil {
		t.cpPath = h.o.cpPath(home)
	}
	if h.o.walDir != "" {
		w, err := wal.Open(filepath.Join(h.o.walDir, home), wal.Options{Sync: h.o.walSync, Telemetry: tel})
		if err != nil {
			return nil, err
		}
		t.wl = w
		t.dl = wal.OpenDeadLetter(filepath.Join(h.o.walDir, home+".dead.jsonl"))
		resolved = append(resolved, gateway.WithWAL(w), gateway.WithDeadLetter(t.dl))
	} else if t.cpPath != "" {
		t.dl = wal.OpenDeadLetter(t.cpPath + ".dead.jsonl")
		resolved = append(resolved, gateway.WithDeadLetter(t.dl))
	}
	t.gwOpts = resolved
	gw, err := gateway.New(cctx, resolved...)
	if err != nil {
		if t.wl != nil {
			t.wl.Close() //nolint:errcheck // construction failed; best effort
		}
		return nil, err
	}
	t.gw.Store(gw)
	t.stop = make(chan struct{})
	t.fwdDone = make(chan struct{})
	t.lastOp.Store(time.Now().UnixNano())
	h.tenants[home] = t
	delete(h.evicted, home)
	h.met.tenants.Set(int64(len(h.tenants)))
	go h.forward(t, gw, t.stop, t.fwdDone)
	return &Tenant{h: h, t: t}, nil
}

// forward pumps one gateway's alert channel into the hub channel, tagging
// each alert with the home. Per-tenant order is preserved (one forwarder,
// FIFO channels); cross-tenant interleaving is scheduling-dependent. The
// gateway and channels are parameters, not read from the tenant, because a
// supervised restart swaps all three: the old forwarder flushes the old
// pipe and exits, the new one binds to the rebuilt gateway. Alert delivery
// across a restart is therefore at-least-once — replay re-emits alerts
// newer than the last checkpoint.
func (h *Hub) forward(t *tenant, gw *gateway.Gateway, stop, fwdDone chan struct{}) {
	defer close(fwdDone)
	deliver := func(a gateway.Alert) {
		select {
		case h.alerts <- TenantAlert{Home: t.home, Alert: a}:
		default:
			h.met.alertsDropped.Inc()
		}
	}
	for {
		select {
		case <-stop:
			for {
				select {
				case a := <-gw.Alerts():
					deliver(a)
				default:
					return
				}
			}
		case a := <-gw.Alerts():
			deliver(a)
		}
	}
}

// Tenant looks up a registered home.
func (h *Hub) Tenant(home string) (*Tenant, bool) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	t, ok := h.tenants[home]
	if !ok {
		return nil, false
	}
	return &Tenant{h: h, t: t}, true
}

// Homes lists registered home IDs, sorted.
func (h *Hub) Homes() []string {
	h.mu.RLock()
	defer h.mu.RUnlock()
	out := make([]string, 0, len(h.tenants))
	for home := range h.tenants {
		out = append(out, home)
	}
	sort.Strings(out)
	return out
}

// shardForLocked pins a home to a shard by FNV-1a hash. Callers hold at
// least the read lock (the shard slice is swapped under the write lock).
func (h *Hub) shardForLocked(home string) *shard {
	f := fnv.New32a()
	f.Write([]byte(home)) //nolint:errcheck // fnv never fails
	return h.shards[int(f.Sum32())%len(h.shards)]
}

// enqueue routes one op, blocking on a full queue when block is set and
// shedding otherwise. The read lock held across the channel send is what
// makes Resize safe: queues are only closed under the write lock, which
// cannot be acquired while a send is in flight.
//
// With an ingest deadline configured, a full queue engages the overload
// policy for data ops: blocking sends wait at most the deadline
// (ErrDeadline after), and non-blocking sends spend the deadline waiting
// only when the tenant is hot — cold tenants shed immediately, so the
// busiest homes keep the queue slots. Barriers and stalls always block:
// Drain's correctness depends on it.
func (h *Hub) enqueue(home string, o op, block bool) error {
	h.mu.RLock()
	defer h.mu.RUnlock()
	if h.closed {
		return ErrClosed
	}
	t, ok := h.tenants[home]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownHome, home)
	}
	if Health(t.health.Load()) == HealthMigrating && o.kind != opBarrier && o.kind != opStall {
		// Mid-handoff: the exported state will not cover this op, so the
		// caller must re-route it to the new owner (retry until the adopt
		// lands). Barriers still pass — the drain inside the migration
		// depends on them.
		return fmt.Errorf("%w: %q", ErrMigrating, home)
	}
	o.t = t
	s := h.shardForLocked(home)
	s.depth.Add(1)
	dataOp := o.kind == opIngest || o.kind == opIngestBatch || o.kind == opAdvance
	if block && (h.o.ingestDeadline <= 0 || !dataOp) {
		s.ops <- o
		return nil
	}
	select {
	case s.ops <- o:
		return nil
	default:
	}
	// Queue full. Decide whether this op is worth waiting the deadline for.
	wait := block
	if !block && dataOp && h.o.ingestDeadline > 0 {
		wait = h.isHotLocked(t)
	}
	if !wait {
		s.depth.Add(-1)
		s.shed.Inc()
		t.shedNow()
		h.met.deadlineSheds.Inc()
		return ErrShed
	}
	timer := time.NewTimer(h.o.ingestDeadline)
	defer timer.Stop()
	select {
	case s.ops <- o:
		return nil
	case <-timer.C:
		s.depth.Add(-1)
		s.shed.Inc()
		t.shedNow()
		h.met.deadlineSheds.Inc()
		if block {
			return ErrDeadline
		}
		return ErrShed
	}
}

// Ingest routes one event to its home's shard, blocking while the shard
// queue is full (backpressure). The event is applied asynchronously; a
// gateway-level rejection increments dice_hub_ingest_errors_total.
func (h *Hub) Ingest(home string, e event.Event) error {
	return h.enqueue(home, op{kind: opIngest, ev: e}, true)
}

// TryIngest is Ingest without backpressure: a full shard queue sheds the
// event (counted per shard) and returns ErrShed.
func (h *Hub) TryIngest(home string, e event.Event) error {
	return h.enqueue(home, op{kind: opIngest, ev: e}, false)
}

// IngestBatch routes a whole batch of events to the home's shard as one op:
// one queue slot, one gateway lock acquisition, one WAL append. The caller
// keeps ownership of evts — the batch is copied into a hub-pooled slice at
// enqueue, so a CoAP front can return its decode scratch immediately.
// Per-event application errors are counted, not returned, matching the
// asynchronous contract of Ingest.
func (h *Hub) IngestBatch(home string, evts []event.Event) error {
	if len(evts) == 0 {
		return nil
	}
	bp := batchPool.Get().(*[]event.Event)
	*bp = append((*bp)[:0], evts...)
	err := h.enqueue(home, op{kind: opIngestBatch, evs: bp}, true)
	if err != nil {
		*bp = (*bp)[:0]
		batchPool.Put(bp)
	}
	return err
}

// Advance routes a stream-clock advance to the home's shard, behind any
// events already queued for it.
func (h *Hub) Advance(home string, t time.Duration) error {
	return h.enqueue(home, op{kind: opAdvance, at: t}, true)
}

// Drain blocks until every op enqueued for home before the call has been
// applied. After Drain, the tenant's Stats reflect all prior Ingests.
func (h *Hub) Drain(home string) error {
	done := make(chan struct{})
	if err := h.enqueue(home, op{kind: opBarrier, done: done}, true); err != nil {
		return err
	}
	<-done
	return nil
}

// DrainAll flushes every shard queue.
func (h *Hub) DrainAll() error {
	h.mu.RLock()
	if h.closed {
		h.mu.RUnlock()
		return ErrClosed
	}
	dones := make([]chan struct{}, len(h.shards))
	for i, s := range h.shards {
		dones[i] = make(chan struct{})
		s.depth.Add(1)
		s.ops <- op{kind: opBarrier, done: dones[i]}
	}
	h.mu.RUnlock()
	for _, d := range dones {
		<-d
	}
	return nil
}

// checkpointTenant writes one tenant's state (home-stamped) to its path.
// ensureRestored runs first so an untouched tenant round-trips its on-disk
// checkpoint instead of overwriting it with blank state. A suspect tenant
// (panicked, not yet rebuilt) is skipped: its in-memory state may be
// half-mutated, and the durable checkpoint + WAL on disk are strictly
// better. A successful write lets the WAL shed the segments it covers.
func (h *Hub) checkpointTenant(t *tenant) error {
	if t.cpPath == "" || t.suspect.Load() {
		return nil
	}
	if err := t.ensureRestored(h); err != nil {
		return err
	}
	cp := t.gateway().ExportCheckpoint()
	cp.Home = t.home
	if err := gateway.WriteCheckpoint(t.cpPath, cp); err != nil {
		return err
	}
	if t.wl != nil {
		return t.wl.TruncateThrough(cp.WALSeq)
	}
	return nil
}

// CheckpointAll drains the shards and persists every tenant that has a
// checkpoint path. The first error is returned; the rest still run.
func (h *Hub) CheckpointAll() error {
	if err := h.DrainAll(); err != nil {
		return err
	}
	h.mu.RLock()
	ts := make([]*tenant, 0, len(h.tenants))
	for _, t := range h.tenants {
		ts = append(ts, t)
	}
	h.mu.RUnlock()
	var first error
	for _, t := range ts {
		if err := h.checkpointTenant(t); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Evict unregisters a home: new ops are rejected immediately, in-flight
// shard ops drain, the alert forwarder flushes, and a final checkpoint is
// written. The home can re-register later and resume from it.
func (h *Hub) Evict(home string) error {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return ErrClosed
	}
	t, ok := h.tenants[home]
	if !ok {
		h.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrUnknownHome, home)
	}
	delete(h.tenants, home)
	h.evicted[home] = true
	h.met.tenants.Set(int64(len(h.tenants)))
	h.mu.Unlock()

	// Ops for the tenant can no longer be enqueued; a barrier through every
	// shard proves the ones already queued have been applied.
	if err := h.DrainAll(); err != nil && !errors.Is(err, ErrClosed) {
		return err
	}
	// Marking the tenant Evicted under sup closes the race with a pending
	// supervised restart: restartTenant aborts on Evicted, and whichever
	// side holds sup first wins cleanly.
	t.sup.Lock()
	t.health.Store(int32(HealthEvicted))
	t.stopForwarderLocked()
	t.sup.Unlock()
	h.updateQuarantineGauge()
	h.met.evictions.Inc()
	err := h.checkpointTenant(t)
	if t.wl != nil {
		if cerr := t.wl.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	return err
}

// evictIdle evicts tenants whose last applied op is older than the idle
// timeout. Homes are visited in sorted order so eviction order (and the
// eviction counter) is deterministic for a given clock.
func (h *Hub) evictIdle() {
	cutoff := time.Now().Add(-h.o.idle).UnixNano()
	h.mu.RLock()
	var idle []string
	for home, t := range h.tenants {
		if t.lastOp.Load() < cutoff {
			idle = append(idle, home)
		}
	}
	h.mu.RUnlock()
	sort.Strings(idle)
	for _, home := range idle {
		h.Evict(home) //nolint:errcheck // raced re-eviction is benign
	}
}

// Resize swaps the shard pool to n workers, preserving per-home ordering:
// the old queues drain completely (workers exit on queue close) before the
// new pool starts, so no two workers ever apply ops for the same home
// concurrently. Enqueues block for the duration — Resize holds the write
// lock, and sends hold the read lock.
func (h *Hub) Resize(n int) error {
	if n <= 0 {
		return fmt.Errorf("hub: shard count %d, want > 0", n)
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return ErrClosed
	}
	if n == len(h.shards) {
		return nil
	}
	for _, s := range h.shards {
		close(s.ops)
	}
	for _, s := range h.shards {
		<-s.done
	}
	h.shards = h.startShards(n)
	h.met.rebalances.Inc()
	return nil
}

// Shards returns the current worker pool size.
func (h *Hub) Shards() int {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return len(h.shards)
}

// ShardStat is one shard's counters — the same numbers the dice_hub_shard_*
// series expose, as a snapshot.
type ShardStat struct {
	Shard      int   `json:"shard"`
	Ops        int64 `json:"ops"`
	Shed       int64 `json:"shed"`
	QueueDepth int64 `json:"queue_depth"`
}

// ShardStats snapshots every shard's counters, in shard order.
func (h *Hub) ShardStats() []ShardStat {
	h.mu.RLock()
	defer h.mu.RUnlock()
	out := make([]ShardStat, len(h.shards))
	for i, s := range h.shards {
		out[i] = ShardStat{
			Shard:      s.id,
			Ops:        s.opsCnt.Value(),
			Shed:       s.shed.Value(),
			QueueDepth: s.depth.Value(),
		}
	}
	return out
}

// Run pumps merged tenant alerts into onAlert (nil discards) and owns the
// hub's housekeeping — periodic checkpoints and idle eviction, when
// configured — until ctx is cancelled. On the way out it drains buffered
// alerts and writes a final checkpoint for every tenant. It replaces the
// ad-hoc stop-channel loops single-gateway callers used to write.
func (h *Hub) Run(ctx context.Context, onAlert func(TenantAlert)) error {
	deliver := func(a TenantAlert) {
		if onAlert != nil {
			onAlert(a)
		}
	}
	var cpC, idleC <-chan time.Time
	if h.o.cpInterval > 0 {
		tick := time.NewTicker(h.o.cpInterval)
		defer tick.Stop()
		cpC = tick.C
	}
	if h.o.idle > 0 {
		// Scan at half the timeout so an idle tenant overstays by at most
		// ~1.5x the configured window.
		tick := time.NewTicker(h.o.idle / 2)
		defer tick.Stop()
		idleC = tick.C
	}
	var epochC <-chan time.Time
	if h.o.ingestDeadline > 0 {
		// Age the hotness windows the shedding policy ranks tenants by.
		tick := time.NewTicker(15 * time.Second)
		defer tick.Stop()
		epochC = tick.C
	}
	for {
		select {
		case <-ctx.Done():
			for {
				select {
				case a := <-h.alerts:
					deliver(a)
				default:
					err := h.CheckpointAll()
					if errors.Is(err, ErrClosed) {
						err = nil
					}
					return err
				}
			}
		case a := <-h.alerts:
			deliver(a)
		case <-cpC:
			h.CheckpointAll() //nolint:errcheck // periodic; final write happens on exit
		case <-idleC:
			h.evictIdle()
		case <-epochC:
			h.rollEpochs()
		}
	}
}

// Close drains the shards, stops the workers and forwarders, and writes a
// final checkpoint per tenant. The hub is unusable afterwards.
func (h *Hub) Close() error {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return nil
	}
	h.closed = true
	for _, s := range h.shards {
		close(s.ops)
	}
	ts := make([]*tenant, 0, len(h.tenants))
	for _, t := range h.tenants {
		ts = append(ts, t)
	}
	shards := h.shards
	h.mu.Unlock()

	for _, s := range shards {
		<-s.done
	}
	var first error
	for _, t := range ts {
		t.sup.Lock()
		t.stopForwarderLocked()
		t.sup.Unlock()
		if err := h.checkpointTenant(t); err != nil && first == nil {
			first = err
		}
		if t.wl != nil {
			if err := t.wl.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}

// Kill is Close with the power cord pulled: the in-process stand-in for
// SIGKILL that crash and fail-over drills use. Queued data ops are
// discarded, no final checkpoint is written, and the WALs close without a
// parting fsync — recovery must come entirely from the checkpoint + WAL
// bytes already on disk, exactly as it would after a real process death.
// (Goroutines are still reaped, because the drill shares our process.)
func (h *Hub) Kill() {
	h.killed.Store(true)
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return
	}
	h.closed = true
	for _, s := range h.shards {
		close(s.ops)
	}
	ts := make([]*tenant, 0, len(h.tenants))
	for _, t := range h.tenants {
		ts = append(ts, t)
	}
	shards := h.shards
	h.mu.Unlock()

	for _, s := range shards {
		<-s.done
	}
	for _, t := range ts {
		t.sup.Lock()
		t.stopForwarderLocked()
		t.sup.Unlock()
		if t.wl != nil {
			t.wl.Close() //nolint:errcheck // dying; durability already on disk
		}
	}
}
