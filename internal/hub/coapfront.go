package hub

import (
	"encoding/json"
	"errors"
	"net"
	"strings"
	"time"

	"repro/internal/coap"
	"repro/internal/device"
	"repro/internal/event"
	"repro/internal/gateway"
	"repro/internal/telemetry"
	"repro/internal/wire"
)

// The hub's CoAP surface is the gateway's, with the tenant in the path:
//
//	POST /report/{home}    batch of readings (binary DWB1 or JSON)
//	POST /advance/{home}   stream-clock advance (binary DWB1 or JSON)
//	GET  /stats/{home}     tenant Stats (drained first, so it is settled)
//	GET  /context/{home}   active context version, schema, timing capability
//	GET  /liveness/{home}  tenant silence tracker
//
// The bare single-gateway paths (/report, /advance, ...) keep working when
// the front has a default home, so an unmodified device agent can report
// into a hub. Both encodings are negotiated by payload sniffing, exactly as
// on the single-gateway front; binary batches ride the one-op
// Hub.IngestBatch path. Error responses carry the same stable reason codes
// as the gateway front (plus "unknown-home"), never internal error text.

// ReasonUnknownHome is the CodeNotFound reason for an unregistered tenant.
const ReasonUnknownHome = "unknown-home"

// metricHubMalformed counts report/advance payloads that failed to decode
// at the hub front.
const metricHubMalformed = "dice_hub_malformed_total"

// Front serves the hub's CoAP API.
type Front struct {
	h         *Hub
	srv       *coap.Server
	def       string
	malformed *telemetry.Counter
}

// FrontOption configures a CoAP front.
type FrontOption func(*frontOptions)

type frontOptions struct {
	def      string
	coapOpts []coap.ServerOption
}

// WithDefaultHome routes bare (un-suffixed) paths to the given tenant, for
// single-home device agents that predate the hub.
func WithDefaultHome(home string) FrontOption {
	return func(o *frontOptions) { o.def = home }
}

// WithCoAPOptions appends raw CoAP server options (context, chaos config,
// dedup tuning, ...).
func WithCoAPOptions(opts ...coap.ServerOption) FrontOption {
	return func(o *frontOptions) { o.coapOpts = append(o.coapOpts, opts...) }
}

func newFront(h *Hub, def string) *Front {
	return &Front{
		h:         h,
		def:       def,
		malformed: h.Telemetry().Counter(metricHubMalformed, "Report/advance payloads that failed to decode at the hub front (JSON or binary)."),
	}
}

// ServeCoAP starts the hub's CoAP front end on addr (":0" picks a free
// port). Transport counters register against the hub's own registry.
func ServeCoAP(h *Hub, addr string, opts ...FrontOption) (*Front, error) {
	var o frontOptions
	for _, opt := range opts {
		opt(&o)
	}
	f := newFront(h, o.def)
	srv, err := coap.ListenAndServe(addr, f.handle,
		append([]coap.ServerOption{coap.WithTelemetry(h.Telemetry())}, o.coapOpts...)...)
	if err != nil {
		return nil, err
	}
	f.srv = srv
	return f, nil
}

// ServeCoAPConn starts the front end on an existing packet conn — e.g. a
// chaos-wrapped one — and takes ownership of it.
func ServeCoAPConn(h *Hub, conn net.PacketConn, cfg coap.ServerConfig, opts ...FrontOption) (*Front, error) {
	var o frontOptions
	for _, opt := range opts {
		opt(&o)
	}
	f := newFront(h, o.def)
	srv, err := coap.Serve(conn, f.handle,
		append([]coap.ServerOption{coap.WithServerConfig(cfg), coap.WithTelemetry(h.Telemetry())}, o.coapOpts...)...)
	if err != nil {
		return nil, err
	}
	f.srv = srv
	return f, nil
}

// Addr returns the bound UDP address string.
func (f *Front) Addr() string { return f.srv.Addr().String() }

// Close stops the front end.
func (f *Front) Close() error { return f.srv.Close() }

// ServerStats returns the CoAP server's transport counters.
func (f *Front) ServerStats() coap.ServerStats { return f.srv.Stats() }

// split resolves a request path into (resource, home). A missing home
// segment falls back to the front's default tenant (empty when unset).
func (f *Front) split(path string) (string, string) {
	res, home, ok := strings.Cut(path, "/")
	if !ok {
		return res, f.def
	}
	return res, home
}

// errResponse maps an application error to a stable reason code. Unknown
// homes are the one distinction remote peers need (re-register and retry);
// everything else is an opaque rejection with detail on the hub telemetry.
func errResponse(err error) *coap.Message {
	if errors.Is(err, ErrUnknownHome) {
		return &coap.Message{Code: coap.CodeNotFound, Payload: []byte(ReasonUnknownHome)}
	}
	return &coap.Message{Code: coap.CodeBadRequest, Payload: []byte(gateway.ReasonRejected)}
}

// handleBinary decodes one binary batch and routes it as a single shard op.
// The decode scratch is wire-pooled and returned before this function does:
// Hub.IngestBatch copies into a hub-owned slice at enqueue because shard
// ops apply asynchronously.
func (f *Front) handleBinary(home string, payload []byte) *coap.Message {
	scratch := wire.GetEvents()
	b, err := wire.DecodeBatch(payload, *scratch)
	if err != nil {
		wire.PutEvents(scratch)
		f.malformed.Inc()
		return &coap.Message{Code: coap.CodeBadRequest, Payload: []byte(gateway.ReasonBadPayload)}
	}
	*scratch = b.Events
	var opErr error
	switch b.Kind {
	case wire.KindReport:
		opErr = f.h.IngestBatch(home, b.Events)
	case wire.KindAdvance:
		opErr = f.h.Advance(home, b.At)
	}
	wire.PutEvents(scratch)
	if opErr != nil {
		return errResponse(opErr)
	}
	return &coap.Message{Code: coap.CodeChanged}
}

func (f *Front) handle(req *coap.Message) *coap.Message {
	res, home := f.split(req.Path())
	switch res {
	case "report":
		if req.Code != coap.CodePOST {
			return &coap.Message{Code: coap.CodeBadRequest, Payload: []byte(gateway.ReasonMethod)}
		}
		if wire.IsBinary(req.Payload) {
			return f.handleBinary(home, req.Payload)
		}
		var batch []gateway.WireEvent
		if err := json.Unmarshal(req.Payload, &batch); err != nil {
			f.malformed.Inc()
			return &coap.Message{Code: coap.CodeBadRequest, Payload: []byte(gateway.ReasonBadPayload)}
		}
		for _, w := range batch {
			e := event.Event{
				At:     time.Duration(w.AtMS) * time.Millisecond,
				Device: device.ID(w.Device),
				Value:  w.Value,
			}
			if err := f.h.Ingest(home, e); err != nil {
				return errResponse(err)
			}
		}
		return &coap.Message{Code: coap.CodeChanged}
	case "advance":
		if wire.IsBinary(req.Payload) {
			return f.handleBinary(home, req.Payload)
		}
		var adv struct {
			AtMS int64 `json:"at"`
		}
		if err := json.Unmarshal(req.Payload, &adv); err != nil {
			f.malformed.Inc()
			return &coap.Message{Code: coap.CodeBadRequest, Payload: []byte(gateway.ReasonBadPayload)}
		}
		if err := f.h.Advance(home, time.Duration(adv.AtMS)*time.Millisecond); err != nil {
			return errResponse(err)
		}
		return &coap.Message{Code: coap.CodeChanged}
	case "stats":
		// Drain first so the snapshot covers every op this client already
		// got an ACK for — the same read-your-writes contract a solo
		// gateway's synchronous /stats gives.
		if err := f.h.Drain(home); err != nil {
			return errResponse(err)
		}
		t, ok := f.h.Tenant(home)
		if !ok { // evicted between the drain and the lookup
			return &coap.Message{Code: coap.CodeNotFound}
		}
		data, err := json.Marshal(t.Stats())
		if err != nil {
			return &coap.Message{Code: coap.CodeInternal}
		}
		return &coap.Message{Code: coap.CodeContent, Payload: data}
	case "context":
		if err := f.h.Drain(home); err != nil {
			return errResponse(err)
		}
		t, ok := f.h.Tenant(home)
		if !ok {
			return &coap.Message{Code: coap.CodeNotFound}
		}
		data, err := json.Marshal(t.ContextInfo())
		if err != nil {
			return &coap.Message{Code: coap.CodeInternal}
		}
		return &coap.Message{Code: coap.CodeContent, Payload: data}
	case "liveness":
		if err := f.h.Drain(home); err != nil {
			return errResponse(err)
		}
		t, ok := f.h.Tenant(home)
		if !ok {
			return &coap.Message{Code: coap.CodeNotFound}
		}
		data, err := json.Marshal(t.Liveness())
		if err != nil {
			return &coap.Message{Code: coap.CodeInternal}
		}
		return &coap.Message{Code: coap.CodeContent, Payload: data}
	default:
		return &coap.Message{Code: coap.CodeNotFound}
	}
}
