package markov

import (
	"bytes"
	"testing"
)

// FuzzIntervalSketch hammers the binary codec: any input either fails to
// decode or round-trips to identical bytes, and a decoded sketch's
// invariants (band inside the bucket range, total consistent with the
// buckets) hold.
func FuzzIntervalSketch(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{sketchCodecVersion})
	var seed IntervalSketch
	seed.Observe(1)
	seed.Observe(90)
	seed.Observe(1 << 14)
	f.Add(seed.AppendBinary(nil))
	var dense IntervalSketch
	for gap := 1; gap < 5000; gap += 3 {
		dense.Observe(gap)
	}
	f.Add(dense.AppendBinary(nil))

	f.Fuzz(func(t *testing.T, data []byte) {
		s, n, err := DecodeIntervalSketch(data)
		if err != nil {
			return
		}
		if n < 1 || n > len(data) {
			t.Fatalf("decode consumed %d of %d bytes", n, len(data))
		}
		enc := s.AppendBinary(nil)
		s2, n2, err := DecodeIntervalSketch(enc)
		if err != nil {
			t.Fatalf("re-decode of canonical encoding failed: %v", err)
		}
		if n2 != len(enc) {
			t.Fatalf("re-decode consumed %d of %d bytes", n2, len(enc))
		}
		if !bytes.Equal(enc, s2.AppendBinary(nil)) {
			t.Fatal("encoding not canonical after round-trip")
		}
		var total uint64
		for b := 0; b < SketchBuckets; b++ {
			total += uint64(s.Bucket(b))
		}
		if total != s.Total() {
			t.Fatalf("Total %d != bucket sum %d", s.Total(), total)
		}
		lo, hi := s.Band(0, 1)
		if lo < 0 || hi >= SketchBuckets || lo > hi {
			t.Fatalf("band [%d, %d] out of range", lo, hi)
		}
		if s.Total() > 0 && (s.Bucket(lo) == 0 || s.Bucket(hi) == 0) {
			t.Fatalf("band edges [%d, %d] on empty buckets", lo, hi)
		}
	})
}
