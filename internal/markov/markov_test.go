package markov

import (
	"encoding/json"
	"math"
	"testing"
	"testing/quick"
)

func TestObserveAndProb(t *testing.T) {
	c := NewChain()
	c.Observe(1, 2)
	c.Observe(1, 2)
	c.Observe(1, 3)
	if got := c.Prob(1, 2); math.Abs(got-2.0/3.0) > 1e-12 {
		t.Errorf("Prob(1,2) = %v, want 2/3", got)
	}
	if got := c.Prob(1, 3); math.Abs(got-1.0/3.0) > 1e-12 {
		t.Errorf("Prob(1,3) = %v, want 1/3", got)
	}
	if got := c.Prob(1, 9); got != 0 {
		t.Errorf("Prob(1,9) = %v, want 0", got)
	}
	if got := c.Prob(9, 1); got != 0 {
		t.Errorf("unknown source Prob = %v, want 0", got)
	}
}

func TestPossibleAndKnown(t *testing.T) {
	c := NewChain()
	c.Observe(5, 6)
	if !c.Possible(5, 6) {
		t.Error("observed transition reported impossible")
	}
	if c.Possible(5, 7) || c.Possible(6, 5) {
		t.Error("unobserved transition reported possible")
	}
	if !c.Known(5) {
		t.Error("source 5 should be known")
	}
	if c.Known(6) {
		t.Error("state 6 was never a source")
	}
}

func TestCountAndTotals(t *testing.T) {
	c := NewChain()
	for i := 0; i < 4; i++ {
		c.Observe(0, 1)
	}
	c.Observe(0, 2)
	if c.Count(0, 1) != 4 {
		t.Errorf("Count = %d, want 4", c.Count(0, 1))
	}
	if c.RowTotal(0) != 5 {
		t.Errorf("RowTotal = %d, want 5", c.RowTotal(0))
	}
	if c.TotalObservations() != 5 {
		t.Errorf("TotalObservations = %d, want 5", c.TotalObservations())
	}
	if c.NumTransitions() != 2 {
		t.Errorf("NumTransitions = %d, want 2", c.NumTransitions())
	}
}

func TestSuccessorsSorted(t *testing.T) {
	c := NewChain()
	c.Observe(1, 9)
	c.Observe(1, 3)
	c.Observe(1, 5)
	got := c.Successors(1)
	want := []int{3, 5, 9}
	if len(got) != 3 || got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
		t.Errorf("Successors = %v, want %v", got, want)
	}
	if c.Successors(99) != nil {
		t.Error("unknown source should have nil successors")
	}
}

func TestStates(t *testing.T) {
	c := NewChain()
	c.Observe(2, 7)
	c.Observe(7, 2)
	c.Observe(2, 2)
	got := c.States()
	if len(got) != 2 || got[0] != 2 || got[1] != 7 {
		t.Errorf("States = %v, want [2 7]", got)
	}
}

func TestSelfLoop(t *testing.T) {
	c := NewChain()
	c.Observe(4, 4)
	if !c.Possible(4, 4) {
		t.Error("self-loop not recorded")
	}
	if c.Prob(4, 4) != 1 {
		t.Errorf("self-loop prob = %v, want 1", c.Prob(4, 4))
	}
}

func TestMerge(t *testing.T) {
	a := NewChain()
	a.Observe(1, 2)
	b := NewChain()
	b.Observe(1, 2)
	b.Observe(3, 4)
	a.Merge(b)
	if a.Count(1, 2) != 2 {
		t.Errorf("merged Count(1,2) = %d, want 2", a.Count(1, 2))
	}
	if !a.Possible(3, 4) {
		t.Error("merge dropped a transition")
	}
	if a.TotalObservations() != 3 {
		t.Errorf("merged total = %d, want 3", a.TotalObservations())
	}
}

func TestJSONRoundTrip(t *testing.T) {
	c := NewChain()
	c.Observe(0, 1)
	c.Observe(0, 1)
	c.Observe(1, 0)
	c.Observe(5, 5)
	data, err := json.Marshal(c)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	got := NewChain()
	if err := json.Unmarshal(data, got); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if got.Count(0, 1) != 2 || got.Count(1, 0) != 1 || got.Count(5, 5) != 1 {
		t.Errorf("round trip lost counts: %s", data)
	}
	if got.TotalObservations() != c.TotalObservations() {
		t.Error("round trip changed totals")
	}
}

func TestUnmarshalRejectsBadCounts(t *testing.T) {
	c := NewChain()
	if err := json.Unmarshal([]byte(`{"cells":[{"from":1,"to":2,"count":0}]}`), c); err == nil {
		t.Error("zero count accepted")
	}
	if err := json.Unmarshal([]byte(`{"cells":`), c); err == nil {
		t.Error("malformed JSON accepted")
	}
}

func TestMarshalDeterministic(t *testing.T) {
	c := NewChain()
	c.Observe(3, 1)
	c.Observe(1, 3)
	c.Observe(2, 2)
	d1, err := json.Marshal(c)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := json.Marshal(c)
	if err != nil {
		t.Fatal(err)
	}
	if string(d1) != string(d2) {
		t.Error("marshal output not deterministic")
	}
}

// Property: row probabilities sum to 1 for every known source.
func TestRowStochasticProperty(t *testing.T) {
	f := func(pairs [][2]uint8) bool {
		c := NewChain()
		for _, p := range pairs {
			c.Observe(int(p[0]), int(p[1]))
		}
		for _, a := range c.States() {
			if !c.Known(a) {
				continue
			}
			sum := 0.0
			for _, b := range c.Successors(a) {
				sum += c.Prob(a, b)
			}
			if math.Abs(sum-1) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: JSON round trip preserves every cell.
func TestJSONProperty(t *testing.T) {
	f := func(pairs [][2]uint8) bool {
		c := NewChain()
		for _, p := range pairs {
			c.Observe(int(p[0]), int(p[1]))
		}
		data, err := json.Marshal(c)
		if err != nil {
			return false
		}
		got := NewChain()
		if err := json.Unmarshal(data, got); err != nil {
			return false
		}
		for _, p := range pairs {
			if got.Count(int(p[0]), int(p[1])) != c.Count(int(p[0]), int(p[1])) {
				return false
			}
		}
		return got.TotalObservations() == c.TotalObservations()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func BenchmarkObserve(b *testing.B) {
	c := NewChain()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Observe(i%100, (i+7)%100)
	}
}

func BenchmarkPossible(b *testing.B) {
	c := NewChain()
	for i := 0; i < 1000; i++ {
		c.Observe(i%50, (i*13)%50)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Possible(i%50, (i+1)%50)
	}
}
