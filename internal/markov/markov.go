// Package markov implements the sparse transition-probability matrices DICE
// uses for its transition check: group-to-group (G2G), group-to-actuator
// (G2A), and actuator-to-group (A2G). The transition check only ever asks
// "is this transition's probability zero?", so the chain stores raw counts
// and derives probabilities on demand; zero cells are simply absent.
package markov

import (
	"encoding/json"
	"fmt"
	"sort"
)

// Chain is a sparse first-order Markov transition-count matrix over integer
// states. The zero value is not usable; construct with NewChain.
type Chain struct {
	counts    map[int]map[int]int64
	rowTotals map[int]int64
}

// NewChain returns an empty chain.
func NewChain() *Chain {
	return &Chain{
		counts:    make(map[int]map[int]int64),
		rowTotals: make(map[int]int64),
	}
}

// Observe records one transition from state a to state b.
func (c *Chain) Observe(a, b int) {
	row := c.counts[a]
	if row == nil {
		row = make(map[int]int64)
		c.counts[a] = row
	}
	row[b]++
	c.rowTotals[a]++
}

// Count returns the number of observed a->b transitions.
func (c *Chain) Count(a, b int) int64 {
	return c.counts[a][b]
}

// RowTotal returns the total transitions observed out of state a.
func (c *Chain) RowTotal(a int) int64 {
	return c.rowTotals[a]
}

// Prob returns the maximum-likelihood probability of a->b. It returns 0
// when a was never observed as a source state: the transition check treats
// an unknown source the same as a zero-probability transition.
func (c *Chain) Prob(a, b int) float64 {
	total := c.rowTotals[a]
	if total == 0 {
		return 0
	}
	return float64(c.counts[a][b]) / float64(total)
}

// Known reports whether state a has been observed as a source.
func (c *Chain) Known(a int) bool {
	return c.rowTotals[a] > 0
}

// Possible reports whether the transition a->b has ever been observed.
// This is the predicate behind all three violation cases in §3.3.2.
func (c *Chain) Possible(a, b int) bool {
	return c.counts[a][b] > 0
}

// Successors returns the states reachable from a in ascending order. The
// identification step uses these as the probable groups for a G2G violation.
func (c *Chain) Successors(a int) []int {
	row := c.counts[a]
	if len(row) == 0 {
		return nil
	}
	out := make([]int, 0, len(row))
	for b := range row {
		out = append(out, b)
	}
	sort.Ints(out)
	return out
}

// States returns all states that appear as a source or destination, in
// ascending order.
func (c *Chain) States() []int {
	seen := make(map[int]bool)
	for a, row := range c.counts {
		seen[a] = true
		for b := range row {
			seen[b] = true
		}
	}
	out := make([]int, 0, len(seen))
	for s := range seen {
		out = append(out, s)
	}
	sort.Ints(out)
	return out
}

// NumTransitions returns the number of distinct nonzero cells.
func (c *Chain) NumTransitions() int {
	n := 0
	for _, row := range c.counts {
		n += len(row)
	}
	return n
}

// TotalObservations returns the total number of Observe calls.
func (c *Chain) TotalObservations() int64 {
	var t int64
	for _, v := range c.rowTotals {
		t += v
	}
	return t
}

// Clone returns a deep copy of the chain. Adaptation derives each new
// context version from its parent's chains, so published versions must
// never share count maps with the working copy still being mutated.
func (c *Chain) Clone() *Chain {
	out := NewChain()
	for a, row := range c.counts {
		dst := make(map[int]int64, len(row))
		for b, n := range row {
			dst[b] = n
		}
		out.counts[a] = dst
		out.rowTotals[a] = c.rowTotals[a]
	}
	return out
}

// Decay multiplies every count by factor (0 < factor < 1), flooring the
// result; cells that decay below one observation are pruned — the
// transition is forgotten and Possible turns false again. It returns the
// number of pruned edges. This is the exponential aging behind online
// context adaptation: stale behavior fades instead of vetoing the
// transition check forever. A factor outside (0, 1) is a no-op.
func (c *Chain) Decay(factor float64) int {
	if factor <= 0 || factor >= 1 {
		return 0
	}
	pruned := 0
	for a, row := range c.counts {
		var total int64
		for b, n := range row {
			scaled := int64(float64(n) * factor)
			if scaled < 1 {
				delete(row, b)
				pruned++
				continue
			}
			row[b] = scaled
			total += scaled
		}
		if len(row) == 0 {
			delete(c.counts, a)
			delete(c.rowTotals, a)
			continue
		}
		c.rowTotals[a] = total
	}
	return pruned
}

// Merge folds another chain's counts into c.
func (c *Chain) Merge(o *Chain) {
	for a, row := range o.counts {
		for b, n := range row {
			dst := c.counts[a]
			if dst == nil {
				dst = make(map[int]int64)
				c.counts[a] = dst
			}
			dst[b] += n
			c.rowTotals[a] += n
		}
	}
}

// chainJSON is the serialized form: a list of cells keeps the encoding
// stable and human-inspectable.
type chainJSON struct {
	Cells []cellJSON `json:"cells"`
}

type cellJSON struct {
	From  int   `json:"from"`
	To    int   `json:"to"`
	Count int64 `json:"count"`
}

// MarshalJSON encodes the chain with cells sorted by (from, to).
func (c *Chain) MarshalJSON() ([]byte, error) {
	var cells []cellJSON
	for a, row := range c.counts {
		for b, n := range row {
			cells = append(cells, cellJSON{From: a, To: b, Count: n})
		}
	}
	sort.Slice(cells, func(i, j int) bool {
		if cells[i].From != cells[j].From {
			return cells[i].From < cells[j].From
		}
		return cells[i].To < cells[j].To
	})
	return json.Marshal(chainJSON{Cells: cells})
}

// UnmarshalJSON decodes a chain produced by MarshalJSON.
func (c *Chain) UnmarshalJSON(data []byte) error {
	var cj chainJSON
	if err := json.Unmarshal(data, &cj); err != nil {
		return fmt.Errorf("markov: decode: %w", err)
	}
	c.counts = make(map[int]map[int]int64)
	c.rowTotals = make(map[int]int64)
	for _, cell := range cj.Cells {
		if cell.Count <= 0 {
			return fmt.Errorf("markov: non-positive count %d for %d->%d", cell.Count, cell.From, cell.To)
		}
		row := c.counts[cell.From]
		if row == nil {
			row = make(map[int]int64)
			c.counts[cell.From] = row
		}
		row[cell.To] += cell.Count
		c.rowTotals[cell.From] += cell.Count
	}
	return nil
}
