package markov

import (
	"encoding/json"
	"math/rand"
	"reflect"
	"testing"
)

// Bucketing must be monotone in the gap and consistent with the bucket
// edges BucketMin/BucketMax report.
func TestBucketForMonotoneAndEdges(t *testing.T) {
	prev := 0
	for gap := 1; gap <= 1<<17; gap++ {
		b := BucketFor(gap)
		if b < prev {
			t.Fatalf("BucketFor not monotone: gap %d -> bucket %d after bucket %d", gap, b, prev)
		}
		if b < 0 || b >= SketchBuckets {
			t.Fatalf("BucketFor(%d) = %d out of range", gap, b)
		}
		if b < SketchBuckets-1 {
			if gap < BucketMin(b) || gap > BucketMax(b) {
				t.Fatalf("gap %d in bucket %d but outside [%d, %d]", gap, b, BucketMin(b), BucketMax(b))
			}
		} else if gap < BucketMin(b) {
			t.Fatalf("gap %d in top bucket but below its floor %d", gap, BucketMin(b))
		}
		prev = b
	}
	if got := BucketFor(0); got != 0 {
		t.Fatalf("BucketFor(0) = %d, want 0", got)
	}
	if got := BucketFor(-5); got != 0 {
		t.Fatalf("BucketFor(-5) = %d, want 0", got)
	}
}

// The [0, 1] band must span exactly the occupied buckets, and interior
// quantiles must land where the cumulative mass says they do.
func TestBandQuantiles(t *testing.T) {
	var s IntervalSketch
	if lo, hi := s.Band(0, 1); lo != 0 || hi != SketchBuckets-1 {
		t.Fatalf("empty sketch band = [%d, %d], want full range", lo, hi)
	}

	// 10 gaps in bucket 2 (4..7), 80 in bucket 5 (32..63), 10 in bucket 9.
	for i := 0; i < 10; i++ {
		s.Observe(4)
	}
	for i := 0; i < 80; i++ {
		s.Observe(40)
	}
	for i := 0; i < 10; i++ {
		s.Observe(600)
	}
	if lo, hi := s.Band(0, 1); lo != 2 || hi != 9 {
		t.Fatalf("full band = [%d, %d], want [2, 9]", lo, hi)
	}
	// The middle 80% of the mass lives in bucket 5.
	if lo, hi := s.Band(0.1, 0.9); lo != 5 || hi != 5 {
		t.Fatalf("10-90%% band = [%d, %d], want [5, 5]", lo, hi)
	}
	if lo, hi := s.Band(0.05, 0.95); lo != 2 || hi != 9 {
		t.Fatalf("5-95%% band = [%d, %d], want [2, 9]", lo, hi)
	}
}

// Randomized invariant: for any observation multiset, every observed gap's
// bucket falls inside the [0, 1] band, and Total matches the count.
func TestBandCoversObservations(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		var s IntervalSketch
		n := 1 + rng.Intn(300)
		minB, maxB := SketchBuckets, -1
		for i := 0; i < n; i++ {
			gap := 1 + rng.Intn(1<<uint(rng.Intn(16)))
			s.Observe(gap)
			if b := BucketFor(gap); b < minB {
				minB = b
			}
			if b := BucketFor(gap); b > maxB {
				maxB = b
			}
		}
		if got := s.Total(); got != uint64(n) {
			t.Fatalf("trial %d: Total = %d, want %d", trial, got, n)
		}
		lo, hi := s.Band(0, 1)
		if lo != minB || hi != maxB {
			t.Fatalf("trial %d: band [%d, %d], observations span [%d, %d]", trial, lo, hi, minB, maxB)
		}
	}
}

// Merge must equal observing both streams into one sketch; decay must
// match the chains' flooring semantics and report emptiness exactly.
func TestMergeDecayRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var a, b, both IntervalSketch
	for i := 0; i < 500; i++ {
		gap := 1 + rng.Intn(4000)
		if i%2 == 0 {
			a.Observe(gap)
		} else {
			b.Observe(gap)
		}
		both.Observe(gap)
	}
	merged := a.Clone()
	merged.Merge(&b)
	if !reflect.DeepEqual(merged.Buckets(), both.Buckets()) {
		t.Fatalf("merge mismatch:\n merged %v\n direct %v", merged.Buckets(), both.Buckets())
	}

	decayed := merged.Clone()
	empty := decayed.Decay(0.5)
	if empty {
		t.Fatal("decay of a populated sketch reported empty")
	}
	for i, n := range merged.Buckets() {
		want := uint32(float64(n) * 0.5)
		if decayed.Buckets()[i] != want {
			t.Fatalf("bucket %d decayed to %d, want %d", i, decayed.Buckets()[i], want)
		}
	}
	// Repeated halving must eventually report empty.
	for i := 0; i < 40 && !decayed.Decay(0.5); i++ {
	}
	if decayed.Total() != 0 {
		t.Fatalf("sketch not empty after repeated decay: %v", decayed.Buckets())
	}
}

func TestSketchBinaryRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 100; trial++ {
		var s IntervalSketch
		for i := rng.Intn(64); i > 0; i-- {
			s.Observe(1 + rng.Intn(1<<15))
		}
		enc := s.AppendBinary(nil)
		dec, n, err := DecodeIntervalSketch(enc)
		if err != nil {
			t.Fatalf("trial %d: decode: %v", trial, err)
		}
		if n != len(enc) {
			t.Fatalf("trial %d: decode consumed %d of %d bytes", trial, n, len(enc))
		}
		if !reflect.DeepEqual(dec.Buckets(), s.Buckets()) {
			t.Fatalf("trial %d: round-trip mismatch", trial)
		}
	}
	if _, _, err := DecodeIntervalSketch(nil); err == nil {
		t.Fatal("decode of empty input succeeded")
	}
	if _, _, err := DecodeIntervalSketch([]byte{99}); err == nil {
		t.Fatal("decode of unknown version succeeded")
	}
}

func TestSketchSetJSONRoundTrip(t *testing.T) {
	ss := NewSketchSet()
	ss.Observe(0, 3, 5)
	ss.Observe(0, 3, 90)
	ss.Observe(7, 1, 2)
	ss.Observe(2, 2, 1000)

	data, err := json.Marshal(ss)
	if err != nil {
		t.Fatal(err)
	}
	var back SketchSet
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Len() != ss.Len() {
		t.Fatalf("round-trip has %d edges, want %d", back.Len(), ss.Len())
	}
	for _, k := range [][2]int{{0, 3}, {7, 1}, {2, 2}} {
		a, b := ss.Get(k[0], k[1]), back.Get(k[0], k[1])
		if a == nil || b == nil || !reflect.DeepEqual(a.Buckets(), b.Buckets()) {
			t.Fatalf("edge %v mismatch after round-trip", k)
		}
	}
	// Canonical bytes: re-marshal of the decoded set must be identical.
	data2, err := json.Marshal(&back)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(data2) {
		t.Fatalf("marshal not canonical:\n %s\n %s", data, data2)
	}
}

func TestSketchSetNilSafety(t *testing.T) {
	var ss *SketchSet
	if ss.Get(1, 2) != nil || ss.Len() != 0 || ss.Clone() != nil || ss.Decay(0.5) != 0 {
		t.Fatal("nil SketchSet accessors not inert")
	}
	var s *IntervalSketch
	if s.Total() != 0 || s.Bucket(0) != 0 || s.Buckets() != nil || s.Clone() != nil {
		t.Fatal("nil IntervalSketch accessors not inert")
	}
}

func TestSketchSetDecayPrunes(t *testing.T) {
	ss := NewSketchSet()
	ss.Observe(1, 2, 10) // single observation: halving floors it to zero
	for i := 0; i < 100; i++ {
		ss.Observe(3, 4, 20)
	}
	if pruned := ss.Decay(0.5); pruned != 1 {
		t.Fatalf("pruned %d edges, want 1", pruned)
	}
	if ss.Get(1, 2) != nil {
		t.Fatal("emptied edge survived decay")
	}
	if got := ss.Get(3, 4).Total(); got != 50 {
		t.Fatalf("surviving edge total %d, want 50", got)
	}
}
