package markov

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"sort"
)

// SketchBuckets is the fixed width of an IntervalSketch: sixteen log2
// buckets cover gaps from one window to 2^15+ windows (about three weeks at
// the paper's one-minute duration), which is wider than any inter-window
// interval a home routine can produce.
const SketchBuckets = 16

// BucketFor maps a gap (in windows, >= 1) to its log2 bucket: bucket b
// holds gaps in [2^b, 2^(b+1)). Gaps below one clamp to bucket 0 and gaps
// beyond the top bucket clamp to SketchBuckets-1, so the mapping is total
// and monotone.
func BucketFor(gap int) int {
	if gap < 1 {
		return 0
	}
	b := 0
	for gap > 1 && b < SketchBuckets-1 {
		gap >>= 1
		b++
	}
	return b
}

// BucketMin returns the smallest gap bucket b covers (2^b).
func BucketMin(b int) int {
	if b < 0 {
		b = 0
	}
	if b > SketchBuckets-1 {
		b = SketchBuckets - 1
	}
	return 1 << uint(b)
}

// BucketMax returns the largest gap bucket b nominally covers (2^(b+1)-1).
// The top bucket is open-ended; its BucketMax is only the nominal edge.
func BucketMax(b int) int {
	if b < 0 {
		b = 0
	}
	if b > SketchBuckets-1 {
		b = SketchBuckets - 1
	}
	return 1<<uint(b+1) - 1
}

// IntervalSketch is a compact histogram of inter-window intervals for one
// transition edge: a fixed array of uint32 counts over log2(gap) buckets.
// The timing check asks only "is this gap inside the band the training data
// spanned?", so bucket resolution (a factor of two) is plenty, and the
// fixed footprint keeps per-edge cost bounded no matter how long training
// runs. The zero value is an empty sketch ready for use.
type IntervalSketch struct {
	buckets [SketchBuckets]uint32
}

// Observe folds one gap (in windows) into the sketch. Counts saturate at
// the uint32 ceiling instead of wrapping.
func (s *IntervalSketch) Observe(gap int) {
	b := BucketFor(gap)
	if s.buckets[b] != ^uint32(0) {
		s.buckets[b]++
	}
}

// Total returns the number of observed gaps.
func (s *IntervalSketch) Total() uint64 {
	if s == nil {
		return 0
	}
	var t uint64
	for _, n := range s.buckets {
		t += uint64(n)
	}
	return t
}

// Bucket returns the count in bucket b.
func (s *IntervalSketch) Bucket(b int) uint32 {
	if s == nil || b < 0 || b >= SketchBuckets {
		return 0
	}
	return s.buckets[b]
}

// Buckets returns a copy of the bucket counts.
func (s *IntervalSketch) Buckets() []uint32 {
	if s == nil {
		return nil
	}
	out := make([]uint32, SketchBuckets)
	copy(out, s.buckets[:])
	return out
}

// Band returns the bucket indices [lo, hi] spanning the quantile range
// [qLo, qHi] of the observed gaps: lo is the first bucket whose cumulative
// count reaches qLo of the total, hi the first reaching qHi. With qLo=0 and
// qHi=1 the band is simply the occupied range. An empty sketch returns
// (0, SketchBuckets-1): with no evidence, every gap is in band.
func (s *IntervalSketch) Band(qLo, qHi float64) (lo, hi int) {
	total := s.Total()
	if total == 0 {
		return 0, SketchBuckets - 1
	}
	if qLo < 0 {
		qLo = 0
	}
	if qHi > 1 || qHi <= 0 {
		qHi = 1
	}
	needLo := qLo * float64(total)
	needHi := qHi * float64(total)
	lo, hi = -1, SketchBuckets-1
	var cum float64
	for b := 0; b < SketchBuckets; b++ {
		if s.buckets[b] == 0 {
			continue
		}
		cum += float64(s.buckets[b])
		if lo < 0 && cum > needLo {
			lo = b
		}
		if cum >= needHi {
			hi = b
			break
		}
	}
	if lo < 0 {
		lo = hi
	}
	return lo, hi
}

// Merge folds another sketch's counts into s, saturating per bucket.
func (s *IntervalSketch) Merge(o *IntervalSketch) {
	if o == nil {
		return
	}
	for b := range s.buckets {
		sum := uint64(s.buckets[b]) + uint64(o.buckets[b])
		if sum > uint64(^uint32(0)) {
			sum = uint64(^uint32(0))
		}
		s.buckets[b] = uint32(sum)
	}
}

// Decay multiplies every bucket count by factor (0 < factor < 1), flooring
// the result, and reports whether the sketch is now empty — the same
// exponential aging the transition chains apply, so pace evidence fades in
// lockstep with the structural counts it annotates. A factor outside (0, 1)
// is a no-op.
func (s *IntervalSketch) Decay(factor float64) bool {
	if factor <= 0 || factor >= 1 {
		return s.Total() == 0
	}
	empty := true
	for b, n := range s.buckets {
		scaled := uint32(float64(n) * factor)
		s.buckets[b] = scaled
		if scaled > 0 {
			empty = false
		}
	}
	return empty
}

// Clone returns a deep copy.
func (s *IntervalSketch) Clone() *IntervalSketch {
	if s == nil {
		return nil
	}
	out := *s
	return &out
}

// sketchCodecVersion tags the binary encoding so a future layout change
// stays decodable.
const sketchCodecVersion = 1

// AppendBinary appends the sketch's compact binary form to dst: a version
// byte followed by one uvarint per bucket. The encoding is what the
// FuzzIntervalSketch round-trip target exercises.
func (s *IntervalSketch) AppendBinary(dst []byte) []byte {
	dst = append(dst, sketchCodecVersion)
	var tmp [binary.MaxVarintLen32]byte
	for _, n := range s.buckets {
		dst = append(dst, tmp[:binary.PutUvarint(tmp[:], uint64(n))]...)
	}
	return dst
}

// DecodeIntervalSketch decodes a sketch produced by AppendBinary, returning
// the sketch and the number of bytes consumed.
func DecodeIntervalSketch(data []byte) (*IntervalSketch, int, error) {
	if len(data) == 0 {
		return nil, 0, fmt.Errorf("markov: sketch: empty input")
	}
	if data[0] != sketchCodecVersion {
		return nil, 0, fmt.Errorf("markov: sketch: unknown codec version %d", data[0])
	}
	s := new(IntervalSketch)
	off := 1
	for b := 0; b < SketchBuckets; b++ {
		v, n := binary.Uvarint(data[off:])
		if n <= 0 {
			return nil, 0, fmt.Errorf("markov: sketch: truncated bucket %d", b)
		}
		if v > uint64(^uint32(0)) {
			return nil, 0, fmt.Errorf("markov: sketch: bucket %d overflows uint32", b)
		}
		s.buckets[b] = uint32(v)
		off += n
	}
	return s, off, nil
}

// SketchSet maps transition edges (from, to) to their interval sketches —
// one set per chain (G2G, G2A, A2G). Edge keys are small integer pairs, so
// lookups on the detector's clean-window hot path are plain array-keyed map
// reads with no allocation. The zero value is not usable; construct with
// NewSketchSet.
type SketchSet struct {
	m map[[2]int]*IntervalSketch
}

// NewSketchSet returns an empty set.
func NewSketchSet() *SketchSet {
	return &SketchSet{m: make(map[[2]int]*IntervalSketch)}
}

// Observe folds one gap into the edge's sketch, creating it on first use.
func (ss *SketchSet) Observe(from, to, gap int) {
	k := [2]int{from, to}
	s := ss.m[k]
	if s == nil {
		s = new(IntervalSketch)
		ss.m[k] = s
	}
	s.Observe(gap)
}

// Get returns the edge's sketch, or nil when no gap was ever observed for
// it. Callers must treat the result as read-only. Safe on a nil set.
func (ss *SketchSet) Get(from, to int) *IntervalSketch {
	if ss == nil {
		return nil
	}
	return ss.m[[2]int{from, to}]
}

// Len returns the number of edges with at least one observation. Safe on a
// nil set.
func (ss *SketchSet) Len() int {
	if ss == nil {
		return 0
	}
	return len(ss.m)
}

// Clone returns a deep copy. Safe on a nil set (returns nil), so a
// structural-only (v1) context clones without growing timing state.
func (ss *SketchSet) Clone() *SketchSet {
	if ss == nil {
		return nil
	}
	out := NewSketchSet()
	for k, s := range ss.m {
		out.m[k] = s.Clone()
	}
	return out
}

// Merge folds another set's sketches into ss.
func (ss *SketchSet) Merge(o *SketchSet) {
	if o == nil {
		return
	}
	for k, s := range o.m {
		dst := ss.m[k]
		if dst == nil {
			ss.m[k] = s.Clone()
			continue
		}
		dst.Merge(s)
	}
}

// Decay ages every sketch by factor and prunes the ones that empty out,
// returning the number of pruned edges. Safe on a nil set.
func (ss *SketchSet) Decay(factor float64) int {
	if ss == nil {
		return 0
	}
	pruned := 0
	for k, s := range ss.m {
		if s.Decay(factor) {
			delete(ss.m, k)
			pruned++
		}
	}
	return pruned
}

// sketchSetJSON mirrors the chain encoding: a (from, to)-sorted cell list
// keeps the bytes canonical, which the context fingerprint depends on.
type sketchSetJSON struct {
	Cells []sketchCellJSON `json:"cells"`
}

type sketchCellJSON struct {
	From    int      `json:"from"`
	To      int      `json:"to"`
	Buckets []uint32 `json:"buckets"`
}

// MarshalJSON encodes the set with cells sorted by (from, to). Trailing
// zero buckets are trimmed to keep payloads compact.
func (ss *SketchSet) MarshalJSON() ([]byte, error) {
	cells := make([]sketchCellJSON, 0, len(ss.m))
	for k, s := range ss.m {
		end := SketchBuckets
		for end > 0 && s.buckets[end-1] == 0 {
			end--
		}
		if end == 0 {
			continue
		}
		cells = append(cells, sketchCellJSON{
			From:    k[0],
			To:      k[1],
			Buckets: append([]uint32(nil), s.buckets[:end]...),
		})
	}
	sort.Slice(cells, func(i, j int) bool {
		if cells[i].From != cells[j].From {
			return cells[i].From < cells[j].From
		}
		return cells[i].To < cells[j].To
	})
	return json.Marshal(sketchSetJSON{Cells: cells})
}

// UnmarshalJSON decodes a set produced by MarshalJSON.
func (ss *SketchSet) UnmarshalJSON(data []byte) error {
	var sj sketchSetJSON
	if err := json.Unmarshal(data, &sj); err != nil {
		return fmt.Errorf("markov: decode sketch set: %w", err)
	}
	ss.m = make(map[[2]int]*IntervalSketch, len(sj.Cells))
	for _, cell := range sj.Cells {
		if len(cell.Buckets) > SketchBuckets {
			return fmt.Errorf("markov: sketch cell %d->%d has %d buckets, max %d",
				cell.From, cell.To, len(cell.Buckets), SketchBuckets)
		}
		s := new(IntervalSketch)
		copy(s.buckets[:], cell.Buckets)
		ss.m[[2]int{cell.From, cell.To}] = s
	}
	return nil
}
