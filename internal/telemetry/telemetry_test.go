package telemetry

import (
	"math"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x_total", "a counter")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if again := r.Counter("x_total", "a counter"); again != c {
		t.Error("re-registration returned a different counter")
	}
	g := r.Gauge("depth", "a gauge")
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Errorf("gauge = %d, want 5", got)
	}
}

func TestNilInstrumentsNoOp(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	var r *Registry
	c.Inc()
	c.Add(3)
	g.Set(1)
	h.Observe(1)
	h.ObserveDuration(time.Second)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil instruments reported nonzero values")
	}
	if r.Counter("x", "h") != nil || r.Gauge("y", "h") != nil || r.Histogram("z", "h", nil) != nil {
		t.Error("nil registry handed out instruments")
	}
	if err := r.WriteText(&strings.Builder{}); err != nil {
		t.Error(err)
	}
	if r.Snapshot() != nil || r.SnapshotMap() != nil {
		t.Error("nil registry produced a snapshot")
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "latency", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 3, 100} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Errorf("count = %d, want 5", h.Count())
	}
	if math.Abs(h.Sum()-106) > 1e-9 {
		t.Errorf("sum = %g, want 106", h.Sum())
	}
	snap := r.SnapshotMap()
	// Cumulative: le=1 -> {0.5, 1}, le=2 -> +{1.5}, le=4 -> +{3}, +Inf -> +{100}.
	for name, want := range map[string]float64{
		`lat_bucket{le="1"}`:    2,
		`lat_bucket{le="2"}`:    3,
		`lat_bucket{le="4"}`:    4,
		`lat_bucket{le="+Inf"}`: 5,
		"lat_count":             5,
	} {
		if got := snap[name]; got != want {
			t.Errorf("%s = %g, want %g", name, got, want)
		}
	}
}

func TestCounterVecIndexing(t *testing.T) {
	r := NewRegistry()
	vec := r.CounterVec("causes_total", "by cause", "cause", []string{"a", "b"})
	vec[1].Add(3)
	snap := r.SnapshotMap()
	if snap[`causes_total{cause="a"}`] != 0 || snap[`causes_total{cause="b"}`] != 3 {
		t.Errorf("vec snapshot wrong: %v", snap)
	}
	// get-or-create: same values return the same counters.
	again := r.CounterVec("causes_total", "by cause", "cause", []string{"a", "b"})
	if again[1] != vec[1] {
		t.Error("CounterVec re-registration returned different counters")
	}
}

func TestKindClashPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "h")
	defer func() {
		if recover() == nil {
			t.Error("gauge registration over a counter name did not panic")
		}
	}()
	r.Gauge("m", "h")
}

// Text-format grammar, shared with the gateway scraper test via the same
// regular expressions: every non-comment line must be `name[{labels}] value`.
var (
	helpRE   = regexp.MustCompile(`^# HELP [a-zA-Z_:][a-zA-Z0-9_:]* .*$`)
	typeRE   = regexp.MustCompile(`^# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* (counter|gauge|histogram)$`)
	sampleRE = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")*\})? (NaN|[-+]?Inf|[-+]?[0-9]*\.?[0-9]+([eE][-+]?[0-9]+)?)$`)
)

// ValidatePromText checks every line of a text exposition against the
// grammar and returns the sample names seen. Exported to the package tests
// only (lower-case callers live in gateway's scraper test via copy of the
// regexps — the format is the contract, not this helper).
func validatePromText(t *testing.T, text string) map[string]int {
	t.Helper()
	names := make(map[string]int)
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		switch {
		case strings.HasPrefix(line, "# HELP "):
			if !helpRE.MatchString(line) {
				t.Errorf("bad HELP line: %q", line)
			}
		case strings.HasPrefix(line, "# TYPE "):
			if !typeRE.MatchString(line) {
				t.Errorf("bad TYPE line: %q", line)
			}
		default:
			if !sampleRE.MatchString(line) {
				t.Errorf("bad sample line: %q", line)
				continue
			}
			name := line
			if i := strings.IndexAny(line, "{ "); i >= 0 {
				name = line[:i]
			}
			names[name]++
		}
	}
	return names
}

func TestWriteTextGrammar(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "counter with\nnewline help").Add(2)
	r.LabeledCounter("b_total", "labelled", "cause", `we"ird\value`).Inc()
	r.Gauge("c", "gauge").Set(-4)
	r.Histogram("d_seconds", "hist", ExpBuckets(0.001, 4, 4)).Observe(0.05)
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	names := validatePromText(t, sb.String())
	for _, want := range []string{"a_total", "b_total", "c", "d_seconds_bucket", "d_seconds_sum", "d_seconds_count"} {
		if names[want] == 0 {
			t.Errorf("exposition is missing %s:\n%s", want, sb.String())
		}
	}
}

// TestConcurrentUpdates exercises the lock-free paths under the race
// detector: concurrent Inc/Observe against shared instruments plus
// concurrent get-or-create registration.
func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	const workers, iters = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("shared_total", "h")
			h := r.Histogram("shared_seconds", "h", []float64{0.5, 1})
			g := r.Gauge("shared_depth", "h")
			for i := 0; i < iters; i++ {
				c.Inc()
				h.Observe(0.25)
				g.Add(1)
				g.Add(-1)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared_total", "h").Value(); got != workers*iters {
		t.Errorf("counter = %d, want %d", got, workers*iters)
	}
	h := r.Histogram("shared_seconds", "h", nil)
	if h.Count() != workers*iters {
		t.Errorf("histogram count = %d, want %d", h.Count(), workers*iters)
	}
	if math.Abs(h.Sum()-0.25*workers*iters) > 1e-6 {
		t.Errorf("histogram sum = %g, want %g", h.Sum(), 0.25*workers*iters)
	}
}

func TestHotPathAllocFree(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x_total", "h")
	g := r.Gauge("g", "h")
	h := r.Histogram("h_seconds", "h", ExpBuckets(1e-6, 4, 8))
	allocs := testing.AllocsPerRun(200, func() {
		c.Inc()
		g.Set(3)
		h.Observe(1e-4)
	})
	if allocs != 0 {
		t.Errorf("instrument updates allocate %.1f objects per run, want 0", allocs)
	}
}

func TestSnapshotDeterministicOrder(t *testing.T) {
	build := func() *Registry {
		r := NewRegistry()
		r.Counter("z_total", "h").Add(1)
		r.Counter("a_total", "h").Add(2)
		r.Histogram("m_dist", "h", []float64{1, 2}).Observe(1.5)
		return r
	}
	a, b := build().Snapshot(), build().Snapshot()
	if len(a) != len(b) {
		t.Fatalf("snapshot lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("snapshot[%d] differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestLabeledGauge(t *testing.T) {
	r := NewRegistry()
	g0 := r.LabeledGauge("depth", "per-shard depth", "shard", "0")
	g1 := r.LabeledGauge("depth", "per-shard depth", "shard", "1")
	if g0 == g1 {
		t.Fatal("distinct label values share one gauge")
	}
	if again := r.LabeledGauge("depth", "per-shard depth", "shard", "0"); again != g0 {
		t.Error("re-registration did not return the existing gauge")
	}
	g0.Set(3)
	g1.Set(7)
	vec := r.GaugeVec("depth", "per-shard depth", "shard", []string{"0", "1"})
	if vec[0].Value() != 3 || vec[1].Value() != 7 {
		t.Errorf("GaugeVec = %d,%d, want 3,7", vec[0].Value(), vec[1].Value())
	}
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`depth{shard="0"} 3`, `depth{shard="1"} 7`} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("exposition missing %q:\n%s", want, sb.String())
		}
	}
}

// TestWriteTextMerged is the multi-tenant exposition contract: several
// registries render as one grammar-valid document, every series stamped
// with its view's label, shared families emitted under a single HELP/TYPE.
func TestWriteTextMerged(t *testing.T) {
	a, b, own := NewRegistry(), NewRegistry(), NewRegistry()
	a.Counter("events_total", "events").Add(5)
	b.Counter("events_total", "events").Add(9)
	a.LabeledCounter("violations_total", "violations", "cause", "g2g").Add(2)
	b.Histogram("lat_seconds", "latency", []float64{1, 2}).Observe(1.5)
	own.Gauge("tenants", "tenant count").Set(2)

	var sb strings.Builder
	err := WriteTextMerged(&sb,
		View{Registry: own},
		View{Registry: a, Label: "home", Value: "A"},
		View{Registry: b, Label: "home", Value: "B"},
	)
	if err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	validatePromText(t, text)
	for _, want := range []string{
		`events_total{home="A"} 5`,
		`events_total{home="B"} 9`,
		`violations_total{home="A",cause="g2g"} 2`,
		`lat_seconds_bucket{home="B",le="2"} 1`,
		`lat_seconds_bucket{home="B",le="+Inf"} 1`,
		`lat_seconds_count{home="B"} 1`,
		"tenants 2",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("merged exposition missing %q:\n%s", want, text)
		}
	}
	if n := strings.Count(text, "# TYPE events_total"); n != 1 {
		t.Errorf("shared family has %d TYPE lines, want 1:\n%s", n, text)
	}
}
