// Package telemetry is the repo's zero-dependency observability substrate:
// a metrics registry of atomic counters, gauges, and fixed-bucket
// histograms with Prometheus text-format exposition.
//
// Design constraints, in order:
//
//   - Hot-path updates must be allocation-free and lock-free: every
//     instrument is a fixed-size struct updated with atomics, resolved to a
//     pointer once at construction time. No maps, no label parsing, and no
//     interface dispatch on the Process path.
//   - Instruments are nil-safe: calling Inc/Observe/Set on a nil instrument
//     is a no-op, so uninstrumented components skip telemetry without
//     guard branches at every site.
//   - One registry serves both the live gateway (scraped via GET /metrics)
//     and the offline evaluation harness (dumped into BENCH_eval.json), so
//     online and offline runs share a single metric namespace.
//
// Registration is get-or-create: asking for an existing name returns the
// existing instrument, which lets many detectors (e.g. the parallel eval
// pool) share one registry without coordination.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric. The zero value is ready;
// a nil *Counter no-ops.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n (n must be >= 0 for the Prometheus counter contract; this is
// not enforced so checkpoint restore can rebuild arbitrary states).
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Store overwrites the counter. It exists only for checkpoint restore —
// a restarted gateway resumes its cumulative counters rather than
// restarting them from zero — and must not be used on a live hot path.
func (c *Counter) Store(n int64) {
	if c != nil {
		c.v.Store(n)
	}
}

// Value returns the current count (0 for nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can go up and down. The zero value is ready; a
// nil *Gauge no-ops.
type Gauge struct {
	v atomic.Int64
}

// Set overwrites the gauge.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Add adjusts the gauge by n (negative to decrease).
func (g *Gauge) Add(n int64) {
	if g != nil {
		g.v.Add(n)
	}
}

// Value returns the current value (0 for nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket cumulative histogram. Buckets are upper
// bounds (le), with an implicit +Inf bucket; Observe is lock-free and
// allocation-free. A nil *Histogram no-ops.
type Histogram struct {
	bounds  []float64
	counts  []atomic.Int64 // len(bounds)+1; last is +Inf
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 bits, CAS-accumulated
}

// Observe folds one sample in.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// First bucket whose upper bound is >= v; falls through to +Inf.
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		upd := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, upd) {
			return
		}
	}
}

// ObserveDuration records d in seconds, the Prometheus base unit for time.
func (h *Histogram) ObserveDuration(d time.Duration) {
	h.Observe(d.Seconds())
}

// Count returns the total number of observations (0 for nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values (0 for nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// LinearBuckets returns n upper bounds start, start+width, ...
func LinearBuckets(start, width float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = start + float64(i)*width
	}
	return out
}

// ExpBuckets returns n upper bounds start, start*factor, ...
func ExpBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// kinds of metric family, in Prometheus TYPE vocabulary.
const (
	kindCounter   = "counter"
	kindGauge     = "gauge"
	kindHistogram = "histogram"
)

// child is one series within a family: a label suffix (`{k="v"}` or empty)
// plus exactly one backing instrument.
type child struct {
	labels string // rendered label block, "" for unlabelled
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// family groups the series sharing one metric name.
type family struct {
	name     string
	help     string
	kind     string
	children []*child
}

func (f *family) find(labels string) *child {
	for _, ch := range f.children {
		if ch.labels == labels {
			return ch
		}
	}
	return nil
}

// Registry holds metric families and renders them in Prometheus text
// format. Registration takes a mutex; updates to the returned instruments
// are lock-free. The zero value is not usable — call NewRegistry.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	order    []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// getFamily returns the family, creating it if absent and panicking on a
// kind clash — two components disagreeing about a metric's type is a
// programming error that would silently corrupt the exposition.
func (r *Registry) getFamily(name, help, kind string) *family {
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind}
		r.families[name] = f
		r.order = append(r.order, name)
		return f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("telemetry: %s registered as %s, requested as %s", name, f.kind, kind))
	}
	return f
}

// Counter returns the counter registered under name, creating it if
// needed. A nil registry returns nil (a no-op counter).
func (r *Registry) Counter(name, help string) *Counter {
	return r.LabeledCounter(name, help, "", "")
}

// LabeledCounter returns the counter for one (label, value) pair of the
// family, e.g. dice_violations_total{cause="g2g"}. Empty label means the
// bare series.
func (r *Registry) LabeledCounter(name, help, label, value string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.getFamily(name, help, kindCounter)
	ls := renderLabels(label, value)
	if ch := f.find(ls); ch != nil {
		return ch.c
	}
	ch := &child{labels: ls, c: new(Counter)}
	f.children = append(f.children, ch)
	return ch.c
}

// CounterVec registers one counter per label value and returns them in
// order, so hot paths index by enum value instead of formatting labels.
func (r *Registry) CounterVec(name, help, label string, values []string) []*Counter {
	out := make([]*Counter, len(values))
	for i, v := range values {
		out[i] = r.LabeledCounter(name, help, label, v)
	}
	return out
}

// Gauge returns the gauge registered under name, creating it if needed.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.LabeledGauge(name, help, "", "")
}

// LabeledGauge returns the gauge for one (label, value) pair of the family,
// e.g. dice_hub_shard_queue_depth{shard="3"}. Empty label means the bare
// series.
func (r *Registry) LabeledGauge(name, help, label, value string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.getFamily(name, help, kindGauge)
	ls := renderLabels(label, value)
	if ch := f.find(ls); ch != nil {
		return ch.g
	}
	ch := &child{labels: ls, g: new(Gauge)}
	f.children = append(f.children, ch)
	return ch.g
}

// GaugeVec registers one gauge per label value and returns them in order,
// so hot paths index by enum value instead of formatting labels.
func (r *Registry) GaugeVec(name, help, label string, values []string) []*Gauge {
	out := make([]*Gauge, len(values))
	for i, v := range values {
		out[i] = r.LabeledGauge(name, help, label, v)
	}
	return out
}

// Histogram returns the histogram registered under name, creating it with
// the given upper bounds if needed (bounds must be sorted ascending; the
// +Inf bucket is implicit). Re-registration returns the existing histogram
// and ignores the bounds argument.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.getFamily(name, help, kindHistogram)
	if ch := f.find(""); ch != nil {
		return ch.h
	}
	h := &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Int64, len(bounds)+1),
	}
	ch := &child{h: h}
	f.children = append(f.children, ch)
	return h
}

// renderLabels renders one (label, value) pair as a Prometheus label
// block, escaping backslash, quote, and newline per the text format.
func renderLabels(label, value string) string {
	if label == "" {
		return ""
	}
	esc := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`).Replace(value)
	return `{` + label + `="` + esc + `"}`
}

func formatFloat(v float64) string {
	if math.IsInf(v, +1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// mergeLabels combines an extra pre-rendered label pair (`k="v"`, empty for
// none) with a child's rendered label block. The extra pair goes first so a
// merged exposition groups by it visually.
func mergeLabels(extra, labels string) string {
	switch {
	case extra == "":
		return labels
	case labels == "":
		return "{" + extra + "}"
	default:
		return "{" + extra + "," + labels[1:]
	}
}

// writeChildren renders one family's series, each stamped with the extra
// label pair; children are sorted by label block for a stable scrape.
func writeChildren(b *strings.Builder, f *family, children []*child, extra string) {
	children = append([]*child(nil), children...)
	sort.Slice(children, func(i, j int) bool { return children[i].labels < children[j].labels })
	for _, ch := range children {
		ls := mergeLabels(extra, ch.labels)
		switch f.kind {
		case kindCounter:
			fmt.Fprintf(b, "%s%s %d\n", f.name, ls, ch.c.Value())
		case kindGauge:
			fmt.Fprintf(b, "%s%s %d\n", f.name, ls, ch.g.Value())
		case kindHistogram:
			h := ch.h
			cum := int64(0)
			for i, bound := range h.bounds {
				cum += h.counts[i].Load()
				fmt.Fprintf(b, "%s_bucket%s %d\n", f.name,
					mergeLabels(extra, fmt.Sprintf("{le=%q}", formatFloat(bound))), cum)
			}
			cum += h.counts[len(h.bounds)].Load()
			fmt.Fprintf(b, "%s_bucket%s %d\n", f.name, mergeLabels(extra, `{le="+Inf"}`), cum)
			fmt.Fprintf(b, "%s_sum%s %s\n", f.name, ls, formatFloat(h.Sum()))
			fmt.Fprintf(b, "%s_count%s %d\n", f.name, ls, h.Count())
		}
	}
}

// snapshotFamilies copies the family list (and each child slice) under the
// registry lock so rendering can proceed without it; the instruments inside
// are atomics and safe to read live.
func (r *Registry) snapshotFamilies() []*family {
	r.mu.Lock()
	defer r.mu.Unlock()
	fams := make([]*family, 0, len(r.order))
	for _, n := range r.order {
		f := r.families[n]
		fams = append(fams, &family{
			name:     f.name,
			help:     f.help,
			kind:     f.kind,
			children: append([]*child(nil), f.children...),
		})
	}
	return fams
}

// WriteText renders the registry in Prometheus text exposition format
// (version 0.0.4): families sorted by name, each with # HELP and # TYPE
// lines, histograms expanded to _bucket/_sum/_count series.
func (r *Registry) WriteText(w io.Writer) error {
	if r == nil {
		return nil
	}
	fams := r.snapshotFamilies()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	var b strings.Builder
	for _, f := range fams {
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, strings.ReplaceAll(f.help, "\n", " "))
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
		writeChildren(&b, f, f.children, "")
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// View pairs a registry with an extra label stamped on every series it
// contributes to a merged exposition. A multi-tenant hub renders one View
// per tenant (Label "home") plus an unlabelled one for its own series.
type View struct {
	Registry *Registry
	Label    string
	Value    string
}

// WriteTextMerged renders several registries as one Prometheus exposition:
// series sharing a metric name are folded into a single family (one HELP
// and TYPE line), each view's series distinguished by its extra label. The
// first view to register a name fixes the family's help and kind; a view
// whose kind disagrees is skipped for that family rather than corrupting
// the exposition.
func WriteTextMerged(w io.Writer, views ...View) error {
	type part struct {
		extra    string
		children []*child
	}
	merged := make(map[string]*family)
	parts := make(map[string][]part)
	var order []string
	for _, v := range views {
		if v.Registry == nil {
			continue
		}
		extra := ""
		if v.Label != "" {
			ls := renderLabels(v.Label, v.Value) // {k="v"}
			extra = ls[1 : len(ls)-1]
		}
		for _, f := range v.Registry.snapshotFamilies() {
			m, ok := merged[f.name]
			if !ok {
				merged[f.name] = f
				order = append(order, f.name)
				m = f
			} else if m.kind != f.kind {
				continue
			}
			parts[f.name] = append(parts[f.name], part{extra: extra, children: f.children})
		}
	}
	sort.Strings(order)

	var b strings.Builder
	for _, name := range order {
		f := merged[name]
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, strings.ReplaceAll(f.help, "\n", " "))
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
		for _, p := range parts[name] {
			writeChildren(&b, f, p.children, p.extra)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Sample is one flattened series value from a Snapshot.
type Sample struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// Snapshot flattens every series (histograms as cumulative _bucket plus
// _sum/_count) into name-sorted samples. Used for BENCH_eval.json embeds
// and determinism tests.
func (r *Registry) Snapshot() []Sample {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()

	var out []Sample
	for _, f := range fams {
		for _, ch := range f.children {
			switch f.kind {
			case kindCounter:
				out = append(out, Sample{f.name + ch.labels, float64(ch.c.Value())})
			case kindGauge:
				out = append(out, Sample{f.name + ch.labels, float64(ch.g.Value())})
			case kindHistogram:
				h := ch.h
				cum := int64(0)
				for i, bound := range h.bounds {
					cum += h.counts[i].Load()
					out = append(out, Sample{
						fmt.Sprintf("%s_bucket{le=%q}", f.name, formatFloat(bound)), float64(cum)})
				}
				cum += h.counts[len(h.bounds)].Load()
				out = append(out, Sample{f.name + `_bucket{le="+Inf"}`, float64(cum)})
				out = append(out, Sample{f.name + "_sum", h.Sum()})
				out = append(out, Sample{f.name + "_count", float64(h.Count())})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// SnapshotMap returns Snapshot as a name -> value map.
func (r *Registry) SnapshotMap() map[string]float64 {
	samples := r.Snapshot()
	if samples == nil {
		return nil
	}
	out := make(map[string]float64, len(samples))
	for _, s := range samples {
		out[s.Name] = s.Value
	}
	return out
}
