package bitvec

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSetGetClear(t *testing.T) {
	v := New(130) // spans three words
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		if v.Get(i) {
			t.Errorf("bit %d set in fresh vector", i)
		}
		v.Set(i)
		if !v.Get(i) {
			t.Errorf("bit %d not set after Set", i)
		}
		v.Clear(i)
		if v.Get(i) {
			t.Errorf("bit %d still set after Clear", i)
		}
	}
}

func TestSetTo(t *testing.T) {
	v := New(8)
	v.SetTo(3, true)
	if !v.Get(3) {
		t.Error("SetTo(true) did not set")
	}
	v.SetTo(3, false)
	if v.Get(3) {
		t.Error("SetTo(false) did not clear")
	}
}

func TestFlip(t *testing.T) {
	v := New(70)
	v.Flip(69)
	if !v.Get(69) {
		t.Error("Flip did not set")
	}
	v.Flip(69)
	if v.Get(69) {
		t.Error("Flip did not clear")
	}
}

func TestOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on out-of-range Set")
		}
	}()
	New(4).Set(4)
}

func TestNegativeLengthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on negative length")
		}
	}()
	New(-1)
}

func TestFromBools(t *testing.T) {
	v := FromBools([]bool{true, false, true, true})
	if v.String() != "1011" {
		t.Errorf("FromBools = %q, want 1011", v.String())
	}
	if v.PopCount() != 3 {
		t.Errorf("PopCount = %d, want 3", v.PopCount())
	}
}

func TestHammingDistance(t *testing.T) {
	// Example from the paper: G1={0,0,0,0,1}, G2={0,0,0,1,1} differ by one.
	g1, err := Parse("00001")
	if err != nil {
		t.Fatal(err)
	}
	g2, err := Parse("00011")
	if err != nil {
		t.Fatal(err)
	}
	if d := g1.HammingDistance(g2); d != 1 {
		t.Errorf("distance = %d, want 1", d)
	}
	if d := g1.HammingDistance(g1); d != 0 {
		t.Errorf("self distance = %d, want 0", d)
	}
}

func TestHammingDistanceAtMost(t *testing.T) {
	a := New(200)
	b := New(200)
	for i := 0; i < 10; i++ {
		a.Set(i * 20)
	}
	if d, ok := a.HammingDistanceAtMost(b, 10); !ok || d != 10 {
		t.Errorf("AtMost(10) = (%d, %v), want (10, true)", d, ok)
	}
	if _, ok := a.HammingDistanceAtMost(b, 9); ok {
		t.Error("AtMost(9) should report false")
	}
	if d, ok := a.HammingDistanceAtMost(a, 0); !ok || d != 0 {
		t.Errorf("self AtMost(0) = (%d, %v), want (0, true)", d, ok)
	}
}

func TestDiff(t *testing.T) {
	a, _ := Parse("10110")
	b, _ := Parse("00111")
	got := a.Diff(b)
	want := []int{0, 4}
	if len(got) != len(want) {
		t.Fatalf("Diff = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Diff = %v, want %v", got, want)
		}
	}
	if d := a.Diff(a); len(d) != 0 {
		t.Errorf("self Diff = %v, want empty", d)
	}
}

func TestBitwiseOps(t *testing.T) {
	a, _ := Parse("1100")
	b, _ := Parse("1010")
	or := a.Clone()
	or.Or(b)
	if or.String() != "1110" {
		t.Errorf("Or = %q, want 1110", or.String())
	}
	and := a.Clone()
	and.And(b)
	if and.String() != "1000" {
		t.Errorf("And = %q, want 1000", and.String())
	}
	xor := a.Clone()
	xor.Xor(b)
	if xor.String() != "0110" {
		t.Errorf("Xor = %q, want 0110", xor.String())
	}
}

func TestOnes(t *testing.T) {
	v := New(100)
	v.Set(0)
	v.Set(64)
	v.Set(99)
	got := v.Ones()
	want := []int{0, 64, 99}
	if len(got) != 3 || got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
		t.Errorf("Ones = %v, want %v", got, want)
	}
}

func TestCloneIndependence(t *testing.T) {
	a := New(10)
	a.Set(5)
	b := a.Clone()
	b.Set(6)
	if a.Get(6) {
		t.Error("mutation of clone leaked into original")
	}
	if !b.Get(5) {
		t.Error("clone lost original bits")
	}
}

func TestCopyFrom(t *testing.T) {
	a := New(10)
	a.Set(1)
	b := New(10)
	b.CopyFrom(a)
	if !b.Get(1) {
		t.Error("CopyFrom did not copy bits")
	}
	a.Set(2)
	if b.Get(2) {
		t.Error("CopyFrom did not deep copy")
	}
}

func TestEqualAndKey(t *testing.T) {
	a := New(70)
	b := New(70)
	a.Set(69)
	if a.Equal(b) {
		t.Error("different vectors compare equal")
	}
	if a.Key() == b.Key() {
		t.Error("different vectors share a key")
	}
	b.Set(69)
	if !a.Equal(b) {
		t.Error("equal vectors compare unequal")
	}
	if a.Key() != b.Key() {
		t.Error("equal vectors have different keys")
	}
	c := New(71) // same words, different length
	c.Set(69)
	if a.Key() == c.Key() {
		t.Error("vectors of different lengths share a key")
	}
	if a.Equal(c) {
		t.Error("vectors of different lengths compare equal")
	}
}

func TestReset(t *testing.T) {
	v := New(70)
	v.Set(3)
	v.Set(68)
	v.Reset()
	if v.PopCount() != 0 {
		t.Errorf("PopCount after Reset = %d, want 0", v.PopCount())
	}
	if v.Len() != 70 {
		t.Errorf("Len after Reset = %d, want 70", v.Len())
	}
}

func TestStringParseRoundTrip(t *testing.T) {
	for _, s := range []string{"", "1", "0", "10101", "0000000000000000000000000000000000000000000000000000000000000000111"} {
		v, err := Parse(s)
		if err != nil {
			t.Fatalf("Parse(%q): %v", s, err)
		}
		if v.String() != s {
			t.Errorf("round trip of %q gave %q", s, v.String())
		}
	}
	if _, err := Parse("01x"); err == nil {
		t.Error("Parse should reject invalid characters")
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{0, 1, 63, 64, 65, 127, 300} {
		v := New(n)
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 1 {
				v.Set(i)
			}
		}
		data, err := v.MarshalBinary()
		if err != nil {
			t.Fatalf("marshal n=%d: %v", n, err)
		}
		var u Vec
		if err := u.UnmarshalBinary(data); err != nil {
			t.Fatalf("unmarshal n=%d: %v", n, err)
		}
		if !v.Equal(&u) {
			t.Errorf("round trip lost bits at n=%d", n)
		}
	}
}

func TestUnmarshalErrors(t *testing.T) {
	var v Vec
	if err := v.UnmarshalBinary([]byte{1, 2}); err == nil {
		t.Error("truncated header should error")
	}
	if err := v.UnmarshalBinary([]byte{70, 0, 0, 0, 1, 2}); err == nil {
		t.Error("bad payload length should error")
	}
}

func TestLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on length mismatch")
		}
	}()
	New(3).HammingDistance(New(4))
}

// Property: Hamming distance is a metric (symmetry + triangle inequality) and
// equals PopCount of the XOR.
func TestHammingDistanceProperties(t *testing.T) {
	f := func(aBits, bBits, cBits [9]bool) bool {
		a := FromBools(aBits[:])
		b := FromBools(bBits[:])
		c := FromBools(cBits[:])
		dab := a.HammingDistance(b)
		if dab != b.HammingDistance(a) {
			return false
		}
		x := a.Clone()
		x.Xor(b)
		if dab != x.PopCount() {
			return false
		}
		return dab <= a.HammingDistance(c)+c.HammingDistance(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Diff length equals Hamming distance, and flipping the listed
// bits transforms one vector into the other.
func TestDiffProperty(t *testing.T) {
	f := func(aBits, bBits [12]bool) bool {
		a := FromBools(aBits[:])
		b := FromBools(bBits[:])
		d := a.Diff(b)
		if len(d) != a.HammingDistance(b) {
			return false
		}
		c := a.Clone()
		for _, i := range d {
			c.Flip(i)
		}
		return c.Equal(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: marshal/unmarshal round trip preserves equality and key.
func TestMarshalProperty(t *testing.T) {
	f := func(bs []bool) bool {
		v := FromBools(bs)
		data, err := v.MarshalBinary()
		if err != nil {
			return false
		}
		var u Vec
		if err := u.UnmarshalBinary(data); err != nil {
			return false
		}
		return v.Equal(&u) && v.Key() == u.Key()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkHammingDistance128(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	x := New(128)
	y := New(128)
	for i := 0; i < 128; i++ {
		if rng.Intn(2) == 1 {
			x.Set(i)
		}
		if rng.Intn(2) == 1 {
			y.Set(i)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.HammingDistance(y)
	}
}

func BenchmarkKey128(b *testing.B) {
	x := New(128)
	x.Set(3)
	x.Set(77)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = x.Key()
	}
}

func TestWordsAndAppendWords(t *testing.T) {
	v := New(130) // three words
	v.Set(0)
	v.Set(64)
	v.Set(129)
	if v.NumWords() != 3 {
		t.Fatalf("NumWords = %d, want 3", v.NumWords())
	}
	w := v.Words()
	if len(w) != 3 || w[0] != 1 || w[1] != 1 || w[2] != 2 {
		t.Errorf("Words = %x", w)
	}
	dst := []uint64{7}
	out := v.AppendWords(dst)
	if len(out) != 4 || out[0] != 7 || out[1] != 1 || out[2] != 1 || out[3] != 2 {
		t.Errorf("AppendWords = %x", out)
	}
	// AppendWords must be the caller's memory: mutating it must not touch v.
	out[1] = 0xFF
	if !v.Get(0) || v.Words()[0] != 1 {
		t.Error("AppendWords aliased the vector's storage")
	}
}

func TestAppendKeyMatchesKey(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{0, 1, 63, 64, 65, 128, 200} {
		v := New(n)
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 1 {
				v.Set(i)
			}
		}
		if got := string(v.AppendKey(nil)); got != v.Key() {
			t.Errorf("n=%d: AppendKey diverges from Key", n)
		}
		// Appending onto existing bytes preserves the prefix.
		withPrefix := v.AppendKey([]byte("p:"))
		if string(withPrefix[:2]) != "p:" || string(withPrefix[2:]) != v.Key() {
			t.Errorf("n=%d: AppendKey with prefix broken", n)
		}
	}
}

func TestAppendKeyMapLookupAllocFree(t *testing.T) {
	v := New(128)
	v.Set(5)
	v.Set(100)
	m := map[string]int{v.Key(): 42}
	scratch := make([]byte, 0, 64)
	allocs := testing.AllocsPerRun(100, func() {
		scratch = v.AppendKey(scratch[:0])
		if m[string(scratch)] != 42 {
			t.Fatal("lookup failed")
		}
	})
	if allocs != 0 {
		t.Errorf("keyed map lookup allocates %.1f objects per run, want 0", allocs)
	}
}
