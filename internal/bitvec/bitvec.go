// Package bitvec implements the packed bit vectors DICE uses to represent
// sensor state sets. A state set has one bit per binary sensor and three
// bits per numeric sensor; the correlation check compares the live state set
// against every known group by Hamming distance, so distance computation is
// the hot operation and is implemented word-at-a-time with popcount.
package bitvec

import (
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// Vec is a fixed-length bit vector. The zero value is an empty vector of
// length 0; use New to create one of a given length.
type Vec struct {
	n     int
	words []uint64
}

// New returns a zeroed vector of n bits. It panics if n is negative.
func New(n int) *Vec {
	if n < 0 {
		panic(fmt.Sprintf("bitvec: negative length %d", n))
	}
	return &Vec{n: n, words: make([]uint64, (n+wordBits-1)/wordBits)}
}

// FromBools returns a vector whose bit i is set iff bs[i] is true.
func FromBools(bs []bool) *Vec {
	v := New(len(bs))
	for i, b := range bs {
		if b {
			v.Set(i)
		}
	}
	return v
}

// Len returns the number of bits in the vector.
func (v *Vec) Len() int { return v.n }

// Set sets bit i to 1. It panics if i is out of range.
func (v *Vec) Set(i int) {
	v.check(i)
	v.words[i/wordBits] |= 1 << (uint(i) % wordBits)
}

// Clear sets bit i to 0. It panics if i is out of range.
func (v *Vec) Clear(i int) {
	v.check(i)
	v.words[i/wordBits] &^= 1 << (uint(i) % wordBits)
}

// SetTo sets bit i to the given value.
func (v *Vec) SetTo(i int, b bool) {
	if b {
		v.Set(i)
	} else {
		v.Clear(i)
	}
}

// Get reports whether bit i is set. It panics if i is out of range.
func (v *Vec) Get(i int) bool {
	v.check(i)
	return v.words[i/wordBits]&(1<<(uint(i)%wordBits)) != 0
}

// Flip toggles bit i.
func (v *Vec) Flip(i int) {
	v.check(i)
	v.words[i/wordBits] ^= 1 << (uint(i) % wordBits)
}

func (v *Vec) check(i int) {
	if i < 0 || i >= v.n {
		panic(fmt.Sprintf("bitvec: index %d out of range [0, %d)", i, v.n))
	}
}

// Reset zeroes every bit, keeping the length.
func (v *Vec) Reset() {
	for i := range v.words {
		v.words[i] = 0
	}
}

// Clone returns a deep copy of v.
func (v *Vec) Clone() *Vec {
	c := &Vec{n: v.n, words: make([]uint64, len(v.words))}
	copy(c.words, v.words)
	return c
}

// CopyFrom overwrites v with the contents of o. It panics if the lengths
// differ.
func (v *Vec) CopyFrom(o *Vec) {
	v.mustMatch(o)
	copy(v.words, o.words)
}

// Equal reports whether v and o have identical length and bits.
func (v *Vec) Equal(o *Vec) bool {
	if v.n != o.n {
		return false
	}
	for i, w := range v.words {
		if w != o.words[i] {
			return false
		}
	}
	return true
}

// NumWords returns the number of 64-bit words backing the vector.
func (v *Vec) NumWords() int { return len(v.words) }

// Words returns the vector's backing words, bit 0 in the lowest bit of
// word 0. The caller must not mutate the returned slice; it aliases the
// vector's storage. The correlation-scan index reads group words through
// this to compare word-at-a-time without per-group pointer chasing.
func (v *Vec) Words() []uint64 { return v.words }

// AppendWords appends the vector's words to dst and returns the extended
// slice. Unlike Words, the result is the caller's memory.
func (v *Vec) AppendWords(dst []uint64) []uint64 {
	return append(dst, v.words...)
}

// PopCount returns the number of set bits.
func (v *Vec) PopCount() int {
	c := 0
	for _, w := range v.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// HammingDistance returns the number of differing bits between v and o.
// It panics if the lengths differ. This is the correlation-check distance
// from Figure 3.5 of the paper.
func (v *Vec) HammingDistance(o *Vec) int {
	v.mustMatch(o)
	d := 0
	for i, w := range v.words {
		d += bits.OnesCount64(w ^ o.words[i])
	}
	return d
}

// HammingDistanceAtMost returns (distance, true) when the Hamming distance
// between v and o is <= limit, and (_, false) as soon as the running count
// exceeds the limit. It lets the correlation check bail out early when
// scanning many groups.
func (v *Vec) HammingDistanceAtMost(o *Vec, limit int) (int, bool) {
	v.mustMatch(o)
	d := 0
	for i, w := range v.words {
		d += bits.OnesCount64(w ^ o.words[i])
		if d > limit {
			return d, false
		}
	}
	return d, true
}

// Diff returns the indices of bits where v and o differ, in ascending order.
// The identification step walks these to map differing bits back to probable
// faulty sensors (Figure 3.7).
func (v *Vec) Diff(o *Vec) []int {
	v.mustMatch(o)
	var idx []int
	for i, w := range v.words {
		x := w ^ o.words[i]
		for x != 0 {
			b := bits.TrailingZeros64(x)
			idx = append(idx, i*wordBits+b)
			x &= x - 1
		}
	}
	return idx
}

// Or sets v to v | o in place. It panics if the lengths differ.
func (v *Vec) Or(o *Vec) {
	v.mustMatch(o)
	for i := range v.words {
		v.words[i] |= o.words[i]
	}
}

// And sets v to v & o in place. It panics if the lengths differ.
func (v *Vec) And(o *Vec) {
	v.mustMatch(o)
	for i := range v.words {
		v.words[i] &= o.words[i]
	}
}

// Xor sets v to v ^ o in place. It panics if the lengths differ.
func (v *Vec) Xor(o *Vec) {
	v.mustMatch(o)
	for i := range v.words {
		v.words[i] ^= o.words[i]
	}
}

// Ones returns the indices of all set bits in ascending order.
func (v *Vec) Ones() []int {
	var idx []int
	for i, w := range v.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			idx = append(idx, i*wordBits+b)
			w &= w - 1
		}
	}
	return idx
}

// Key returns a string usable as a map key identifying the exact bit
// pattern. Two vectors have equal keys iff Equal reports true.
func (v *Vec) Key() string {
	return string(v.AppendKey(nil))
}

// AppendKey appends the bytes of Key to dst and returns the extended slice.
// Looking a vector up with m[string(v.AppendKey(scratch[:0]))] lets the
// compiler elide the string allocation, which keeps the exact-match path of
// the correlation scan allocation-free.
func (v *Vec) AppendKey(dst []byte) []byte {
	// Length disambiguates vectors whose trailing words are identical.
	dst = append(dst, byte(v.n), byte(v.n>>8), byte(v.n>>16), byte(v.n>>24))
	for _, w := range v.words {
		for s := 0; s < wordBits; s += 8 {
			dst = append(dst, byte(w>>uint(s)))
		}
	}
	return dst
}

// String renders the vector as a bit string, bit 0 first, e.g. "10110".
func (v *Vec) String() string {
	var sb strings.Builder
	sb.Grow(v.n)
	for i := 0; i < v.n; i++ {
		if v.Get(i) {
			sb.WriteByte('1')
		} else {
			sb.WriteByte('0')
		}
	}
	return sb.String()
}

// Parse builds a vector from a bit string produced by String. It returns an
// error on any character other than '0' or '1'.
func Parse(s string) (*Vec, error) {
	v := New(len(s))
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '1':
			v.Set(i)
		case '0':
		default:
			return nil, fmt.Errorf("bitvec: invalid character %q at position %d", s[i], i)
		}
	}
	return v, nil
}

// MarshalBinary encodes the vector for persistence.
func (v *Vec) MarshalBinary() ([]byte, error) {
	buf := make([]byte, 4+len(v.words)*8)
	buf[0] = byte(v.n)
	buf[1] = byte(v.n >> 8)
	buf[2] = byte(v.n >> 16)
	buf[3] = byte(v.n >> 24)
	for i, w := range v.words {
		for s := 0; s < 8; s++ {
			buf[4+i*8+s] = byte(w >> uint(8*s))
		}
	}
	return buf, nil
}

// UnmarshalBinary decodes a vector produced by MarshalBinary.
func (v *Vec) UnmarshalBinary(data []byte) error {
	if len(data) < 4 {
		return fmt.Errorf("bitvec: truncated header (%d bytes)", len(data))
	}
	n := int(data[0]) | int(data[1])<<8 | int(data[2])<<16 | int(data[3])<<24
	nw := (n + wordBits - 1) / wordBits
	if len(data) != 4+nw*8 {
		return fmt.Errorf("bitvec: length %d wants %d payload bytes, have %d", n, nw*8, len(data)-4)
	}
	words := make([]uint64, nw)
	for i := range words {
		var w uint64
		for s := 0; s < 8; s++ {
			w |= uint64(data[4+i*8+s]) << uint(8*s)
		}
		words[i] = w
	}
	v.n = n
	v.words = words
	return nil
}

func (v *Vec) mustMatch(o *Vec) {
	if v.n != o.n {
		panic(fmt.Sprintf("bitvec: length mismatch %d != %d", v.n, o.n))
	}
}
