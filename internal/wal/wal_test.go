package wal

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/device"
	"repro/internal/event"
	"repro/internal/telemetry"
)

func testRecord(i int) Record {
	if i%10 == 9 {
		return AdvanceRecord(time.Duration(i) * time.Second)
	}
	return IngestRecord(event.Event{
		At:     time.Duration(i) * time.Second,
		Device: device.ID(i % 7),
		Value:  float64(i) / 3,
	})
}

func appendN(t *testing.T, l *Log, from, n int) {
	t.Helper()
	var buf []byte
	for i := from; i < from+n; i++ {
		buf = testRecord(i).AppendTo(buf[:0])
		seq, err := l.Append(buf)
		if err != nil {
			t.Fatal(err)
		}
		if want := uint64(i + 1); seq != want {
			t.Fatalf("record %d got seq %d, want %d", i, seq, want)
		}
	}
}

func replayAll(t *testing.T, l *Log, after uint64) []Record {
	t.Helper()
	var out []Record
	err := l.Replay(after, func(seq uint64, payload []byte) error {
		r, err := DecodeRecord(payload)
		if err != nil {
			return err
		}
		if want := after + uint64(len(out)) + 1; seq != want {
			return fmt.Errorf("seq %d, want %d", seq, want)
		}
		out = append(out, r)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestWALRoundTrip: append, close, reopen, replay — every record survives
// byte-exactly, and sequence numbers continue across the reopen.
func TestWALRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	const n = 100
	appendN(t, l, 0, n)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(dir, Options{Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got := l2.LastSeq(); got != n {
		t.Fatalf("reopened LastSeq = %d, want %d", got, n)
	}
	recs := replayAll(t, l2, 0)
	if len(recs) != n {
		t.Fatalf("replayed %d records, want %d", len(recs), n)
	}
	for i, r := range recs {
		if r != testRecord(i) {
			t.Fatalf("record %d = %+v, want %+v", i, r, testRecord(i))
		}
	}
	// Appends continue the chain.
	appendN(t, l2, n, 5)
	if got := l2.LastSeq(); got != n+5 {
		t.Fatalf("LastSeq after reopen-append = %d, want %d", got, n+5)
	}
	// Replay-after skips the prefix.
	tail := replayAll(t, l2, n)
	if len(tail) != 5 || tail[0] != testRecord(n) {
		t.Fatalf("Replay(after=%d) returned %d records starting %+v", n, len(tail), tail[0])
	}
}

// TestWALTornTailAnyByte is the torn-write property: for every possible
// truncation point of the final segment, Open must repair the file to the
// longest valid prefix, replay exactly the records whose frames are fully
// on disk, and accept new appends that continue the chain.
func TestWALTornTailAnyByte(t *testing.T) {
	master := t.TempDir()
	l, err := Open(master, Options{Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	const n = 20
	appendN(t, l, 0, n)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := filepath.Glob(filepath.Join(master, "*.wal"))
	if err != nil || len(segs) != 1 {
		t.Fatalf("want 1 segment, got %v (%v)", segs, err)
	}
	data, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	frame := frameHeader + recordSize
	if want := segHeaderSize + n*frame; len(data) != want {
		t.Fatalf("segment is %d bytes, want %d", len(data), want)
	}

	for cut := segHeaderSize; cut <= len(data); cut++ {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, filepath.Base(segs[0])), data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		lt, err := Open(dir, Options{Sync: SyncNever})
		if err != nil {
			t.Fatalf("cut %d: open: %v", cut, err)
		}
		complete := (cut - segHeaderSize) / frame
		if got := lt.LastSeq(); got != uint64(complete) {
			t.Fatalf("cut %d: LastSeq = %d, want %d", cut, got, complete)
		}
		recs := replayAll(t, lt, 0)
		if len(recs) != complete {
			t.Fatalf("cut %d: replayed %d records, want %d", cut, len(recs), complete)
		}
		// The repaired log must accept a continuation append.
		var buf []byte
		buf = testRecord(complete).AppendTo(buf)
		seq, err := lt.Append(buf)
		if err != nil {
			t.Fatalf("cut %d: append after repair: %v", cut, err)
		}
		if seq != uint64(complete)+1 {
			t.Fatalf("cut %d: continuation seq = %d, want %d", cut, seq, complete+1)
		}
		if got := replayAll(t, lt, 0); len(got) != complete+1 {
			t.Fatalf("cut %d: post-repair replay %d records, want %d", cut, len(got), complete+1)
		}
		lt.Close()
	}
}

// TestWALBitFlip: a corrupted byte mid-log fails the CRC and ends replay
// at the last good record, without an error.
func TestWALBitFlip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 0, 10)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "*.wal"))
	data, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	// Flip one payload byte of record 5 (0-indexed).
	frame := frameHeader + recordSize
	off := segHeaderSize + 5*frame + frameHeader + 3
	data[off] ^= 0xFF
	if err := os.WriteFile(segs[0], data, 0o644); err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	l2, err := Open(dir, Options{Sync: SyncNever, Telemetry: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got := l2.LastSeq(); got != 5 {
		t.Fatalf("LastSeq after bit flip = %d, want 5", got)
	}
	if recs := replayAll(t, l2, 0); len(recs) != 5 {
		t.Fatalf("replayed %d records, want 5", len(recs))
	}
	if got := reg.SnapshotMap()[metricCorrupt]; got == 0 {
		t.Error("corrupt-record counter never moved")
	}
}

// TestWALRotationAndTruncate: small segments force rotation; truncating
// through a checkpointed seq deletes only fully covered sealed segments.
func TestWALRotationAndTruncate(t *testing.T) {
	dir := t.TempDir()
	reg := telemetry.NewRegistry()
	l, err := Open(dir, Options{Sync: SyncNever, SegmentSize: 200, Telemetry: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	const n = 50
	appendN(t, l, 0, n)
	if l.Segments() < 3 {
		t.Fatalf("only %d segments at 200-byte rotation; rotation broken", l.Segments())
	}
	before := l.Segments()
	// Truncate through seq 1: nothing coverable (first segment holds later
	// records too, or is active).
	if err := l.TruncateThrough(1); err != nil {
		t.Fatal(err)
	}
	// Truncate through half the log.
	if err := l.TruncateThrough(n / 2); err != nil {
		t.Fatal(err)
	}
	if l.Segments() >= before {
		t.Fatalf("truncation deleted nothing: %d -> %d segments", before, l.Segments())
	}
	// The tail must still replay: every record after n/2 is intact.
	recs := replayAll(t, l, n/2)
	if len(recs) == 0 {
		t.Fatal("no records after truncation point")
	}
	// And the surviving chain still covers everything the first surviving
	// segment holds.
	var total int
	l.Replay(0, func(uint64, []byte) error { total++; return nil }) //nolint:errcheck
	if total < len(recs) {
		t.Fatalf("full replay saw %d records, tail replay %d", total, len(recs))
	}
	if got := reg.SnapshotMap()[metricTruncated]; got == 0 {
		t.Error("truncated-segments counter never moved")
	}
	// Appends still work after truncation.
	appendN(t, l, n, 3)
}

// TestWALReplayIdempotentAtAnyCut: replaying from any sequence point s
// yields exactly records s+1..n — the dedup contract checkpoints rely on.
// Replaying twice from the same point yields the same records (the log is
// read-only under replay).
func TestWALReplayIdempotentAtAnyCut(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Sync: SyncNever, SegmentSize: 300})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	const n = 60
	appendN(t, l, 0, n)
	for s := 0; s <= n; s++ {
		one := replayAll(t, l, uint64(s))
		two := replayAll(t, l, uint64(s))
		if len(one) != n-s || len(two) != n-s {
			t.Fatalf("after=%d: replayed %d then %d records, want %d", s, len(one), len(two), n-s)
		}
		for i := range one {
			if one[i] != two[i] || one[i] != testRecord(s+i) {
				t.Fatalf("after=%d: record %d diverged: %+v vs %+v", s, i, one[i], two[i])
			}
		}
	}
}

// TestWALSyncPolicies: parse and behavior smoke — always syncs per append,
// batch every N, never only on demand.
func TestWALSyncPolicies(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want SyncPolicy
		ok   bool
	}{
		{"always", SyncAlways, true},
		{"batch", SyncBatch, true},
		{"never", SyncNever, true},
		{"NONE", SyncNever, true},
		{"", SyncBatch, true},
		{"sometimes", SyncBatch, false},
	} {
		got, err := ParseSyncPolicy(tc.in)
		if (err == nil) != tc.ok || got != tc.want {
			t.Errorf("ParseSyncPolicy(%q) = %v, %v; want %v, ok=%v", tc.in, got, err, tc.want, tc.ok)
		}
	}

	for _, pol := range []SyncPolicy{SyncAlways, SyncBatch, SyncNever} {
		dir := t.TempDir()
		reg := telemetry.NewRegistry()
		l, err := Open(dir, Options{Sync: pol, BatchEvery: 4, Telemetry: reg})
		if err != nil {
			t.Fatal(err)
		}
		appendN(t, l, 0, 10)
		syncs := reg.SnapshotMap()[metricSyncs]
		switch pol {
		case SyncAlways:
			if syncs != 10 {
				t.Errorf("%v: %g syncs after 10 appends, want 10", pol, syncs)
			}
		case SyncBatch:
			if syncs != 2 {
				t.Errorf("%v: %g syncs after 10 appends at batch 4, want 2", pol, syncs)
			}
		case SyncNever:
			if syncs != 0 {
				t.Errorf("%v: %g syncs under SyncNever, want 0", pol, syncs)
			}
		}
		if err := l.Sync(); err != nil {
			t.Fatal(err)
		}
		l.Close()
	}
}

// TestWALRejectsForeignHeader: a segment with the wrong magic refuses to
// open rather than silently replaying garbage.
func TestWALRejectsForeignHeader(t *testing.T) {
	dir := t.TempDir()
	bad := make([]byte, segHeaderSize)
	copy(bad, "NOTAWAL!")
	binary.LittleEndian.PutUint64(bad[8:], 1)
	if err := os.WriteFile(filepath.Join(dir, fmt.Sprintf("%016x.wal", 1)), bad, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("foreign segment header accepted")
	}
}

// TestDeadLetter: entries land as JSON lines; nil sinks discard.
func TestDeadLetter(t *testing.T) {
	var nilDL *DeadLetter
	if err := nilDL.Record(DeadLetterEntry{Panic: "x"}); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "dead.jsonl")
	dl := OpenDeadLetter(path)
	rec := IngestRecord(event.Event{At: time.Minute, Device: 3, Value: 1})
	if err := dl.Record(Entry("casa", 7, rec, "boom", []byte("stack"), true)); err != nil {
		t.Fatal(err)
	}
	if err := dl.Record(Entry("casa", 8, AdvanceRecord(time.Hour), "bang", nil, false)); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := 0
	for _, b := range data {
		if b == '\n' {
			lines++
		}
	}
	if lines != 2 {
		t.Fatalf("dead-letter file has %d lines, want 2:\n%s", lines, data)
	}
}

// TestWALAppendBatch: a batched append must be byte-identical on disk to
// the same records appended one by one — replay, sequence numbers, and
// rotation behave the same — while issuing one sync per batch under
// SyncAlways.
func TestWALAppendBatch(t *testing.T) {
	dirOne := t.TempDir()
	dirBatch := t.TempDir()
	one, err := Open(dirOne, Options{Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	batch, err := Open(dirBatch, Options{Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	const n = 200
	appendN(t, one, 0, n)
	var payloads [][]byte
	var backing []byte
	for start := 0; start < n; start += 16 {
		endAt := start + 16
		if endAt > n {
			endAt = n
		}
		payloads = payloads[:0]
		backing = backing[:0]
		for i := start; i < endAt; i++ {
			off := len(backing)
			backing = testRecord(i).AppendTo(backing)
			payloads = append(payloads, backing[off:])
		}
		seq, err := batch.AppendBatch(payloads)
		if err != nil {
			t.Fatal(err)
		}
		if want := uint64(endAt); seq != want {
			t.Fatalf("batch through %d got seq %d, want %d", endAt, seq, want)
		}
	}
	if err := one.Close(); err != nil {
		t.Fatal(err)
	}
	if err := batch.Close(); err != nil {
		t.Fatal(err)
	}
	a, err := os.ReadFile(filepath.Join(dirOne, fmt.Sprintf("%016x.wal", 1)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(filepath.Join(dirBatch, fmt.Sprintf("%016x.wal", 1)))
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatalf("batched segment differs from record-at-a-time segment (%d vs %d bytes)", len(a), len(b))
	}

	reopened, err := Open(dirBatch, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	recs := replayAll(t, reopened, 0)
	if len(recs) != n {
		t.Fatalf("replayed %d records, want %d", len(recs), n)
	}
	for i, r := range recs {
		if r != testRecord(i) {
			t.Fatalf("record %d = %+v, want %+v", i, r, testRecord(i))
		}
	}
}

// TestWALAppendBatchSyncOnce: under SyncAlways a batch costs one fsync, not
// one per record; an empty batch costs nothing and does not move the seq.
func TestWALAppendBatchSyncOnce(t *testing.T) {
	reg := telemetry.NewRegistry()
	l, err := Open(t.TempDir(), Options{Sync: SyncAlways, Telemetry: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if seq, err := l.AppendBatch(nil); err != nil || seq != 0 {
		t.Fatalf("empty batch: seq=%d err=%v", seq, err)
	}
	var payloads [][]byte
	var backing []byte
	for i := 0; i < 32; i++ {
		off := len(backing)
		backing = testRecord(i).AppendTo(backing)
		payloads = append(payloads, backing[off:])
	}
	if _, err := l.AppendBatch(payloads); err != nil {
		t.Fatal(err)
	}
	syncs := reg.Counter(metricSyncs, "").Value()
	if syncs != 1 {
		t.Fatalf("32-record batch issued %d syncs, want 1", syncs)
	}
	if got := reg.Counter(metricAppends, "").Value(); got != 32 {
		t.Fatalf("appends counter = %d, want 32", got)
	}
}

// TestWALAppendBatchRotates: a batch that pushes the segment past
// SegmentSize still rotates, keeping replay chains intact across files.
func TestWALAppendBatchRotates(t *testing.T) {
	l, err := Open(t.TempDir(), Options{Sync: SyncNever, SegmentSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	var payloads [][]byte
	var backing []byte
	for i := 0; i < 64; i++ {
		off := len(backing)
		backing = testRecord(i).AppendTo(backing)
		payloads = append(payloads, backing[off:])
	}
	if _, err := l.AppendBatch(payloads); err != nil {
		t.Fatal(err)
	}
	if _, err := l.AppendBatch(payloads[:1]); err != nil {
		t.Fatal(err)
	}
	if got := l.Segments(); got < 2 {
		t.Fatalf("segments = %d, want rotation after oversized batch", got)
	}
	recs := replayAll(t, l, 0)
	if len(recs) != 65 {
		t.Fatalf("replayed %d records, want 65", len(recs))
	}
}

// TestWALTornTailMidBatch is the torn-write property for AppendBatch: a
// crash can land at any byte inside the one vectored write a batch issues.
// For every truncation point across the batch region, Open must repair the
// segment to the longest valid frame prefix — the records of the batch
// whose frames are fully on disk — replay exactly that prefix, and accept
// continuation appends.
func TestWALTornTailMidBatch(t *testing.T) {
	master := t.TempDir()
	l, err := Open(master, Options{Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	const pre = 5   // records appended one at a time before the batch
	const batch = 8 // records in the single AppendBatch write
	appendN(t, l, 0, pre)
	var payloads [][]byte
	var backing []byte
	for i := pre; i < pre+batch; i++ {
		off := len(backing)
		backing = testRecord(i).AppendTo(backing)
		payloads = append(payloads, backing[off:])
	}
	seq, err := l.AppendBatch(payloads)
	if err != nil {
		t.Fatal(err)
	}
	if want := uint64(pre + batch); seq != want {
		t.Fatalf("batch seq = %d, want %d", seq, want)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := filepath.Glob(filepath.Join(master, "*.wal"))
	if err != nil || len(segs) != 1 {
		t.Fatalf("want 1 segment, got %v (%v)", segs, err)
	}
	data, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	frame := frameHeader + recordSize
	if want := segHeaderSize + (pre+batch)*frame; len(data) != want {
		t.Fatalf("segment is %d bytes, want %d", len(data), want)
	}

	// Cut everywhere from "batch entirely lost" to "last batch frame torn
	// one byte short": the survivors must always be a clean record prefix.
	batchStart := segHeaderSize + pre*frame
	for cut := batchStart; cut < len(data); cut++ {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, filepath.Base(segs[0])), data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		lt, err := Open(dir, Options{Sync: SyncNever})
		if err != nil {
			t.Fatalf("cut %d: open: %v", cut, err)
		}
		complete := (cut - segHeaderSize) / frame
		if got := lt.LastSeq(); got != uint64(complete) {
			t.Fatalf("cut %d: LastSeq = %d, want %d", cut, got, complete)
		}
		recs := replayAll(t, lt, 0)
		if len(recs) != complete {
			t.Fatalf("cut %d: replayed %d records, want %d", cut, len(recs), complete)
		}
		for i, r := range recs {
			if r != testRecord(i) {
				t.Fatalf("cut %d: record %d = %+v, want %+v", cut, i, r, testRecord(i))
			}
		}
		var buf []byte
		buf = testRecord(complete).AppendTo(buf)
		if cseq, err := lt.Append(buf); err != nil || cseq != uint64(complete)+1 {
			t.Fatalf("cut %d: continuation append seq %d err %v", cut, cseq, err)
		}
		lt.Close()
	}
}

// TestWALExportTail: the shipped tail is exactly the records a local replay
// past the same cursor would apply, byte for byte, and a torn final frame is
// silently excluded.
func TestWALExportTail(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	const n = 30
	appendN(t, l, 0, n)

	const after = 12
	tail, err := l.ExportTail(after)
	if err != nil {
		t.Fatal(err)
	}
	if len(tail) != n-after {
		t.Fatalf("exported %d records after %d, want %d", len(tail), after, n-after)
	}
	for i, payload := range tail {
		r, err := DecodeRecord(payload)
		if err != nil {
			t.Fatalf("tail record %d: %v", i, err)
		}
		if r != testRecord(after+i) {
			t.Fatalf("tail record %d = %+v, want %+v", i, r, testRecord(after+i))
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the final frame one byte short: the export stops at the last
	// complete record instead of shipping a frame no replay would apply.
	segs, _ := filepath.Glob(filepath.Join(dir, "*.wal"))
	data, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(segs[0], data[:len(data)-1], 0o644); err != nil {
		t.Fatal(err)
	}
	lt, err := Open(dir, Options{Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer lt.Close()
	torn, err := lt.ExportTail(after)
	if err != nil {
		t.Fatal(err)
	}
	if len(torn) != n-after-1 {
		t.Fatalf("torn export returned %d records, want %d", len(torn), n-after-1)
	}
}

// TestWALSkipTo: an adopting node continues the donor's sequence space; a
// log that already holds records refuses the jump.
func TestWALSkipTo(t *testing.T) {
	l, err := Open(t.TempDir(), Options{Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.SkipTo(41); err != nil {
		t.Fatal(err)
	}
	var buf []byte
	buf = testRecord(0).AppendTo(buf)
	seq, err := l.Append(buf)
	if err != nil {
		t.Fatal(err)
	}
	if seq != 42 {
		t.Fatalf("first append after SkipTo(41) got seq %d, want 42", seq)
	}
	if err := l.SkipTo(100); err == nil {
		t.Fatal("SkipTo on a non-empty log must refuse")
	}
	recs := replayAll(t, l, 41)
	if len(recs) != 1 || recs[0] != testRecord(0) {
		t.Fatalf("replay after 41 = %+v", recs)
	}
}
