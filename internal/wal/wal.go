// Package wal is a segmented, CRC-framed, append-only write-ahead log for
// gateway ops. Every ingested event (and stream-clock advance) is framed
// and appended before it mutates detector state, so a process that dies
// between checkpoints can replay the tail and recover losslessly: the
// checkpoint carries the sequence number of the last op it covers, replay
// skips everything at or below it, and the stitched run is bit-identical
// to one that never crashed.
//
// On-disk layout: a directory of segment files named by the first sequence
// number they hold (%016x.wal). Each segment starts with an 8-byte magic +
// 8-byte first-seq header, followed by framed records:
//
//	[seq:8][len:4][crc:4][payload:len]
//
// The CRC (Castagnoli) covers seq, len, and payload, so a torn tail, a
// truncated length field, or a bit flip all fail closed. A torn or corrupt
// record ends replay at the last good record — exactly the prefix that was
// durably applied — and the log self-repairs by truncating the garbage so
// the next append continues a clean chain.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/telemetry"
)

// ErrClosed is returned by operations on a closed log.
var ErrClosed = errors.New("wal: closed")

var segMagic = [8]byte{'D', 'I', 'C', 'E', 'W', 'A', 'L', '1'}

const (
	segHeaderSize  = 16 // magic + first seq
	frameHeader    = 16 // seq + len + crc
	maxRecordSize  = 1 << 20
	defaultSegSize = 512 << 10
	defaultBatch   = 64
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// SyncPolicy controls when appends reach stable storage.
type SyncPolicy int

const (
	// SyncBatch fsyncs every Options.BatchEvery appends (and on rotation
	// and Close): bounded loss, amortized flush cost. The zero value,
	// because it is the default.
	SyncBatch SyncPolicy = iota
	// SyncAlways fsyncs after every append: nothing acknowledged is ever
	// lost, at the cost of one disk flush per op.
	SyncAlways
	// SyncNever leaves flushing to the OS except on rotation and Close:
	// fastest, loses the page-cache tail on power failure (a clean process
	// kill loses nothing — the kernel still has the writes).
	SyncNever
)

func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncBatch:
		return "batch"
	case SyncNever:
		return "never"
	default:
		return "unknown"
	}
}

// ParseSyncPolicy maps the -fsync flag values onto policies.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "always":
		return SyncAlways, nil
	case "batch", "":
		return SyncBatch, nil
	case "never", "none":
		return SyncNever, nil
	default:
		return SyncBatch, fmt.Errorf("wal: unknown fsync policy %q (want always|batch|never)", s)
	}
}

// Options configures a log at Open.
type Options struct {
	// Sync is the fsync policy (default SyncBatch).
	Sync SyncPolicy
	// SegmentSize rotates the active segment once it exceeds this many
	// bytes (default 512 KiB). Rotation bounds what a checkpoint can
	// truncate and keeps any one replay file small.
	SegmentSize int64
	// BatchEvery is the append count between fsyncs under SyncBatch
	// (default 64).
	BatchEvery int
	// Telemetry registers the dice_wal_* instruments; nil leaves the log
	// uninstrumented (all instruments are nil-safe).
	Telemetry *telemetry.Registry
}

// WAL metric names.
const (
	metricAppends   = "dice_wal_appends_total"
	metricBytes     = "dice_wal_append_bytes_total"
	metricSyncs     = "dice_wal_syncs_total"
	metricRotations = "dice_wal_rotations_total"
	metricSegments  = "dice_wal_segments"
	metricTruncated = "dice_wal_truncated_segments_total"
	metricReplayed  = "dice_wal_replayed_records_total"
	metricCorrupt   = "dice_wal_corrupt_records_total"
)

type metrics struct {
	appends   *telemetry.Counter
	bytes     *telemetry.Counter
	syncs     *telemetry.Counter
	rotations *telemetry.Counter
	segments  *telemetry.Gauge
	truncated *telemetry.Counter
	replayed  *telemetry.Counter
	corrupt   *telemetry.Counter
}

func newMetrics(reg *telemetry.Registry) metrics {
	if reg == nil {
		return metrics{}
	}
	return metrics{
		appends:   reg.Counter(metricAppends, "Records appended to the WAL."),
		bytes:     reg.Counter(metricBytes, "Bytes appended to the WAL (frames included)."),
		syncs:     reg.Counter(metricSyncs, "fsync calls issued by the WAL."),
		rotations: reg.Counter(metricRotations, "Segment rotations."),
		segments:  reg.Gauge(metricSegments, "Segment files currently on disk."),
		truncated: reg.Counter(metricTruncated, "Segments deleted after a covering checkpoint."),
		replayed:  reg.Counter(metricReplayed, "Records applied during replay."),
		corrupt:   reg.Counter(metricCorrupt, "Torn or corrupt records discarded at open/replay."),
	}
}

// segment is one on-disk file: its path, the first sequence it holds, and
// its current byte size.
type segment struct {
	path     string
	firstSeq uint64
	size     int64
}

// Log is a segmented append-only WAL. All methods are safe for concurrent
// use; appends are serialized internally so record order on disk is the
// order Append returns in.
type Log struct {
	mu       sync.Mutex
	dir      string
	opts     Options
	segs     []segment // sorted by firstSeq; last is active
	active   *os.File
	seq      uint64 // last assigned sequence number (0 = empty log)
	unsynced int
	closed   bool
	met      metrics
	scratch  []byte
}

// Open opens (or creates) the log in dir, validating segment headers and
// repairing a torn tail: the active segment is scanned record by record
// and truncated at the first frame that fails its CRC, so a crash mid-
// append never poisons the chain.
func Open(dir string, opts Options) (*Log, error) {
	if opts.SegmentSize <= 0 {
		opts.SegmentSize = defaultSegSize
	}
	if opts.BatchEvery <= 0 {
		opts.BatchEvery = defaultBatch
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: mkdir: %w", err)
	}
	l := &Log{dir: dir, opts: opts, met: newMetrics(opts.Telemetry)}
	if err := l.scan(); err != nil {
		return nil, err
	}
	l.met.segments.Set(int64(len(l.segs)))
	return l, nil
}

// scan discovers segments, validates headers, and repairs the tail.
func (l *Log) scan() error {
	entries, err := os.ReadDir(l.dir)
	if err != nil {
		return fmt.Errorf("wal: readdir: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".wal") {
			continue
		}
		first, err := strconv.ParseUint(strings.TrimSuffix(name, ".wal"), 16, 64)
		if err != nil {
			continue // foreign file; leave it alone
		}
		info, err := e.Info()
		if err != nil {
			return fmt.Errorf("wal: stat %s: %w", name, err)
		}
		l.segs = append(l.segs, segment{path: filepath.Join(l.dir, name), firstSeq: first, size: info.Size()})
	}
	sort.Slice(l.segs, func(i, j int) bool { return l.segs[i].firstSeq < l.segs[j].firstSeq })
	if len(l.segs) == 0 {
		return nil
	}
	// Validate every header cheaply; fully scan only the active (last)
	// segment to find the durable tail and repair torn bytes.
	for i := range l.segs {
		if err := l.checkHeader(&l.segs[i]); err != nil {
			return err
		}
	}
	tail := &l.segs[len(l.segs)-1]
	last, goodSize, err := l.scanSegment(tail, 0, nil)
	if err != nil {
		return err
	}
	if goodSize < tail.size {
		l.met.corrupt.Inc()
		if err := os.Truncate(tail.path, goodSize); err != nil {
			return fmt.Errorf("wal: repair %s: %w", tail.path, err)
		}
		tail.size = goodSize
	}
	if last == 0 {
		// Empty tail segment: its first record will be firstSeq, so the
		// last assigned seq is one below.
		l.seq = tail.firstSeq - 1
	} else {
		l.seq = last
	}
	return nil
}

func (l *Log) checkHeader(s *segment) error {
	f, err := os.Open(s.path)
	if err != nil {
		return err
	}
	defer f.Close()
	var hdr [segHeaderSize]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		return fmt.Errorf("wal: %s: short header: %w", s.path, err)
	}
	if [8]byte(hdr[:8]) != segMagic {
		return fmt.Errorf("wal: %s: bad magic %q", s.path, hdr[:8])
	}
	if got := binary.LittleEndian.Uint64(hdr[8:]); got != s.firstSeq {
		return fmt.Errorf("wal: %s: header first seq %d does not match name", s.path, got)
	}
	return nil
}

// scanSegment walks one segment's records, calling fn (when non-nil) for
// each valid frame, and returns the last valid seq seen (0 if none) plus
// the byte offset just past it. A CRC mismatch, short frame, or sequence
// discontinuity ends the scan without error: everything after the last
// good record is garbage by definition of an append-only log.
func (l *Log) scanSegment(s *segment, after uint64, fn func(seq uint64, payload []byte) error) (uint64, int64, error) {
	f, err := os.Open(s.path)
	if err != nil {
		return 0, 0, err
	}
	defer f.Close()
	if _, err := f.Seek(segHeaderSize, io.SeekStart); err != nil {
		return 0, 0, err
	}
	var (
		hdr     [frameHeader]byte
		payload []byte
		last    uint64
		off     = int64(segHeaderSize)
		want    = s.firstSeq
	)
	for {
		if _, err := io.ReadFull(f, hdr[:]); err != nil {
			return last, off, nil // clean EOF or torn header: stop at last good
		}
		seq := binary.LittleEndian.Uint64(hdr[0:8])
		n := binary.LittleEndian.Uint32(hdr[8:12])
		crc := binary.LittleEndian.Uint32(hdr[12:16])
		if seq != want || n > maxRecordSize {
			return last, off, nil
		}
		if cap(payload) < int(n) {
			payload = make([]byte, n)
		}
		payload = payload[:n]
		if _, err := io.ReadFull(f, payload); err != nil {
			return last, off, nil
		}
		sum := crc32.Update(0, castagnoli, hdr[0:12])
		sum = crc32.Update(sum, castagnoli, payload)
		if sum != crc {
			return last, off, nil
		}
		if fn != nil && seq > after {
			if err := fn(seq, payload); err != nil {
				return last, off, err
			}
		}
		last = seq
		off += int64(frameHeader) + int64(n)
		want = seq + 1
	}
}

// LastSeq returns the sequence number of the last appended record (0 for
// an empty log).
func (l *Log) LastSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}

// Segments returns the number of segment files on disk.
func (l *Log) Segments() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.segs)
}

// Dir returns the log's directory.
func (l *Log) Dir() string { return l.dir }

// Append frames payload, writes it to the active segment, applies the sync
// policy, and returns the record's sequence number. The payload is copied
// before Append returns; the caller may reuse its buffer.
func (l *Log) Append(payload []byte) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	if len(payload) > maxRecordSize {
		return 0, fmt.Errorf("wal: record %d bytes exceeds limit %d", len(payload), maxRecordSize)
	}
	if err := l.ensureActiveLocked(); err != nil {
		return 0, err
	}
	seq := l.seq + 1
	need := frameHeader + len(payload)
	if cap(l.scratch) < need {
		l.scratch = make([]byte, need)
	}
	buf := l.scratch[:need]
	binary.LittleEndian.PutUint64(buf[0:8], seq)
	binary.LittleEndian.PutUint32(buf[8:12], uint32(len(payload)))
	copy(buf[frameHeader:], payload)
	sum := crc32.Update(0, castagnoli, buf[0:12])
	sum = crc32.Update(sum, castagnoli, payload)
	binary.LittleEndian.PutUint32(buf[12:16], sum)
	if _, err := l.active.Write(buf); err != nil {
		return 0, fmt.Errorf("wal: append: %w", err)
	}
	l.seq = seq
	tail := &l.segs[len(l.segs)-1]
	tail.size += int64(need)
	l.met.appends.Inc()
	l.met.bytes.Add(int64(need))
	l.unsynced++
	switch l.opts.Sync {
	case SyncAlways:
		if err := l.syncLocked(); err != nil {
			return 0, err
		}
	case SyncBatch:
		if l.unsynced >= l.opts.BatchEvery {
			if err := l.syncLocked(); err != nil {
				return 0, err
			}
		}
	}
	if tail.size >= l.opts.SegmentSize {
		if err := l.rotateLocked(); err != nil {
			return 0, err
		}
	}
	return seq, nil
}

// AppendBatch frames every payload as its own record — identical on disk
// to len(payloads) individual Appends — but issues one file write for the
// whole batch and applies the sync policy once at the end, so fsync cost
// amortizes across the batch (SyncAlways: one flush per batch instead of
// per record; SyncBatch: the unsynced count advances by the batch size).
// It returns the sequence number of the last record. Replay cannot tell
// batched and unbatched appends apart, which is what keeps crash recovery
// unchanged. Rotation is checked after the batch, so a segment may
// overshoot SegmentSize by at most one batch.
func (l *Log) AppendBatch(payloads [][]byte) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	if len(payloads) == 0 {
		return l.seq, nil
	}
	need := 0
	for _, p := range payloads {
		if len(p) > maxRecordSize {
			return 0, fmt.Errorf("wal: record %d bytes exceeds limit %d", len(p), maxRecordSize)
		}
		need += frameHeader + len(p)
	}
	if err := l.ensureActiveLocked(); err != nil {
		return 0, err
	}
	if cap(l.scratch) < need {
		l.scratch = make([]byte, need)
	}
	buf := l.scratch[:0]
	seq := l.seq
	for _, p := range payloads {
		seq++
		off := len(buf)
		buf = buf[:off+frameHeader+len(p)]
		binary.LittleEndian.PutUint64(buf[off:off+8], seq)
		binary.LittleEndian.PutUint32(buf[off+8:off+12], uint32(len(p)))
		copy(buf[off+frameHeader:], p)
		sum := crc32.Update(0, castagnoli, buf[off:off+12])
		sum = crc32.Update(sum, castagnoli, p)
		binary.LittleEndian.PutUint32(buf[off+12:off+16], sum)
	}
	if _, err := l.active.Write(buf); err != nil {
		return 0, fmt.Errorf("wal: append batch: %w", err)
	}
	l.seq = seq
	tail := &l.segs[len(l.segs)-1]
	tail.size += int64(need)
	l.met.appends.Add(int64(len(payloads)))
	l.met.bytes.Add(int64(need))
	l.unsynced += len(payloads)
	switch l.opts.Sync {
	case SyncAlways:
		if err := l.syncLocked(); err != nil {
			return 0, err
		}
	case SyncBatch:
		if l.unsynced >= l.opts.BatchEvery {
			if err := l.syncLocked(); err != nil {
				return 0, err
			}
		}
	}
	if tail.size >= l.opts.SegmentSize {
		if err := l.rotateLocked(); err != nil {
			return 0, err
		}
	}
	return seq, nil
}

// Sync flushes the active segment to stable storage regardless of policy.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	return l.syncLocked()
}

func (l *Log) syncLocked() error {
	if l.active == nil || l.unsynced == 0 {
		return nil
	}
	if err := l.active.Sync(); err != nil {
		return fmt.Errorf("wal: sync: %w", err)
	}
	l.unsynced = 0
	l.met.syncs.Inc()
	return nil
}

// ensureActiveLocked opens the tail segment for appending, creating the
// first segment of an empty log.
func (l *Log) ensureActiveLocked() error {
	if l.active != nil {
		return nil
	}
	if len(l.segs) == 0 {
		return l.newSegmentLocked(l.seq + 1)
	}
	tail := l.segs[len(l.segs)-1]
	f, err := os.OpenFile(tail.path, os.O_WRONLY, 0)
	if err != nil {
		return fmt.Errorf("wal: open active: %w", err)
	}
	// The repaired size, not the file end: scan() truncated torn bytes,
	// but another process could in principle have appended since.
	if _, err := f.Seek(tail.size, io.SeekStart); err != nil {
		f.Close()
		return err
	}
	l.active = f
	return nil
}

func (l *Log) newSegmentLocked(firstSeq uint64) error {
	path := filepath.Join(l.dir, fmt.Sprintf("%016x.wal", firstSeq))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("wal: create segment: %w", err)
	}
	var hdr [segHeaderSize]byte
	copy(hdr[:8], segMagic[:])
	binary.LittleEndian.PutUint64(hdr[8:], firstSeq)
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		return fmt.Errorf("wal: segment header: %w", err)
	}
	l.segs = append(l.segs, segment{path: path, firstSeq: firstSeq, size: segHeaderSize})
	l.active = f
	l.met.segments.Set(int64(len(l.segs)))
	// Make the new file itself durable: fsync the directory so the name
	// survives a power failure (same contract as checkpoint renames).
	return SyncDir(l.dir)
}

// rotateLocked seals the active segment (flush + close) and starts a new
// one whose first record will be seq+1.
func (l *Log) rotateLocked() error {
	if err := l.syncLocked(); err != nil {
		return err
	}
	if err := l.active.Close(); err != nil {
		return fmt.Errorf("wal: seal segment: %w", err)
	}
	l.active = nil
	l.met.rotations.Inc()
	return l.newSegmentLocked(l.seq + 1)
}

// Replay streams every durable record with sequence number greater than
// after, in order, into fn. It stops without error at the first torn or
// corrupt frame (counted), mirroring Open's repair semantics. Replay of
// the active segment is safe while the log is open as long as no Append
// runs concurrently — the caller serializes recovery before ingest.
func (l *Log) Replay(after uint64, fn func(seq uint64, payload []byte) error) error {
	l.mu.Lock()
	segs := append([]segment(nil), l.segs...)
	l.mu.Unlock()
	var prevLast uint64
	for i, s := range segs {
		if i > 0 && s.firstSeq != prevLast+1 {
			// A torn or corrupt middle segment left a sequence gap; the
			// records beyond it are not a continuation of the applied
			// prefix, so replay must stop here.
			l.met.corrupt.Inc()
			return nil
		}
		last, _, err := l.scanSegment(&s, after, func(seq uint64, payload []byte) error {
			l.met.replayed.Inc()
			return fn(seq, payload)
		})
		if err != nil {
			return err
		}
		if last == 0 && s.size > segHeaderSize {
			// Nothing valid in a non-empty segment: the chain is broken
			// here; later segments would have a sequence gap.
			l.met.corrupt.Inc()
			return nil
		}
		if last != 0 {
			prevLast = last
		} else {
			prevLast = s.firstSeq - 1
		}
	}
	return nil
}

// ExportTail collects copies of every durable record with sequence number
// greater than after, in order — the WAL half of a tenant handoff envelope:
// the receiving node appends these frames to its own log and replays them
// on top of the shipped checkpoint. Like Replay, the export stops silently
// at the first torn or corrupt frame (counted), so it ships exactly the
// prefix a local recovery would have applied. Safe while the log is open as
// long as no Append runs concurrently — the exporter drains ingest first.
func (l *Log) ExportTail(after uint64) ([][]byte, error) {
	l.mu.Lock()
	segs := append([]segment(nil), l.segs...)
	l.mu.Unlock()
	var out [][]byte
	var prevLast uint64
	for i, s := range segs {
		if i > 0 && s.firstSeq != prevLast+1 {
			l.met.corrupt.Inc()
			return out, nil
		}
		last, _, err := l.scanSegment(&s, after, func(seq uint64, payload []byte) error {
			out = append(out, append([]byte(nil), payload...))
			return nil
		})
		if err != nil {
			return nil, err
		}
		if last == 0 && s.size > segHeaderSize {
			l.met.corrupt.Inc()
			return out, nil
		}
		if last != 0 {
			prevLast = last
		} else {
			prevLast = s.firstSeq - 1
		}
	}
	return out, nil
}

// SkipTo advances an empty log's sequence counter so its first append is
// assigned seq+1 — how an adopting node continues a migrated tenant's
// sequence space instead of restarting at 1, keeping the shipped
// checkpoint's WALSeq meaningful against the new node's log. It refuses on
// a log that already holds records.
func (l *Log) SkipTo(seq uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if len(l.segs) != 0 || l.seq != 0 {
		return fmt.Errorf("wal: SkipTo(%d) on non-empty log (last seq %d)", seq, l.seq)
	}
	l.seq = seq
	return nil
}

// TruncateThrough deletes sealed segments whose every record has sequence
// number <= seq — called after a checkpoint covering seq has been made
// durable. The active segment is never deleted, so the log always keeps a
// valid chain tail.
func (l *Log) TruncateThrough(seq uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	n := 0
	for len(l.segs)-n >= 2 && l.segs[n+1].firstSeq-1 <= seq {
		if err := os.Remove(l.segs[n].path); err != nil {
			return fmt.Errorf("wal: truncate: %w", err)
		}
		n++
	}
	if n == 0 {
		return nil
	}
	l.segs = append(l.segs[:0], l.segs[n:]...)
	l.met.truncated.Add(int64(n))
	l.met.segments.Set(int64(len(l.segs)))
	return SyncDir(l.dir)
}

// Close flushes and closes the active segment. The log is unusable after.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	if l.active == nil {
		return nil
	}
	err := l.syncLocked()
	if cerr := l.active.Close(); err == nil {
		err = cerr
	}
	l.active = nil
	return err
}

// SyncDir fsyncs a directory so renames/creates/removes within it are
// durable. Required on POSIX: fsyncing a file does not persist its name —
// checkpoint writers share this helper for their post-rename sync.
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("wal: sync dir %s: %w", dir, err)
	}
	return nil
}
