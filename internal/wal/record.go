package wal

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sync"
	"time"

	"repro/internal/device"
	"repro/internal/event"
)

// Kind discriminates WAL record payloads.
type Kind uint8

const (
	// KindIngest is one device event fed to Gateway.Ingest.
	KindIngest Kind = 1
	// KindAdvance is a stream-clock advance fed to Gateway.AdvanceTo.
	KindAdvance Kind = 2
)

func (k Kind) String() string {
	switch k {
	case KindIngest:
		return "ingest"
	case KindAdvance:
		return "advance"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Record is one gateway op in its WAL form. Ingest records carry the full
// event; advance records carry only the target stream time in At.
type Record struct {
	Kind   Kind
	At     time.Duration
	Device device.ID
	Value  float64
}

// recordSize is the fixed encoded payload size: kind + at + device + value.
const recordSize = 1 + 8 + 4 + 8

// RecordSize is recordSize for callers that pre-size encode buffers (the
// gateway's batched append path grows one buffer for a whole batch up
// front, so the per-record frame slices stay valid).
const RecordSize = recordSize

// IngestRecord wraps an event for the log.
func IngestRecord(e event.Event) Record {
	return Record{Kind: KindIngest, At: e.At, Device: e.Device, Value: e.Value}
}

// AdvanceRecord wraps a stream-clock advance for the log.
func AdvanceRecord(t time.Duration) Record {
	return Record{Kind: KindAdvance, At: t}
}

// Event converts an ingest record back to the event it logged.
func (r Record) Event() event.Event {
	return event.Event{At: r.At, Device: r.Device, Value: r.Value}
}

// AppendTo encodes the record onto buf (reusing its capacity) and returns
// the extended slice, so the gateway's hot path appends with zero
// steady-state allocations.
func (r Record) AppendTo(buf []byte) []byte {
	var b [recordSize]byte
	b[0] = byte(r.Kind)
	binary.LittleEndian.PutUint64(b[1:9], uint64(r.At))
	binary.LittleEndian.PutUint32(b[9:13], uint32(int32(r.Device)))
	binary.LittleEndian.PutUint64(b[13:21], math.Float64bits(r.Value))
	return append(buf, b[:]...)
}

// DecodeRecord parses a payload written by AppendTo.
func DecodeRecord(payload []byte) (Record, error) {
	if len(payload) != recordSize {
		return Record{}, fmt.Errorf("wal: record payload %d bytes, want %d", len(payload), recordSize)
	}
	r := Record{
		Kind:   Kind(payload[0]),
		At:     time.Duration(binary.LittleEndian.Uint64(payload[1:9])),
		Device: device.ID(int32(binary.LittleEndian.Uint32(payload[9:13]))),
		Value:  math.Float64frombits(binary.LittleEndian.Uint64(payload[13:21])),
	}
	if r.Kind != KindIngest && r.Kind != KindAdvance {
		return Record{}, fmt.Errorf("wal: unknown record kind %d", payload[0])
	}
	return r, nil
}

// DeadLetterEntry is one captured poison op: the record that made its
// handler panic, the panic value, and where it happened. Entries are
// appended as JSON lines so the file is greppable and tail-able.
type DeadLetterEntry struct {
	Home     string  `json:"home,omitempty"`
	Seq      uint64  `json:"seq,omitempty"`
	Kind     string  `json:"kind"`
	AtMS     int64   `json:"at_ms"`
	Device   int     `json:"device,omitempty"`
	Value    float64 `json:"value,omitempty"`
	Panic    string  `json:"panic"`
	Stack    string  `json:"stack,omitempty"`
	SavedAt  string  `json:"saved_at"`
	Replayed bool    `json:"replayed,omitempty"`
}

// DeadLetter appends poison ops to a JSONL file. The zero value and a nil
// pointer discard records, so call sites need no guards.
type DeadLetter struct {
	mu   sync.Mutex
	path string
}

// OpenDeadLetter returns a dead-letter sink appending to path. The file is
// created lazily on the first record, so a healthy gateway leaves nothing
// behind.
func OpenDeadLetter(path string) *DeadLetter {
	return &DeadLetter{path: path}
}

// Path returns the sink's file path ("" for a discarding sink).
func (d *DeadLetter) Path() string {
	if d == nil {
		return ""
	}
	return d.path
}

// Record appends one entry, stamping the wall-clock save time. Errors are
// returned but callers on panic paths may reasonably ignore them — the
// dead-letter file is forensics, not state.
func (d *DeadLetter) Record(e DeadLetterEntry) error {
	if d == nil || d.path == "" {
		return nil
	}
	e.SavedAt = time.Now().UTC().Format(time.RFC3339Nano)
	data, err := json.Marshal(e)
	if err != nil {
		return err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	f, err := os.OpenFile(d.path, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := f.Write(append(data, '\n')); err != nil {
		return err
	}
	return f.Sync()
}

// Entry builds a dead-letter entry from a record and panic context.
func Entry(home string, seq uint64, r Record, panicVal any, stack []byte, replayed bool) DeadLetterEntry {
	return DeadLetterEntry{
		Home:     home,
		Seq:      seq,
		Kind:     r.Kind.String(),
		AtMS:     r.At.Milliseconds(),
		Device:   int(r.Device),
		Value:    r.Value,
		Panic:    fmt.Sprint(panicVal),
		Stack:    string(stack),
		Replayed: replayed,
	}
}
