package core

import (
	"testing"

	"repro/internal/device"
	"repro/internal/window"
)

// coreLayout builds a registry with 2 binary sensors, 2 numeric sensors, and
// 1 actuator. State set layout: bits 0-1 binary, 2-4 numeric slot 0,
// 5-7 numeric slot 1.
func coreLayout(t testing.TB) *window.Layout {
	t.Helper()
	reg := device.NewRegistry()
	reg.MustAdd("motion-a", device.Binary, device.Motion, "kitchen")   // ID 0
	reg.MustAdd("motion-b", device.Binary, device.Motion, "bedroom")   // ID 1
	reg.MustAdd("temp", device.Numeric, device.Temperature, "kitchen") // ID 2
	reg.MustAdd("light", device.Numeric, device.Light, "bedroom")      // ID 3
	reg.MustAdd("bulb", device.Actuator, device.SmartBulb, "bedroom")  // ID 4
	return window.NewLayout(reg)
}

func mustBinarizer(t testing.TB, l *window.Layout, thre []float64) *Binarizer {
	t.Helper()
	b, err := NewBinarizer(l, thre)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestBinarizerNumBits(t *testing.T) {
	l := coreLayout(t)
	b := mustBinarizer(t, l, []float64{20, 100})
	if got := b.NumBits(); got != 2+3*2 {
		t.Errorf("NumBits = %d, want 8", got)
	}
}

func TestNewBinarizerValidation(t *testing.T) {
	l := coreLayout(t)
	if _, err := NewBinarizer(nil, nil); err == nil {
		t.Error("nil layout accepted")
	}
	if _, err := NewBinarizer(l, []float64{1}); err == nil {
		t.Error("wrong threshold count accepted")
	}
}

func TestStateSetBinaryBits(t *testing.T) {
	l := coreLayout(t)
	b := mustBinarizer(t, l, []float64{20, 100})
	o := l.NewObservation(0)
	o.Binary[1] = true
	v, err := b.StateSet(o)
	if err != nil {
		t.Fatal(err)
	}
	if v.Get(0) || !v.Get(1) {
		t.Errorf("binary bits = %s", v)
	}
}

func TestStateSetNumericBits(t *testing.T) {
	l := coreLayout(t)
	b := mustBinarizer(t, l, []float64{20, 100})
	o := l.NewObservation(0)
	// Numeric slot 0 (temp, thre 20): right-skewed, rising, mean above 20.
	o.Numeric[0] = []float64{21, 21, 21, 21, 30}
	// Numeric slot 1 (light, thre 100): left-skewed, falling, mean below.
	o.Numeric[1] = []float64{50, 50, 50, 50, 10}
	v, err := b.StateSet(o)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Get(2) { // skew > 0
		t.Error("skew bit for slot 0 should be set")
	}
	if !v.Get(3) { // trend up
		t.Error("trend bit for slot 0 should be set")
	}
	if !v.Get(4) { // mean > 20
		t.Error("mean bit for slot 0 should be set")
	}
	if v.Get(5) || v.Get(6) || v.Get(7) {
		t.Errorf("slot 1 bits should be clear: %s", v)
	}
}

func TestStateSetEmptyNumericWindowIsAllZero(t *testing.T) {
	l := coreLayout(t)
	b := mustBinarizer(t, l, []float64{-1000, -1000}) // thresholds any data would exceed
	o := l.NewObservation(0)
	v, err := b.StateSet(o)
	if err != nil {
		t.Fatal(err)
	}
	if v.PopCount() != 0 {
		t.Errorf("empty window state set = %s, want all zeros", v)
	}
}

func TestStateSetSingleSampleWindow(t *testing.T) {
	l := coreLayout(t)
	b := mustBinarizer(t, l, []float64{20, 100})
	o := l.NewObservation(0)
	o.Numeric[0] = []float64{25} // one sample: no skew, no trend, mean above
	v, err := b.StateSet(o)
	if err != nil {
		t.Fatal(err)
	}
	if v.Get(2) || v.Get(3) {
		t.Error("single sample should not set skew/trend bits")
	}
	if !v.Get(4) {
		t.Error("single sample above threshold should set mean bit")
	}
}

func TestStateSetShapeMismatch(t *testing.T) {
	l := coreLayout(t)
	b := mustBinarizer(t, l, []float64{20, 100})
	bad := &window.Observation{Binary: make([]bool, 5), Numeric: make([][]float64, 2)}
	if _, err := b.StateSet(bad); err == nil {
		t.Error("mismatched observation accepted")
	}
}

func TestDeviceForBit(t *testing.T) {
	l := coreLayout(t)
	b := mustBinarizer(t, l, []float64{20, 100})
	tests := []struct {
		bit  int
		want device.ID
	}{
		{0, 0}, {1, 1}, // binary sensors
		{2, 2}, {3, 2}, {4, 2}, // numeric slot 0 -> temp (ID 2)
		{5, 3}, {6, 3}, {7, 3}, // numeric slot 1 -> light (ID 3)
	}
	for _, tt := range tests {
		got, err := b.DeviceForBit(tt.bit)
		if err != nil {
			t.Fatalf("bit %d: %v", tt.bit, err)
		}
		if got != tt.want {
			t.Errorf("DeviceForBit(%d) = %d, want %d", tt.bit, got, tt.want)
		}
	}
	if _, err := b.DeviceForBit(8); err == nil {
		t.Error("out-of-range bit accepted")
	}
	if _, err := b.DeviceForBit(-1); err == nil {
		t.Error("negative bit accepted")
	}
}

func TestDevicesForBitsDedupsAndSorts(t *testing.T) {
	l := coreLayout(t)
	b := mustBinarizer(t, l, []float64{20, 100})
	// Bits 5,6,7 all map to device 3; bit 0 maps to device 0.
	got, err := b.DevicesForBits([]int{6, 5, 0, 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != 0 || got[1] != 3 {
		t.Errorf("DevicesForBits = %v, want [0 3]", got)
	}
}

func TestValueThreIsCopy(t *testing.T) {
	l := coreLayout(t)
	orig := []float64{20, 100}
	b := mustBinarizer(t, l, orig)
	orig[0] = 999
	if b.ValueThre()[0] == 999 {
		t.Error("binarizer aliased caller's threshold slice")
	}
	got := b.ValueThre()
	got[1] = -1
	if b.ValueThre()[1] == -1 {
		t.Error("ValueThre returned internal slice")
	}
}
