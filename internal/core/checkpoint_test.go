package core

import (
	"encoding/json"
	"reflect"
	"testing"

	"repro/internal/window"
)

// stripTiming zeroes the wall-clock fields so results compare structurally.
func stripTiming(r Result) Result {
	r.Timing = Timing{}
	return r
}

// roundTripState pushes a detector state through JSON, as a gateway
// checkpoint would, and restores it into a fresh detector.
func roundTripState(t *testing.T, from *Detector, ctx *Context) *Detector {
	t.Helper()
	st := from.ExportState()
	data, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	var back DetectorState
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	d := newTestDetector(t, ctx, Config{})
	if err := d.RestoreState(back); err != nil {
		t.Fatal(err)
	}
	return d
}

func TestDetectorStateRoundTripCleanStream(t *testing.T) {
	l, ctx := trainAlternating(t)
	a := newTestDetector(t, ctx, Config{})
	next := feedNormal(t, a, l, 0, 8)

	b := roundTripState(t, a, ctx)

	// Both detectors must judge the continuation — including a fault that
	// leans on the restored previous-window state — identically.
	for i := 0; i < 16; i++ {
		idx := next + i
		var o *window.Observation
		if idx%2 == 0 {
			o = evenObs(l, idx)
			o.Binary[0] = false // fail-stop from the restore point on
		} else {
			o = oddObs(l, idx)
		}
		ra, err := a.Process(o.Clone())
		if err != nil {
			t.Fatal(err)
		}
		rb, err := b.Process(o)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(stripTiming(ra), stripTiming(rb)) {
			t.Fatalf("window %d diverged:\n original: %+v\n restored: %+v", idx, ra, rb)
		}
	}
}

func TestDetectorStateRoundTripMidEpisode(t *testing.T) {
	l, ctx := trainAlternating(t)
	a := newTestDetector(t, ctx, Config{})
	next := feedNormal(t, a, l, 0, 6)

	// Open an episode with an ambiguous two-bit anomaly so identification
	// needs more than one window.
	o := evenObs(l, next)
	o.Binary[0] = false
	o.Binary[1] = true
	res, err := a.Process(o)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Detected {
		t.Fatal("anomaly not detected")
	}
	if !a.Identifying() {
		t.Fatal("episode concluded immediately; fixture no longer exercises mid-episode restore")
	}
	next++

	b := roundTripState(t, a, ctx)
	if !b.Identifying() {
		t.Fatal("restored detector lost the in-flight episode")
	}

	// Feed both the identical continuation until the episode concludes;
	// the alerts (and every step before them) must match.
	for i := 0; i < 200; i++ {
		idx := next + i
		var o *window.Observation
		if idx%2 == 0 {
			o = evenObs(l, idx)
			o.Binary[0] = false
		} else {
			o = oddObs(l, idx)
		}
		ra, err := a.Process(o.Clone())
		if err != nil {
			t.Fatal(err)
		}
		rb, err := b.Process(o)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(stripTiming(ra), stripTiming(rb)) {
			t.Fatalf("window %d diverged:\n original: %+v\n restored: %+v", idx, ra, rb)
		}
		if ra.Alert != nil {
			return // both concluded identically
		}
	}
	t.Fatal("episode never concluded")
}

func TestDetectorRestoreValidates(t *testing.T) {
	_, ctx := trainAlternating(t)
	d := newTestDetector(t, ctx, Config{})
	if err := d.RestoreState(DetectorState{PrevGroup: 9999}); err == nil {
		t.Error("out-of-range previous group accepted")
	}
	if err := d.RestoreState(DetectorState{
		PrevGroup: NoGroup,
		Episode:   &EpisodeState{OpeningPrev: 9999},
	}); err == nil {
		t.Error("out-of-range episode opening group accepted")
	}
	if err := d.RestoreState(DetectorState{PrevGroup: NoGroup}); err != nil {
		t.Errorf("legal NoGroup state rejected: %v", err)
	}
}
