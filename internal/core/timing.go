package core

import (
	"repro/internal/device"
	"repro/internal/markov"
)

const (
	// TimingA2GHorizon bounds how many windows after an actuator firing a
	// group change still counts as that firing's consequence. Trainer and
	// detector share the bound so the gap populations match.
	TimingA2GHorizon = 16

	// DefaultTimingMinSamples is the minimum number of recorded gaps an
	// edge's sketch needs before the timing check trusts its band. Thin
	// edges stay structural-only rather than alarm on noise.
	DefaultTimingMinSamples = 16

	// DefaultTimingSlackBuckets is how many log2 buckets beyond the learned
	// band a gap must land before it is flagged. One bucket of slack means
	// a gap must be at least ~2x the band edge — conservative enough that a
	// clean replay of the training distribution never alarms.
	DefaultTimingSlackBuckets = 1
)

// TimingEvidence is the explain payload behind a CheckTiming violation: the
// edge whose pace broke, the observed gap, the learned band, and the raw
// bucket counts so an operator can see the distribution the gap fell out of.
type TimingEvidence struct {
	// Edge is which transition family the gap belongs to: "g2g", "g2a", or
	// "a2g".
	Edge string `json:"edge"`
	// From and To identify the edge. For g2g both are group IDs; for g2a
	// From is a group and To an actuator slot; for a2g From is an actuator
	// slot and To a group.
	From int `json:"from"`
	To   int `json:"to"`
	// GapWindows is the observed inter-window gap that fell out of band.
	GapWindows int `json:"gap_windows"`
	// BandLoWindows/BandHiWindows bound the learned quantile band,
	// expressed in windows (bucket edges, not quantile interpolation).
	BandLoWindows int `json:"band_lo_windows"`
	BandHiWindows int `json:"band_hi_windows"`
	// TooFast is true when the gap undershot the band (only flagged when
	// the detector was configured WithTimingFlagFast); false means the gap
	// overshot it.
	TooFast bool `json:"too_fast,omitempty"`
	// Samples is how many gaps the edge's sketch had recorded.
	Samples uint64 `json:"samples"`
	// Buckets is the sketch's log2 histogram at flag time.
	Buckets []uint32 `json:"buckets"`
}

// Clone returns a deep copy.
func (e *TimingEvidence) Clone() *TimingEvidence {
	if e == nil {
		return nil
	}
	cp := *e
	cp.Buckets = append([]uint32(nil), e.Buckets...)
	return &cp
}

// TimingCheck flags structurally valid transitions whose inter-window gap
// falls outside the interval band learned during training — the right
// transition at the wrong pace. It self-disables when the context predates
// interval sketches (schema v1) or the detector was built WithTiming(false),
// and it evaluates the edge families in blame order: A2G (a firing's
// consequence arrived off-pace — suspect the actuator), then G2A (a firing
// left its group off-pace — suspect the actuator), then G2G (a plain hop
// after an out-of-band dwell — suspect the sensors separating the groups).
type TimingCheck struct{}

// Name implements Check.
func (TimingCheck) Name() string { return "timing" }

// Cause implements Check.
func (TimingCheck) Cause() Cause { return CheckTiming }

// Run implements Check.
func (TimingCheck) Run(d *Detector, in CheckInput) *Finding {
	cur := in.Cands.Main
	if cur == NoGroup || d.cfg.DisableTiming || !d.ctx.TimingCapable() {
		return nil
	}
	d.met.timingChecked.Inc()
	layout := d.ctx.Layout()
	// A2G: the hop into cur lands within the horizon of a firing.
	if d.prevGroup != NoGroup && cur != d.prevGroup {
		for slot, at := range d.lastFire {
			if at < 0 {
				continue
			}
			gap := in.Obs.Index - at
			if gap < 1 || gap > TimingA2GHorizon {
				continue
			}
			if ev := d.gapOutOfBand(d.ctx.A2GGaps(), slot, cur, gap, "a2g"); ev != nil {
				return &Finding{
					Cause:    CheckTiming,
					Suspects: []device.ID{layout.ActuatorID(slot)},
					Timing:   ev,
				}
			}
		}
	}
	// G2A: a firing out of the previous group after an off-pace dwell.
	if d.prevGroup != NoGroup && d.dwell > 0 {
		for _, act := range in.Obs.Actuated {
			slot, ok := layout.ActuatorSlot(act)
			if !ok {
				continue
			}
			if ev := d.gapOutOfBand(d.ctx.G2AGaps(), d.prevGroup, slot, d.dwell, "g2a"); ev != nil {
				return &Finding{
					Cause:    CheckTiming,
					Suspects: []device.ID{act},
					Timing:   ev,
				}
			}
		}
	}
	// G2G: a plain hop after an off-pace dwell.
	if d.prevGroup != NoGroup && cur != d.prevGroup && d.dwell > 0 {
		if ev := d.gapOutOfBand(d.ctx.G2GGaps(), d.prevGroup, cur, d.dwell, "g2g"); ev != nil {
			return &Finding{
				Cause:    CheckTiming,
				Suspects: d.diffSuspects(in.Vec, []int{d.prevGroup}),
				Timing:   ev,
			}
		}
	}
	return nil
}

// gapOutOfBand tests one observed gap against the edge's learned band and
// returns the evidence when it falls out. It allocates only on a flag, so
// the clean-window hot path stays allocation-free.
func (d *Detector) gapOutOfBand(ss *markov.SketchSet, from, to, gap int, edge string) *TimingEvidence {
	s := ss.Get(from, to)
	if s == nil || s.Total() < uint64(d.cfg.TimingMinSamples) {
		return nil
	}
	lo, hi := s.Band(d.cfg.TimingQuantileLo, d.cfg.TimingQuantileHi)
	b := markov.BucketFor(gap)
	slack := d.cfg.TimingSlackBuckets
	slow := b > hi+slack
	fast := d.cfg.TimingFlagFast && b < lo-slack
	if !slow && !fast {
		return nil
	}
	d.met.timingFlag(edge)
	d.met.timingGap.Observe(float64(gap))
	return &TimingEvidence{
		Edge:          edge,
		From:          from,
		To:            to,
		GapWindows:    gap,
		BandLoWindows: markov.BucketMin(lo),
		BandHiWindows: markov.BucketMax(hi),
		TooFast:       fast,
		Samples:       s.Total(),
		Buckets:       s.Buckets(),
	}
}
