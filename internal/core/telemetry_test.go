package core

import (
	"encoding/json"
	"testing"
	"time"

	"repro/internal/device"
	"repro/internal/telemetry"
	"repro/internal/window"
)

// TestDetectorInstrumentedCleanWindowAllocFree: instrumenting the detector
// must not cost the clean-window hot path its zero-allocation guarantee.
func TestDetectorInstrumentedCleanWindowAllocFree(t *testing.T) {
	l := coreLayout(t)
	obs := make([]*window.Observation, 12)
	for i := range obs {
		o := l.NewObservation(i)
		o.Binary[0] = i%2 == 0
		o.Binary[1] = i%2 == 1
		temp, light := 10.0, 50.0
		if i%2 == 0 {
			temp, light = 30, 200
		}
		o.Numeric[0] = []float64{temp, temp}
		o.Numeric[1] = []float64{light, light}
		obs[i] = o
	}
	ctx, err := TrainWindows(l, time.Minute, obs)
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	det, err := New(ctx, WithConfig(Config{}), WithTelemetry(reg))
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range obs {
		if _, err := det.Process(o); err != nil {
			t.Fatal(err)
		}
	}
	i := 0
	allocs := testing.AllocsPerRun(200, func() {
		res, err := det.Process(obs[i%len(obs)])
		i++
		if err != nil || res.Detected {
			t.Fatal("clean window flagged", err)
		}
	})
	if allocs != 0 {
		t.Errorf("instrumented clean-window Process allocates %.1f objects per run, want 0", allocs)
	}
	snap := reg.SnapshotMap()
	if snap[metricWindows] < 200 {
		t.Errorf("%s = %g after 200+ windows", metricWindows, snap[metricWindows])
	}
	if snap[metricScanExact] == 0 {
		t.Errorf("%s never incremented on a clean stream", metricScanExact)
	}
}

// TestDetectorViolationMetricsAndExplain drives an untrained window through
// an instrumented detector and checks the violation counter, the episode
// series, and the alert's Explain trace.
func TestDetectorViolationMetricsAndExplain(t *testing.T) {
	l := coreLayout(t)
	obs := make([]*window.Observation, 12)
	for i := range obs {
		o := l.NewObservation(i)
		o.Binary[0] = i%2 == 0
		o.Binary[1] = i%2 == 1
		temp, light := 10.0, 50.0
		if i%2 == 0 {
			temp, light = 30, 200
		}
		o.Numeric[0] = []float64{temp, temp}
		o.Numeric[1] = []float64{light, light}
		obs[i] = o
	}
	ctx, err := TrainWindows(l, time.Minute, obs)
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	det, err := New(ctx, WithConfig(Config{}), WithTelemetry(reg))
	if err != nil {
		t.Fatal(err)
	}
	var alert *Alert
	for w := 0; w < 60 && alert == nil; w++ {
		o := obs[w%len(obs)].Clone()
		o.Index = w
		if w >= 6 {
			o.Binary[0] = false
			o.Binary[1] = false // both motion sensors stuck off: untrained set
		}
		res, err := det.Process(o)
		if err != nil {
			t.Fatal(err)
		}
		alert = res.Alert
	}
	if alert == nil {
		t.Fatal("no alert from an untrained stream")
	}
	if alert.Explain == nil {
		t.Fatal("alert has no Explain trace")
	}
	ex := alert.Explain
	if ex.Cause != alert.Cause {
		t.Errorf("trace cause %s, alert cause %s", ex.Cause, alert.Cause)
	}
	if ex.DetectedWindow != alert.DetectedWindow || ex.ReportedWindow != alert.ReportedWindow {
		t.Errorf("trace windows [%d,%d], alert [%d,%d]",
			ex.DetectedWindow, ex.ReportedWindow, alert.DetectedWindow, alert.ReportedWindow)
	}
	if len(ex.Steps) == 0 {
		t.Error("trace has no steps")
	} else if ex.Steps[0].Window != ex.DetectedWindow {
		t.Errorf("first step window %d, want opening window %d", ex.Steps[0].Window, ex.DetectedWindow)
	}
	snap := reg.SnapshotMap()
	violations := 0.0
	for _, name := range CauseNames() {
		violations += snap[metricViolations+`{cause="`+name+`"}`]
	}
	if violations == 0 {
		t.Error("violation counters all zero after a detection")
	}
	if snap[metricEpisodes] == 0 {
		t.Errorf("%s = 0 after a concluded episode", metricEpisodes)
	}
	if snap[metricNamed] == 0 {
		t.Errorf("%s = 0 after an alert named devices", metricNamed)
	}
}

// TestCauseJSONRoundTrip: the string form round-trips, and the legacy
// integer form (pre-observability checkpoints) still parses.
func TestCauseJSONRoundTrip(t *testing.T) {
	for _, k := range append(Causes(), CheckNone) {
		data, err := json.Marshal(k)
		if err != nil {
			t.Fatal(err)
		}
		if string(data) != `"`+k.String()+`"` {
			t.Errorf("marshal %v = %s", k, data)
		}
		var back CheckKind
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatal(err)
		}
		if back != k {
			t.Errorf("round trip %v -> %v", k, back)
		}
		var legacy CheckKind
		legacyData, _ := json.Marshal(int(k))
		if err := json.Unmarshal(legacyData, &legacy); err != nil {
			t.Fatal(err)
		}
		if legacy != k {
			t.Errorf("legacy int %d -> %v, want %v", int(k), legacy, k)
		}
	}
	var bad CheckKind
	if err := json.Unmarshal([]byte(`"bogus"`), &bad); err == nil {
		t.Error("unknown cause string parsed")
	}
	if err := json.Unmarshal([]byte(`99`), &bad); err == nil {
		t.Error("out-of-range cause int parsed")
	}
}

// TestCauseFamilies pins the family partition used as metric labels and
// report keys.
func TestCauseFamilies(t *testing.T) {
	want := map[CheckKind]string{
		CheckCorrelation: FamilyCorrelation,
		CheckG2G:         FamilyTransition,
		CheckG2A:         FamilyTransition,
		CheckA2G:         FamilyTransition,
		CheckLiveness:    FamilyLiveness,
		CheckTiming:      FamilyTiming,
	}
	for k, fam := range want {
		if got := k.Family(); got != fam {
			t.Errorf("%s family = %s, want %s", k, got, fam)
		}
	}
	names := CauseNames()
	if len(names) != len(Causes()) {
		t.Fatal("CauseNames and Causes disagree")
	}
	for i, c := range Causes() {
		if names[i] != c.String() {
			t.Errorf("CauseNames[%d] = %s, want %s", i, names[i], c)
		}
		parsed, err := ParseCheckKind(names[i])
		if err != nil || parsed != c {
			t.Errorf("ParseCheckKind(%s) = %v, %v", names[i], parsed, err)
		}
	}
}

// TestExplainClone: clones share nothing and preserve nil-vs-empty shape.
func TestExplainClone(t *testing.T) {
	var nilEx *Explain
	if nilEx.Clone() != nil {
		t.Error("nil Clone not nil")
	}
	ex := &Explain{
		Cause:          CheckG2G,
		DetectedWindow: 3,
		PrevGroup:      1,
		MainGroup:      2,
		MinDistance:    NoDistance,
	}
	ex.addStep(ExplainStep{Window: 3, Violation: CheckG2G, Suspects: []device.ID{1, 2}, Intersection: []device.ID{1}})
	c := ex.Clone()
	c.Steps[0].Suspects[0] = 99
	if ex.Steps[0].Suspects[0] == 99 {
		t.Error("clone aliases the original's suspects")
	}
	// Bound enforcement.
	for i := 0; i < maxExplainSteps+5; i++ {
		ex.addStep(ExplainStep{Window: 10 + i})
	}
	if len(ex.Steps) != maxExplainSteps {
		t.Errorf("steps = %d, want bound %d", len(ex.Steps), maxExplainSteps)
	}
	if ex.TruncatedSteps != 6 {
		t.Errorf("truncated = %d, want 6", ex.TruncatedSteps)
	}
}
