package core

import (
	"testing"
	"time"

	"repro/internal/device"
	"repro/internal/window"
)

// makeObs builds an observation for coreLayout with the given binary bits,
// numeric sample sets, and fired actuators.
func makeObs(l *window.Layout, idx int, bins []bool, nums [][]float64, acts ...device.ID) *window.Observation {
	o := l.NewObservation(idx)
	copy(o.Binary, bins)
	for j, s := range nums {
		o.Numeric[j] = s
	}
	o.Actuated = acts
	return o
}

// trainScenario produces a small alternating two-state world:
// even windows: motion-a fires, temp high; odd windows: motion-b fires,
// temp low. The bulb (ID 4) fires on every odd window.
func trainScenario(t testing.TB, l *window.Layout, n int) []*window.Observation {
	t.Helper()
	obs := make([]*window.Observation, 0, n)
	for i := 0; i < n; i++ {
		if i%2 == 0 {
			obs = append(obs, makeObs(l, i,
				[]bool{true, false},
				[][]float64{{30, 30, 30}, {50, 50, 50}}))
		} else {
			obs = append(obs, makeObs(l, i,
				[]bool{false, true},
				[][]float64{{10, 10, 10}, {50, 50, 50}},
				device.ID(4)))
		}
	}
	return obs
}

func TestTrainerPhaseOrderEnforced(t *testing.T) {
	l := coreLayout(t)
	tr := NewTrainer(l, time.Minute)
	o := l.NewObservation(0)
	if err := tr.Learn(o); err == nil {
		t.Error("Learn before FinishCalibration accepted")
	}
	if _, err := tr.Context(); err == nil {
		t.Error("Context before FinishCalibration accepted")
	}
	if err := tr.FinishCalibration(); err != nil {
		t.Fatal(err)
	}
	if err := tr.FinishCalibration(); err == nil {
		t.Error("double FinishCalibration accepted")
	}
	if err := tr.Calibrate(o); err == nil {
		t.Error("Calibrate after FinishCalibration accepted")
	}
	if _, err := tr.Context(); err == nil {
		t.Error("empty context accepted")
	}
}

func TestTrainerThresholdIsMean(t *testing.T) {
	l := coreLayout(t)
	tr := NewTrainer(l, time.Minute)
	// Temp samples across calibration: 10 and 30 -> mean 20.
	obsA := makeObs(l, 0, []bool{false, false}, [][]float64{{10}, {100}})
	obsB := makeObs(l, 1, []bool{false, false}, [][]float64{{30}, {100}})
	if err := tr.Calibrate(obsA); err != nil {
		t.Fatal(err)
	}
	if err := tr.Calibrate(obsB); err != nil {
		t.Fatal(err)
	}
	if err := tr.FinishCalibration(); err != nil {
		t.Fatal(err)
	}
	for _, o := range []*window.Observation{obsA, obsB} {
		if err := tr.Learn(o); err != nil {
			t.Fatal(err)
		}
	}
	ctx, err := tr.Context()
	if err != nil {
		t.Fatal(err)
	}
	thre := ctx.ValueThre()
	if thre[0] != 20 || thre[1] != 100 {
		t.Errorf("thresholds = %v, want [20 100]", thre)
	}
}

func TestTrainWindowsBuildsGroupsAndTransitions(t *testing.T) {
	l := coreLayout(t)
	obs := trainScenario(t, l, 40)
	ctx, err := TrainWindows(l, time.Minute, obs)
	if err != nil {
		t.Fatal(err)
	}
	// The scenario alternates between exactly two state sets.
	if ctx.NumGroups() != 2 {
		t.Fatalf("NumGroups = %d, want 2", ctx.NumGroups())
	}
	if !ctx.G2G().Possible(0, 1) || !ctx.G2G().Possible(1, 0) {
		t.Error("alternating G2G transitions missing")
	}
	if ctx.G2G().Possible(0, 0) || ctx.G2G().Possible(1, 1) {
		t.Error("self-loops should not exist in a strictly alternating scenario")
	}
	// The bulb is actuator slot 0 and fires on odd windows: G2A from the
	// even-window group (group 0), A2G into the even-window group.
	if !ctx.G2A().Possible(0, 0) {
		t.Error("G2A group0->bulb missing")
	}
	if ctx.G2A().Possible(1, 0) {
		t.Error("G2A group1->bulb should not exist")
	}
	if !ctx.A2G().Possible(0, 0) {
		t.Error("A2G bulb->group0 missing")
	}
	if ctx.A2G().Possible(0, 1) {
		t.Error("A2G bulb->group1 should not exist")
	}
}

func TestTrainerSelfLoopRecorded(t *testing.T) {
	l := coreLayout(t)
	// Three identical windows: one group with a self-loop.
	o := makeObs(l, 0, []bool{true, false}, [][]float64{{5}, {5}})
	ctx, err := TrainWindows(l, time.Minute, []*window.Observation{o, o, o})
	if err != nil {
		t.Fatal(err)
	}
	if ctx.NumGroups() != 1 {
		t.Fatalf("NumGroups = %d, want 1", ctx.NumGroups())
	}
	if !ctx.G2G().Possible(0, 0) {
		t.Error("self-loop not recorded")
	}
	if ctx.G2G().Count(0, 0) != 2 {
		t.Errorf("self-loop count = %d, want 2", ctx.G2G().Count(0, 0))
	}
}

func TestTrainerWindowsCount(t *testing.T) {
	l := coreLayout(t)
	tr := NewTrainer(l, time.Minute)
	if err := tr.FinishCalibration(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := tr.Learn(l.NewObservation(i)); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Windows() != 5 {
		t.Errorf("Windows = %d, want 5", tr.Windows())
	}
}

func TestTrainerCalibrateShapeMismatch(t *testing.T) {
	l := coreLayout(t)
	tr := NewTrainer(l, time.Minute)
	bad := &window.Observation{Numeric: make([][]float64, 5)}
	if err := tr.Calibrate(bad); err == nil {
		t.Error("mismatched observation accepted")
	}
}
