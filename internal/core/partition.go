package core

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/device"
	"repro/internal/window"
)

// Partitioned DICE implements the §VI multi-user mitigation: "a user may
// group the sensors that are spatially closely located and connect each
// group to DICE individually to restrain the growing number of
// combinations." Each partition (by default one per room) trains and
// detects independently, so the joint state space is the *sum* of the
// per-room spaces instead of their product. The trade-off the paper
// implies also holds here: cross-room context (G2G transitions between
// rooms) is lost, so sequence faults that only violate inter-room order go
// unseen by a partitioned deployment.

// Partition is one independently monitored device group.
type Partition struct {
	// Name labels the partition (the room name for PartitionByRoom).
	Name string
	// Devices are the partition's members, ascending.
	Devices []device.ID
}

// PartitionByRoom groups a registry's devices by their Room field,
// returning partitions sorted by name. Devices with an empty room land in
// a partition named "".
func PartitionByRoom(reg *device.Registry) []Partition {
	byRoom := make(map[string][]device.ID)
	for _, d := range reg.All() {
		byRoom[d.Room] = append(byRoom[d.Room], d.ID)
	}
	names := make([]string, 0, len(byRoom))
	for name := range byRoom {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]Partition, 0, len(names))
	for _, name := range names {
		out = append(out, Partition{Name: name, Devices: byRoom[name]})
	}
	return out
}

// subHome holds the projection machinery for one partition: a registry
// containing only its devices plus the slot remapping from the full
// layout.
type subHome struct {
	part    Partition
	layout  *window.Layout
	binMap  []int // sub binary slot -> full binary slot
	numMap  []int // sub numeric slot -> full numeric slot
	actKeep map[device.ID]device.ID
	fromSub map[device.ID]device.ID // sub device ID -> full device ID
}

func newSubHome(full *window.Layout, part Partition) (*subHome, error) {
	reg := device.NewRegistry()
	s := &subHome{
		part:    part,
		actKeep: make(map[device.ID]device.ID),
		fromSub: make(map[device.ID]device.ID),
	}
	for _, id := range part.Devices {
		d, err := full.Registry().Get(id)
		if err != nil {
			return nil, err
		}
		sub, err := reg.Add(d.Name, d.Kind, d.Type, d.Room)
		if err != nil {
			return nil, err
		}
		s.fromSub[sub] = id
		if d.Kind == device.Actuator {
			s.actKeep[id] = sub
		}
	}
	s.layout = window.NewLayout(reg)
	for slot := 0; slot < s.layout.NumBinary(); slot++ {
		fullID := s.fromSub[s.layout.BinaryID(slot)]
		fullSlot, ok := full.BinarySlot(fullID)
		if !ok {
			return nil, fmt.Errorf("core: partition device %d not binary in full layout", fullID)
		}
		s.binMap = append(s.binMap, fullSlot)
	}
	for slot := 0; slot < s.layout.NumNumeric(); slot++ {
		fullID := s.fromSub[s.layout.NumericID(slot)]
		fullSlot, ok := full.NumericSlot(fullID)
		if !ok {
			return nil, fmt.Errorf("core: partition device %d not numeric in full layout", fullID)
		}
		s.numMap = append(s.numMap, fullSlot)
	}
	return s, nil
}

// project extracts the partition's view of a full observation.
func (s *subHome) project(o *window.Observation) *window.Observation {
	out := s.layout.NewObservation(o.Index)
	for sub, fullSlot := range s.binMap {
		out.Binary[sub] = o.Binary[fullSlot]
	}
	for sub, fullSlot := range s.numMap {
		out.Numeric[sub] = o.Numeric[fullSlot]
	}
	for _, id := range o.Actuated {
		if sub, ok := s.actKeep[id]; ok {
			out.Actuated = append(out.Actuated, sub)
		}
	}
	return out
}

// PartitionedTrainer trains one DICE instance per partition from the same
// full-home observation stream.
type PartitionedTrainer struct {
	subs     []*subHome
	trainers []*Trainer
}

// NewPartitionedTrainer builds a trainer per partition over the full
// layout.
func NewPartitionedTrainer(full *window.Layout, parts []Partition, duration time.Duration) (*PartitionedTrainer, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("core: no partitions")
	}
	pt := &PartitionedTrainer{}
	for _, p := range parts {
		sub, err := newSubHome(full, p)
		if err != nil {
			return nil, err
		}
		pt.subs = append(pt.subs, sub)
		pt.trainers = append(pt.trainers, NewTrainer(sub.layout, duration))
	}
	return pt, nil
}

// Calibrate runs pass 1 on all partitions.
func (pt *PartitionedTrainer) Calibrate(o *window.Observation) error {
	for i, sub := range pt.subs {
		if err := pt.trainers[i].Calibrate(sub.project(o)); err != nil {
			return err
		}
	}
	return nil
}

// FinishCalibration freezes all partitions' thresholds.
func (pt *PartitionedTrainer) FinishCalibration() error {
	for _, t := range pt.trainers {
		if err := t.FinishCalibration(); err != nil {
			return err
		}
	}
	return nil
}

// Learn runs pass 2 on all partitions.
func (pt *PartitionedTrainer) Learn(o *window.Observation) error {
	for i, sub := range pt.subs {
		if err := pt.trainers[i].Learn(sub.project(o)); err != nil {
			return err
		}
	}
	return nil
}

// Detector builds the partitioned detector from the trained contexts.
func (pt *PartitionedTrainer) Detector(cfg Config) (*PartitionedDetector, error) {
	pd := &PartitionedDetector{}
	for i, t := range pt.trainers {
		ctx, err := t.Context()
		if err != nil {
			return nil, fmt.Errorf("core: partition %q: %w", pt.subs[i].part.Name, err)
		}
		det, err := New(ctx, WithConfig(cfg))
		if err != nil {
			return nil, err
		}
		pd.subs = append(pd.subs, pt.subs[i])
		pd.dets = append(pd.dets, det)
	}
	return pd, nil
}

// TotalGroups sums the per-partition group counts — the quantity the §VI
// mitigation keeps linear instead of multiplicative.
func (pt *PartitionedTrainer) TotalGroups() int {
	total := 0
	for _, t := range pt.trainers {
		if ctx, err := t.Context(); err == nil {
			total += ctx.NumGroups()
		}
	}
	return total
}

// PartitionedResult is one partition's finding for a window.
type PartitionedResult struct {
	// Partition names the sub-home that produced the result.
	Partition string
	// Result is the partition-local detector output with device IDs mapped
	// back to the full registry.
	Result Result
}

// PartitionedDetector runs the independent per-partition detectors over
// the full observation stream.
type PartitionedDetector struct {
	subs []*subHome
	dets []*Detector
}

// Process feeds a full-home window to every partition and returns the
// partitions that flagged something (detected or alerted). Device IDs in
// the results are translated back into the full registry's IDs.
func (pd *PartitionedDetector) Process(o *window.Observation) ([]PartitionedResult, error) {
	var out []PartitionedResult
	for i, sub := range pd.subs {
		res, err := pd.dets[i].Process(sub.project(o))
		if err != nil {
			return nil, err
		}
		if !res.Detected && res.Alert == nil {
			continue
		}
		res.Probable = sub.toFull(res.Probable)
		if len(res.Alerts) > 0 {
			remapped := make([]*Alert, 0, len(res.Alerts))
			for _, al := range res.Alerts {
				a := *al
				a.Devices = sub.toFull(a.Devices)
				remapped = append(remapped, &a)
			}
			res.Alerts = remapped
			res.Alert = remapped[0]
		} else if res.Alert != nil {
			a := *res.Alert
			a.Devices = sub.toFull(a.Devices)
			res.Alert = &a
		}
		out = append(out, PartitionedResult{Partition: sub.part.Name, Result: res})
	}
	return out, nil
}

// Reset clears all partition detectors.
func (pd *PartitionedDetector) Reset() {
	for _, d := range pd.dets {
		d.Reset()
	}
}

// toFull maps sub-registry device IDs back to full-registry IDs.
func (s *subHome) toFull(ids []device.ID) []device.ID {
	if len(ids) == 0 {
		return nil
	}
	out := make([]device.ID, 0, len(ids))
	for _, id := range ids {
		out = append(out, s.fromSub[id])
	}
	sortIDs(out)
	return out
}
