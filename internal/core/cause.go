package core

import (
	"encoding/json"
	"fmt"
)

// Cause is the canonical name for the alert-cause enum. CheckKind (in
// detector.go) remains the underlying type for compatibility; new code
// should say Cause.
type Cause = CheckKind

// Families of detection causes, used as metric labels and report keys so
// the strings cannot drift between the eval tables and /metrics.
const (
	FamilyCorrelation = "correlation"
	FamilyTransition  = "transition"
	FamilyLiveness    = "liveness"
	FamilyTiming      = "timing"
	FamilyGhost       = "ghost"
)

// Family buckets the cause into the check families: the correlation check,
// the structural transition check (G2G/G2A/A2G), the interval-band timing
// check, the gateway-level liveness tracker, or the ghost-device check.
func (k CheckKind) Family() string {
	switch {
	case k.IsTransition():
		return FamilyTransition
	case k == CheckLiveness:
		return FamilyLiveness
	case k == CheckTiming:
		return FamilyTiming
	case k == CheckGhost:
		return FamilyGhost
	default:
		return FamilyCorrelation
	}
}

// Causes returns every real violation cause in enum order (CheckNone is
// excluded). Metric vectors index counters by int(cause) - 1 against this
// slice.
func Causes() []CheckKind {
	return []CheckKind{CheckCorrelation, CheckG2G, CheckG2A, CheckA2G, CheckLiveness, CheckTiming, CheckGhost}
}

// CauseNames returns Causes rendered as strings, for metric label values.
func CauseNames() []string {
	cs := Causes()
	out := make([]string, len(cs))
	for i, c := range cs {
		out[i] = c.String()
	}
	return out
}

// ParseCheckKind is the inverse of String.
func ParseCheckKind(s string) (CheckKind, error) {
	switch s {
	case "none":
		return CheckNone, nil
	case "correlation":
		return CheckCorrelation, nil
	case "g2g":
		return CheckG2G, nil
	case "g2a":
		return CheckG2A, nil
	case "a2g":
		return CheckA2G, nil
	case "liveness":
		return CheckLiveness, nil
	case "timing":
		return CheckTiming, nil
	case "ghost":
		return CheckGhost, nil
	default:
		return CheckNone, fmt.Errorf("core: unknown cause %q", s)
	}
}

// MarshalJSON encodes the cause as its string name, so checkpoint files,
// alert payloads, and metric labels all carry the same vocabulary.
func (k CheckKind) MarshalJSON() ([]byte, error) {
	return json.Marshal(k.String())
}

// UnmarshalJSON accepts both the string form and the legacy integer form
// (pre-observability checkpoints encoded causes as raw ints), so old
// checkpoint files keep restoring.
func (k *CheckKind) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err == nil {
		parsed, perr := ParseCheckKind(s)
		if perr != nil {
			return perr
		}
		*k = parsed
		return nil
	}
	var n int
	if err := json.Unmarshal(data, &n); err != nil {
		return fmt.Errorf("core: cause must be a string or integer: %s", data)
	}
	if n < int(CheckNone) || n > int(CheckGhost) {
		return fmt.Errorf("core: cause %d out of range", n)
	}
	*k = CheckKind(n)
	return nil
}
