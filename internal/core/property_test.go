package core

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/bitvec"
	"repro/internal/device"
	"repro/internal/window"
)

// TestScanProperties checks the correlation-check scan invariants over
// arbitrary group catalogues and queries:
//   - a query equal to some group always yields that group as Main;
//   - every Probable group is within the candidate distance, OR no group
//     is and Probable equals the nearest set;
//   - Main is never listed in Probable.
func TestScanProperties(t *testing.T) {
	l := coreLayout(t)
	f := func(groupBits [][8]bool, queryBits [8]bool, maxDist uint8) bool {
		cb, err := NewContextBuilder(l, time.Minute, []float64{0, 0})
		if err != nil {
			return false
		}
		for _, gb := range groupBits {
			cb.AddGroup(bitvec.FromBools(gb[:]))
		}
		ctx, err := cb.Build()
		if err != nil {
			return false
		}
		if ctx.NumGroups() == 0 {
			return true
		}
		q := bitvec.FromBools(queryBits[:])
		dist := int(maxDist%4) + 1
		c := ctx.Scan(q, dist)

		if id, ok := ctx.GroupID(q); ok && c.Main != id {
			return false
		}
		for _, p := range c.Probable {
			if p == c.Main {
				return false
			}
			g, err := ctx.Group(p)
			if err != nil {
				return false
			}
			d := q.HammingDistance(g)
			if d == 0 {
				return false // an exact match must be Main, not Probable
			}
			if d > dist && d != c.MinDistance {
				return false // outside threshold and not a nearest fallback
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestBinarizerBitOwnership: every bit of every state set maps back to a
// registered sensor, and DevicesForBits is consistent with DeviceForBit.
func TestBinarizerBitOwnership(t *testing.T) {
	l := coreLayout(t)
	b := mustBinarizer(t, l, []float64{20, 100})
	f := func(bins [2]bool, s1, s2 []float64) bool {
		o := l.NewObservation(0)
		copy(o.Binary, bins[:])
		o.Numeric[0] = s1
		o.Numeric[1] = s2
		v, err := b.StateSet(o)
		if err != nil {
			return false
		}
		bits := v.Ones()
		devs, err := b.DevicesForBits(bits)
		if err != nil {
			return false
		}
		seen := make(map[device.ID]bool)
		for _, bit := range bits {
			id, err := b.DeviceForBit(bit)
			if err != nil {
				return false
			}
			seen[id] = true
		}
		if len(devs) != len(seen) {
			return false
		}
		for _, id := range devs {
			if !seen[id] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestTrainerDetectorClosure: any window sequence the trainer has learned
// is violation-free when replayed through the detector (detection is sound
// w.r.t. its own training data), as long as the replay starts from the
// stream head so the transition history matches.
func TestTrainerDetectorClosure(t *testing.T) {
	l := coreLayout(t)
	f := func(seq []uint8) bool {
		if len(seq) < 4 {
			return true
		}
		if len(seq) > 64 {
			seq = seq[:64]
		}
		obs := make([]*window.Observation, len(seq))
		for i, s := range seq {
			o := l.NewObservation(i)
			o.Binary[0] = s&1 != 0
			o.Binary[1] = s&2 != 0
			temp, light := 10.0, 50.0
			if s&4 != 0 {
				temp = 30
			}
			if s&8 != 0 {
				light = 200
			}
			o.Numeric[0] = []float64{temp, temp}
			o.Numeric[1] = []float64{light, light}
			obs[i] = o
		}
		ctx, err := TrainWindows(l, time.Minute, obs)
		if err != nil {
			return false
		}
		det, err := New(ctx)
		if err != nil {
			return false
		}
		for _, o := range obs {
			res, err := det.Process(o)
			if err != nil || res.Detected {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestAlertDevicesSortedProperty: alerts always list devices in ascending
// ID order (the documented contract).
func TestAlertDevicesSorted(t *testing.T) {
	l, ctx := trainAlternating(t)
	d := newTestDetector(t, ctx, Config{MaxFaults: 3})
	feedNormal(t, d, l, 0, 6)
	// Force a chaotic window implicating several devices.
	o := makeObs(l, 6, []bool{true, true}, [][]float64{{99, 1, 99}, {500, 1, 500}})
	res, err := d.Process(o)
	if err != nil {
		t.Fatal(err)
	}
	check := func(ids []device.ID) {
		for i := 1; i < len(ids); i++ {
			if ids[i] < ids[i-1] {
				t.Fatalf("devices not sorted: %v", ids)
			}
		}
	}
	check(res.Probable)
	if res.Alert != nil {
		check(res.Alert.Devices)
	}
}
