package core

import (
	"testing"
	"time"

	"repro/internal/device"
	"repro/internal/window"
)

// partLayout builds a two-room home for partition tests: each room has a
// motion sensor, sound and temperature sensors, and a bulb.
func partLayout(t testing.TB) *window.Layout {
	t.Helper()
	reg := device.NewRegistry()
	reg.MustAdd("motion-a", device.Binary, device.Motion, "roomA")    // 0
	reg.MustAdd("sound-a", device.Numeric, device.Sound, "roomA")     // 1
	reg.MustAdd("weight-a", device.Numeric, device.Weight, "roomA")   // 2
	reg.MustAdd("bulb-a", device.Actuator, device.SmartBulb, "roomA") // 3
	reg.MustAdd("motion-b", device.Binary, device.Motion, "roomB")    // 4
	reg.MustAdd("sound-b", device.Numeric, device.Sound, "roomB")     // 5
	reg.MustAdd("weight-b", device.Numeric, device.Weight, "roomB")   // 6
	reg.MustAdd("bulb-b", device.Actuator, device.SmartBulb, "roomB") // 7
	return window.NewLayout(reg)
}

// roomPhase returns the room's state for window w: 0 idle, 1 active
// (motion + noise), 2 restful (someone on the couch: weight only). Three
// states per room, cycling with different periods per room so every joint
// combination occurs: the joint space (3x3=9 groups) is visibly bigger
// than the partitioned sum (3+3=6 groups) — the §VI point.
func roomPhase(w, period int) int {
	if w < 0 {
		return 0
	}
	return (w / period) % 3
}

// partWindow: two independent residents, one per room, cycling through
// three states at different phases.
func partWindow(l *window.Layout, w int, deadMotionA bool) *window.Observation {
	o := l.NewObservation(w)
	phaseA := roomPhase(w, 20)
	phaseB := roomPhase(w, 9)
	soundA, weightA := 31.0, 2.0
	switch phaseA {
	case 1: // active
		if !deadMotionA {
			o.Binary[0] = true
		}
		soundA = 55
		if roomPhase(w-1, 20) != 1 {
			o.Actuated = append(o.Actuated, device.ID(3))
		}
	case 2: // restful
		weightA = 70
	}
	soundB, weightB := 31.0, 2.0
	switch phaseB {
	case 1:
		o.Binary[1] = true
		soundB = 55
		if roomPhase(w-1, 9) != 1 {
			o.Actuated = append(o.Actuated, device.ID(7))
		}
	case 2:
		weightB = 70
	}
	o.Numeric[0] = []float64{soundA, soundA, soundA}
	o.Numeric[1] = []float64{weightA, weightA, weightA}
	o.Numeric[2] = []float64{soundB, soundB, soundB}
	o.Numeric[3] = []float64{weightB, weightB, weightB}
	return o
}

func TestPartitionByRoom(t *testing.T) {
	l := partLayout(t)
	parts := PartitionByRoom(l.Registry())
	if len(parts) != 2 {
		t.Fatalf("partitions = %d, want 2", len(parts))
	}
	if parts[0].Name != "roomA" || parts[1].Name != "roomB" {
		t.Errorf("names = %q, %q", parts[0].Name, parts[1].Name)
	}
	if len(parts[0].Devices) != 4 || len(parts[1].Devices) != 4 {
		t.Errorf("device split: %v / %v", parts[0].Devices, parts[1].Devices)
	}
}

func trainPartitioned(t testing.TB, l *window.Layout) *PartitionedTrainer {
	t.Helper()
	pt, err := NewPartitionedTrainer(l, PartitionByRoom(l.Registry()), time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	const n = 12 * 60
	for w := 0; w < n; w++ {
		if err := pt.Calibrate(partWindow(l, w, false)); err != nil {
			t.Fatal(err)
		}
	}
	if err := pt.FinishCalibration(); err != nil {
		t.Fatal(err)
	}
	for w := 0; w < n; w++ {
		if err := pt.Learn(partWindow(l, w, false)); err != nil {
			t.Fatal(err)
		}
	}
	return pt
}

func TestPartitionedStateSpaceIsLinear(t *testing.T) {
	l := partLayout(t)
	pt := trainPartitioned(t, l)

	// A joint detector over the same data sees the PRODUCT of the two
	// rooms' states; the partitioned one sees their SUM.
	var obs []*window.Observation
	for w := 0; w < 12*60; w++ {
		obs = append(obs, partWindow(l, w, false))
	}
	joint, err := TrainWindows(l, time.Minute, obs)
	if err != nil {
		t.Fatal(err)
	}
	if pt.TotalGroups() >= joint.NumGroups() {
		t.Errorf("partitioned groups (%d) should undercut joint groups (%d): the §VI point",
			pt.TotalGroups(), joint.NumGroups())
	}
}

func TestPartitionedDetectionAndMapping(t *testing.T) {
	l := partLayout(t)
	pt := trainPartitioned(t, l)
	pd, err := pt.Detector(Config{})
	if err != nil {
		t.Fatal(err)
	}
	var alert *Alert
	alertPart := ""
	for w := 0; w < 3*60 && alert == nil; w++ {
		results, err := pd.Process(partWindow(l, w, w >= 30))
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range results {
			if r.Result.Alert != nil {
				alert = r.Result.Alert
				alertPart = r.Partition
			}
		}
	}
	if alert == nil {
		t.Fatal("partitioned detector missed the dead motion sensor")
	}
	if alertPart != "roomA" {
		t.Errorf("alert came from partition %q, want roomA", alertPart)
	}
	// Device IDs must be FULL-registry IDs (motion-a is 0 there).
	if len(alert.Devices) != 1 || alert.Devices[0] != 0 {
		t.Errorf("alert devices = %v, want [0] in full-registry IDs", alert.Devices)
	}
}

func TestPartitionedRoomBQuietDuringRoomAFault(t *testing.T) {
	l := partLayout(t)
	pt := trainPartitioned(t, l)
	pd, err := pt.Detector(Config{})
	if err != nil {
		t.Fatal(err)
	}
	for w := 0; w < 2*60; w++ {
		results, err := pd.Process(partWindow(l, w, w >= 30))
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range results {
			if r.Partition == "roomB" && r.Result.Detected {
				t.Fatalf("room B flagged a room-A fault at window %d", w)
			}
		}
	}
}

func TestPartitionedReset(t *testing.T) {
	l := partLayout(t)
	pt := trainPartitioned(t, l)
	pd, err := pt.Detector(Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Trigger a violation, then reset; a fresh clean window must not carry
	// episode state over.
	if _, err := pd.Process(partWindow(l, 0, true)); err != nil {
		t.Fatal(err)
	}
	pd.Reset()
	results, err := pd.Process(partWindow(l, 40, false))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.Result.Identifying {
			t.Error("episode survived Reset")
		}
	}
}

func TestNewPartitionedTrainerValidation(t *testing.T) {
	l := partLayout(t)
	if _, err := NewPartitionedTrainer(l, nil, time.Minute); err == nil {
		t.Error("empty partition list accepted")
	}
}
