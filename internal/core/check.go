package core

import (
	"repro/internal/bitvec"
	"repro/internal/device"
	"repro/internal/window"
)

// CheckInput is the per-window evidence the detector presents to each
// check: the raw observation, its binarized state set, and the catalogue
// scan result. The previous-window state (group, actuators, dwell, firing
// history) is read through the Detector the check receives.
type CheckInput struct {
	// Obs is the window under examination.
	Obs *window.Observation
	// Vec is the binarized state set (detector-owned scratch; checks must
	// not retain it past Run).
	Vec *bitvec.Vec
	// Cands is the catalogue scan result for Vec.
	Cands Candidates
}

// Finding is one check's verdict on a window: the cause it raises, the
// devices it suspects, and — for the timing check — the interval evidence
// behind the flag. A nil Finding means the check passed.
type Finding struct {
	// Cause is the violation the check raises.
	Cause Cause
	// Suspects is the window's probable-fault set, ascending by ID.
	Suspects []device.ID
	// Timing carries the gap/band evidence when Cause is CheckTiming.
	Timing *TimingEvidence
}

// Check is one named unit of the detection pipeline. The detector runs its
// checks in order on every non-episode window (and as the probe during
// identification episodes) and acts on the first non-nil Finding, so
// order encodes precedence: structure before pace, correlation before
// transitions. Run must not allocate on the no-finding path — the
// clean-window hot path stays allocation-free only if every check does.
//
// Checks are stateless values shared across windows; per-window state
// lives in the Detector they are handed.
type Check interface {
	// Name identifies the check in explain payloads and logs.
	Name() string
	// Cause is the violation kind the check raises.
	Cause() Cause
	// Run examines one window and returns a Finding, or nil to pass.
	Run(d *Detector, in CheckInput) *Finding
}

// DefaultChecks returns the standard pipeline in precedence order: the
// ghost-device check (an unknown device ID is unambiguous and cheap to
// test), then correlation, then the three structural transition cases of
// §3.3.2, then the interval-band timing check (which only structurally
// clean windows reach). The slice is freshly allocated; callers may
// reorder or extend it and pass the result to WithChecks.
func DefaultChecks() []Check {
	return []Check{
		GhostCheck{},
		CorrelationCheck{},
		G2GCheck{},
		G2ACheck{},
		A2GCheck{},
		TimingCheck{},
	}
}

// runChecks runs the pipeline and returns the first finding, or nil when
// every check passes.
func (d *Detector) runChecks(in CheckInput) *Finding {
	for _, c := range d.checks {
		if f := c.Run(d, in); f != nil {
			return f
		}
	}
	return nil
}

// GhostCheck flags actuator events attributed to a device ID the trained
// layout does not know: a spoofed or ghost device injecting traffic into
// the home (the Aegis-style device-spoofing attack). The structural checks
// silently skip unknown IDs — their ActuatorSlot lookup misses — so
// without this check a ghost device is invisible to the pipeline. The
// suspects are the ghost IDs themselves.
type GhostCheck struct{}

// Name implements Check.
func (GhostCheck) Name() string { return "ghost" }

// Cause implements Check.
func (GhostCheck) Cause() Cause { return CheckGhost }

// Run implements Check. The pass path is a slot lookup per actuated ID and
// never allocates.
func (GhostCheck) Run(d *Detector, in CheckInput) *Finding {
	layout := d.ctx.Layout()
	var ghosts []device.ID
	for _, act := range in.Obs.Actuated {
		if _, ok := layout.ActuatorSlot(act); !ok {
			ghosts = append(ghosts, act)
		}
	}
	if ghosts == nil {
		return nil
	}
	sortIDs(ghosts)
	return &Finding{Cause: CheckGhost, Suspects: ghosts}
}

// CorrelationCheck flags windows whose state set matches no known group —
// the paper's correlation violation. Suspects are the sensors owning the
// bits that differ from the nearest probable groups.
type CorrelationCheck struct{}

// Name implements Check.
func (CorrelationCheck) Name() string { return "correlation" }

// Cause implements Check.
func (CorrelationCheck) Cause() Cause { return CheckCorrelation }

// Run implements Check.
func (CorrelationCheck) Run(d *Detector, in CheckInput) *Finding {
	if in.Cands.Main != NoGroup {
		return nil
	}
	return &Finding{
		Cause:    CheckCorrelation,
		Suspects: d.correlationSuspects(in.Vec, in.Cands),
	}
}

// G2GCheck flags case 1 of §3.3.2: a group-to-group transition that was
// never observed during precomputation.
type G2GCheck struct{}

// Name implements Check.
func (G2GCheck) Name() string { return "g2g" }

// Cause implements Check.
func (G2GCheck) Cause() Cause { return CheckG2G }

// Run implements Check.
func (G2GCheck) Run(d *Detector, in CheckInput) *Finding {
	cur := in.Cands.Main
	if cur == NoGroup || d.prevGroup == NoGroup {
		return nil
	}
	if d.ctx.G2G().Possible(d.prevGroup, cur) {
		return nil
	}
	// Identification mirrors the correlation case, with the previous
	// group's successors as the probable groups.
	return &Finding{
		Cause:    CheckG2G,
		Suspects: d.diffSuspects(in.Vec, d.ctx.G2G().Successors(d.prevGroup)),
	}
}

// G2ACheck flags case 2 of §3.3.2: actuators firing now that the previous
// group never triggered.
type G2ACheck struct{}

// Name implements Check.
func (G2ACheck) Name() string { return "g2a" }

// Cause implements Check.
func (G2ACheck) Cause() Cause { return CheckG2A }

// Run implements Check.
func (G2ACheck) Run(d *Detector, in CheckInput) *Finding {
	if in.Cands.Main == NoGroup || d.prevGroup == NoGroup {
		return nil
	}
	var bad []device.ID
	for _, act := range in.Obs.Actuated {
		slot, ok := d.ctx.Layout().ActuatorSlot(act)
		if !ok {
			continue
		}
		if !d.ctx.G2A().Possible(d.prevGroup, slot) {
			bad = append(bad, act)
		}
	}
	if len(bad) == 0 {
		return nil
	}
	return &Finding{Cause: CheckG2A, Suspects: bad}
}

// A2GCheck flags case 3 of §3.3.2: the current group never follows an
// actuator that fired in the previous window. Suspects are that actuator
// plus the sensors separating the window from the groups the actuator does
// lead to.
type A2GCheck struct{}

// Name implements Check.
func (A2GCheck) Name() string { return "a2g" }

// Cause implements Check.
func (A2GCheck) Cause() Cause { return CheckA2G }

// Run implements Check.
func (A2GCheck) Run(d *Detector, in CheckInput) *Finding {
	cur := in.Cands.Main
	if cur == NoGroup {
		return nil
	}
	for _, act := range d.prevActs {
		slot, ok := d.ctx.Layout().ActuatorSlot(act)
		if !ok {
			continue
		}
		if !d.ctx.A2G().Known(slot) || d.ctx.A2G().Possible(slot, cur) {
			continue
		}
		suspects := d.diffSuspects(in.Vec, d.ctx.A2G().Successors(slot))
		suspects = append(suspects, act)
		sortIDs(suspects)
		return &Finding{Cause: CheckA2G, Suspects: suspects}
	}
	return nil
}
