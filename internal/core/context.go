package core

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"io"
	"math/bits"
	"sort"
	"time"

	"repro/internal/bitvec"
	"repro/internal/device"
	"repro/internal/markov"
	"repro/internal/window"
)

// NoGroup marks "no group" wherever a group ID is expected (an unmatched
// state set, or an unknown previous group).
const NoGroup = -1

// NoDistance is the Candidates.MinDistance sentinel for "no distance was
// computed": the catalogue is empty, or an exact match made the nearest-
// group search unnecessary.
const NoDistance = -1

// Context is an immutable snapshot of the extracted context: the group
// catalogue (unique sensor state sets) and the three transition matrices.
// Construction goes through a ContextBuilder (the Trainer's output, or a
// copy-on-write derivation of an earlier version via Derive); once built, a
// Context never changes, so the detector's scan path needs no locking and a
// published version can be swapped in atomically. Each version carries an
// epoch and a content fingerprint chained to its parent's, which is what
// lets a checkpoint pin — and a rollback verify — the exact context a
// detector was running against.
type Context struct {
	layout    *window.Layout
	duration  time.Duration
	valueThre []float64

	// Version identity: epoch 0 is the trained base; each adaptation
	// publishes epoch+1 with parent = the previous version's fingerprint.
	epoch       uint64
	parent      string
	fingerprint string

	groups   []*bitvec.Vec
	groupIDs map[string]int

	// Scan index, maintained incrementally by AddGroup so Scan needs no
	// locking: the catalogue is immutable once training ends, and the
	// real-time phase only reads. Group g's words live at
	// matrix[g*scanWords : (g+1)*scanWords] — one flat contiguous block
	// scanned word-at-a-time with popcount, instead of chasing per-group
	// vector pointers. popBuckets[p] lists (ascending) the groups with
	// popcount p; |pop(v)-pop(g)| <= dist(v,g), so a scan for candidates
	// within maxDist never touches buckets farther than maxDist from the
	// query's popcount.
	scanWords  int
	matrix     []uint64
	pops       []int
	popBuckets [][]int

	g2g *markov.Chain // group -> group
	g2a *markov.Chain // group -> actuator slot
	a2g *markov.Chain // actuator slot -> group

	// Interval sketches: per-edge inter-window gap histograms annotating
	// the three chains with *pace* (schema v2). All three are nil on a
	// structural-only (v1) context, which disables the timing check; the
	// trainer always records them, so freshly trained contexts are v2.
	g2gGaps *markov.SketchSet // group -> group dwell before the hop
	g2aGaps *markov.SketchSet // dwell in the group when the slot fires
	a2gGaps *markov.SketchSet // windows since the slot's last firing

	// Actuator effect statistics: for each actuator slot, how often each
	// sensor's bits rose in the same window as the actuator's activation.
	// Identification uses them to attribute a missing-effect anomaly to a
	// silent actuator instead of the sensor that reported it (§5.1.3:
	// actuator faults must be identified as the actuator).
	effectCounts map[int]map[device.ID]int64
	actCounts    map[int]int64
}

// newContext returns an empty mutable context for the layout; only the
// builder path reaches it.
func newContext(layout *window.Layout, duration time.Duration, valueThre []float64) (*Context, error) {
	if layout == nil {
		return nil, fmt.Errorf("core: nil layout")
	}
	if len(valueThre) != layout.NumNumeric() {
		return nil, fmt.Errorf("core: %d thresholds for %d numeric sensors",
			len(valueThre), layout.NumNumeric())
	}
	if duration <= 0 {
		duration = DefaultDuration
	}
	return &Context{
		layout:       layout,
		duration:     duration,
		valueThre:    append([]float64(nil), valueThre...),
		groupIDs:     make(map[string]int),
		g2g:          markov.NewChain(),
		g2a:          markov.NewChain(),
		a2g:          markov.NewChain(),
		effectCounts: make(map[int]map[device.ID]int64),
		actCounts:    make(map[int]int64),
	}, nil
}

// clone deep-copies every structure a builder may mutate; the layout and
// group vectors are immutable and shared.
func (c *Context) clone() *Context {
	out := &Context{
		layout:      c.layout,
		duration:    c.duration,
		valueThre:   c.valueThre,
		epoch:       c.epoch,
		parent:      c.parent,
		fingerprint: c.fingerprint,
		groups:      append([]*bitvec.Vec(nil), c.groups...),
		groupIDs:    make(map[string]int, len(c.groupIDs)),
		scanWords:   c.scanWords,
		matrix:      append([]uint64(nil), c.matrix...),
		pops:        append([]int(nil), c.pops...),
		popBuckets:  make([][]int, len(c.popBuckets)),
		g2g:         c.g2g.Clone(),
		g2a:         c.g2a.Clone(),
		a2g:         c.a2g.Clone(),
		g2gGaps:     c.g2gGaps.Clone(),
		g2aGaps:     c.g2aGaps.Clone(),
		a2gGaps:     c.a2gGaps.Clone(),
		effectCounts: make(map[int]map[device.ID]int64, len(c.effectCounts)),
		actCounts:    make(map[int]int64, len(c.actCounts)),
	}
	for k, v := range c.groupIDs {
		out.groupIDs[k] = v
	}
	for i, b := range c.popBuckets {
		out.popBuckets[i] = append([]int(nil), b...)
	}
	for slot, row := range c.effectCounts {
		dst := make(map[device.ID]int64, len(row))
		for id, n := range row {
			dst[id] = n
		}
		out.effectCounts[slot] = dst
	}
	for slot, n := range c.actCounts {
		out.actCounts[slot] = n
	}
	return out
}

// Layout returns the device layout.
func (c *Context) Layout() *window.Layout { return c.layout }

// Epoch returns the context's version number: 0 for a freshly trained (or
// legacy-loaded) context, +1 per published adaptation.
func (c *Context) Epoch() uint64 { return c.epoch }

// Fingerprint returns the version's content hash (16 hex digits over the
// canonical persisted payload). Two contexts with the same fingerprint are
// bit-identical for detection purposes.
func (c *Context) Fingerprint() string { return c.fingerprint }

// ParentFingerprint returns the fingerprint of the version this one was
// derived from ("" for epoch 0).
func (c *Context) ParentFingerprint() string { return c.parent }

// Duration returns the window duration the context was trained at.
func (c *Context) Duration() time.Duration { return c.duration }

// ValueThre returns a copy of the numeric binarization thresholds.
func (c *Context) ValueThre() []float64 { return append([]float64(nil), c.valueThre...) }

// NumGroups returns the number of distinct groups.
func (c *Context) NumGroups() int { return len(c.groups) }

// Group returns the state set of group id. The caller must not mutate it.
func (c *Context) Group(id int) (*bitvec.Vec, error) {
	if id < 0 || id >= len(c.groups) {
		return nil, fmt.Errorf("core: unknown group %d", id)
	}
	return c.groups[id], nil
}

// GroupID returns the ID of the group exactly matching v, or (NoGroup,
// false).
func (c *Context) GroupID(v *bitvec.Vec) (int, bool) {
	id, ok := c.groupIDs[v.Key()]
	if !ok {
		return NoGroup, false
	}
	return id, true
}

// addGroup interns v as a group, returning its (possibly pre-existing) ID.
// The context keeps its own copy and folds it into the scan index. Only the
// builder path reaches it: a published Context is immutable.
func (c *Context) addGroup(v *bitvec.Vec) int {
	key := v.Key()
	if id, ok := c.groupIDs[key]; ok {
		return id
	}
	id := len(c.groups)
	c.groups = append(c.groups, v.Clone())
	c.groupIDs[key] = id

	if id == 0 {
		c.scanWords = v.NumWords()
	}
	c.matrix = v.AppendWords(c.matrix)
	pop := v.PopCount()
	c.pops = append(c.pops, pop)
	for pop >= len(c.popBuckets) {
		c.popBuckets = append(c.popBuckets, nil)
	}
	c.popBuckets[pop] = append(c.popBuckets[pop], id)
	return id
}

// G2G returns the group-to-group transition chain. Callers must treat it
// as read-only; growing it goes through a ContextBuilder.
func (c *Context) G2G() *markov.Chain { return c.g2g }

// G2A returns the group-to-actuator transition chain (actuators are
// identified by their layout slot). Read-only, as with G2G.
func (c *Context) G2A() *markov.Chain { return c.g2a }

// A2G returns the actuator-to-group transition chain. Read-only, as with
// G2G.
func (c *Context) A2G() *markov.Chain { return c.a2g }

// ContextSchemaV1 and ContextSchemaV2 name the persisted context payload
// versions: v1 carries only the structural chains; v2 adds the per-edge
// interval sketches the timing check reads.
const (
	ContextSchemaV1 = 1
	ContextSchemaV2 = 2
)

// TimingCapable reports whether the context carries interval sketches —
// i.e. whether a detector scanning it can run the timing check. A context
// loaded from a v1 save is not timing-capable; retraining (or deriving
// from a v2 parent) is what upgrades it.
func (c *Context) TimingCapable() bool {
	return c.g2gGaps != nil && c.g2aGaps != nil && c.a2gGaps != nil
}

// SchemaVersion returns the payload schema the context would persist as:
// ContextSchemaV2 when timing-capable, ContextSchemaV1 otherwise.
func (c *Context) SchemaVersion() int {
	if c.TimingCapable() {
		return ContextSchemaV2
	}
	return ContextSchemaV1
}

// G2GGaps returns the G2G interval sketches (nil on a v1 context).
// Read-only, as with the chains.
func (c *Context) G2GGaps() *markov.SketchSet { return c.g2gGaps }

// G2AGaps returns the G2A interval sketches (nil on a v1 context).
func (c *Context) G2AGaps() *markov.SketchSet { return c.g2aGaps }

// A2GGaps returns the A2G interval sketches (nil on a v1 context).
func (c *Context) A2GGaps() *markov.SketchSet { return c.a2gGaps }

// observeEffect records that `devices` had state-set bits rise in the same
// window actuator slot `slot` activated. Only the builder path reaches it.
func (c *Context) observeEffect(slot int, devices []device.ID) {
	c.actCounts[slot]++
	row := c.effectCounts[slot]
	if row == nil {
		row = make(map[device.ID]int64)
		c.effectCounts[slot] = row
	}
	for _, id := range devices {
		row[id]++
	}
}

// ActivationCount returns how many activations of the slot were observed
// during precomputation.
func (c *Context) ActivationCount(slot int) int64 { return c.actCounts[slot] }

// EffectDevices returns the sensors that co-rose with at least the given
// fraction of the slot's activations, ascending by ID.
func (c *Context) EffectDevices(slot int, minFraction float64) []device.ID {
	total := c.actCounts[slot]
	if total == 0 {
		return nil
	}
	var out []device.ID
	for id, n := range c.effectCounts[slot] {
		if float64(n) >= minFraction*float64(total) {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ContextBuilder is the single mutation path for contexts. A fresh builder
// (NewContextBuilder) accumulates the precomputation phase; a derived one
// (Context.Derive) is the copy-on-write path adaptation uses — it starts
// from a deep working copy of the parent version, so the published parent
// stays frozen while the builder admits groups and decays counts. Build
// seals the current state into an immutable Context and leaves the builder
// usable: each subsequent Build publishes the next epoch, chained to the
// previous build's fingerprint.
//
// A builder is not safe for concurrent use; contexts it builds are.
type ContextBuilder struct {
	ctx *Context
}

// NewContextBuilder returns an empty builder for the layout: the start of
// the version chain (its first Build publishes epoch 0).
func NewContextBuilder(layout *window.Layout, duration time.Duration, valueThre []float64) (*ContextBuilder, error) {
	ctx, err := newContext(layout, duration, valueThre)
	if err != nil {
		return nil, err
	}
	return &ContextBuilder{ctx: ctx}, nil
}

// Derive returns a builder seeded with a deep working copy of c, set up to
// publish epoch c.Epoch()+1 with c as the parent. Group IDs are stable
// across derivation: the catalogue is append-only, so every ID valid in c
// names the same state set in every descendant version.
func (c *Context) Derive() *ContextBuilder {
	cl := c.clone()
	cl.epoch = c.epoch + 1
	cl.parent = c.fingerprint
	cl.fingerprint = ""
	return &ContextBuilder{ctx: cl}
}

// NumGroups returns the number of groups accumulated so far.
func (b *ContextBuilder) NumGroups() int { return b.ctx.NumGroups() }

// GroupID returns the ID of the group exactly matching v, or (NoGroup,
// false).
func (b *ContextBuilder) GroupID(v *bitvec.Vec) (int, bool) { return b.ctx.GroupID(v) }

// AddGroup interns v as a group, returning its (possibly pre-existing) ID.
func (b *ContextBuilder) AddGroup(v *bitvec.Vec) int { return b.ctx.addGroup(v) }

// ObserveG2G counts one group-to-group transition.
func (b *ContextBuilder) ObserveG2G(from, to int) { b.ctx.g2g.Observe(from, to) }

// ObserveG2A counts one group-to-actuator-slot transition.
func (b *ContextBuilder) ObserveG2A(from, slot int) { b.ctx.g2a.Observe(from, slot) }

// ObserveA2G counts one actuator-slot-to-group transition.
func (b *ContextBuilder) ObserveA2G(slot, to int) { b.ctx.a2g.Observe(slot, to) }

// ObserveEffect records that `devices` had state-set bits rise in the same
// window actuator slot `slot` activated.
func (b *ContextBuilder) ObserveEffect(slot int, devices []device.ID) {
	b.ctx.observeEffect(slot, devices)
}

// EnableTiming allocates the interval sketch sets, upgrading the context
// under construction to schema v2. Idempotent; the trainer calls it, and a
// builder derived from a v2 parent inherits the capability without it.
func (b *ContextBuilder) EnableTiming() {
	if b.ctx.g2gGaps == nil {
		b.ctx.g2gGaps = markov.NewSketchSet()
	}
	if b.ctx.g2aGaps == nil {
		b.ctx.g2aGaps = markov.NewSketchSet()
	}
	if b.ctx.a2gGaps == nil {
		b.ctx.a2gGaps = markov.NewSketchSet()
	}
}

// TimingCapable reports whether the context under construction carries
// interval sketches.
func (b *ContextBuilder) TimingCapable() bool { return b.ctx.TimingCapable() }

// ObserveG2GGap records the dwell (consecutive windows spent in `from`)
// preceding one observed from->to group hop. A no-op on a v1 builder, so a
// derivation of a structural-only context stays structural-only.
func (b *ContextBuilder) ObserveG2GGap(from, to, gap int) {
	if b.ctx.g2gGaps != nil {
		b.ctx.g2gGaps.Observe(from, to, gap)
	}
}

// ObserveG2AGap records the dwell in group `from` at the moment actuator
// slot `slot` fired. A no-op on a v1 builder.
func (b *ContextBuilder) ObserveG2AGap(from, slot, gap int) {
	if b.ctx.g2aGaps != nil {
		b.ctx.g2aGaps.Observe(from, slot, gap)
	}
}

// ObserveA2GGap records how many windows after actuator slot `slot` last
// fired the home entered group `to`. A no-op on a v1 builder.
func (b *ContextBuilder) ObserveA2GGap(slot, to, gap int) {
	if b.ctx.a2gGaps != nil {
		b.ctx.a2gGaps.Observe(slot, to, gap)
	}
}

// DecayChains ages all three transition matrices by factor (see
// markov.Chain.Decay), ages the interval sketches in lockstep, and returns
// the total number of pruned edges (chain cells plus emptied sketches).
func (b *ContextBuilder) DecayChains(factor float64) int {
	pruned := b.ctx.g2g.Decay(factor) + b.ctx.g2a.Decay(factor) + b.ctx.a2g.Decay(factor)
	pruned += b.ctx.g2gGaps.Decay(factor) + b.ctx.g2aGaps.Decay(factor) + b.ctx.a2gGaps.Decay(factor)
	return pruned
}

// Build seals the builder's current state into an immutable Context,
// computing its fingerprint. The builder remains usable and moves to the
// next epoch: further mutation followed by another Build publishes the
// child version of the one just returned.
func (b *ContextBuilder) Build() (*Context, error) {
	built := b.ctx
	fp, err := built.computeFingerprint()
	if err != nil {
		return nil, err
	}
	built.fingerprint = fp
	next := built.clone()
	next.epoch = built.epoch + 1
	next.parent = built.fingerprint
	next.fingerprint = ""
	b.ctx = next
	return built, nil
}

// Candidates holds the result of scanning the group catalogue for a live
// state set (Figure 3.5).
type Candidates struct {
	// Main is the exactly matching group, or NoGroup.
	Main int
	// Probable lists groups within the candidate distance, excluding Main,
	// ascending by (distance, id). When no group falls within the candidate
	// distance it falls back to the nearest groups overall (a documented
	// extension; identification needs something to diff against). It is nil
	// when Main is set: detection only consults Probable when no main group
	// exists, so the scan skips the work entirely on the exact-match path.
	Probable []int
	// MinDistance is the smallest nonzero distance encountered across the
	// whole catalogue, or NoDistance when it was not computed (the
	// catalogue is empty, or Main short-circuited the scan).
	MinDistance int
}

// scanCand pairs a group with its distance while collecting candidates.
type scanCand struct{ id, dist int }

// ScanScratch holds reusable buffers for Scan. A zero value is ready; each
// detector (or other serial caller) owns one so repeated scans allocate
// nothing. It must not be shared between concurrent scans — the Candidates
// returned through a scratch alias its memory and stay valid only until the
// next scan through the same scratch.
type ScanScratch struct {
	key      []byte
	within   []scanCand
	nearest  []int
	probable []int
}

// Scan compares v against the group catalogue. maxDist is the candidate
// distance. It is safe for concurrent use (the catalogue is read-only after
// training); this convenience wrapper allocates a fresh scratch per call,
// so hot paths should hold a ScanScratch and call ScanWith instead.
func (c *Context) Scan(v *bitvec.Vec, maxDist int) Candidates {
	return c.ScanWith(new(ScanScratch), v, maxDist)
}

// ScanWith is Scan with caller-owned scratch. The exact-match path is a
// single hash probe; the violation path walks popcount buckets outward from
// the query's popcount (groups whose set-bit count differs from the query's
// by more than the candidate distance can never be candidates) and
// early-abandons each group's word loop once the running distance exceeds
// the current bound.
func (c *Context) ScanWith(s *ScanScratch, v *bitvec.Vec, maxDist int) Candidates {
	res := Candidates{Main: NoGroup, MinDistance: NoDistance}
	if len(c.groups) == 0 {
		return res
	}

	// Exact-match short-circuit: the detector only needs Probable and
	// MinDistance when there is no main group.
	s.key = v.AppendKey(s.key[:0])
	if id, ok := c.groupIDs[string(s.key)]; ok {
		res.Main = id
		return res
	}

	// Violation path: find every group within maxDist, tracking the overall
	// nearest groups for the fallback.
	const maxInt = int(^uint(0) >> 1)
	qw := v.Words()
	pv := v.PopCount()
	minDist := maxInt
	within := s.within[:0]
	nearest := s.nearest[:0]

	scanBucket := func(bucket []int) {
		// A group is worth an exact distance only if it could be within
		// maxDist or could improve/tie the running minimum.
		limit := maxDist
		if minDist > limit {
			limit = minDist
		}
		for _, id := range bucket {
			base := id * c.scanWords
			d := 0
			for i, w := range qw {
				d += bits.OnesCount64(w ^ c.matrix[base+i])
				if d > limit {
					d = -1
					break
				}
			}
			if d < 0 {
				continue
			}
			if d < minDist {
				minDist = d
				nearest = nearest[:0]
				nearest = append(nearest, id)
				if limit = maxDist; minDist > limit {
					limit = minDist
				}
			} else if d == minDist {
				nearest = append(nearest, id)
			}
			if d <= maxDist {
				within = append(within, scanCand{id, d})
			}
		}
	}

	maxPop := len(c.popBuckets) - 1
	for delta := 0; ; delta++ {
		lo, hi := pv-delta, pv+delta
		if lo < 0 && hi > maxPop {
			break
		}
		// Buckets at popcount distance delta hold groups at Hamming distance
		// >= delta: once delta exceeds both the candidate distance and the
		// best minimum so far, no remaining bucket can contribute.
		if delta > maxDist && delta > minDist {
			break
		}
		if lo >= 0 && lo <= maxPop {
			scanBucket(c.popBuckets[lo])
		}
		if hi != lo && hi >= 0 && hi <= maxPop {
			scanBucket(c.popBuckets[hi])
		}
	}
	s.within, s.nearest = within, nearest

	if minDist != maxInt {
		res.MinDistance = minDist
	}
	if len(within) > 0 {
		sort.Slice(within, func(i, j int) bool {
			if within[i].dist != within[j].dist {
				return within[i].dist < within[j].dist
			}
			return within[i].id < within[j].id
		})
		s.probable = s.probable[:0]
		for _, w := range within {
			s.probable = append(s.probable, w.id)
		}
		res.Probable = s.probable
	} else if len(nearest) > 0 {
		// Ties at the minimum can arrive from different buckets out of id
		// order; restore the ascending order the contract promises.
		sort.Ints(nearest)
		res.Probable = nearest
	}
	return res
}

// ScanNaive is the retained O(groups) reference implementation of Scan: a
// straight loop over the catalogue with per-group Hamming distances. The
// equivalence tests and benchmarks hold the indexed Scan to this contract;
// it is not used by the real-time path.
func (c *Context) ScanNaive(v *bitvec.Vec, maxDist int) Candidates {
	res := Candidates{Main: NoGroup, MinDistance: NoDistance}
	if len(c.groups) == 0 {
		return res
	}
	const maxInt = int(^uint(0) >> 1)
	minDist := maxInt
	var within []scanCand
	var nearest []int
	for id, g := range c.groups {
		d := v.HammingDistance(g)
		if d == 0 {
			return Candidates{Main: id, MinDistance: NoDistance}
		}
		if d < minDist {
			minDist = d
			nearest = nearest[:0]
			nearest = append(nearest, id)
		} else if d == minDist {
			nearest = append(nearest, id)
		}
		if d <= maxDist {
			within = append(within, scanCand{id, d})
		}
	}
	if minDist != maxInt {
		res.MinDistance = minDist
	}
	if len(within) > 0 {
		sort.Slice(within, func(i, j int) bool {
			if within[i].dist != within[j].dist {
				return within[i].dist < within[j].dist
			}
			return within[i].id < within[j].id
		})
		res.Probable = make([]int, len(within))
		for i, w := range within {
			res.Probable[i] = w.id
		}
	} else {
		res.Probable = append([]int(nil), nearest...)
	}
	return res
}

// CorrelationDegree is the dataset health metric of Table 5.2: the average
// number of *active sensors* per group, where a numeric sensor counts as
// active when any of its three bits is set.
func (c *Context) CorrelationDegree() float64 {
	if len(c.groups) == 0 {
		return 0
	}
	nb := c.layout.NumBinary()
	total := 0
	for _, g := range c.groups {
		for i := 0; i < nb; i++ {
			if g.Get(i) {
				total++
			}
		}
		for j := 0; j < c.layout.NumNumeric(); j++ {
			base := nb + BitsPerNumeric*j
			if g.Get(base) || g.Get(base+1) || g.Get(base+2) {
				total++
			}
		}
	}
	return float64(total) / float64(len(c.groups))
}

// contextJSON is the persisted form of a context. Groups are bit strings;
// device names pin the layout so a context cannot be loaded against a
// different deployment. Epoch/Parent carry the version chain; Fingerprint
// is the content hash over this payload with the Fingerprint field empty.
type contextJSON struct {
	DurationMS  int64                       `json:"duration_ms"`
	Devices     []string                    `json:"devices"`
	ValueThre   []float64                   `json:"value_thre"`
	Epoch       uint64                      `json:"epoch,omitempty"`
	Parent      string                      `json:"parent,omitempty"`
	Fingerprint string                      `json:"fingerprint,omitempty"`
	Groups      []string                    `json:"groups"`
	G2G         *markov.Chain               `json:"g2g"`
	G2A         *markov.Chain               `json:"g2a"`
	A2G         *markov.Chain               `json:"a2g"`
	Effects     map[int]map[device.ID]int64 `json:"effects,omitempty"`
	ActCounts   map[int]int64               `json:"act_counts,omitempty"`
	// Schema and the interval sketches are the v2 additions. All four are
	// omitempty so a v1 context still produces byte-identical payloads —
	// and therefore the same fingerprint — as before the timing work.
	Schema  int               `json:"schema,omitempty"`
	G2GGaps *markov.SketchSet `json:"g2g_gaps,omitempty"`
	G2AGaps *markov.SketchSet `json:"g2a_gaps,omitempty"`
	A2GGaps *markov.SketchSet `json:"a2g_gaps,omitempty"`
}

// ErrCorruptContext marks a saved context whose checksum envelope or
// recorded fingerprint failed to verify — a torn write or bit rot, not a
// schema problem. Callers that can retrain should treat it as "no context"
// rather than restoring garbage.
var ErrCorruptContext = errors.New("core: corrupt context")

// ctxMagic opens the checksummed context envelope — the same DICECKS1
// framing gateway checkpoints use: magic + 4-byte little-endian CRC32-C of
// the JSON payload + the JSON. Files without the magic are pre-envelope
// plain JSON and still readable.
var ctxMagic = [8]byte{'D', 'I', 'C', 'E', 'C', 'K', 'S', '1'}

var ctxCRCTable = crc32.MakeTable(crc32.Castagnoli)

// payloadJSON renders the canonical persisted payload. encoding/json sorts
// map keys and the chains marshal their cells sorted, so identical content
// always yields identical bytes — the property the fingerprint rests on.
func (c *Context) payloadJSON(fingerprint string) ([]byte, error) {
	devs := c.layout.Registry().All()
	names := make([]string, len(devs))
	for i, d := range devs {
		names[i] = d.Name
	}
	groups := make([]string, len(c.groups))
	for i, g := range c.groups {
		groups[i] = g.String()
	}
	cj := contextJSON{
		DurationMS:  c.duration.Milliseconds(),
		Devices:     names,
		ValueThre:   c.valueThre,
		Epoch:       c.epoch,
		Parent:      c.parent,
		Fingerprint: fingerprint,
		Groups:      groups,
		G2G:         c.g2g,
		G2A:         c.g2a,
		A2G:         c.a2g,
		Effects:     c.effectCounts,
		ActCounts:   c.actCounts,
	}
	if c.TimingCapable() {
		cj.Schema = ContextSchemaV2
		cj.G2GGaps = c.g2gGaps
		cj.G2AGaps = c.g2aGaps
		cj.A2GGaps = c.a2gGaps
	}
	data, err := json.Marshal(cj)
	if err != nil {
		return nil, fmt.Errorf("core: encode context: %w", err)
	}
	return data, nil
}

// computeFingerprint hashes the canonical payload (fingerprint field empty)
// with 64-bit FNV-1a.
func (c *Context) computeFingerprint() (string, error) {
	data, err := c.payloadJSON("")
	if err != nil {
		return "", err
	}
	h := fnv.New64a()
	h.Write(data) //nolint:errcheck // hash.Write never fails
	return fmt.Sprintf("%016x", h.Sum64()), nil
}

// Save writes the context in the checksummed DICECKS1 envelope: magic +
// CRC32-C + canonical JSON payload (including epoch, parent, and
// fingerprint), so a torn write is detected at load time instead of
// poisoning a cold start.
func (c *Context) Save(w io.Writer) error {
	payload, err := c.payloadJSON(c.fingerprint)
	if err != nil {
		return fmt.Errorf("core: save context: %w", err)
	}
	var head [12]byte
	copy(head[:8], ctxMagic[:])
	binary.LittleEndian.PutUint32(head[8:12], crc32.Checksum(payload, ctxCRCTable))
	if _, err := w.Write(head[:]); err != nil {
		return fmt.Errorf("core: save context: %w", err)
	}
	if _, err := w.Write(payload); err != nil {
		return fmt.Errorf("core: save context: %w", err)
	}
	return nil
}

// LoadContext reads a context saved by Save and binds it to the layout,
// verifying that the device names match position for position. Enveloped
// files are CRC-checked (damage reports ErrCorruptContext); legacy
// plain-JSON saves still load, pinned to epoch 0.
func LoadContext(r io.Reader, layout *window.Layout) (*Context, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("core: load context: %w", err)
	}
	if len(data) >= 12 && bytes.Equal(data[:8], ctxMagic[:]) {
		want := binary.LittleEndian.Uint32(data[8:12])
		data = data[12:]
		if crc32.Checksum(data, ctxCRCTable) != want {
			return nil, fmt.Errorf("%w: envelope fails CRC", ErrCorruptContext)
		}
	}
	var cj contextJSON
	if err := json.Unmarshal(data, &cj); err != nil {
		return nil, fmt.Errorf("core: load context: %w", err)
	}
	devs := layout.Registry().All()
	if len(cj.Devices) != len(devs) {
		return nil, fmt.Errorf("core: context has %d devices, layout has %d", len(cj.Devices), len(devs))
	}
	for i, name := range cj.Devices {
		if devs[i].Name != name {
			return nil, fmt.Errorf("core: device %d is %q in context but %q in layout", i, name, devs[i].Name)
		}
	}
	ctx, err := newContext(layout, time.Duration(cj.DurationMS)*time.Millisecond, cj.ValueThre)
	if err != nil {
		return nil, err
	}
	wantBits := layout.NumBinary() + BitsPerNumeric*layout.NumNumeric()
	for i, gs := range cj.Groups {
		v, err := bitvec.Parse(gs)
		if err != nil {
			return nil, fmt.Errorf("core: group %d: %w", i, err)
		}
		if v.Len() != wantBits {
			return nil, fmt.Errorf("core: group %d has %d bits, layout wants %d", i, v.Len(), wantBits)
		}
		if got := ctx.addGroup(v); got != i {
			return nil, fmt.Errorf("core: duplicate group %d in saved context", i)
		}
	}
	if cj.G2G != nil {
		ctx.g2g = cj.G2G
	}
	if cj.G2A != nil {
		ctx.g2a = cj.G2A
	}
	if cj.A2G != nil {
		ctx.a2g = cj.A2G
	}
	if cj.Effects != nil {
		ctx.effectCounts = cj.Effects
	}
	if cj.ActCounts != nil {
		ctx.actCounts = cj.ActCounts
	}
	if cj.Schema > ContextSchemaV2 {
		return nil, fmt.Errorf("core: context schema %d is newer than this build supports (%d)", cj.Schema, ContextSchemaV2)
	}
	// v2 payloads restore the interval sketches; a v1 payload leaves all
	// three nil, yielding a loadable but timing-disabled context.
	if cj.G2GGaps != nil && cj.G2AGaps != nil && cj.A2GGaps != nil {
		ctx.g2gGaps = cj.G2GGaps
		ctx.g2aGaps = cj.G2AGaps
		ctx.a2gGaps = cj.A2GGaps
	}
	ctx.epoch = cj.Epoch
	ctx.parent = cj.Parent
	fp, err := ctx.computeFingerprint()
	if err != nil {
		return nil, err
	}
	if cj.Fingerprint != "" && cj.Fingerprint != fp {
		return nil, fmt.Errorf("%w: payload does not match recorded fingerprint %s", ErrCorruptContext, cj.Fingerprint)
	}
	ctx.fingerprint = fp
	return ctx, nil
}
