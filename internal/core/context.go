package core

import (
	"encoding/json"
	"fmt"
	"io"
	"math/bits"
	"sort"
	"time"

	"repro/internal/bitvec"
	"repro/internal/device"
	"repro/internal/markov"
	"repro/internal/window"
)

// NoGroup marks "no group" wherever a group ID is expected (an unmatched
// state set, or an unknown previous group).
const NoGroup = -1

// NoDistance is the Candidates.MinDistance sentinel for "no distance was
// computed": the catalogue is empty, or an exact match made the nearest-
// group search unnecessary.
const NoDistance = -1

// Context is the output of the precomputation phase: the group catalogue
// (unique sensor state sets) and the three transition matrices.
type Context struct {
	layout    *window.Layout
	duration  time.Duration
	valueThre []float64

	groups   []*bitvec.Vec
	groupIDs map[string]int

	// Scan index, maintained incrementally by AddGroup so Scan needs no
	// locking: the catalogue is immutable once training ends, and the
	// real-time phase only reads. Group g's words live at
	// matrix[g*scanWords : (g+1)*scanWords] — one flat contiguous block
	// scanned word-at-a-time with popcount, instead of chasing per-group
	// vector pointers. popBuckets[p] lists (ascending) the groups with
	// popcount p; |pop(v)-pop(g)| <= dist(v,g), so a scan for candidates
	// within maxDist never touches buckets farther than maxDist from the
	// query's popcount.
	scanWords  int
	matrix     []uint64
	pops       []int
	popBuckets [][]int

	g2g *markov.Chain // group -> group
	g2a *markov.Chain // group -> actuator slot
	a2g *markov.Chain // actuator slot -> group

	// Actuator effect statistics: for each actuator slot, how often each
	// sensor's bits rose in the same window as the actuator's activation.
	// Identification uses them to attribute a missing-effect anomaly to a
	// silent actuator instead of the sensor that reported it (§5.1.3:
	// actuator faults must be identified as the actuator).
	effectCounts map[int]map[device.ID]int64
	actCounts    map[int]int64
}

// NewContext returns an empty context for the layout.
func NewContext(layout *window.Layout, duration time.Duration, valueThre []float64) (*Context, error) {
	if layout == nil {
		return nil, fmt.Errorf("core: nil layout")
	}
	if len(valueThre) != layout.NumNumeric() {
		return nil, fmt.Errorf("core: %d thresholds for %d numeric sensors",
			len(valueThre), layout.NumNumeric())
	}
	if duration <= 0 {
		duration = DefaultDuration
	}
	return &Context{
		layout:       layout,
		duration:     duration,
		valueThre:    append([]float64(nil), valueThre...),
		groupIDs:     make(map[string]int),
		g2g:          markov.NewChain(),
		g2a:          markov.NewChain(),
		a2g:          markov.NewChain(),
		effectCounts: make(map[int]map[device.ID]int64),
		actCounts:    make(map[int]int64),
	}, nil
}

// Layout returns the device layout.
func (c *Context) Layout() *window.Layout { return c.layout }

// Duration returns the window duration the context was trained at.
func (c *Context) Duration() time.Duration { return c.duration }

// ValueThre returns a copy of the numeric binarization thresholds.
func (c *Context) ValueThre() []float64 { return append([]float64(nil), c.valueThre...) }

// NumGroups returns the number of distinct groups.
func (c *Context) NumGroups() int { return len(c.groups) }

// Group returns the state set of group id. The caller must not mutate it.
func (c *Context) Group(id int) (*bitvec.Vec, error) {
	if id < 0 || id >= len(c.groups) {
		return nil, fmt.Errorf("core: unknown group %d", id)
	}
	return c.groups[id], nil
}

// GroupID returns the ID of the group exactly matching v, or (NoGroup,
// false).
func (c *Context) GroupID(v *bitvec.Vec) (int, bool) {
	id, ok := c.groupIDs[v.Key()]
	if !ok {
		return NoGroup, false
	}
	return id, true
}

// AddGroup interns v as a group, returning its (possibly pre-existing) ID.
// The context keeps its own copy and folds it into the scan index.
func (c *Context) AddGroup(v *bitvec.Vec) int {
	key := v.Key()
	if id, ok := c.groupIDs[key]; ok {
		return id
	}
	id := len(c.groups)
	c.groups = append(c.groups, v.Clone())
	c.groupIDs[key] = id

	if id == 0 {
		c.scanWords = v.NumWords()
	}
	c.matrix = v.AppendWords(c.matrix)
	pop := v.PopCount()
	c.pops = append(c.pops, pop)
	for pop >= len(c.popBuckets) {
		c.popBuckets = append(c.popBuckets, nil)
	}
	c.popBuckets[pop] = append(c.popBuckets[pop], id)
	return id
}

// G2G returns the group-to-group transition chain.
func (c *Context) G2G() *markov.Chain { return c.g2g }

// G2A returns the group-to-actuator transition chain (actuators are
// identified by their layout slot).
func (c *Context) G2A() *markov.Chain { return c.g2a }

// A2G returns the actuator-to-group transition chain.
func (c *Context) A2G() *markov.Chain { return c.a2g }

// ObserveEffect records that `devices` had state-set bits rise in the same
// window actuator slot `slot` activated. The trainer calls it per
// activation.
func (c *Context) ObserveEffect(slot int, devices []device.ID) {
	c.actCounts[slot]++
	row := c.effectCounts[slot]
	if row == nil {
		row = make(map[device.ID]int64)
		c.effectCounts[slot] = row
	}
	for _, id := range devices {
		row[id]++
	}
}

// ActivationCount returns how many activations of the slot were observed
// during precomputation.
func (c *Context) ActivationCount(slot int) int64 { return c.actCounts[slot] }

// EffectDevices returns the sensors that co-rose with at least the given
// fraction of the slot's activations, ascending by ID.
func (c *Context) EffectDevices(slot int, minFraction float64) []device.ID {
	total := c.actCounts[slot]
	if total == 0 {
		return nil
	}
	var out []device.ID
	for id, n := range c.effectCounts[slot] {
		if float64(n) >= minFraction*float64(total) {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Candidates holds the result of scanning the group catalogue for a live
// state set (Figure 3.5).
type Candidates struct {
	// Main is the exactly matching group, or NoGroup.
	Main int
	// Probable lists groups within the candidate distance, excluding Main,
	// ascending by (distance, id). When no group falls within the candidate
	// distance it falls back to the nearest groups overall (a documented
	// extension; identification needs something to diff against). It is nil
	// when Main is set: detection only consults Probable when no main group
	// exists, so the scan skips the work entirely on the exact-match path.
	Probable []int
	// MinDistance is the smallest nonzero distance encountered across the
	// whole catalogue, or NoDistance when it was not computed (the
	// catalogue is empty, or Main short-circuited the scan).
	MinDistance int
}

// scanCand pairs a group with its distance while collecting candidates.
type scanCand struct{ id, dist int }

// ScanScratch holds reusable buffers for Scan. A zero value is ready; each
// detector (or other serial caller) owns one so repeated scans allocate
// nothing. It must not be shared between concurrent scans — the Candidates
// returned through a scratch alias its memory and stay valid only until the
// next scan through the same scratch.
type ScanScratch struct {
	key      []byte
	within   []scanCand
	nearest  []int
	probable []int
}

// Scan compares v against the group catalogue. maxDist is the candidate
// distance. It is safe for concurrent use (the catalogue is read-only after
// training); this convenience wrapper allocates a fresh scratch per call,
// so hot paths should hold a ScanScratch and call ScanWith instead.
func (c *Context) Scan(v *bitvec.Vec, maxDist int) Candidates {
	return c.ScanWith(new(ScanScratch), v, maxDist)
}

// ScanWith is Scan with caller-owned scratch. The exact-match path is a
// single hash probe; the violation path walks popcount buckets outward from
// the query's popcount (groups whose set-bit count differs from the query's
// by more than the candidate distance can never be candidates) and
// early-abandons each group's word loop once the running distance exceeds
// the current bound.
func (c *Context) ScanWith(s *ScanScratch, v *bitvec.Vec, maxDist int) Candidates {
	res := Candidates{Main: NoGroup, MinDistance: NoDistance}
	if len(c.groups) == 0 {
		return res
	}

	// Exact-match short-circuit: the detector only needs Probable and
	// MinDistance when there is no main group.
	s.key = v.AppendKey(s.key[:0])
	if id, ok := c.groupIDs[string(s.key)]; ok {
		res.Main = id
		return res
	}

	// Violation path: find every group within maxDist, tracking the overall
	// nearest groups for the fallback.
	const maxInt = int(^uint(0) >> 1)
	qw := v.Words()
	pv := v.PopCount()
	minDist := maxInt
	within := s.within[:0]
	nearest := s.nearest[:0]

	scanBucket := func(bucket []int) {
		// A group is worth an exact distance only if it could be within
		// maxDist or could improve/tie the running minimum.
		limit := maxDist
		if minDist > limit {
			limit = minDist
		}
		for _, id := range bucket {
			base := id * c.scanWords
			d := 0
			for i, w := range qw {
				d += bits.OnesCount64(w ^ c.matrix[base+i])
				if d > limit {
					d = -1
					break
				}
			}
			if d < 0 {
				continue
			}
			if d < minDist {
				minDist = d
				nearest = nearest[:0]
				nearest = append(nearest, id)
				if limit = maxDist; minDist > limit {
					limit = minDist
				}
			} else if d == minDist {
				nearest = append(nearest, id)
			}
			if d <= maxDist {
				within = append(within, scanCand{id, d})
			}
		}
	}

	maxPop := len(c.popBuckets) - 1
	for delta := 0; ; delta++ {
		lo, hi := pv-delta, pv+delta
		if lo < 0 && hi > maxPop {
			break
		}
		// Buckets at popcount distance delta hold groups at Hamming distance
		// >= delta: once delta exceeds both the candidate distance and the
		// best minimum so far, no remaining bucket can contribute.
		if delta > maxDist && delta > minDist {
			break
		}
		if lo >= 0 && lo <= maxPop {
			scanBucket(c.popBuckets[lo])
		}
		if hi != lo && hi >= 0 && hi <= maxPop {
			scanBucket(c.popBuckets[hi])
		}
	}
	s.within, s.nearest = within, nearest

	if minDist != maxInt {
		res.MinDistance = minDist
	}
	if len(within) > 0 {
		sort.Slice(within, func(i, j int) bool {
			if within[i].dist != within[j].dist {
				return within[i].dist < within[j].dist
			}
			return within[i].id < within[j].id
		})
		s.probable = s.probable[:0]
		for _, w := range within {
			s.probable = append(s.probable, w.id)
		}
		res.Probable = s.probable
	} else if len(nearest) > 0 {
		// Ties at the minimum can arrive from different buckets out of id
		// order; restore the ascending order the contract promises.
		sort.Ints(nearest)
		res.Probable = nearest
	}
	return res
}

// ScanNaive is the retained O(groups) reference implementation of Scan: a
// straight loop over the catalogue with per-group Hamming distances. The
// equivalence tests and benchmarks hold the indexed Scan to this contract;
// it is not used by the real-time path.
func (c *Context) ScanNaive(v *bitvec.Vec, maxDist int) Candidates {
	res := Candidates{Main: NoGroup, MinDistance: NoDistance}
	if len(c.groups) == 0 {
		return res
	}
	const maxInt = int(^uint(0) >> 1)
	minDist := maxInt
	var within []scanCand
	var nearest []int
	for id, g := range c.groups {
		d := v.HammingDistance(g)
		if d == 0 {
			return Candidates{Main: id, MinDistance: NoDistance}
		}
		if d < minDist {
			minDist = d
			nearest = nearest[:0]
			nearest = append(nearest, id)
		} else if d == minDist {
			nearest = append(nearest, id)
		}
		if d <= maxDist {
			within = append(within, scanCand{id, d})
		}
	}
	if minDist != maxInt {
		res.MinDistance = minDist
	}
	if len(within) > 0 {
		sort.Slice(within, func(i, j int) bool {
			if within[i].dist != within[j].dist {
				return within[i].dist < within[j].dist
			}
			return within[i].id < within[j].id
		})
		res.Probable = make([]int, len(within))
		for i, w := range within {
			res.Probable[i] = w.id
		}
	} else {
		res.Probable = append([]int(nil), nearest...)
	}
	return res
}

// CorrelationDegree is the dataset health metric of Table 5.2: the average
// number of *active sensors* per group, where a numeric sensor counts as
// active when any of its three bits is set.
func (c *Context) CorrelationDegree() float64 {
	if len(c.groups) == 0 {
		return 0
	}
	nb := c.layout.NumBinary()
	total := 0
	for _, g := range c.groups {
		for i := 0; i < nb; i++ {
			if g.Get(i) {
				total++
			}
		}
		for j := 0; j < c.layout.NumNumeric(); j++ {
			base := nb + BitsPerNumeric*j
			if g.Get(base) || g.Get(base+1) || g.Get(base+2) {
				total++
			}
		}
	}
	return float64(total) / float64(len(c.groups))
}

// contextJSON is the persisted form of a context. Groups are bit strings;
// device names pin the layout so a context cannot be loaded against a
// different deployment.
type contextJSON struct {
	DurationMS int64                       `json:"duration_ms"`
	Devices    []string                    `json:"devices"`
	ValueThre  []float64                   `json:"value_thre"`
	Groups     []string                    `json:"groups"`
	G2G        *markov.Chain               `json:"g2g"`
	G2A        *markov.Chain               `json:"g2a"`
	A2G        *markov.Chain               `json:"a2g"`
	Effects    map[int]map[device.ID]int64 `json:"effects,omitempty"`
	ActCounts  map[int]int64               `json:"act_counts,omitempty"`
}

// Save writes the context as JSON.
func (c *Context) Save(w io.Writer) error {
	devs := c.layout.Registry().All()
	names := make([]string, len(devs))
	for i, d := range devs {
		names[i] = d.Name
	}
	groups := make([]string, len(c.groups))
	for i, g := range c.groups {
		groups[i] = g.String()
	}
	enc := json.NewEncoder(w)
	if err := enc.Encode(contextJSON{
		DurationMS: c.duration.Milliseconds(),
		Devices:    names,
		ValueThre:  c.valueThre,
		Groups:     groups,
		G2G:        c.g2g,
		G2A:        c.g2a,
		A2G:        c.a2g,
		Effects:    c.effectCounts,
		ActCounts:  c.actCounts,
	}); err != nil {
		return fmt.Errorf("core: save context: %w", err)
	}
	return nil
}

// LoadContext reads a context saved by Save and binds it to the layout,
// verifying that the device names match position for position.
func LoadContext(r io.Reader, layout *window.Layout) (*Context, error) {
	var cj contextJSON
	if err := json.NewDecoder(r).Decode(&cj); err != nil {
		return nil, fmt.Errorf("core: load context: %w", err)
	}
	devs := layout.Registry().All()
	if len(cj.Devices) != len(devs) {
		return nil, fmt.Errorf("core: context has %d devices, layout has %d", len(cj.Devices), len(devs))
	}
	for i, name := range cj.Devices {
		if devs[i].Name != name {
			return nil, fmt.Errorf("core: device %d is %q in context but %q in layout", i, name, devs[i].Name)
		}
	}
	ctx, err := NewContext(layout, time.Duration(cj.DurationMS)*time.Millisecond, cj.ValueThre)
	if err != nil {
		return nil, err
	}
	wantBits := layout.NumBinary() + BitsPerNumeric*layout.NumNumeric()
	for i, gs := range cj.Groups {
		v, err := bitvec.Parse(gs)
		if err != nil {
			return nil, fmt.Errorf("core: group %d: %w", i, err)
		}
		if v.Len() != wantBits {
			return nil, fmt.Errorf("core: group %d has %d bits, layout wants %d", i, v.Len(), wantBits)
		}
		if got := ctx.AddGroup(v); got != i {
			return nil, fmt.Errorf("core: duplicate group %d in saved context", i)
		}
	}
	if cj.G2G != nil {
		ctx.g2g = cj.G2G
	}
	if cj.G2A != nil {
		ctx.g2a = cj.G2A
	}
	if cj.A2G != nil {
		ctx.a2g = cj.A2G
	}
	if cj.Effects != nil {
		ctx.effectCounts = cj.Effects
	}
	if cj.ActCounts != nil {
		ctx.actCounts = cj.ActCounts
	}
	return ctx, nil
}
