package core

import (
	"fmt"

	"repro/internal/bitvec"
	"repro/internal/device"
)

// AdapterState is the adapter's durable state for checkpointing: the
// candidate ledger and window clock, everything needed to resume admission
// exactly where it stopped. The published context itself is checkpointed
// separately (it travels with the detector as an epoch-pinned payload);
// reinforcement counts not yet published are deliberately excluded — they
// only matter through edges becoming possible, which happens via explicit
// admission, so a restore re-accumulates them without changing what the
// detector flags.
type AdapterState struct {
	// Windows is the adapter's window clock (drives the decay cadence).
	Windows uint64 `json:"windows"`
	// PrevGroup / PrevBits / PrevActs reconstruct the previous-window
	// transition anchor: the known group ID (NoGroup when the previous set
	// was unseen), the unseen set's bit string ("" otherwise), and the
	// actuators fired in the previous window.
	PrevGroup int         `json:"prev_group"`
	PrevBits  string      `json:"prev_bits,omitempty"`
	PrevActs  []device.ID `json:"prev_acts,omitempty"`
	// Pending and Edges are the candidate ledgers.
	Pending []PendingSetState  `json:"pending,omitempty"`
	Edges   []PendingEdgeState `json:"edges,omitempty"`
	// Lifetime counters, restored so telemetry survives recovery.
	GroupsAdmitted int64 `json:"groups_admitted"`
	EdgesAdmitted  int64 `json:"edges_admitted"`
	DecayedEdges   int64 `json:"decayed_edges"`
}

// PendingSetState serializes one candidate state set.
type PendingSetState struct {
	Bits        string           `json:"bits"`
	Count       int              `json:"count"`
	FirstWindow uint64           `json:"first_window"`
	Devices     []device.ID      `json:"devices,omitempty"`
	Preds       map[int]int64    `json:"preds,omitempty"`
	PredKeys    map[string]int64 `json:"pred_keys,omitempty"`
	Succs       map[int]int64    `json:"succs,omitempty"`
	PredActs    map[int]int64    `json:"pred_acts,omitempty"`
	ActsAfter   map[int]int64    `json:"acts_after,omitempty"`
}

// PendingEdgeState serializes one candidate transition.
type PendingEdgeState struct {
	Kind  CheckKind `json:"kind"`
	From  int       `json:"from"`
	To    int       `json:"to"`
	Count int       `json:"count"`
}

// ExportState snapshots the adapter's durable state.
func (a *Adapter) ExportState() *AdapterState {
	st := &AdapterState{
		Windows:        a.windows,
		PrevGroup:      a.prevID,
		PrevBits:       a.prevKey,
		PrevActs:       append([]device.ID(nil), a.prevActs...),
		GroupsAdmitted: a.groupsAdmitted,
		EdgesAdmitted:  a.edgesAdmitted,
		DecayedEdges:   a.decayedEdges,
	}
	var keys []string
	for key := range a.pending {
		keys = append(keys, key)
	}
	sortStrings(keys)
	for _, key := range keys {
		p := a.pending[key]
		st.Pending = append(st.Pending, PendingSetState{
			Bits:        key,
			Count:       p.count,
			FirstWindow: p.firstWindow,
			Devices:     append([]device.ID(nil), p.devices...),
			Preds:       copyIntCounts(p.preds),
			PredKeys:    copyStrCounts(p.predKeys),
			Succs:       copyIntCounts(p.succs),
			PredActs:    copyIntCounts(p.predActs),
			ActsAfter:   copyIntCounts(p.actsAfter),
		})
	}
	for k, n := range a.edges {
		st.Edges = append(st.Edges, PendingEdgeState{Kind: k.kind, From: k.from, To: k.to, Count: n})
	}
	sortEdgeStates(st.Edges)
	return st
}

// RestoreState replaces the adapter's durable state with a snapshot taken
// by ExportState. The adapter must have been built over the same context
// version the snapshot was taken against.
func (a *Adapter) RestoreState(st *AdapterState) error {
	if st == nil {
		return fmt.Errorf("core: nil adapter state")
	}
	pending := make(map[string]*pendingSet, len(st.Pending))
	for _, ps := range st.Pending {
		v, err := bitvec.Parse(ps.Bits)
		if err != nil {
			return fmt.Errorf("core: adapter state: %w", err)
		}
		if v.Len() != a.vec.Len() {
			return fmt.Errorf("core: adapter state: pending set has %d bits, layout wants %d", v.Len(), a.vec.Len())
		}
		pending[ps.Bits] = &pendingSet{
			vec:         v,
			count:       ps.Count,
			firstWindow: ps.FirstWindow,
			devices:     append([]device.ID(nil), ps.Devices...),
			preds:       orEmpty(copyIntCounts(ps.Preds)),
			predKeys:    orEmptyStr(copyStrCounts(ps.PredKeys)),
			succs:       orEmpty(copyIntCounts(ps.Succs)),
			predActs:    orEmpty(copyIntCounts(ps.PredActs)),
			actsAfter:   orEmpty(copyIntCounts(ps.ActsAfter)),
		}
	}
	edges := make(map[edgeKey]int, len(st.Edges))
	for _, es := range st.Edges {
		edges[edgeKey{es.Kind, es.From, es.To}] = es.Count
	}
	a.pending = pending
	a.edges = edges
	a.windows = st.Windows
	a.prevID = st.PrevGroup
	a.prevKey = st.PrevBits
	a.prevPend = pending[st.PrevBits]
	a.prevActs = append(a.prevActs[:0], st.PrevActs...)
	a.groupsAdmitted = st.GroupsAdmitted
	a.edgesAdmitted = st.EdgesAdmitted
	a.decayedEdges = st.DecayedEdges
	return nil
}

func copyIntCounts(m map[int]int64) map[int]int64 {
	if len(m) == 0 {
		return nil
	}
	out := make(map[int]int64, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func copyStrCounts(m map[string]int64) map[string]int64 {
	if len(m) == 0 {
		return nil
	}
	out := make(map[string]int64, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func orEmpty(m map[int]int64) map[int]int64 {
	if m == nil {
		return make(map[int]int64)
	}
	return m
}

func orEmptyStr(m map[string]int64) map[string]int64 {
	if m == nil {
		return make(map[string]int64)
	}
	return m
}

func sortEdgeStates(s []PendingEdgeState) {
	less := func(x, y PendingEdgeState) bool {
		if x.Kind != y.Kind {
			return x.Kind < y.Kind
		}
		if x.From != y.From {
			return x.From < y.From
		}
		return x.To < y.To
	}
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && less(s[j], s[j-1]); j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
