package core

import (
	"fmt"
	"time"

	"repro/internal/bitvec"
	"repro/internal/device"
	"repro/internal/stats"
	"repro/internal/window"
)

// Trainer runs the precomputation phase. It is a two-pass streaming design
// so the caller never has to hold a 300-hour recording in memory:
//
//	t := NewTrainer(layout, duration)
//	for each window o: t.Calibrate(o)   // pass 1: numeric sensor means
//	t.FinishCalibration()
//	for each window o: t.Learn(o)       // pass 2: groups + transitions
//	ctx := t.Context()
//
// Pass 1 computes each numeric sensor's mean, which becomes its valueThre
// (Eq. 3.4: "we set valueThre as the corresponding sensor's mean value of
// the data collected during the precomputation phase"). Pass 2 interns
// groups and counts G2G/G2A/A2G transitions. The paper assumes the
// precomputation data is fault-free; the trainer trusts its input likewise.
type Trainer struct {
	layout   *window.Layout
	duration time.Duration
	welford  []stats.Welford
	bin      *Binarizer
	cb       *ContextBuilder
	built    *Context

	prevGroup int
	prevVec   *bitvec.Vec
	prevActs  []device.ID
	windows   int

	// Timing statistics (schema v2): dwell counts the consecutive windows
	// spent in prevGroup as of the last learned window, and lastFire maps
	// each actuator slot to the window index of its most recent firing.
	// The detector maintains the same two quantities at run time, so a
	// replay of the training stream reproduces every recorded gap exactly.
	dwell    int
	lastFire []int
}

// NewTrainer returns a trainer for the layout at the given window duration.
func NewTrainer(layout *window.Layout, duration time.Duration) *Trainer {
	if duration <= 0 {
		duration = DefaultDuration
	}
	lastFire := make([]int, layout.NumActuators())
	for i := range lastFire {
		lastFire[i] = -1
	}
	return &Trainer{
		layout:    layout,
		duration:  duration,
		welford:   make([]stats.Welford, layout.NumNumeric()),
		prevGroup: NoGroup,
		lastFire:  lastFire,
	}
}

// Calibrate folds one window into the numeric-mean accumulators (pass 1).
func (t *Trainer) Calibrate(o *window.Observation) error {
	if t.bin != nil {
		return fmt.Errorf("core: Calibrate called after FinishCalibration")
	}
	if len(o.Numeric) != len(t.welford) {
		return fmt.Errorf("core: observation has %d numeric slots, layout wants %d",
			len(o.Numeric), len(t.welford))
	}
	for j, samples := range o.Numeric {
		for _, s := range samples {
			t.welford[j].Add(s)
		}
	}
	return nil
}

// FinishCalibration freezes the thresholds and prepares pass 2.
func (t *Trainer) FinishCalibration() error {
	if t.bin != nil {
		return fmt.Errorf("core: FinishCalibration called twice")
	}
	thre := make([]float64, len(t.welford))
	for j := range t.welford {
		thre[j] = t.welford[j].Mean()
	}
	bin, err := NewBinarizer(t.layout, thre)
	if err != nil {
		return err
	}
	cb, err := NewContextBuilder(t.layout, t.duration, thre)
	if err != nil {
		return err
	}
	cb.EnableTiming()
	t.bin = bin
	t.cb = cb
	return nil
}

// Learn folds one window into the group catalogue and transition matrices
// (pass 2). Windows must arrive in time order.
func (t *Trainer) Learn(o *window.Observation) error {
	if t.bin == nil {
		return fmt.Errorf("core: Learn called before FinishCalibration")
	}
	if t.built != nil {
		return fmt.Errorf("core: Learn called after Context")
	}
	v, err := t.bin.StateSet(o)
	if err != nil {
		return err
	}
	g := t.cb.AddGroup(v)
	if t.prevGroup != NoGroup {
		t.cb.ObserveG2G(t.prevGroup, g)
		// Timing: the dwell in the previous group is the G2G gap of a hop
		// (self-transitions extend the dwell instead of closing a gap) and
		// the G2A gap of every firing out of it.
		if g != t.prevGroup && t.dwell > 0 {
			t.cb.ObserveG2GGap(t.prevGroup, g, t.dwell)
		}
		// Case-2 statistics: group at t-1 -> actuators fired at t.
		for _, act := range o.Actuated {
			if slot, ok := t.layout.ActuatorSlot(act); ok {
				t.cb.ObserveG2A(t.prevGroup, slot)
				if t.dwell > 0 {
					t.cb.ObserveG2AGap(t.prevGroup, slot, t.dwell)
				}
			}
		}
		// Timing: entering a different group within the A2G horizon of a
		// firing records how long after that firing the hop landed.
		if g != t.prevGroup {
			for slot, at := range t.lastFire {
				if at < 0 {
					continue
				}
				if gap := o.Index - at; gap >= 1 && gap <= TimingA2GHorizon {
					t.cb.ObserveA2GGap(slot, g, gap)
				}
			}
		}
	}
	// Case-3 statistics: actuators fired at t-1 -> group at t.
	for _, act := range t.prevActs {
		if slot, ok := t.layout.ActuatorSlot(act); ok {
			t.cb.ObserveA2G(slot, g)
		}
	}
	// Effect statistics: sensors whose bits rose in the same window an
	// actuator activated (used to attribute missing effects to silent
	// actuators during identification).
	if len(o.Actuated) > 0 && t.prevVec != nil {
		var rising []int
		for _, bit := range v.Diff(t.prevVec) {
			if v.Get(bit) {
				rising = append(rising, bit)
			}
		}
		if len(rising) > 0 {
			devs, err := t.bin.DevicesForBits(rising)
			if err != nil {
				return err
			}
			for _, act := range o.Actuated {
				if slot, ok := t.layout.ActuatorSlot(act); ok {
					t.cb.ObserveEffect(slot, devs)
				}
			}
		}
	}
	if g == t.prevGroup {
		t.dwell++
	} else {
		t.dwell = 1
	}
	for _, act := range o.Actuated {
		if slot, ok := t.layout.ActuatorSlot(act); ok {
			t.lastFire[slot] = o.Index
		}
	}
	t.prevGroup = g
	t.prevVec = v
	t.prevActs = append(t.prevActs[:0], o.Actuated...)
	t.windows++
	return nil
}

// Windows returns the number of windows learned in pass 2.
func (t *Trainer) Windows() int { return t.windows }

// ValueThre returns the calibrated numeric thresholds. It errors before
// FinishCalibration.
func (t *Trainer) ValueThre() ([]float64, error) {
	if t.bin == nil {
		return nil, fmt.Errorf("core: ValueThre requested before FinishCalibration")
	}
	return t.bin.ValueThre(), nil
}

// Context seals and returns the trained context (epoch 0 of the version
// chain). It returns an error when no windows have been learned — an empty
// context cannot detect anything. Training ends here: the built snapshot is
// cached, repeated calls return it, and further Learn calls are rejected.
func (t *Trainer) Context() (*Context, error) {
	if t.built != nil {
		return t.built, nil
	}
	if t.cb == nil {
		return nil, fmt.Errorf("core: Context requested before FinishCalibration")
	}
	if t.cb.NumGroups() == 0 {
		return nil, fmt.Errorf("core: no windows learned; context is empty")
	}
	ctx, err := t.cb.Build()
	if err != nil {
		return nil, err
	}
	t.built = ctx
	return t.built, nil
}

// TrainWindows is the batch convenience: it runs both passes over a slice
// of windows and returns the context.
func TrainWindows(layout *window.Layout, duration time.Duration, obs []*window.Observation) (*Context, error) {
	t := NewTrainer(layout, duration)
	for _, o := range obs {
		if err := t.Calibrate(o); err != nil {
			return nil, err
		}
	}
	if err := t.FinishCalibration(); err != nil {
		return nil, err
	}
	for _, o := range obs {
		if err := t.Learn(o); err != nil {
			return nil, err
		}
	}
	return t.Context()
}
