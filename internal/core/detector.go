package core

import (
	"fmt"
	"time"

	"repro/internal/bitvec"
	"repro/internal/device"
	"repro/internal/window"
)

// CheckKind names which check flagged a window.
type CheckKind int

// Violation causes. CheckG2G/CheckG2A/CheckA2G are the three transition
// cases of §3.3.2.
const (
	CheckNone CheckKind = iota
	CheckCorrelation
	CheckG2G
	CheckG2A
	CheckA2G
	// CheckLiveness is raised by the gateway, not the detector: a device
	// exceeded its silence threshold — the paper's outage (fail-stop)
	// fault class surfacing at the transport layer before any window-level
	// evidence accumulates.
	CheckLiveness
	// CheckTiming flags a structurally valid transition whose inter-window
	// gap falls outside the interval band learned during training: the
	// right transition at the wrong pace (a delayed actuator, a slowly
	// degrading sensor). It sits after CheckLiveness so legacy integer
	// encodings of the earlier causes stay stable.
	CheckTiming
	// CheckGhost flags actuator events from a device ID the layout does
	// not know — a spoofed or ghost device injecting traffic into the
	// home. It sits last so legacy integer encodings of the earlier
	// causes stay stable.
	CheckGhost
)

// String returns the check name.
func (k CheckKind) String() string {
	switch k {
	case CheckNone:
		return "none"
	case CheckCorrelation:
		return "correlation"
	case CheckG2G:
		return "g2g"
	case CheckG2A:
		return "g2a"
	case CheckA2G:
		return "a2g"
	case CheckLiveness:
		return "liveness"
	case CheckTiming:
		return "timing"
	case CheckGhost:
		return "ghost"
	default:
		return fmt.Sprintf("CheckKind(%d)", int(k))
	}
}

// IsTransition reports whether the check is one of the transition cases.
func (k CheckKind) IsTransition() bool {
	return k == CheckG2G || k == CheckG2A || k == CheckA2G
}

// Timing carries per-stage wall-clock costs for one window (Figure 5.3).
type Timing struct {
	Binarize    time.Duration
	Correlation time.Duration
	Transition  time.Duration
	Identify    time.Duration
}

// Total returns the summed stage cost.
func (t Timing) Total() time.Duration {
	return t.Binarize + t.Correlation + t.Transition + t.Identify
}

// Alert is the final output of an identification episode: the devices DICE
// believes are faulty.
type Alert struct {
	// Devices are the probable faulty devices, ascending by ID.
	Devices []device.ID
	// Cause is the check that detected the episode.
	Cause CheckKind
	// DetectedWindow is the window index at which the violation was first
	// detected; ReportedWindow is when identification concluded. Their
	// difference (times the duration) is the identification latency on top
	// of detection.
	DetectedWindow int
	ReportedWindow int
	// EarlyWeight is true when a device weight (§VI) forced an early
	// report.
	EarlyWeight bool
	// Explain is the decision trace behind the alert: the opening window,
	// matched/probable groups, violated transition, and intersection
	// history. Nil only for episodes restored from a pre-trace checkpoint.
	Explain *Explain `json:"explain,omitempty"`
}

// Result describes what the detector concluded about one window.
type Result struct {
	// WindowIndex echoes the observation index.
	WindowIndex int
	// MainGroup is the exactly matching group, or NoGroup.
	MainGroup int
	// Violation is the check that flagged this window (CheckNone if clean).
	// During an identification episode only the episode-opening window
	// carries the original cause; probe windows report their own findings.
	Violation CheckKind
	// Detected is true exactly on a window that opens an episode (the
	// first violation, or — with MaxFaults > 1 — a violation disjoint from
	// every open episode that splits off a new one).
	Detected bool
	// Identifying is true while an episode is in progress (including the
	// opening and reporting windows).
	Identifying bool
	// Probable is the union of the open episodes' probable faulty devices,
	// ascending; nil outside episodes.
	Probable []device.ID
	// Alert is non-nil on a window that concludes an episode; when several
	// episodes conclude on the same window it is the first of Alerts.
	Alert *Alert
	// Alerts carries every episode concluded on this window, in episode
	// opening order. With MaxFaults == 1 it holds at most one entry
	// (identical to Alert).
	Alerts []*Alert
	// Timing carries the per-stage costs for this window.
	Timing Timing
}

// episode tracks one in-progress identification.
type episode struct {
	cause          CheckKind
	detectedWindow int
	intersection   map[device.ID]bool
	stalls         int
	normalStreak   int
	length         int
	// corroboration counts the informative windows that fed this episode,
	// including the opening one. Multi-fault mode requires a minimum
	// corroboration before alerting, so one-off transition glitches
	// (a benign occupancy change clipping a window) die quietly.
	corroboration int
	// missingEffect is true when the opening diff showed only bits that
	// were expected to be set but were not — the signature of a missing
	// actuator effect; surplusEffect is the inverse signature (only
	// unexpected extra bits), raised by a spuriously acting actuator.
	missingEffect bool
	surplusEffect bool
	// openingActs are the actuators that fired in the opening window.
	openingActs map[device.ID]bool
	// openingPrev is the previous-window group at the opening window.
	openingPrev int
	// firedActs collects every actuator that activated during the episode
	// (including the opening window); a silent-but-expected actuator whose
	// effect sensors make up the suspect set gets the blame.
	firedActs map[device.ID]bool
	// trace accumulates the Explain record reported with the alert.
	trace *Explain
}

// Detector runs the real-time phase against a trained context. It is not
// safe for concurrent use; the gateway serializes windows into it.
type Detector struct {
	cfg Config
	ctx *Context
	bin *Binarizer

	prevGroup int
	prevActs  []device.ID
	// eps holds the open identification episodes in opening order. With
	// MaxFaults == 1 (the paper's numThre default) at most one episode is
	// ever open and the behavior matches the single-fault pipeline bit for
	// bit; with MaxFaults > 1 up to MaxFaults episodes run concurrently,
	// each tracking one suspected fault.
	eps []*episode

	// checks is the ordered detection pipeline; DefaultChecks unless the
	// detector was built WithChecks.
	checks []Check

	// dwell counts the consecutive windows spent in prevGroup, and lastFire
	// maps each actuator slot to the window index of its most recent firing
	// (-1 = never). They mirror the trainer's bookkeeping exactly, so the
	// gaps the timing check measures are the gaps training recorded.
	dwell    int
	lastFire []int

	// stateVec and scanScratch are per-window scratch: the detector is
	// serial by contract, so one reusable state-set vector and one scan
	// scratch keep the clean-window hot path allocation-free.
	stateVec    *bitvec.Vec
	scanScratch ScanScratch

	// recentActs remembers which window each actuator last fired in, so an
	// episode can tell a dead actuator (no recent firing) from a faulty
	// effect sensor (the actuator fired recently; its effect reached the
	// home but was misreported).
	recentActs map[device.ID]int

	// lastDiffMissingOnly / lastDiffSurplusOnly report the direction of the
	// most recent diffSuspects call: only expected-but-absent bits, or only
	// present-but-unexpected bits.
	lastDiffMissingOnly bool
	lastDiffSurplusOnly bool

	// met holds the telemetry instruments (all nil when uninstrumented;
	// every update below is nil-safe and allocation-free).
	met detMetrics
}

// recentActWindows is how far back an actuator firing still counts as "the
// actuator acted recently" when attributing missing effects.
const recentActWindows = 15

// minCorroboration is how many informative windows a multi-fault episode
// needs before it may alert; episodes that run out of patience below it are
// dismissed without alerting. Single-fault mode (MaxFaults == 1) does not
// apply it, preserving the paper's original conclusion rule.
const minCorroboration = 2

// newDetector is the single construction path behind New.
func newDetector(ctx *Context, o detOptions) (*Detector, error) {
	if ctx == nil {
		return nil, fmt.Errorf("core: nil context")
	}
	if ctx.NumGroups() == 0 {
		return nil, fmt.Errorf("core: context has no groups")
	}
	bin, err := NewBinarizer(ctx.Layout(), ctx.ValueThre())
	if err != nil {
		return nil, err
	}
	checks := o.checks
	if checks == nil {
		checks = DefaultChecks()
	}
	lastFire := make([]int, ctx.Layout().NumActuators())
	for i := range lastFire {
		lastFire[i] = -1
	}
	return &Detector{
		cfg:        o.cfg.Normalize(),
		ctx:        ctx,
		bin:        bin,
		prevGroup:  NoGroup,
		checks:     checks,
		lastFire:   lastFire,
		stateVec:   bitvec.New(bin.NumBits()),
		recentActs: make(map[device.ID]int),
		met:        newDetMetrics(o.tel),
	}, nil
}

// Context returns the context snapshot the detector currently runs against.
func (d *Detector) Context() *Context { return d.ctx }

// SwapContext atomically replaces the context snapshot the detector scans
// against. The caller must serialize it with Process (the gateway holds its
// lock across both), and the new version must share the old one's layout,
// thresholds, and group-ID prefix — the guarantees Derive provides — so the
// detector's runtime state (previous group, episode references) stays valid
// across the swap. Between swaps the detector reads one immutable snapshot,
// which is what keeps the hot path allocation-free and bit-reproducible.
func (d *Detector) SwapContext(ctx *Context) error {
	if ctx == nil {
		return fmt.Errorf("core: swap to nil context")
	}
	if ctx == d.ctx {
		return nil
	}
	if ctx.Layout() != d.ctx.Layout() {
		return fmt.Errorf("core: swap to context with different layout")
	}
	if ctx.NumGroups() < d.ctx.NumGroups() {
		return fmt.Errorf("core: swap to context with %d groups, have %d (the catalogue is append-only)",
			ctx.NumGroups(), d.ctx.NumGroups())
	}
	for id := 0; id < d.ctx.NumGroups(); id++ {
		old, _ := d.ctx.Group(id)
		neu, err := ctx.Group(id)
		if err != nil || old.HammingDistance(neu) != 0 {
			return fmt.Errorf("core: swap renames group %d (IDs must be stable)", id)
		}
	}
	d.ctx = ctx
	return nil
}

// Reset clears all runtime state (previous group, actuators, any in-flight
// episodes). Use it between independent segments.
func (d *Detector) Reset() {
	d.prevGroup = NoGroup
	d.prevActs = d.prevActs[:0]
	d.eps = nil
	d.recentActs = make(map[device.ID]int)
	d.dwell = 0
	for i := range d.lastFire {
		d.lastFire[i] = -1
	}
}

// PrevGroup returns the group matched by the previous window, or NoGroup at
// the start of a segment. Exposed for custom checks.
func (d *Detector) PrevGroup() int { return d.prevGroup }

// DwellWindows returns how many consecutive windows the home has spent in
// the previous group. Exposed for custom checks.
func (d *Detector) DwellWindows() int { return d.dwell }

// LastFireWindow returns the window index of the given actuator slot's most
// recent firing, or -1 when it has not fired this segment. Exposed for
// custom checks.
func (d *Detector) LastFireWindow(slot int) int {
	if slot < 0 || slot >= len(d.lastFire) {
		return -1
	}
	return d.lastFire[slot]
}

// Identifying reports whether any identification episode is in progress.
func (d *Detector) Identifying() bool { return len(d.eps) > 0 }

// OpenEpisodes returns the number of identification episodes currently in
// flight (0 or 1 unless MaxFaults > 1).
func (d *Detector) OpenEpisodes() int { return len(d.eps) }

// Process runs one window through DICE and returns what was concluded.
// Windows must be fed in time order.
func (d *Detector) Process(o *window.Observation) (Result, error) {
	res := Result{WindowIndex: o.Index, MainGroup: NoGroup}

	t0 := time.Now()
	v := d.stateVec
	if err := d.bin.StateSetInto(v, o); err != nil {
		return Result{}, err
	}
	res.Timing.Binarize = time.Since(t0)

	t1 := time.Now()
	cands := d.ctx.ScanWith(&d.scanScratch, v, d.cfg.CandidateDistance)
	res.Timing.Correlation = time.Since(t1)
	res.MainGroup = cands.Main

	d.met.windows.Inc()
	d.met.scanSeconds.ObserveDuration(res.Timing.Correlation)
	if cands.Main != NoGroup {
		d.met.scanExact.Inc()
	} else {
		d.met.scanBucket.Inc()
		if cands.MinDistance != NoDistance {
			d.met.scanDistance.Observe(float64(cands.MinDistance))
		}
	}

	if len(d.eps) > 0 {
		// §3.4: during the repetition, skip the checks and go straight to
		// identification.
		d.identifyStep(v, cands, o, &res)
		d.advance(cands.Main, o)
		return res, nil
	}

	// The ordered check pipeline: one clock measurement around the whole
	// run, charged to the stage the window's shape implies (no main group
	// means the cost went into correlation-style identification; otherwise
	// it went into transition checking).
	t2 := time.Now()
	finding := d.runChecks(CheckInput{Obs: o, Vec: v, Cands: cands})
	cost := time.Since(t2)
	if cands.Main == NoGroup {
		res.Timing.Identify = cost
	} else {
		res.Timing.Transition = cost
	}

	if finding != nil {
		d.met.violation(finding.Cause)
		res.Violation = finding.Cause
		res.Detected = true
		res.Identifying = true
		ep := d.openEpisode(finding, cands, o)
		d.eps = append(d.eps[:0], ep)
		res.Probable = setToSlice(ep.intersection)
		ep.trace.addStep(ExplainStep{
			Window:       o.Index,
			Violation:    finding.Cause,
			Suspects:     finding.Suspects,
			Intersection: res.Probable,
		})
		d.concludeEpisodes(&res)
	}

	d.advance(cands.Main, o)
	return res, nil
}

// openEpisode builds a fresh episode from a finding. The caller appends it
// to d.eps and records the opening Explain step.
func (d *Detector) openEpisode(f *Finding, cands Candidates, o *window.Observation) *episode {
	fired := toSet(o.Actuated)
	for act, at := range d.recentActs {
		if o.Index-at <= recentActWindows {
			fired[act] = true
		}
	}
	return &episode{
		cause:          f.Cause,
		detectedWindow: o.Index,
		intersection:   toSet(f.Suspects),
		corroboration:  1,
		missingEffect:  d.lastDiffMissingOnly,
		surplusEffect:  d.lastDiffSurplusOnly,
		openingActs:    toSet(o.Actuated),
		openingPrev:    d.prevGroup,
		firedActs:      fired,
		trace: &Explain{
			Cause:          f.Cause,
			DetectedWindow: o.Index,
			PrevGroup:      d.prevGroup,
			MainGroup:      cands.Main,
			ProbableGroups: append([]int(nil), cands.Probable...),
			MinDistance:    cands.MinDistance,
			Timing:         f.Timing,
		},
	}
}

// advance rolls the previous-window state forward. The dwell/lastFire
// update matches the trainer's: a repeated known group extends the dwell, a
// hop (or the first known group) restarts it at 1, and an unknown state set
// clears it.
func (d *Detector) advance(mainGroup int, o *window.Observation) {
	switch {
	case mainGroup == NoGroup:
		d.dwell = 0
	case mainGroup == d.prevGroup:
		d.dwell++
	default:
		d.dwell = 1
	}
	d.prevGroup = mainGroup
	d.prevActs = append(d.prevActs[:0], o.Actuated...)
	for _, act := range o.Actuated {
		d.recentActs[act] = o.Index
		if slot, ok := d.ctx.Layout().ActuatorSlot(act); ok {
			d.lastFire[slot] = o.Index
		}
	}
	d.met.episodesOpen.Set(int64(len(d.eps)))
}

// correlationSuspects implements identification for a missing main group:
// diff the live state set against every probable group, prune probable
// groups unreachable from the previous group, and union the sensors owning
// the differing bits.
func (d *Detector) correlationSuspects(v *bitvec.Vec, cands Candidates) []device.ID {
	probable := cands.Probable
	if d.prevGroup != NoGroup && len(probable) > 1 {
		var reachable []int
		for _, g := range probable {
			if d.ctx.G2G().Possible(d.prevGroup, g) {
				reachable = append(reachable, g)
			}
		}
		// Keep the unfiltered list when the filter would leave nothing to
		// diff against.
		if len(reachable) > 0 {
			probable = reachable
		}
	}
	return d.diffSuspects(v, probable)
}

// diffSuspects unions the owning sensors of bits where v differs from the
// given groups, considering only the groups at minimal Hamming distance
// from v: the nearest groups are the best explanations of what the state
// set should have been, and diffing against farther candidates only pads
// the suspect set with unrelated devices.
func (d *Detector) diffSuspects(v *bitvec.Vec, groups []int) []device.ID {
	minDist := -1
	var nearest []int
	for _, gid := range groups {
		g, err := d.ctx.Group(gid)
		if err != nil {
			continue
		}
		dist := v.HammingDistance(g)
		switch {
		case minDist < 0 || dist < minDist:
			minDist = dist
			nearest = nearest[:0]
			nearest = append(nearest, gid)
		case dist == minDist:
			nearest = append(nearest, gid)
		}
	}
	seen := make(map[device.ID]bool)
	missingOnly := len(nearest) > 0
	surplusOnly := len(nearest) > 0
	for _, gid := range nearest {
		g, err := d.ctx.Group(gid)
		if err != nil {
			continue
		}
		for _, bit := range v.Diff(g) {
			if v.Get(bit) {
				// The live set has a bit the expected group lacks: surplus
				// activity.
				missingOnly = false
			} else {
				surplusOnly = false
			}
			if id, err := d.bin.DeviceForBit(bit); err == nil {
				seen[id] = true
			}
		}
	}
	d.lastDiffMissingOnly = missingOnly
	d.lastDiffSurplusOnly = surplusOnly
	return setToSlice(seen)
}

// identifyStep runs one repetition of the identification loop (§3.4): probe
// the window for its own probable-fault set, feed the open episodes, and
// conclude the ones whose intersection is small enough or whose patience
// ran out.
func (d *Detector) identifyStep(v *bitvec.Vec, cands Candidates, o *window.Observation, res *Result) {
	t0 := time.Now()
	defer func() { res.Timing.Identify = time.Since(t0) }()

	res.Identifying = true
	for _, ep := range d.eps {
		ep.length++
		for _, act := range o.Actuated {
			ep.firedActs[act] = true
		}
	}

	f := d.probe(v, cands, o)
	if f != nil {
		res.Violation = f.Cause
		d.met.violation(f.Cause)
	}

	if d.cfg.MaxFaults <= 1 {
		d.feedSingle(f, o, res)
	} else {
		d.feedMulti(f, cands, o, res)
		res.Probable = d.probableUnion()
	}
	d.concludeEpisodes(res)
}

// feedSingle is the single-fault identification step: intersect the one
// open episode with the window's suspect set, exactly as the paper's §3.4
// repetition describes.
func (d *Detector) feedSingle(f *Finding, o *window.Observation, res *Result) {
	ep := d.eps[0]
	if f != nil {
		ep.normalStreak = 0
		ep.corroboration++
		next := intersect(ep.intersection, toSet(f.Suspects))
		if len(next) == 0 {
			// Disjoint evidence: hold the current intersection, note the
			// stall.
			ep.stalls++
		} else {
			ep.intersection = next
		}
	} else {
		ep.normalStreak++
	}
	res.Probable = setToSlice(ep.intersection)
	if f != nil {
		ep.trace.addStep(ExplainStep{
			Window:       o.Index,
			Violation:    f.Cause,
			Suspects:     f.Suspects,
			Intersection: res.Probable,
		})
	}
}

// feedMulti routes one window's evidence across the concurrent episodes:
// every episode whose suspect pool overlaps the window's suspects narrows
// on it; evidence disjoint from all open episodes splits off a new episode
// (up to MaxFaults); and episodes whose pools collapse into one another
// merge. Episodes untouched by an informative window treat it as quiet —
// in a storm the faults take turns corrupting windows, and counting a
// rival fault's evidence as a stall would conclude everything prematurely.
func (d *Detector) feedMulti(f *Finding, cands Candidates, o *window.Observation, res *Result) {
	if f == nil {
		for _, ep := range d.eps {
			ep.normalStreak++
		}
		return
	}
	sus := toSet(f.Suspects)
	fed := false
	for _, ep := range d.eps {
		next := intersect(ep.intersection, sus)
		if len(next) == 0 {
			ep.normalStreak++
			continue
		}
		ep.intersection = next
		ep.normalStreak = 0
		ep.corroboration++
		ep.trace.addStep(ExplainStep{
			Window:       o.Index,
			Violation:    f.Cause,
			Suspects:     f.Suspects,
			Intersection: setToSlice(next),
		})
		fed = true
	}
	if !fed {
		if len(d.eps) < d.cfg.MaxFaults {
			// Split: evidence about a device set no open episode covers
			// opens a concurrent episode for the (suspected) second fault.
			ep := d.openEpisode(f, cands, o)
			d.eps = append(d.eps, ep)
			ep.trace.addStep(ExplainStep{
				Window:       o.Index,
				Violation:    f.Cause,
				Suspects:     f.Suspects,
				Intersection: setToSlice(ep.intersection),
			})
			d.met.concurrentEps.Inc()
			res.Detected = true
		} else {
			// At the episode cap, evidence nobody covers is a stall for
			// everyone: the numThre bound says it cannot be yet another
			// fault.
			for _, ep := range d.eps {
				ep.stalls++
			}
		}
	}
	d.mergeEpisodes(o.Index)
}

// mergeEpisodes folds together episodes whose suspect pools have collapsed
// into one another: when one pool is a subset of another the two episodes
// are explaining the same fault, so the earlier episode absorbs the later
// one, keeping the narrower pool and the combined corroboration.
func (d *Detector) mergeEpisodes(windowIdx int) {
	if len(d.eps) < 2 {
		return
	}
	for i := 0; i < len(d.eps); i++ {
		for j := i + 1; j < len(d.eps); {
			a, b := d.eps[i], d.eps[j]
			if !mapSubset(a.intersection, b.intersection) && !mapSubset(b.intersection, a.intersection) {
				j++
				continue
			}
			if len(b.intersection) < len(a.intersection) {
				a.intersection = b.intersection
			}
			a.corroboration += b.corroboration
			if b.stalls < a.stalls {
				a.stalls = b.stalls
			}
			if b.normalStreak < a.normalStreak {
				a.normalStreak = b.normalStreak
			}
			for act := range b.firedActs {
				a.firedActs[act] = true
			}
			a.trace.addStep(ExplainStep{
				Window:       windowIdx,
				Violation:    b.cause,
				Suspects:     setToSlice(b.intersection),
				Intersection: setToSlice(a.intersection),
			})
			d.eps = append(d.eps[:j], d.eps[j+1:]...)
		}
	}
}

// probableUnion returns the sorted union of every open episode's suspect
// pool.
func (d *Detector) probableUnion() []device.ID {
	switch len(d.eps) {
	case 0:
		return nil
	case 1:
		return setToSlice(d.eps[0].intersection)
	}
	u := make(map[device.ID]bool)
	for _, ep := range d.eps {
		for id := range ep.intersection {
			u[id] = true
		}
	}
	return setToSlice(u)
}

// probe evaluates a window during identification: the same check pipeline,
// but it never opens a new episode by itself — it only yields this window's
// finding. A clean window returns nil.
func (d *Detector) probe(v *bitvec.Vec, cands Candidates, o *window.Observation) *Finding {
	return d.runChecks(CheckInput{Obs: o, Vec: v, Cands: cands})
}

// concludeEpisodes closes every episode that is ready — intersection small
// enough, a weighted device demanding attention, or patience limits hit —
// and appends one Alert per concluded episode to the result.
func (d *Detector) concludeEpisodes(res *Result) {
	if len(d.eps) == 0 {
		return
	}
	keep := d.eps[:0]
	for _, ep := range d.eps {
		alert, done := d.concludeOne(ep, res)
		if !done {
			keep = append(keep, ep)
			continue
		}
		if alert != nil {
			res.Alerts = append(res.Alerts, alert)
		}
	}
	d.eps = keep
	if len(d.eps) == 0 {
		d.eps = nil
	}
	if len(res.Alerts) > 0 {
		res.Alert = res.Alerts[0]
	}
}

// concludeOne decides whether one episode is ready to close and, if so,
// builds its alert (nil when the episode is dismissed without alerting).
func (d *Detector) concludeOne(ep *episode, res *Result) (*Alert, bool) {
	multi := d.cfg.MaxFaults > 1
	size := len(ep.intersection)
	early := false
	if d.cfg.WeightAlarm > 0 {
		for id := range ep.intersection {
			if d.cfg.Weights[id] >= d.cfg.WeightAlarm {
				early = true
				break
			}
		}
	}
	var done bool
	if multi {
		// Per-fault alerts: narrow to a single device, with enough
		// corroborating windows to rule out a one-off glitch.
		done = size == 1 && ep.corroboration >= minCorroboration
	} else {
		done = size <= d.cfg.MaxFaults && size > 0
	}
	if !done && early {
		done = true
	}
	if !done && (ep.stalls >= d.cfg.MaxStalls ||
		ep.normalStreak >= d.cfg.IdentifyGiveUp ||
		ep.length >= d.cfg.MaxIdentifyWindows) {
		done = true
	}
	if !done {
		return nil, false
	}
	if multi && !early && ep.corroboration < minCorroboration {
		// A patience-concluded episode that only ever saw its opening
		// window: a transient (a benign occupancy shift, a splice edge),
		// not a fault. Dismiss without alerting.
		d.met.episodes.Inc()
		d.met.episodeLen.Observe(float64(res.WindowIndex - ep.detectedWindow + 1))
		d.met.suspects.Observe(float64(size))
		return nil, true
	}
	devices := setToSlice(ep.intersection)
	devices = d.attributeToActuator(ep, devices)
	if d.cfg.Attest != nil {
		devices = d.cfg.Attest(devices)
		sortIDs(devices)
		if len(devices) == 0 {
			// Every probable device attested healthy: dismiss the episode
			// without an alert.
			d.met.episodes.Inc()
			d.met.episodeLen.Observe(float64(res.WindowIndex - ep.detectedWindow + 1))
			d.met.suspects.Observe(float64(size))
			return nil, true
		}
	}
	trace := ep.trace
	if trace != nil {
		trace.ReportedWindow = res.WindowIndex
	}
	alert := &Alert{
		Devices:        devices,
		Cause:          ep.cause,
		DetectedWindow: ep.detectedWindow,
		ReportedWindow: res.WindowIndex,
		EarlyWeight:    early && size > 1,
		Explain:        trace,
	}
	d.met.episodes.Inc()
	d.met.episodeLen.Observe(float64(res.WindowIndex - ep.detectedWindow + 1))
	d.met.suspects.Observe(float64(size))
	d.met.named.Add(int64(len(devices)))
	d.met.alert(ep.cause)
	return alert, true
}

// attributeToActuator re-attributes a "missing effect" anomaly to a silent
// actuator: when every suspect sensor belongs to the trained effect set of
// an actuator that never activated during the episode, the actuator — not
// the sensors dutifully reporting its absence — is the probable faulty
// device. An actuator that did fire during the episode keeps the blame on
// the sensors (its effect reached the home; the sensor misreported it).
func (d *Detector) attributeToActuator(ep *episode, devices []device.ID) []device.ID {
	if len(devices) == 0 {
		return devices
	}
	if ep.cause != CheckCorrelation && ep.cause != CheckG2G {
		return devices
	}
	layout := d.ctx.Layout()
	bestSlot, bestSize := -1, 0
	for slot := 0; slot < layout.NumActuators(); slot++ {
		if d.ctx.ActivationCount(slot) < 5 {
			continue
		}
		id := layout.ActuatorID(slot)
		// Dead: the opening context is one the actuator is known to fire
		// from (G2A expectation), its effect is missing, and it stayed
		// silent — a faulty sensor fails this guard because its actuator
		// fired normally. Spurious: the actuator fired in the very window
		// surplus effect bits appeared without the occupancy bits that
		// accompany a legitimate activation (a legitimate firing lands in
		// a trained group and raises no violation at all).
		dead := ep.missingEffect && !ep.openingActs[id] &&
			ep.openingPrev != NoGroup && d.ctx.G2A().Possible(ep.openingPrev, slot)
		spurious := ep.surplusEffect && ep.openingActs[id]
		if !dead && !spurious {
			continue
		}
		effect := d.ctx.EffectDevices(slot, 0.6)
		if !subsetOf(devices, effect) {
			continue
		}
		if bestSlot < 0 || len(effect) < bestSize {
			bestSlot = slot
			bestSize = len(effect)
		}
	}
	if bestSlot < 0 {
		return devices
	}
	return []device.ID{layout.ActuatorID(bestSlot)}
}

// subsetOf reports whether every element of sub is in sorted super.
func subsetOf(sub, super []device.ID) bool {
	j := 0
	for _, s := range sub {
		for j < len(super) && super[j] < s {
			j++
		}
		if j >= len(super) || super[j] != s {
			return false
		}
	}
	return true
}

// mapSubset reports whether every key of sub is in super.
func mapSubset(sub, super map[device.ID]bool) bool {
	if len(sub) > len(super) {
		return false
	}
	for id := range sub {
		if !super[id] {
			return false
		}
	}
	return true
}

func toSet(ids []device.ID) map[device.ID]bool {
	m := make(map[device.ID]bool, len(ids))
	for _, id := range ids {
		m[id] = true
	}
	return m
}

func intersect(a, b map[device.ID]bool) map[device.ID]bool {
	out := make(map[device.ID]bool)
	for id := range a {
		if b[id] {
			out[id] = true
		}
	}
	return out
}

func setToSlice(m map[device.ID]bool) []device.ID {
	if len(m) == 0 {
		return nil
	}
	out := make([]device.ID, 0, len(m))
	for id := range m {
		out = append(out, id)
	}
	sortIDs(out)
	return out
}
