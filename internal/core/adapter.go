package core

import (
	"fmt"

	"repro/internal/bitvec"
	"repro/internal/device"
	"repro/internal/telemetry"
	"repro/internal/window"
)

// Adapter is the online half of context extraction: it watches the window
// stream the detector already processed and evolves the context behind it,
// publishing each adaptation as a new immutable Context version the caller
// swaps into the detector. It closes the gap the paper leaves open — a
// context frozen at precomputation time slowly turns behavioral drift (new
// routines, seasons) into false alarms.
//
// Three mechanisms, all conservative by default:
//
//   - Reinforcement: windows the detector confirmed non-faulty (no
//     violation, no episode in flight) re-observe their transitions into
//     the working copy, so ongoing behavior keeps its transition counts
//     topped up against decay.
//   - Admission: an unseen state set becomes a candidate group; after
//     sustained observation (AdmitAfter sightings with no concluded alert
//     explaining it as a fault) it is admitted to the catalogue together
//     with the transitions recorded at its sightings. Unseen transitions
//     between known groups earn admission the same way. A concluded alert
//     whose devices cover a candidate's differing sensors drops that
//     candidate: a stuck sensor repeats its unseen set just as stubbornly
//     as a new routine does, and the alert is the detector saying which of
//     the two it believes this is.
//   - Aging: every DecayEvery windows the working copy's transition counts
//     decay exponentially; edges that fade to zero are forgotten, so stale
//     behavior stops vouching for transitions the home no longer makes.
//
// The adapter never mutates a published Context: it works on a
// copy-on-write builder derived from the latest version and publishes by
// sealing it, so the detector always scans one frozen snapshot and the
// zero-alloc hot path is untouched between swaps.
//
// An Adapter is not safe for concurrent use; the gateway drives it under
// the same lock that serializes the detector.
type Adapter struct {
	cfg adapterOptions
	bin *Binarizer
	cur *Context
	cb  *ContextBuilder

	pending map[string]*pendingSet
	edges   map[edgeKey]int

	windows  uint64
	prevID   int
	prevKey  string
	prevPend *pendingSet
	prevActs []device.ID

	// dwell and lastFire mirror the trainer's gap bookkeeping so clean
	// windows reinforce the interval sketches with the same gaps a
	// retraining would record. No-ops against v1 (sketch-less) contexts.
	dwell    int
	lastFire []int

	groupsAdmitted int64
	edgesAdmitted  int64
	decayedEdges   int64

	// Per-window scratch: the adapter is serial by contract, so the clean
	// known-group path allocates nothing.
	vec     *bitvec.Vec
	keyBuf  []byte
	scratch ScanScratch

	met ctxMetrics
}

// Adaptation defaults; deliberately patient — admission must outlast any
// identification episode a genuine fault can sustain, so fault evidence is
// repeatedly explained (and its candidates dropped) before it could ever
// be admitted as drift.
const (
	// DefaultAdmitAfter is the sustained-observation threshold for new
	// groups and transitions (half an hour of repeats at the default
	// window duration).
	DefaultAdmitAfter = 30
	// DefaultDecayFactor halves transition counts each aging cycle.
	DefaultDecayFactor = 0.5
	// DefaultDecayEvery ages the transition counts once per week of
	// one-minute windows.
	DefaultDecayEvery = 7 * 24 * 60
	// DefaultMaxPending bounds the tracked candidate sets.
	DefaultMaxPending = 512
)

// AdapterOption configures an Adapter at construction.
type AdapterOption func(*adapterOptions)

type adapterOptions struct {
	admitAfter  int
	decayFactor float64
	decayEvery  int
	maxPending  int
	tel         *telemetry.Registry
}

// WithAdmitAfter sets how many sightings an unseen state set (or unseen
// transition) needs before it is admitted into the context.
func WithAdmitAfter(n int) AdapterOption {
	return func(o *adapterOptions) { o.admitAfter = n }
}

// WithDecay sets the exponential aging of transition counts: every `every`
// windows, counts are scaled by factor (0 < factor < 1) and edges that
// fade below one observation are forgotten. every <= 0 disables aging.
func WithDecay(factor float64, every int) AdapterOption {
	return func(o *adapterOptions) {
		o.decayFactor = factor
		o.decayEvery = every
	}
}

// WithMaxPending bounds how many candidate state sets are tracked at once;
// further unseen sets are ignored until a slot frees up.
func WithMaxPending(n int) AdapterOption {
	return func(o *adapterOptions) { o.maxPending = n }
}

// WithAdapterTelemetry instruments the adapter against the registry (the
// dice_ctx_* series). A nil registry leaves it uninstrumented.
func WithAdapterTelemetry(reg *telemetry.Registry) AdapterOption {
	return func(o *adapterOptions) { o.tel = reg }
}

// Context-adaptation metric names. The rollback counter lives with the
// checkpoint machinery that performs rollbacks (the gateway), under the
// same dice_ctx_ prefix.
const (
	metricCtxEpoch          = "dice_ctx_epoch"
	metricCtxGroupsAdmitted = "dice_ctx_groups_admitted_total"
	metricCtxEdgesAdmitted  = "dice_ctx_edges_admitted_total"
	metricCtxDecayedEdges   = "dice_ctx_decayed_edges_total"
)

// ctxMetrics holds the adapter's instruments; the zero value is the
// uninstrumented state (every method is nil-safe).
type ctxMetrics struct {
	epoch          *telemetry.Gauge
	groupsAdmitted *telemetry.Counter
	edgesAdmitted  *telemetry.Counter
	decayedEdges   *telemetry.Counter
}

func newCtxMetrics(reg *telemetry.Registry) ctxMetrics {
	if reg == nil {
		return ctxMetrics{}
	}
	return ctxMetrics{
		epoch:          reg.Gauge(metricCtxEpoch, "Context version the detector currently scans against."),
		groupsAdmitted: reg.Counter(metricCtxGroupsAdmitted, "Groups admitted to the catalogue by online adaptation."),
		edgesAdmitted:  reg.Counter(metricCtxEdgesAdmitted, "Transitions admitted by online adaptation."),
		decayedEdges:   reg.Counter(metricCtxDecayedEdges, "Transitions forgotten by exponential aging."),
	}
}

// pendingSet is one unseen state set under sustained observation, together
// with everything needed to wire it into the transition matrices if it is
// admitted: the transitions and actuator firings recorded at its sightings.
type pendingSet struct {
	vec         *bitvec.Vec
	count       int
	firstWindow uint64
	// devices own the bits where the set differs from its nearest known
	// groups at first sighting — the alert guard's evidence.
	devices []device.ID
	// preds / predKeys / succs record group transitions at sightings: known
	// predecessor IDs, pending predecessors (by bit-string key), and known
	// successors. predActs / actsAfter record actuator slots fired in the
	// window before / after a sighting (the A2G / G2A evidence).
	preds     map[int]int64
	predKeys  map[string]int64
	succs     map[int]int64
	predActs  map[int]int64
	actsAfter map[int]int64
}

// edgeKey identifies one unseen transition between known states.
type edgeKey struct {
	kind     CheckKind
	from, to int
}

// NewAdapter returns an adapter evolving the given context version.
func NewAdapter(base *Context, opts ...AdapterOption) (*Adapter, error) {
	if base == nil {
		return nil, fmt.Errorf("core: nil context")
	}
	if base.NumGroups() == 0 {
		return nil, fmt.Errorf("core: context has no groups")
	}
	o := adapterOptions{
		admitAfter:  DefaultAdmitAfter,
		decayFactor: DefaultDecayFactor,
		decayEvery:  DefaultDecayEvery,
		maxPending:  DefaultMaxPending,
	}
	for _, opt := range opts {
		opt(&o)
	}
	if o.admitAfter < 1 {
		o.admitAfter = 1
	}
	if o.maxPending < 1 {
		o.maxPending = 1
	}
	bin, err := NewBinarizer(base.Layout(), base.ValueThre())
	if err != nil {
		return nil, err
	}
	lastFire := make([]int, base.Layout().NumActuators())
	for i := range lastFire {
		lastFire[i] = -1
	}
	a := &Adapter{
		cfg:      o,
		bin:      bin,
		cur:      base,
		cb:       base.Derive(),
		pending:  make(map[string]*pendingSet),
		edges:    make(map[edgeKey]int),
		prevID:   NoGroup,
		lastFire: lastFire,
		vec:      bitvec.New(bin.NumBits()),
		met:      newCtxMetrics(o.tel),
	}
	a.met.epoch.Set(int64(base.Epoch()))
	return a, nil
}

// Context returns the latest published version.
func (a *Adapter) Context() *Context { return a.cur }

// Epoch returns the latest published version's epoch.
func (a *Adapter) Epoch() uint64 { return a.cur.Epoch() }

// GroupsAdmitted returns the total groups admitted over the adapter's life.
func (a *Adapter) GroupsAdmitted() int64 { return a.groupsAdmitted }

// EdgesAdmitted returns the total transitions admitted.
func (a *Adapter) EdgesAdmitted() int64 { return a.edgesAdmitted }

// DecayedEdges returns the total transitions forgotten by aging.
func (a *Adapter) DecayedEdges() int64 { return a.decayedEdges }

// PendingSets returns the number of candidate state sets under observation.
func (a *Adapter) PendingSets() int { return len(a.pending) }

// Windows returns how many windows the adapter has observed.
func (a *Adapter) Windows() uint64 { return a.windows }

// Observe feeds the adapter one window together with the Result the
// detector concluded for it. Windows must arrive in time order, matching
// what the detector processed. When the accumulated evidence publishes a
// new context version it is returned (the caller swaps it into the
// detector); otherwise the first return is nil.
func (a *Adapter) Observe(o *window.Observation, res Result) (*Context, error) {
	a.windows++
	if err := a.bin.StateSetInto(a.vec, o); err != nil {
		return nil, err
	}
	a.keyBuf = a.vec.AppendKey(a.keyBuf[:0])
	curID, known := a.cur.groupIDs[string(a.keyBuf)]

	clean := res.Violation == CheckNone && !res.Identifying && res.Alert == nil
	var curPend *pendingSet
	var curKey string

	switch {
	case known && clean:
		a.reinforce(curID, o)
	case known:
		// A known set on a violating window: the transition was unseen.
		a.observeEdges(curID, o)
		if a.prevPend != nil {
			a.prevPend.succs[curID]++
		}
	default:
		curKey = a.vec.String()
		curPend = a.observePending(curKey, o)
	}

	if len(res.Alerts) > 0 {
		for _, al := range res.Alerts {
			a.dropCovered(al.Devices)
		}
		if curPend != nil && a.pending[curKey] == nil {
			curPend = nil // the alerts just explained this window's set away
		}
	} else if res.Alert != nil {
		a.dropCovered(res.Alert.Devices)
		if curPend != nil && a.pending[curKey] == nil {
			curPend = nil // the alert just explained this window's set away
		}
	}

	published, err := a.maybeAdapt()
	if err != nil {
		return nil, err
	}

	// Roll the previous-window state forward (dwell/lastFire exactly as the
	// detector's advance does, so both sides measure the same gaps).
	switch {
	case !known:
		a.dwell = 0
	case curID == a.prevID:
		a.dwell++
	default:
		a.dwell = 1
	}
	for _, act := range o.Actuated {
		if slot, ok := a.cur.layout.ActuatorSlot(act); ok {
			a.lastFire[slot] = o.Index
		}
	}
	if known {
		a.prevID, a.prevKey, a.prevPend = curID, "", nil
	} else {
		a.prevID, a.prevKey, a.prevPend = NoGroup, curKey, curPend
	}
	a.prevActs = append(a.prevActs[:0], o.Actuated...)
	return published, nil
}

// reinforce re-observes a confirmed-clean window's transitions into the
// working copy, keeping live behavior's counts topped up against decay.
// Allocation-free at steady state: every touched row already exists (the
// window was clean, so its transitions were already possible).
func (a *Adapter) reinforce(curID int, o *window.Observation) {
	layout := a.cur.layout
	if a.prevID != NoGroup {
		a.cb.ObserveG2G(a.prevID, curID)
		if curID != a.prevID && a.dwell > 0 {
			a.cb.ObserveG2GGap(a.prevID, curID, a.dwell)
		}
		for _, act := range o.Actuated {
			if slot, ok := layout.ActuatorSlot(act); ok {
				a.cb.ObserveG2A(a.prevID, slot)
				if a.dwell > 0 {
					a.cb.ObserveG2AGap(a.prevID, slot, a.dwell)
				}
			}
		}
		if curID != a.prevID {
			for slot, at := range a.lastFire {
				if at < 0 {
					continue
				}
				if gap := o.Index - at; gap >= 1 && gap <= TimingA2GHorizon {
					a.cb.ObserveA2GGap(slot, curID, gap)
				}
			}
		}
	}
	for _, act := range a.prevActs {
		if slot, ok := layout.ActuatorSlot(act); ok {
			a.cb.ObserveA2G(slot, curID)
		}
	}
}

// observeEdges records unseen transitions between known states for
// sustained-observation admission, mirroring the detector's three checks
// against the working copy's chains.
func (a *Adapter) observeEdges(curID int, o *window.Observation) {
	layout := a.cur.layout
	wc := a.cb.ctx
	if a.prevID != NoGroup {
		if !wc.g2g.Possible(a.prevID, curID) {
			a.edges[edgeKey{CheckG2G, a.prevID, curID}]++
		}
		for _, act := range o.Actuated {
			if slot, ok := layout.ActuatorSlot(act); ok && !wc.g2a.Possible(a.prevID, slot) {
				a.edges[edgeKey{CheckG2A, a.prevID, slot}]++
			}
		}
	}
	for _, act := range a.prevActs {
		slot, ok := layout.ActuatorSlot(act)
		if !ok {
			continue
		}
		if wc.a2g.Known(slot) && !wc.a2g.Possible(slot, curID) {
			a.edges[edgeKey{CheckA2G, slot, curID}]++
		}
	}
}

// observePending credits (or starts) the candidate entry for an unseen
// state set and records this sighting's transition evidence.
func (a *Adapter) observePending(key string, o *window.Observation) *pendingSet {
	p := a.pending[key]
	if p == nil {
		if len(a.pending) >= a.cfg.maxPending {
			return nil
		}
		p = &pendingSet{
			vec:         a.vec.Clone(),
			firstWindow: a.windows,
			devices:     a.diffDevices(a.vec),
			preds:       make(map[int]int64),
			predKeys:    make(map[string]int64),
			succs:       make(map[int]int64),
			predActs:    make(map[int]int64),
			actsAfter:   make(map[int]int64),
		}
		a.pending[key] = p
	}
	p.count++
	if a.prevID != NoGroup {
		p.preds[a.prevID]++
	} else if a.prevKey != "" {
		p.predKeys[a.prevKey]++
	}
	layout := a.cur.layout
	for _, act := range a.prevActs {
		if slot, ok := layout.ActuatorSlot(act); ok {
			p.predActs[slot]++
		}
	}
	if a.prevPend != nil {
		for _, act := range o.Actuated {
			if slot, ok := layout.ActuatorSlot(act); ok {
				a.prevPend.actsAfter[slot]++
			}
		}
	}
	return p
}

// diffDevices returns the devices owning the bits where v differs from its
// nearest known groups — the candidate's "what would have to be faulty for
// this to be noise" set, compared against alert devices by the guard.
func (a *Adapter) diffDevices(v *bitvec.Vec) []device.ID {
	cands := a.cur.ScanWith(&a.scratch, v, 3)
	seen := make(map[device.ID]bool)
	for _, gid := range cands.Probable {
		g, err := a.cur.Group(gid)
		if err != nil {
			continue
		}
		for _, bit := range v.Diff(g) {
			if id, err := a.bin.DeviceForBit(bit); err == nil {
				seen[id] = true
			}
		}
	}
	return setToSlice(seen)
}

// dropCovered implements the alert guard: a concluded alert naming devices
// D drops every candidate set whose differing sensors are a subset of D —
// the detector just explained that evidence as a fault, so it must not
// earn drift credit. Pending transitions deliberately survive alerts: an
// admitted edge legitimizes exactly one (from, to) pair, so a fault that
// repeats one identical transition from one consistent prior state is
// indistinguishable from a changed automation rule — while any broader
// fault (a spurious actuator fires from many groups, a noisy sensor lands
// in many sets) spreads its evidence too thin for any single edge to reach
// the admission threshold, and keeps tripping the edges it has not earned.
func (a *Adapter) dropCovered(alerted []device.ID) {
	for key, p := range a.pending {
		if len(p.devices) > 0 && subsetOf(p.devices, alerted) {
			delete(a.pending, key)
		}
	}
}

// maybeAdapt runs admission and aging, publishing a new version when
// either changed detection-relevant state.
func (a *Adapter) maybeAdapt() (*Context, error) {
	dirty := a.admit()
	if a.cfg.decayEvery > 0 && a.windows%uint64(a.cfg.decayEvery) == 0 {
		if pruned := a.cb.DecayChains(a.cfg.decayFactor); pruned > 0 {
			a.decayedEdges += int64(pruned)
			a.met.decayedEdges.Add(int64(pruned))
			dirty = true
		}
	}
	if !dirty {
		return nil, nil
	}
	ctx, err := a.cb.Build()
	if err != nil {
		return nil, err
	}
	a.cur = ctx
	a.met.epoch.Set(int64(ctx.Epoch()))
	return ctx, nil
}

// admit moves candidates past the sustained-observation threshold into the
// working copy: groups first (so co-admitted predecessors resolve), then
// their recorded transitions, then standalone transition candidates.
func (a *Adapter) admit() bool {
	var keys []string
	for key, p := range a.pending {
		if p.count >= a.cfg.admitAfter {
			keys = append(keys, key)
		}
	}
	dirty := false
	if len(keys) > 0 {
		sortStrings(keys)
		admitted := make(map[string]int, len(keys))
		for _, key := range keys {
			admitted[key] = a.cb.AddGroup(a.pending[key].vec)
		}
		for _, key := range keys {
			p := a.pending[key]
			id := admitted[key]
			a.wireGroup(id, p, admitted)
			delete(a.pending, key)
		}
		a.groupsAdmitted += int64(len(keys))
		a.met.groupsAdmitted.Add(int64(len(keys)))
		dirty = true
	}
	for k, n := range a.edges {
		if n < a.cfg.admitAfter {
			continue
		}
		for i := 0; i < n; i++ {
			switch k.kind {
			case CheckG2G:
				a.cb.ObserveG2G(k.from, k.to)
			case CheckG2A:
				a.cb.ObserveG2A(k.from, k.to)
			case CheckA2G:
				a.cb.ObserveA2G(k.from, k.to)
			}
		}
		delete(a.edges, k)
		a.edgesAdmitted++
		a.met.edgesAdmitted.Inc()
		dirty = true
	}
	return dirty
}

// wireGroup folds an admitted group's sighting evidence into the chains.
// Pending predecessors that are not part of this batch (and were not
// admitted earlier) are dropped: if they earn admission later, the edge
// re-accumulates through the unseen-transition path.
func (a *Adapter) wireGroup(id int, p *pendingSet, admitted map[string]int) {
	observeN := func(fn func(int, int), from, to int, n int64) {
		for i := int64(0); i < n; i++ {
			fn(from, to)
		}
	}
	for from, n := range p.preds {
		observeN(a.cb.ObserveG2G, from, id, n)
	}
	for key, n := range p.predKeys {
		from, ok := admitted[key]
		if !ok {
			if v, err := bitvec.Parse(key); err == nil {
				from, ok = a.cb.GroupID(v)
			}
		}
		if ok {
			observeN(a.cb.ObserveG2G, from, id, n)
		}
	}
	for to, n := range p.succs {
		observeN(a.cb.ObserveG2G, id, to, n)
	}
	for slot, n := range p.predActs {
		observeN(a.cb.ObserveA2G, slot, id, n)
	}
	for slot, n := range p.actsAfter {
		observeN(a.cb.ObserveG2A, id, slot, n)
	}
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
