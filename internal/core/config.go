// Package core implements DICE, the paper's contribution: faulty-device
// detection and identification for smart homes via context extraction.
//
// The package mirrors the paper's two phases:
//
//   - Precomputation (Trainer): windowed observations are binarized into
//     sensor state sets (Eqs. 3.1-3.4); each unique state set becomes a
//     group, and three Markov matrices — group-to-group (G2G),
//     group-to-actuator (G2A), and actuator-to-group (A2G) — are counted
//     over the window sequence. The result is a Context.
//   - Real time (Detector): each live window is binarized and put through a
//     correlation check (is there a main group at Hamming distance 0?) and a
//     transition check (three zero-probability cases). On a violation the
//     detector enters identification, intersecting per-window probable-fault
//     sets until at most numThre devices remain, then emits an Alert.
package core

import (
	"time"

	"repro/internal/device"
)

// Default tuning values; each mirrors either an explicit paper parameter or
// a documented extension (see DESIGN.md).
const (
	// DefaultDuration is the paper's empirically optimal window length.
	DefaultDuration = time.Minute
	// DefaultMaxFaults is the single-fault assumption of §V (numThre = 1).
	DefaultMaxFaults = 1
	// DefaultIdentifyGiveUp bounds how many consecutive uninformative
	// (violation-free) windows identification tolerates before reporting the
	// current intersection. It is deliberately patient (two hours at the
	// default duration): in a sparsely instrumented home the next piece of
	// evidence arrives with the next activity, and reporting early freezes
	// a still-wide intersection (the paper's houseA identification averages
	// 72.8 minutes for the same reason).
	DefaultIdentifyGiveUp = 120
	// DefaultMaxIdentifyWindows hard-caps an identification episode.
	DefaultMaxIdentifyWindows = 480
	// DefaultMaxStalls bounds how many times an empty intersection update is
	// ignored before the current intersection is reported as-is.
	DefaultMaxStalls = 5
)

// Config tunes DICE. The zero value is usable: Normalize fills defaults.
type Config struct {
	// Duration is the state-set window length. Purely informational here
	// (windowing happens in internal/window); persisted with the context so
	// a detector refuses mismatched windows at a higher layer.
	Duration time.Duration

	// MaxFaults is the number of simultaneous faults the system considers.
	// It sets numThre (identification stops when the intersection has at
	// most this many devices) and the default candidate distance.
	MaxFaults int

	// CandidateDistance is the maximum Hamming distance at which a group is
	// considered a probable group during the correlation check. The paper
	// uses MaxFaults bit-flips; we default to 3*MaxFaults so that a numeric
	// sensor fault, which owns three bits, still finds its probable groups.
	// Zero means "derive from MaxFaults".
	CandidateDistance int

	// IdentifyGiveUp is the number of consecutive uninformative windows
	// after which identification reports its current intersection.
	IdentifyGiveUp int

	// MaxIdentifyWindows hard-caps identification episode length.
	MaxIdentifyWindows int

	// MaxStalls is the number of empty-intersection updates tolerated
	// before reporting.
	MaxStalls int

	// Weights optionally assigns criticality/failure weights to devices
	// (§VI). When a device with weight >= WeightAlarm enters the probable
	// set, the alert fires immediately even above numThre.
	Weights map[device.ID]float64

	// WeightAlarm is the weight threshold for early alerts; <= 0 disables
	// the mechanism.
	WeightAlarm float64

	// Attest, when non-nil, is the optional attestation step of §3.4 ("we
	// may add an additional attestation step for a verification purpose"):
	// it is called with the devices identification is about to report and
	// returns the subset that failed attestation. Devices that pass (are
	// filtered out) are dropped from the alert; if every device passes,
	// the episode is dismissed as a false alarm and detection resumes.
	Attest func(devices []device.ID) []device.ID

	// DisableTiming turns the interval-band timing check off even when the
	// context carries sketches (schema v2). The check is also implicitly
	// off against v1 contexts, which have no sketches to test against.
	DisableTiming bool

	// TimingMinSamples is the minimum number of recorded gaps an edge's
	// sketch needs before the timing check trusts its band; zero means
	// DefaultTimingMinSamples.
	TimingMinSamples int

	// TimingSlackBuckets widens the learned band by this many log2 buckets
	// on each side before a gap counts as out of band; values <= 0 mean
	// DefaultTimingSlackBuckets.
	TimingSlackBuckets int

	// TimingQuantileLo/TimingQuantileHi bound the learned band by sketch
	// quantiles. The defaults (0, 1) keep the full observed range, so only
	// gaps beyond anything seen in training (plus slack) flag.
	TimingQuantileLo float64
	TimingQuantileHi float64

	// TimingFlagFast also flags gaps that undershoot the band (a transition
	// arriving implausibly early). Off by default: early arrivals are far
	// more often benign than late ones.
	TimingFlagFast bool
}

// Normalize returns a copy of c with zero fields replaced by defaults.
func (c Config) Normalize() Config {
	if c.Duration <= 0 {
		c.Duration = DefaultDuration
	}
	if c.MaxFaults <= 0 {
		c.MaxFaults = DefaultMaxFaults
	}
	if c.CandidateDistance <= 0 {
		c.CandidateDistance = 3 * c.MaxFaults
	}
	if c.IdentifyGiveUp <= 0 {
		c.IdentifyGiveUp = DefaultIdentifyGiveUp
	}
	if c.MaxIdentifyWindows <= 0 {
		c.MaxIdentifyWindows = DefaultMaxIdentifyWindows
	}
	if c.MaxStalls <= 0 {
		c.MaxStalls = DefaultMaxStalls
	}
	if c.TimingMinSamples <= 0 {
		c.TimingMinSamples = DefaultTimingMinSamples
	}
	if c.TimingSlackBuckets <= 0 {
		c.TimingSlackBuckets = DefaultTimingSlackBuckets
	}
	if c.TimingQuantileLo < 0 {
		c.TimingQuantileLo = 0
	}
	if c.TimingQuantileHi <= 0 || c.TimingQuantileHi > 1 {
		c.TimingQuantileHi = 1
	}
	return c
}
