package core

import (
	"time"

	"repro/internal/device"
	"repro/internal/telemetry"
)

// Option configures a Detector at construction. Options are applied in
// order, so a WithConfig followed by field options yields the config with
// those fields overridden.
type Option func(*detOptions)

type detOptions struct {
	cfg Config
	tel *telemetry.Registry
}

// WithConfig replaces the whole detector configuration.
func WithConfig(cfg Config) Option {
	return func(o *detOptions) { o.cfg = cfg }
}

// WithDuration sets the state-set window length.
func WithDuration(d time.Duration) Option {
	return func(o *detOptions) { o.cfg.Duration = d }
}

// WithMaxFaults sets numThre, the simultaneous-fault bound.
func WithMaxFaults(n int) Option {
	return func(o *detOptions) { o.cfg.MaxFaults = n }
}

// WithCandidateDistance sets the probable-group Hamming radius.
func WithCandidateDistance(n int) Option {
	return func(o *detOptions) { o.cfg.CandidateDistance = n }
}

// WithWeights sets the §VI device weights and the early-alert threshold.
func WithWeights(weights map[device.ID]float64, alarm float64) Option {
	return func(o *detOptions) {
		o.cfg.Weights = weights
		o.cfg.WeightAlarm = alarm
	}
}

// WithAttest installs the optional attestation step of §3.4.
func WithAttest(attest func(devices []device.ID) []device.ID) Option {
	return func(o *detOptions) { o.cfg.Attest = attest }
}

// WithTelemetry instruments the detector against the registry: scan
// outcomes and latency, violations by cause, and identification episode
// shape. A nil registry leaves the detector uninstrumented (every
// instrument is nil-safe, so this is free on the hot path).
func WithTelemetry(reg *telemetry.Registry) Option {
	return func(o *detOptions) { o.tel = reg }
}

// New builds a detector over a trained context with functional options.
func New(ctx *Context, opts ...Option) (*Detector, error) {
	var o detOptions
	for _, opt := range opts {
		opt(&o)
	}
	return newDetector(ctx, o)
}

// Detector-stage metric names, shared by the gateway's /metrics endpoint
// and dice-eval's BENCH_eval.json dump. Scan metrics split the exact-hash
// short-circuit from bucketed scans; identification metrics capture the
// episode shape the paper's Fig 5.2/latency discussion is about.
const (
	metricWindows      = "dice_detector_windows_total"
	metricScanExact    = "dice_scan_exact_hit_total"
	metricScanBucket   = "dice_scan_bucket_scan_total"
	metricScanSeconds  = "dice_scan_seconds"
	metricScanDistance = "dice_scan_min_distance"
	metricViolations   = "dice_violations_total"
	metricEpisodes     = "dice_identify_episodes_total"
	metricEpisodeLen   = "dice_identify_episode_windows"
	metricSuspects     = "dice_identify_suspects_at_close"
	metricNamed        = "dice_identify_devices_named_total"
)

// detMetrics holds the detector's instruments. The zero value (all nil)
// is a valid "telemetry disabled" state: every instrument method is
// nil-safe, and the violations vector is guarded at its one index site.
type detMetrics struct {
	windows      *telemetry.Counter
	scanExact    *telemetry.Counter
	scanBucket   *telemetry.Counter
	scanSeconds  *telemetry.Histogram
	scanDistance *telemetry.Histogram
	violations   []*telemetry.Counter // indexed by int(cause) - 1
	episodes     *telemetry.Counter
	episodeLen   *telemetry.Histogram
	suspects     *telemetry.Histogram
	named        *telemetry.Counter
}

func newDetMetrics(reg *telemetry.Registry) detMetrics {
	if reg == nil {
		return detMetrics{}
	}
	return detMetrics{
		windows:      reg.Counter(metricWindows, "Windows processed by the real-time detector."),
		scanExact:    reg.Counter(metricScanExact, "Correlation scans resolved by the exact-hash short-circuit."),
		scanBucket:   reg.Counter(metricScanBucket, "Correlation scans that walked the popcount buckets (no exact match)."),
		scanSeconds:  reg.Histogram(metricScanSeconds, "Correlation scan latency in seconds.", telemetry.ExpBuckets(1e-7, 4, 10)),
		scanDistance: reg.Histogram(metricScanDistance, "Hamming distance to the nearest group on non-exact scans.", telemetry.LinearBuckets(1, 1, 8)),
		violations:   reg.CounterVec(metricViolations, "Detected violations by cause.", "cause", CauseNames()),
		episodes:     reg.Counter(metricEpisodes, "Identification episodes concluded."),
		episodeLen:   reg.Histogram(metricEpisodeLen, "Identification episode length in windows.", telemetry.ExpBuckets(1, 2, 10)),
		suspects:     reg.Histogram(metricSuspects, "Probable-set size when an episode closed.", telemetry.LinearBuckets(1, 1, 8)),
		named:        reg.Counter(metricNamed, "Devices named by concluded alerts."),
	}
}

// violation counts one detected violation by cause.
func (m *detMetrics) violation(cause CheckKind) {
	if m.violations == nil || cause == CheckNone {
		return
	}
	if i := int(cause) - 1; i >= 0 && i < len(m.violations) {
		m.violations[i].Inc()
	}
}
