package core

import (
	"time"

	"repro/internal/device"
	"repro/internal/telemetry"
)

// Option configures a Detector at construction. Options are applied in
// order, so a WithConfig followed by field options yields the config with
// those fields overridden.
type Option func(*detOptions)

type detOptions struct {
	cfg    Config
	tel    *telemetry.Registry
	checks []Check
}

// WithConfig replaces the whole detector configuration.
func WithConfig(cfg Config) Option {
	return func(o *detOptions) { o.cfg = cfg }
}

// WithDuration sets the state-set window length.
func WithDuration(d time.Duration) Option {
	return func(o *detOptions) { o.cfg.Duration = d }
}

// WithMaxFaults sets numThre, the simultaneous-fault bound.
func WithMaxFaults(n int) Option {
	return func(o *detOptions) { o.cfg.MaxFaults = n }
}

// WithCandidateDistance sets the probable-group Hamming radius.
func WithCandidateDistance(n int) Option {
	return func(o *detOptions) { o.cfg.CandidateDistance = n }
}

// WithWeights sets the §VI device weights and the early-alert threshold.
func WithWeights(weights map[device.ID]float64, alarm float64) Option {
	return func(o *detOptions) {
		o.cfg.Weights = weights
		o.cfg.WeightAlarm = alarm
	}
}

// WithAttest installs the optional attestation step of §3.4.
func WithAttest(attest func(devices []device.ID) []device.ID) Option {
	return func(o *detOptions) { o.cfg.Attest = attest }
}

// WithChecks replaces the detection pipeline. Checks run in the given order
// on every non-episode window and the first Finding wins, so callers
// reorder, drop, or extend DefaultChecks to reshape detection.
func WithChecks(checks ...Check) Option {
	return func(o *detOptions) { o.checks = checks }
}

// WithTiming enables or disables the interval-band timing check. It is on
// by default whenever the context carries interval sketches (schema v2).
func WithTiming(enabled bool) Option {
	return func(o *detOptions) { o.cfg.DisableTiming = !enabled }
}

// WithTimingBand tunes the timing check's conservativeness: minSamples is
// the sketch population below which an edge is not judged, and
// slackBuckets widens the learned band by whole log2 buckets. Zero values
// keep the defaults.
func WithTimingBand(minSamples, slackBuckets int) Option {
	return func(o *detOptions) {
		o.cfg.TimingMinSamples = minSamples
		o.cfg.TimingSlackBuckets = slackBuckets
	}
}

// WithTimingQuantiles bounds the learned band by sketch quantiles instead
// of the full observed range (the (0, 1) default).
func WithTimingQuantiles(lo, hi float64) Option {
	return func(o *detOptions) {
		o.cfg.TimingQuantileLo = lo
		o.cfg.TimingQuantileHi = hi
	}
}

// WithTimingFlagFast also flags transitions arriving implausibly early,
// not just late.
func WithTimingFlagFast(enabled bool) Option {
	return func(o *detOptions) { o.cfg.TimingFlagFast = enabled }
}

// WithTelemetry instruments the detector against the registry: scan
// outcomes and latency, violations by cause, and identification episode
// shape. A nil registry leaves the detector uninstrumented (every
// instrument is nil-safe, so this is free on the hot path).
func WithTelemetry(reg *telemetry.Registry) Option {
	return func(o *detOptions) { o.tel = reg }
}

// New builds a detector over a trained context with functional options.
func New(ctx *Context, opts ...Option) (*Detector, error) {
	var o detOptions
	for _, opt := range opts {
		opt(&o)
	}
	return newDetector(ctx, o)
}

// Detector-stage metric names, shared by the gateway's /metrics endpoint
// and dice-eval's BENCH_eval.json dump. Scan metrics split the exact-hash
// short-circuit from bucketed scans; identification metrics capture the
// episode shape the paper's Fig 5.2/latency discussion is about.
const (
	metricWindows      = "dice_detector_windows_total"
	metricScanExact    = "dice_scan_exact_hit_total"
	metricScanBucket   = "dice_scan_bucket_scan_total"
	metricScanSeconds  = "dice_scan_seconds"
	metricScanDistance = "dice_scan_min_distance"
	metricViolations   = "dice_violations_total"
	metricEpisodes     = "dice_identify_episodes_total"
	metricEpisodeLen   = "dice_identify_episode_windows"
	metricSuspects     = "dice_identify_suspects_at_close"
	metricNamed        = "dice_identify_devices_named_total"

	metricTimingChecked = "dice_det_timing_checked_total"
	metricTimingFlagged = "dice_det_timing_flagged_total"
	metricTimingGap     = "dice_det_timing_gap_windows"

	metricEpisodesOpen  = "dice_det_episodes_open"
	metricAlertsTotal   = "dice_det_alerts_total"
	metricConcurrentEps = "dice_det_concurrent_episodes_total"
)

// timingEdges are the label values of the timing-flag vector, indexed in
// the same order as timingEdgeIndex resolves.
var timingEdges = []string{"g2g", "g2a", "a2g"}

func timingEdgeIndex(edge string) int {
	switch edge {
	case "g2g":
		return 0
	case "g2a":
		return 1
	case "a2g":
		return 2
	default:
		return -1
	}
}

// detMetrics holds the detector's instruments. The zero value (all nil)
// is a valid "telemetry disabled" state: every instrument method is
// nil-safe, and the violations vector is guarded at its one index site.
type detMetrics struct {
	windows      *telemetry.Counter
	scanExact    *telemetry.Counter
	scanBucket   *telemetry.Counter
	scanSeconds  *telemetry.Histogram
	scanDistance *telemetry.Histogram
	violations   []*telemetry.Counter // indexed by int(cause) - 1
	episodes     *telemetry.Counter
	episodeLen   *telemetry.Histogram
	suspects     *telemetry.Histogram
	named        *telemetry.Counter

	timingChecked *telemetry.Counter
	timingFlagged []*telemetry.Counter // indexed by timingEdgeIndex
	timingGap     *telemetry.Histogram

	episodesOpen  *telemetry.Gauge
	alerts        []*telemetry.Counter // indexed by int(cause) - 1
	concurrentEps *telemetry.Counter
}

func newDetMetrics(reg *telemetry.Registry) detMetrics {
	if reg == nil {
		return detMetrics{}
	}
	return detMetrics{
		windows:      reg.Counter(metricWindows, "Windows processed by the real-time detector."),
		scanExact:    reg.Counter(metricScanExact, "Correlation scans resolved by the exact-hash short-circuit."),
		scanBucket:   reg.Counter(metricScanBucket, "Correlation scans that walked the popcount buckets (no exact match)."),
		scanSeconds:  reg.Histogram(metricScanSeconds, "Correlation scan latency in seconds.", telemetry.ExpBuckets(1e-7, 4, 10)),
		scanDistance: reg.Histogram(metricScanDistance, "Hamming distance to the nearest group on non-exact scans.", telemetry.LinearBuckets(1, 1, 8)),
		violations:   reg.CounterVec(metricViolations, "Detected violations by cause.", "cause", CauseNames()),
		episodes:     reg.Counter(metricEpisodes, "Identification episodes concluded."),
		episodeLen:   reg.Histogram(metricEpisodeLen, "Identification episode length in windows.", telemetry.ExpBuckets(1, 2, 10)),
		suspects:     reg.Histogram(metricSuspects, "Probable-set size when an episode closed.", telemetry.LinearBuckets(1, 1, 8)),
		named:        reg.Counter(metricNamed, "Devices named by concluded alerts."),

		timingChecked: reg.Counter(metricTimingChecked, "Structurally clean windows the timing check evaluated."),
		timingFlagged: reg.CounterVec(metricTimingFlagged, "Out-of-band gaps flagged by the timing check, by edge family.", "edge", timingEdges),
		timingGap:     reg.Histogram(metricTimingGap, "Observed gap in windows on flagged timing violations.", telemetry.ExpBuckets(1, 2, 12)),

		episodesOpen:  reg.Gauge(metricEpisodesOpen, "Identification episodes currently in flight."),
		alerts:        reg.CounterVec(metricAlertsTotal, "Alerts emitted by concluded episodes, by cause.", "cause", CauseNames()),
		concurrentEps: reg.Counter(metricConcurrentEps, "Episodes opened while another episode was already in flight (multi-fault splits)."),
	}
}

// timingFlag counts one timing flag by edge family.
func (m *detMetrics) timingFlag(edge string) {
	if m.timingFlagged == nil {
		return
	}
	if i := timingEdgeIndex(edge); i >= 0 && i < len(m.timingFlagged) {
		m.timingFlagged[i].Inc()
	}
}

// violation counts one detected violation by cause.
func (m *detMetrics) violation(cause CheckKind) {
	if m.violations == nil || cause == CheckNone {
		return
	}
	if i := int(cause) - 1; i >= 0 && i < len(m.violations) {
		m.violations[i].Inc()
	}
}

// alert counts one emitted alert by cause.
func (m *detMetrics) alert(cause CheckKind) {
	if m.alerts == nil || cause == CheckNone {
		return
	}
	if i := int(cause) - 1; i >= 0 && i < len(m.alerts) {
		m.alerts[i].Inc()
	}
}
