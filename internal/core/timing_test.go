package core

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"repro/internal/device"
	"repro/internal/telemetry"
	"repro/internal/window"
)

// timingWindow builds one window of the two-group rhythm used by the timing
// tests: group A (motion-a, warm kitchen) or group B (motion-b, bright
// bedroom), optionally with the bulb actuator firing.
func timingWindow(l *window.Layout, idx int, b, fire bool) *window.Observation {
	o := l.NewObservation(idx)
	if b {
		o.Binary[1] = true
		o.Numeric[0] = []float64{10, 10}
		o.Numeric[1] = []float64{200, 200}
	} else {
		o.Binary[0] = true
		o.Numeric[0] = []float64{30, 30}
		o.Numeric[1] = []float64{50, 50}
	}
	if fire {
		o.Actuated = append(o.Actuated, device.ID(4))
	}
	return o
}

// rhythmTrain trains a context on a strict A,A,B,B rhythm (optionally with
// the bulb firing on every B entry), giving every edge a tight dwell band.
func rhythmTrain(t *testing.T, l *window.Layout, fire bool) *Context {
	t.Helper()
	var train []*window.Observation
	idx := 0
	for c := 0; c < 40; c++ {
		train = append(train, timingWindow(l, idx, false, false))
		idx++
		train = append(train, timingWindow(l, idx, false, false))
		idx++
		train = append(train, timingWindow(l, idx, true, fire))
		idx++
		train = append(train, timingWindow(l, idx, true, false))
		idx++
	}
	ctx, err := TrainWindows(l, time.Minute, train)
	if err != nil {
		t.Fatal(err)
	}
	if !ctx.TimingCapable() {
		t.Fatal("trained context is not timing capable")
	}
	return ctx
}

// delayedHopStream replays the rhythm cleanly for four cycles, then holds
// group A for `hold` windows before hopping to B — a structurally legal hop
// at roughly hold/2 times the trained pace. It returns the stream and the
// index of the off-pace hop window.
func delayedHopStream(l *window.Layout, hold int, fire bool) ([]*window.Observation, int) {
	var stream []*window.Observation
	idx := 0
	add := func(b, f bool) {
		stream = append(stream, timingWindow(l, idx, b, f))
		idx++
	}
	for c := 0; c < 4; c++ {
		add(false, false)
		add(false, false)
		add(true, fire)
		add(true, false)
	}
	for k := 0; k < hold; k++ {
		add(false, false)
	}
	hop := idx
	add(true, fire)
	add(true, false)
	return stream, hop
}

// TestTimingCheckFlagsDelayedHop: a structurally valid hop after an
// out-of-band dwell raises CheckTiming with gap/band evidence, while a
// detector built WithTiming(false) sees nothing wrong — the fault family
// the structural checks are blind to.
func TestTimingCheckFlagsDelayedHop(t *testing.T) {
	l := coreLayout(t)
	ctx := rhythmTrain(t, l, false)
	stream, hop := delayedHopStream(l, 9, false)
	// A second delayed hop (hold B off-pace, then return to A) corroborates
	// the episode — multi-fault mode requires a second informative window
	// before alerting — and a short quiet tail lets patience conclude it.
	idx := len(stream)
	for k := 0; k < 9; k++ {
		stream = append(stream, timingWindow(l, idx, true, false))
		idx++
	}
	for k := 0; k < 22; k++ {
		stream = append(stream, timingWindow(l, idx, false, false))
		idx++
	}

	reg := telemetry.NewRegistry()
	// MaxFaults is generous so the whole suspect diff survives to the
	// alert; IdentifyGiveUp outlives the gap between the two hops so the
	// second one corroborates, then the quiet tail concludes the episode.
	det, err := New(ctx, WithConfig(Config{MaxFaults: 8, IdentifyGiveUp: 20}), WithTelemetry(reg))
	if err != nil {
		t.Fatal(err)
	}
	var alert *Alert
	for i, o := range stream {
		res, err := det.Process(o)
		if err != nil {
			t.Fatal(err)
		}
		if i < hop && res.Detected {
			t.Fatalf("window %d flagged %s before the delayed hop", i, res.Violation)
		}
		if i == hop {
			if !res.Detected || res.Violation != CheckTiming {
				t.Fatalf("hop window: detected=%v violation=%s, want timing", res.Detected, res.Violation)
			}
		}
		if res.Alert != nil && alert == nil {
			alert = res.Alert
		}
	}
	if alert == nil {
		t.Fatal("no alert on the delayed hop")
	}
	if alert.Cause != CheckTiming || alert.Cause.Family() != FamilyTiming {
		t.Fatalf("alert cause %s (family %s), want timing", alert.Cause, alert.Cause.Family())
	}
	ev := alert.Explain.Timing
	if ev == nil {
		t.Fatal("timing alert carries no TimingEvidence")
	}
	if ev.Edge != "g2g" || ev.GapWindows != 9 {
		t.Errorf("evidence edge=%s gap=%d, want g2g gap 9", ev.Edge, ev.GapWindows)
	}
	if ev.BandHiWindows >= ev.GapWindows {
		t.Errorf("band hi %d not below observed gap %d", ev.BandHiWindows, ev.GapWindows)
	}
	if ev.Samples < DefaultTimingMinSamples || len(ev.Buckets) == 0 {
		t.Errorf("evidence samples=%d buckets=%d", ev.Samples, len(ev.Buckets))
	}
	snap := reg.SnapshotMap()
	if snap[metricTimingChecked] == 0 {
		t.Errorf("%s never incremented", metricTimingChecked)
	}
	if snap[metricTimingFlagged+`{edge="g2g"}`] == 0 {
		t.Errorf("%s{edge=g2g} = 0 after a g2g flag", metricTimingFlagged)
	}

	// The structural-only arm must stay silent on the same stream.
	structural, err := New(ctx, WithTiming(false))
	if err != nil {
		t.Fatal(err)
	}
	for i, o := range stream {
		res, err := structural.Process(o)
		if err != nil {
			t.Fatal(err)
		}
		if res.Detected {
			t.Fatalf("structural-only arm flagged %s at window %d", res.Violation, i)
		}
	}
}

// TestTimingCheckDelayedActuatorFiring: a firing whose dwell gap overshoots
// the trained G2A band is flagged with the actuator as the suspect.
func TestTimingCheckDelayedActuatorFiring(t *testing.T) {
	l := coreLayout(t)
	ctx := rhythmTrain(t, l, true)
	stream, hop := delayedHopStream(l, 9, true)

	det, err := New(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for i, o := range stream {
		res, err := det.Process(o)
		if err != nil {
			t.Fatal(err)
		}
		if i < hop && res.Detected {
			t.Fatalf("window %d flagged %s before the delayed firing", i, res.Violation)
		}
		if i != hop {
			continue
		}
		if !res.Detected || res.Violation != CheckTiming {
			t.Fatalf("delayed firing: detected=%v violation=%s, want timing", res.Detected, res.Violation)
		}
		if res.Alert == nil {
			t.Fatal("no immediate alert (single suspect should conclude at once)")
		}
		if len(res.Alert.Devices) != 1 || res.Alert.Devices[0] != device.ID(4) {
			t.Fatalf("suspects %v, want the bulb actuator", res.Alert.Devices)
		}
		if ev := res.Alert.Explain.Timing; ev == nil || ev.Edge != "g2a" {
			t.Fatalf("evidence %+v, want edge g2a", ev)
		}
	}
}

// TestContextTimingSaveLoadRoundTrip: a v2 payload restores the sketches
// (same fingerprint, still timing capable, still flags), and a v1 payload —
// a context built without EnableTiming — loads as a timing-disabled context
// that detects structurally as before.
func TestContextTimingSaveLoadRoundTrip(t *testing.T) {
	l := coreLayout(t)
	ctx := rhythmTrain(t, l, false)
	if ctx.SchemaVersion() != ContextSchemaV2 {
		t.Fatalf("trained schema %d, want %d", ctx.SchemaVersion(), ContextSchemaV2)
	}

	var buf bytes.Buffer
	if err := ctx.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadContext(&buf, l)
	if err != nil {
		t.Fatal(err)
	}
	if !loaded.TimingCapable() || loaded.SchemaVersion() != ContextSchemaV2 {
		t.Fatalf("loaded: capable=%v schema=%d", loaded.TimingCapable(), loaded.SchemaVersion())
	}
	if loaded.Fingerprint() != ctx.Fingerprint() {
		t.Errorf("fingerprint changed across save/load: %s vs %s", loaded.Fingerprint(), ctx.Fingerprint())
	}
	det, err := New(loaded, WithMaxFaults(8))
	if err != nil {
		t.Fatal(err)
	}
	stream, hop := delayedHopStream(l, 9, false)
	flagged := false
	for i, o := range stream {
		res, err := det.Process(o)
		if err != nil {
			t.Fatal(err)
		}
		if res.Detected && i == hop && res.Violation == CheckTiming {
			flagged = true
		}
	}
	if !flagged {
		t.Error("detector on the reloaded context missed the delayed hop")
	}

	// v1 path: no EnableTiming — the payload must carry no sketches and
	// load as a working, timing-disabled context.
	cb, err := NewContextBuilder(l, time.Minute, []float64{20, 125})
	if err != nil {
		t.Fatal(err)
	}
	cb.AddGroup(vec(t, "10100100"))
	v1, err := cb.Build()
	if err != nil {
		t.Fatal(err)
	}
	if v1.TimingCapable() || v1.SchemaVersion() != ContextSchemaV1 {
		t.Fatalf("bare builder: capable=%v schema=%d", v1.TimingCapable(), v1.SchemaVersion())
	}
	buf.Reset()
	if err := v1.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(buf.Bytes(), []byte("g2g_gaps")) {
		t.Error("v1 payload mentions interval sketches")
	}
	v1Loaded, err := LoadContext(&buf, l)
	if err != nil {
		t.Fatal(err)
	}
	if v1Loaded.TimingCapable() {
		t.Error("v1 payload loaded as timing capable")
	}
	if _, err := New(v1Loaded); err != nil {
		t.Fatalf("detector on v1 context: %v", err)
	}
}

// TestDetectorCheckpointTimingState: exporting mid-dwell and restoring into
// a fresh detector resumes the timing bookkeeping bit-identically — the
// restored detector flags the same window with the same gap.
func TestDetectorCheckpointTimingState(t *testing.T) {
	l := coreLayout(t)
	ctx := rhythmTrain(t, l, true)
	stream, hop := delayedHopStream(l, 9, true)

	det1, err := New(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// Stop in the middle of the abnormal hold, with a firing already in the
	// history, so both dwell and lastFire must survive the round trip.
	cut := hop - 4
	for _, o := range stream[:cut] {
		if _, err := det1.Process(o); err != nil {
			t.Fatal(err)
		}
	}
	blob, err := json.Marshal(det1.ExportState())
	if err != nil {
		t.Fatal(err)
	}
	var st DetectorState
	if err := json.Unmarshal(blob, &st); err != nil {
		t.Fatal(err)
	}
	det2, err := New(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := det2.RestoreState(st); err != nil {
		t.Fatal(err)
	}
	for i, o := range stream[cut:] {
		r1, err := det1.Process(o)
		if err != nil {
			t.Fatal(err)
		}
		r2, err := det2.Process(o)
		if err != nil {
			t.Fatal(err)
		}
		r1.Timing, r2.Timing = Timing{}, Timing{} // wall-clock noise
		b1, _ := json.Marshal(r1)
		b2, _ := json.Marshal(r2)
		if !bytes.Equal(b1, b2) {
			t.Fatalf("window %d diverged after restore:\n%s\n%s", cut+i, b1, b2)
		}
		if cut+i == hop && (!r2.Detected || r2.Violation != CheckTiming) {
			t.Fatalf("restored detector missed the delayed firing: %+v", r2)
		}
	}
}

// TestWithChecksCustomPipeline: the pipeline is pluggable — dropping the
// correlation check blinds the detector to unseen state sets the default
// pipeline flags, and DefaultChecks pins the documented order.
func TestWithChecksCustomPipeline(t *testing.T) {
	l := coreLayout(t)
	ctx := rhythmTrain(t, l, false)

	wantOrder := []struct {
		name  string
		cause Cause
	}{
		{"ghost", CheckGhost},
		{"correlation", CheckCorrelation},
		{"g2g", CheckG2G},
		{"g2a", CheckG2A},
		{"a2g", CheckA2G},
		{"timing", CheckTiming},
	}
	checks := DefaultChecks()
	if len(checks) != len(wantOrder) {
		t.Fatalf("DefaultChecks has %d checks, want %d", len(checks), len(wantOrder))
	}
	for i, c := range checks {
		if c.Name() != wantOrder[i].name || c.Cause() != wantOrder[i].cause {
			t.Errorf("check %d = %s/%s, want %s/%s", i, c.Name(), c.Cause(), wantOrder[i].name, wantOrder[i].cause)
		}
	}

	unseen := l.NewObservation(0) // both motions on: no trained group
	unseen.Binary[0] = true
	unseen.Binary[1] = true
	unseen.Numeric[0] = []float64{30, 30}
	unseen.Numeric[1] = []float64{200, 200}

	full, err := New(ctx)
	if err != nil {
		t.Fatal(err)
	}
	res, err := full.Process(unseen.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Detected || res.Violation != CheckCorrelation {
		t.Fatalf("default pipeline on unseen set: %+v", res)
	}

	noCorr, err := New(ctx, WithChecks(G2GCheck{}, G2ACheck{}, A2GCheck{}))
	if err != nil {
		t.Fatal(err)
	}
	res, err = noCorr.Process(unseen.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if res.Detected {
		t.Fatalf("correlation-free pipeline flagged the unseen set: %+v", res)
	}
}
