package core

import (
	"testing"

	"repro/internal/device"
	"repro/internal/window"
)

// newSetObs is an unseen state set one bit away from the even group: both
// motion sensors fire together, something the alternating training
// scenario never produced.
func newSetObs(l *window.Layout, idx int) *window.Observation {
	return makeObs(l, idx, []bool{true, true}, [][]float64{{30, 30, 30}, {50, 50, 50}})
}

// evenBulbObs is the even state set with the bulb firing — an unseen G2A
// transition when it follows the odd group (training only fired the bulb
// on odd windows, i.e. out of the even group).
func evenBulbObs(l *window.Layout, idx int) *window.Observation {
	return makeObs(l, idx, []bool{true, false}, [][]float64{{30, 30, 30}, {50, 50, 50}}, device.ID(4))
}

func newTestAdapter(t testing.TB, ctx *Context, opts ...AdapterOption) *Adapter {
	t.Helper()
	a, err := NewAdapter(ctx, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// feedAdmissionCycle feeds one sighting of the unseen both-motions set with
// the window shapes a real detector would report around it: clean known
// windows before, a violating window on the set itself, and an identifying
// (episode in flight) known window after it. Returns the last published
// context, if any.
func feedAdmissionCycle(t *testing.T, a *Adapter, l *window.Layout, idx *int) *Context {
	t.Helper()
	var pub *Context
	steps := []struct {
		obs *window.Observation
		res Result
	}{
		{oddObs(l, *idx), Result{}},
		{evenObs(l, *idx + 1), Result{}},
		{newSetObs(l, *idx + 2), Result{Violation: CheckCorrelation, Detected: true, Identifying: true}},
		{evenObs(l, *idx + 3), Result{Identifying: true}},
	}
	for _, s := range steps {
		p, err := a.Observe(s.obs, s.res)
		if err != nil {
			t.Fatal(err)
		}
		if p != nil {
			pub = p
		}
	}
	*idx += len(steps)
	return pub
}

// TestAdapterAdmitsRecurringSet: an unseen state set sighted AdmitAfter
// times with no alert explaining it becomes a catalogue group in a new
// published version, wired so a detector on that version accepts the new
// routine cleanly.
func TestAdapterAdmitsRecurringSet(t *testing.T) {
	l, ctx := trainAlternating(t)
	a := newTestAdapter(t, ctx, WithAdmitAfter(3))

	var pub *Context
	idx := 0
	for cycle := 0; cycle < 3; cycle++ {
		if p := feedAdmissionCycle(t, a, l, &idx); p != nil {
			pub = p
		}
	}
	if pub == nil {
		t.Fatalf("no version published after %d sightings", 3)
	}
	if pub.Epoch() != ctx.Epoch()+1 {
		t.Errorf("published epoch = %d, want %d", pub.Epoch(), ctx.Epoch()+1)
	}
	if pub.ParentFingerprint() != ctx.Fingerprint() {
		t.Error("published version does not chain to the base context")
	}
	if got, want := pub.NumGroups(), ctx.NumGroups()+1; got != want {
		t.Errorf("published NumGroups = %d, want %d", got, want)
	}
	if a.GroupsAdmitted() != 1 || a.PendingSets() != 0 {
		t.Errorf("GroupsAdmitted = %d, PendingSets = %d", a.GroupsAdmitted(), a.PendingSets())
	}

	// A detector on the published version accepts the new routine: the set
	// is a group, and its sighting transitions (even -> new -> even) were
	// wired in with it.
	d, err := New(pub)
	if err != nil {
		t.Fatal(err)
	}
	seq := []*window.Observation{
		oddObs(l, 100), evenObs(l, 101), newSetObs(l, 102), evenObs(l, 103), oddObs(l, 104),
	}
	for _, o := range seq {
		res, err := d.Process(o)
		if err != nil {
			t.Fatal(err)
		}
		if res.Detected || res.Violation != CheckNone {
			t.Fatalf("admitted routine still flagged at window %d: %+v", o.Index, res)
		}
	}

	// The base version is untouched: the set is still unknown there.
	admittedVec, err := pub.Group(pub.NumGroups() - 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := ctx.GroupID(admittedVec); ok {
		t.Error("base context knows the admitted group")
	}
}

// TestAdapterAlertGuard: a concluded alert whose devices cover a pending
// set's differing sensors drops the candidate; an alert naming unrelated
// devices leaves it under observation.
func TestAdapterAlertGuard(t *testing.T) {
	l, ctx := trainAlternating(t)
	a := newTestAdapter(t, ctx, WithAdmitAfter(10))

	idx := 0
	feedAdmissionCycle(t, a, l, &idx)
	feedAdmissionCycle(t, a, l, &idx)
	if a.PendingSets() != 1 {
		t.Fatalf("PendingSets = %d, want 1", a.PendingSets())
	}

	// An alert naming only the bulb does not cover the candidate's
	// differing motion/temp sensors: the candidate survives.
	uncovered := Result{Identifying: true, Alert: &Alert{Devices: []device.ID{4}, Cause: CheckG2A}}
	if _, err := a.Observe(evenObs(l, idx), uncovered); err != nil {
		t.Fatal(err)
	}
	idx++
	if a.PendingSets() != 1 {
		t.Fatalf("uncovered alert dropped the candidate")
	}

	// An alert covering every sensor the set differs in is the detector
	// explaining that evidence as a fault: the candidate is dropped.
	covered := Result{Identifying: true, Alert: &Alert{Devices: []device.ID{0, 1, 2}, Cause: CheckCorrelation}}
	if _, err := a.Observe(evenObs(l, idx), covered); err != nil {
		t.Fatal(err)
	}
	if a.PendingSets() != 0 {
		t.Errorf("covering alert left %d candidates", a.PendingSets())
	}
	if a.GroupsAdmitted() != 0 {
		t.Errorf("GroupsAdmitted = %d after guard drop", a.GroupsAdmitted())
	}
}

// TestAdapterEdgeAdmissionSurvivesAlerts: an unseen transition between
// known states whose every sighting coincides with a concluded alert (a
// single-actuator G2A violation opens and concludes in the same window)
// still accumulates to admission — the alert guard drops covered candidate
// sets, not transition evidence. This is exactly the recurring-false-alarm
// shape behaviour drift produces: a new routine fires an actuator out of a
// group that never triggered it, daily, and each firing is its own alert.
func TestAdapterEdgeAdmissionSurvivesAlerts(t *testing.T) {
	l, ctx := trainAlternating(t)
	a := newTestAdapter(t, ctx, WithAdmitAfter(3))

	g2aAlert := Result{
		Violation: CheckG2A,
		Detected:  true,
		Alert:     &Alert{Devices: []device.ID{4}, Cause: CheckG2A},
	}
	var pub *Context
	idx := 0
	for cycle := 0; cycle < 3; cycle++ {
		steps := []struct {
			obs *window.Observation
			res Result
		}{
			{evenObs(l, idx), Result{}},
			{oddObs(l, idx + 1), Result{}},
			// The bulb fires out of the odd group: unseen G2A, alerted in
			// the same window.
			{evenBulbObs(l, idx + 2), g2aAlert},
			{oddObs(l, idx + 3), Result{Identifying: true}},
		}
		for _, s := range steps {
			p, err := a.Observe(s.obs, s.res)
			if err != nil {
				t.Fatal(err)
			}
			if p != nil {
				pub = p
			}
		}
		idx += len(steps)
	}
	if pub == nil {
		t.Fatal("edge never admitted: alert guard starved the transition evidence")
	}
	if a.EdgesAdmitted() == 0 {
		t.Errorf("EdgesAdmitted = 0 after publish")
	}
	if a.GroupsAdmitted() != 0 {
		t.Errorf("GroupsAdmitted = %d, want 0 (no unseen sets in this stream)", a.GroupsAdmitted())
	}

	// A detector on the published version accepts the new rule: the bulb
	// may now fire out of the odd group.
	d, err := New(pub)
	if err != nil {
		t.Fatal(err)
	}
	seq := []*window.Observation{
		evenObs(l, 200), oddObs(l, 201), evenBulbObs(l, 202), oddObs(l, 203), evenObs(l, 204),
	}
	for _, o := range seq {
		res, err := d.Process(o)
		if err != nil {
			t.Fatal(err)
		}
		if res.Detected || res.Violation != CheckNone {
			t.Fatalf("admitted transition still flagged at window %d: %+v", o.Index, res)
		}
	}
}

// TestAdapterDecayForgetsStaleTransitions: transition counts age
// exponentially, and behaviour the home stops exhibiting (the bulb firing
// out of the even group) is eventually forgotten — a detector on the aged
// version flags it again.
func TestAdapterDecayForgetsStaleTransitions(t *testing.T) {
	l, ctx := trainAlternating(t)
	a := newTestAdapter(t, ctx, WithDecay(0.5, 8))

	// Alternate clean windows with no actuator activity: G2G stays
	// reinforced, but the trained bulb transitions are never re-observed.
	oddSilent := func(idx int) *window.Observation {
		return makeObs(l, idx, []bool{false, true}, [][]float64{{10, 10, 10}, {50, 50, 50}})
	}
	var pub *Context
	for idx := 0; idx < 96; idx++ {
		var o *window.Observation
		if idx%2 == 0 {
			o = evenObs(l, idx)
		} else {
			o = oddSilent(idx)
		}
		p, err := a.Observe(o, Result{})
		if err != nil {
			t.Fatal(err)
		}
		if p != nil {
			pub = p
		}
	}
	if pub == nil || a.DecayedEdges() == 0 {
		t.Fatalf("aging never pruned an edge (decayed=%d)", a.DecayedEdges())
	}

	// The ongoing alternation survived reinforcement...
	d, err := New(pub)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		var o *window.Observation
		if i%2 == 0 {
			o = evenObs(l, 300+i)
		} else {
			o = oddSilent(300 + i)
		}
		res, err := d.Process(o)
		if err != nil {
			t.Fatal(err)
		}
		if res.Detected {
			t.Fatalf("reinforced behaviour flagged at window %d", 300+i)
		}
	}
	// ...but the abandoned bulb habit was forgotten: firing it again is a
	// violation on the aged version.
	res, err := d.Process(oddObs(l, 306))
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation == CheckNone {
		t.Error("forgotten actuator transition not flagged on the aged version")
	}
}

// TestDetectorSwapContextAllocFree: after an adaptation swap the clean hot
// path must stay allocation-free — the published version is one frozen
// snapshot, same as the one it replaced.
func TestDetectorSwapContextAllocFree(t *testing.T) {
	l, ctx := trainAlternating(t)
	a := newTestAdapter(t, ctx, WithAdmitAfter(3))
	var pub *Context
	idx := 0
	for cycle := 0; cycle < 3; cycle++ {
		if p := feedAdmissionCycle(t, a, l, &idx); p != nil {
			pub = p
		}
	}
	if pub == nil {
		t.Fatal("no version published")
	}

	d, err := New(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.SwapContext(pub); err != nil {
		t.Fatal(err)
	}
	// Rotation exercising trained groups and the admitted one, pre-built so
	// the measurement sees only Process; warm first.
	seq := make([]*window.Observation, 16)
	for i := range seq {
		switch i % 4 {
		case 0, 2:
			seq[i] = evenObs(l, i)
		case 1:
			seq[i] = oddObs(l, i)
		default:
			seq[i] = newSetObs(l, i)
		}
	}
	for _, o := range seq {
		if _, err := d.Process(o); err != nil {
			t.Fatal(err)
		}
	}
	i := 0
	allocs := testing.AllocsPerRun(200, func() {
		res, err := d.Process(seq[i%len(seq)])
		i++
		if err != nil || res.Detected {
			t.Fatal("clean window flagged after swap", err)
		}
	})
	if allocs != 0 {
		t.Errorf("clean window after SwapContext allocates %.1f objects per run, want 0", allocs)
	}
}
