package core

import "repro/internal/device"

// maxExplainSteps bounds the intersection history kept per episode so a
// pathological 480-window episode cannot grow an unbounded trace; the
// opening step and the most recent informative steps are what a debugging
// session actually reads.
const maxExplainSteps = 64

// Explain is the decision trace behind one alert: which window opened the
// episode, what the detector matched it against, which transition was
// violated, and how the probable-fault intersection evolved. It exists so
// a raised (or missed) alert can be debugged from the gateway's
// /alerts/last endpoint instead of re-running the offline harness.
type Explain struct {
	// Cause is the check that opened the episode.
	Cause CheckKind `json:"cause"`
	// DetectedWindow / ReportedWindow bracket the episode.
	DetectedWindow int `json:"detected_window"`
	ReportedWindow int `json:"reported_window"`
	// PrevGroup is the group the home was in before the opening window;
	// MainGroup is the opening window's matched group (NoGroup on a
	// correlation violation). Together with Cause they name the violated
	// transition: PrevGroup -> MainGroup for G2G, PrevGroup -> actuator
	// for G2A, actuator -> MainGroup for A2G.
	PrevGroup int `json:"prev_group"`
	MainGroup int `json:"main_group"`
	// ProbableGroups are the candidate groups the opening window was
	// diffed against (correlation violations only).
	ProbableGroups []int `json:"probable_groups,omitempty"`
	// MinDistance is the Hamming distance from the opening state set to
	// the nearest group (NoDistance when an exact match existed).
	MinDistance int `json:"min_distance"`
	// Timing is the interval evidence behind a CheckTiming episode: the
	// off-pace edge, the observed gap, the learned band, and the sketch's
	// bucket counts. Nil for every other cause.
	Timing *TimingEvidence `json:"timing,omitempty"`
	// Steps is the bounded intersection history: the opening window plus
	// every informative probe window, newest last. TruncatedSteps counts
	// informative windows dropped once the bound was hit.
	Steps          []ExplainStep `json:"steps,omitempty"`
	TruncatedSteps int           `json:"truncated_steps,omitempty"`
}

// ExplainStep is one informative window within an episode.
type ExplainStep struct {
	// Window is the window index.
	Window int `json:"window"`
	// Violation is what this window's probe found.
	Violation CheckKind `json:"violation"`
	// Suspects is the window's own probable-fault set.
	Suspects []device.ID `json:"suspects,omitempty"`
	// Intersection is the episode's running intersection after this
	// window.
	Intersection []device.ID `json:"intersection,omitempty"`
}

// addStep appends an informative window, enforcing the bound. Slices are
// copied (the caller's may alias detector scratch) and empty ones
// normalized to nil so a trace that round-trips through checkpoint JSON
// (where omitempty drops them) compares DeepEqual to the original.
func (e *Explain) addStep(s ExplainStep) {
	if e == nil {
		return
	}
	if len(e.Steps) >= maxExplainSteps {
		e.TruncatedSteps++
		return
	}
	s.Suspects = copyIDs(s.Suspects)
	s.Intersection = copyIDs(s.Intersection)
	e.Steps = append(e.Steps, s)
}

// copyIDs copies a slice, mapping empty to nil (see addStep).
func copyIDs(ids []device.ID) []device.ID {
	if len(ids) == 0 {
		return nil
	}
	return append([]device.ID(nil), ids...)
}

// Clone deep-copies the trace, so checkpoints and alert consumers cannot
// alias detector-owned state.
func (e *Explain) Clone() *Explain {
	if e == nil {
		return nil
	}
	out := *e
	out.ProbableGroups = append([]int(nil), e.ProbableGroups...)
	out.Timing = e.Timing.Clone()
	if e.Steps != nil {
		out.Steps = make([]ExplainStep, len(e.Steps))
		for i, s := range e.Steps {
			out.Steps[i] = ExplainStep{
				Window:       s.Window,
				Violation:    s.Violation,
				Suspects:     copyIDs(s.Suspects),
				Intersection: copyIDs(s.Intersection),
			}
		}
	}
	return &out
}
