package core

import (
	"testing"

	"repro/internal/device"
	"repro/internal/window"
)

// TestMultiFaultConcurrentEpisodes drives two disjoint faults with
// interleaved evidence — motion-a dark on even windows, the temp sensor
// stuck high on odd windows — through a MaxFaults=2 detector. The
// disjoint odd-window evidence must split a second episode while the
// first is still open, and each episode must conclude with an alert
// naming exactly its own device.
func TestMultiFaultConcurrentEpisodes(t *testing.T) {
	l, ctx := trainAlternating(t)
	d := newTestDetector(t, ctx, Config{MaxFaults: 2})
	next := feedNormal(t, d, l, 0, 10)

	maxOpen := 0
	var alerts []*Alert
	for i := 0; i < 30 && len(alerts) < 2; i++ {
		idx := next + i
		var o *window.Observation
		if idx%2 == 0 {
			o = evenObs(l, idx)
			o.Binary[0] = false // fault A: motion-a dark
		} else {
			// fault B: temp stuck at its even-window high on odd windows.
			o = makeObs(l, idx, []bool{false, true},
				[][]float64{{30, 30, 30}, {50, 50, 50}}, device.ID(4))
		}
		res, err := d.Process(o)
		if err != nil {
			t.Fatal(err)
		}
		if n := d.OpenEpisodes(); n > maxOpen {
			maxOpen = n
		}
		if len(res.Alerts) > 0 && res.Alert != res.Alerts[0] {
			t.Error("res.Alert is not the first of res.Alerts")
		}
		alerts = append(alerts, res.Alerts...)
	}

	if maxOpen < 2 {
		t.Fatalf("max concurrent episodes = %d, want 2 (no split happened)", maxOpen)
	}
	if len(alerts) < 2 {
		t.Fatalf("storm concluded %d alerts, want 2", len(alerts))
	}
	named := map[device.ID]bool{}
	for _, a := range alerts {
		if len(a.Devices) != 1 {
			t.Errorf("alert names %v, want exactly one device", a.Devices)
			continue
		}
		named[a.Devices[0]] = true
	}
	if !named[0] || !named[2] {
		t.Errorf("alerts named %v, want both device 0 and device 2", named)
	}
	if d.Identifying() {
		t.Error("episodes still open after both faults concluded")
	}
}

// TestMultiFaultSingleModeUnchanged: with MaxFaults=1 (the default), the
// same interleaved storm must flow through the legacy single-episode
// path — never more than one open episode.
func TestMultiFaultSingleModeUnchanged(t *testing.T) {
	l, ctx := trainAlternating(t)
	d := newTestDetector(t, ctx, Config{})
	next := feedNormal(t, d, l, 0, 10)

	for i := 0; i < 30; i++ {
		idx := next + i
		var o *window.Observation
		if idx%2 == 0 {
			o = evenObs(l, idx)
			o.Binary[0] = false
		} else {
			o = makeObs(l, idx, []bool{false, true},
				[][]float64{{30, 30, 30}, {50, 50, 50}}, device.ID(4))
		}
		if _, err := d.Process(o); err != nil {
			t.Fatal(err)
		}
		if n := d.OpenEpisodes(); n > 1 {
			t.Fatalf("single-fault mode holds %d episodes open", n)
		}
	}
}
