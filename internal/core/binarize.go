package core

import (
	"fmt"

	"repro/internal/bitvec"
	"repro/internal/device"
	"repro/internal/stats"
	"repro/internal/window"
)

// BitsPerNumeric is the number of state-set bits a numeric sensor occupies
// (Eqs. 3.2-3.4 each contribute one bit).
const BitsPerNumeric = 3

// Binarizer converts a window observation into a sensor state set.
//
// Bit layout: bits [0, NB) are the binary sensors in registry order
// (Eq. 3.1); bits [NB + 3j, NB + 3j + 3) belong to numeric sensor slot j and
// encode, in order, skewness > 0 (Eq. 3.2), rising trend (Eq. 3.3), and
// mean > valueThre (Eq. 3.4). A numeric sensor that reported nothing in a
// window binarizes to 000, which is what makes fail-stop faults violate the
// correlation check immediately.
type Binarizer struct {
	layout    *window.Layout
	valueThre []float64
}

// NewBinarizer builds a binarizer for the layout using the given per-slot
// numeric thresholds (the sensors' precomputation means).
func NewBinarizer(layout *window.Layout, valueThre []float64) (*Binarizer, error) {
	if layout == nil {
		return nil, fmt.Errorf("core: nil layout")
	}
	if len(valueThre) != layout.NumNumeric() {
		return nil, fmt.Errorf("core: %d thresholds for %d numeric sensors",
			len(valueThre), layout.NumNumeric())
	}
	return &Binarizer{layout: layout, valueThre: append([]float64(nil), valueThre...)}, nil
}

// Layout returns the device layout the binarizer was built for.
func (b *Binarizer) Layout() *window.Layout { return b.layout }

// ValueThre returns a copy of the numeric thresholds.
func (b *Binarizer) ValueThre() []float64 { return append([]float64(nil), b.valueThre...) }

// NumBits returns the state-set width.
func (b *Binarizer) NumBits() int {
	return b.layout.NumBinary() + BitsPerNumeric*b.layout.NumNumeric()
}

// StateSet builds the sensor state set for one observation. The observation
// must be shaped for the binarizer's layout.
func (b *Binarizer) StateSet(o *window.Observation) (*bitvec.Vec, error) {
	v := bitvec.New(b.NumBits())
	if err := b.StateSetInto(v, o); err != nil {
		return nil, err
	}
	return v, nil
}

// StateSetInto builds the state set into a caller-owned vector, overwriting
// its contents. The vector must be NumBits wide. The detector reuses one
// vector across windows through this, keeping the per-window hot path
// allocation-free.
func (b *Binarizer) StateSetInto(v *bitvec.Vec, o *window.Observation) error {
	nb, nn := b.layout.NumBinary(), b.layout.NumNumeric()
	if len(o.Binary) != nb || len(o.Numeric) != nn {
		return fmt.Errorf("core: observation shape %d/%d does not match layout %d/%d",
			len(o.Binary), len(o.Numeric), nb, nn)
	}
	if v.Len() != b.NumBits() {
		return fmt.Errorf("core: state-set vector has %d bits, layout wants %d", v.Len(), b.NumBits())
	}
	v.Reset()
	for i, fired := range o.Binary {
		if fired {
			v.Set(i)
		}
	}
	for j, samples := range o.Numeric {
		if len(samples) == 0 {
			continue // empty window: all three bits stay 0
		}
		base := nb + BitsPerNumeric*j
		if stats.Skewness(samples) > 0 {
			v.Set(base)
		}
		if samples[len(samples)-1]-samples[0] > 0 {
			v.Set(base + 1)
		}
		if stats.Mean(samples) > b.valueThre[j] {
			v.Set(base + 2)
		}
	}
	return nil
}

// DeviceForBit maps a state-set bit index back to the owning sensor, which
// is how the identification step turns differing bits into probable faulty
// sensors (Figure 3.7).
func (b *Binarizer) DeviceForBit(bit int) (device.ID, error) {
	nb := b.layout.NumBinary()
	if bit < 0 || bit >= b.NumBits() {
		return 0, fmt.Errorf("core: bit %d out of range [0, %d)", bit, b.NumBits())
	}
	if bit < nb {
		return b.layout.BinaryID(bit), nil
	}
	return b.layout.NumericID((bit - nb) / BitsPerNumeric), nil
}

// DevicesForBits maps a set of differing bits to the deduplicated set of
// owning sensors, preserving ascending device-ID order.
func (b *Binarizer) DevicesForBits(bits []int) ([]device.ID, error) {
	seen := make(map[device.ID]bool, len(bits))
	var out []device.ID
	for _, bit := range bits {
		id, err := b.DeviceForBit(bit)
		if err != nil {
			return nil, err
		}
		if !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}
	sortIDs(out)
	return out, nil
}

func sortIDs(ids []device.ID) {
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
}
