package core

import (
	"bytes"
	"errors"
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/bitvec"
)

// mustBuilder returns a fresh epoch-0 builder over the toy core layout.
func mustBuilder(t testing.TB) *ContextBuilder {
	t.Helper()
	l := coreLayout(t)
	cb, err := NewContextBuilder(l, time.Minute, []float64{20, 100})
	if err != nil {
		t.Fatal(err)
	}
	return cb
}

// seal builds the context, failing the test on error.
func seal(t testing.TB, cb *ContextBuilder) *Context {
	t.Helper()
	ctx, err := cb.Build()
	if err != nil {
		t.Fatal(err)
	}
	return ctx
}

func vec(t testing.TB, s string) *bitvec.Vec {
	t.Helper()
	v, err := bitvec.Parse(s)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestNewContextBuilderValidation(t *testing.T) {
	l := coreLayout(t)
	if _, err := NewContextBuilder(nil, time.Minute, nil); err == nil {
		t.Error("nil layout accepted")
	}
	if _, err := NewContextBuilder(l, time.Minute, []float64{1}); err == nil {
		t.Error("wrong threshold count accepted")
	}
	cb, err := NewContextBuilder(l, 0, []float64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if ctx := seal(t, cb); ctx.Duration() != DefaultDuration {
		t.Errorf("zero duration should default, got %v", ctx.Duration())
	}
}

func TestAddGroupInterns(t *testing.T) {
	cb := mustBuilder(t)
	a := vec(t, "10000000")
	b := vec(t, "01000000")
	id0 := cb.AddGroup(a)
	id1 := cb.AddGroup(b)
	id0again := cb.AddGroup(a.Clone())
	if id0 != 0 || id1 != 1 || id0again != 0 {
		t.Errorf("ids = %d, %d, %d", id0, id1, id0again)
	}
	ctx := seal(t, cb)
	if ctx.NumGroups() != 2 {
		t.Errorf("NumGroups = %d, want 2", ctx.NumGroups())
	}
	if id, ok := ctx.GroupID(b); !ok || id != 1 {
		t.Errorf("GroupID = (%d, %v)", id, ok)
	}
	if _, ok := ctx.GroupID(vec(t, "11111111")); ok {
		t.Error("unknown group found")
	}
}

func TestAddGroupCopies(t *testing.T) {
	cb := mustBuilder(t)
	a := vec(t, "10000000")
	cb.AddGroup(a)
	a.Set(7) // mutate the caller's vector
	g, err := seal(t, cb).Group(0)
	if err != nil {
		t.Fatal(err)
	}
	if g.Get(7) {
		t.Error("context aliased the caller's vector")
	}
}

func TestGroupErrors(t *testing.T) {
	if _, err := seal(t, mustBuilder(t)).Group(0); err == nil {
		t.Error("empty context returned a group")
	}
	cb := mustBuilder(t)
	cb.AddGroup(vec(t, "10000000"))
	if _, err := seal(t, cb).Group(-1); err == nil {
		t.Error("negative id accepted")
	}
}

func TestScanFindsMain(t *testing.T) {
	cb := mustBuilder(t)
	g0 := cb.AddGroup(vec(t, "10000000"))
	cb.AddGroup(vec(t, "11000000")) // distance 1 from g0
	cb.AddGroup(vec(t, "11100000")) // distance 2 from g0
	cb.AddGroup(vec(t, "11111111")) // far away
	ctx := seal(t, cb)

	c := ctx.Scan(vec(t, "10000000"), 2)
	if c.Main != g0 {
		t.Errorf("Main = %d, want %d", c.Main, g0)
	}
	// An exact match short-circuits the scan: no caller consumes Probable
	// or MinDistance when a main group exists.
	if c.Probable != nil {
		t.Errorf("Probable = %v, want nil on the exact-match path", c.Probable)
	}
	if c.MinDistance != NoDistance {
		t.Errorf("MinDistance = %d, want NoDistance", c.MinDistance)
	}
}

func TestScanEmptyCatalogue(t *testing.T) {
	ctx := seal(t, mustBuilder(t))
	c := ctx.Scan(vec(t, "10000000"), 2)
	if c.Main != NoGroup {
		t.Errorf("Main = %d, want NoGroup", c.Main)
	}
	if c.Probable != nil {
		t.Errorf("Probable = %v, want nil", c.Probable)
	}
	if c.MinDistance != NoDistance {
		t.Errorf("MinDistance = %d, want NoDistance (documented empty-catalogue sentinel)", c.MinDistance)
	}
	if n := ctx.ScanNaive(vec(t, "10000000"), 2); n.MinDistance != NoDistance || n.Main != NoGroup {
		t.Errorf("ScanNaive on empty catalogue = %+v", n)
	}
}

func TestScanNoMainGroup(t *testing.T) {
	cb := mustBuilder(t)
	g0 := cb.AddGroup(vec(t, "11000000"))
	cb.AddGroup(vec(t, "00111111"))
	c := seal(t, cb).Scan(vec(t, "10000000"), 1)
	if c.Main != NoGroup {
		t.Errorf("Main = %d, want NoGroup", c.Main)
	}
	if len(c.Probable) != 1 || c.Probable[0] != g0 {
		t.Errorf("Probable = %v, want [%d]", c.Probable, g0)
	}
	if c.MinDistance != 1 {
		t.Errorf("MinDistance = %d, want 1", c.MinDistance)
	}
}

func TestScanFallbackToNearest(t *testing.T) {
	cb := mustBuilder(t)
	// Both groups far from the query; candidate distance 1 finds none, so
	// Scan falls back to the nearest set.
	gNear := cb.AddGroup(vec(t, "11110000")) // distance 3 from query
	cb.AddGroup(vec(t, "11111111"))          // distance 7
	c := seal(t, cb).Scan(vec(t, "10000000"), 1)
	if c.Main != NoGroup {
		t.Fatalf("Main = %d, want NoGroup", c.Main)
	}
	if len(c.Probable) != 1 || c.Probable[0] != gNear {
		t.Errorf("fallback Probable = %v, want [%d]", c.Probable, gNear)
	}
	if c.MinDistance != 3 {
		t.Errorf("MinDistance = %d, want 3", c.MinDistance)
	}
}

func TestScanProbableOrderedByDistance(t *testing.T) {
	cb := mustBuilder(t)
	gFar := cb.AddGroup(vec(t, "01100000"))  // distance 3 from query
	gNear := cb.AddGroup(vec(t, "10100000")) // distance 1
	c := seal(t, cb).Scan(vec(t, "10000000"), 3)
	if len(c.Probable) != 2 || c.Probable[0] != gNear || c.Probable[1] != gFar {
		t.Errorf("Probable = %v, want [%d %d]", c.Probable, gNear, gFar)
	}
}

func TestCorrelationDegree(t *testing.T) {
	if got := seal(t, mustBuilder(t)).CorrelationDegree(); got != 0 {
		t.Error("empty context degree should be 0")
	}
	cb := mustBuilder(t)
	// Group 1: binary 0 active + numeric slot 0 active (2 sensors).
	// Layout bits: [b0 b1 | n0:skew n0:trend n0:mean | n1...]
	cb.AddGroup(vec(t, "10110000"))
	// Group 2: all four sensors active; three numeric-1 bits still one sensor.
	cb.AddGroup(vec(t, "11001111"))
	want := (2.0 + 4.0) / 2.0
	if got := seal(t, cb).CorrelationDegree(); math.Abs(got-want) > 1e-12 {
		t.Errorf("CorrelationDegree = %v, want %v", got, want)
	}
}

// TestBuilderVersionChain: a builder publishes an epoch chain — each Build
// seals an immutable snapshot whose parent hash pins its predecessor, and
// Derive forks a copy-on-write working copy without touching the original.
func TestBuilderVersionChain(t *testing.T) {
	cb := mustBuilder(t)
	g0 := cb.AddGroup(vec(t, "10000000"))
	base := seal(t, cb)
	if base.Epoch() != 0 {
		t.Fatalf("trained context epoch = %d, want 0", base.Epoch())
	}
	if base.Fingerprint() == "" || base.ParentFingerprint() != "" {
		t.Fatalf("base fingerprint/parent = %q/%q", base.Fingerprint(), base.ParentFingerprint())
	}

	db := base.Derive()
	g1 := db.AddGroup(vec(t, "01000000"))
	db.ObserveG2G(g0, g1)
	next := seal(t, db)
	if next.Epoch() != 1 || next.ParentFingerprint() != base.Fingerprint() {
		t.Fatalf("derived epoch/parent = %d/%q, want 1/%q", next.Epoch(), next.ParentFingerprint(), base.Fingerprint())
	}
	if next.Fingerprint() == base.Fingerprint() {
		t.Error("distinct versions share a fingerprint")
	}
	// The original version is untouched: group IDs are append-only and the
	// base still knows nothing about the new group or transition.
	if base.NumGroups() != 1 {
		t.Errorf("base NumGroups = %d after derive, want 1", base.NumGroups())
	}
	if base.G2G().Possible(g0, g1) {
		t.Error("derivation leaked a transition into the parent version")
	}
	if id, ok := next.GroupID(vec(t, "10000000")); !ok || id != g0 {
		t.Errorf("derived version lost group %d: (%d, %v)", g0, id, ok)
	}

	// The same builder keeps publishing: a further Build chains onto next.
	db.AddGroup(vec(t, "00100000"))
	third := seal(t, db)
	if third.Epoch() != 2 || third.ParentFingerprint() != next.Fingerprint() {
		t.Errorf("third epoch/parent = %d/%q, want 2/%q", third.Epoch(), third.ParentFingerprint(), next.Fingerprint())
	}
}

// TestFingerprintDeterministic: the fingerprint is a pure function of the
// context's payload, so an identically rebuilt context reproduces it.
func TestFingerprintDeterministic(t *testing.T) {
	build := func() *Context {
		cb := mustBuilder(t)
		a := cb.AddGroup(vec(t, "10110000"))
		b := cb.AddGroup(vec(t, "01001100"))
		cb.ObserveG2G(a, b)
		cb.ObserveG2A(a, 0)
		cb.ObserveA2G(0, b)
		return seal(t, cb)
	}
	c1, c2 := build(), build()
	if c1.Fingerprint() != c2.Fingerprint() {
		t.Errorf("identical builds disagree: %q vs %q", c1.Fingerprint(), c2.Fingerprint())
	}
}

func TestContextSaveLoadRoundTrip(t *testing.T) {
	l := coreLayout(t)
	cb, err := NewContextBuilder(l, 2*time.Minute, []float64{21.5, 98})
	if err != nil {
		t.Fatal(err)
	}
	g0 := cb.AddGroup(vec(t, "10110000"))
	g1 := cb.AddGroup(vec(t, "01001100"))
	cb.ObserveG2G(g0, g1)
	cb.ObserveG2G(g1, g1)
	cb.ObserveG2A(g0, 0)
	cb.ObserveA2G(0, g1)
	ctx := seal(t, cb)

	var buf bytes.Buffer
	if err := ctx.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadContext(&buf, l)
	if err != nil {
		t.Fatal(err)
	}
	if got.Duration() != 2*time.Minute {
		t.Errorf("duration = %v", got.Duration())
	}
	if got.NumGroups() != 2 {
		t.Fatalf("NumGroups = %d", got.NumGroups())
	}
	if id, ok := got.GroupID(vec(t, "01001100")); !ok || id != g1 {
		t.Errorf("group lookup after load: (%d, %v)", id, ok)
	}
	if !got.G2G().Possible(g0, g1) || !got.G2G().Possible(g1, g1) {
		t.Error("G2G lost transitions")
	}
	if !got.G2A().Possible(g0, 0) || !got.A2G().Possible(0, g1) {
		t.Error("G2A/A2G lost transitions")
	}
	thre := got.ValueThre()
	if thre[0] != 21.5 || thre[1] != 98 {
		t.Errorf("thresholds = %v", thre)
	}
	if got.Epoch() != ctx.Epoch() || got.Fingerprint() != ctx.Fingerprint() {
		t.Errorf("version lost: epoch %d/%d fingerprint %q/%q",
			got.Epoch(), ctx.Epoch(), got.Fingerprint(), ctx.Fingerprint())
	}
}

// TestContextEnvelope: Save writes the checksummed DICECKS1 envelope; a
// flipped payload byte surfaces as ErrCorruptContext, and a legacy
// plain-JSON stream (no envelope) still loads.
func TestContextEnvelope(t *testing.T) {
	l := coreLayout(t)
	cb, err := NewContextBuilder(l, time.Minute, []float64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	cb.AddGroup(vec(t, "10000000"))
	ctx := seal(t, cb)
	var buf bytes.Buffer
	if err := ctx.Save(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if !bytes.HasPrefix(raw, []byte("DICECKS1")) {
		t.Fatalf("saved context missing envelope magic: %q", raw[:8])
	}

	// Bit rot in the payload: CRC catches it.
	rot := append([]byte(nil), raw...)
	rot[len(rot)-2] ^= 0x40
	if _, err := LoadContext(bytes.NewReader(rot), l); !errors.Is(err, ErrCorruptContext) {
		t.Errorf("corrupt payload: err = %v, want ErrCorruptContext", err)
	}

	// Legacy fallback: the bare JSON payload (as written before the
	// envelope existed) still loads.
	legacy, err := LoadContext(bytes.NewReader(raw[12:]), l)
	if err != nil {
		t.Fatalf("legacy plain-JSON load: %v", err)
	}
	if legacy.Fingerprint() != ctx.Fingerprint() {
		t.Errorf("legacy load fingerprint %q, want %q", legacy.Fingerprint(), ctx.Fingerprint())
	}

	// A tampered fingerprint field fails verification.
	tampered := strings.Replace(string(raw[12:]), ctx.Fingerprint(), strings.Repeat("0", 16), 1)
	if _, err := LoadContext(strings.NewReader(tampered), l); !errors.Is(err, ErrCorruptContext) {
		t.Errorf("tampered fingerprint: err = %v, want ErrCorruptContext", err)
	}
}

func TestLoadContextRejectsWrongLayout(t *testing.T) {
	l := coreLayout(t)
	cb, err := NewContextBuilder(l, time.Minute, []float64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	cb.AddGroup(vec(t, "10000000"))
	ctx := seal(t, cb)
	var buf bytes.Buffer
	if err := ctx.Save(&buf); err != nil {
		t.Fatal(err)
	}
	// Work on the bare payload (legacy path) with the fingerprint blanked,
	// so the layout checks are what reject the mutations rather than the
	// integrity checks.
	text := strings.Replace(buf.String()[12:], ctx.Fingerprint(), "", 1)
	mutated := strings.Replace(text, "motion-a", "motion-X", 1)
	if _, err := LoadContext(strings.NewReader(mutated), l); err == nil {
		t.Error("renamed device accepted")
	}
	if _, err := LoadContext(strings.NewReader("{bad json"), l); err == nil {
		t.Error("malformed JSON accepted")
	}
	// Wrong group width.
	badWidth := strings.Replace(text, `"10000000"`, `"100"`, 1)
	if _, err := LoadContext(strings.NewReader(badWidth), l); err == nil {
		t.Error("wrong group width accepted")
	}
}
