package core

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/bitvec"
)

func mustContext(t testing.TB) *Context {
	t.Helper()
	l := coreLayout(t)
	ctx, err := NewContext(l, time.Minute, []float64{20, 100})
	if err != nil {
		t.Fatal(err)
	}
	return ctx
}

func vec(t testing.TB, s string) *bitvec.Vec {
	t.Helper()
	v, err := bitvec.Parse(s)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestNewContextValidation(t *testing.T) {
	l := coreLayout(t)
	if _, err := NewContext(nil, time.Minute, nil); err == nil {
		t.Error("nil layout accepted")
	}
	if _, err := NewContext(l, time.Minute, []float64{1}); err == nil {
		t.Error("wrong threshold count accepted")
	}
	ctx, err := NewContext(l, 0, []float64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if ctx.Duration() != DefaultDuration {
		t.Errorf("zero duration should default, got %v", ctx.Duration())
	}
}

func TestAddGroupInterns(t *testing.T) {
	ctx := mustContext(t)
	a := vec(t, "10000000")
	b := vec(t, "01000000")
	id0 := ctx.AddGroup(a)
	id1 := ctx.AddGroup(b)
	id0again := ctx.AddGroup(a.Clone())
	if id0 != 0 || id1 != 1 || id0again != 0 {
		t.Errorf("ids = %d, %d, %d", id0, id1, id0again)
	}
	if ctx.NumGroups() != 2 {
		t.Errorf("NumGroups = %d, want 2", ctx.NumGroups())
	}
	if id, ok := ctx.GroupID(b); !ok || id != 1 {
		t.Errorf("GroupID = (%d, %v)", id, ok)
	}
	if _, ok := ctx.GroupID(vec(t, "11111111")); ok {
		t.Error("unknown group found")
	}
}

func TestAddGroupCopies(t *testing.T) {
	ctx := mustContext(t)
	a := vec(t, "10000000")
	ctx.AddGroup(a)
	a.Set(7) // mutate the caller's vector
	g, err := ctx.Group(0)
	if err != nil {
		t.Fatal(err)
	}
	if g.Get(7) {
		t.Error("context aliased the caller's vector")
	}
}

func TestGroupErrors(t *testing.T) {
	ctx := mustContext(t)
	if _, err := ctx.Group(0); err == nil {
		t.Error("empty context returned a group")
	}
	ctx.AddGroup(vec(t, "10000000"))
	if _, err := ctx.Group(-1); err == nil {
		t.Error("negative id accepted")
	}
}

func TestScanFindsMain(t *testing.T) {
	ctx := mustContext(t)
	g0 := ctx.AddGroup(vec(t, "10000000"))
	ctx.AddGroup(vec(t, "11000000")) // distance 1 from g0
	ctx.AddGroup(vec(t, "11100000")) // distance 2 from g0
	ctx.AddGroup(vec(t, "11111111")) // far away

	c := ctx.Scan(vec(t, "10000000"), 2)
	if c.Main != g0 {
		t.Errorf("Main = %d, want %d", c.Main, g0)
	}
	// An exact match short-circuits the scan: no caller consumes Probable
	// or MinDistance when a main group exists.
	if c.Probable != nil {
		t.Errorf("Probable = %v, want nil on the exact-match path", c.Probable)
	}
	if c.MinDistance != NoDistance {
		t.Errorf("MinDistance = %d, want NoDistance", c.MinDistance)
	}
}

func TestScanEmptyCatalogue(t *testing.T) {
	ctx := mustContext(t)
	c := ctx.Scan(vec(t, "10000000"), 2)
	if c.Main != NoGroup {
		t.Errorf("Main = %d, want NoGroup", c.Main)
	}
	if c.Probable != nil {
		t.Errorf("Probable = %v, want nil", c.Probable)
	}
	if c.MinDistance != NoDistance {
		t.Errorf("MinDistance = %d, want NoDistance (documented empty-catalogue sentinel)", c.MinDistance)
	}
	if n := ctx.ScanNaive(vec(t, "10000000"), 2); n.MinDistance != NoDistance || n.Main != NoGroup {
		t.Errorf("ScanNaive on empty catalogue = %+v", n)
	}
}

func TestScanNoMainGroup(t *testing.T) {
	ctx := mustContext(t)
	g0 := ctx.AddGroup(vec(t, "11000000"))
	ctx.AddGroup(vec(t, "00111111"))
	c := ctx.Scan(vec(t, "10000000"), 1)
	if c.Main != NoGroup {
		t.Errorf("Main = %d, want NoGroup", c.Main)
	}
	if len(c.Probable) != 1 || c.Probable[0] != g0 {
		t.Errorf("Probable = %v, want [%d]", c.Probable, g0)
	}
	if c.MinDistance != 1 {
		t.Errorf("MinDistance = %d, want 1", c.MinDistance)
	}
}

func TestScanFallbackToNearest(t *testing.T) {
	ctx := mustContext(t)
	// Both groups far from the query; candidate distance 1 finds none, so
	// Scan falls back to the nearest set.
	gNear := ctx.AddGroup(vec(t, "11110000")) // distance 3 from query
	ctx.AddGroup(vec(t, "11111111"))          // distance 7
	c := ctx.Scan(vec(t, "10000000"), 1)
	if c.Main != NoGroup {
		t.Fatalf("Main = %d, want NoGroup", c.Main)
	}
	if len(c.Probable) != 1 || c.Probable[0] != gNear {
		t.Errorf("fallback Probable = %v, want [%d]", c.Probable, gNear)
	}
	if c.MinDistance != 3 {
		t.Errorf("MinDistance = %d, want 3", c.MinDistance)
	}
}

func TestScanProbableOrderedByDistance(t *testing.T) {
	ctx := mustContext(t)
	gFar := ctx.AddGroup(vec(t, "01100000"))  // distance 3 from query
	gNear := ctx.AddGroup(vec(t, "10100000")) // distance 1
	c := ctx.Scan(vec(t, "10000000"), 3)
	if len(c.Probable) != 2 || c.Probable[0] != gNear || c.Probable[1] != gFar {
		t.Errorf("Probable = %v, want [%d %d]", c.Probable, gNear, gFar)
	}
}

func TestCorrelationDegree(t *testing.T) {
	ctx := mustContext(t)
	if ctx.CorrelationDegree() != 0 {
		t.Error("empty context degree should be 0")
	}
	// Group 1: binary 0 active + numeric slot 0 active (2 sensors).
	// Layout bits: [b0 b1 | n0:skew n0:trend n0:mean | n1...]
	ctx.AddGroup(vec(t, "10110000"))
	// Group 2: all four sensors active; three numeric-1 bits still one sensor.
	ctx.AddGroup(vec(t, "11001111"))
	want := (2.0 + 4.0) / 2.0
	if got := ctx.CorrelationDegree(); math.Abs(got-want) > 1e-12 {
		t.Errorf("CorrelationDegree = %v, want %v", got, want)
	}
}

func TestContextSaveLoadRoundTrip(t *testing.T) {
	l := coreLayout(t)
	ctx, err := NewContext(l, 2*time.Minute, []float64{21.5, 98})
	if err != nil {
		t.Fatal(err)
	}
	g0 := ctx.AddGroup(vec(t, "10110000"))
	g1 := ctx.AddGroup(vec(t, "01001100"))
	ctx.G2G().Observe(g0, g1)
	ctx.G2G().Observe(g1, g1)
	ctx.G2A().Observe(g0, 0)
	ctx.A2G().Observe(0, g1)

	var buf bytes.Buffer
	if err := ctx.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadContext(&buf, l)
	if err != nil {
		t.Fatal(err)
	}
	if got.Duration() != 2*time.Minute {
		t.Errorf("duration = %v", got.Duration())
	}
	if got.NumGroups() != 2 {
		t.Fatalf("NumGroups = %d", got.NumGroups())
	}
	if id, ok := got.GroupID(vec(t, "01001100")); !ok || id != g1 {
		t.Errorf("group lookup after load: (%d, %v)", id, ok)
	}
	if !got.G2G().Possible(g0, g1) || !got.G2G().Possible(g1, g1) {
		t.Error("G2G lost transitions")
	}
	if !got.G2A().Possible(g0, 0) || !got.A2G().Possible(0, g1) {
		t.Error("G2A/A2G lost transitions")
	}
	thre := got.ValueThre()
	if thre[0] != 21.5 || thre[1] != 98 {
		t.Errorf("thresholds = %v", thre)
	}
}

func TestLoadContextRejectsWrongLayout(t *testing.T) {
	l := coreLayout(t)
	ctx, err := NewContext(l, time.Minute, []float64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	ctx.AddGroup(vec(t, "10000000"))
	var buf bytes.Buffer
	if err := ctx.Save(&buf); err != nil {
		t.Fatal(err)
	}
	// Rename a device inside the saved JSON to simulate a layout mismatch.
	text := buf.String()
	mutated := strings.Replace(text, "motion-a", "motion-X", 1)
	if _, err := LoadContext(strings.NewReader(mutated), l); err == nil {
		t.Error("renamed device accepted")
	}
	if _, err := LoadContext(strings.NewReader("{bad json"), l); err == nil {
		t.Error("malformed JSON accepted")
	}
	// Wrong group width.
	badWidth := strings.Replace(text, `"10000000"`, `"100"`, 1)
	if _, err := LoadContext(strings.NewReader(badWidth), l); err == nil {
		t.Error("wrong group width accepted")
	}
}
