package core

import (
	"fmt"

	"repro/internal/device"
)

// DetectorState is the JSON-serializable runtime state of a Detector: the
// previous-window group and actuators the transition checks compare
// against, the recent-actuator history, and any in-flight identification
// episodes. A gateway checkpoints it so a restarted process resumes the
// transition check mid-stream instead of cold-starting with NoGroup (which
// would blind the G2G/G2A/A2G checks for the first post-restart window and
// abandon a half-finished identification).
type DetectorState struct {
	PrevGroup  int               `json:"prev_group"`
	PrevActs   []device.ID       `json:"prev_acts,omitempty"`
	RecentActs map[device.ID]int `json:"recent_acts,omitempty"`
	// Episode is the legacy single-episode field (pre-multi-fault
	// checkpoints). Writers populate it with the first open episode so old
	// readers keep working; readers prefer Episodes when present.
	Episode *EpisodeState `json:"episode,omitempty"`
	// Episodes carries every open identification episode in opening order
	// (more than one only with MaxFaults > 1).
	Episodes []*EpisodeState `json:"episodes,omitempty"`
	// Dwell and LastFires carry the timing check's gap bookkeeping (the
	// consecutive windows spent in PrevGroup, and each actuator slot's most
	// recent firing window). Absent in pre-timing checkpoints, which restore
	// with the timing state cold (dwell 0, no firings) — structurally
	// identical to a fresh segment start.
	Dwell     int         `json:"dwell,omitempty"`
	LastFires map[int]int `json:"last_fires,omitempty"`
}

// EpisodeState is the serialized form of an in-progress identification
// episode.
type EpisodeState struct {
	Cause          CheckKind   `json:"cause"`
	DetectedWindow int         `json:"detected_window"`
	Intersection   []device.ID `json:"intersection"`
	Stalls         int         `json:"stalls"`
	NormalStreak   int         `json:"normal_streak"`
	Length         int         `json:"length"`
	// Corroboration counts the informative windows that fed the episode;
	// absent in pre-multi-fault checkpoints, which restore as if the
	// opening window were the only evidence so far.
	Corroboration int         `json:"corroboration,omitempty"`
	MissingEffect bool        `json:"missing_effect,omitempty"`
	SurplusEffect bool        `json:"surplus_effect,omitempty"`
	OpeningActs   []device.ID `json:"opening_acts,omitempty"`
	OpeningPrev   int         `json:"opening_prev"`
	FiredActs     []device.ID `json:"fired_acts,omitempty"`
	// Trace carries the episode's decision trace across restarts, so an
	// alert concluded after a restore explains itself identically to one
	// from an uninterrupted run. Absent in pre-trace checkpoints.
	Trace *Explain `json:"trace,omitempty"`
}

// exportEpisode snapshots one episode.
func exportEpisode(ep *episode) *EpisodeState {
	return &EpisodeState{
		Cause:          ep.cause,
		DetectedWindow: ep.detectedWindow,
		Intersection:   setToSlice(ep.intersection),
		Stalls:         ep.stalls,
		NormalStreak:   ep.normalStreak,
		Length:         ep.length,
		Corroboration:  ep.corroboration,
		MissingEffect:  ep.missingEffect,
		SurplusEffect:  ep.surplusEffect,
		OpeningActs:    setToSlice(ep.openingActs),
		OpeningPrev:    ep.openingPrev,
		FiredActs:      setToSlice(ep.firedActs),
		Trace:          ep.trace.Clone(),
	}
}

// restoreEpisode rebuilds one episode from its snapshot.
func restoreEpisode(eps *EpisodeState) *episode {
	corr := eps.Corroboration
	if corr == 0 {
		corr = 1
	}
	return &episode{
		cause:          eps.Cause,
		detectedWindow: eps.DetectedWindow,
		intersection:   toSet(eps.Intersection),
		stalls:         eps.Stalls,
		normalStreak:   eps.NormalStreak,
		length:         eps.Length,
		corroboration:  corr,
		missingEffect:  eps.MissingEffect,
		surplusEffect:  eps.SurplusEffect,
		openingActs:    toSet(eps.OpeningActs),
		openingPrev:    eps.OpeningPrev,
		firedActs:      toSet(eps.FiredActs),
		trace:          eps.Trace.Clone(),
	}
}

// ExportState snapshots the detector's runtime state. The snapshot shares
// nothing with the detector and stays valid across further Process calls.
func (d *Detector) ExportState() DetectorState {
	st := DetectorState{
		PrevGroup: d.prevGroup,
		PrevActs:  append([]device.ID(nil), d.prevActs...),
		Dwell:     d.dwell,
	}
	for slot, at := range d.lastFire {
		if at < 0 {
			continue
		}
		if st.LastFires == nil {
			st.LastFires = make(map[int]int)
		}
		st.LastFires[slot] = at
	}
	if len(d.recentActs) > 0 {
		st.RecentActs = make(map[device.ID]int, len(d.recentActs))
		for id, at := range d.recentActs {
			st.RecentActs[id] = at
		}
	}
	for _, ep := range d.eps {
		st.Episodes = append(st.Episodes, exportEpisode(ep))
	}
	if len(st.Episodes) > 0 {
		// Mirror the first episode into the legacy field for old readers.
		st.Episode = st.Episodes[0]
	}
	return st
}

// RestoreState replaces the detector's runtime state with a snapshot taken
// by ExportState, validating group references against the trained context.
func (d *Detector) RestoreState(st DetectorState) error {
	if err := d.checkGroupRef(st.PrevGroup); err != nil {
		return fmt.Errorf("core: restore prev group: %w", err)
	}
	episodes := st.Episodes
	if episodes == nil && st.Episode != nil {
		episodes = []*EpisodeState{st.Episode}
	}
	for _, eps := range episodes {
		if err := d.checkGroupRef(eps.OpeningPrev); err != nil {
			return fmt.Errorf("core: restore episode opening group: %w", err)
		}
	}
	for slot := range st.LastFires {
		if slot < 0 || slot >= len(d.lastFire) {
			return fmt.Errorf("core: restore last-fire slot %d out of range (layout has %d actuators)",
				slot, len(d.lastFire))
		}
	}
	d.prevGroup = st.PrevGroup
	d.prevActs = append(d.prevActs[:0], st.PrevActs...)
	d.dwell = st.Dwell
	for i := range d.lastFire {
		d.lastFire[i] = -1
	}
	for slot, at := range st.LastFires {
		d.lastFire[slot] = at
	}
	d.recentActs = make(map[device.ID]int, len(st.RecentActs))
	for id, at := range st.RecentActs {
		d.recentActs[id] = at
	}
	d.eps = nil
	for _, eps := range episodes {
		d.eps = append(d.eps, restoreEpisode(eps))
	}
	return nil
}

// checkGroupRef validates a serialized group reference (NoGroup is legal).
func (d *Detector) checkGroupRef(g int) error {
	if g == NoGroup {
		return nil
	}
	if g < 0 || g >= d.ctx.NumGroups() {
		return fmt.Errorf("group %d out of range (context has %d groups)", g, d.ctx.NumGroups())
	}
	return nil
}
