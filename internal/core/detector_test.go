package core

import (
	"testing"
	"time"

	"repro/internal/device"
	"repro/internal/window"
)

// trainAlternating trains a context on the alternating two-state scenario
// from trainer_test.go and returns it with its layout.
func trainAlternating(t testing.TB) (*window.Layout, *Context) {
	t.Helper()
	l := coreLayout(t)
	ctx, err := TrainWindows(l, time.Minute, trainScenario(t, l, 60))
	if err != nil {
		t.Fatal(err)
	}
	return l, ctx
}

// evenObs/oddObs reproduce the two normal states of the training scenario.
func evenObs(l *window.Layout, idx int) *window.Observation {
	return makeObs(l, idx, []bool{true, false}, [][]float64{{30, 30, 30}, {50, 50, 50}})
}

func oddObs(l *window.Layout, idx int) *window.Observation {
	return makeObs(l, idx, []bool{false, true}, [][]float64{{10, 10, 10}, {50, 50, 50}}, device.ID(4))
}

func newTestDetector(t testing.TB, ctx *Context, cfg Config) *Detector {
	t.Helper()
	d, err := New(ctx, WithConfig(cfg))
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func feedNormal(t testing.TB, d *Detector, l *window.Layout, from, n int) int {
	t.Helper()
	for i := 0; i < n; i++ {
		idx := from + i
		var o *window.Observation
		if idx%2 == 0 {
			o = evenObs(l, idx)
		} else {
			o = oddObs(l, idx)
		}
		res, err := d.Process(o)
		if err != nil {
			t.Fatal(err)
		}
		if res.Detected || res.Alert != nil {
			t.Fatalf("false positive at window %d: %+v", idx, res)
		}
	}
	return from + n
}

func TestNewDetectorValidation(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Error("nil context accepted")
	}
	l := coreLayout(t)
	cb, err := NewContextBuilder(l, time.Minute, []float64{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	empty, err := cb.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(empty); err == nil {
		t.Error("empty context accepted")
	}
}

func TestDetectorCleanStream(t *testing.T) {
	l, ctx := trainAlternating(t)
	d := newTestDetector(t, ctx, Config{})
	feedNormal(t, d, l, 0, 50)
	if d.Identifying() {
		t.Error("detector identifying after clean stream")
	}
}

func TestCorrelationViolationDetectedAndIdentified(t *testing.T) {
	l, ctx := trainAlternating(t)
	d := newTestDetector(t, ctx, Config{})
	next := feedNormal(t, d, l, 0, 10)

	// Fail-stop of motion-a (ID 0): its bit goes dark on even windows,
	// producing a state set never seen in training.
	var alert *Alert
	detectedAt := -1
	for i := 0; i < 20 && alert == nil; i++ {
		idx := next + i
		var o *window.Observation
		if idx%2 == 0 {
			o = evenObs(l, idx)
			o.Binary[0] = false // the fault
		} else {
			o = oddObs(l, idx)
		}
		res, err := d.Process(o)
		if err != nil {
			t.Fatal(err)
		}
		if res.Detected {
			detectedAt = idx
			if res.Violation != CheckCorrelation {
				t.Errorf("violation = %v, want correlation", res.Violation)
			}
		}
		alert = res.Alert
	}
	if detectedAt < 0 {
		t.Fatal("fault never detected")
	}
	if alert == nil {
		t.Fatal("fault never identified")
	}
	if len(alert.Devices) != 1 || alert.Devices[0] != 0 {
		t.Errorf("identified %v, want [0]", alert.Devices)
	}
	if alert.Cause != CheckCorrelation {
		t.Errorf("cause = %v", alert.Cause)
	}
	if alert.DetectedWindow != detectedAt {
		t.Errorf("DetectedWindow = %d, want %d", alert.DetectedWindow, detectedAt)
	}
	if alert.ReportedWindow < alert.DetectedWindow {
		t.Error("reported before detected")
	}
	if d.Identifying() {
		t.Error("episode not closed after alert")
	}
}

func TestNumericFaultIdentified(t *testing.T) {
	l, ctx := trainAlternating(t)
	d := newTestDetector(t, ctx, Config{})
	next := feedNormal(t, d, l, 0, 10)

	// Stuck-at-high temp sensor (ID 2): on odd windows the temp should be
	// low (mean bit 0) but reports high.
	var alert *Alert
	for i := 0; i < 30 && alert == nil; i++ {
		idx := next + i
		var o *window.Observation
		if idx%2 == 0 {
			o = evenObs(l, idx)
		} else {
			o = oddObs(l, idx)
		}
		o.Numeric[0] = []float64{30, 30, 30} // stuck high regardless of state
		res, err := d.Process(o)
		if err != nil {
			t.Fatal(err)
		}
		alert = res.Alert
	}
	if alert == nil {
		t.Fatal("numeric fault never identified")
	}
	if len(alert.Devices) != 1 || alert.Devices[0] != 2 {
		t.Errorf("identified %v, want [2]", alert.Devices)
	}
}

func TestG2GViolationDetected(t *testing.T) {
	// Train on a strict 3-cycle A->B->C->A so that A->C is a known-group
	// but impossible transition.
	l := coreLayout(t)
	a := makeObs(l, 0, []bool{true, false}, [][]float64{{0}, {0}})
	b := makeObs(l, 1, []bool{false, true}, [][]float64{{0}, {0}})
	c := makeObs(l, 2, []bool{true, true}, [][]float64{{0}, {0}})
	var obs []*window.Observation
	for i := 0; i < 30; i++ {
		o := [3]*window.Observation{a, b, c}[i%3].Clone()
		o.Index = i
		obs = append(obs, o)
	}
	ctx, err := TrainWindows(l, time.Minute, obs)
	if err != nil {
		t.Fatal(err)
	}
	if ctx.NumGroups() != 3 {
		t.Fatalf("NumGroups = %d, want 3", ctx.NumGroups())
	}
	d := newTestDetector(t, ctx, Config{})
	// Feed A then C: both known groups, transition impossible.
	if _, err := d.Process(a.Clone()); err != nil {
		t.Fatal(err)
	}
	res, err := d.Process(c.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Detected || res.Violation != CheckG2G {
		t.Fatalf("want G2G detection, got %+v", res)
	}
	// Suspects: diff of C against successors of A (i.e. B). C and B differ
	// in bit 0 (motion-a): the suspect should be device 0.
	if len(res.Probable) != 1 || res.Probable[0] != 0 {
		t.Errorf("probable = %v, want [0]", res.Probable)
	}
}

func TestG2AViolationFlagsActuator(t *testing.T) {
	l, ctx := trainAlternating(t)
	d := newTestDetector(t, ctx, Config{})
	next := feedNormal(t, d, l, 0, 10)
	// Bulb fires after an even window; training only ever saw it fire
	// after odd-window groups' predecessor (group 0 = even state). In the
	// alternating scenario the bulb fires on odd windows, so G2A has
	// group0->bulb. Firing it after an odd window (prev group 1) violates.
	idx := next // even index; prev window was odd -> prev group 1
	o := evenObs(l, idx)
	o.Actuated = []device.ID{4} // bulb fires spuriously
	res, err := d.Process(o)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Detected || res.Violation != CheckG2A {
		t.Fatalf("want G2A detection, got %+v", res)
	}
	if res.Alert == nil {
		t.Fatal("single-actuator suspect should report immediately")
	}
	if len(res.Alert.Devices) != 1 || res.Alert.Devices[0] != 4 {
		t.Errorf("identified %v, want [4]", res.Alert.Devices)
	}
}

func TestA2GViolationDetected(t *testing.T) {
	l, ctx := trainAlternating(t)
	d := newTestDetector(t, ctx, Config{})
	next := feedNormal(t, d, l, 0, 9) // ends after an even window (idx 8), next=9

	// Odd window: bulb fires normally (A2G bulb->group0 expected next).
	if _, err := d.Process(oddObs(l, next)); err != nil {
		t.Fatal(err)
	}
	// Next window: present the odd-state group again (group 1) instead of
	// the even group the bulb always leads to -> A2G violation.
	o := makeObs(l, next+1, []bool{false, true}, [][]float64{{10, 10, 10}, {50, 50, 50}})
	res, err := d.Process(o)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Detected {
		t.Fatalf("A2G violation not detected: %+v", res)
	}
	if res.Violation != CheckA2G && res.Violation != CheckG2G {
		t.Fatalf("violation = %v, want a transition check", res.Violation)
	}
}

func TestIdentificationIntersectionNarrows(t *testing.T) {
	// Build a context where the faulty window initially implicates several
	// sensors, and the intersection across repeated windows narrows to one.
	l, ctx := trainAlternating(t)
	d := newTestDetector(t, ctx, Config{MaxFaults: 1})
	next := feedNormal(t, d, l, 0, 10)

	// light sensor (ID 3) dies: on all windows its mean bit drops from the
	// trained pattern (light is 50 with threshold 50 -> bits 000 normally;
	// make training different first). Instead: light jumps high on even
	// windows only; this makes the even state set unseen while odd windows
	// remain normal, so identification sees repeated evidence on evens.
	var alert *Alert
	steps := 0
	for i := 0; i < 40 && alert == nil; i++ {
		idx := next + i
		var o *window.Observation
		if idx%2 == 0 {
			o = evenObs(l, idx)
			o.Numeric[1] = []float64{500, 500, 500} // fault: light very high
		} else {
			o = oddObs(l, idx)
		}
		res, err := d.Process(o)
		if err != nil {
			t.Fatal(err)
		}
		steps++
		alert = res.Alert
	}
	if alert == nil {
		t.Fatal("fault never identified")
	}
	if len(alert.Devices) != 1 || alert.Devices[0] != 3 {
		t.Errorf("identified %v, want [3]", alert.Devices)
	}
}

func TestIdentifyGiveUpOnNormalStreak(t *testing.T) {
	l, ctx := trainAlternating(t)
	d := newTestDetector(t, ctx, Config{IdentifyGiveUp: 3, MaxFaults: 1})
	next := feedNormal(t, d, l, 0, 10)

	// One transient glitch implicating two devices (both motions swapped)
	// then a return to normal: identification should give up and report
	// the standing intersection after 3 clean windows.
	o := makeObs(l, next, []bool{true, true}, [][]float64{{30, 30, 30}, {50, 50, 50}})
	res, err := d.Process(o)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Detected {
		t.Fatalf("glitch not detected: %+v", res)
	}
	if res.Alert != nil {
		t.Skip("glitch identified immediately; give-up path not exercised")
	}
	var alert *Alert
	for i := 1; i <= 10 && alert == nil; i++ {
		idx := next + i
		var w *window.Observation
		if idx%2 == 0 {
			w = evenObs(l, idx)
		} else {
			w = oddObs(l, idx)
		}
		r, err := d.Process(w)
		if err != nil {
			t.Fatal(err)
		}
		alert = r.Alert
	}
	if alert == nil {
		t.Fatal("identification never gave up despite clean stream")
	}
	if len(alert.Devices) == 0 {
		t.Error("give-up alert carried no devices")
	}
}

func TestWeightedDeviceReportsEarly(t *testing.T) {
	l, ctx := trainAlternating(t)
	// Weight device 1 (motion-b) as critical.
	d := newTestDetector(t, ctx, Config{
		MaxFaults:   1,
		Weights:     map[device.ID]float64{1: 10},
		WeightAlarm: 5,
	})
	next := feedNormal(t, d, l, 0, 10)
	// A window implicating both motion sensors: without weights this needs
	// narrowing; with the weight on device 1 it reports immediately.
	o := makeObs(l, next, []bool{true, true}, [][]float64{{30, 30, 30}, {50, 50, 50}})
	res, err := d.Process(o)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Detected {
		t.Fatalf("not detected: %+v", res)
	}
	if res.Alert == nil {
		t.Fatal("weighted device did not trigger early report")
	}
	if len(res.Alert.Devices) > 1 && !res.Alert.EarlyWeight {
		t.Error("multi-device early report should be flagged EarlyWeight")
	}
	found := false
	for _, id := range res.Alert.Devices {
		if id == 1 {
			found = true
		}
	}
	if !found {
		t.Errorf("critical device missing from alert: %v", res.Alert.Devices)
	}
}

func TestResetClearsState(t *testing.T) {
	l, ctx := trainAlternating(t)
	d := newTestDetector(t, ctx, Config{})
	feedNormal(t, d, l, 0, 4)
	// Trigger a violation to enter identification.
	o := makeObs(l, 4, []bool{true, true}, [][]float64{{30, 30, 30}, {50, 50, 50}})
	res, err := d.Process(o)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Detected {
		t.Fatal("setup violation not detected")
	}
	d.Reset()
	if d.Identifying() {
		t.Error("Reset left an episode active")
	}
	// After reset the detector has no previous group: an odd window right
	// away must not be a G2G violation.
	r2, err := d.Process(oddObs(l, 100))
	if err != nil {
		t.Fatal(err)
	}
	if r2.Detected {
		t.Errorf("detection fired immediately after reset: %+v", r2)
	}
}

func TestTimingPopulated(t *testing.T) {
	l, ctx := trainAlternating(t)
	d := newTestDetector(t, ctx, Config{})
	res, err := d.Process(evenObs(l, 0))
	if err != nil {
		t.Fatal(err)
	}
	if res.Timing.Binarize <= 0 || res.Timing.Correlation <= 0 {
		t.Errorf("timing not populated: %+v", res.Timing)
	}
	if res.Timing.Total() < res.Timing.Binarize {
		t.Error("Total less than a component")
	}
}

func TestCheckKindStrings(t *testing.T) {
	if CheckNone.String() != "none" || CheckCorrelation.String() != "correlation" ||
		CheckG2G.String() != "g2g" || CheckG2A.String() != "g2a" || CheckA2G.String() != "a2g" {
		t.Error("CheckKind.String mismatch")
	}
	if CheckKind(42).String() == "" {
		t.Error("unknown kind should render")
	}
	if CheckCorrelation.IsTransition() {
		t.Error("correlation is not a transition check")
	}
	if !CheckG2G.IsTransition() || !CheckG2A.IsTransition() || !CheckA2G.IsTransition() {
		t.Error("transition kinds misclassified")
	}
}

func TestConfigNormalize(t *testing.T) {
	c := Config{}.Normalize()
	if c.Duration != DefaultDuration || c.MaxFaults != DefaultMaxFaults {
		t.Errorf("defaults: %+v", c)
	}
	if c.CandidateDistance != 3*DefaultMaxFaults {
		t.Errorf("CandidateDistance = %d", c.CandidateDistance)
	}
	c2 := Config{MaxFaults: 3}.Normalize()
	if c2.CandidateDistance != 9 {
		t.Errorf("CandidateDistance for 3 faults = %d, want 9", c2.CandidateDistance)
	}
	c3 := Config{CandidateDistance: 2}.Normalize()
	if c3.CandidateDistance != 2 {
		t.Error("explicit CandidateDistance overridden")
	}
}

func BenchmarkDetectorProcessClean(b *testing.B) {
	l, ctx := trainAlternating(b)
	d, err := New(ctx)
	if err != nil {
		b.Fatal(err)
	}
	even := evenObs(l, 0)
	odd := oddObs(l, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o := even
		if i%2 == 1 {
			o = odd
		}
		o.Index = i
		if _, err := d.Process(o); err != nil {
			b.Fatal(err)
		}
	}
}

func TestAttestationFiltersAndDismisses(t *testing.T) {
	l, ctx := trainAlternating(t)

	// An attestor that clears every device dismisses the episode entirely.
	allHealthy := func(devices []device.ID) []device.ID { return nil }
	d := newTestDetector(t, ctx, Config{Attest: allHealthy})
	next := feedNormal(t, d, l, 0, 10)
	sawAlert := false
	for i := 0; i < 20; i++ {
		idx := next + i
		var o *window.Observation
		if idx%2 == 0 {
			o = evenObs(l, idx)
			o.Binary[0] = false // fail-stop motion-a
		} else {
			o = oddObs(l, idx)
		}
		res, err := d.Process(o)
		if err != nil {
			t.Fatal(err)
		}
		if res.Alert != nil {
			sawAlert = true
		}
	}
	if sawAlert {
		t.Error("attestor cleared all devices but an alert still fired")
	}

	// An attestor that confirms the fault passes it through unchanged.
	confirm := func(devices []device.ID) []device.ID { return devices }
	d2 := newTestDetector(t, ctx, Config{Attest: confirm})
	next = feedNormal(t, d2, l, 0, 10)
	var alert *Alert
	for i := 0; i < 20 && alert == nil; i++ {
		idx := next + i
		var o *window.Observation
		if idx%2 == 0 {
			o = evenObs(l, idx)
			o.Binary[0] = false
		} else {
			o = oddObs(l, idx)
		}
		res, err := d2.Process(o)
		if err != nil {
			t.Fatal(err)
		}
		alert = res.Alert
	}
	if alert == nil || len(alert.Devices) != 1 || alert.Devices[0] != 0 {
		t.Fatalf("confirming attestor changed the outcome: %+v", alert)
	}
}
