package core

import (
	"math/rand"
	"reflect"
	"testing"
	"time"

	"repro/internal/bitvec"
	"repro/internal/device"
	"repro/internal/window"
)

// wideLayout builds a layout whose state set spans several words, so the
// indexed scan's word loop and popcount buckets are exercised beyond the
// 8-bit toy layout of the other tests: 80 binary + 16 numeric = 128 bits.
func wideLayout(t testing.TB) (*window.Layout, []float64) {
	t.Helper()
	reg := device.NewRegistry()
	for i := 0; i < 80; i++ {
		reg.MustAdd("bin-"+string(rune('a'+i%26))+"-"+string(rune('0'+i/26)), device.Binary, device.Motion, "room")
	}
	thre := make([]float64, 16)
	for i := 0; i < 16; i++ {
		reg.MustAdd("num-"+string(rune('a'+i)), device.Numeric, device.Temperature, "room")
		thre[i] = 20
	}
	return window.NewLayout(reg), thre
}

// randVec draws a vector of n bits with the given set-bit density.
func randVec(rng *rand.Rand, n int, density float64) *bitvec.Vec {
	v := bitvec.New(n)
	for i := 0; i < n; i++ {
		if rng.Float64() < density {
			v.Set(i)
		}
	}
	return v
}

// randCatalogue interns size random groups clustered around a handful of
// seed patterns, mimicking real catalogues where groups are near-neighbours
// of each other rather than uniform noise, and returns the sealed context.
func randCatalogue(t testing.TB, rng *rand.Rand, layout *window.Layout, thre []float64, nbits, size int) *Context {
	t.Helper()
	cb, err := NewContextBuilder(layout, time.Minute, thre)
	if err != nil {
		t.Fatal(err)
	}
	seeds := make([]*bitvec.Vec, 8)
	for i := range seeds {
		seeds[i] = randVec(rng, nbits, 0.25)
	}
	for cb.NumGroups() < size {
		g := seeds[rng.Intn(len(seeds))].Clone()
		for f := rng.Intn(6); f > 0; f-- {
			g.Flip(rng.Intn(nbits))
		}
		cb.AddGroup(g)
	}
	ctx, err := cb.Build()
	if err != nil {
		t.Fatal(err)
	}
	return ctx
}

// TestScanMatchesNaiveReference is the property-style equivalence test: the
// indexed Scan must return identical Candidates to the retained naive
// reference across randomized catalogues, queries, and candidate distances.
func TestScanMatchesNaiveReference(t *testing.T) {
	layout, thre := wideLayout(t)
	nbits := layout.NumBinary() + BitsPerNumeric*layout.NumNumeric()
	rng := rand.New(rand.NewSource(7))
	for round := 0; round < 40; round++ {
		ctx := randCatalogue(t, rng, layout, thre, nbits, 1+rng.Intn(200))
		scratch := new(ScanScratch)
		for q := 0; q < 25; q++ {
			var query *bitvec.Vec
			switch q % 3 {
			case 0: // exact-match path
				g, err := ctx.Group(rng.Intn(ctx.NumGroups()))
				if err != nil {
					t.Fatal(err)
				}
				query = g.Clone()
			case 1: // near-miss: a group with a few bits flipped
				g, err := ctx.Group(rng.Intn(ctx.NumGroups()))
				if err != nil {
					t.Fatal(err)
				}
				query = g.Clone()
				for f := 1 + rng.Intn(4); f > 0; f-- {
					query.Flip(rng.Intn(nbits))
				}
			default: // far query
				query = randVec(rng, nbits, rng.Float64())
			}
			maxDist := rng.Intn(8)
			got := ctx.ScanWith(scratch, query, maxDist)
			want := ctx.ScanNaive(query, maxDist)
			if got.Main != want.Main || got.MinDistance != want.MinDistance ||
				!equalIntSlices(got.Probable, want.Probable) {
				t.Fatalf("round %d query %d maxDist %d:\nindexed %+v\nnaive   %+v",
					round, q, maxDist, got, want)
			}
		}
	}
}

func equalIntSlices(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestScanWithScratchReuse: reusing one scratch across scans must not leak
// results between calls.
func TestScanWithScratchReuse(t *testing.T) {
	layout, thre := wideLayout(t)
	nbits := layout.NumBinary() + BitsPerNumeric*layout.NumNumeric()
	rng := rand.New(rand.NewSource(11))
	ctx := randCatalogue(t, rng, layout, thre, nbits, 64)
	scratch := new(ScanScratch)
	q1 := randVec(rng, nbits, 0.25)
	first := ctx.ScanWith(scratch, q1, 4)
	firstCopy := Candidates{
		Main:        first.Main,
		Probable:    append([]int(nil), first.Probable...),
		MinDistance: first.MinDistance,
	}
	// A second scan through the same scratch may overwrite first.Probable's
	// memory (documented); the fresh result must still match the reference.
	q2 := randVec(rng, nbits, 0.5)
	second := ctx.ScanWith(scratch, q2, 4)
	want := ctx.ScanNaive(q2, 4)
	if second.Main != want.Main || !equalIntSlices(second.Probable, want.Probable) {
		t.Fatalf("second scan diverged: %+v vs %+v", second, want)
	}
	if wantFirst := ctx.ScanNaive(q1, 4); !reflect.DeepEqual(firstCopy, wantFirst) {
		t.Fatalf("first scan (copied before reuse) diverged: %+v vs %+v", firstCopy, wantFirst)
	}
}

// TestScanExactMatchAllocFree: the exact-match path of ScanWith must not
// allocate — it is the per-window common case of the real-time phase.
func TestScanExactMatchAllocFree(t *testing.T) {
	layout, thre := wideLayout(t)
	nbits := layout.NumBinary() + BitsPerNumeric*layout.NumNumeric()
	rng := rand.New(rand.NewSource(3))
	ctx := randCatalogue(t, rng, layout, thre, nbits, 256)
	g, err := ctx.Group(100)
	if err != nil {
		t.Fatal(err)
	}
	query := g.Clone()
	scratch := new(ScanScratch)
	ctx.ScanWith(scratch, query, 4) // warm the scratch
	allocs := testing.AllocsPerRun(100, func() {
		c := ctx.ScanWith(scratch, query, 4)
		if c.Main != 100 {
			t.Fatal("lost the main group")
		}
	})
	if allocs != 0 {
		t.Errorf("exact-match ScanWith allocates %.1f objects per run, want 0", allocs)
	}
}

// TestScanViolationPathAllocs: with a warmed scratch, the violation path is
// bounded by sort.Slice's fixed overhead, not by per-group allocations.
func TestScanViolationPathAllocs(t *testing.T) {
	layout, thre := wideLayout(t)
	nbits := layout.NumBinary() + BitsPerNumeric*layout.NumNumeric()
	rng := rand.New(rand.NewSource(5))
	ctx := randCatalogue(t, rng, layout, thre, nbits, 256)
	g, err := ctx.Group(100)
	if err != nil {
		t.Fatal(err)
	}
	query := g.Clone()
	query.Flip(0)
	query.Flip(nbits - 1) // near-miss: forces the bucketed scan
	scratch := new(ScanScratch)
	ctx.ScanWith(scratch, query, 4) // warm the scratch
	allocs := testing.AllocsPerRun(100, func() {
		ctx.ScanWith(scratch, query, 4)
	})
	if allocs > 4 {
		t.Errorf("violation-path ScanWith allocates %.1f objects per run, want <= 4", allocs)
	}
}

// TestDetectorCleanWindowAllocFree: a clean (trained) window through
// Detector.Process must not allocate once the detector is warm.
func TestDetectorCleanWindowAllocFree(t *testing.T) {
	l := coreLayout(t)
	obs := make([]*window.Observation, 12)
	for i := range obs {
		o := l.NewObservation(i)
		o.Binary[0] = i%2 == 0
		o.Binary[1] = i%2 == 1
		temp, light := 10.0, 50.0
		if i%2 == 0 {
			temp, light = 30, 200
		}
		o.Numeric[0] = []float64{temp, temp}
		o.Numeric[1] = []float64{light, light}
		obs[i] = o
	}
	ctx, err := TrainWindows(l, time.Minute, obs)
	if err != nil {
		t.Fatal(err)
	}
	det, err := New(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// Warm: replay once so maps and scratch reach steady state.
	for _, o := range obs {
		if _, err := det.Process(o); err != nil {
			t.Fatal(err)
		}
	}
	i := 0
	allocs := testing.AllocsPerRun(200, func() {
		res, err := det.Process(obs[i%len(obs)])
		i++
		if err != nil || res.Detected {
			t.Fatal("clean window flagged", err)
		}
	})
	if allocs != 0 {
		t.Errorf("clean-window Process allocates %.1f objects per run, want 0", allocs)
	}
}
