package window

import (
	"encoding/json"
	"reflect"
	"testing"
	"time"

	"repro/internal/device"
	"repro/internal/event"
)

// testDevices builds a registry with 2 binary, 2 numeric, 2 actuator devices
// in interleaved registration order to exercise the slot mapping.
func testDevices(t *testing.T) (*device.Registry, *Layout) {
	t.Helper()
	reg := device.NewRegistry()
	reg.MustAdd("m0", device.Binary, device.Motion, "a")       // ID 0, binary slot 0
	reg.MustAdd("t0", device.Numeric, device.Temperature, "a") // ID 1, numeric slot 0
	reg.MustAdd("b0", device.Actuator, device.SmartBulb, "a")  // ID 2, act slot 0
	reg.MustAdd("m1", device.Binary, device.Motion, "b")       // ID 3, binary slot 1
	reg.MustAdd("l0", device.Numeric, device.Light, "b")       // ID 4, numeric slot 1
	reg.MustAdd("b1", device.Actuator, device.SmartBlind, "b") // ID 5, act slot 1
	return reg, NewLayout(reg)
}

func TestLayoutSlots(t *testing.T) {
	_, l := testDevices(t)
	if l.NumBinary() != 2 || l.NumNumeric() != 2 || l.NumActuators() != 2 {
		t.Fatalf("layout sizes: %d/%d/%d", l.NumBinary(), l.NumNumeric(), l.NumActuators())
	}
	if s, ok := l.BinarySlot(3); !ok || s != 1 {
		t.Errorf("BinarySlot(3) = (%d, %v), want (1, true)", s, ok)
	}
	if s, ok := l.NumericSlot(4); !ok || s != 1 {
		t.Errorf("NumericSlot(4) = (%d, %v), want (1, true)", s, ok)
	}
	if s, ok := l.ActuatorSlot(2); !ok || s != 0 {
		t.Errorf("ActuatorSlot(2) = (%d, %v), want (0, true)", s, ok)
	}
	if _, ok := l.BinarySlot(1); ok {
		t.Error("numeric device got a binary slot")
	}
	if l.BinaryID(1) != 3 || l.NumericID(0) != 1 || l.ActuatorID(1) != 5 {
		t.Error("slot->ID inverse mapping broken")
	}
}

func TestBuilderBasicWindowing(t *testing.T) {
	_, l := testDevices(t)
	b := NewBuilder(l, time.Minute)
	evts := []event.Event{
		{At: 5 * time.Second, Device: 0, Value: 1},   // binary slot 0, window 0
		{At: 10 * time.Second, Device: 1, Value: 20}, // numeric slot 0
		{At: 40 * time.Second, Device: 1, Value: 21}, // numeric slot 0
		{At: 61 * time.Second, Device: 3, Value: 1},  // window 1
		{At: 70 * time.Second, Device: 2, Value: 1},  // actuator on, window 1
		{At: 80 * time.Second, Device: 2, Value: 1},  // duplicate actuator on
		{At: 90 * time.Second, Device: 5, Value: 0},  // actuator OFF: not an activation
	}
	var got []*Observation
	for _, e := range evts {
		emitted, err := b.Add(e)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, emitted...)
	}
	if last := b.Flush(); last != nil {
		got = append(got, last)
	}
	if len(got) != 2 {
		t.Fatalf("got %d windows, want 2", len(got))
	}
	w0, w1 := got[0], got[1]
	if !w0.Binary[0] || w0.Binary[1] {
		t.Errorf("window 0 binary = %v", w0.Binary)
	}
	if len(w0.Numeric[0]) != 2 || w0.Numeric[0][0] != 20 || w0.Numeric[0][1] != 21 {
		t.Errorf("window 0 numeric[0] = %v", w0.Numeric[0])
	}
	if len(w0.Actuated) != 0 {
		t.Errorf("window 0 actuated = %v", w0.Actuated)
	}
	if !w1.Binary[1] {
		t.Errorf("window 1 binary = %v", w1.Binary)
	}
	if len(w1.Actuated) != 1 || w1.Actuated[0] != 2 {
		t.Errorf("window 1 actuated = %v, want [2]", w1.Actuated)
	}
}

func TestBuilderEmitsSkippedWindows(t *testing.T) {
	_, l := testDevices(t)
	b := NewBuilder(l, time.Minute)
	if _, err := b.Add(event.Event{At: 0, Device: 0, Value: 1}); err != nil {
		t.Fatal(err)
	}
	emitted, err := b.Add(event.Event{At: 3*time.Minute + time.Second, Device: 0, Value: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Windows 0, 1, 2 should all be emitted (1 and 2 empty).
	if len(emitted) != 3 {
		t.Fatalf("emitted %d windows, want 3", len(emitted))
	}
	if emitted[1].Binary[0] || emitted[2].Binary[0] {
		t.Error("gap windows should be empty")
	}
	if emitted[0].Index != 0 || emitted[2].Index != 2 {
		t.Errorf("indices: %d, %d, %d", emitted[0].Index, emitted[1].Index, emitted[2].Index)
	}
}

func TestBuilderRejectsRegression(t *testing.T) {
	_, l := testDevices(t)
	b := NewBuilder(l, time.Minute)
	if _, err := b.Add(event.Event{At: 2 * time.Minute, Device: 0, Value: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Add(event.Event{At: time.Second, Device: 0, Value: 1}); err == nil {
		t.Error("time regression accepted")
	}
	if _, err := b.Add(event.Event{At: -time.Second, Device: 0, Value: 1}); err == nil {
		t.Error("negative time accepted")
	}
}

func TestBuilderIgnoresUnknownDevices(t *testing.T) {
	_, l := testDevices(t)
	b := NewBuilder(l, time.Minute)
	if _, err := b.Add(event.Event{At: 0, Device: 99, Value: 1}); err != nil {
		t.Fatalf("unknown device should be ignored, got %v", err)
	}
	o := b.Flush()
	if o == nil {
		t.Fatal("expected an in-progress window")
	}
	for _, bit := range o.Binary {
		if bit {
			t.Error("unknown device set a binary bit")
		}
	}
}

func TestBuilderDefaultDuration(t *testing.T) {
	_, l := testDevices(t)
	b := NewBuilder(l, 0)
	if b.Duration() != DefaultDuration {
		t.Errorf("Duration = %v, want %v", b.Duration(), DefaultDuration)
	}
}

func TestBinaryZeroValueEventDoesNotActivate(t *testing.T) {
	_, l := testDevices(t)
	b := NewBuilder(l, time.Minute)
	if _, err := b.Add(event.Event{At: 0, Device: 0, Value: 0}); err != nil {
		t.Fatal(err)
	}
	o := b.Flush()
	if o.Binary[0] {
		t.Error("value-0 binary event should not set the bit")
	}
}

func TestFromEventsPadsWindows(t *testing.T) {
	_, l := testDevices(t)
	evts := []event.Event{
		{At: 90 * time.Second, Device: 0, Value: 1}, // only window 1 has data
	}
	obs, err := FromEvents(l, time.Minute, evts, 4*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if len(obs) != 4 {
		t.Fatalf("got %d windows, want 4", len(obs))
	}
	for i, o := range obs {
		if o.Index != i {
			t.Errorf("window %d has index %d", i, o.Index)
		}
	}
	if obs[0].Binary[0] || !obs[1].Binary[0] || obs[2].Binary[0] || obs[3].Binary[0] {
		t.Error("wrong window received the activation")
	}
}

func TestFromEventsHorizonCutsOff(t *testing.T) {
	_, l := testDevices(t)
	evts := []event.Event{
		{At: 30 * time.Second, Device: 0, Value: 1},
		{At: 5 * time.Minute, Device: 3, Value: 1}, // beyond horizon
	}
	obs, err := FromEvents(l, time.Minute, evts, 2*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if len(obs) != 2 {
		t.Fatalf("got %d windows, want 2", len(obs))
	}
	if obs[1].Binary[1] {
		t.Error("event beyond horizon leaked into a window")
	}
}

func TestFromEventsEmpty(t *testing.T) {
	_, l := testDevices(t)
	obs, err := FromEvents(l, time.Minute, nil, 3*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if len(obs) != 3 {
		t.Fatalf("got %d windows, want 3 empty", len(obs))
	}
}

func TestObservationClone(t *testing.T) {
	_, l := testDevices(t)
	o := l.NewObservation(7)
	o.Binary[0] = true
	o.Numeric[1] = []float64{1, 2}
	o.Actuated = []device.ID{2}
	c := o.Clone()
	c.Binary[0] = false
	c.Numeric[1][0] = 99
	c.Actuated[0] = 5
	if !o.Binary[0] || o.Numeric[1][0] != 1 || o.Actuated[0] != 2 {
		t.Error("Clone shares state with original")
	}
	if c.Index != 7 {
		t.Errorf("Clone index = %d, want 7", c.Index)
	}
}

func TestActuatedStaysSorted(t *testing.T) {
	_, l := testDevices(t)
	b := NewBuilder(l, time.Minute)
	// Activate actuator 5 before actuator 2 in the same window.
	if _, err := b.Add(event.Event{At: time.Second, Device: 5, Value: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Add(event.Event{At: 2 * time.Second, Device: 2, Value: 1}); err != nil {
		t.Fatal(err)
	}
	o := b.Flush()
	if len(o.Actuated) != 2 || o.Actuated[0] != 2 || o.Actuated[1] != 5 {
		t.Errorf("Actuated = %v, want [2 5]", o.Actuated)
	}
}

func BenchmarkBuilderAdd(b *testing.B) {
	reg := device.NewRegistry()
	reg.MustAdd("m", device.Binary, device.Motion, "a")
	reg.MustAdd("t", device.Numeric, device.Temperature, "a")
	l := NewLayout(reg)
	bld := NewBuilder(l, time.Minute)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = bld.Add(event.Event{At: time.Duration(i) * time.Second, Device: 1, Value: 20})
	}
}

func TestBuilderStateRoundTrip(t *testing.T) {
	_, l := testDevices(t)
	b := NewBuilder(l, time.Minute)
	feed := []event.Event{
		{At: 10 * time.Second, Device: 0, Value: 1},
		{At: 70 * time.Second, Device: 2, Value: 1},  // actuator on, window 1
		{At: 80 * time.Second, Device: 1, Value: 21}, // numeric sample
	}
	for _, e := range feed {
		if _, err := b.Add(e); err != nil {
			t.Fatal(err)
		}
	}

	// Snapshot mid-window, push through JSON like a real checkpoint, and
	// restore into a fresh builder.
	st := b.ExportState()
	data, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	var back BuilderState
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	b2 := NewBuilder(l, time.Minute)
	if err := b2.RestoreState(back); err != nil {
		t.Fatal(err)
	}

	// The same continuation must produce identical windows from both.
	tail := []event.Event{
		{At: 90 * time.Second, Device: 2, Value: 1}, // dup actuator: must not double-count
		{At: 130 * time.Second, Device: 3, Value: 1},
	}
	var got1, got2 []*Observation
	for _, e := range tail {
		o1, err := b.Add(e)
		if err != nil {
			t.Fatal(err)
		}
		o2, err := b2.Add(e)
		if err != nil {
			t.Fatal(err)
		}
		got1 = append(got1, o1...)
		got2 = append(got2, o2...)
	}
	got1 = append(got1, b.Flush())
	got2 = append(got2, b2.Flush())
	if !reflect.DeepEqual(got1, got2) {
		t.Errorf("diverged after restore:\n original: %+v\n restored: %+v", got1, got2)
	}
	if len(got1) != 2 || got1[0].Index != 1 || len(got1[0].Actuated) != 1 {
		t.Errorf("window 1 actuations: %+v", got1[0])
	}
}

func TestBuilderRestoreValidates(t *testing.T) {
	_, l := testDevices(t)
	b := NewBuilder(l, time.Minute)
	bad := BuilderState{Cur: &Observation{Index: 0, Binary: make([]bool, 7)}}
	if err := b.RestoreState(bad); err == nil {
		t.Error("mis-shaped observation accepted")
	}
	bad2 := BuilderState{Floor: 5, Cur: &Observation{
		Index:   2,
		Binary:  make([]bool, l.NumBinary()),
		Numeric: make([][]float64, l.NumNumeric()),
	}}
	if err := b.RestoreState(bad2); err == nil {
		t.Error("observation behind floor accepted")
	}
	// Restoring an empty state onto a used builder resets it.
	if _, err := b.Add(event.Event{At: time.Second, Device: 0, Value: 1}); err != nil {
		t.Fatal(err)
	}
	if err := b.RestoreState(BuilderState{Floor: 3}); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Add(event.Event{At: time.Second, Device: 0, Value: 1}); err == nil {
		t.Error("pre-floor event accepted after restore")
	}
}

// TestBuilderRecycle: a recycled observation's backing arrays are reused
// for a later window, reset to empty, and folding into the reused window
// produces the same contents a fresh one would.
func TestBuilderRecycle(t *testing.T) {
	_, l := testDevices(t)
	b := NewBuilder(l, time.Minute)
	feed := func(evts ...event.Event) []*Observation {
		t.Helper()
		var out []*Observation
		for _, e := range evts {
			emitted, err := b.Add(e)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, emitted...)
		}
		return out
	}
	first := feed(
		event.Event{At: 5 * time.Second, Device: 0, Value: 1},
		event.Event{At: 10 * time.Second, Device: 1, Value: 20},
		event.Event{At: 20 * time.Second, Device: 2, Value: 1},
		event.Event{At: 61 * time.Second, Device: 3, Value: 1},
	)
	if len(first) != 1 {
		t.Fatalf("emitted %d windows, want 1", len(first))
	}
	if b.CurrentIndex() != 1 {
		t.Fatalf("CurrentIndex = %d, want 1", b.CurrentIndex())
	}
	recycled := first[0]
	binArr := &recycled.Binary[0]
	b.Recycle(recycled)

	// The 125s event opens window 2; the builder pops the recycled
	// observation for it and emits window 1. The 185s event then closes
	// window 2, emitting the recycled observation with the 125s reading.
	second := feed(event.Event{At: 125 * time.Second, Device: 1, Value: 42})
	if len(second) != 1 || second[0].Index != 1 {
		t.Fatalf("second emit: %d windows (first index %d), want window 1", len(second), second[0].Index)
	}
	third := feed(event.Event{At: 185 * time.Second, Device: 0, Value: 1})
	if len(third) != 1 {
		t.Fatalf("third emit: %d windows, want 1", len(third))
	}
	got := third[0]
	if got != recycled {
		t.Fatalf("builder did not reuse the recycled observation")
	}
	if &got.Binary[0] != binArr {
		t.Fatalf("recycled observation did not keep its backing array")
	}
	if got.Index != 2 {
		t.Fatalf("reused window index = %d, want 2", got.Index)
	}
	if got.Binary[0] || got.Binary[1] {
		t.Fatalf("reused window binary = %v, want stale bits cleared", got.Binary)
	}
	if len(got.Numeric[0]) != 1 || got.Numeric[0][0] != 42 {
		t.Fatalf("reused window numeric[0] = %v, want [42]", got.Numeric[0])
	}
	if len(got.Actuated) != 0 {
		t.Fatalf("reused window kept stale actuated: %v", got.Actuated)
	}
}

// TestBuilderRecycleRejectsForeignShape: an observation shaped for another
// layout is dropped, not pooled.
func TestBuilderRecycleRejectsForeignShape(t *testing.T) {
	_, l := testDevices(t)
	b := NewBuilder(l, time.Minute)
	b.Recycle(nil)
	b.Recycle(&Observation{Binary: make([]bool, 99)})
	if len(b.free) != 0 {
		t.Fatalf("freelist holds %d foreign observations", len(b.free))
	}
}

// TestBuilderSteadyStateNoObservationAlloc: once a window has been built
// and recycled, building the next one allocates no observation state.
func TestBuilderSteadyStateNoObservationAlloc(t *testing.T) {
	_, l := testDevices(t)
	b := NewBuilder(l, time.Minute)
	at := time.Duration(0)
	allocs := testing.AllocsPerRun(200, func() {
		at += time.Minute
		emitted, err := b.AdvanceTo(at + time.Minute)
		if err != nil {
			t.Fatal(err)
		}
		for _, o := range emitted {
			b.Recycle(o)
		}
	})
	// One small slice header per emission is tolerated (the emitted slice
	// itself); the observation payloads must come from the freelist.
	if allocs > 1 {
		t.Fatalf("steady-state window turnover allocates %.1f times per window, want <= 1", allocs)
	}
}
