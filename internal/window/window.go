// Package window aggregates raw event streams into the fixed-duration
// observations DICE consumes. The paper calls the window length the
// "duration" of the sensor state set and finds one minute optimal (§VI);
// both the batch evaluator and the live gateway build observations through
// this package so detection behaves identically offline and online.
package window

import (
	"fmt"
	"time"

	"repro/internal/device"
	"repro/internal/event"
	"repro/internal/telemetry"
)

// DefaultDuration is the paper's empirically optimal state-set duration.
const DefaultDuration = time.Minute

// Observation is everything DICE sees about one window: which binary
// sensors fired, the numeric samples of each numeric sensor, and which
// actuators were activated.
type Observation struct {
	// Index is the window's ordinal position (window k covers
	// [k*d, (k+1)*d) from the recording start).
	Index int
	// Binary has one entry per binary sensor, in registry order; true iff
	// the sensor fired at least once during the window (Eq. 3.1).
	Binary []bool
	// Numeric has one entry per numeric sensor, in registry order, holding
	// the time-ordered samples observed during the window. An empty slice
	// means the sensor reported nothing (e.g. a fail-stop fault).
	Numeric [][]float64
	// Actuated lists the actuators that were switched on during the window,
	// deduplicated, in registry order.
	Actuated []device.ID
}

// Clone returns a deep copy, so fault injectors can mutate observations
// without corrupting shared state.
func (o *Observation) Clone() *Observation {
	c := &Observation{Index: o.Index}
	c.Binary = append([]bool(nil), o.Binary...)
	c.Numeric = make([][]float64, len(o.Numeric))
	for i, s := range o.Numeric {
		c.Numeric[i] = append([]float64(nil), s...)
	}
	c.Actuated = append([]device.ID(nil), o.Actuated...)
	return c
}

// Layout maps between device IDs and the per-kind dense slots used inside
// observations and state sets. It is derived once from a registry.
type Layout struct {
	reg         *device.Registry
	binarySlot  map[device.ID]int
	numericSlot map[device.ID]int
	actSlot     map[device.ID]int
	binaries    []device.ID
	numerics    []device.ID
	acts        []device.ID
}

// NewLayout builds the slot mapping for a registry.
func NewLayout(reg *device.Registry) *Layout {
	l := &Layout{
		reg:         reg,
		binarySlot:  make(map[device.ID]int),
		numericSlot: make(map[device.ID]int),
		actSlot:     make(map[device.ID]int),
		binaries:    reg.Binaries(),
		numerics:    reg.Numerics(),
		acts:        reg.Actuators(),
	}
	for i, id := range l.binaries {
		l.binarySlot[id] = i
	}
	for i, id := range l.numerics {
		l.numericSlot[id] = i
	}
	for i, id := range l.acts {
		l.actSlot[id] = i
	}
	return l
}

// Registry returns the registry the layout was built from.
func (l *Layout) Registry() *device.Registry { return l.reg }

// NumBinary returns the number of binary sensor slots.
func (l *Layout) NumBinary() int { return len(l.binaries) }

// NumNumeric returns the number of numeric sensor slots.
func (l *Layout) NumNumeric() int { return len(l.numerics) }

// NumActuators returns the number of actuator slots.
func (l *Layout) NumActuators() int { return len(l.acts) }

// BinarySlot returns the dense slot for a binary sensor ID.
func (l *Layout) BinarySlot(id device.ID) (int, bool) {
	s, ok := l.binarySlot[id]
	return s, ok
}

// NumericSlot returns the dense slot for a numeric sensor ID.
func (l *Layout) NumericSlot(id device.ID) (int, bool) {
	s, ok := l.numericSlot[id]
	return s, ok
}

// ActuatorSlot returns the dense slot for an actuator ID.
func (l *Layout) ActuatorSlot(id device.ID) (int, bool) {
	s, ok := l.actSlot[id]
	return s, ok
}

// BinaryID returns the device ID occupying binary slot s.
func (l *Layout) BinaryID(s int) device.ID { return l.binaries[s] }

// NumericID returns the device ID occupying numeric slot s.
func (l *Layout) NumericID(s int) device.ID { return l.numerics[s] }

// ActuatorID returns the device ID occupying actuator slot s.
func (l *Layout) ActuatorID(s int) device.ID { return l.acts[s] }

// NewObservation returns an empty observation shaped for the layout.
func (l *Layout) NewObservation(index int) *Observation {
	return &Observation{
		Index:   index,
		Binary:  make([]bool, len(l.binaries)),
		Numeric: make([][]float64, len(l.numerics)),
	}
}

// Builder folds a sorted event stream into consecutive observations. It is
// single-goroutine; the gateway wraps it with its own synchronization.
type Builder struct {
	layout   *Layout
	duration time.Duration
	cur      *Observation
	actSeen  map[device.ID]bool
	// floor is the first window index that has not been emitted yet; it
	// advances monotonically so time can never regress even across
	// Flush/AdvanceTo.
	floor int
	// built counts emitted windows; partial counts Flush calls that emitted
	// an in-progress (not yet time-complete) window. Both are nil until
	// Instrument is called and every call site is nil-safe.
	built   *telemetry.Counter
	partial *telemetry.Counter
	// free holds recycled observations (see Recycle): their Binary/Numeric
	// backing arrays are reused for the next window, so a steady-state
	// stream allocates no per-window state.
	free []*Observation
}

// NewBuilder returns a builder producing windows of the given duration.
// A non-positive duration falls back to DefaultDuration.
func NewBuilder(layout *Layout, duration time.Duration) *Builder {
	if duration <= 0 {
		duration = DefaultDuration
	}
	return &Builder{
		layout:   layout,
		duration: duration,
		actSeen:  make(map[device.ID]bool),
	}
}

// Duration returns the window duration.
func (b *Builder) Duration() time.Duration { return b.duration }

// Instrument registers the builder's counters against the registry:
// windows emitted (by event overflow or time advance) and partial
// flushes. A nil registry leaves the builder uninstrumented.
func (b *Builder) Instrument(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	b.built = reg.Counter("dice_window_built_total", "Windows emitted by the builder (complete windows, including empty ones).")
	b.partial = reg.Counter("dice_window_partial_flush_total", "In-progress windows force-flushed before their duration elapsed.")
}

// Add folds one event in. Events must arrive in non-decreasing time order;
// an event belonging to a later window than the current one causes the
// current observation (and any skipped empty ones) to be emitted via the
// returned slice. The caller owns the returned observations.
func (b *Builder) Add(e event.Event) ([]*Observation, error) {
	idx := int(e.At / b.duration)
	if e.At < 0 {
		return nil, fmt.Errorf("window: negative event time %s", e.At)
	}
	var out []*Observation
	if b.cur == nil {
		if idx < b.floor {
			return nil, fmt.Errorf("window: event at %s regresses before window %d", e.At, b.floor)
		}
		b.cur = b.newObservation(b.floor)
	}
	if idx < b.cur.Index {
		return nil, fmt.Errorf("window: event at %s regresses before window %d", e.At, b.cur.Index)
	}
	for idx > b.cur.Index {
		out = append(out, b.cur)
		b.built.Inc()
		b.startWindow(b.cur.Index + 1)
	}
	b.fold(e)
	return out, nil
}

// Flush emits the in-progress observation, if any, and resets the builder.
// The time floor is preserved: later events must not regress.
func (b *Builder) Flush() *Observation {
	o := b.cur
	b.cur = nil
	for k := range b.actSeen {
		delete(b.actSeen, k)
	}
	if o != nil {
		b.floor = o.Index + 1
		b.built.Inc()
		b.partial.Inc()
	}
	return o
}

// AdvanceTo declares that stream time has reached t, emitting every window
// that ends at or before it — including empty ones. A silent stretch of a
// smart home still produces windows; the all-quiet window is itself a
// sensor state set the detector must judge.
func (b *Builder) AdvanceTo(t time.Duration) ([]*Observation, error) {
	if t < 0 {
		return nil, fmt.Errorf("window: negative advance time %s", t)
	}
	target := int(t / b.duration) // first window still open at time t
	var out []*Observation
	if b.cur == nil {
		if target <= b.floor {
			return nil, nil
		}
		b.cur = b.newObservation(b.floor)
	}
	for b.cur.Index < target {
		out = append(out, b.cur)
		b.built.Inc()
		b.startWindow(b.cur.Index + 1)
	}
	return out, nil
}

// BuilderState is the JSON-serializable runtime state of a Builder: the
// time floor, the partial in-progress observation, and the actuators
// already counted in it. A gateway checkpoints it so the events of a
// half-built window are not lost across a restart — losing them would make
// the first post-restart window look half-empty and trip a spurious
// correlation violation.
type BuilderState struct {
	Floor   int          `json:"floor"`
	Cur     *Observation `json:"cur,omitempty"`
	ActSeen []device.ID  `json:"act_seen,omitempty"`
}

// ExportState snapshots the builder's runtime state. The snapshot shares
// nothing with the builder.
func (b *Builder) ExportState() BuilderState {
	st := BuilderState{Floor: b.floor}
	if b.cur != nil {
		st.Cur = b.cur.Clone()
	}
	for id := range b.actSeen {
		st.ActSeen = insertSorted(st.ActSeen, id)
	}
	return st
}

// RestoreState replaces the builder's runtime state with a snapshot taken
// by ExportState, validating the partial observation against the layout.
func (b *Builder) RestoreState(st BuilderState) error {
	if st.Cur != nil {
		if len(st.Cur.Binary) != b.layout.NumBinary() || len(st.Cur.Numeric) != b.layout.NumNumeric() {
			return fmt.Errorf("window: restored observation shaped %d/%d, layout wants %d/%d",
				len(st.Cur.Binary), len(st.Cur.Numeric), b.layout.NumBinary(), b.layout.NumNumeric())
		}
		if st.Cur.Index < st.Floor {
			return fmt.Errorf("window: restored observation index %d behind floor %d", st.Cur.Index, st.Floor)
		}
	}
	b.floor = st.Floor
	b.cur = nil
	if st.Cur != nil {
		b.cur = st.Cur.Clone()
	}
	b.actSeen = make(map[device.ID]bool, len(st.ActSeen))
	for _, id := range st.ActSeen {
		b.actSeen[id] = true
	}
	return nil
}

func (b *Builder) startWindow(idx int) {
	b.cur = b.newObservation(idx)
	b.floor = idx
	for k := range b.actSeen {
		delete(b.actSeen, k)
	}
}

// newObservation pops a recycled observation if one is available,
// otherwise allocates a fresh one from the layout.
func (b *Builder) newObservation(idx int) *Observation {
	if n := len(b.free); n > 0 {
		o := b.free[n-1]
		b.free[n-1] = nil
		b.free = b.free[:n-1]
		o.Index = idx
		return o
	}
	return b.layout.NewObservation(idx)
}

// CurrentIndex returns the index of the window the next event would land
// in or after: the open window's index, or the floor when none is open.
// Batch ingest uses it to pre-validate that a whole batch is monotonic
// before logging any of it.
func (b *Builder) CurrentIndex() int {
	if b.cur != nil {
		return b.cur.Index
	}
	return b.floor
}

// Recycle returns an emitted observation to the builder's freelist so its
// backing arrays back a future window. Only observations this builder
// emitted (via Add/AdvanceTo/Flush) and that the caller is finished with
// may be recycled; an observation of the wrong shape is dropped rather
// than pooled. The caller must not touch o afterwards.
func (b *Builder) Recycle(o *Observation) {
	if o == nil || len(o.Binary) != b.layout.NumBinary() || len(o.Numeric) != b.layout.NumNumeric() {
		return
	}
	for i := range o.Binary {
		o.Binary[i] = false
	}
	for i := range o.Numeric {
		o.Numeric[i] = o.Numeric[i][:0]
	}
	o.Actuated = o.Actuated[:0]
	o.Index = 0
	b.free = append(b.free, o)
}

func (b *Builder) fold(e event.Event) {
	if s, ok := b.layout.binarySlot[e.Device]; ok {
		if e.Value != 0 {
			b.cur.Binary[s] = true
		}
		return
	}
	if s, ok := b.layout.numericSlot[e.Device]; ok {
		b.cur.Numeric[s] = append(b.cur.Numeric[s], e.Value)
		return
	}
	if _, ok := b.layout.actSlot[e.Device]; ok {
		// Only switch-on events count as actuator activations for G2A/A2G.
		if e.Value != 0 && !b.actSeen[e.Device] {
			b.actSeen[e.Device] = true
			b.cur.Actuated = insertSorted(b.cur.Actuated, e.Device)
		}
	}
	// Events from unknown devices are ignored: a live deployment may carry
	// devices the detector was not trained on.
}

func insertSorted(ids []device.ID, id device.ID) []device.ID {
	pos := len(ids)
	for i, v := range ids {
		if id < v {
			pos = i
			break
		}
	}
	ids = append(ids, 0)
	copy(ids[pos+1:], ids[pos:])
	ids[pos] = id
	return ids
}

// FromEvents windows a complete sorted event slice into observations
// covering [0, horizon). Windows with no events are still emitted (empty
// observations), which is what lets fail-stop faults surface as all-zero
// state sets.
func FromEvents(layout *Layout, duration time.Duration, evts []event.Event, horizon time.Duration) ([]*Observation, error) {
	if duration <= 0 {
		duration = DefaultDuration
	}
	n := int(horizon / duration)
	out := make([]*Observation, 0, n)
	b := NewBuilder(layout, duration)
	for _, e := range evts {
		if e.At >= horizon {
			break
		}
		emitted, err := b.Add(e)
		if err != nil {
			return nil, err
		}
		out = append(out, emitted...)
	}
	if last := b.Flush(); last != nil {
		out = append(out, last)
	}
	// Pad leading gap (if the first event was late) and trailing gap.
	return padWindows(layout, out, n), nil
}

func padWindows(layout *Layout, obs []*Observation, n int) []*Observation {
	full := make([]*Observation, 0, n)
	next := 0
	for _, o := range obs {
		for next < o.Index && next < n {
			full = append(full, layout.NewObservation(next))
			next++
		}
		if o.Index < n {
			full = append(full, o)
			next = o.Index + 1
		}
	}
	for next < n {
		full = append(full, layout.NewObservation(next))
		next++
	}
	return full
}
