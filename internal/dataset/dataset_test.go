package dataset

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/device"
	"repro/internal/event"
	"repro/internal/simhome"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	reg := device.NewRegistry()
	reg.MustAdd("m0", device.Binary, device.Motion, "kitchen")
	reg.MustAdd("t0", device.Numeric, device.Temperature, "kitchen")
	reg.MustAdd("b0", device.Actuator, device.SmartBulb, "kitchen")
	evts := []event.Event{
		{At: time.Second, Device: 0, Value: 1},
		{At: 90 * time.Second, Device: 1, Value: 21.5},
		{At: 2 * time.Minute, Device: 2, Value: 1},
	}
	m := ManifestFor("test-home", 2, 42, reg)
	if err := Save(dir, m, evts); err != nil {
		t.Fatal(err)
	}
	ds, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Manifest.Name != "test-home" || ds.Manifest.Hours != 2 || ds.Manifest.Seed != 42 {
		t.Errorf("manifest: %+v", ds.Manifest)
	}
	if ds.Registry.Len() != 3 {
		t.Fatalf("registry size = %d", ds.Registry.Len())
	}
	d0 := ds.Registry.MustGet(0)
	if d0.Name != "m0" || d0.Kind != device.Binary || d0.Type != device.Motion || d0.Room != "kitchen" {
		t.Errorf("device 0: %+v", d0)
	}
	if len(ds.Events) != 3 || ds.Events[1].Value != 21.5 {
		t.Errorf("events: %+v", ds.Events)
	}
	if ds.Hours() != 2 {
		t.Errorf("Hours = %d", ds.Hours())
	}
}

func TestWindowsFromDataset(t *testing.T) {
	dir := t.TempDir()
	reg := device.NewRegistry()
	reg.MustAdd("m0", device.Binary, device.Motion, "a")
	evts := []event.Event{{At: 61 * time.Second, Device: 0, Value: 1}}
	if err := Save(dir, ManifestFor("w", 1, 1, reg), evts); err != nil {
		t.Fatal(err)
	}
	ds, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	obs, err := ds.Windows()
	if err != nil {
		t.Fatal(err)
	}
	if len(obs) != 60 {
		t.Fatalf("windows = %d, want 60", len(obs))
	}
	if obs[0].Binary[0] || !obs[1].Binary[0] {
		t.Error("activation landed in the wrong window")
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := Load(t.TempDir()); err == nil {
		t.Error("empty dir accepted")
	}
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, ManifestName), []byte("{bad"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dir); err == nil {
		t.Error("malformed manifest accepted")
	}
	// Valid manifest but unknown kind.
	if err := os.WriteFile(filepath.Join(dir, ManifestName),
		[]byte(`{"name":"x","hours":1,"devices":[{"name":"a","kind":"quantum","type":"motion"}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dir); err == nil {
		t.Error("unknown kind accepted")
	}
	// Unknown type.
	if err := os.WriteFile(filepath.Join(dir, ManifestName),
		[]byte(`{"name":"x","hours":1,"devices":[{"name":"a","kind":"binary","type":"telepathy"}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dir); err == nil {
		t.Error("unknown type accepted")
	}
}

func TestSimhomeDatasetRoundTrip(t *testing.T) {
	spec := simhome.SpecHouseA()
	spec.Hours = 3
	h, err := simhome.New(spec, 7)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	evts := h.Events(0, h.Windows())
	m := ManifestFor(spec.Name, spec.Hours, 7, h.Registry())
	if err := Save(dir, m, evts); err != nil {
		t.Fatal(err)
	}
	ds, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Registry.NumBinary() != h.Registry().NumBinary() {
		t.Error("registry mismatch after round trip")
	}
	obs, err := ds.Windows()
	if err != nil {
		t.Fatal(err)
	}
	if len(obs) != 180 {
		t.Fatalf("windows = %d, want 180", len(obs))
	}
	// The windowed view of the persisted events must match the simulator's
	// direct windows on binary firings.
	for i := 0; i < 180; i++ {
		direct := h.Window(i)
		for s := range direct.Binary {
			if direct.Binary[s] != obs[i].Binary[s] {
				t.Fatalf("window %d slot %d: binary mismatch after persistence", i, s)
			}
		}
	}
}

func TestSaveCompactRoundTrip(t *testing.T) {
	dir := t.TempDir()
	reg := device.NewRegistry()
	reg.MustAdd("m0", device.Binary, device.Motion, "kitchen")
	evts := []event.Event{
		{At: time.Second, Device: 0, Value: 1},
		{At: 2 * time.Minute, Device: 0, Value: 1},
	}
	if err := SaveCompact(dir, ManifestFor("compact", 1, 9, reg), evts); err != nil {
		t.Fatal(err)
	}
	// No CSV file should exist; Load must pick up the binary one.
	if _, err := os.Stat(filepath.Join(dir, EventsName)); err == nil {
		t.Error("compact save also wrote a CSV")
	}
	ds, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Events) != 2 || ds.Events[1].At != 2*time.Minute {
		t.Errorf("events after compact round trip: %+v", ds.Events)
	}
}
