// Package dataset persists simulated smart-home recordings so the CLI
// tools can hand data between stages: dice-gen writes a dataset directory,
// dice-train reads it to produce a context, dice-detect replays segments
// against the context. A dataset directory holds:
//
//	manifest.json — name, duration, device registry (order defines IDs)
//	events.csv    — the recording ("millis,device,value", sorted)
package dataset

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"repro/internal/device"
	"repro/internal/event"
	"repro/internal/window"
)

// ManifestName and EventsName are the fixed file names in a dataset dir;
// EventsBinName is the compact alternative written by SaveCompact and
// preferred by Load when present.
const (
	ManifestName  = "manifest.json"
	EventsName    = "events.csv"
	EventsBinName = "events.bin"
)

// DeviceRecord serializes one registry entry.
type DeviceRecord struct {
	Name string `json:"name"`
	Kind string `json:"kind"`
	Type string `json:"type"`
	Room string `json:"room"`
}

// Manifest describes a persisted dataset.
type Manifest struct {
	// Name is the dataset name.
	Name string `json:"name"`
	// Hours is the recording length.
	Hours int `json:"hours"`
	// Seed is the simulation seed the data was generated from.
	Seed int64 `json:"seed"`
	// Devices is the registry in ID order.
	Devices []DeviceRecord `json:"devices"`
}

// Dataset is a loaded recording.
type Dataset struct {
	Manifest Manifest
	Registry *device.Registry
	Layout   *window.Layout
	Events   []event.Event
}

// Hours returns the recording length.
func (d *Dataset) Hours() int { return d.Manifest.Hours }

// Windows converts the events into per-minute observations covering the
// whole recording.
func (d *Dataset) Windows() ([]*window.Observation, error) {
	horizon := time.Duration(d.Manifest.Hours) * time.Hour
	return window.FromEvents(d.Layout, time.Minute, d.Events, horizon)
}

// kindNames maps device kinds to manifest strings and back.
var kindNames = map[device.Kind]string{
	device.Binary:   "binary",
	device.Numeric:  "numeric",
	device.Actuator: "actuator",
}

var kindValues = map[string]device.Kind{
	"binary": device.Binary, "numeric": device.Numeric, "actuator": device.Actuator,
}

// typeNames holds a stable string per device type for the manifest.
var typeNames = map[device.Type]string{}
var typeValues = map[string]device.Type{}

func init() {
	for t := device.TypeUnknown; t <= device.HumidifierSwitch; t++ {
		typeNames[t] = t.String()
		typeValues[t.String()] = t
	}
}

// ManifestFor builds a manifest from a registry.
func ManifestFor(name string, hours int, seed int64, reg *device.Registry) Manifest {
	m := Manifest{Name: name, Hours: hours, Seed: seed}
	for _, d := range reg.All() {
		m.Devices = append(m.Devices, DeviceRecord{
			Name: d.Name,
			Kind: kindNames[d.Kind],
			Type: typeNames[d.Type],
			Room: d.Room,
		})
	}
	return m
}

// BuildRegistry reconstructs a registry from a manifest.
func (m Manifest) BuildRegistry() (*device.Registry, error) {
	reg := device.NewRegistry()
	for i, d := range m.Devices {
		kind, ok := kindValues[d.Kind]
		if !ok {
			return nil, fmt.Errorf("dataset: device %d has unknown kind %q", i, d.Kind)
		}
		typ, ok := typeValues[d.Type]
		if !ok {
			return nil, fmt.Errorf("dataset: device %d has unknown type %q", i, d.Type)
		}
		if _, err := reg.Add(d.Name, kind, typ, d.Room); err != nil {
			return nil, fmt.Errorf("dataset: %w", err)
		}
	}
	return reg, nil
}

// Save writes a dataset directory with CSV events (human-inspectable).
func Save(dir string, m Manifest, evts []event.Event) error {
	return save(dir, m, evts, EventsName, event.WriteCSV)
}

// SaveCompact writes a dataset directory with binary events — roughly a
// third of the CSV size and an order of magnitude faster to parse, which
// matters for the 1000+-hour recordings of Table 4.1.
func SaveCompact(dir string, m Manifest, evts []event.Event) error {
	return save(dir, m, evts, EventsBinName, event.WriteBinary)
}

func save(dir string, m Manifest, evts []event.Event, eventsFile string,
	write func(w io.Writer, evts []event.Event) error) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("dataset: mkdir: %w", err)
	}
	mf, err := os.Create(filepath.Join(dir, ManifestName))
	if err != nil {
		return fmt.Errorf("dataset: create manifest: %w", err)
	}
	enc := json.NewEncoder(mf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(m); err != nil {
		mf.Close()
		return fmt.Errorf("dataset: write manifest: %w", err)
	}
	if err := mf.Close(); err != nil {
		return err
	}
	ef, err := os.Create(filepath.Join(dir, eventsFile))
	if err != nil {
		return fmt.Errorf("dataset: create events: %w", err)
	}
	if err := write(ef, evts); err != nil {
		ef.Close()
		return err
	}
	return ef.Close()
}

// LoadManifest reads just the manifest of a dataset directory — registry
// and layout, no events. A gateway serving live traffic needs the device
// universe but never replays the recording, so this keeps multi-home
// startup from reading every tenant's event log.
func LoadManifest(dir string) (*Dataset, error) {
	mf, err := os.Open(filepath.Join(dir, ManifestName))
	if err != nil {
		return nil, fmt.Errorf("dataset: open manifest: %w", err)
	}
	defer mf.Close()
	var m Manifest
	if err := json.NewDecoder(mf).Decode(&m); err != nil {
		return nil, fmt.Errorf("dataset: decode manifest: %w", err)
	}
	reg, err := m.BuildRegistry()
	if err != nil {
		return nil, err
	}
	return &Dataset{
		Manifest: m,
		Registry: reg,
		Layout:   window.NewLayout(reg),
	}, nil
}

// Load reads a dataset directory.
func Load(dir string) (*Dataset, error) {
	ds, err := LoadManifest(dir)
	if err != nil {
		return nil, err
	}
	var evts []event.Event
	if bf, err := os.Open(filepath.Join(dir, EventsBinName)); err == nil {
		defer bf.Close()
		evts, err = event.ReadBinary(bf)
		if err != nil {
			return nil, err
		}
	} else {
		ef, err := os.Open(filepath.Join(dir, EventsName))
		if err != nil {
			return nil, fmt.Errorf("dataset: open events: %w", err)
		}
		defer ef.Close()
		evts, err = event.ReadCSV(ef)
		if err != nil {
			return nil, err
		}
	}
	if !event.IsSorted(evts) {
		event.Sort(evts)
	}
	ds.Events = evts
	return ds, nil
}
