package gateway

import (
	"encoding/json"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/wire"
)

// wireReplayResult captures everything detection-visible from one replay:
// the counters, every emitted alert, and the last alert's Explain trace.
type wireReplayResult struct {
	Stats     Stats
	Alerts    []Alert
	LastAlert Alert
	HasLast   bool
	Malformed int64
}

// replayOverWire streams evts through a fresh gateway via a real CoAP
// front + agent pair using the given wire format, then snapshots the
// detection output.
func replayOverWire(t *testing.T, ctx *core.Context, format WireFormat, evts []event.Event, end time.Duration) wireReplayResult {
	t.Helper()
	gw, err := New(ctx, WithConfig(core.Config{}))
	if err != nil {
		t.Fatal(err)
	}
	front, err := ServeCoAP(gw, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer front.Close()
	agent, err := NewAgent(front.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer agent.Close()
	agent.Format = format

	for _, e := range evts {
		if err := agent.Report(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := agent.Advance(end); err != nil {
		t.Fatal(err)
	}
	res := wireReplayResult{Malformed: front.malformed.Value()}
	st, err := agent.Stats()
	if err != nil {
		t.Fatal(err)
	}
	res.Stats = st
drain:
	for {
		select {
		case a := <-gw.Alerts():
			res.Alerts = append(res.Alerts, a)
		default:
			break drain
		}
	}
	res.LastAlert, res.HasLast = gw.LastAlert()
	return res
}

// TestWireFormatsBitIdentical replays the same faulty stream through a
// JSON agent and a binary agent and requires identical detection output:
// same counters, same alerts, same Explain trace. Event times are
// ms-aligned first — the JSON wire quantizes At to milliseconds while the
// binary wire carries nanoseconds, so alignment is what makes the two
// encodings carry the same stream.
func TestWireFormatsBitIdentical(t *testing.T) {
	h, ctx := trainedHome(t)
	target, ok := h.Registry().Lookup("light-kitchen")
	if !ok {
		t.Fatal("no kitchen light")
	}
	// Fail-stop the kitchen light mid-replay so the comparison covers a
	// real detection episode, not just clean counters.
	start := 3*24*60 + 12*60
	raw := h.Events(start, start+6*60)
	evts := make([]event.Event, 0, len(raw))
	for _, e := range raw {
		e.At -= time.Duration(start) * time.Minute
		e.At = e.At.Truncate(time.Millisecond)
		if e.Device == target && e.At >= 30*time.Minute {
			continue
		}
		evts = append(evts, e)
	}

	jsonRes := replayOverWire(t, ctx, WireJSON, evts, 6*time.Hour)
	binRes := replayOverWire(t, ctx, WireBinary, evts, 6*time.Hour)

	if jsonRes.Malformed != 0 || binRes.Malformed != 0 {
		t.Fatalf("malformed payloads on a clean link: json=%d binary=%d", jsonRes.Malformed, binRes.Malformed)
	}
	if jsonRes.Stats != binRes.Stats {
		t.Errorf("stats diverged:\n json   %+v\n binary %+v", jsonRes.Stats, binRes.Stats)
	}
	if jsonRes.Stats.Alerts == 0 {
		t.Error("replay produced no alerts; the comparison is vacuous")
	}
	if jsonRes.HasLast != binRes.HasLast {
		t.Fatalf("last alert presence diverged: json=%v binary=%v", jsonRes.HasLast, binRes.HasLast)
	}
	mustJSON := func(v any) string {
		data, err := json.Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
		return string(data)
	}
	if a, b := mustJSON(jsonRes.Alerts), mustJSON(binRes.Alerts); a != b {
		t.Errorf("alerts diverged:\n json   %s\n binary %s", a, b)
	}
	if a, b := mustJSON(jsonRes.LastAlert), mustJSON(binRes.LastAlert); a != b {
		t.Errorf("last alert (Explain) diverged:\n json   %s\n binary %s", a, b)
	}
}

// TestIngestBatchZeroAllocSameWindow guards the pooled hot path: decoding
// a binary batch into pooled scratch and ingesting it into the open window
// must not allocate once the gateway has seen the devices.
func TestIngestBatchZeroAllocSameWindow(t *testing.T) {
	h, ctx := trainedHome(t)
	gw, err := New(ctx, WithConfig(core.Config{}))
	if err != nil {
		t.Fatal(err)
	}
	// Binary-sensor events carry no per-sample append, so a repeated batch
	// is pure pooled-path work: map hits, builder fold, no growth.
	dev := h.Layout().BinaryID(0)
	batch := make([]event.Event, 64)
	for i := range batch {
		batch[i] = event.Event{At: 30 * time.Second, Device: dev, Value: 1}
	}
	payload := wire.AppendReport(nil, batch)
	scratch := make([]event.Event, 0, len(batch))
	// Warm up: first contact inserts the device into lastSeen/liveIDs.
	if err := gw.IngestBatch(batch); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(100, func() {
		b, err := wire.DecodeBatch(payload, scratch[:0])
		if err != nil {
			t.Fatal(err)
		}
		if err := gw.IngestBatch(b.Events); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Errorf("decode+ingest of a clean batch allocates %v times per run, want 0", avg)
	}
}
