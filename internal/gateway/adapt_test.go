package gateway

import (
	"encoding/json"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/simhome"
)

// driftedHome trains a context on a home's original routine and returns a
// drifted view whose residents adopt new activities from the training
// horizon onward — the benign-drift stream the adapter exists to absorb.
func driftedHome(t testing.TB) (*simhome.Home, *core.Context, int) {
	t.Helper()
	spec := simhome.SpecDHouseA()
	spec.Name = "gw-adapt-test"
	spec.Hours = 72 + 4*24
	h, err := simhome.New(spec, 29)
	if err != nil {
		t.Fatal(err)
	}
	trainW := 72 * 60
	tr := core.NewTrainer(h.Layout(), time.Minute)
	for i := 0; i < trainW; i++ {
		if err := tr.Calibrate(h.Window(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.FinishCalibration(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < trainW; i++ {
		if err := tr.Learn(h.Window(i)); err != nil {
			t.Fatal(err)
		}
	}
	ctx, err := tr.Context()
	if err != nil {
		t.Fatal(err)
	}
	drifted, err := h.WithDrift(simhome.Drift{ExtraActivities: 5, FromMinute: trainW})
	if err != nil {
		t.Fatal(err)
	}
	return drifted, ctx, trainW
}

// feedStream ingests the drifted home's events for stream minutes
// [from, to) (relative to the training horizon) and advances the window
// clock to the end of the range.
func feedStream(t testing.TB, gw *Gateway, h *simhome.Home, trainW, from, to int) {
	t.Helper()
	for _, e := range h.Events(trainW+from, trainW+to) {
		e.At -= time.Duration(trainW) * time.Minute
		if err := gw.Ingest(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := gw.AdvanceTo(time.Duration(to) * time.Minute); err != nil {
		t.Fatal(err)
	}
}

// alertsJSON renders alerts — including their Explain decision traces — as
// JSON, the form the bit-identity comparison uses.
func alertsJSON(t testing.TB, alerts []Alert) string {
	t.Helper()
	data, err := json.Marshal(alerts)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// TestGatewayAdaptationRollbackBitIdentical: a gateway adapts across
// epochs on a drifted stream; a checkpoint pins the context version it
// scanned at that moment. A second gateway restored from that checkpoint
// replays the identical remainder of the stream and must produce
// bit-identical output — same alerts, same Explain traces, same published
// epochs — and restoring the pinned version over a later epoch is counted
// as a rollback and lands the detector back on the exact pinned version.
func TestGatewayAdaptationRollbackBitIdentical(t *testing.T) {
	h, ctx, trainW := driftedHome(t)
	adaptOpts := []core.AdapterOption{core.WithAdmitAfter(5)}
	gw, err := New(ctx, WithAdaptation(adaptOpts...))
	if err != nil {
		t.Fatal(err)
	}

	// Phase 1: one drifted day. The recurring new routine must have
	// published at least one adapted version.
	const phase1 = 24 * 60
	const phase2End = phase1 + 12*60
	feedStream(t, gw, h, trainW, 0, phase1)
	info := gw.ContextInfo()
	if !info.Adaptive || info.Epoch == 0 {
		t.Fatalf("no adaptation after phase 1: %+v", info)
	}
	cp := gw.ExportCheckpoint()
	if cp.Context == nil || cp.Context.Epoch != info.Epoch || cp.Adapter == nil {
		t.Fatalf("checkpoint does not pin the adapted version: %+v", cp.Context)
	}
	drainAlerts(gw) // phase-1 alerts are not part of the comparison

	// Phase 2 on the original gateway: the reference continuation.
	feedStream(t, gw, h, trainW, phase1, phase2End)
	wantAlerts := alertsJSON(t, drainAlerts(gw))
	wantInfo := gw.ContextInfo()
	wantStats := gw.Stats()

	// A fresh gateway restored from the checkpoint replays the identical
	// remainder: detector output and Explain traces must match bit for bit.
	gw2, err := New(ctx, WithAdaptation(adaptOpts...))
	if err != nil {
		t.Fatal(err)
	}
	if err := gw2.RestoreCheckpoint(cp); err != nil {
		t.Fatal(err)
	}
	if got := gw2.ContextInfo(); got.Epoch != info.Epoch || got.Fingerprint != info.Fingerprint {
		t.Fatalf("restored version = %d (%s), want %d (%s)", got.Epoch, got.Fingerprint, info.Epoch, info.Fingerprint)
	}
	feedStream(t, gw2, h, trainW, phase1, phase2End)
	gotAlerts := alertsJSON(t, drainAlerts(gw2))
	if gotAlerts != wantAlerts {
		t.Errorf("restored continuation alerts diverge:\n got %s\nwant %s", gotAlerts, wantAlerts)
	}
	gotInfo := gw2.ContextInfo()
	if gotInfo.Epoch != wantInfo.Epoch || gotInfo.Fingerprint != wantInfo.Fingerprint ||
		gotInfo.GroupsAdmitted != wantInfo.GroupsAdmitted || gotInfo.EdgesAdmitted != wantInfo.EdgesAdmitted ||
		gotInfo.Groups != wantInfo.Groups || gotInfo.PendingSets != wantInfo.PendingSets {
		t.Errorf("restored continuation context diverges:\n got %+v\nwant %+v", gotInfo, wantInfo)
	}
	gotStats := gw2.Stats()
	if gotStats.Windows != wantStats.Windows || gotStats.Violations != wantStats.Violations ||
		gotStats.Alerts != wantStats.Alerts || gotStats.Events != wantStats.Events {
		t.Errorf("restored continuation stats diverge:\n got %+v\nwant %+v", gotStats, wantStats)
	}

	// Rollback: the continuation may have adapted past the pin; restoring
	// the checkpoint again repairs back to the pinned version and is
	// counted. If it did not adapt further, the restore is a same-epoch
	// rebuild and must not count as a rollback.
	before := gw2.ContextInfo()
	if err := gw2.RestoreCheckpoint(cp); err != nil {
		t.Fatal(err)
	}
	after := gw2.ContextInfo()
	if after.Epoch != cp.Context.Epoch || after.Fingerprint != cp.Context.Fingerprint {
		t.Errorf("rollback landed on %d (%s), want %d (%s)", after.Epoch, after.Fingerprint, cp.Context.Epoch, cp.Context.Fingerprint)
	}
	wantRollbacks := int64(0)
	if before.Epoch > cp.Context.Epoch {
		wantRollbacks = 1
	}
	if after.Rollbacks != wantRollbacks {
		t.Errorf("Rollbacks = %d, want %d (epoch %d -> %d)", after.Rollbacks, wantRollbacks, before.Epoch, cp.Context.Epoch)
	}
}

// TestGatewayAdaptationReducesAlarms: on the same drifted stream, the
// adaptive gateway must end up with fewer alerts than a static one, and
// once its admissions converge the tail of the stream must be alert-free
// while the static gateway keeps re-alarming on the same routines — the
// product-level statement of what WithAdaptation buys.
func TestGatewayAdaptationReducesAlarms(t *testing.T) {
	h, ctx, trainW := driftedHome(t)
	const streamEnd = 4 * 24 * 60
	lastDay := func(alerts []Alert) int {
		n := 0
		for _, a := range alerts {
			if a.ReportedAt >= 3*24*time.Hour {
				n++
			}
		}
		return n
	}

	static, err := New(ctx)
	if err != nil {
		t.Fatal(err)
	}
	feedStream(t, static, h, trainW, 0, streamEnd)
	staticLate := lastDay(drainAlerts(static))

	adaptive, err := New(ctx, WithAdaptation(core.WithAdmitAfter(3)))
	if err != nil {
		t.Fatal(err)
	}
	feedStream(t, adaptive, h, trainW, 0, streamEnd)
	adaptiveLate := lastDay(drainAlerts(adaptive))

	ss, as := static.Stats(), adaptive.Stats()
	if as.Alerts >= ss.Alerts {
		t.Errorf("adaptive alerts = %d, static = %d; adaptation absorbed nothing", as.Alerts, ss.Alerts)
	}
	if staticLate == 0 {
		t.Error("static gateway quiet on the last drifted day; the stream exercises nothing")
	}
	if adaptiveLate != 0 {
		t.Errorf("adaptive gateway still alarming after convergence: %d last-day alerts", adaptiveLate)
	}
	info := adaptive.ContextInfo()
	if info.Epoch == 0 || info.GroupsAdmitted == 0 || info.EdgesAdmitted == 0 {
		t.Errorf("adaptive gateway never converged: %+v", info)
	}
	if tel := adaptive.Telemetry().SnapshotMap(); tel["dice_ctx_epoch"] == 0 {
		t.Error("dice_ctx_epoch not exported")
	}
}
