// Package gateway is the home-gateway runtime of Figure 3.1: it ingests
// timestamped device events (in-process or over CoAP), windows them into
// fixed durations, runs the DICE detector online, and publishes alerts.
// The same window.Builder drives both this gateway and the batch
// evaluator, so online and offline detection are behaviourally identical.
package gateway

import (
	"context"
	"fmt"
	"runtime/debug"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/event"
	"repro/internal/telemetry"
	"repro/internal/wal"
	"repro/internal/window"
)

// Alert is a detector alert enriched with gateway metadata.
type Alert struct {
	// Devices are the probable faulty devices, resolved to full records.
	Devices []device.Device `json:"devices"`
	// Cause is the check that detected the underlying violation.
	Cause core.CheckKind `json:"cause"`
	// DetectedAt / ReportedAt are stream times (offsets from stream start).
	DetectedAt time.Duration `json:"detected_at"`
	ReportedAt time.Duration `json:"reported_at"`
	// Explain is the decision trace: the detector's episode trace for
	// violation alerts, a single-step silence trace for liveness alerts.
	// Nil only for episodes restored from a pre-trace checkpoint.
	Explain *core.Explain `json:"explain,omitempty"`
}

// Stats counts gateway activity. It is a snapshot view over the gateway's
// telemetry counters — the same numbers /metrics exposes, under one naming
// scheme (see the dice_gateway_* series).
type Stats struct {
	Events        int64
	Windows       int64
	Violations    int64
	Alerts        int64
	AlertsDropped int64
	// LivenessAlerts counts fail-stop alerts raised by the silence
	// tracker; DarkDevices is the number of devices currently past the
	// silence threshold (a gauge, snapshotted by Stats()).
	LivenessAlerts int64
	DarkDevices    int64
}

// Gateway-stage metric names.
const (
	metricGwEvents        = "dice_gateway_events_total"
	metricGwWindows       = "dice_gateway_windows_total"
	metricGwViolations    = "dice_gateway_violations_total"
	metricGwAlerts        = "dice_gateway_alerts_total"
	metricGwAlertsDropped = "dice_gateway_alerts_dropped_total"
	metricGwLiveness      = "dice_gateway_liveness_alerts_total"
	metricGwDark          = "dice_gateway_dark_devices"
	metricGwAlertLatency  = "dice_gateway_alert_latency_seconds"
	// metricCtxRollbacks completes the dice_ctx_* adaptation series: the
	// adapter owns epoch/admission/decay, the gateway owns rollbacks
	// because checkpoint restore is where a bad adaptation gets undone.
	metricCtxRollbacks = "dice_ctx_rollbacks_total"
)

// gwMetrics is the telemetry backing of Stats plus the alert-latency
// histogram (stream-time lag between detection and report).
type gwMetrics struct {
	events        *telemetry.Counter
	windows       *telemetry.Counter
	violations    *telemetry.Counter
	alerts        *telemetry.Counter
	alertsDropped *telemetry.Counter
	liveness      *telemetry.Counter
	dark          *telemetry.Gauge
	alertLatency  *telemetry.Histogram
	ctxRollbacks  *telemetry.Counter
}

func newGwMetrics(reg *telemetry.Registry) gwMetrics {
	m := gwMetrics{
		events:        reg.Counter(metricGwEvents, "Events ingested by the gateway."),
		windows:       reg.Counter(metricGwWindows, "Windows run through the online detector."),
		violations:    reg.Counter(metricGwViolations, "Windows on which a check fired."),
		alerts:        reg.Counter(metricGwAlerts, "Alerts delivered to the alert channel."),
		alertsDropped: reg.Counter(metricGwAlertsDropped, "Alerts dropped because the channel buffer was full."),
		liveness:      reg.Counter(metricGwLiveness, "Fail-stop alerts raised by the silence tracker."),
		dark:          reg.Gauge(metricGwDark, "Devices currently past the silence threshold."),
		alertLatency:  reg.Histogram(metricGwAlertLatency, "Stream-time lag between detection and report, in seconds.", telemetry.ExpBuckets(60, 2, 8)),
		ctxRollbacks:  reg.Counter(metricCtxRollbacks, "Context versions rolled back by checkpoint restore."),
	}
	// Registry instruments are get-or-create, but a fresh gateway's stats
	// are zero by definition: when a supervised restart rebuilds a gateway
	// on its tenant's existing registry, the counters must not keep the
	// dead pipeline's totals or a cold-start WAL replay would double-count
	// (a checkpoint restore re-Stores the right values right after).
	for _, c := range []*telemetry.Counter{m.events, m.windows, m.violations, m.alerts, m.alertsDropped, m.liveness} {
		c.Store(0)
	}
	m.dark.Set(0)
	return m
}

// Gateway runs DICE over a live event stream. Events must be ingested in
// non-decreasing time order (the CoAP front end enforces this per device
// and tolerates cross-device skew up to the window duration).
type Gateway struct {
	mu      sync.Mutex
	det     *core.Detector
	builder *window.Builder
	reg     *device.Registry
	alerts  chan Alert
	tel     *telemetry.Registry
	met     gwMetrics
	horizon time.Duration

	// Online adaptation: the adapter watches every processed window under
	// the gateway lock and publishes new immutable context versions, which
	// are swapped into the detector atomically between windows. detOpts and
	// adaptOpts keep the construction recipes so a checkpoint restore can
	// rebuild both onto a restored context version (rollback).
	adapter   *core.Adapter
	detOpts   []core.Option
	adapt     bool
	adaptOpts []core.AdapterOption

	// lastAlert is the most recent alert emitted (delivered or dropped),
	// kept for the /alerts/last explain endpoint.
	lastAlert *Alert

	// Liveness tracking: stream time each device last reported at, the
	// devices currently past the silence threshold, and the furthest
	// stream time observed (events may run ahead of the /advance horizon).
	// liveIDs caches lastSeen's keys in ascending order so the per-event
	// silence sweep neither allocates nor re-sorts (lastSeen only ever
	// grows; the cache is rebuilt on checkpoint restore).
	liveThreshold time.Duration
	lastSeen      map[device.ID]time.Duration
	liveIDs       []device.ID
	dark          map[device.ID]bool
	streamNow     time.Duration

	// Durability: ops append to the WAL (when attached) before mutating
	// state; walSeq is the sequence number of the last op this gateway has
	// logged or replayed, carried into checkpoints so replay can skip the
	// covered prefix. walBuf and walFrames are the reused encode buffers
	// that keep the append path (single and batched) allocation-free.
	wal       *wal.Log
	walSeq    uint64
	walBuf    []byte
	walFrames [][]byte

	// Supervision: home names this gateway's tenant in dead-letter entries,
	// ingestHook runs before any state mutation (fault-injection seam),
	// deadLetter captures ops whose replay panicked, replaying marks WAL
	// replay in progress, and rebasePending arms the liveness clock rebase
	// (consumed on the first live clock movement after a restore).
	home          string
	ingestHook    func(event.Event) error
	deadLetter    *wal.DeadLetter
	replaying     bool
	rebasePending bool
}

// Option configures a Gateway at construction.
type Option func(*gwOptions)

type gwOptions struct {
	cfg        core.Config
	detOpts    []core.Option
	liveness   time.Duration
	tel        *telemetry.Registry
	alertBuf   int
	cp         *Checkpoint
	wal        *wal.Log
	home       string
	ingestHook func(event.Event) error
	deadLetter *wal.DeadLetter
	adapt      bool
	adaptOpts  []core.AdapterOption
}

// WithConfig sets the detector configuration.
func WithConfig(cfg core.Config) Option {
	return func(o *gwOptions) { o.cfg = cfg }
}

// WithDetectorOptions appends raw detector options (applied after the
// config, so they can override individual fields).
func WithDetectorOptions(opts ...core.Option) Option {
	return func(o *gwOptions) { o.detOpts = append(o.detOpts, opts...) }
}

// WithLiveness enables fail-stop (outage) alerts for devices that have
// reported at least once and then stay silent longer than threshold; zero
// disables the tracker. A sparsely firing sensor is silent for hours of
// normal life, so thresholds should be generous — liveness catches the
// device that went dark, the window checks catch the one that lies.
func WithLiveness(threshold time.Duration) Option {
	return func(o *gwOptions) { o.liveness = threshold }
}

// WithTelemetry makes the gateway register its instruments (and the
// detector's and window builder's) against a caller-owned registry instead
// of a fresh private one. Multiple gateways sharing one registry aggregate.
func WithTelemetry(reg *telemetry.Registry) Option {
	return func(o *gwOptions) { o.tel = reg }
}

// WithAlertBuffer sets the alert channel capacity (default 64). A full
// buffer drops alerts (counted) rather than blocking detection.
func WithAlertBuffer(n int) Option {
	return func(o *gwOptions) { o.alertBuf = n }
}

// WithCheckpoint restores the gateway from a checkpoint at construction —
// equivalent to New followed by RestoreCheckpoint, but in one step.
func WithCheckpoint(cp *Checkpoint) Option {
	return func(o *gwOptions) { o.cp = cp }
}

// WithWAL attaches an opened write-ahead log: every accepted Ingest and
// effective AdvanceTo is framed and appended before it mutates detector
// state, and RecoverWAL replays the tail past the restored checkpoint so a
// crash between checkpoints loses nothing. The gateway does not own the
// log's lifetime — the caller (hub or cmd) closes it.
func WithWAL(w *wal.Log) Option {
	return func(o *gwOptions) { o.wal = w }
}

// WithHome names the tenant this gateway serves; it is stamped into
// dead-letter entries so a shared forensics file stays attributable.
func WithHome(home string) Option {
	return func(o *gwOptions) { o.home = home }
}

// WithIngestHook installs a hook that runs on every ingested event before
// any counter or state mutation — while replaying the WAL as well as live.
// It exists as the supervision seam: a hook that panics models a poison
// event (the panic escapes Ingest with all state untouched), and a hook
// that returns an error rejects the event. Production gateways leave it
// nil.
func WithIngestHook(fn func(event.Event) error) Option {
	return func(o *gwOptions) { o.ingestHook = fn }
}

// WithDeadLetter attaches a sink for ops whose replay panics: instead of
// wedging recovery forever, the offending record is captured there and
// skipped. Nil (the default) discards such records silently.
func WithDeadLetter(d *wal.DeadLetter) Option {
	return func(o *gwOptions) { o.deadLetter = d }
}

// WithAdaptation turns on online context adaptation: confirmed-non-faulty
// windows feed a core.Adapter that admits new groups after sustained
// observation, ages transition counts, and publishes each adaptation as a
// new immutable context version the detector swaps to atomically. The
// context version travels in checkpoints, so a bad adaptation rolls back
// through the existing checkpoint/WAL machinery. Options tune the adapter
// (core.WithAdmitAfter, core.WithDecay, ...); telemetry is wired to the
// gateway's registry automatically.
func WithAdaptation(opts ...core.AdapterOption) Option {
	return func(o *gwOptions) {
		o.adapt = true
		o.adaptOpts = append(o.adaptOpts, opts...)
	}
}

// New builds a gateway around a trained context with functional options.
func New(ctx *core.Context, opts ...Option) (*Gateway, error) {
	var o gwOptions
	for _, opt := range opts {
		opt(&o)
	}
	if o.alertBuf <= 0 {
		o.alertBuf = 64
	}
	tel := o.tel
	if tel == nil {
		tel = telemetry.NewRegistry()
	}
	detOpts := append([]core.Option{core.WithConfig(o.cfg), core.WithTelemetry(tel)}, o.detOpts...)
	det, err := core.New(ctx, detOpts...)
	if err != nil {
		return nil, err
	}
	builder := window.NewBuilder(ctx.Layout(), ctx.Duration())
	builder.Instrument(tel)
	g := &Gateway{
		det:           det,
		builder:       builder,
		reg:           ctx.Layout().Registry(),
		alerts:        make(chan Alert, o.alertBuf),
		tel:           tel,
		met:           newGwMetrics(tel),
		detOpts:       detOpts,
		adapt:         o.adapt,
		liveThreshold: o.liveness,
		lastSeen:      make(map[device.ID]time.Duration),
		dark:          make(map[device.ID]bool),
		wal:           o.wal,
		home:          o.home,
		ingestHook:    o.ingestHook,
		deadLetter:    o.deadLetter,
	}
	if o.adapt {
		g.adaptOpts = append([]core.AdapterOption{core.WithAdapterTelemetry(tel)}, o.adaptOpts...)
		adapter, err := core.NewAdapter(ctx, g.adaptOpts...)
		if err != nil {
			return nil, err
		}
		g.adapter = adapter
	}
	if o.cp != nil {
		if err := g.RestoreCheckpoint(o.cp); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// Telemetry returns the gateway's metric registry: its own series plus the
// detector's, the window builder's, and (once ServeCoAP attaches one) the
// CoAP server's. This is what /metrics exposes.
func (g *Gateway) Telemetry() *telemetry.Registry { return g.tel }

// Alerts returns the alert channel. It is never closed; buffer overruns
// increment Stats.AlertsDropped rather than blocking detection.
func (g *Gateway) Alerts() <-chan Alert { return g.alerts }

// Run pumps the alert channel into onAlert until ctx is cancelled, then
// drains whatever is already buffered and returns nil. It replaces the
// ad-hoc select-on-stop-channel loops callers used to write: ingestion
// stays on the caller's goroutines (Ingest/AdvanceTo are thread-safe), Run
// owns delivery. A nil onAlert discards alerts but still keeps the buffer
// from overflowing.
func (g *Gateway) Run(ctx context.Context, onAlert func(Alert)) error {
	deliver := func(a Alert) {
		if onAlert != nil {
			onAlert(a)
		}
	}
	for {
		select {
		case <-ctx.Done():
			for {
				select {
				case a := <-g.alerts:
					deliver(a)
				default:
					return nil
				}
			}
		case a := <-g.alerts:
			deliver(a)
		}
	}
}

// Stats returns a snapshot of the counters, read from the telemetry
// registry so this view and /metrics can never disagree.
func (g *Gateway) Stats() Stats {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.statsLocked()
}

// OpenEpisodes reports how many identification episodes the detector has
// in flight — the same quantity the dice_det_episodes_open gauge tracks.
// Under MaxFaults > 1 a storm holds several open at once.
func (g *Gateway) OpenEpisodes() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.det.OpenEpisodes()
}

func (g *Gateway) statsLocked() Stats {
	return Stats{
		Events:         g.met.events.Value(),
		Windows:        g.met.windows.Value(),
		Violations:     g.met.violations.Value(),
		Alerts:         g.met.alerts.Value(),
		AlertsDropped:  g.met.alertsDropped.Value(),
		LivenessAlerts: g.met.liveness.Value(),
		DarkDevices:    int64(len(g.dark)),
	}
}

// LastAlert returns a copy of the most recent alert (delivered or
// dropped) and whether one has been emitted yet. This backs the
// /alerts/last endpoint, whose point is the attached Explain trace.
func (g *Gateway) LastAlert() (Alert, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.lastAlert == nil {
		return Alert{}, false
	}
	a := *g.lastAlert
	a.Devices = append([]device.Device(nil), g.lastAlert.Devices...)
	a.Explain = g.lastAlert.Explain.Clone()
	return a, true
}

// ContextInfo describes the context version the detector currently scans
// against, plus the adapter's progress when adaptation is on. It backs the
// /context endpoint.
type ContextInfo struct {
	// Epoch / Fingerprint / Parent identify the version: epoch 0 is the
	// trained base, each adaptation increments it, and the parent hash
	// chains versions so a rollback is visible in the lineage.
	Epoch       uint64 `json:"epoch"`
	Fingerprint string `json:"fingerprint"`
	Parent      string `json:"parent,omitempty"`
	Groups      int    `json:"groups"`
	// ContextSchema is the context payload version (v2 carries interval
	// sketches); TimingCapable reports whether the detector's timing check
	// can run against this context.
	ContextSchema int  `json:"context_schema"`
	TimingCapable bool `json:"timing_capable"`
	// Adaptive reports whether online adaptation is enabled; the remaining
	// fields are zero when it is not.
	Adaptive       bool   `json:"adaptive"`
	GroupsAdmitted int64  `json:"groups_admitted,omitempty"`
	EdgesAdmitted  int64  `json:"edges_admitted,omitempty"`
	DecayedEdges   int64  `json:"decayed_edges,omitempty"`
	PendingSets    int    `json:"pending_sets,omitempty"`
	Rollbacks      int64  `json:"rollbacks,omitempty"`
	WindowsSeen    uint64 `json:"windows_seen,omitempty"`
}

// ContextInfo snapshots the active context version and adaptation state.
func (g *Gateway) ContextInfo() ContextInfo {
	g.mu.Lock()
	defer g.mu.Unlock()
	ctx := g.det.Context()
	info := ContextInfo{
		Epoch:         ctx.Epoch(),
		Fingerprint:   ctx.Fingerprint(),
		Parent:        ctx.ParentFingerprint(),
		Groups:        ctx.NumGroups(),
		ContextSchema: ctx.SchemaVersion(),
		TimingCapable: ctx.TimingCapable(),
		Adaptive:      g.adapter != nil,
	}
	if g.adapter != nil {
		info.GroupsAdmitted = g.adapter.GroupsAdmitted()
		info.EdgesAdmitted = g.adapter.EdgesAdmitted()
		info.DecayedEdges = g.adapter.DecayedEdges()
		info.PendingSets = g.adapter.PendingSets()
		info.Rollbacks = g.met.ctxRollbacks.Value()
		info.WindowsSeen = g.adapter.Windows()
	}
	return info
}

// DeviceLiveness is one device's silence-tracker state.
type DeviceLiveness struct {
	Device   device.ID     `json:"device"`
	Name     string        `json:"name"`
	LastSeen time.Duration `json:"last_seen"`
	Dark     bool          `json:"dark"`
}

// Liveness snapshots the silence tracker, ascending by device ID. Only
// devices that have reported at least once appear.
func (g *Gateway) Liveness() []DeviceLiveness {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]DeviceLiveness, 0, len(g.lastSeen))
	for _, id := range sortedIDs(g.lastSeen) {
		dl := DeviceLiveness{Device: id, LastSeen: g.lastSeen[id], Dark: g.dark[id]}
		if dev, err := g.reg.Get(id); err == nil {
			dl.Name = dev.Name
		}
		out = append(out, dl)
	}
	return out
}

// Ingest feeds one event. Completed windows are run through the detector
// immediately. With a WAL attached the event is made durable (per the sync
// policy) before any state mutates, so a crash at any point either replays
// the event or never acknowledged it.
func (g *Gateway) Ingest(e event.Event) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if e.At < g.horizon {
		return fmt.Errorf("gateway: event at %s regresses behind %s", e.At, g.horizon)
	}
	if err := g.logRecordLocked(wal.IngestRecord(e)); err != nil {
		return err
	}
	return g.ingestLocked(e)
}

// IngestBatch feeds a batch of events in one critical section: the whole
// batch is validated first, logged to the WAL with a single batched
// append (one write + one sync-policy application), then applied event
// by event through the same path Ingest uses.
//
// Validation must precede logging: a record that reaches the WAL will be
// re-applied on replay regardless of what the live run returned, so any
// event the gateway might refuse (time regression behind the horizon or
// the open window) has to be refused before anything is durable —
// otherwise the recovered state would diverge from the live one. For the
// same reason application continues past per-event errors, exactly as
// replay does; the first error is returned after the batch completes.
func (g *Gateway) IngestBatch(evts []event.Event) error {
	if len(evts) == 0 {
		return nil
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	idx := g.builder.CurrentIndex()
	dur := g.builder.Duration()
	for _, e := range evts {
		if e.At < g.horizon {
			return fmt.Errorf("gateway: event at %s regresses behind %s", e.At, g.horizon)
		}
		w := int(e.At / dur)
		if w < idx {
			return fmt.Errorf("gateway: event at %s regresses before window %d", e.At, idx)
		}
		idx = w
	}
	if err := g.logBatchLocked(evts); err != nil {
		return err
	}
	var first error
	for _, e := range evts {
		if err := g.ingestLocked(e); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// ingestLocked applies one event to detector state. It is the shared path
// for live ingest and WAL replay — the latter must mutate state exactly as
// the former did, or a recovered run diverges. The ingest hook runs first,
// before any mutation, so a hook that panics (poison event) or errors
// leaves the gateway bit-identical to never having seen the event.
func (g *Gateway) ingestLocked(e event.Event) error {
	if g.ingestHook != nil {
		if err := g.ingestHook(e); err != nil {
			return err
		}
	}
	g.met.events.Inc()
	if _, seen := g.lastSeen[e.Device]; !seen {
		g.liveIDs = insertSortedID(g.liveIDs, e.Device)
	}
	g.lastSeen[e.Device] = e.At
	if g.dark[e.Device] {
		delete(g.dark, e.Device) // a dark device that reports again has recovered
		g.met.dark.Set(int64(len(g.dark)))
	}
	g.observeClockLocked(e.At)
	done, err := g.builder.Add(e)
	if err != nil {
		return err
	}
	if err := g.processLocked(done); err != nil {
		return err
	}
	g.checkLivenessLocked()
	return nil
}

// AdvanceTo declares that stream time has reached t, closing any windows
// that ended before it even if no events arrived (a silent home must still
// produce windows: an all-quiet window is itself a state set). Only an
// advance that actually moves the horizon is logged to the WAL, so replay
// sees exactly the ops that mutated state.
func (g *Gateway) AdvanceTo(t time.Duration) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if t <= g.horizon {
		return nil
	}
	if err := g.logRecordLocked(wal.AdvanceRecord(t)); err != nil {
		return err
	}
	return g.advanceLocked(t)
}

func (g *Gateway) advanceLocked(t time.Duration) error {
	if t <= g.horizon {
		return nil
	}
	g.horizon = t
	g.observeClockLocked(t)
	done, err := g.builder.AdvanceTo(t)
	if err != nil {
		return err
	}
	if err := g.processLocked(done); err != nil {
		return err
	}
	g.checkLivenessLocked()
	return nil
}

// observeClockLocked moves the stream clock forward. The first live (not
// replayed) movement after a restore consumes the pending liveness rebase:
// if the jump exceeds the silence threshold, the gap is gateway downtime,
// not device silence, so every last-seen stamp shifts forward by the gap —
// otherwise a gateway down for an afternoon would declare the whole home
// dark before the first post-restart window. A seamless resume (jump
// within the threshold) shifts nothing, keeping restart bit-identity.
func (g *Gateway) observeClockLocked(t time.Duration) {
	if t <= g.streamNow {
		return
	}
	if g.rebasePending && !g.replaying {
		if delta := t - g.streamNow; g.liveThreshold > 0 && delta > g.liveThreshold {
			for id := range g.lastSeen {
				g.lastSeen[id] += delta
			}
		}
		g.rebasePending = false
	}
	g.streamNow = t
}

// logRecordLocked appends one op to the WAL (no-op without one). The
// record encodes into a reused buffer, so the hot path stays free of
// steady-state allocations.
func (g *Gateway) logRecordLocked(rec wal.Record) error {
	if g.wal == nil {
		return nil
	}
	g.walBuf = rec.AppendTo(g.walBuf[:0])
	seq, err := g.wal.Append(g.walBuf)
	if err != nil {
		return fmt.Errorf("gateway: wal append: %w", err)
	}
	g.walSeq = seq
	return nil
}

// logBatchLocked appends one WAL record per event with a single batched
// write. The records encode into one reused buffer, pre-grown so the
// per-record frame slices stay valid, keeping the path allocation-free
// at steady state.
func (g *Gateway) logBatchLocked(evts []event.Event) error {
	if g.wal == nil {
		return nil
	}
	if need := len(evts) * wal.RecordSize; cap(g.walBuf) < need {
		g.walBuf = make([]byte, 0, need)
	}
	buf := g.walBuf[:0]
	frames := g.walFrames[:0]
	for _, e := range evts {
		off := len(buf)
		buf = wal.IngestRecord(e).AppendTo(buf)
		frames = append(frames, buf[off:])
	}
	g.walBuf = buf
	g.walFrames = frames
	seq, err := g.wal.AppendBatch(frames)
	if err != nil {
		return fmt.Errorf("gateway: wal append: %w", err)
	}
	g.walSeq = seq
	return nil
}

// WALSeq returns the sequence number of the last op logged or replayed (0
// when no WAL is attached or nothing has been logged).
func (g *Gateway) WALSeq() uint64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.walSeq
}

// WAL returns the attached log (nil if none) so owners can truncate it
// after persisting a covering checkpoint.
func (g *Gateway) WAL() *wal.Log { return g.wal }

// Home returns the tenant name set with WithHome ("" for single-home).
func (g *Gateway) Home() string { return g.home }

// RecoverWAL replays the attached WAL's tail past the last checkpointed
// sequence number (WALSeq of the restored checkpoint, or the whole log on
// a cold start), re-applying each op through the same code path live
// ingest uses. Call it once, after New/RestoreCheckpoint and before any
// live traffic. A record whose application panics — the poison event that
// likely killed the previous incarnation — is captured to the dead-letter
// sink and skipped, so recovery cannot wedge on its own history. Errors
// returned by individual ops are discarded, mirroring the live run where
// the caller received them and the gateway kept going.
func (g *Gateway) RecoverWAL() error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.wal == nil {
		return nil
	}
	g.replaying = true
	err := g.wal.Replay(g.walSeq, func(seq uint64, payload []byte) error {
		rec, derr := wal.DecodeRecord(payload)
		if derr != nil {
			return derr
		}
		g.applyRecordLocked(seq, rec)
		g.walSeq = seq
		return nil
	})
	g.replaying = false
	if err != nil {
		return fmt.Errorf("gateway: wal replay: %w", err)
	}
	// Continue the sequence chain from the log's true tail even if replay
	// stopped early (decode skip or a damaged middle segment): new appends
	// get fresh sequence numbers either way.
	if last := g.wal.LastSeq(); last > g.walSeq {
		g.walSeq = last
	}
	g.rebasePending = true
	return nil
}

// ImportTail adopts a WAL tail shipped from another node: the frames are
// appended to the local log (continuing the donor's sequence space via
// SkipTo when the local log is fresh) and then applied through the replay
// path, exactly as RecoverWAL would have applied them from local disk.
// Call it after RestoreCheckpoint on the shipped checkpoint and before any
// live traffic.
//
// Two properties matter for a correct adoption. First, application runs
// with the replaying flag set, so the tail's clock movements do not consume
// the pending liveness rebase — the rebase must wait for the first live
// event on the new node, where a handoff gap longer than the silence
// threshold reads as downtime (last-seen stamps shift) instead of marking
// every device in the home dark. Second, the frames reach the log before
// they mutate state, preserving the log-before-apply invariant a crash
// mid-adoption depends on.
func (g *Gateway) ImportTail(frames [][]byte) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	base := g.walSeq
	if g.wal != nil {
		if g.wal.LastSeq() == 0 && base > 0 {
			// Fresh local log: continue the donor's sequence space so the
			// restored checkpoint's WALSeq stays meaningful here — a crash
			// after this append recovers by replaying past it as usual.
			if err := g.wal.SkipTo(base); err != nil {
				return err
			}
		}
		if len(frames) > 0 {
			last, err := g.wal.AppendBatch(frames)
			if err != nil {
				return fmt.Errorf("gateway: import tail: %w", err)
			}
			base = last - uint64(len(frames))
		}
	}
	g.replaying = true
	for i, p := range frames {
		rec, err := wal.DecodeRecord(p)
		if err != nil {
			g.replaying = false
			return fmt.Errorf("gateway: import tail frame %d: %w", i, err)
		}
		g.applyRecordLocked(base+uint64(i)+1, rec)
	}
	g.replaying = false
	if g.wal != nil {
		if last := g.wal.LastSeq(); last > g.walSeq {
			g.walSeq = last
		}
	} else {
		g.walSeq = base + uint64(len(frames))
	}
	g.rebasePending = true
	return nil
}

// applyRecordLocked applies one replayed op, converting a panic into a
// dead-letter entry + skip instead of letting it wedge recovery.
func (g *Gateway) applyRecordLocked(seq uint64, rec wal.Record) {
	defer func() {
		if p := recover(); p != nil {
			//nolint:errcheck // forensics, not state: a failed dead-letter
			// write must not abort recovery.
			g.deadLetter.Record(wal.Entry(g.home, seq, rec, p, debug.Stack(), true))
		}
	}()
	switch rec.Kind {
	case wal.KindIngest:
		g.ingestLocked(rec.Event()) //nolint:errcheck // see RecoverWAL doc
	case wal.KindAdvance:
		g.advanceLocked(rec.At) //nolint:errcheck // see RecoverWAL doc
	}
}

// checkLivenessLocked raises one fail-stop alert per device whose silence
// exceeds the threshold; the device stays marked dark (no re-alerting)
// until it reports again. Devices are visited in ID order so alert order
// is deterministic.
func (g *Gateway) checkLivenessLocked() {
	if g.liveThreshold <= 0 {
		return
	}
	for _, id := range g.liveIDs {
		last := g.lastSeen[id]
		if g.dark[id] || g.streamNow-last <= g.liveThreshold {
			continue
		}
		g.dark[id] = true
		g.met.dark.Set(int64(len(g.dark)))
		g.met.liveness.Inc()
		out := Alert{
			Cause:      core.CheckLiveness,
			DetectedAt: last + g.liveThreshold,
			ReportedAt: g.streamNow,
		}
		if dev, err := g.reg.Get(id); err == nil {
			out.Devices = append(out.Devices, dev)
		}
		// Liveness alerts have no detector episode; synthesize the trace so
		// every alert on /alerts/last is explainable. Groups and distance
		// carry their not-applicable sentinels.
		dur := g.builder.Duration()
		out.Explain = &core.Explain{
			Cause:          core.CheckLiveness,
			DetectedWindow: int(out.DetectedAt / dur),
			ReportedWindow: int(out.ReportedAt / dur),
			PrevGroup:      core.NoGroup,
			MainGroup:      core.NoGroup,
			MinDistance:    core.NoDistance,
			Steps: []core.ExplainStep{{
				Window:    int(out.ReportedAt / dur),
				Violation: core.CheckLiveness,
				Suspects:  []device.ID{id},
			}},
		}
		g.deliverLocked(out)
	}
}

func sortedIDs(m map[device.ID]time.Duration) []device.ID {
	out := make([]device.ID, 0, len(m))
	for id := range m {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// insertSortedID inserts id into an ascending slice, keeping it sorted.
// Devices register once each, so the quadratic worst case is bounded by
// the home's device count — and the hot path pays nothing.
func insertSortedID(ids []device.ID, id device.ID) []device.ID {
	pos := len(ids)
	for i, v := range ids {
		if id < v {
			pos = i
			break
		}
	}
	ids = append(ids, 0)
	copy(ids[pos+1:], ids[pos:])
	ids[pos] = id
	return ids
}

// processLocked runs completed windows through the detector. Processed
// observations are recycled into the builder's freelist — the detector
// copies what it keeps (Process retains nothing from the observation),
// so a steady-state stream reuses the same window state allocation.
func (g *Gateway) processLocked(obs []*window.Observation) error {
	d := g.builder.Duration()
	for _, o := range obs {
		res, err := g.det.Process(o)
		if err != nil {
			return err
		}
		g.met.windows.Inc()
		if res.Detected {
			g.met.violations.Inc()
		}
		// A multi-fault window can conclude several episodes at once;
		// every alert is delivered, in episode-opening order.
		for _, a := range res.Alerts {
			g.emit(a, d)
		}
		// The adapter sees every window with its verdict, under the same
		// lock that serializes Process — a published version swaps in
		// before the next window, never mid-scan.
		if g.adapter != nil {
			pub, err := g.adapter.Observe(o, res)
			if err != nil {
				return err
			}
			if pub != nil {
				if err := g.det.SwapContext(pub); err != nil {
					return err
				}
			}
		}
		g.builder.Recycle(o)
	}
	return nil
}

func (g *Gateway) emit(a *core.Alert, d time.Duration) {
	out := Alert{
		Cause:      a.Cause,
		DetectedAt: time.Duration(a.DetectedWindow) * d,
		ReportedAt: time.Duration(a.ReportedWindow) * d,
		Explain:    a.Explain,
	}
	for _, id := range a.Devices {
		if dev, err := g.reg.Get(id); err == nil {
			out.Devices = append(out.Devices, dev)
		} else {
			// A ghost alert names an ID the registry never issued — the
			// whole point of the check. Surface it as a synthetic record
			// rather than silently dropping the culprit.
			out.Devices = append(out.Devices, device.Device{
				ID: id, Name: fmt.Sprintf("ghost-%d", int(id)),
			})
		}
	}
	g.met.alertLatency.Observe((out.ReportedAt - out.DetectedAt).Seconds())
	g.deliverLocked(out)
}

// deliverLocked records the alert as the last one emitted and hands it to
// the channel, counting a drop instead of blocking when the buffer is full.
func (g *Gateway) deliverLocked(out Alert) {
	last := out
	g.lastAlert = &last
	select {
	case g.alerts <- out:
		g.met.alerts.Inc()
	default:
		g.met.alertsDropped.Inc()
	}
}
