// Package gateway is the home-gateway runtime of Figure 3.1: it ingests
// timestamped device events (in-process or over CoAP), windows them into
// fixed durations, runs the DICE detector online, and publishes alerts.
// The same window.Builder drives both this gateway and the batch
// evaluator, so online and offline detection are behaviourally identical.
package gateway

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/event"
	"repro/internal/window"
)

// Alert is a detector alert enriched with gateway metadata.
type Alert struct {
	// Devices are the probable faulty devices, resolved to full records.
	Devices []device.Device
	// Cause is the check that detected the underlying violation.
	Cause core.CheckKind
	// DetectedAt / ReportedAt are stream times (offsets from stream start).
	DetectedAt time.Duration
	ReportedAt time.Duration
}

// Stats counts gateway activity.
type Stats struct {
	Events        int64
	Windows       int64
	Violations    int64
	Alerts        int64
	AlertsDropped int64
	// LivenessAlerts counts fail-stop alerts raised by the silence
	// tracker; DarkDevices is the number of devices currently past the
	// silence threshold (a gauge, snapshotted by Stats()).
	LivenessAlerts int64
	DarkDevices    int64
}

// Gateway runs DICE over a live event stream. Events must be ingested in
// non-decreasing time order (the CoAP front end enforces this per device
// and tolerates cross-device skew up to the window duration).
type Gateway struct {
	mu      sync.Mutex
	det     *core.Detector
	builder *window.Builder
	reg     *device.Registry
	alerts  chan Alert
	stats   Stats
	horizon time.Duration

	// Liveness tracking: stream time each device last reported at, the
	// devices currently past the silence threshold, and the furthest
	// stream time observed (events may run ahead of the /advance horizon).
	liveThreshold time.Duration
	lastSeen      map[device.ID]time.Duration
	dark          map[device.ID]bool
	streamNow     time.Duration
}

// New builds a gateway around a trained context.
func New(ctx *core.Context, cfg core.Config) (*Gateway, error) {
	det, err := core.NewDetector(ctx, cfg)
	if err != nil {
		return nil, err
	}
	return &Gateway{
		det:      det,
		builder:  window.NewBuilder(ctx.Layout(), ctx.Duration()),
		reg:      ctx.Layout().Registry(),
		alerts:   make(chan Alert, 64),
		lastSeen: make(map[device.ID]time.Duration),
		dark:     make(map[device.ID]bool),
	}, nil
}

// SetLiveness enables fail-stop (outage) alerts for devices that have
// reported at least once and then stay silent longer than threshold; zero
// disables the tracker. A sparsely firing sensor is silent for hours of
// normal life, so thresholds should be generous — liveness catches the
// device that went dark, the window checks catch the one that lies.
func (g *Gateway) SetLiveness(threshold time.Duration) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.liveThreshold = threshold
}

// Alerts returns the alert channel. It is never closed; buffer overruns
// increment Stats.AlertsDropped rather than blocking detection.
func (g *Gateway) Alerts() <-chan Alert { return g.alerts }

// Stats returns a snapshot of the counters.
func (g *Gateway) Stats() Stats {
	g.mu.Lock()
	defer g.mu.Unlock()
	st := g.stats
	st.DarkDevices = int64(len(g.dark))
	return st
}

// DeviceLiveness is one device's silence-tracker state.
type DeviceLiveness struct {
	Device   device.ID     `json:"device"`
	Name     string        `json:"name"`
	LastSeen time.Duration `json:"last_seen"`
	Dark     bool          `json:"dark"`
}

// Liveness snapshots the silence tracker, ascending by device ID. Only
// devices that have reported at least once appear.
func (g *Gateway) Liveness() []DeviceLiveness {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]DeviceLiveness, 0, len(g.lastSeen))
	for _, id := range sortedIDs(g.lastSeen) {
		dl := DeviceLiveness{Device: id, LastSeen: g.lastSeen[id], Dark: g.dark[id]}
		if dev, err := g.reg.Get(id); err == nil {
			dl.Name = dev.Name
		}
		out = append(out, dl)
	}
	return out
}

// Ingest feeds one event. Completed windows are run through the detector
// immediately.
func (g *Gateway) Ingest(e event.Event) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if e.At < g.horizon {
		return fmt.Errorf("gateway: event at %s regresses behind %s", e.At, g.horizon)
	}
	g.stats.Events++
	g.lastSeen[e.Device] = e.At
	delete(g.dark, e.Device) // a dark device that reports again has recovered
	if e.At > g.streamNow {
		g.streamNow = e.At
	}
	done, err := g.builder.Add(e)
	if err != nil {
		return err
	}
	if err := g.processLocked(done); err != nil {
		return err
	}
	g.checkLivenessLocked()
	return nil
}

// AdvanceTo declares that stream time has reached t, closing any windows
// that ended before it even if no events arrived (a silent home must still
// produce windows: an all-quiet window is itself a state set).
func (g *Gateway) AdvanceTo(t time.Duration) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if t <= g.horizon {
		return nil
	}
	g.horizon = t
	if t > g.streamNow {
		g.streamNow = t
	}
	done, err := g.builder.AdvanceTo(t)
	if err != nil {
		return err
	}
	if err := g.processLocked(done); err != nil {
		return err
	}
	g.checkLivenessLocked()
	return nil
}

// checkLivenessLocked raises one fail-stop alert per device whose silence
// exceeds the threshold; the device stays marked dark (no re-alerting)
// until it reports again. Devices are visited in ID order so alert order
// is deterministic.
func (g *Gateway) checkLivenessLocked() {
	if g.liveThreshold <= 0 {
		return
	}
	for _, id := range sortedIDs(g.lastSeen) {
		last := g.lastSeen[id]
		if g.dark[id] || g.streamNow-last <= g.liveThreshold {
			continue
		}
		g.dark[id] = true
		g.stats.LivenessAlerts++
		out := Alert{
			Cause:      core.CheckLiveness,
			DetectedAt: last + g.liveThreshold,
			ReportedAt: g.streamNow,
		}
		if dev, err := g.reg.Get(id); err == nil {
			out.Devices = append(out.Devices, dev)
		}
		select {
		case g.alerts <- out:
			g.stats.Alerts++
		default:
			g.stats.AlertsDropped++
		}
	}
}

func sortedIDs(m map[device.ID]time.Duration) []device.ID {
	out := make([]device.ID, 0, len(m))
	for id := range m {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// processLocked runs completed windows through the detector.
func (g *Gateway) processLocked(obs []*window.Observation) error {
	d := g.builder.Duration()
	for _, o := range obs {
		res, err := g.det.Process(o)
		if err != nil {
			return err
		}
		g.stats.Windows++
		if res.Detected {
			g.stats.Violations++
		}
		if res.Alert != nil {
			g.emit(res.Alert, d)
		}
	}
	return nil
}

func (g *Gateway) emit(a *core.Alert, d time.Duration) {
	out := Alert{
		Cause:      a.Cause,
		DetectedAt: time.Duration(a.DetectedWindow) * d,
		ReportedAt: time.Duration(a.ReportedWindow) * d,
	}
	for _, id := range a.Devices {
		if dev, err := g.reg.Get(id); err == nil {
			out.Devices = append(out.Devices, dev)
		}
	}
	select {
	case g.alerts <- out:
		g.stats.Alerts++
	default:
		g.stats.AlertsDropped++
	}
}
