// Package gateway is the home-gateway runtime of Figure 3.1: it ingests
// timestamped device events (in-process or over CoAP), windows them into
// fixed durations, runs the DICE detector online, and publishes alerts.
// The same window.Builder drives both this gateway and the batch
// evaluator, so online and offline detection are behaviourally identical.
package gateway

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/event"
	"repro/internal/window"
)

// Alert is a detector alert enriched with gateway metadata.
type Alert struct {
	// Devices are the probable faulty devices, resolved to full records.
	Devices []device.Device
	// Cause is the check that detected the underlying violation.
	Cause core.CheckKind
	// DetectedAt / ReportedAt are stream times (offsets from stream start).
	DetectedAt time.Duration
	ReportedAt time.Duration
}

// Stats counts gateway activity.
type Stats struct {
	Events        int64
	Windows       int64
	Violations    int64
	Alerts        int64
	AlertsDropped int64
}

// Gateway runs DICE over a live event stream. Events must be ingested in
// non-decreasing time order (the CoAP front end enforces this per device
// and tolerates cross-device skew up to the window duration).
type Gateway struct {
	mu      sync.Mutex
	det     *core.Detector
	builder *window.Builder
	reg     *device.Registry
	alerts  chan Alert
	stats   Stats
	horizon time.Duration
}

// New builds a gateway around a trained context.
func New(ctx *core.Context, cfg core.Config) (*Gateway, error) {
	det, err := core.NewDetector(ctx, cfg)
	if err != nil {
		return nil, err
	}
	return &Gateway{
		det:     det,
		builder: window.NewBuilder(ctx.Layout(), ctx.Duration()),
		reg:     ctx.Layout().Registry(),
		alerts:  make(chan Alert, 64),
	}, nil
}

// Alerts returns the alert channel. It is never closed; buffer overruns
// increment Stats.AlertsDropped rather than blocking detection.
func (g *Gateway) Alerts() <-chan Alert { return g.alerts }

// Stats returns a snapshot of the counters.
func (g *Gateway) Stats() Stats {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.stats
}

// Ingest feeds one event. Completed windows are run through the detector
// immediately.
func (g *Gateway) Ingest(e event.Event) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if e.At < g.horizon {
		return fmt.Errorf("gateway: event at %s regresses behind %s", e.At, g.horizon)
	}
	g.stats.Events++
	done, err := g.builder.Add(e)
	if err != nil {
		return err
	}
	return g.processLocked(done)
}

// AdvanceTo declares that stream time has reached t, closing any windows
// that ended before it even if no events arrived (a silent home must still
// produce windows: an all-quiet window is itself a state set).
func (g *Gateway) AdvanceTo(t time.Duration) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if t <= g.horizon {
		return nil
	}
	g.horizon = t
	done, err := g.builder.AdvanceTo(t)
	if err != nil {
		return err
	}
	return g.processLocked(done)
}

// processLocked runs completed windows through the detector.
func (g *Gateway) processLocked(obs []*window.Observation) error {
	d := g.builder.Duration()
	for _, o := range obs {
		res, err := g.det.Process(o)
		if err != nil {
			return err
		}
		g.stats.Windows++
		if res.Detected {
			g.stats.Violations++
		}
		if res.Alert != nil {
			g.emit(res.Alert, d)
		}
	}
	return nil
}

func (g *Gateway) emit(a *core.Alert, d time.Duration) {
	out := Alert{
		Cause:      a.Cause,
		DetectedAt: time.Duration(a.DetectedWindow) * d,
		ReportedAt: time.Duration(a.ReportedWindow) * d,
	}
	for _, id := range a.Devices {
		if dev, err := g.reg.Get(id); err == nil {
			out.Devices = append(out.Devices, dev)
		}
	}
	select {
	case g.alerts <- out:
		g.stats.Alerts++
	default:
		g.stats.AlertsDropped++
	}
}
