package gateway

import (
	"encoding/json"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
)

// Prometheus text-format grammar (0.0.4). Deliberately a fresh copy of the
// regexes in internal/telemetry's tests: the format is the contract between
// the gateway and a real scraper, so this test must not share the
// implementation package's notion of validity.
var (
	promHelpRE   = regexp.MustCompile(`^# HELP [a-zA-Z_:][a-zA-Z0-9_:]* .*$`)
	promTypeRE   = regexp.MustCompile(`^# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* (counter|gauge|histogram)$`)
	promSampleRE = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")*\})? (NaN|[-+]?Inf|[-+]?[0-9]*\.?[0-9]+([eE][-+]?[0-9]+)?)$`)
)

// scrapeMetrics GETs /metrics off the gateway's observability mux and
// validates every line against the text-format grammar, returning the set
// of distinct series (sample names without labels).
func scrapeMetrics(t *testing.T, gw *Gateway) map[string]int {
	t.Helper()
	rec := httptest.NewRecorder()
	gw.HTTPHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("GET /metrics = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type %q", ct)
	}
	names := make(map[string]int)
	for _, line := range strings.Split(strings.TrimRight(rec.Body.String(), "\n"), "\n") {
		switch {
		case strings.HasPrefix(line, "# HELP "):
			if !promHelpRE.MatchString(line) {
				t.Errorf("bad HELP line: %q", line)
			}
		case strings.HasPrefix(line, "# TYPE "):
			if !promTypeRE.MatchString(line) {
				t.Errorf("bad TYPE line: %q", line)
			}
		default:
			if !promSampleRE.MatchString(line) {
				t.Errorf("bad sample line: %q", line)
				continue
			}
			name := line
			if i := strings.IndexAny(line, "{ "); i >= 0 {
				name = line[:i]
			}
			names[name]++
		}
	}
	return names
}

// TestMetricsEndpoint drives a faulty stream through a gateway with a CoAP
// front attached and scrapes /metrics: the exposition must be grammatical
// and cover every pipeline stage — window building, correlation scan,
// transition check, identification, gateway bookkeeping, CoAP transport.
func TestMetricsEndpoint(t *testing.T) {
	h, ctx := trainedHome(t)
	gw, err := New(ctx, WithConfig(core.Config{}), WithLiveness(40*time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	front, err := ServeCoAP(gw, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer front.Close()

	// Reports over CoAP so the transport series move, then the same dead
	// kitchen light fault as TestGatewayDetectsInjectedFault, in-process.
	agent, err := NewAgent(front.Addr())
	if err != nil {
		t.Fatal(err)
	}
	target, ok := h.Registry().Lookup("light-kitchen")
	if !ok {
		t.Fatal("no kitchen light")
	}
	start := 3*24*60 + 12*60
	evts := h.Events(start, start+6*60)
	for i, e := range evts {
		e.At -= time.Duration(start) * time.Minute
		if e.Device == target && e.At >= 30*time.Minute {
			continue
		}
		if i < 64 {
			if err := agent.Report(e); err != nil {
				t.Fatal(err)
			}
			continue
		}
		if i == 64 {
			if err := agent.Flush(); err != nil {
				t.Fatal(err)
			}
		}
		if err := gw.Ingest(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := agent.Close(); err != nil {
		t.Fatal(err)
	}
	if err := gw.AdvanceTo(6 * time.Hour); err != nil {
		t.Fatal(err)
	}

	names := scrapeMetrics(t, gw)
	if len(names) < 15 {
		t.Errorf("exposition has %d series, want >= 15", len(names))
	}
	stageRep := []string{
		"dice_window_built_total",      // window builder
		"dice_scan_exact_hit_total",    // correlation scan
		"dice_scan_seconds_count",      // scan latency histogram
		"dice_violations_total",        // transition/correlation violations
		"dice_identify_episodes_total", // identification
		"dice_det_episodes_open",       // multi-fault episode gauge
		"dice_det_alerts_total",        // per-cause alert counter
		"dice_det_concurrent_episodes_total",
		"dice_gateway_events_total", // gateway ingest
		"dice_gateway_alert_latency_seconds_count",
		"dice_coap_received_total", // CoAP transport
		"dice_coap_queue_depth",
	}
	for _, want := range stageRep {
		if names[want] == 0 {
			t.Errorf("exposition is missing %s", want)
		}
	}

	// The exposition must agree with the Stats views over the same counters.
	rec := httptest.NewRecorder()
	gw.HTTPHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/stats", nil))
	var st Stats
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatalf("GET /stats: %v", err)
	}
	if st.Events != gw.Stats().Events || st.Events == 0 {
		t.Errorf("/stats events = %d, Stats() = %d", st.Events, gw.Stats().Events)
	}
	if cs := front.ServerStats(); cs.Received == 0 || cs.Handled == 0 {
		t.Errorf("CoAP stats view empty after traffic: %+v", cs)
	}

	// /healthz responds.
	rec = httptest.NewRecorder()
	gw.HTTPHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != 200 {
		t.Errorf("GET /healthz = %d", rec.Code)
	}

	// pprof index is mounted.
	rec = httptest.NewRecorder()
	gw.HTTPHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/pprof/", nil))
	if rec.Code != 200 {
		t.Errorf("GET /debug/pprof/ = %d", rec.Code)
	}
}

// TestAlertsLastEndpoint: 404 before any alert; afterwards the JSON carries
// the Explain trace that names the violated transition.
func TestAlertsLastEndpoint(t *testing.T) {
	h, ctx := trainedHome(t)
	gw, err := New(ctx, WithConfig(core.Config{}))
	if err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	gw.HTTPHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/alerts/last", nil))
	if rec.Code != 404 {
		t.Fatalf("GET /alerts/last before alerts = %d, want 404", rec.Code)
	}

	target, ok := h.Registry().Lookup("light-kitchen")
	if !ok {
		t.Fatal("no kitchen light")
	}
	start := 3*24*60 + 12*60
	for _, e := range h.Events(start, start+6*60) {
		e.At -= time.Duration(start) * time.Minute
		if e.Device == target && e.At >= 30*time.Minute {
			continue
		}
		if err := gw.Ingest(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := gw.AdvanceTo(6 * time.Hour); err != nil {
		t.Fatal(err)
	}
	if gw.Stats().Alerts == 0 {
		t.Fatal("fault raised no alert")
	}

	rec = httptest.NewRecorder()
	gw.HTTPHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/alerts/last", nil))
	if rec.Code != 200 {
		t.Fatalf("GET /alerts/last = %d", rec.Code)
	}
	var got struct {
		Cause   string        `json:"cause"`
		Explain *core.Explain `json:"explain"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
		t.Fatalf("bad /alerts/last payload: %v\n%s", err, rec.Body.String())
	}
	if _, err := core.ParseCheckKind(got.Cause); err != nil {
		t.Errorf("cause %q is not a known check", got.Cause)
	}
	if got.Explain == nil {
		t.Fatal("/alerts/last has no explain trace")
	}
	if len(got.Explain.Steps) == 0 {
		t.Error("explain trace has no steps")
	}
	if got.Explain.Cause.String() != got.Cause {
		t.Errorf("trace cause %s, alert cause %s", got.Explain.Cause, got.Cause)
	}

	// LastAlert returns a copy: mutating it must not corrupt the stored one.
	a, ok := gw.LastAlert()
	if !ok {
		t.Fatal("LastAlert empty after an alert")
	}
	if a.Explain != nil && len(a.Explain.Steps) > 0 {
		a.Explain.Steps[0].Window = -99
		b, _ := gw.LastAlert()
		if b.Explain.Steps[0].Window == -99 {
			t.Error("LastAlert aliases internal state")
		}
	}
}
