package gateway

import (
	"encoding/json"
	"net"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/coap"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/event"
	"repro/internal/simhome"
)

// faultyAfternoon renders the standard robustness workload: an afternoon
// slice with the kitchen light fail-stopped 30 minutes in, rebased to
// stream time zero.
func faultyAfternoon(t *testing.T, h *simhome.Home, hours int) []event.Event {
	t.Helper()
	target, ok := h.Registry().Lookup("light-kitchen")
	if !ok {
		t.Fatal("no kitchen light")
	}
	start := 3*24*60 + 12*60
	var out []event.Event
	for _, e := range h.Events(start, start+hours*60) {
		e.At -= time.Duration(start) * time.Minute
		if e.Device == target && e.At >= 30*time.Minute {
			continue
		}
		out = append(out, e)
	}
	return out
}

func drainAlerts(gw *Gateway) []Alert {
	var out []Alert
	for {
		select {
		case a := <-gw.Alerts():
			out = append(out, a)
		default:
			return out
		}
	}
}

// replayThroughCoAP streams evts to a fresh gateway over a real UDP CoAP
// exchange, optionally through a chaotic link, and returns what the
// detector produced.
func replayThroughCoAP(t *testing.T, ctx *core.Context, evts []event.Event, cfg chaos.Config) (Stats, []Alert, coap.ServerStats, chaos.Stats) {
	t.Helper()
	gw, err := New(ctx, WithConfig(core.Config{}))
	if err != nil {
		t.Fatal(err)
	}
	front, err := ServeCoAP(gw, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer front.Close()

	var agent *Agent
	var link *chaos.Conn
	if cfg.Enabled() {
		inner, err := net.Dial("udp", front.Addr())
		if err != nil {
			t.Fatal(err)
		}
		link = chaos.WrapConn(inner, cfg)
		agent = NewAgentConn(link)
		agent.Client().AckTimeout = 20 * time.Millisecond
		agent.Client().MaxRetransmit = 12
		agent.Timeout = 60 * time.Second
	} else {
		agent, err = NewAgent(front.Addr())
		if err != nil {
			t.Fatal(err)
		}
	}

	for _, e := range evts {
		if err := agent.Report(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := agent.Advance(4 * time.Hour); err != nil {
		t.Fatal(err)
	}
	if err := agent.Close(); err != nil {
		t.Fatal(err)
	}
	var ls chaos.Stats
	if link != nil {
		ls = link.Stats()
	}
	return gw.Stats(), drainAlerts(gw), front.ServerStats(), ls
}

// TestGatewayChaosBitIdentical is the headline robustness property: with
// >=10% datagram loss and duplication injected on the /report link, the
// CoAP retransmission + server dedup must make the detector's output —
// windows, violations, alerts — bit-identical to a lossless run.
func TestGatewayChaosBitIdentical(t *testing.T) {
	h, ctx := trainedHome(t)
	evts := faultyAfternoon(t, h, 4)

	cleanStats, cleanAlerts, _, _ := replayThroughCoAP(t, ctx, evts, chaos.Config{})
	chaosStats, chaosAlerts, srvStats, linkStats := replayThroughCoAP(t, ctx, evts,
		chaos.Config{Seed: 7, Drop: 0.12, Dup: 0.12})

	if linkStats.Dropped == 0 || linkStats.Dups == 0 {
		t.Fatalf("chaos link injected nothing: %+v", linkStats)
	}
	if srvStats.Deduped == 0 {
		t.Error("server never deduplicated despite duplication on the link")
	}
	// The transport counters differ by construction; the detector-visible
	// state must not.
	if cleanStats != chaosStats {
		t.Errorf("detector output diverged under chaos:\n clean: %+v\n chaos: %+v", cleanStats, chaosStats)
	}
	if cleanStats.Violations == 0 || cleanStats.Alerts == 0 {
		t.Error("workload produced no fault signal; the comparison is vacuous")
	}
	if !reflect.DeepEqual(cleanAlerts, chaosAlerts) {
		t.Errorf("alerts diverged under chaos:\n clean: %+v\n chaos: %+v", cleanAlerts, chaosAlerts)
	}
}

// TestGatewayCheckpointRestartResume kills the gateway mid-window, restores
// a second instance from the checkpoint file, and requires the stitched run
// to match an uninterrupted one exactly — in particular no spurious
// transition-check violation on the first post-restart window.
func TestGatewayCheckpointRestartResume(t *testing.T) {
	h, ctx := trainedHome(t)
	evts := faultyAfternoon(t, h, 4)

	// Reference: one uninterrupted gateway.
	ref, err := New(ctx, WithConfig(core.Config{}))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range evts {
		if err := ref.Ingest(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := ref.AdvanceTo(4 * time.Hour); err != nil {
		t.Fatal(err)
	}
	refStats, refAlerts := ref.Stats(), drainAlerts(ref)
	if refStats.Violations == 0 || refStats.Alerts == 0 {
		t.Fatal("reference run produced no fault signal; restart test is vacuous")
	}

	// Split run: crash mid-window at 2h30m30s, checkpoint to disk, restore.
	cut := 2*time.Hour + 30*time.Minute + 30*time.Second
	gw1, err := New(ctx, WithConfig(core.Config{}))
	if err != nil {
		t.Fatal(err)
	}
	split := 0
	for ; split < len(evts) && evts[split].At < cut; split++ {
		if err := gw1.Ingest(evts[split]); err != nil {
			t.Fatal(err)
		}
	}
	alerts := drainAlerts(gw1)
	path := filepath.Join(t.TempDir(), "gateway.ckpt")
	if err := WriteCheckpoint(path, gw1.ExportCheckpoint()); err != nil {
		t.Fatal(err)
	}

	cp, err := ReadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	gw2, err := New(ctx, WithConfig(core.Config{}))
	if err != nil {
		t.Fatal(err)
	}
	if err := gw2.RestoreCheckpoint(cp); err != nil {
		t.Fatal(err)
	}
	for ; split < len(evts); split++ {
		if err := gw2.Ingest(evts[split]); err != nil {
			t.Fatal(err)
		}
	}
	if err := gw2.AdvanceTo(4 * time.Hour); err != nil {
		t.Fatal(err)
	}
	alerts = append(alerts, drainAlerts(gw2)...)

	if got := gw2.Stats(); got != refStats {
		t.Errorf("restarted run diverged:\n reference: %+v\n restarted: %+v", refStats, got)
	}
	if !reflect.DeepEqual(alerts, refAlerts) {
		t.Errorf("alerts diverged across restart:\n reference: %+v\n restarted: %+v", refAlerts, alerts)
	}
}

// TestGatewayCheckpointJSONStable guards the on-disk schema: a checkpoint
// must survive a JSON round trip and refuse a future version.
func TestGatewayCheckpointVersioned(t *testing.T) {
	_, ctx := trainedHome(t)
	gw, err := New(ctx, WithConfig(core.Config{}))
	if err != nil {
		t.Fatal(err)
	}
	cp := gw.ExportCheckpoint()
	data, err := json.Marshal(cp)
	if err != nil {
		t.Fatal(err)
	}
	var back Checkpoint
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	back.V = CheckpointVersion + 1
	gw2, err := New(ctx, WithConfig(core.Config{}))
	if err != nil {
		t.Fatal(err)
	}
	if err := gw2.RestoreCheckpoint(&back); err == nil {
		t.Error("future checkpoint version accepted")
	}
}

// TestCheckpointV1Migration round-trips the legacy schema: a v1 file (the
// pre-envelope format keyed "version":1, no "v", no tenancy) must load,
// migrate to v2 in memory, restore cleanly, and produce the same stitched
// run as an uninterrupted gateway.
func TestCheckpointV1Migration(t *testing.T) {
	h, ctx := trainedHome(t)
	evts := faultyAfternoon(t, h, 4)

	ref, err := New(ctx, WithConfig(core.Config{}))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range evts {
		if err := ref.Ingest(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := ref.AdvanceTo(4 * time.Hour); err != nil {
		t.Fatal(err)
	}
	refStats, refAlerts := ref.Stats(), drainAlerts(ref)

	cut := 2 * time.Hour
	gw1, err := New(ctx, WithConfig(core.Config{}))
	if err != nil {
		t.Fatal(err)
	}
	split := 0
	for ; split < len(evts) && evts[split].At < cut; split++ {
		if err := gw1.Ingest(evts[split]); err != nil {
			t.Fatal(err)
		}
	}
	alerts := drainAlerts(gw1)

	// Rewrite the exported checkpoint as a v1 file: version under the
	// legacy key, no envelope fields. This is byte-compatible with what a
	// pre-v2 gateway persisted.
	data, err := json.Marshal(gw1.ExportCheckpoint())
	if err != nil {
		t.Fatal(err)
	}
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(data, &raw); err != nil {
		t.Fatal(err)
	}
	delete(raw, "v")
	delete(raw, "home")
	raw["version"] = json.RawMessage("1")
	v1data, err := json.Marshal(raw)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "legacy.ckpt")
	if err := os.WriteFile(path, v1data, 0o644); err != nil {
		t.Fatal(err)
	}

	cp, err := ReadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if cp.V != CheckpointVersion || cp.LegacyVersion != 0 {
		t.Fatalf("v1 file did not migrate: v=%d legacy=%d", cp.V, cp.LegacyVersion)
	}
	gw2, err := New(ctx, WithConfig(core.Config{}), WithCheckpoint(cp))
	if err != nil {
		t.Fatal(err)
	}
	for ; split < len(evts); split++ {
		if err := gw2.Ingest(evts[split]); err != nil {
			t.Fatal(err)
		}
	}
	if err := gw2.AdvanceTo(4 * time.Hour); err != nil {
		t.Fatal(err)
	}
	alerts = append(alerts, drainAlerts(gw2)...)
	if got := gw2.Stats(); got != refStats {
		t.Errorf("migrated run diverged:\n reference: %+v\n migrated: %+v", refStats, got)
	}
	if !reflect.DeepEqual(alerts, refAlerts) {
		t.Errorf("alerts diverged across v1 migration:\n reference: %+v\n migrated: %+v", refAlerts, alerts)
	}

	// A v1 file claiming an unknown legacy version must be refused.
	raw["version"] = json.RawMessage("9")
	bad, err := json.Marshal(raw)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadCheckpoint(path); err == nil {
		t.Error("unknown legacy version accepted")
	}
}

func TestGatewayLiveness(t *testing.T) {
	h, ctx := trainedHome(t)
	gw, err := New(ctx, WithConfig(core.Config{}), WithLiveness(40*time.Minute))
	if err != nil {
		t.Fatal(err)
	}

	start := 3 * 24 * 60
	evts := h.Events(start, start+30)
	seen := map[device.ID]bool{}
	var lastDevice device.ID
	for _, e := range evts {
		e.At -= time.Duration(start) * time.Minute
		if err := gw.Ingest(e); err != nil {
			t.Fatal(err)
		}
		seen[e.Device] = true
		lastDevice = e.Device
	}
	if err := gw.AdvanceTo(30 * time.Minute); err != nil {
		t.Fatal(err)
	}
	if st := gw.Stats(); st.LivenessAlerts != 0 || st.DarkDevices != 0 {
		t.Fatalf("devices dark before the threshold elapsed: %+v", st)
	}

	// 75 minutes in, every device has been silent > 40m: all go dark, one
	// alert each.
	if err := gw.AdvanceTo(75 * time.Minute); err != nil {
		t.Fatal(err)
	}
	st := gw.Stats()
	if st.LivenessAlerts != int64(len(seen)) || st.DarkDevices != int64(len(seen)) {
		t.Fatalf("want %d dark devices and liveness alerts, got %+v", len(seen), st)
	}
	var live []Alert
	for _, a := range drainAlerts(gw) {
		if a.Cause == core.CheckLiveness {
			live = append(live, a)
		}
	}
	if len(live) != len(seen) {
		t.Fatalf("drained %d liveness alerts, want %d", len(live), len(seen))
	}
	for _, a := range live {
		if len(a.Devices) != 1 || !seen[a.Devices[0].ID] {
			t.Errorf("liveness alert names unexpected devices: %+v", a.Devices)
		}
		if a.ReportedAt != 75*time.Minute {
			t.Errorf("alert reported at %s, want 75m", a.ReportedAt)
		}
		if a.DetectedAt > a.ReportedAt {
			t.Errorf("alert detected at %s after reported at %s", a.DetectedAt, a.ReportedAt)
		}
		if a.Explain == nil || a.Explain.Cause != core.CheckLiveness ||
			len(a.Explain.Steps) != 1 || len(a.Explain.Steps[0].Suspects) != 1 ||
			a.Explain.Steps[0].Suspects[0] != a.Devices[0].ID {
			t.Errorf("liveness alert lacks a silence trace: %+v", a.Explain)
		}
	}
	// Advancing further must not re-alert for already-dark devices.
	if err := gw.AdvanceTo(80 * time.Minute); err != nil {
		t.Fatal(err)
	}
	if got := gw.Stats().LivenessAlerts; got != int64(len(seen)) {
		t.Errorf("dark devices re-alerted: %d alerts", got)
	}

	// A dark device that reports again has recovered ...
	if err := gw.Ingest(event.Event{At: 80 * time.Minute, Device: lastDevice, Value: 1}); err != nil {
		t.Fatal(err)
	}
	darkNow := 0
	for _, dl := range gw.Liveness() {
		if dl.Device == lastDevice {
			if dl.Dark || dl.LastSeen != 80*time.Minute {
				t.Errorf("recovered device still %+v", dl)
			}
		} else if dl.Dark {
			darkNow++
		}
	}
	if int64(darkNow) != gw.Stats().DarkDevices {
		t.Errorf("Liveness() reports %d dark, Stats says %d", darkNow, gw.Stats().DarkDevices)
	}
	// ... and is eligible for a fresh alert on its next silence.
	if err := gw.AdvanceTo(125 * time.Minute); err != nil {
		t.Fatal(err)
	}
	if got := gw.Stats().LivenessAlerts; got != int64(len(seen))+1 {
		t.Errorf("recovered device never re-alerted: %d alerts, want %d", got, len(seen)+1)
	}
}

// TestReportIdempotence resends the exact /report datagram and requires the
// gateway's counters to be unaffected: dedup must absorb the duplicate
// before it reaches ingestion.
func TestReportIdempotence(t *testing.T) {
	h, ctx := trainedHome(t)
	gw, err := New(ctx, WithConfig(core.Config{}))
	if err != nil {
		t.Fatal(err)
	}
	front, err := ServeCoAP(gw, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer front.Close()

	start := 3 * 24 * 60
	var batch []WireEvent
	for _, e := range h.Events(start, start+5) {
		e.At -= time.Duration(start) * time.Minute
		batch = append(batch, WireEvent{AtMS: e.At.Milliseconds(), Device: int(e.Device), Value: e.Value})
	}
	if len(batch) == 0 {
		t.Fatal("empty workload")
	}
	payload, err := json.Marshal(batch)
	if err != nil {
		t.Fatal(err)
	}
	req := &coap.Message{Type: coap.Confirmable, Code: coap.CodePOST, MessageID: 41, Token: []byte{3}, Payload: payload}
	req.SetPath("report")
	data, err := req.Marshal()
	if err != nil {
		t.Fatal(err)
	}

	conn, err := net.Dial("udp", front.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	exchange := func() {
		if _, err := conn.Write(data); err != nil {
			t.Fatal(err)
		}
		conn.SetReadDeadline(time.Now().Add(5 * time.Second)) //nolint:errcheck
		buf := make([]byte, 64*1024)
		if _, err := conn.Read(buf); err != nil {
			t.Fatal(err)
		}
	}
	exchange()
	if got := gw.Stats().Events; got != int64(len(batch)) {
		t.Fatalf("first report ingested %d events, want %d", got, len(batch))
	}
	exchange() // byte-identical retransmission
	if got := gw.Stats().Events; got != int64(len(batch)) {
		t.Errorf("duplicate report double-ingested: %d events, want %d", got, len(batch))
	}
	if st := front.ServerStats(); st.Deduped != 1 {
		t.Errorf("Deduped = %d, want 1", st.Deduped)
	}
}
