package gateway

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
)

// HTTPHandler returns the gateway's observability mux:
//
//	GET /metrics       Prometheus text exposition of every pipeline series
//	GET /alerts/last   the most recent alert with its Explain trace
//	GET /stats         the Stats snapshot as JSON
//	GET /liveness      the silence tracker as JSON
//	GET /context       the active context version + adaptation progress
//	GET /healthz       200 ok
//	GET /debug/pprof/  the standard pprof index (profile, heap, trace, ...)
//
// The mux is standalone so callers can mount it on an existing server; a
// private mux (not http.DefaultServeMux) keeps pprof off any other server
// the process happens to run.
func (g *Gateway) HTTPHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		g.tel.WriteText(w) //nolint:errcheck // client went away
	})
	mux.HandleFunc("/alerts/last", func(w http.ResponseWriter, r *http.Request) {
		a, ok := g.LastAlert()
		if !ok {
			http.Error(w, "no alerts yet", http.StatusNotFound)
			return
		}
		writeJSON(w, a)
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, g.Stats())
	})
	mux.HandleFunc("/liveness", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, g.Liveness())
	})
	mux.HandleFunc("/context", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, g.ContextInfo())
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok\n")) //nolint:errcheck // client went away
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client went away
}

// HTTPServer is a running observability endpoint.
type HTTPServer struct {
	srv *http.Server
	ln  net.Listener
}

// ServeHTTP starts the observability endpoint on addr (":0" picks a free
// port). The returned server is already serving.
func ServeHTTP(gw *Gateway, addr string) (*HTTPServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &HTTPServer{srv: &http.Server{Handler: gw.HTTPHandler()}, ln: ln}
	go s.srv.Serve(ln) //nolint:errcheck // ErrServerClosed after Close
	return s, nil
}

// Addr returns the bound TCP address string.
func (s *HTTPServer) Addr() string { return s.ln.Addr().String() }

// Close stops the server.
func (s *HTTPServer) Close() error { return s.srv.Close() }
