package gateway

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net"
	"time"

	"repro/internal/coap"
	"repro/internal/device"
	"repro/internal/event"
	"repro/internal/telemetry"
	"repro/internal/wire"
)

// Wire format for device reports: devices POST a batch of readings to
// /report; the gateway windows them and runs DICE. A device may also POST
// /advance to push stream time forward during silent stretches (the
// simulated aggregators do this once per minute), GET /stats for the
// gateway counters, GET /liveness for the silence tracker, and GET
// /context for the active context version (including whether it carries
// the interval sketches the timing check needs).
//
// Two encodings share the same resource paths, negotiated by sniffing the
// payload's first bytes: the binary batch format of internal/wire (magic
// "DWB1") and the legacy JSON arrays below. JSON devices keep working
// unmodified; binary devices get the zero-copy decode path. Error
// responses carry stable short reason codes, never internal error text —
// the detail stays on the gateway's telemetry (dice_gw_malformed_total)
// rather than being echoed to an unauthenticated UDP peer.

// Stable CodeBadRequest reason codes. Remote peers see only these;
// anything more specific is observable via telemetry.
const (
	// ReasonBadPayload: the payload decoded as neither a binary batch nor
	// the legacy JSON schema (or failed its CRC).
	ReasonBadPayload = "bad-payload"
	// ReasonRejected: the payload decoded, but the gateway refused it
	// (time regression, ingest hook veto).
	ReasonRejected = "rejected"
	// ReasonMethod: the resource requires a POST.
	ReasonMethod = "method-not-allowed"
)

// metricGwMalformed counts report/advance payloads that failed to decode.
const metricGwMalformed = "dice_gw_malformed_total"

// WireEvent is one reading in a report payload.
type WireEvent struct {
	// AtMS is the stream-time offset in milliseconds.
	AtMS int64 `json:"at"`
	// Device is the device ID in the shared registry.
	Device int `json:"d"`
	// Value is the reading.
	Value float64 `json:"v"`
}

// wireAdvance is the /advance payload.
type wireAdvance struct {
	AtMS int64 `json:"at"`
}

// Front serves the gateway's CoAP API.
type Front struct {
	gw        *Gateway
	srv       *coap.Server
	malformed *telemetry.Counter
}

// ServeCoAP starts the CoAP front end on addr (":0" picks a free port).
// The server's transport counters register against the gateway's registry,
// so they ride along on /metrics.
func ServeCoAP(gw *Gateway, addr string, opts ...coap.ServerOption) (*Front, error) {
	f := newFront(gw)
	srv, err := coap.ListenAndServe(addr, f.handle,
		append([]coap.ServerOption{coap.WithTelemetry(gw.Telemetry())}, opts...)...)
	if err != nil {
		return nil, err
	}
	f.srv = srv
	return f, nil
}

// ServeCoAPConn starts the front end on an existing packet conn — e.g. a
// chaos-wrapped one — and takes ownership of it.
func ServeCoAPConn(gw *Gateway, conn net.PacketConn, cfg coap.ServerConfig) (*Front, error) {
	f := newFront(gw)
	srv, err := coap.Serve(conn, f.handle,
		coap.WithServerConfig(cfg), coap.WithTelemetry(gw.Telemetry()))
	if err != nil {
		return nil, err
	}
	f.srv = srv
	return f, nil
}

func newFront(gw *Gateway) *Front {
	return &Front{
		gw:        gw,
		malformed: gw.Telemetry().Counter(metricGwMalformed, "Report/advance payloads that failed to decode (JSON or binary)."),
	}
}

// Addr returns the bound UDP address string.
func (f *Front) Addr() string { return f.srv.Addr().String() }

// Close stops the front end.
func (f *Front) Close() error { return f.srv.Close() }

// ServerStats returns the CoAP server's transport counters.
func (f *Front) ServerStats() coap.ServerStats { return f.srv.Stats() }

// Checkpoint snapshots the gateway state plus the CoAP dedup cache.
func (f *Front) Checkpoint() *Checkpoint {
	cp := f.gw.ExportCheckpoint()
	cp.Dedup = f.srv.ExportDedup()
	return cp
}

// Restore loads a checkpoint into the gateway and seeds the dedup cache,
// so retransmissions of pre-crash requests replay their cached ACKs
// instead of re-ingesting their batches.
func (f *Front) Restore(cp *Checkpoint) error {
	if err := f.gw.RestoreCheckpoint(cp); err != nil {
		return err
	}
	f.srv.RestoreDedup(cp.Dedup)
	return nil
}

// handleBinary decodes and applies one binary batch through the pooled
// zero-alloc path. The kind byte is authoritative — a binary advance on
// /report behaves like one on /advance — because the payload, not the
// path, is what the CRC covers.
func (f *Front) handleBinary(payload []byte) *coap.Message {
	scratch := wire.GetEvents()
	b, err := wire.DecodeBatch(payload, *scratch)
	if err != nil {
		wire.PutEvents(scratch)
		f.malformed.Inc()
		return &coap.Message{Code: coap.CodeBadRequest, Payload: []byte(ReasonBadPayload)}
	}
	*scratch = b.Events
	var opErr error
	switch b.Kind {
	case wire.KindReport:
		opErr = f.gw.IngestBatch(b.Events)
	case wire.KindAdvance:
		opErr = f.gw.AdvanceTo(b.At)
	}
	wire.PutEvents(scratch)
	if opErr != nil {
		return &coap.Message{Code: coap.CodeBadRequest, Payload: []byte(ReasonRejected)}
	}
	return &coap.Message{Code: coap.CodeChanged}
}

func (f *Front) handle(req *coap.Message) *coap.Message {
	switch req.Path() {
	case "report":
		if req.Code != coap.CodePOST {
			return &coap.Message{Code: coap.CodeBadRequest, Payload: []byte(ReasonMethod)}
		}
		if wire.IsBinary(req.Payload) {
			return f.handleBinary(req.Payload)
		}
		var batch []WireEvent
		if err := json.Unmarshal(req.Payload, &batch); err != nil {
			f.malformed.Inc()
			return &coap.Message{Code: coap.CodeBadRequest, Payload: []byte(ReasonBadPayload)}
		}
		for _, w := range batch {
			e := event.Event{
				At:     time.Duration(w.AtMS) * time.Millisecond,
				Device: device.ID(w.Device),
				Value:  w.Value,
			}
			if err := f.gw.Ingest(e); err != nil {
				return &coap.Message{Code: coap.CodeBadRequest, Payload: []byte(ReasonRejected)}
			}
		}
		return &coap.Message{Code: coap.CodeChanged}
	case "advance":
		if wire.IsBinary(req.Payload) {
			return f.handleBinary(req.Payload)
		}
		var adv wireAdvance
		if err := json.Unmarshal(req.Payload, &adv); err != nil {
			f.malformed.Inc()
			return &coap.Message{Code: coap.CodeBadRequest, Payload: []byte(ReasonBadPayload)}
		}
		if err := f.gw.AdvanceTo(time.Duration(adv.AtMS) * time.Millisecond); err != nil {
			return &coap.Message{Code: coap.CodeBadRequest, Payload: []byte(ReasonRejected)}
		}
		return &coap.Message{Code: coap.CodeChanged}
	case "stats":
		data, err := json.Marshal(f.gw.Stats())
		if err != nil {
			return &coap.Message{Code: coap.CodeInternal}
		}
		return &coap.Message{Code: coap.CodeContent, Payload: data}
	case "liveness":
		data, err := json.Marshal(f.gw.Liveness())
		if err != nil {
			return &coap.Message{Code: coap.CodeInternal}
		}
		return &coap.Message{Code: coap.CodeContent, Payload: data}
	case "context":
		data, err := json.Marshal(f.gw.ContextInfo())
		if err != nil {
			return &coap.Message{Code: coap.CodeInternal}
		}
		return &coap.Message{Code: coap.CodeContent, Payload: data}
	default:
		return &coap.Message{Code: coap.CodeNotFound}
	}
}

// WireFormat selects the encoding an Agent puts on the wire.
type WireFormat uint8

const (
	// WireBinary is the internal/wire binary batch format (the default):
	// fixed-width records, CRC-framed, decoded on the gateway through the
	// pooled zero-alloc path. Binary keeps full nanosecond timestamps.
	WireBinary WireFormat = iota
	// WireJSON is the legacy JSON array encoding. Timestamps truncate to
	// milliseconds on the wire.
	WireJSON
)

// Agent is the device-side helper: it batches readings and posts them to a
// gateway front end.
type Agent struct {
	cli     *coap.Client
	pending []event.Event
	enc     []byte // reused encode buffer for binary payloads
	// BatchSize is how many readings are sent per POST (default 16).
	BatchSize int
	// Timeout bounds each exchange (default 5s).
	Timeout time.Duration
	// Format selects the wire encoding (default WireBinary). Set WireJSON
	// to exercise the legacy path or to talk to a pre-binary gateway.
	Format WireFormat
	// Home, when set, addresses a tenant behind a multi-home hub: requests
	// go to /report/{home}, /advance/{home}, /stats/{home} instead of the
	// bare single-gateway paths.
	Home string
	// Retries bounds how many times a timed-out exchange is reissued as a
	// fresh request, with exponential backoff + jitter between attempts —
	// the layer above the CON retransmission schedule, for outages that
	// outlast a whole ladder (gateway restart, tenant migration). Zero (the
	// default) keeps the single-exchange behaviour. Each reissue is a new
	// exchange (new Message ID), so the gateway's dedup cache does not
	// absorb it: enable retries only against idempotent resources or when
	// at-least-once reporting is acceptable.
	Retries int
	// RetryBackoff is the base delay before the first reissue (default
	// 250ms); it doubles per attempt, capped at 5s, with uniform jitter of
	// up to half the delay added so synchronized agents do not stampede a
	// recovering gateway.
	RetryBackoff time.Duration
}

// path renders a resource path, suffixed with the tenant segment when the
// agent reports into a multi-home hub.
func (a *Agent) path(base string) string {
	if a.Home == "" {
		return base
	}
	return base + "/" + a.Home
}

// NewAgent dials a gateway front end.
func NewAgent(addr string) (*Agent, error) {
	cli, err := coap.Dial(addr)
	if err != nil {
		return nil, err
	}
	return &Agent{cli: cli, BatchSize: 16, Timeout: 5 * time.Second}, nil
}

// NewAgentConn builds an agent over an existing connected datagram conn —
// e.g. a chaos-wrapped one — and takes ownership of it.
func NewAgentConn(conn net.Conn) *Agent {
	return &Agent{cli: coap.NewClient(conn), BatchSize: 16, Timeout: 5 * time.Second}
}

// Client exposes the underlying CoAP client so callers can tune its
// retransmission parameters.
func (a *Agent) Client() *coap.Client { return a.cli }

// Close flushes pending readings and releases the socket.
func (a *Agent) Close() error {
	flushErr := a.Flush()
	closeErr := a.cli.Close()
	if flushErr != nil {
		return flushErr
	}
	return closeErr
}

// Report queues one reading, flushing when the batch is full.
func (a *Agent) Report(e event.Event) error {
	a.pending = append(a.pending, e)
	if len(a.pending) >= a.BatchSize {
		return a.Flush()
	}
	return nil
}

// Flush posts all queued readings.
func (a *Agent) Flush() error {
	if len(a.pending) == 0 {
		return nil
	}
	var payload []byte
	if a.Format == WireJSON {
		batch := make([]WireEvent, len(a.pending))
		for i, e := range a.pending {
			batch[i] = WireEvent{AtMS: e.At.Milliseconds(), Device: int(e.Device), Value: e.Value}
		}
		var err error
		payload, err = json.Marshal(batch)
		if err != nil {
			return err
		}
	} else {
		a.enc = wire.AppendReport(a.enc[:0], a.pending)
		payload = a.enc
	}
	req := &coap.Message{Code: coap.CodePOST, Payload: payload}
	req.SetPath(a.path("report"))
	resp, err := a.do(req)
	if err != nil {
		return err
	}
	if resp.Code != coap.CodeChanged {
		return fmt.Errorf("gateway: report rejected: %s %s", resp.Code, resp.Payload)
	}
	a.pending = a.pending[:0]
	return nil
}

// Advance pushes the gateway's stream clock to t.
func (a *Agent) Advance(t time.Duration) error {
	if err := a.Flush(); err != nil {
		return err
	}
	var payload []byte
	if a.Format == WireJSON {
		var err error
		payload, err = json.Marshal(wireAdvance{AtMS: t.Milliseconds()})
		if err != nil {
			return err
		}
	} else {
		a.enc = wire.AppendAdvance(a.enc[:0], t)
		payload = a.enc
	}
	req := &coap.Message{Code: coap.CodePOST, Payload: payload}
	req.SetPath(a.path("advance"))
	resp, err := a.do(req)
	if err != nil {
		return err
	}
	if resp.Code != coap.CodeChanged {
		return fmt.Errorf("gateway: advance rejected: %s %s", resp.Code, resp.Payload)
	}
	return nil
}

// Stats fetches the gateway counters.
func (a *Agent) Stats() (Stats, error) {
	req := &coap.Message{Code: coap.CodeGET}
	req.SetPath(a.path("stats"))
	resp, err := a.do(req)
	if err != nil {
		return Stats{}, err
	}
	var s Stats
	if err := json.Unmarshal(resp.Payload, &s); err != nil {
		return Stats{}, fmt.Errorf("gateway: bad stats payload: %w", err)
	}
	return s, nil
}

// maxRetryBackoff caps the exponential reissue delay.
const maxRetryBackoff = 5 * time.Second

func (a *Agent) do(req *coap.Message) (*coap.Message, error) {
	timeout := a.Timeout
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	var lastErr error
	for attempt := 0; ; attempt++ {
		ctx, cancel := context.WithTimeout(context.Background(), timeout)
		resp, err := a.cli.Do(ctx, req)
		cancel()
		if err == nil {
			return resp, nil
		}
		lastErr = err
		if attempt >= a.Retries {
			return nil, lastErr
		}
		base := a.RetryBackoff
		if base <= 0 {
			base = 250 * time.Millisecond
		}
		delay := base << attempt
		if delay > maxRetryBackoff || delay <= 0 {
			delay = maxRetryBackoff
		}
		// Full-jitter on the top half: uniform in [delay/2, delay).
		delay = delay/2 + time.Duration(rand.Int63n(int64(delay/2)+1))
		time.Sleep(delay)
	}
}
