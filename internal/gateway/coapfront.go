package gateway

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"time"

	"repro/internal/coap"
	"repro/internal/device"
	"repro/internal/event"
)

// Wire format for device reports: devices POST a batch of readings to
// /report; the gateway windows them and runs DICE. A device may also POST
// /advance to push stream time forward during silent stretches (the
// simulated aggregators do this once per minute), and GET /stats for the
// gateway counters.

// WireEvent is one reading in a report payload.
type WireEvent struct {
	// AtMS is the stream-time offset in milliseconds.
	AtMS int64 `json:"at"`
	// Device is the device ID in the shared registry.
	Device int `json:"d"`
	// Value is the reading.
	Value float64 `json:"v"`
}

// wireAdvance is the /advance payload.
type wireAdvance struct {
	AtMS int64 `json:"at"`
}

// Front serves the gateway's CoAP API.
type Front struct {
	gw  *Gateway
	srv *coap.Server
}

// ServeCoAP starts the CoAP front end on addr (":0" picks a free port).
// The server's transport counters register against the gateway's registry,
// so they ride along on /metrics.
func ServeCoAP(gw *Gateway, addr string, opts ...coap.ServerOption) (*Front, error) {
	f := &Front{gw: gw}
	srv, err := coap.ListenAndServe(addr, f.handle,
		append([]coap.ServerOption{coap.WithTelemetry(gw.Telemetry())}, opts...)...)
	if err != nil {
		return nil, err
	}
	f.srv = srv
	return f, nil
}

// ServeCoAPConn starts the front end on an existing packet conn — e.g. a
// chaos-wrapped one — and takes ownership of it.
func ServeCoAPConn(gw *Gateway, conn net.PacketConn, cfg coap.ServerConfig) (*Front, error) {
	f := &Front{gw: gw}
	srv, err := coap.Serve(conn, f.handle,
		coap.WithServerConfig(cfg), coap.WithTelemetry(gw.Telemetry()))
	if err != nil {
		return nil, err
	}
	f.srv = srv
	return f, nil
}

// Addr returns the bound UDP address string.
func (f *Front) Addr() string { return f.srv.Addr().String() }

// Close stops the front end.
func (f *Front) Close() error { return f.srv.Close() }

// ServerStats returns the CoAP server's transport counters.
func (f *Front) ServerStats() coap.ServerStats { return f.srv.Stats() }

// Checkpoint snapshots the gateway state plus the CoAP dedup cache.
func (f *Front) Checkpoint() *Checkpoint {
	cp := f.gw.ExportCheckpoint()
	cp.Dedup = f.srv.ExportDedup()
	return cp
}

// Restore loads a checkpoint into the gateway and seeds the dedup cache,
// so retransmissions of pre-crash requests replay their cached ACKs
// instead of re-ingesting their batches.
func (f *Front) Restore(cp *Checkpoint) error {
	if err := f.gw.RestoreCheckpoint(cp); err != nil {
		return err
	}
	f.srv.RestoreDedup(cp.Dedup)
	return nil
}

func (f *Front) handle(req *coap.Message) *coap.Message {
	switch req.Path() {
	case "report":
		if req.Code != coap.CodePOST {
			return &coap.Message{Code: coap.CodeBadRequest, Payload: []byte("POST only")}
		}
		var batch []WireEvent
		if err := json.Unmarshal(req.Payload, &batch); err != nil {
			return &coap.Message{Code: coap.CodeBadRequest, Payload: []byte(err.Error())}
		}
		for _, w := range batch {
			e := event.Event{
				At:     time.Duration(w.AtMS) * time.Millisecond,
				Device: device.ID(w.Device),
				Value:  w.Value,
			}
			if err := f.gw.Ingest(e); err != nil {
				return &coap.Message{Code: coap.CodeBadRequest, Payload: []byte(err.Error())}
			}
		}
		return &coap.Message{Code: coap.CodeChanged}
	case "advance":
		var adv wireAdvance
		if err := json.Unmarshal(req.Payload, &adv); err != nil {
			return &coap.Message{Code: coap.CodeBadRequest, Payload: []byte(err.Error())}
		}
		if err := f.gw.AdvanceTo(time.Duration(adv.AtMS) * time.Millisecond); err != nil {
			return &coap.Message{Code: coap.CodeBadRequest, Payload: []byte(err.Error())}
		}
		return &coap.Message{Code: coap.CodeChanged}
	case "stats":
		data, err := json.Marshal(f.gw.Stats())
		if err != nil {
			return &coap.Message{Code: coap.CodeInternal}
		}
		return &coap.Message{Code: coap.CodeContent, Payload: data}
	case "liveness":
		data, err := json.Marshal(f.gw.Liveness())
		if err != nil {
			return &coap.Message{Code: coap.CodeInternal}
		}
		return &coap.Message{Code: coap.CodeContent, Payload: data}
	default:
		return &coap.Message{Code: coap.CodeNotFound}
	}
}

// Agent is the device-side helper: it batches readings and posts them to a
// gateway front end.
type Agent struct {
	cli     *coap.Client
	pending []WireEvent
	// BatchSize is how many readings are sent per POST (default 16).
	BatchSize int
	// Timeout bounds each exchange (default 5s).
	Timeout time.Duration
	// Home, when set, addresses a tenant behind a multi-home hub: requests
	// go to /report/{home}, /advance/{home}, /stats/{home} instead of the
	// bare single-gateway paths.
	Home string
}

// path renders a resource path, suffixed with the tenant segment when the
// agent reports into a multi-home hub.
func (a *Agent) path(base string) string {
	if a.Home == "" {
		return base
	}
	return base + "/" + a.Home
}

// NewAgent dials a gateway front end.
func NewAgent(addr string) (*Agent, error) {
	cli, err := coap.Dial(addr)
	if err != nil {
		return nil, err
	}
	return &Agent{cli: cli, BatchSize: 16, Timeout: 5 * time.Second}, nil
}

// NewAgentConn builds an agent over an existing connected datagram conn —
// e.g. a chaos-wrapped one — and takes ownership of it.
func NewAgentConn(conn net.Conn) *Agent {
	return &Agent{cli: coap.NewClient(conn), BatchSize: 16, Timeout: 5 * time.Second}
}

// Client exposes the underlying CoAP client so callers can tune its
// retransmission parameters.
func (a *Agent) Client() *coap.Client { return a.cli }

// Close flushes pending readings and releases the socket.
func (a *Agent) Close() error {
	flushErr := a.Flush()
	closeErr := a.cli.Close()
	if flushErr != nil {
		return flushErr
	}
	return closeErr
}

// Report queues one reading, flushing when the batch is full.
func (a *Agent) Report(e event.Event) error {
	a.pending = append(a.pending, WireEvent{
		AtMS:   e.At.Milliseconds(),
		Device: int(e.Device),
		Value:  e.Value,
	})
	if len(a.pending) >= a.BatchSize {
		return a.Flush()
	}
	return nil
}

// Flush posts all queued readings.
func (a *Agent) Flush() error {
	if len(a.pending) == 0 {
		return nil
	}
	payload, err := json.Marshal(a.pending)
	if err != nil {
		return err
	}
	req := &coap.Message{Code: coap.CodePOST, Payload: payload}
	req.SetPath(a.path("report"))
	resp, err := a.do(req)
	if err != nil {
		return err
	}
	if resp.Code != coap.CodeChanged {
		return fmt.Errorf("gateway: report rejected: %s %s", resp.Code, resp.Payload)
	}
	a.pending = a.pending[:0]
	return nil
}

// Advance pushes the gateway's stream clock to t.
func (a *Agent) Advance(t time.Duration) error {
	if err := a.Flush(); err != nil {
		return err
	}
	payload, err := json.Marshal(wireAdvance{AtMS: t.Milliseconds()})
	if err != nil {
		return err
	}
	req := &coap.Message{Code: coap.CodePOST, Payload: payload}
	req.SetPath(a.path("advance"))
	resp, err := a.do(req)
	if err != nil {
		return err
	}
	if resp.Code != coap.CodeChanged {
		return fmt.Errorf("gateway: advance rejected: %s %s", resp.Code, resp.Payload)
	}
	return nil
}

// Stats fetches the gateway counters.
func (a *Agent) Stats() (Stats, error) {
	req := &coap.Message{Code: coap.CodeGET}
	req.SetPath(a.path("stats"))
	resp, err := a.do(req)
	if err != nil {
		return Stats{}, err
	}
	var s Stats
	if err := json.Unmarshal(resp.Payload, &s); err != nil {
		return Stats{}, fmt.Errorf("gateway: bad stats payload: %w", err)
	}
	return s, nil
}

func (a *Agent) do(req *coap.Message) (*coap.Message, error) {
	timeout := a.Timeout
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	return a.cli.Do(ctx, req)
}
