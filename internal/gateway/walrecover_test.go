package gateway

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/wal"
)

// walGateway builds a gateway with a WAL in dir, on a large alert buffer so
// nothing drops and alert comparisons stay exact.
func walGateway(t *testing.T, ctx *core.Context, dir string, extra ...Option) (*Gateway, *wal.Log) {
	t.Helper()
	w, err := wal.Open(dir, wal.Options{Sync: wal.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	opts := append([]Option{WithConfig(core.Config{}), WithAlertBuffer(4096), WithWAL(w)}, extra...)
	gw, err := New(ctx, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return gw, w
}

// TestGatewayWALCrashRecoveryBitIdentical is the headline durability
// property: hard-kill the gateway well past its last checkpoint (no drain,
// no final snapshot), restore a new instance from checkpoint + WAL replay,
// and require the stitched run — stats, alerts, Explain traces — to be
// bit-identical to one that never crashed. The checkpoint alone would lose
// every window after it; the WAL tail is what closes the gap.
func TestGatewayWALCrashRecoveryBitIdentical(t *testing.T) {
	h, ctx := trainedHome(t)
	evts := faultyAfternoon(t, h, 4)

	// Reference: uninterrupted, no WAL.
	ref, err := New(ctx, WithConfig(core.Config{}), WithAlertBuffer(4096))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range evts {
		if err := ref.Ingest(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := ref.AdvanceTo(4 * time.Hour); err != nil {
		t.Fatal(err)
	}
	refStats, refAlerts := ref.Stats(), drainAlerts(ref)
	if refStats.Violations == 0 || refStats.Alerts == 0 {
		t.Fatal("reference run produced no fault signal; the test is vacuous")
	}

	dir := t.TempDir()
	walDir := filepath.Join(dir, "wal")
	ckpt := filepath.Join(dir, "gateway.ckpt")

	// First incarnation: checkpoint at 1h30m, keep ingesting until the
	// crash point at 2h30m30s, then vanish without any shutdown path.
	gw1, _ := walGateway(t, ctx, walDir)
	cpCut := 90 * time.Minute
	crashCut := 2*time.Hour + 30*time.Minute + 30*time.Second
	var alerts []Alert
	i := 0
	for ; i < len(evts) && evts[i].At < cpCut; i++ {
		if err := gw1.Ingest(evts[i]); err != nil {
			t.Fatal(err)
		}
	}
	alerts = append(alerts, drainAlerts(gw1)...)
	if err := WriteCheckpoint(ckpt, gw1.ExportCheckpoint()); err != nil {
		t.Fatal(err)
	}
	for ; i < len(evts) && evts[i].At < crashCut; i++ {
		if err := gw1.Ingest(evts[i]); err != nil {
			t.Fatal(err)
		}
	}
	// Crash: gw1 and its WAL handle are simply abandoned. Everything after
	// the checkpoint exists only in the WAL now. (The post-checkpoint alerts
	// gw1 emitted die with it; the restored instance re-emits them.)

	cp, err := ReadCheckpoint(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	if cp.WALSeq == 0 {
		t.Fatal("checkpoint carries no WAL sequence; replay dedup is untested")
	}
	gw2, w2 := walGateway(t, ctx, walDir, WithCheckpoint(cp))
	if err := gw2.RecoverWAL(); err != nil {
		t.Fatal(err)
	}
	if got, want := gw2.WALSeq(), w2.LastSeq(); got != want {
		t.Fatalf("recovered WALSeq %d, log tail %d", got, want)
	}
	for ; i < len(evts); i++ {
		if err := gw2.Ingest(evts[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := gw2.AdvanceTo(4 * time.Hour); err != nil {
		t.Fatal(err)
	}
	alerts = append(alerts, drainAlerts(gw2)...)

	if got := gw2.Stats(); got != refStats {
		t.Errorf("recovered run diverged:\n reference: %+v\n recovered: %+v", refStats, got)
	}
	if !reflect.DeepEqual(alerts, refAlerts) {
		t.Errorf("alerts diverged across crash recovery:\n reference: %+v\n recovered: %+v", refAlerts, alerts)
	}

	// Checkpoint now, truncate the covered segments, and prove a third
	// incarnation still recovers from what remains.
	if err := WriteCheckpoint(ckpt, gw2.ExportCheckpoint()); err != nil {
		t.Fatal(err)
	}
	if err := w2.TruncateThrough(gw2.WALSeq()); err != nil {
		t.Fatal(err)
	}
	cp3, err := ReadCheckpoint(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	gw3, _ := walGateway(t, ctx, walDir, WithCheckpoint(cp3))
	if err := gw3.RecoverWAL(); err != nil {
		t.Fatal(err)
	}
	if got := gw3.Stats(); got != refStats {
		t.Errorf("post-truncation recovery diverged:\n reference: %+v\n recovered: %+v", refStats, got)
	}
}

// TestGatewayWALReplayIdempotentAnyCheckpoint is the property behind
// replay dedup: for a checkpoint taken at ANY point in the stream,
// restore + full-log replay must land on exactly the reference state — no
// double-applied prefix, no lost suffix. Only the alerts past each
// checkpoint are re-emitted.
func TestGatewayWALReplayIdempotentAnyCheckpoint(t *testing.T) {
	h, ctx := trainedHome(t)
	evts := faultyAfternoon(t, h, 4)

	dir := t.TempDir()
	gw, _ := walGateway(t, ctx, dir)
	// Checkpoint after every 10% of the stream, including before the first
	// op and after the last.
	cuts := map[int]bool{0: true, len(evts): true}
	for f := 1; f < 10; f++ {
		cuts[f*len(evts)/10] = true
	}
	cps := map[int]*Checkpoint{}
	for i, e := range evts {
		if cuts[i] {
			cps[i] = gw.ExportCheckpoint()
		}
		if err := gw.Ingest(e); err != nil {
			t.Fatal(err)
		}
	}
	cps[len(evts)] = gw.ExportCheckpoint()
	if err := gw.AdvanceTo(4 * time.Hour); err != nil {
		t.Fatal(err)
	}
	refStats, refAlerts := gw.Stats(), drainAlerts(gw)
	if refStats.Alerts == 0 || refStats.AlertsDropped != 0 {
		t.Fatalf("bad reference run: %+v", refStats)
	}

	for at, cp := range cps {
		gw2, _ := walGateway(t, ctx, dir, WithCheckpoint(cp))
		if err := gw2.RecoverWAL(); err != nil {
			t.Fatalf("checkpoint at op %d: %v", at, err)
		}
		if got := gw2.Stats(); got != refStats {
			t.Errorf("checkpoint at op %d: stats diverged:\n reference: %+v\n recovered: %+v", at, refStats, got)
		}
		suffix := drainAlerts(gw2)
		want := refAlerts[cp.Stats.Alerts:]
		if len(want) == 0 {
			want = nil
		}
		if !reflect.DeepEqual(suffix, want) {
			t.Errorf("checkpoint at op %d: re-emitted alerts diverged:\n want: %+v\n got:  %+v", at, want, suffix)
		}
	}
}

// TestGatewayWALPoisonReplaySkipped: a record whose application panics
// (here via the ingest-hook fault seam) must not wedge recovery — it is
// dead-lettered and skipped, and the recovered state matches a run that
// never saw the poison event.
func TestGatewayWALPoisonReplaySkipped(t *testing.T) {
	h, ctx := trainedHome(t)
	evts := faultyAfternoon(t, h, 2)
	poisonAt := 61 * time.Minute
	poison := func(e event.Event) error {
		if e.At == poisonAt && e.Value == 666 {
			panic("poison event")
		}
		return nil
	}

	// Reference: the clean stream, no poison event ever offered.
	ref, err := New(ctx, WithConfig(core.Config{}), WithAlertBuffer(4096))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range evts {
		if err := ref.Ingest(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := ref.AdvanceTo(2 * time.Hour); err != nil {
		t.Fatal(err)
	}
	refStats, refAlerts := ref.Stats(), drainAlerts(ref)

	dir := t.TempDir()
	deadPath := filepath.Join(t.TempDir(), "dead.jsonl")
	gw1, _ := walGateway(t, ctx, dir, WithIngestHook(poison), WithHome("casa"))
	var alerts []Alert
	i := 0
	for ; i < len(evts) && evts[i].At <= poisonAt; i++ {
		if err := gw1.Ingest(evts[i]); err != nil {
			t.Fatal(err)
		}
	}
	// The poison event: logged to the WAL, then the hook panics before any
	// state mutates — exactly what a malformed event that crashes the
	// detector looks like from outside.
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("poison event did not panic")
			}
		}()
		gw1.Ingest(event.Event{At: poisonAt, Device: evts[0].Device, Value: 666}) //nolint:errcheck
	}()
	alerts = append(alerts, drainAlerts(gw1)...)
	// Crash and recover from WAL alone (cold start): replay re-encounters
	// the poison record, dead-letters it, and keeps going.
	gw2, _ := walGateway(t, ctx, dir,
		WithIngestHook(poison), WithHome("casa"), WithDeadLetter(wal.OpenDeadLetter(deadPath)))
	if err := gw2.RecoverWAL(); err != nil {
		t.Fatal(err)
	}
	for ; i < len(evts); i++ {
		if err := gw2.Ingest(evts[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := gw2.AdvanceTo(2 * time.Hour); err != nil {
		t.Fatal(err)
	}
	alerts = append(alerts, drainAlerts(gw2)...)

	if got := gw2.Stats(); got != refStats {
		t.Errorf("post-poison recovery diverged:\n reference: %+v\n recovered: %+v", refStats, got)
	}
	if !reflect.DeepEqual(alerts, refAlerts) {
		t.Errorf("alerts diverged after poison skip:\n reference: %+v\n recovered: %+v", refAlerts, alerts)
	}

	data, err := os.ReadFile(deadPath)
	if err != nil {
		t.Fatalf("no dead-letter file: %v", err)
	}
	var entry wal.DeadLetterEntry
	if err := json.Unmarshal(bytes.Split(data, []byte("\n"))[0], &entry); err != nil {
		t.Fatal(err)
	}
	if entry.Home != "casa" || entry.Value != 666 || !entry.Replayed || entry.Panic != "poison event" {
		t.Errorf("dead-letter entry mismatch: %+v", entry)
	}
}

// TestGatewayLivenessRebase: a gateway restored after downtime longer than
// the silence threshold must not declare the whole home dark — the clock
// jump is the gateway's outage, not the devices'. After the rebase the
// tracker works normally: genuinely silent devices still go dark.
func TestGatewayLivenessRebase(t *testing.T) {
	h, ctx := trainedHome(t)
	const thr = 45 * time.Minute
	gw, err := New(ctx, WithConfig(core.Config{}), WithLiveness(thr))
	if err != nil {
		t.Fatal(err)
	}
	start := 3 * 24 * 60
	evts := h.Events(start, start+60)
	for _, e := range evts {
		e.At -= time.Duration(start) * time.Minute
		if err := gw.Ingest(e); err != nil {
			t.Fatal(err)
		}
	}
	cp := gw.ExportCheckpoint()

	// Restart after a 3-hour outage: the first live op lands at 4h.
	gw2, err := New(ctx, WithConfig(core.Config{}), WithLiveness(thr), WithCheckpoint(cp))
	if err != nil {
		t.Fatal(err)
	}
	if err := gw2.AdvanceTo(4 * time.Hour); err != nil {
		t.Fatal(err)
	}
	if st := gw2.Stats(); st.DarkDevices != 0 || st.LivenessAlerts != 0 {
		t.Fatalf("restart after downtime declared devices dark: %+v", st)
	}
	// The rebase is one-shot: from here silence accrues normally, so
	// another threshold-exceeding quiet stretch darkens every device.
	if err := gw2.AdvanceTo(4*time.Hour + thr + 30*time.Minute); err != nil {
		t.Fatal(err)
	}
	if st := gw2.Stats(); st.DarkDevices == 0 {
		t.Fatalf("tracker dead after rebase: %+v", st)
	}

	// Control: a seamless resume (clock jump below the threshold) must not
	// shift anything — restart bit-identity depends on it.
	gw3, err := New(ctx, WithConfig(core.Config{}), WithLiveness(thr), WithCheckpoint(cp))
	if err != nil {
		t.Fatal(err)
	}
	if err := gw3.AdvanceTo(70 * time.Minute); err != nil {
		t.Fatal(err)
	}
	ref, err := New(ctx, WithConfig(core.Config{}), WithLiveness(thr))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range evts {
		e.At -= time.Duration(start) * time.Minute
		if err := ref.Ingest(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := ref.AdvanceTo(70 * time.Minute); err != nil {
		t.Fatal(err)
	}
	if got, want := gw3.Stats(), ref.Stats(); got != want {
		t.Errorf("seamless resume diverged from uninterrupted run:\n reference: %+v\n resumed:   %+v", want, got)
	}
}

// TestCheckpointCorruptEnvelope: flipping one byte of an enveloped
// checkpoint must surface ErrCorruptCheckpoint (so callers can fall back
// to cold start + WAL replay), and pre-envelope plain-JSON files must
// still read.
func TestCheckpointCorruptEnvelope(t *testing.T) {
	_, ctx := trainedHome(t)
	gw, err := New(ctx, WithConfig(core.Config{}))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "gw.ckpt")
	if err := WriteCheckpoint(path, gw.ExportCheckpoint()); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadCheckpoint(path); err != nil {
		t.Fatalf("pristine enveloped checkpoint rejected: %v", err)
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	flipped := append([]byte(nil), data...)
	flipped[len(flipped)/2] ^= 0x40
	if err := os.WriteFile(path, flipped, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadCheckpoint(path); !errors.Is(err, ErrCorruptCheckpoint) {
		t.Fatalf("corrupt checkpoint error = %v, want ErrCorruptCheckpoint", err)
	}

	// Legacy file: the JSON payload without any envelope.
	if err := os.WriteFile(path, data[12:], 0o644); err != nil {
		t.Fatal(err)
	}
	cp, err := ReadCheckpoint(path)
	if err != nil {
		t.Fatalf("legacy plain-JSON checkpoint rejected: %v", err)
	}
	if cp.V != CheckpointVersion {
		t.Errorf("legacy checkpoint migrated to v%d, want v%d", cp.V, CheckpointVersion)
	}
}

// TestGatewayWALIngestZeroAlloc guards the acceptance criterion that the
// WAL does not put allocations on the hot path: once buffers are warm,
// logging an ingest record allocates nothing.
func TestGatewayWALIngestZeroAlloc(t *testing.T) {
	dir := t.TempDir()
	w, err := wal.Open(dir, wal.Options{Sync: wal.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	var buf []byte
	rec := wal.IngestRecord(event.Event{At: time.Minute, Device: 3, Value: 1})
	// Warm the encode buffer and the log's scratch frame.
	buf = rec.AppendTo(buf[:0])
	if _, err := w.Append(buf); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		buf = rec.AppendTo(buf[:0])
		if _, err := w.Append(buf); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("WAL append path allocates %.1f per op, want 0", allocs)
	}
}
