package gateway

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/coap"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/window"
)

// CheckpointVersion is bumped when the checkpoint schema changes
// incompatibly; Read rejects mismatches rather than restoring garbage.
const CheckpointVersion = 1

// Checkpoint is the crash-safe persisted runtime state of a gateway: every
// piece of state the transition check and window builder carry between
// windows, plus the counters and the CoAP dedup cache. A gateway restored
// from a checkpoint resumes the stream mid-window — same previous group,
// same partial window, same in-flight identification episode — so a restart
// neither raises a spurious violation nor double-ingests a retransmitted
// report.
type Checkpoint struct {
	Version     int                 `json:"version"`
	SavedAtUnix int64               `json:"saved_at_unix"`
	HorizonMS   int64               `json:"horizon_ms"`
	StreamNowMS int64               `json:"stream_now_ms"`
	Stats       Stats               `json:"stats"`
	Detector    core.DetectorState  `json:"detector"`
	Builder     window.BuilderState `json:"builder"`
	LastSeenMS  map[device.ID]int64 `json:"last_seen_ms,omitempty"`
	Dark        []device.ID         `json:"dark,omitempty"`
	// Dedup carries the CoAP server's completed exchanges so retransmitted
	// pre-crash requests keep being absorbed after the restart (the dedup
	// cache high-water mark travels with the state it protects).
	Dedup []coap.DedupEntry `json:"dedup,omitempty"`
}

// ExportCheckpoint snapshots the gateway's runtime state. The CoAP dedup
// cache is added by Front.Checkpoint; a bare gateway leaves it empty.
func (g *Gateway) ExportCheckpoint() *Checkpoint {
	g.mu.Lock()
	defer g.mu.Unlock()
	cp := &Checkpoint{
		Version:     CheckpointVersion,
		SavedAtUnix: time.Now().Unix(),
		HorizonMS:   g.horizon.Milliseconds(),
		StreamNowMS: g.streamNow.Milliseconds(),
		Stats:       g.statsLocked(),
		Detector:    g.det.ExportState(),
		Builder:     g.builder.ExportState(),
	}
	if len(g.lastSeen) > 0 {
		cp.LastSeenMS = make(map[device.ID]int64, len(g.lastSeen))
		for id, at := range g.lastSeen {
			cp.LastSeenMS[id] = at.Milliseconds()
		}
	}
	for _, id := range sortedIDs(g.lastSeen) {
		if g.dark[id] {
			cp.Dark = append(cp.Dark, id)
		}
	}
	return cp
}

// RestoreCheckpoint replaces the gateway's runtime state with a snapshot.
// The gateway must have been built against the same trained context (the
// detector and builder validate group and layout references).
func (g *Gateway) RestoreCheckpoint(cp *Checkpoint) error {
	if cp == nil {
		return fmt.Errorf("gateway: nil checkpoint")
	}
	if cp.Version != CheckpointVersion {
		return fmt.Errorf("gateway: checkpoint version %d, want %d", cp.Version, CheckpointVersion)
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if err := g.det.RestoreState(cp.Detector); err != nil {
		return err
	}
	if err := g.builder.RestoreState(cp.Builder); err != nil {
		return err
	}
	// Counter.Store exists exactly for this path: the restored process
	// resumes the cumulative series where the crashed one left off.
	// DarkDevices is derived from the dark set below, not restored.
	g.met.events.Store(cp.Stats.Events)
	g.met.windows.Store(cp.Stats.Windows)
	g.met.violations.Store(cp.Stats.Violations)
	g.met.alerts.Store(cp.Stats.Alerts)
	g.met.alertsDropped.Store(cp.Stats.AlertsDropped)
	g.met.liveness.Store(cp.Stats.LivenessAlerts)
	g.horizon = time.Duration(cp.HorizonMS) * time.Millisecond
	g.streamNow = time.Duration(cp.StreamNowMS) * time.Millisecond
	g.lastSeen = make(map[device.ID]time.Duration, len(cp.LastSeenMS))
	for id, ms := range cp.LastSeenMS {
		g.lastSeen[id] = time.Duration(ms) * time.Millisecond
	}
	g.dark = make(map[device.ID]bool, len(cp.Dark))
	for _, id := range cp.Dark {
		g.dark[id] = true
	}
	g.met.dark.Set(int64(len(g.dark)))
	return nil
}

// WriteCheckpoint atomically persists a checkpoint: write to a temp file in
// the same directory, fsync, rename over the target. A crash mid-write
// leaves the previous checkpoint intact; readers never observe a torn file.
func WriteCheckpoint(path string, cp *Checkpoint) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("gateway: checkpoint temp: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	enc := json.NewEncoder(tmp)
	if err := enc.Encode(cp); err != nil {
		tmp.Close()
		return fmt.Errorf("gateway: checkpoint encode: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("gateway: checkpoint sync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("gateway: checkpoint close: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("gateway: checkpoint rename: %w", err)
	}
	return nil
}

// ReadCheckpoint loads a checkpoint written by WriteCheckpoint.
func ReadCheckpoint(path string) (*Checkpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("gateway: read checkpoint: %w", err)
	}
	var cp Checkpoint
	if err := json.Unmarshal(data, &cp); err != nil {
		return nil, fmt.Errorf("gateway: parse checkpoint %s: %w", path, err)
	}
	if cp.Version != CheckpointVersion {
		return nil, fmt.Errorf("gateway: checkpoint %s is version %d, want %d", path, cp.Version, CheckpointVersion)
	}
	return &cp, nil
}
