package gateway

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"time"

	"repro/internal/coap"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/wal"
	"repro/internal/window"
)

// CheckpointVersion is bumped when the checkpoint schema changes; Read
// migrates older schemas it understands and rejects the rest rather than
// restoring garbage. v1 files (the original single-home schema, keyed
// "version") migrate transparently to the v2 envelope (keyed "v", with an
// optional tenant Home) on read; v2 files are valid v3 payloads with no
// context version pin (adaptation arrived with v3), and v3 files are valid
// v4 payloads whose detector state carries at most the one legacy episode
// (concurrent episodes arrived with v4), so those migrations are relabels
// too.
const CheckpointVersion = 4

// checkpointV3 is the pre-multi-fault envelope schema: the detector state
// carries a single optional episode instead of the open-episode list.
const checkpointV3 = 3

// checkpointV2 is the pre-adaptation envelope schema: same fields minus
// the context version pin and adapter ledger.
const checkpointV2 = 2

// checkpointLegacyVersion is the pre-envelope schema: same payload fields,
// version carried in a "version" key, no tenancy.
const checkpointLegacyVersion = 1

// Checkpoint is the crash-safe persisted runtime state of a gateway: every
// piece of state the transition check and window builder carry between
// windows, plus the counters and the CoAP dedup cache. A gateway restored
// from a checkpoint resumes the stream mid-window — same previous group,
// same partial window, same in-flight identification episode — so a restart
// neither raises a spurious violation nor double-ingests a retransmitted
// report.
type Checkpoint struct {
	// V is the schema version of the envelope ("v":2). The legacy v1
	// schema carried its version under "version" instead; migrate folds
	// such files forward.
	V int `json:"v"`
	// LegacyVersion is the v1 "version" key, kept so v1 files parse; it is
	// zero on every file written at v2 or later.
	LegacyVersion int `json:"version,omitempty"`
	// Home is the tenant this checkpoint belongs to. Empty for a
	// single-home gateway; a hub stamps its tenant ID so a checkpoint
	// directory is self-describing and a file restored into the wrong
	// tenant is rejected.
	Home        string              `json:"home,omitempty"`
	SavedAtUnix int64               `json:"saved_at_unix"`
	HorizonMS   int64               `json:"horizon_ms"`
	StreamNowMS int64               `json:"stream_now_ms"`
	Stats       Stats               `json:"stats"`
	Detector    core.DetectorState  `json:"detector"`
	Builder     window.BuilderState `json:"builder"`
	LastSeenMS  map[device.ID]int64 `json:"last_seen_ms,omitempty"`
	Dark        []device.ID         `json:"dark,omitempty"`
	// Dedup carries the CoAP server's completed exchanges so retransmitted
	// pre-crash requests keep being absorbed after the restart (the dedup
	// cache high-water mark travels with the state it protects).
	Dedup []coap.DedupEntry `json:"dedup,omitempty"`
	// WALSeq is the sequence number of the last WAL op this checkpoint
	// covers: replay after restore skips everything at or below it, and a
	// successful checkpoint write lets the owner truncate segments it
	// covers. Zero when no WAL was attached.
	WALSeq uint64 `json:"wal_seq,omitempty"`
	// Context pins the context version the detector state refers to,
	// carrying the full version payload so a restore can rebuild the
	// detector on exactly that version — including rolling back to an
	// earlier epoch after a bad adaptation. Nil for non-adaptive gateways,
	// whose context is immutable and supplied at construction. Adapter is
	// the matching candidate ledger.
	Context *ContextCheckpoint `json:"context,omitempty"`
	Adapter *core.AdapterState `json:"adapter,omitempty"`
}

// ContextCheckpoint is the versioned-context pin inside a checkpoint: the
// epoch and hash chain identify the version, Data is the full DICECKS1
// context envelope (Context.Save form) so restore needs nothing but the
// layout.
type ContextCheckpoint struct {
	Epoch       uint64 `json:"epoch"`
	Fingerprint string `json:"fingerprint"`
	Parent      string `json:"parent,omitempty"`
	Data        []byte `json:"data"`
}

// ExportCheckpoint snapshots the gateway's runtime state. The CoAP dedup
// cache is added by Front.Checkpoint; a bare gateway leaves it empty.
func (g *Gateway) ExportCheckpoint() *Checkpoint {
	g.mu.Lock()
	defer g.mu.Unlock()
	cp := &Checkpoint{
		V:           CheckpointVersion,
		SavedAtUnix: time.Now().Unix(),
		HorizonMS:   g.horizon.Milliseconds(),
		StreamNowMS: g.streamNow.Milliseconds(),
		Stats:       g.statsLocked(),
		Detector:    g.det.ExportState(),
		Builder:     g.builder.ExportState(),
		WALSeq:      g.walSeq,
	}
	if len(g.lastSeen) > 0 {
		cp.LastSeenMS = make(map[device.ID]int64, len(g.lastSeen))
		for id, at := range g.lastSeen {
			cp.LastSeenMS[id] = at.Milliseconds()
		}
	}
	for _, id := range sortedIDs(g.lastSeen) {
		if g.dark[id] {
			cp.Dark = append(cp.Dark, id)
		}
	}
	if g.adapter != nil {
		ctx := g.det.Context()
		var buf bytes.Buffer
		if err := ctx.Save(&buf); err == nil {
			cp.Context = &ContextCheckpoint{
				Epoch:       ctx.Epoch(),
				Fingerprint: ctx.Fingerprint(),
				Parent:      ctx.ParentFingerprint(),
				Data:        buf.Bytes(),
			}
		}
		cp.Adapter = g.adapter.ExportState()
	}
	return cp
}

// RestoreCheckpoint replaces the gateway's runtime state with a snapshot.
// The gateway must have been built against the same trained context (the
// detector and builder validate group and layout references).
func (g *Gateway) RestoreCheckpoint(cp *Checkpoint) error {
	if cp == nil {
		return fmt.Errorf("gateway: nil checkpoint")
	}
	if err := cp.Migrate(); err != nil {
		return err
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if cp.Context != nil {
		if err := g.restoreContextLocked(cp.Context, cp.Adapter); err != nil {
			return err
		}
	}
	if err := g.det.RestoreState(cp.Detector); err != nil {
		return err
	}
	if err := g.builder.RestoreState(cp.Builder); err != nil {
		return err
	}
	// Counter.Store exists exactly for this path: the restored process
	// resumes the cumulative series where the crashed one left off.
	// DarkDevices is derived from the dark set below, not restored.
	g.met.events.Store(cp.Stats.Events)
	g.met.windows.Store(cp.Stats.Windows)
	g.met.violations.Store(cp.Stats.Violations)
	g.met.alerts.Store(cp.Stats.Alerts)
	g.met.alertsDropped.Store(cp.Stats.AlertsDropped)
	g.met.liveness.Store(cp.Stats.LivenessAlerts)
	g.horizon = time.Duration(cp.HorizonMS) * time.Millisecond
	g.streamNow = time.Duration(cp.StreamNowMS) * time.Millisecond
	g.lastSeen = make(map[device.ID]time.Duration, len(cp.LastSeenMS))
	for id, ms := range cp.LastSeenMS {
		g.lastSeen[id] = time.Duration(ms) * time.Millisecond
	}
	g.liveIDs = sortedIDs(g.lastSeen)
	g.dark = make(map[device.ID]bool, len(cp.Dark))
	for _, id := range cp.Dark {
		g.dark[id] = true
	}
	g.met.dark.Set(int64(len(g.dark)))
	g.walSeq = cp.WALSeq
	// Arm the liveness rebase: if the first post-restore clock movement
	// jumps past the silence threshold, the gap was downtime, and last-seen
	// stamps shift rather than every device going dark (see
	// observeClockLocked). WAL replay does not consume the flag.
	g.rebasePending = true
	return nil
}

// restoreContextLocked rebuilds the detector (and the adapter, when
// adaptation is on) around the context version pinned in a checkpoint.
// Restoring to an epoch below the current one is a rollback — the repair
// path for a bad adaptation — and is counted as such.
func (g *Gateway) restoreContextLocked(cc *ContextCheckpoint, ast *core.AdapterState) error {
	if len(cc.Data) == 0 {
		return fmt.Errorf("gateway: checkpoint context pin has no payload")
	}
	cur := g.det.Context()
	ctx, err := core.LoadContext(bytes.NewReader(cc.Data), cur.Layout())
	if err != nil {
		return fmt.Errorf("gateway: checkpoint context: %w", err)
	}
	if ctx.Fingerprint() != cc.Fingerprint || ctx.Epoch() != cc.Epoch {
		return fmt.Errorf("%w: context payload is epoch %d (%s), pin says epoch %d (%s)",
			ErrCorruptCheckpoint, ctx.Epoch(), ctx.Fingerprint(), cc.Epoch, cc.Fingerprint)
	}
	if ctx.Fingerprint() != cur.Fingerprint() {
		det, err := core.New(ctx, g.detOpts...)
		if err != nil {
			return err
		}
		if ctx.Epoch() < cur.Epoch() {
			g.met.ctxRollbacks.Inc()
		}
		g.det = det
	}
	if g.adapt {
		adapter, err := core.NewAdapter(g.det.Context(), g.adaptOpts...)
		if err != nil {
			return err
		}
		if ast != nil {
			if err := adapter.RestoreState(ast); err != nil {
				return err
			}
		}
		g.adapter = adapter
	}
	return nil
}

// Migrate folds an older checkpoint schema forward to CheckpointVersion in
// place. A v1 file is a valid v4 payload with the version under the legacy
// key and no tenancy, a v2 file is a valid v4 payload with no context pin,
// and a v3 file is a valid v4 payload whose detector state holds at most
// one (legacy-keyed) episode, so all three migrations are relabels;
// anything else (a future version, or a file with no recognizable version
// at all) errors.
func (cp *Checkpoint) Migrate() error {
	switch {
	case cp.V == CheckpointVersion:
		return nil
	case cp.V == checkpointV3, cp.V == checkpointV2:
		cp.V = CheckpointVersion
		return nil
	case cp.V == 0 && cp.LegacyVersion == checkpointLegacyVersion:
		cp.V = CheckpointVersion
		cp.LegacyVersion = 0
		return nil
	case cp.V == 0:
		return fmt.Errorf("gateway: checkpoint has legacy version %d, want %d", cp.LegacyVersion, checkpointLegacyVersion)
	default:
		return fmt.Errorf("gateway: checkpoint version %d, want %d", cp.V, CheckpointVersion)
	}
}

// ErrCorruptCheckpoint marks a checkpoint file whose checksum envelope
// failed to verify — a torn write or bit rot, not a schema problem.
// Callers should treat it as "no checkpoint" (cold start + WAL replay)
// rather than a fatal restore error: the file is evidence of damage, and
// refusing to start would turn one bad sector into an outage.
var ErrCorruptCheckpoint = errors.New("gateway: corrupt checkpoint")

// ckptMagic opens the checksummed checkpoint envelope:
// magic + 4-byte little-endian CRC32-C of the JSON payload + the JSON.
// Files without the magic are pre-envelope plain JSON and still readable.
var ckptMagic = [8]byte{'D', 'I', 'C', 'E', 'C', 'K', 'S', '1'}

var ckptCRCTable = crc32.MakeTable(crc32.Castagnoli)

// EncodeCheckpoint renders a checkpoint as its checksummed envelope bytes
// (magic + CRC32-C + JSON) — the same format WriteCheckpoint persists, as
// an in-memory value a handoff can ship between nodes. DecodeCheckpoint
// verifies and reverses it.
func EncodeCheckpoint(cp *Checkpoint) ([]byte, error) {
	payload, err := json.Marshal(cp)
	if err != nil {
		return nil, fmt.Errorf("gateway: checkpoint encode: %w", err)
	}
	out := make([]byte, 12+len(payload))
	copy(out[:8], ckptMagic[:])
	binary.LittleEndian.PutUint32(out[8:12], crc32.Checksum(payload, ckptCRCTable))
	copy(out[12:], payload)
	return out, nil
}

// DecodeCheckpoint parses envelope bytes produced by EncodeCheckpoint (or
// read whole from a WriteCheckpoint file), verifying the checksum (damage
// reports ErrCorruptCheckpoint) and migrating older schemas — including
// pre-envelope bare-JSON payloads — forward.
func DecodeCheckpoint(data []byte) (*Checkpoint, error) {
	if len(data) >= 12 && bytes.Equal(data[:8], ckptMagic[:]) {
		want := binary.LittleEndian.Uint32(data[8:12])
		data = data[12:]
		if crc32.Checksum(data, ckptCRCTable) != want {
			return nil, fmt.Errorf("%w: envelope fails CRC", ErrCorruptCheckpoint)
		}
	}
	var cp Checkpoint
	if err := json.Unmarshal(data, &cp); err != nil {
		return nil, fmt.Errorf("gateway: parse checkpoint: %w", err)
	}
	if err := cp.Migrate(); err != nil {
		return nil, err
	}
	return &cp, nil
}

// WriteCheckpoint atomically persists a checkpoint: write to a temp file in
// the same directory, fsync, rename over the target, fsync the directory.
// A crash mid-write leaves the previous checkpoint intact; readers never
// observe a torn file. The payload is wrapped in a checksummed envelope so
// damage that slips past the rename discipline (bit rot, torn sectors) is
// detected at read time instead of restoring garbage.
func WriteCheckpoint(path string, cp *Checkpoint) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("gateway: checkpoint temp: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	env, err := EncodeCheckpoint(cp)
	if err != nil {
		tmp.Close()
		return err
	}
	if _, err := tmp.Write(env); err != nil {
		tmp.Close()
		return fmt.Errorf("gateway: checkpoint write: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("gateway: checkpoint sync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("gateway: checkpoint close: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("gateway: checkpoint rename: %w", err)
	}
	// POSIX durability contract: fsync on the temp file persists its
	// contents, but the rename lives in the directory, and only an fsync of
	// the directory persists that. Without it a power failure can roll the
	// name back to the old file — or to nothing.
	if err := wal.SyncDir(dir); err != nil {
		return fmt.Errorf("gateway: checkpoint dir sync: %w", err)
	}
	return nil
}

// ReadCheckpoint loads a checkpoint written by WriteCheckpoint, verifying
// the checksum envelope (damage reports ErrCorruptCheckpoint) and
// migrating older schemas — the pre-CRC bare-JSON files and the
// unenveloped v1 payloads inside them — forward on the way in.
func ReadCheckpoint(path string) (*Checkpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("gateway: read checkpoint: %w", err)
	}
	cp, err := DecodeCheckpoint(data)
	if err != nil {
		if errors.Is(err, ErrCorruptCheckpoint) {
			return nil, fmt.Errorf("%w: %s fails CRC", ErrCorruptCheckpoint, path)
		}
		return nil, fmt.Errorf("gateway: checkpoint %s: %w", path, err)
	}
	return cp, nil
}
