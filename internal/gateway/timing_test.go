package gateway

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"repro/internal/coap"
	"repro/internal/core"
)

// The trained context carries interval sketches, and both inspection
// surfaces — ContextInfo and the CoAP /context resource — must say so.
func TestGatewayContextInfoTiming(t *testing.T) {
	_, ctx := trainedHome(t)
	if !ctx.TimingCapable() {
		t.Fatal("trained context is not timing capable")
	}
	gw, err := New(ctx, WithConfig(core.Config{}))
	if err != nil {
		t.Fatal(err)
	}
	info := gw.ContextInfo()
	if info.ContextSchema != core.ContextSchemaV2 {
		t.Errorf("ContextSchema = %d, want %d", info.ContextSchema, core.ContextSchemaV2)
	}
	if !info.TimingCapable {
		t.Error("TimingCapable = false for a sketch-carrying context")
	}

	f := &Front{gw: gw, malformed: gw.Telemetry().Counter(metricGwMalformed, "test")}
	req := &coap.Message{Code: coap.CodeGET}
	req.SetPath("context")
	resp := f.handle(req)
	if resp.Code != coap.CodeContent {
		t.Fatalf("GET /context code = %v", resp.Code)
	}
	var got ContextInfo
	if err := json.Unmarshal(resp.Payload, &got); err != nil {
		t.Fatalf("GET /context payload: %v", err)
	}
	if got.ContextSchema != core.ContextSchemaV2 || !got.TimingCapable {
		t.Errorf("GET /context = %+v, want schema %d and timing capable", got, core.ContextSchemaV2)
	}
}

// A checkpoint taken mid-stream must carry the timing state (dwell counter,
// per-slot last-fire indices) so a restored gateway resumes the interval
// measurements exactly where the crashed one left off: continuing both
// gateways over the identical tail must produce bit-identical checkpoints.
func TestGatewayCheckpointTimingResume(t *testing.T) {
	h, ctx := trainedHome(t)
	gw1, err := New(ctx, WithConfig(core.Config{}))
	if err != nil {
		t.Fatal(err)
	}
	// An afternoon stream, so actuators actually fire before the cut.
	start := 3*24*60 + 12*60
	rebase := func(at time.Duration) time.Duration {
		return at - time.Duration(start)*time.Minute
	}
	for _, e := range h.Events(start, start+4*60) {
		e.At = rebase(e.At)
		if err := gw1.Ingest(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := gw1.AdvanceTo(4 * time.Hour); err != nil {
		t.Fatal(err)
	}

	cut := gw1.ExportCheckpoint()
	if len(cut.Detector.LastFires) == 0 {
		t.Fatal("checkpoint at the cut carries no last-fire state; pick a segment where actuators fire")
	}
	data, err := EncodeCheckpoint(cut)
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := DecodeCheckpoint(data)
	if err != nil {
		t.Fatal(err)
	}
	gw2, err := New(ctx, WithConfig(core.Config{}))
	if err != nil {
		t.Fatal(err)
	}
	if err := gw2.RestoreCheckpoint(decoded); err != nil {
		t.Fatal(err)
	}

	// Same tail through both gateways.
	tail := h.Events(start+4*60, start+6*60)
	for _, gw := range []*Gateway{gw1, gw2} {
		for _, e := range tail {
			e.At = rebase(e.At)
			if err := gw.Ingest(e); err != nil {
				t.Fatal(err)
			}
		}
		if err := gw.AdvanceTo(6 * time.Hour); err != nil {
			t.Fatal(err)
		}
	}

	cp1, cp2 := gw1.ExportCheckpoint(), gw2.ExportCheckpoint()
	cp1.SavedAtUnix, cp2.SavedAtUnix = 0, 0
	b1, err := EncodeCheckpoint(cp1)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := EncodeCheckpoint(cp2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Errorf("checkpoints diverged after restore:\n  original %s\n  restored %s", b1, b2)
	}
	if cp2.Detector.Dwell == 0 && len(cp2.Detector.LastFires) == 0 {
		t.Error("restored gateway carries no timing state at the end of the stream")
	}
}
