package gateway

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/event"
	"repro/internal/simhome"
	"repro/internal/window"
)

// trainedHome builds a small simulated home with a trained context.
func trainedHome(t testing.TB) (*simhome.Home, *core.Context) {
	t.Helper()
	spec := simhome.SpecDHouseA()
	spec.Name = "gw-test"
	spec.Hours = 5 * 24
	h, err := simhome.New(spec, 21)
	if err != nil {
		t.Fatal(err)
	}
	trainW := 3 * 24 * 60
	tr := core.NewTrainer(h.Layout(), time.Minute)
	for i := 0; i < trainW; i++ {
		if err := tr.Calibrate(h.Window(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.FinishCalibration(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < trainW; i++ {
		if err := tr.Learn(h.Window(i)); err != nil {
			t.Fatal(err)
		}
	}
	ctx, err := tr.Context()
	if err != nil {
		t.Fatal(err)
	}
	return h, ctx
}

func TestGatewayCleanStream(t *testing.T) {
	h, ctx := trainedHome(t)
	gw, err := New(ctx, WithConfig(core.Config{}))
	if err != nil {
		t.Fatal(err)
	}
	// Stream 4 hours of clean post-training data.
	start := 3 * 24 * 60
	evts := h.Events(start, start+4*60)
	for _, e := range evts {
		// Rebase to stream time zero.
		e.At -= time.Duration(start) * time.Minute
		if err := gw.Ingest(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := gw.AdvanceTo(4 * time.Hour); err != nil {
		t.Fatal(err)
	}
	st := gw.Stats()
	if st.Windows != 4*60 {
		t.Errorf("windows = %d, want %d", st.Windows, 4*60)
	}
	if st.Events != int64(len(evts)) {
		t.Errorf("events = %d, want %d", st.Events, len(evts))
	}
	if st.Violations > 2 {
		t.Errorf("clean stream produced %d violations", st.Violations)
	}
}

func TestGatewayDetectsInjectedFault(t *testing.T) {
	h, ctx := trainedHome(t)
	gw, err := New(ctx, WithConfig(core.Config{}))
	if err != nil {
		t.Fatal(err)
	}
	// Fail-stop the kitchen light from stream minute 30 onward: drop its
	// events before ingestion, exactly what a dead sensor looks like on
	// the wire.
	target, ok := h.Registry().Lookup("light-kitchen")
	if !ok {
		t.Fatal("no kitchen light")
	}
	// Stream an afternoon: the kitchen must be used for the dead light to
	// manifest (a fault is invisible until its sensor would have reacted).
	start := 3*24*60 + 12*60
	evts := h.Events(start, start+6*60)
	for _, e := range evts {
		e.At -= time.Duration(start) * time.Minute
		if e.Device == target && e.At >= 30*time.Minute {
			continue
		}
		if err := gw.Ingest(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := gw.AdvanceTo(6 * time.Hour); err != nil {
		t.Fatal(err)
	}
	st := gw.Stats()
	if st.Violations == 0 {
		t.Fatal("fault never detected")
	}
	select {
	case alert := <-gw.Alerts():
		found := false
		for _, d := range alert.Devices {
			if d.ID == target {
				found = true
			}
		}
		if !found {
			t.Errorf("alert devices %v do not include the dead sensor", alert.Devices)
		}
		if alert.ReportedAt < alert.DetectedAt {
			t.Error("reported before detected")
		}
	default:
		t.Fatal("no alert emitted")
	}
}

func TestGatewayRejectsRegression(t *testing.T) {
	_, ctx := trainedHome(t)
	gw, err := New(ctx, WithConfig(core.Config{}))
	if err != nil {
		t.Fatal(err)
	}
	if err := gw.AdvanceTo(10 * time.Minute); err != nil {
		t.Fatal(err)
	}
	err = gw.Ingest(event.Event{At: time.Minute, Device: 0, Value: 1})
	if err == nil {
		t.Error("regressed event accepted")
	}
}

func TestGatewayAdvanceIdempotent(t *testing.T) {
	_, ctx := trainedHome(t)
	gw, err := New(ctx, WithConfig(core.Config{}))
	if err != nil {
		t.Fatal(err)
	}
	if err := gw.AdvanceTo(5 * time.Minute); err != nil {
		t.Fatal(err)
	}
	if err := gw.AdvanceTo(5 * time.Minute); err != nil {
		t.Fatal(err)
	}
	if err := gw.AdvanceTo(3 * time.Minute); err != nil {
		t.Fatal(err)
	}
	if got := gw.Stats().Windows; got != 5 {
		t.Errorf("windows = %d, want 5", got)
	}
}

func TestCoAPFrontEndToEnd(t *testing.T) {
	h, ctx := trainedHome(t)
	gw, err := New(ctx, WithConfig(core.Config{}))
	if err != nil {
		t.Fatal(err)
	}
	front, err := ServeCoAP(gw, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer front.Close()

	agent, err := NewAgent(front.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer agent.Close()

	start := 3 * 24 * 60
	evts := h.Events(start, start+30)
	for _, e := range evts {
		e.At -= time.Duration(start) * time.Minute
		if err := agent.Report(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := agent.Advance(30 * time.Minute); err != nil {
		t.Fatal(err)
	}
	st, err := agent.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Events != int64(len(evts)) {
		t.Errorf("gateway saw %d events, want %d", st.Events, len(evts))
	}
	if st.Windows != 30 {
		t.Errorf("gateway closed %d windows, want 30", st.Windows)
	}
}

func TestWindowBuilderAdvanceTo(t *testing.T) {
	_, ctx := trainedHome(t)
	b := window.NewBuilder(ctx.Layout(), time.Minute)
	obs, err := b.AdvanceTo(3 * time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if len(obs) != 3 {
		t.Fatalf("AdvanceTo(3m) emitted %d windows, want 3 empties", len(obs))
	}
	for i, o := range obs {
		if o.Index != i {
			t.Errorf("window %d has index %d", i, o.Index)
		}
	}
	// An event inside the open window still lands correctly.
	if _, err := b.Add(event.Event{At: 3*time.Minute + time.Second, Device: 0, Value: 1}); err != nil {
		t.Fatal(err)
	}
	// Events before the floor are rejected.
	if _, err := b.Add(event.Event{At: time.Second, Device: 0, Value: 1}); err == nil {
		t.Error("pre-floor event accepted")
	}
}

func TestGatewayWithActuatorFaultView(t *testing.T) {
	h, ctx := trainedHome(t)
	bulb, ok := h.Registry().Lookup("bulb-kitchen")
	if !ok {
		t.Fatal("no kitchen bulb")
	}
	start := 3*24*60 + 12*60
	faulty := h.WithActuatorFaults(simhome.ActuatorFaults{
		Spurious:   map[device.ID]bool{bulb: true},
		Seed:       3,
		FromMinute: start,
	})
	gw, err := New(ctx, WithConfig(core.Config{}))
	if err != nil {
		t.Fatal(err)
	}
	evts := faulty.Events(start, start+4*60)
	for _, e := range evts {
		e.At -= time.Duration(start) * time.Minute
		if err := gw.Ingest(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := gw.AdvanceTo(4 * time.Hour); err != nil {
		t.Fatal(err)
	}
	if gw.Stats().Violations == 0 {
		t.Error("spurious bulb never flagged through the gateway")
	}
}
