package gateway

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/event"
	"repro/internal/simhome"
)

// stormAfternoon renders a two-fault storm: the afternoon slice with the
// kitchen's whole numeric sensor bank fail-stopped 30 minutes in (a hub
// or power failure killing one room) and the living-room light
// fail-stopped at 40 minutes, rebased to stream time zero. The kitchen
// episode's suspect set stays wide — it cannot narrow below the four dead
// sensors — so it is still open when the living-room fault splits off a
// second episode, which is the overlap the mid-storm kill needs.
func stormAfternoon(t *testing.T, h *simhome.Home, hours int) []event.Event {
	t.Helper()
	dead := map[device.ID]time.Duration{}
	for _, name := range []string{"light-kitchen", "temp-kitchen", "humid-kitchen", "sound-kitchen"} {
		id, ok := h.Registry().Lookup(name)
		if !ok {
			t.Fatalf("no %s", name)
		}
		dead[id] = 30 * time.Minute
	}
	living, ok := h.Registry().Lookup("light-living")
	if !ok {
		t.Fatal("no living-room light")
	}
	dead[living] = 40 * time.Minute
	start := 3*24*60 + 12*60
	var out []event.Event
	for _, e := range h.Events(start, start+hours*60) {
		e.At -= time.Duration(start) * time.Minute
		if at, faulted := dead[e.Device]; faulted && e.At >= at {
			continue
		}
		out = append(out, e)
	}
	return out
}

// TestGatewayMultiFaultCheckpointResume is the mid-storm kill: a gateway
// running with MaxFaults=2 is fed a two-fault storm until both
// identification episodes are open at once, checkpointed at exactly that
// point, and restarted from the file. The stitched run's alerts — causes,
// devices, and full Explain traces — must be bit-identical (as JSON) to an
// uninterrupted reference, and the v4 envelope must round-trip both open
// episodes.
func TestGatewayMultiFaultCheckpointResume(t *testing.T) {
	h, ctx := trainedHome(t)
	evts := stormAfternoon(t, h, 6)
	cfg := core.Config{MaxFaults: 2}

	// Reference: one uninterrupted gateway over the whole storm.
	ref, err := New(ctx, WithConfig(cfg))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range evts {
		if err := ref.Ingest(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := ref.AdvanceTo(6 * time.Hour); err != nil {
		t.Fatal(err)
	}
	refAlerts := drainAlerts(ref)
	if len(refAlerts) == 0 {
		t.Fatal("storm raised no alert; the bit-identical comparison is vacuous")
	}

	// Split run: ingest until both episodes are open, then crash.
	gw1, err := New(ctx, WithConfig(cfg))
	if err != nil {
		t.Fatal(err)
	}
	split := 0
	for ; split < len(evts); split++ {
		if err := gw1.Ingest(evts[split]); err != nil {
			t.Fatal(err)
		}
		if gw1.OpenEpisodes() == 2 {
			split++
			break
		}
	}
	if gw1.OpenEpisodes() != 2 {
		t.Fatal("storm never held two episodes open at once; the mid-storm kill is vacuous")
	}
	alerts := drainAlerts(gw1)
	path := filepath.Join(t.TempDir(), "gateway.ckpt")
	if err := WriteCheckpoint(path, gw1.ExportCheckpoint()); err != nil {
		t.Fatal(err)
	}

	cp, err := ReadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if cp.V != CheckpointVersion {
		t.Errorf("checkpoint v = %d, want %d", cp.V, CheckpointVersion)
	}
	if got := len(cp.Detector.Episodes); got != 2 {
		t.Fatalf("checkpoint carries %d open episodes, want 2", got)
	}

	gw2, err := New(ctx, WithConfig(cfg))
	if err != nil {
		t.Fatal(err)
	}
	if err := gw2.RestoreCheckpoint(cp); err != nil {
		t.Fatal(err)
	}
	if gw2.OpenEpisodes() != 2 {
		t.Fatalf("restored gateway has %d open episodes, want 2", gw2.OpenEpisodes())
	}
	for ; split < len(evts); split++ {
		if err := gw2.Ingest(evts[split]); err != nil {
			t.Fatal(err)
		}
	}
	if err := gw2.AdvanceTo(6 * time.Hour); err != nil {
		t.Fatal(err)
	}
	alerts = append(alerts, drainAlerts(gw2)...)

	// Bit-identical across the restart: serialize both alert streams —
	// Explain traces included — and compare bytes.
	refJSON, err := json.Marshal(refAlerts)
	if err != nil {
		t.Fatal(err)
	}
	gotJSON, err := json.Marshal(alerts)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(refJSON, gotJSON) {
		t.Errorf("alerts diverged across the mid-storm restart:\n reference: %s\n restarted: %s", refJSON, gotJSON)
	}

	// The stitched run must land in the same detector state, episode-wise.
	if ro, go2 := ref.OpenEpisodes(), gw2.OpenEpisodes(); ro != go2 {
		t.Errorf("open episodes at end: reference %d, restarted %d", ro, go2)
	}
	if rs, gs := ref.Stats(), gw2.Stats(); rs != gs {
		t.Errorf("stats diverged across restart:\n reference: %+v\n restarted: %+v", rs, gs)
	}

	// The dead kitchen bank must be named by the concluded alert.
	named := map[string]bool{}
	for _, a := range refAlerts {
		for _, d := range a.Devices {
			named[d.Name] = true
		}
	}
	if !named["light-kitchen"] {
		t.Errorf("no alert names light-kitchen; named set: %v", named)
	}
}
