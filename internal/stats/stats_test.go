package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool {
	return math.Abs(a-b) <= eps
}

func TestMean(t *testing.T) {
	tests := []struct {
		name string
		in   []float64
		want float64
	}{
		{"empty", nil, 0},
		{"single", []float64{4}, 4},
		{"simple", []float64{1, 2, 3, 4}, 2.5},
		{"negative", []float64{-2, 2}, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Mean(tt.in); !almostEqual(got, tt.want, 1e-12) {
				t.Errorf("Mean(%v) = %v, want %v", tt.in, got, tt.want)
			}
		})
	}
}

func TestVariance(t *testing.T) {
	tests := []struct {
		name string
		in   []float64
		want float64
	}{
		{"empty", nil, 0},
		{"single", []float64{7}, 0},
		{"constant", []float64{3, 3, 3}, 0},
		{"simple", []float64{1, 2, 3, 4}, 1.25},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Variance(tt.in); !almostEqual(got, tt.want, 1e-12) {
				t.Errorf("Variance(%v) = %v, want %v", tt.in, got, tt.want)
			}
		})
	}
}

func TestSampleVariance(t *testing.T) {
	got := SampleVariance([]float64{1, 2, 3, 4})
	want := 5.0 / 3.0
	if !almostEqual(got, want, 1e-12) {
		t.Errorf("SampleVariance = %v, want %v", got, want)
	}
	if SampleVariance([]float64{1}) != 0 {
		t.Error("SampleVariance of single value should be 0")
	}
}

func TestSkewness(t *testing.T) {
	tests := []struct {
		name     string
		in       []float64
		wantSign int // -1, 0, +1
	}{
		{"too short", []float64{1, 2}, 0},
		{"constant", []float64{5, 5, 5, 5}, 0},
		{"right skewed", []float64{1, 1, 1, 1, 10}, 1},
		{"left skewed", []float64{10, 10, 10, 10, 1}, -1},
		{"symmetric", []float64{1, 2, 3, 4, 5}, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := Skewness(tt.in)
			switch tt.wantSign {
			case 0:
				if !almostEqual(got, 0, 1e-9) {
					t.Errorf("Skewness(%v) = %v, want ~0", tt.in, got)
				}
			case 1:
				if got <= 0 {
					t.Errorf("Skewness(%v) = %v, want > 0", tt.in, got)
				}
			case -1:
				if got >= 0 {
					t.Errorf("Skewness(%v) = %v, want < 0", tt.in, got)
				}
			}
		})
	}
}

func TestMedian(t *testing.T) {
	tests := []struct {
		name string
		in   []float64
		want float64
	}{
		{"empty", nil, 0},
		{"single", []float64{3}, 3},
		{"odd", []float64{5, 1, 3}, 3},
		{"even", []float64{4, 1, 3, 2}, 2.5},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Median(tt.in); !almostEqual(got, tt.want, 1e-12) {
				t.Errorf("Median(%v) = %v, want %v", tt.in, got, tt.want)
			}
		})
	}
}

func TestMedianDoesNotMutate(t *testing.T) {
	in := []float64{3, 1, 2}
	Median(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Errorf("Median mutated its input: %v", in)
	}
}

func TestMAD(t *testing.T) {
	// Median of {1,2,3,4,100} is 3; abs devs {2,1,0,1,97}; median dev 1.
	got := MAD([]float64{1, 2, 3, 4, 100})
	if !almostEqual(got, 1, 1e-12) {
		t.Errorf("MAD = %v, want 1", got)
	}
	if MAD(nil) != 0 {
		t.Error("MAD(nil) should be 0")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	tests := []struct {
		q    float64
		want float64
	}{
		{0, 1}, {1, 5}, {0.5, 3}, {0.25, 2}, {-1, 1}, {2, 5},
	}
	for _, tt := range tests {
		if got := Quantile(xs, tt.q); !almostEqual(got, tt.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", tt.q, got, tt.want)
		}
	}
	if Quantile(nil, 0.5) != 0 {
		t.Error("Quantile(nil) should be 0")
	}
}

func TestMinMax(t *testing.T) {
	minV, maxV := MinMax([]float64{3, -1, 7, 2})
	if minV != -1 || maxV != 7 {
		t.Errorf("MinMax = (%v, %v), want (-1, 7)", minV, maxV)
	}
	minV, maxV = MinMax(nil)
	if minV != 0 || maxV != 0 {
		t.Errorf("MinMax(nil) = (%v, %v), want (0, 0)", minV, maxV)
	}
}

func TestWelfordMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 1000)
	var w Welford
	for i := range xs {
		xs[i] = rng.NormFloat64()*3 + 10
		w.Add(xs[i])
	}
	if !almostEqual(w.Mean(), Mean(xs), 1e-9) {
		t.Errorf("Welford mean %v != batch mean %v", w.Mean(), Mean(xs))
	}
	if !almostEqual(w.Variance(), Variance(xs), 1e-9) {
		t.Errorf("Welford var %v != batch var %v", w.Variance(), Variance(xs))
	}
	if w.N() != 1000 {
		t.Errorf("N = %d, want 1000", w.N())
	}
}

func TestWelfordMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var all, a, b Welford
	for i := 0; i < 500; i++ {
		x := rng.Float64() * 100
		all.Add(x)
		if i%2 == 0 {
			a.Add(x)
		} else {
			b.Add(x)
		}
	}
	a.Merge(b)
	if a.N() != all.N() {
		t.Fatalf("merged N = %d, want %d", a.N(), all.N())
	}
	if !almostEqual(a.Mean(), all.Mean(), 1e-9) {
		t.Errorf("merged mean %v != %v", a.Mean(), all.Mean())
	}
	if !almostEqual(a.Variance(), all.Variance(), 1e-9) {
		t.Errorf("merged variance %v != %v", a.Variance(), all.Variance())
	}
}

func TestWelfordMergeEmpty(t *testing.T) {
	var a, b Welford
	a.Add(5)
	a.Merge(b) // merging empty is a no-op
	if a.N() != 1 || a.Mean() != 5 {
		t.Errorf("merge with empty changed accumulator: n=%d mean=%v", a.N(), a.Mean())
	}
	b.Merge(a) // merging into empty copies
	if b.N() != 1 || b.Mean() != 5 {
		t.Errorf("merge into empty: n=%d mean=%v", b.N(), b.Mean())
	}
}

func TestEWMA(t *testing.T) {
	e := NewEWMA(0.5)
	if e.Value() != 0 {
		t.Error("initial EWMA value should be 0")
	}
	e.Add(10)
	if e.Value() != 10 {
		t.Errorf("first sample should initialize: got %v", e.Value())
	}
	e.Add(20)
	if !almostEqual(e.Value(), 15, 1e-12) {
		t.Errorf("EWMA = %v, want 15", e.Value())
	}
}

func TestEWMABadAlpha(t *testing.T) {
	e := NewEWMA(-1) // falls back to default alpha
	e.Add(1)
	e.Add(2)
	if e.Value() <= 1 || e.Value() >= 2 {
		t.Errorf("EWMA with fallback alpha out of range: %v", e.Value())
	}
}

func TestAutocorrelation(t *testing.T) {
	// A strongly alternating series has negative lag-1 autocorrelation.
	alt := []float64{1, -1, 1, -1, 1, -1, 1, -1}
	if got := Autocorrelation(alt, 1); got >= 0 {
		t.Errorf("alternating series lag-1 autocorr = %v, want < 0", got)
	}
	if got := Autocorrelation(alt, 0); !almostEqual(got, 1, 1e-12) {
		t.Errorf("lag-0 autocorr = %v, want 1", got)
	}
	if Autocorrelation([]float64{2, 2, 2}, 1) != 0 {
		t.Error("constant series autocorr should be 0")
	}
	if Autocovariance(alt, 99) != 0 {
		t.Error("out-of-range lag should give 0")
	}
}

func TestFitARRecoversCoefficient(t *testing.T) {
	// Simulate AR(1) x_t = 0.8 x_{t-1} + e_t and check recovery.
	rng := rand.New(rand.NewSource(3))
	xs := make([]float64, 5000)
	for i := 1; i < len(xs); i++ {
		xs[i] = 0.8*xs[i-1] + rng.NormFloat64()
	}
	coeffs, noiseVar, err := FitAR(xs, 1)
	if err != nil {
		t.Fatalf("FitAR: %v", err)
	}
	if !almostEqual(coeffs[0], 0.8, 0.05) {
		t.Errorf("AR(1) coefficient = %v, want ~0.8", coeffs[0])
	}
	if !almostEqual(noiseVar, 1.0, 0.15) {
		t.Errorf("noise variance = %v, want ~1.0", noiseVar)
	}
}

func TestFitARErrors(t *testing.T) {
	if _, _, err := FitAR([]float64{1, 2}, 0); err == nil {
		t.Error("order 0 should error")
	}
	if _, _, err := FitAR([]float64{1, 2}, 3); err == nil {
		t.Error("too little data should error")
	}
}

func TestFitARConstantSeries(t *testing.T) {
	coeffs, noiseVar, err := FitAR([]float64{5, 5, 5, 5, 5, 5}, 2)
	if err != nil {
		t.Fatalf("FitAR constant: %v", err)
	}
	for _, c := range coeffs {
		if c != 0 {
			t.Errorf("constant series should give zero coefficients, got %v", coeffs)
		}
	}
	if noiseVar != 0 {
		t.Errorf("constant series noise variance = %v, want 0", noiseVar)
	}
}

func TestPredictAR(t *testing.T) {
	// Model x_t = mean + 0.5(x_{t-1} - mean).
	pred, err := PredictAR([]float64{0.5}, 10, []float64{8, 12})
	if err != nil {
		t.Fatalf("PredictAR: %v", err)
	}
	if !almostEqual(pred, 11, 1e-12) {
		t.Errorf("prediction = %v, want 11", pred)
	}
	if _, err := PredictAR([]float64{0.5, 0.3}, 0, []float64{1}); err == nil {
		t.Error("short history should error")
	}
}

func TestHistogram(t *testing.T) {
	bins := Histogram([]float64{0, 0.5, 1.5, 2.5, 10, -5}, 3, 0, 3)
	want := []int{3, 1, 2} // -5 and 0 and 0.5 clamp/fall into bin 0; 10 clamps into bin 2
	for i := range want {
		if bins[i] != want[i] {
			t.Errorf("Histogram = %v, want %v", bins, want)
			break
		}
	}
	if Histogram(nil, 0, 0, 1) != nil {
		t.Error("n<=0 should return nil")
	}
	if Histogram(nil, 3, 2, 1) != nil {
		t.Error("hi<=lo should return nil")
	}
}

// Property: variance is non-negative and invariant under shift.
func TestVarianceProperties(t *testing.T) {
	f := func(raw []int8, shift int8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		ys := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
			ys[i] = float64(v) + float64(shift)
		}
		v1, v2 := Variance(xs), Variance(ys)
		return v1 >= 0 && almostEqual(v1, v2, 1e-6)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Welford agrees with the batch mean for arbitrary inputs.
func TestWelfordProperty(t *testing.T) {
	f := func(raw []int16) bool {
		var w Welford
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
			w.Add(xs[i])
		}
		return almostEqual(w.Mean(), Mean(xs), 1e-6)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: quantile is monotone in q and bounded by min/max.
func TestQuantileProperty(t *testing.T) {
	f := func(raw []int8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		minV, maxV := MinMax(xs)
		q25, q50, q75 := Quantile(xs, 0.25), Quantile(xs, 0.5), Quantile(xs, 0.75)
		return q25 <= q50 && q50 <= q75 && q25 >= minV && q75 <= maxV
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: skewness flips sign under negation.
func TestSkewnessAntisymmetry(t *testing.T) {
	f := func(raw []int8) bool {
		if len(raw) < 3 {
			return true
		}
		xs := make([]float64, len(raw))
		neg := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
			neg[i] = -float64(v)
		}
		return almostEqual(Skewness(xs), -Skewness(neg), 1e-6)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkSkewness(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	xs := make([]float64, 60)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Skewness(xs)
	}
}

func BenchmarkWelfordAdd(b *testing.B) {
	var w Welford
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w.Add(float64(i % 97))
	}
}
