// Package stats provides the small set of descriptive statistics DICE needs:
// streaming moment accumulators (Welford), sample skewness for the state-set
// binarizer (Eq. 3.2 of the paper), robust location/scale estimates used by
// the fault injectors and baselines, and autoregressive model fitting used by
// the ARIMA-lite baseline.
//
// Everything here is deliberately dependency-free and allocation-conscious:
// the binarizer calls into this package once per numeric sensor per window on
// the real-time path.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrInsufficientData is returned by estimators that need more samples than
// they were given.
var ErrInsufficientData = errors.New("stats: insufficient data")

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the population variance of xs (dividing by n, not n-1),
// or 0 when fewer than two samples are present. The binarizer standardizes
// by the population moment to mirror the paper's E[((S-mu)/sigma)^3]
// formulation.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	mu := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - mu
		ss += d * d
	}
	return ss / float64(len(xs))
}

// SampleVariance returns the unbiased sample variance (dividing by n-1), or
// 0 when fewer than two samples are present.
func SampleVariance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	return Variance(xs) * float64(len(xs)) / float64(len(xs)-1)
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	return math.Sqrt(Variance(xs))
}

// Skewness returns the population skewness E[((x-mu)/sigma)^3] of xs.
// It returns 0 when there are fewer than three samples or when the values
// are (numerically) constant, matching the binarizer's need for a defined
// "skewness > 0" bit on degenerate windows.
func Skewness(xs []float64) float64 {
	if len(xs) < 3 {
		return 0
	}
	mu := Mean(xs)
	m2, m3 := 0.0, 0.0
	for _, x := range xs {
		d := x - mu
		m2 += d * d
		m3 += d * d * d
	}
	n := float64(len(xs))
	m2 /= n
	m3 /= n
	if m2 <= 1e-12 {
		return 0
	}
	return m3 / math.Pow(m2, 1.5)
}

// Median returns the median of xs without mutating it, or 0 for an empty
// slice.
func Median(xs []float64) float64 {
	switch len(xs) {
	case 0:
		return 0
	case 1:
		return xs[0]
	}
	tmp := append([]float64(nil), xs...)
	sort.Float64s(tmp)
	mid := len(tmp) / 2
	if len(tmp)%2 == 1 {
		return tmp[mid]
	}
	return (tmp[mid-1] + tmp[mid]) / 2
}

// MAD returns the median absolute deviation of xs around its median. It is
// the robust scale estimate used by the majority-vote baseline.
func MAD(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	med := Median(xs)
	devs := make([]float64, len(xs))
	for i, x := range xs {
		devs[i] = math.Abs(x - med)
	}
	return Median(devs)
}

// Quantile returns the q-th quantile of xs (0 <= q <= 1) using linear
// interpolation between order statistics. It returns 0 for an empty slice
// and clamps q into [0, 1].
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	tmp := append([]float64(nil), xs...)
	sort.Float64s(tmp)
	if q <= 0 {
		return tmp[0]
	}
	if q >= 1 {
		return tmp[len(tmp)-1]
	}
	pos := q * float64(len(tmp)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return tmp[lo]
	}
	frac := pos - float64(lo)
	return tmp[lo]*(1-frac) + tmp[hi]*frac
}

// MinMax returns the minimum and maximum of xs. It returns (0, 0) for an
// empty slice.
func MinMax(xs []float64) (minV, maxV float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	minV, maxV = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < minV {
			minV = x
		}
		if x > maxV {
			maxV = x
		}
	}
	return minV, maxV
}

// Welford is a streaming accumulator of count, mean, and variance using
// Welford's algorithm. The zero value is ready to use.
type Welford struct {
	n    int64
	mean float64
	m2   float64
}

// Add folds x into the accumulator.
func (w *Welford) Add(x float64) {
	w.n++
	delta := x - w.mean
	w.mean += delta / float64(w.n)
	w.m2 += delta * (x - w.mean)
}

// N returns the number of samples seen.
func (w *Welford) N() int64 { return w.n }

// Mean returns the running mean, or 0 before any samples.
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the running population variance, or 0 with fewer than two
// samples.
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n)
}

// StdDev returns the running population standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// Merge folds another accumulator into w (parallel Welford merge).
func (w *Welford) Merge(o Welford) {
	if o.n == 0 {
		return
	}
	if w.n == 0 {
		*w = o
		return
	}
	n := w.n + o.n
	delta := o.mean - w.mean
	w.mean += delta * float64(o.n) / float64(n)
	w.m2 += o.m2 + delta*delta*float64(w.n)*float64(o.n)/float64(n)
	w.n = n
}

// EWMA is an exponentially weighted moving average. The zero value is not
// useful; construct with NewEWMA.
type EWMA struct {
	alpha float64
	value float64
	init  bool
}

// NewEWMA returns an EWMA with smoothing factor alpha in (0, 1]. Larger
// alpha weights recent samples more heavily.
func NewEWMA(alpha float64) *EWMA {
	if alpha <= 0 || alpha > 1 {
		alpha = 0.1
	}
	return &EWMA{alpha: alpha}
}

// Add folds x in and returns the updated average.
func (e *EWMA) Add(x float64) float64 {
	if !e.init {
		e.value = x
		e.init = true
		return x
	}
	e.value = e.alpha*x + (1-e.alpha)*e.value
	return e.value
}

// Value returns the current average, or 0 before any samples.
func (e *EWMA) Value() float64 { return e.value }

// Autocovariance returns the lag-k autocovariance of xs (population
// normalization). It returns 0 when k >= len(xs).
func Autocovariance(xs []float64, k int) float64 {
	n := len(xs)
	if k < 0 || k >= n {
		return 0
	}
	mu := Mean(xs)
	sum := 0.0
	for i := 0; i+k < n; i++ {
		sum += (xs[i] - mu) * (xs[i+k] - mu)
	}
	return sum / float64(n)
}

// Autocorrelation returns the lag-k autocorrelation of xs, or 0 when the
// series is constant.
func Autocorrelation(xs []float64, k int) float64 {
	c0 := Autocovariance(xs, 0)
	if c0 <= 1e-12 {
		return 0
	}
	return Autocovariance(xs, k) / c0
}

// FitAR fits an AR(p) model to xs by solving the Yule-Walker equations with
// Levinson-Durbin recursion. It returns the p coefficients (phi_1..phi_p)
// and the innovation variance. It needs at least p+2 samples.
func FitAR(xs []float64, p int) (coeffs []float64, noiseVar float64, err error) {
	if p < 1 {
		return nil, 0, errors.New("stats: AR order must be >= 1")
	}
	if len(xs) < p+2 {
		return nil, 0, ErrInsufficientData
	}
	r := make([]float64, p+1)
	for k := 0; k <= p; k++ {
		r[k] = Autocovariance(xs, k)
	}
	if r[0] <= 1e-12 {
		// Constant series: AR coefficients of zero predict the mean exactly.
		return make([]float64, p), 0, nil
	}
	phi := make([]float64, p)
	prev := make([]float64, p)
	v := r[0]
	for k := 1; k <= p; k++ {
		acc := r[k]
		for j := 1; j < k; j++ {
			acc -= prev[j-1] * r[k-j]
		}
		lambda := acc / v
		phi[k-1] = lambda
		for j := 1; j < k; j++ {
			phi[j-1] = prev[j-1] - lambda*prev[k-j-1]
		}
		v *= 1 - lambda*lambda
		copy(prev, phi[:k])
	}
	if v < 0 {
		v = 0
	}
	return phi, v, nil
}

// PredictAR returns the one-step-ahead AR prediction for the series history,
// where history holds the most recent observations ordered oldest first and
// mean is the process mean the model was centred on. It needs
// len(history) >= len(coeffs).
func PredictAR(coeffs []float64, mean float64, history []float64) (float64, error) {
	p := len(coeffs)
	if len(history) < p {
		return 0, ErrInsufficientData
	}
	pred := mean
	for j := 0; j < p; j++ {
		pred += coeffs[j] * (history[len(history)-1-j] - mean)
	}
	return pred, nil
}

// Histogram counts xs into n equal-width bins spanning [lo, hi]. Values
// outside the range are clamped into the first/last bin. It returns nil when
// n <= 0 or hi <= lo.
func Histogram(xs []float64, n int, lo, hi float64) []int {
	if n <= 0 || hi <= lo {
		return nil
	}
	bins := make([]int, n)
	width := (hi - lo) / float64(n)
	for _, x := range xs {
		idx := int((x - lo) / width)
		if idx < 0 {
			idx = 0
		}
		if idx >= n {
			idx = n - 1
		}
		bins[idx]++
	}
	return bins
}
