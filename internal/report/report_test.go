package report

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/eval"
	"repro/internal/simhome"
)

func sampleResults() []*eval.DatasetResult {
	r1 := &eval.DatasetResult{
		Name:       "houseA",
		NumSensors: 14,
		NumGroups:  11,
		Degree:     1.6,
		DetectMinutesByCheck: map[string]float64{
			"correlation": 12.5,
			"transition":  30.0,
		},
		MeanDetectMinutes:    15,
		MeanIdentifyMinutes:  30,
		CorrelationCheckTime: 1500 * time.Nanosecond,
		TransitionCheckTime:  200 * time.Nanosecond,
		DetectByType: map[string][2]int{
			"fail-stop": {9, 1},
			"stuck-at":  {2, 8},
		},
	}
	r1.Detection.AddTP(45)
	r1.Detection.AddFP(5)
	r1.Detection.AddFN(5)
	r1.Identification.AddTP(40)
	r1.Identification.AddFP(10)
	r1.Identification.AddFN(10)
	r2 := &eval.DatasetResult{
		Name:                 "D_houseA",
		NumSensors:           37,
		NumGroups:            8,
		Degree:               7.4,
		DetectMinutesByCheck: map[string]float64{},
		DetectByType:         map[string][2]int{},
	}
	r2.Detection.AddTP(50)
	return []*eval.DatasetResult{r1, r2}
}

func render(t *testing.T, tab *Table) string {
	t.Helper()
	var buf bytes.Buffer
	if err := tab.Render(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func TestTableRenderAligned(t *testing.T) {
	tab := &Table{Title: "T", Headers: []string{"a", "long-header"}}
	tab.AddRow("x", 1)
	tab.AddRow("longer-cell", 2.5)
	out := render(t, tab)
	if !strings.Contains(out, "## T") {
		t.Error("missing title")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, separator, two rows
		t.Fatalf("lines = %d: %q", len(lines), out)
	}
	if !strings.Contains(lines[4], "2.50") {
		t.Errorf("float formatting: %q", lines[4])
	}
}

func TestTableCSV(t *testing.T) {
	tab := &Table{Headers: []string{"a", "b"}}
	tab.AddRow("x", 1)
	var buf bytes.Buffer
	if err := tab.CSV(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.String() != "a,b\nx,1\n" {
		t.Errorf("CSV = %q", buf.String())
	}
}

func TestDatasets(t *testing.T) {
	out := render(t, Datasets(simhome.AllSpecs()))
	for _, want := range []string{"houseA", "D_hh102", "hours"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	// Table 4.1 sensor counts must appear.
	if !strings.Contains(out, "112") && !strings.Contains(out, "79") {
		t.Error("hh102 sensor counts missing")
	}
}

func TestAccuracy(t *testing.T) {
	out := render(t, Accuracy(sampleResults()))
	if !strings.Contains(out, "90.0%") { // houseA detection precision 45/50
		t.Errorf("precision missing:\n%s", out)
	}
	if !strings.Contains(out, "AVERAGE") {
		t.Error("average row missing")
	}
}

func TestLatencyAndChecks(t *testing.T) {
	out := render(t, Latency(sampleResults()))
	if !strings.Contains(out, "15.00") || !strings.Contains(out, "30.00") {
		t.Errorf("latency values missing:\n%s", out)
	}
	out = render(t, CheckLatency(sampleResults()))
	if !strings.Contains(out, "12.5") || !strings.Contains(out, "30.0") {
		t.Errorf("check latencies missing:\n%s", out)
	}
	// The dataset with no detections renders dashes.
	if !strings.Contains(out, "-") {
		t.Error("missing-value dash absent")
	}
}

func TestDegreeAndCompute(t *testing.T) {
	out := render(t, Degree(sampleResults()))
	if !strings.Contains(out, "1.60") || !strings.Contains(out, "7.40") {
		t.Errorf("degrees missing:\n%s", out)
	}
	out = render(t, ComputeTime(sampleResults()))
	if !strings.Contains(out, "1.50") { // 1500ns = 1.50µs
		t.Errorf("compute time missing:\n%s", out)
	}
}

func TestDetectionRatioPoolsAcrossDatasets(t *testing.T) {
	out := render(t, DetectionRatio(sampleResults()))
	if !strings.Contains(out, "fail-stop") || !strings.Contains(out, "stuck-at") {
		t.Errorf("fault types missing:\n%s", out)
	}
	if !strings.Contains(out, "90.0%") { // fail-stop 9/10 by correlation
		t.Errorf("ratio missing:\n%s", out)
	}
	if !strings.Contains(out, "80.0%") { // stuck-at 8/10 by transition
		t.Errorf("stuck-at transition share missing:\n%s", out)
	}
}

func TestAblations(t *testing.T) {
	a := &eval.AblationResult{
		Label:           "precompute 150h",
		PrecomputeHours: 150,
		SegmentHours:    6,
		DurationMinutes: 1,
		NumGroups:       9,
	}
	a.Detection.AddTP(10)
	out := render(t, Ablations([]*eval.AblationResult{a}))
	if !strings.Contains(out, "precompute 150h") || !strings.Contains(out, "150") {
		t.Errorf("ablation row missing:\n%s", out)
	}
}
