// Package report renders experiment results as aligned ASCII tables and
// CSV, one renderer per table/figure of the paper, so `dice-eval` output
// can be diffed against EXPERIMENTS.md.
package report

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/eval"
	"repro/internal/simhome"
)

// Table is a simple aligned-text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends a row; values are stringified with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		case time.Duration:
			row[i] = v.Round(time.Microsecond).String()
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render writes the table to w.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString("## " + t.Title + "\n")
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(c)
			if i < len(widths) {
				sb.WriteString(strings.Repeat(" ", widths[i]-len(c)))
			}
		}
		sb.WriteString("\n")
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range t.Rows {
		writeRow(r)
	}
	sb.WriteString("\n")
	_, err := io.WriteString(w, sb.String())
	return err
}

// CSV writes the table as CSV.
func (t *Table) CSV(w io.Writer) error {
	var sb strings.Builder
	sb.WriteString(strings.Join(t.Headers, ",") + "\n")
	for _, r := range t.Rows {
		sb.WriteString(strings.Join(r, ",") + "\n")
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// pct formats a ratio as a percentage.
func pct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }

// Datasets renders Table 4.1: the dataset inventory.
func Datasets(specs []simhome.Spec) *Table {
	t := &Table{
		Title:   "Table 4.1 — Datasets",
		Headers: []string{"dataset", "hours", "binary", "numeric", "actuators", "activities", "residents"},
	}
	for _, s := range specs {
		nb, nn, na := 0, 0, 0
		for _, d := range s.Devices {
			switch d.Kind {
			case device.Binary:
				nb++
			case device.Numeric:
				nn++
			case device.Actuator:
				na++
			}
		}
		t.AddRow(s.Name, s.Hours, nb, nn, na, s.NumActivities, s.Residents)
	}
	return t
}

// Accuracy renders Fig 5.1a+b: detection and identification accuracy.
func Accuracy(results []*eval.DatasetResult) *Table {
	t := &Table{
		Title: "Fig 5.1 — Detection and Identification Accuracy",
		Headers: []string{"dataset", "det-precision", "det-recall",
			"id-precision", "id-recall"},
	}
	var dp, dr, ip, ir float64
	for _, r := range results {
		t.AddRow(r.Name, pct(r.Detection.Precision()), pct(r.Detection.Recall()),
			pct(r.Identification.Precision()), pct(r.Identification.Recall()))
		dp += r.Detection.Precision()
		dr += r.Detection.Recall()
		ip += r.Identification.Precision()
		ir += r.Identification.Recall()
	}
	n := float64(len(results))
	if n > 0 {
		t.AddRow("AVERAGE", pct(dp/n), pct(dr/n), pct(ip/n), pct(ir/n))
	}
	return t
}

// Latency renders Fig 5.2: detection and identification time.
func Latency(results []*eval.DatasetResult) *Table {
	t := &Table{
		Title:   "Fig 5.2 — Detection and Identification Time (minutes)",
		Headers: []string{"dataset", "detect-min", "identify-min"},
	}
	for _, r := range results {
		t.AddRow(r.Name, r.MeanDetectMinutes, r.MeanIdentifyMinutes)
	}
	return t
}

// CheckLatency renders Table 5.1: detection time by check type.
func CheckLatency(results []*eval.DatasetResult) *Table {
	t := &Table{
		Title:   "Table 5.1 — Detection Time by Check (minutes)",
		Headers: []string{"dataset", "correlation-check", "transition-check"},
	}
	for _, r := range results {
		c, hasC := r.DetectMinutesByCheck[core.FamilyCorrelation]
		tr, hasT := r.DetectMinutesByCheck[core.FamilyTransition]
		cs, ts := "-", "-"
		if hasC {
			cs = fmt.Sprintf("%.1f", c)
		}
		if hasT {
			ts = fmt.Sprintf("%.1f", tr)
		}
		t.AddRow(r.Name, cs, ts)
	}
	return t
}

// Degree renders Table 5.2: correlation degree and sensor counts.
func Degree(results []*eval.DatasetResult) *Table {
	t := &Table{
		Title:   "Table 5.2 — Correlation Degree",
		Headers: []string{"dataset", "degree", "sensors", "groups"},
	}
	for _, r := range results {
		t.AddRow(r.Name, r.Degree, r.NumSensors, r.NumGroups)
	}
	return t
}

// ComputeTime renders Fig 5.3: per-window computation time by stage, in
// microseconds (sub-microsecond stages matter here).
func ComputeTime(results []*eval.DatasetResult) *Table {
	t := &Table{
		Title:   "Fig 5.3 — Computation Time per Window (µs)",
		Headers: []string{"dataset", "correlation", "transition", "identification"},
	}
	us := func(d time.Duration) string {
		return fmt.Sprintf("%.2f", float64(d.Nanoseconds())/1000.0)
	}
	for _, r := range results {
		t.AddRow(r.Name, us(r.CorrelationCheckTime), us(r.TransitionCheckTime), us(r.IdentifyTime))
	}
	return t
}

// DetectionRatio renders Fig 5.4: share of faults caught per check family,
// by fault type, pooled across the given results.
func DetectionRatio(results []*eval.DatasetResult) *Table {
	t := &Table{
		Title:   "Fig 5.4 — Detection Ratio by Fault Type",
		Headers: []string{"fault-type", "by-correlation", "by-transition", "n"},
	}
	pool := make(map[string][2]int)
	for _, r := range results {
		for typ, cnt := range r.DetectByType {
			c := pool[typ]
			c[0] += cnt[0]
			c[1] += cnt[1]
			pool[typ] = c
		}
	}
	types := make([]string, 0, len(pool))
	for typ := range pool {
		types = append(types, typ)
	}
	sort.Strings(types)
	for _, typ := range types {
		c := pool[typ]
		n := c[0] + c[1]
		if n == 0 {
			continue
		}
		t.AddRow(typ, pct(float64(c[0])/float64(n)), pct(float64(c[1])/float64(n)), n)
	}
	return t
}

// Ablations renders the §VI parameter study.
func Ablations(results []*eval.AblationResult) *Table {
	t := &Table{
		Title: "§VI — Parameter Ablations",
		Headers: []string{"variant", "precompute-h", "segment-h", "duration-min",
			"det-P", "det-R", "id-P", "id-R", "groups"},
	}
	for _, a := range results {
		t.AddRow(a.Label, a.PrecomputeHours, a.SegmentHours, a.DurationMinutes,
			pct(a.Detection.Precision()), pct(a.Detection.Recall()),
			pct(a.Identification.Precision()), pct(a.Identification.Recall()),
			a.NumGroups)
	}
	return t
}
