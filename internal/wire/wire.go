// Package wire is the binary batch encoding devices use to report over
// CoAP. The JSON wire format spends most of a gateway core on parsing;
// this one is a length-prefixed fixed-record layout that decodes straight
// into reused event buffers, so a clean batch costs zero allocations
// between the UDP socket and the window builder.
//
// Layout (all integers little-endian):
//
//	header   "DWB1" | version:1 | kind:1 | count:4
//	body     kind=report  → count × [at_ns:8 | device:4 | value:8]
//	         kind=advance → at_ns:8 (count must be 0)
//	trailer  crc32c(header+body):4
//
// The CRC is Castagnoli, the same polynomial the WAL frames with, so a
// corrupted datagram that slips past UDP's weak checksum still fails
// closed. Payload length must match the count exactly — trailing garbage
// is rejected, which is what makes sniffing by magic safe: no JSON batch
// starts with "DWB1" (JSON payloads begin '[' or '{'), and no truncated
// binary batch decodes.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"sync"
	"time"

	"repro/internal/device"
	"repro/internal/event"
)

// Version is the current wire format version. Decoders reject anything
// newer; the front end's JSON fallback is the compatibility story for
// anything older than the format itself.
const Version = 1

// Kind discriminates batch payloads, mirroring wal.Kind's values.
type Kind uint8

const (
	// KindReport is a batch of device readings for /report.
	KindReport Kind = 1
	// KindAdvance is a stream-clock advance for /advance.
	KindAdvance Kind = 2
)

// Magic opens every binary batch; it doubles as the sniff key that keeps
// legacy JSON devices working on the same resource paths.
var Magic = [4]byte{'D', 'W', 'B', '1'}

const (
	headerSize  = 4 + 1 + 1 + 4 // magic + version + kind + count
	trailerSize = 4             // crc32c
	// RecordSize is one fixed-width event record: at + device + value.
	RecordSize = 8 + 4 + 8
	// MaxBatch bounds the record count a decoder will accept. A CoAP
	// datagram tops out well below this; the cap keeps a hostile header
	// from growing pooled buffers without bound.
	MaxBatch = 1 << 16
)

// ErrMalformed marks any payload DecodeBatch rejects — wrong magic,
// unsupported version, bad CRC, length/count mismatch. Fronts map it to a
// stable reason code rather than echoing the detail to remote peers.
var ErrMalformed = errors.New("wire: malformed batch")

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// IsBinary reports whether payload sniffs as a binary batch. It only
// checks the magic: a payload that sniffs binary but fails to decode is a
// malformed binary batch, not JSON.
func IsBinary(payload []byte) bool {
	return len(payload) >= len(Magic) && [4]byte(payload[:4]) == Magic
}

// appendHeader writes the fixed header onto buf.
func appendHeader(buf []byte, kind Kind, count int) []byte {
	var h [headerSize]byte
	copy(h[:4], Magic[:])
	h[4] = Version
	h[5] = byte(kind)
	binary.LittleEndian.PutUint32(h[6:10], uint32(count))
	return append(buf, h[:]...)
}

// appendTrailer seals the batch with the CRC over everything before it.
func appendTrailer(buf []byte) []byte {
	var t [trailerSize]byte
	binary.LittleEndian.PutUint32(t[:], crc32.Checksum(buf, castagnoli))
	return append(buf, t[:]...)
}

// AppendReport encodes evts as one report batch onto buf (reusing its
// capacity) and returns the extended slice. Encoding is zero-alloc once
// buf has grown to steady-state size.
func AppendReport(buf []byte, evts []event.Event) []byte {
	buf = appendHeader(buf, KindReport, len(evts))
	var rec [RecordSize]byte
	for _, e := range evts {
		binary.LittleEndian.PutUint64(rec[0:8], uint64(e.At))
		binary.LittleEndian.PutUint32(rec[8:12], uint32(int32(e.Device)))
		binary.LittleEndian.PutUint64(rec[12:20], math.Float64bits(e.Value))
		buf = append(buf, rec[:]...)
	}
	return appendTrailer(buf)
}

// AppendAdvance encodes a stream-clock advance onto buf.
func AppendAdvance(buf []byte, at time.Duration) []byte {
	buf = appendHeader(buf, KindAdvance, 0)
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(at))
	buf = append(buf, b[:]...)
	return appendTrailer(buf)
}

// Batch is one decoded payload. Events aliases the scratch slice passed
// to DecodeBatch, so it is valid until the caller reuses (or returns)
// that buffer.
type Batch struct {
	Kind   Kind
	At     time.Duration // advance target (KindAdvance only)
	Events []event.Event // decoded readings (KindReport only)
}

// DecodeBatch parses a payload written by AppendReport/AppendAdvance,
// decoding report records into scratch (capacity reused, length reset).
// The returned Batch's Events is the grown scratch slice; pass it back
// on the next call — or via PutEvents — to keep the path allocation-free.
func DecodeBatch(payload []byte, scratch []event.Event) (Batch, error) {
	if !IsBinary(payload) {
		return Batch{}, fmt.Errorf("%w: missing magic", ErrMalformed)
	}
	if len(payload) < headerSize+trailerSize {
		return Batch{}, fmt.Errorf("%w: %d bytes is shorter than an empty batch", ErrMalformed, len(payload))
	}
	if v := payload[4]; v != Version {
		return Batch{}, fmt.Errorf("%w: version %d, want %d", ErrMalformed, v, Version)
	}
	kind := Kind(payload[5])
	count := binary.LittleEndian.Uint32(payload[6:10])
	body := payload[:len(payload)-trailerSize]
	want := binary.LittleEndian.Uint32(payload[len(payload)-trailerSize:])
	if crc32.Checksum(body, castagnoli) != want {
		return Batch{}, fmt.Errorf("%w: CRC mismatch", ErrMalformed)
	}
	switch kind {
	case KindReport:
		if count > MaxBatch {
			return Batch{}, fmt.Errorf("%w: %d records exceeds limit %d", ErrMalformed, count, MaxBatch)
		}
		if got, need := len(body)-headerSize, int(count)*RecordSize; got != need {
			return Batch{}, fmt.Errorf("%w: %d body bytes for %d records", ErrMalformed, got, count)
		}
		out := scratch[:0]
		for off := headerSize; off < len(body); off += RecordSize {
			rec := body[off : off+RecordSize]
			out = append(out, event.Event{
				At:     time.Duration(binary.LittleEndian.Uint64(rec[0:8])),
				Device: device.ID(int32(binary.LittleEndian.Uint32(rec[8:12]))),
				Value:  math.Float64frombits(binary.LittleEndian.Uint64(rec[12:20])),
			})
		}
		return Batch{Kind: KindReport, Events: out}, nil
	case KindAdvance:
		if count != 0 {
			return Batch{}, fmt.Errorf("%w: advance batch claims %d records", ErrMalformed, count)
		}
		if len(body)-headerSize != 8 {
			return Batch{}, fmt.Errorf("%w: advance body %d bytes, want 8", ErrMalformed, len(body)-headerSize)
		}
		return Batch{
			Kind:   KindAdvance,
			At:     time.Duration(binary.LittleEndian.Uint64(body[headerSize : headerSize+8])),
			Events: scratch[:0],
		}, nil
	default:
		return Batch{}, fmt.Errorf("%w: unknown kind %d", ErrMalformed, kind)
	}
}

// eventsPool recycles decode scratch across requests. Slices start at a
// typical agent batch and grow to the largest batch a peer sends; MaxBatch
// bounds that growth.
var eventsPool = sync.Pool{
	New: func() any {
		s := make([]event.Event, 0, 64)
		return &s
	},
}

// GetEvents leases a decode scratch slice from the pool.
func GetEvents() *[]event.Event {
	return eventsPool.Get().(*[]event.Event)
}

// PutEvents returns a scratch slice (as grown by DecodeBatch) to the
// pool. The caller must not touch the slice afterwards.
func PutEvents(s *[]event.Event) {
	*s = (*s)[:0]
	eventsPool.Put(s)
}
