package wire

import (
	"encoding/binary"
	"errors"
	"testing"
	"time"

	"repro/internal/device"
	"repro/internal/event"
)

func sampleEvents(n int) []event.Event {
	evts := make([]event.Event, n)
	for i := range evts {
		evts[i] = event.Event{
			At:     time.Duration(i) * 37 * time.Second,
			Device: device.ID(i % 11),
			Value:  float64(i) * 0.75,
		}
	}
	return evts
}

func TestReportRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 16, 257} {
		evts := sampleEvents(n)
		payload := AppendReport(nil, evts)
		if !IsBinary(payload) {
			t.Fatalf("n=%d: encoded batch does not sniff binary", n)
		}
		b, err := DecodeBatch(payload, nil)
		if err != nil {
			t.Fatalf("n=%d: decode: %v", n, err)
		}
		if b.Kind != KindReport {
			t.Fatalf("n=%d: kind %d, want report", n, b.Kind)
		}
		if len(b.Events) != n {
			t.Fatalf("n=%d: decoded %d events", n, len(b.Events))
		}
		for i, e := range b.Events {
			if e != evts[i] {
				t.Fatalf("n=%d: event %d = %+v, want %+v", n, i, e, evts[i])
			}
		}
	}
}

func TestAdvanceRoundTrip(t *testing.T) {
	payload := AppendAdvance(nil, 90*time.Minute)
	b, err := DecodeBatch(payload, nil)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if b.Kind != KindAdvance || b.At != 90*time.Minute {
		t.Fatalf("got kind=%d at=%s", b.Kind, b.At)
	}
}

func TestSniffRejectsJSON(t *testing.T) {
	for _, p := range [][]byte{
		[]byte(`[{"at":1,"d":2,"v":3}]`),
		[]byte(`{"at":60000}`),
		[]byte(""),
		[]byte("DWB"),
	} {
		if IsBinary(p) {
			t.Fatalf("payload %q sniffed binary", p)
		}
	}
}

func TestDecodeRejectsMalformed(t *testing.T) {
	good := AppendReport(nil, sampleEvents(4))
	cases := map[string][]byte{
		"not binary":  []byte(`[]`),
		"short":       good[:headerSize],
		"truncated":   good[:len(good)-1],
		"extra byte":  append(append([]byte(nil), good...), 0),
		"bad version": withByte(good, 4, 99),
		"bad kind":    withByte(good, 5, 7),
		"bad crc":     withByte(good, len(good)-1, good[len(good)-1]^0xff),
		"flipped bit": withByte(good, headerSize+3, good[headerSize+3]^0x10),
	}
	// A count that disagrees with the body length must fail even with a
	// recomputed CRC: DecodeBatch cross-checks both.
	bad := append([]byte(nil), good...)
	binary.LittleEndian.PutUint32(bad[6:10], 3)
	bad = appendTrailer(bad[:len(bad)-trailerSize])
	cases["count mismatch"] = bad

	adv := AppendAdvance(nil, time.Hour)
	advBad := append([]byte(nil), adv...)
	binary.LittleEndian.PutUint32(advBad[6:10], 1)
	advBad = appendTrailer(advBad[:len(advBad)-trailerSize])
	cases["advance with count"] = advBad

	for name, payload := range cases {
		if _, err := DecodeBatch(payload, nil); !errors.Is(err, ErrMalformed) {
			t.Errorf("%s: err = %v, want ErrMalformed", name, err)
		}
	}
}

func withByte(src []byte, i int, v byte) []byte {
	out := append([]byte(nil), src...)
	out[i] = v
	return out
}

// A corrupted version/kind byte must fail the CRC before any semantic
// check can mis-handle it; equally, a re-sealed batch with a hostile
// count must fail the length check. Both are covered above — this guard
// is about the decode hot path staying allocation-free.
func TestDecodeBatchZeroAlloc(t *testing.T) {
	evts := sampleEvents(64)
	payload := AppendReport(nil, evts)
	scratch := make([]event.Event, 0, len(evts))
	allocs := testing.AllocsPerRun(100, func() {
		b, err := DecodeBatch(payload, scratch)
		if err != nil {
			t.Fatal(err)
		}
		scratch = b.Events
	})
	if allocs != 0 {
		t.Fatalf("DecodeBatch allocates %.1f times per call, want 0", allocs)
	}
}

func TestAppendReportZeroAllocSteadyState(t *testing.T) {
	evts := sampleEvents(64)
	buf := AppendReport(nil, evts) // grow once
	allocs := testing.AllocsPerRun(100, func() {
		buf = AppendReport(buf[:0], evts)
	})
	if allocs != 0 {
		t.Fatalf("AppendReport allocates %.1f times per call, want 0", allocs)
	}
}

func TestEventsPoolRoundTrip(t *testing.T) {
	s := GetEvents()
	b, err := DecodeBatch(AppendReport(nil, sampleEvents(32)), *s)
	if err != nil {
		t.Fatal(err)
	}
	*s = b.Events
	if len(*s) != 32 {
		t.Fatalf("decoded %d events", len(*s))
	}
	PutEvents(s)
	s2 := GetEvents()
	if len(*s2) != 0 {
		t.Fatalf("pooled slice came back with length %d", len(*s2))
	}
	PutEvents(s2)
}

func FuzzDecodeBatch(f *testing.F) {
	f.Add(AppendReport(nil, sampleEvents(0)))
	f.Add(AppendReport(nil, sampleEvents(1)))
	f.Add(AppendReport(nil, sampleEvents(16)))
	f.Add(AppendAdvance(nil, time.Hour))
	f.Add([]byte(`[{"at":1,"d":2,"v":3}]`))
	f.Add([]byte("DWB1garbage"))
	f.Fuzz(func(t *testing.T, payload []byte) {
		b, err := DecodeBatch(payload, nil)
		if err != nil {
			if !errors.Is(err, ErrMalformed) {
				t.Fatalf("non-ErrMalformed decode error: %v", err)
			}
			return
		}
		// A successful decode must re-encode to the identical payload:
		// the format has no redundancy beyond the CRC, so round-tripping
		// is exact.
		var again []byte
		switch b.Kind {
		case KindReport:
			again = AppendReport(nil, b.Events)
		case KindAdvance:
			again = AppendAdvance(nil, b.At)
		default:
			t.Fatalf("decoded unknown kind %d", b.Kind)
		}
		if string(again) != string(payload) {
			t.Fatalf("round trip mismatch:\n in %x\nout %x", payload, again)
		}
	})
}
