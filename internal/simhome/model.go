package simhome

import (
	"math"

	"repro/internal/device"
)

// numericModel drives one numeric sensor's readings:
//
//	value(t) = base + diurnalAmp*daylight(t) + actBoost*[activity in room]
//	         + bulbBoost*[bulb on in room] + noise, quantized to resolution.
//
// Quantization is what keeps the binarizer's skew/trend bits stable: real
// sensors report discrete steps, so a quiet minute yields constant samples
// (skew 0, no trend). Noise is deliberately below the resolution most of
// the time.
type numericModel struct {
	base       float64
	diurnalAmp float64
	actBoost   float64
	bulbBoost  float64
	noiseSD    float64
	resolution float64
}

// numericModelFor returns the model for a sensor type. diurnalScale lets a
// dataset damp outdoor influence (an instrumented lab with blinds closed
// has nearly none).
func numericModelFor(t device.Type, diurnalScale float64) numericModel {
	// Noise is held at resolution/10 so a quiet window quantizes to constant
	// samples with 5-sigma margin: within-window flicker is
	// negligible, so the false-positive budget is carried by the rare
	// binary/numeric response misses instead, while fault disturbances
	// (several resolutions large) always show.
	m := numericModel{base: 10, noiseSD: 0.1, resolution: 1}
	switch t {
	case device.Light:
		// Light sensors are dominated by the smart bulbs (the paper's Hue
		// bulbs fire on motion, §4.1.2); human presence alone adds only a
		// little (a phone screen, an open fridge). The gap between the
		// presence-only level and the bulb-lit level straddles the
		// binarization threshold, which is what makes a dead bulb
		// observable: the room fails to get bright when someone moves in.
		m = numericModel{base: 40, diurnalAmp: 220, actBoost: 10, bulbBoost: 160, noiseSD: 0.5, resolution: 5}
	case device.Temperature:
		// Presence barely moves an ambient thermometer; the fan's cooling
		// dominates, so a dead fan leaves the room measurably warm.
		m = numericModel{base: 19, diurnalAmp: 1.5, actBoost: 0.5, noiseSD: 0.05, resolution: 0.5}
	case device.Humidity:
		m = numericModel{base: 45, diurnalAmp: -6, actBoost: 2, noiseSD: 0.1, resolution: 1}
	case device.Sound:
		m = numericModel{base: 31, actBoost: 24, noiseSD: 0.1, resolution: 1}
	case device.Ultrasonic:
		m = numericModel{base: 310, actBoost: -210, noiseSD: 0.5, resolution: 5}
	case device.Gas:
		m = numericModel{base: 0.06, actBoost: 0.9, noiseSD: 0.001, resolution: 0.01}
	case device.Weight:
		m = numericModel{base: 2, actBoost: 68, noiseSD: 0.05, resolution: 0.5}
	case device.RSSI:
		m = numericModel{base: -84, actBoost: 33, noiseSD: 0.1, resolution: 1}
	case device.Battery:
		m = numericModel{base: 91, noiseSD: 0.05, resolution: 1}
	}
	m.diurnalAmp *= diurnalScale
	return m
}

// daylight is a two-level ambient-light indicator — daylight plus the
// household lighting that accompanies the waking day — high between 05:45
// and 21:00. Two deliberate properties: it is a step, not a curve (under
// quantized reporting a smooth curve turns every sensor's threshold
// crossing into its own staircase of state-set transitions scattered
// across the morning, while a shared step flips the whole home in a single
// window at two fixed minutes a day), and the step times fall where the
// household context is most predictable (asleep at 05:45, settled in the
// living room at 21:00), so the two daily transition groups are trained
// after a handful of days.
func daylight(minOfDay int) float64 {
	if minOfDay < 5*60+45 || minOfDay >= 21*60 {
		return 0
	}
	return 1
}

// roomState summarizes what is happening in a room during one minute; it
// drives sensor eligibility.
type roomState struct {
	occupied bool
	restful  bool
	cooking  bool
	water    bool
	// entering/leaving mark the boundary minutes of an occupancy span.
	entering bool
	leaving  bool
}

// binaryEligible reports whether a binary sensor of the given type should
// respond to the room state. Firing is near-deterministic given
// eligibility (see missProb): this is what keeps the group catalogue small
// and the false-positive rate at the paper's ~2% scale, while the residual
// misses are exactly what lets stuck-at faults pass the correlation check
// and get caught by the transition check (Fig 5.4).
func binaryEligible(t device.Type, rs roomState) bool {
	if !rs.occupied {
		return false
	}
	switch t {
	case device.Motion:
		return !rs.restful
	case device.DoorContact:
		return rs.entering || rs.leaving
	case device.PressureMat:
		return rs.restful
	case device.FlameDetector:
		return rs.cooking
	case device.FloatSwitch:
		return rs.water
	default:
		return true
	}
}

// numericEligible reports whether a numeric sensor of the given type
// responds to the room state. The semantics mirror the physical sensors:
// sound needs someone moving about, gas rises only while cooking, a weight
// mat only loads while someone sits or lies on it. The overlap structure
// this creates between activity variants of the same room is what lets a
// stuck-at sensor masquerade as a sibling activity's group and slip past
// the correlation check (Fig 5.4).
func numericEligible(t device.Type, rs roomState) bool {
	if !rs.occupied {
		return false
	}
	switch t {
	case device.Sound, device.Light:
		// Noise and light need someone up and about: a sleeping resident
		// keeps the room dark and quiet.
		return !rs.restful
	case device.Gas:
		return rs.cooking
	case device.Weight:
		return rs.restful
	default:
		return true
	}
}

const (
	// missProb is the per-minute chance an eligible binary sensor fails to
	// fire (and a responding numeric sensor fails to register its boost).
	// It is zero: every miss variant a sensor can produce needs its full
	// transition neighbourhood covered during the 300-hour precomputation
	// or it shows up as a false G2G violation, and real deployments get
	// their ~2% false-positive budget from novel behaviour sequences, not
	// from per-minute sensor flakiness. Fault injection (internal/faults)
	// is what perturbs readings.
	missProb = 0.0
	// falseFireProb is the per-minute probability of a spurious firing
	// with nothing happening nearby — rare hardware glitches that give the
	// data a small residual false-positive floor.
	falseFireProb = 0.000001
)

// Actuator effects on numeric sensors in the same room. Values are chosen
// so that healthy-vs-failed actuator states straddle the sensors'
// binarization thresholds — a dead actuator must move a bit or DICE (and
// any data-driven detector) cannot see it.
const (
	speakerSoundBoost    = 20.0 // smart speaker playing
	humidifierHumidBoost = 10.0 // humidifier running
	fanTempCool          = -3.0 // fan running
	blindDaylightFactor  = 0.15 // blind closed: daylight mostly blocked
)

// quantize rounds v to the sensor's reporting resolution.
func quantize(v, resolution float64) float64 {
	if resolution <= 0 {
		return v
	}
	return math.Round(v/resolution) * resolution
}
