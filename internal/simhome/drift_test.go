package simhome

import (
	"reflect"
	"testing"
)

// TestDriftPrefixBitIdentical: every window before the drift onset day is
// bit-identical to the base home's — the property that lets experiments
// train on the shared prefix and attribute every post-onset difference to
// the drift alone.
func TestDriftPrefixBitIdentical(t *testing.T) {
	base, err := New(tinySpec(), 7)
	if err != nil {
		t.Fatal(err)
	}
	const from = minutesPerDay // onset at the second midnight
	drifted, err := base.WithDrift(Drift{ExtraActivities: 4, FromMinute: from})
	if err != nil {
		t.Fatal(err)
	}
	for idx := 0; idx < from; idx++ {
		if !reflect.DeepEqual(base.Window(idx), drifted.Window(idx)) {
			t.Fatalf("window %d differs before drift onset", idx)
		}
	}
}

// TestDriftChangesPostOnsetDays: after the onset the drifted view's
// recording diverges from the base — the new activities actually appear.
func TestDriftChangesPostOnsetDays(t *testing.T) {
	base, err := New(tinySpec(), 7)
	if err != nil {
		t.Fatal(err)
	}
	drifted, err := base.WithDrift(Drift{ExtraActivities: 6, FromMinute: minutesPerDay})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(drifted.Activities()), len(base.Activities())+6; got != want {
		t.Fatalf("drifted activity list has %d entries, want %d", got, want)
	}
	diff := false
	for idx := minutesPerDay; idx < base.Windows() && !diff; idx++ {
		diff = !reflect.DeepEqual(base.Window(idx), drifted.Window(idx))
	}
	if !diff {
		t.Error("drifted recording never diverges after onset")
	}
	// The base home is untouched by the derivation.
	if len(base.Activities()) != len(tinySpecActs(t, base)) {
		t.Error("base activity list mutated")
	}
}

func tinySpecActs(t *testing.T, h *Home) []ActivityTemplate {
	t.Helper()
	acts, err := Activities(h.Spec().NumActivities)
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Spec().Rooms[CatHall]) > 0 {
		acts = append(acts, TransitTemplate)
	}
	return acts
}

// TestDriftValidation: a zero-activity drift and one that overruns the
// pool are rejected.
func TestDriftValidation(t *testing.T) {
	base, err := New(tinySpec(), 7)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := base.WithDrift(Drift{ExtraActivities: 0}); err == nil {
		t.Error("zero extra activities accepted")
	}
	if _, err := base.WithDrift(Drift{ExtraActivities: 999}); err == nil {
		t.Error("pool-overrunning drift accepted")
	}
}
