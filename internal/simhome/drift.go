package simhome

import "fmt"

// Drift describes a seeded behaviour change in the residents' routine:
// from FromMinute (rounded up to the next midnight — routines change
// between days, not mid-activity) the household adopts ExtraActivities
// additional ADLs from the canonical pool, beyond the spec's original
// list. The new activities exercise room states the original recording
// never produced, so a context trained before the onset sees legitimate
// state sets it has no groups for — the benign-drift condition the online
// adapter exists to absorb.
//
// Drift is NOT a fault: every post-onset window is normal behaviour, just
// behaviour the training horizon missed.
type Drift struct {
	// ExtraActivities is how many templates past the spec's NumActivities
	// the residents add (taken in pool order, so a given count is a
	// deterministic activity set).
	ExtraActivities int
	// FromMinute is the drift onset in absolute recording minutes; the
	// effective onset is the first midnight at or after it.
	FromMinute int
}

// WithDrift returns a view of the home whose residents follow the drifted
// routine. The underlying home is shared and unmodified; windows before
// the onset day are bit-identical to the base home's, so a detector can be
// trained on the shared prefix and evaluated across the change. Drift
// composes with WithActuatorFaults in either order.
func (h *Home) WithDrift(d Drift) (*Home, error) {
	if d.ExtraActivities <= 0 {
		return nil, fmt.Errorf("simhome: %s: drift needs at least 1 extra activity", h.spec.Name)
	}
	n := h.spec.NumActivities
	if n+d.ExtraActivities > len(activityPool) {
		return nil, fmt.Errorf("simhome: %s: drift wants %d activities, pool has %d",
			h.spec.Name, n+d.ExtraActivities, len(activityPool))
	}
	if d.FromMinute < 0 {
		d.FromMinute = 0
	}

	view := *h
	// The extended list appends past the base list (which already carries
	// the transit pseudo-activity when the home has a hall), so every span
	// index recorded against the base list stays valid.
	view.acts = append(append([]ActivityTemplate(nil), h.acts...), activityPool[n:n+d.ExtraActivities]...)

	// Re-resolve activity rooms over the extended list with the same
	// rotation walk New uses; the prefix assignments come out identical.
	view.actRooms = make([][]string, h.spec.Residents)
	for r := 0; r < h.spec.Residents; r++ {
		view.actRooms[r] = make([]string, len(view.acts))
		catCounts := make(map[RoomCategory]int)
		for i, a := range view.acts {
			rooms := h.spec.Rooms[a.Category]
			if a.Category == CatAway || len(rooms) == 0 {
				view.actRooms[r][i] = ""
				continue
			}
			view.actRooms[r][i] = rooms[(catCounts[a.Category]+r)%len(rooms)]
			catCounts[a.Category]++
		}
	}

	transitIdx := -1
	if len(h.spec.Rooms[CatHall]) > 0 {
		transitIdx = n
	}
	driftDay := (d.FromMinute + minutesPerDay - 1) / minutesPerDay
	total := h.spec.Hours * 60
	view.lines = make([][]span, h.spec.Residents)
	for r := range view.lines {
		view.lines[r] = buildDriftTimeline(h.acts, view.acts, h.seed, r, total, transitIdx, driftDay)
	}
	return &view, nil
}

// buildDriftTimeline is buildTimeline with a per-day activity list: days
// before driftDay schedule from the base list, days at or after it from
// the drifted list. Each day's rng is keyed on (seed, day) alone, so the
// pre-drift days reproduce the base home's spans bit for bit.
func buildDriftTimeline(base, drifted []ActivityTemplate, seed int64, resident, totalMinutes, transitIdx, driftDay int) []span {
	var out []span
	days := (totalMinutes + minutesPerDay - 1) / minutesPerDay
	for d := 0; d < days; d++ {
		acts := base
		if d >= driftDay {
			acts = drifted
		}
		day := appendDay(nil, acts, seed, d, transitIdx)
		if resident > 0 {
			day = shiftSpans(day, resident*residentLag)
		}
		out = append(out, day...)
	}
	for len(out) > 0 && out[len(out)-1].startMin >= totalMinutes {
		out = out[:len(out)-1]
	}
	if len(out) > 0 && out[len(out)-1].endMin > totalMinutes {
		out[len(out)-1].endMin = totalMinutes
	}
	return out
}
