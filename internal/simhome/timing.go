package simhome

import "repro/internal/device"

// ActuatorFirings counts each actuator's rising-edge activations over
// windows [from, to). The timing evaluation uses it to pick delayed-actuator
// targets that actually fire in the segment under test — delaying an
// actuator that never fires yields a stream byte-identical to the clean one.
func (h *Home) ActuatorFirings(from, to int) map[device.ID]int {
	if from < 0 {
		from = 0
	}
	if to > h.Windows() {
		to = h.Windows()
	}
	out := make(map[device.ID]int)
	for m := from; m < to; m++ {
		for _, a := range h.actDevs {
			if h.actuatorOn(a, m) && !h.actuatorOn(a, m-1) {
				out[a.id]++
			}
		}
	}
	return out
}

// BinaryFlips counts each binary sensor's state flips over windows
// [from, to) — the triggers a slow-degradation fault would delay.
func (h *Home) BinaryFlips(from, to int) map[device.ID]int {
	if from < 0 {
		from = 0
	}
	if to > h.Windows() {
		to = h.Windows()
	}
	out := make(map[device.ID]int)
	if to-from < 2 {
		return out
	}
	prev := h.Window(from)
	for m := from + 1; m < to; m++ {
		cur := h.Window(m)
		for slot := range cur.Binary {
			if cur.Binary[slot] != prev.Binary[slot] {
				out[h.layout.BinaryID(slot)]++
			}
		}
		prev = cur
	}
	return out
}
