package simhome

import (
	"fmt"
	"math/rand"
)

// Phase partitions the day; the scheduler only starts an activity in a
// matching phase. PhaseAny activities (toilet, snack) can start any time.
type Phase int

// Day phases.
const (
	PhaseAny Phase = iota
	PhaseNight
	PhaseMorning
	PhaseDay
	PhaseEvening
)

// phaseAt returns the phase of a minute-of-day.
func phaseAt(minOfDay int) Phase {
	switch {
	case minOfDay < 6*60 || minOfDay >= 22*60:
		return PhaseNight
	case minOfDay < 11*60:
		return PhaseMorning
	case minOfDay < 17*60:
		return PhaseDay
	default:
		return PhaseEvening
	}
}

// RoomCategory names the kind of room an activity wants; specs map
// categories onto their concrete rooms.
type RoomCategory string

// Room categories used by the activity templates.
const (
	CatBedroom  RoomCategory = "bedroom"
	CatBathroom RoomCategory = "bathroom"
	CatKitchen  RoomCategory = "kitchen"
	CatLiving   RoomCategory = "living"
	CatHall     RoomCategory = "hall"
	// CatAway is "not at home": nothing in the house reacts.
	CatAway RoomCategory = "away"
)

// ActivityTemplate describes one activity of daily living. The boolean
// flags drive sensor eligibility: pressure mats respond to Restful
// activities, flame detectors to Cooking, float switches to Water, and
// motion sensors to non-Restful occupancy.
type ActivityTemplate struct {
	Name        string
	Category    RoomCategory
	Phase       Phase
	MeanMinutes float64
	Restful     bool
	Cooking     bool
	Water       bool
}

// activityPool is the canonical ADL library; a dataset spec with N
// activities takes the first N (§4.1: each dataset has its own activity
// list; the simulated lists mirror the ISLA/WSU style of ADLs). Sleep is
// always included regardless of N because every day needs it.
var activityPool = []ActivityTemplate{
	{Name: "sleep", Category: CatBedroom, Phase: PhaseNight, MeanMinutes: 420, Restful: true},
	{Name: "toilet", Category: CatBathroom, Phase: PhaseAny, MeanMinutes: 5, Water: true},
	{Name: "shower", Category: CatBathroom, Phase: PhaseMorning, MeanMinutes: 15, Water: true},
	{Name: "breakfast", Category: CatKitchen, Phase: PhaseMorning, MeanMinutes: 20},
	{Name: "prepare-dinner", Category: CatKitchen, Phase: PhaseEvening, MeanMinutes: 35, Cooking: true},
	{Name: "dinner", Category: CatKitchen, Phase: PhaseEvening, MeanMinutes: 30},
	{Name: "watch-tv", Category: CatLiving, Phase: PhaseEvening, MeanMinutes: 90, Restful: true},
	{Name: "leave-home", Category: CatAway, Phase: PhaseDay, MeanMinutes: 180},
	{Name: "prepare-lunch", Category: CatKitchen, Phase: PhaseDay, MeanMinutes: 25, Cooking: true},
	{Name: "lunch", Category: CatKitchen, Phase: PhaseDay, MeanMinutes: 25},
	{Name: "wash-dishes", Category: CatKitchen, Phase: PhaseEvening, MeanMinutes: 15, Water: true},
	{Name: "read", Category: CatLiving, Phase: PhaseDay, MeanMinutes: 40, Restful: true},
	{Name: "dress", Category: CatBedroom, Phase: PhaseMorning, MeanMinutes: 8},
	{Name: "brush-teeth", Category: CatBathroom, Phase: PhaseMorning, MeanMinutes: 4, Water: true},
	{Name: "nap", Category: CatBedroom, Phase: PhaseDay, MeanMinutes: 45, Restful: true},
	{Name: "snack", Category: CatKitchen, Phase: PhaseAny, MeanMinutes: 8},
	{Name: "clean", Category: CatLiving, Phase: PhaseDay, MeanMinutes: 30},
	{Name: "laundry", Category: CatBathroom, Phase: PhaseDay, MeanMinutes: 20, Water: true},
	{Name: "work-desk", Category: CatLiving, Phase: PhaseDay, MeanMinutes: 120, Restful: true},
	{Name: "phone-call", Category: CatLiving, Phase: PhaseAny, MeanMinutes: 10},
	{Name: "drink", Category: CatKitchen, Phase: PhaseAny, MeanMinutes: 4},
	{Name: "listen-music", Category: CatLiving, Phase: PhaseEvening, MeanMinutes: 30, Restful: true},
	{Name: "groom", Category: CatBathroom, Phase: PhaseMorning, MeanMinutes: 10, Water: true},
	{Name: "iron", Category: CatBedroom, Phase: PhaseDay, MeanMinutes: 15},
	{Name: "exercise", Category: CatLiving, Phase: PhaseMorning, MeanMinutes: 25},
	{Name: "bake", Category: CatKitchen, Phase: PhaseDay, MeanMinutes: 50, Cooking: true},
	{Name: "pet-care", Category: CatHall, Phase: PhaseAny, MeanMinutes: 10},
	{Name: "water-plants", Category: CatLiving, Phase: PhaseMorning, MeanMinutes: 8},
	{Name: "trash", Category: CatHall, Phase: PhaseEvening, MeanMinutes: 5},
	{Name: "meditate", Category: CatBedroom, Phase: PhaseEvening, MeanMinutes: 20, Restful: true},
}

// Activities returns the first n templates from the pool, guaranteeing
// sleep is present. It errors when n exceeds the pool.
func Activities(n int) ([]ActivityTemplate, error) {
	if n < 1 {
		return nil, fmt.Errorf("simhome: need at least 1 activity")
	}
	if n > len(activityPool) {
		return nil, fmt.Errorf("simhome: %d activities requested, pool has %d", n, len(activityPool))
	}
	return append([]ActivityTemplate(nil), activityPool[:n]...), nil
}

// span is one scheduled activity instance on a resident's timeline,
// measured in minutes from the recording start. Activity NoActivity marks
// idle time.
type span struct {
	startMin int
	endMin   int // exclusive
	act      int // index into the spec's activity list, or NoActivity
}

// NoActivity marks idle minutes (resident at home, nothing scheduled).
const NoActivity = -1

// TransitTemplate is the synthetic hall-transit pseudo-activity the
// scheduler inserts at the head of every idle gap: people walk through the
// home between tasks, which is what keeps hallway sensors exercised. Its
// phase is a sentinel so the routine picker never draws it; Home appends it
// after the spec's activity list.
var TransitTemplate = ActivityTemplate{
	Name:        "transit",
	Category:    CatHall,
	Phase:       Phase(-1),
	MeanMinutes: 2,
}

// buildTimeline generates one resident's activity spans covering
// [0, totalMinutes). Days are generated from (seed, day) so any minute is
// reachable without simulating prior days; within a day the schedule is
// sequential: wake, a phase-appropriate activity mix with idle gaps, sleep.
//
// Residents beyond the first follow the household schedule with a small
// per-resident lag rather than an independent life: cohabitants share meal
// and sleep times, and independent schedules would make the joint state
// space (and hence DICE's false-positive rate) combinatorially larger than
// anything the real two-resident datasets exhibit.
// residentLag is the fixed schedule offset between cohabitants, minutes.
const residentLag = 5

// snap rounds a minute count to the schedule grid. Human routines run on
// round numbers; more importantly, a coarse grid means the relative
// alignments of spans (and of two residents' schedules) repeat across
// days, so 300 hours of precomputation actually covers the joint state
// space.
func snap(m int) int {
	const grid = 5
	s := (m + grid/2) / grid * grid
	if s < grid {
		s = grid
	}
	return s
}

func buildTimeline(acts []ActivityTemplate, seed int64, resident, totalMinutes, transitIdx int) []span {
	var out []span
	days := (totalMinutes + minutesPerDay - 1) / minutesPerDay
	for d := 0; d < days; d++ {
		day := appendDay(nil, acts, seed, d, transitIdx)
		if resident > 0 {
			// A constant lag keeps the two residents' schedules in a fixed
			// alignment, so their joint states repeat day after day.
			day = shiftSpans(day, resident*residentLag)
		}
		out = append(out, day...)
	}
	// Clip the final day.
	for len(out) > 0 && out[len(out)-1].startMin >= totalMinutes {
		out = out[:len(out)-1]
	}
	if len(out) > 0 && out[len(out)-1].endMin > totalMinutes {
		out[len(out)-1].endMin = totalMinutes
	}
	return out
}

// shiftSpans delays every span boundary inside the day by lag minutes,
// keeping the day's outer edges (midnight-to-midnight sleep) fixed.
func shiftSpans(day []span, lag int) []span {
	if len(day) < 2 {
		return day
	}
	dayStart := day[0].startMin
	dayEnd := day[len(day)-1].endMin
	for i := range day {
		if i > 0 {
			day[i].startMin = min(day[i].startMin+lag, dayEnd)
		}
		if i < len(day)-1 {
			day[i].endMin = min(day[i].endMin+lag, dayEnd)
		}
	}
	day[0].startMin = dayStart
	// Remove spans squeezed to nothing.
	out := day[:0]
	for _, s := range day {
		if s.endMin > s.startMin {
			out = append(out, s)
		}
	}
	return out
}

const minutesPerDay = 24 * 60

// sleepActivity returns the index of the sleep template in acts (always
// index 0 by construction of Activities).
func sleepActivity(acts []ActivityTemplate) int {
	for i, a := range acts {
		if a.Name == "sleep" {
			return i
		}
	}
	return 0
}

// appendGap emits an idle gap [cur, end): up to two leading minutes become
// a hall transit (when the home schedules one), the rest is quiet.
func appendGap(out *[]span, base, cur, end, transitIdx int, rng *rand.Rand) int {
	if end <= cur {
		return cur
	}
	if transitIdx >= 0 {
		t := min(cur+2, end)
		if t > cur {
			*out = append(*out, span{base + cur, base + t, transitIdx})
			cur = t
		}
	}
	if end > cur {
		*out = append(*out, span{base + cur, base + end, NoActivity})
	}
	return end
}

// nightVisitActivity returns the index of a short bathroom activity
// suitable for a night visit, or -1.
func nightVisitActivity(acts []ActivityTemplate) int {
	for i, a := range acts {
		if a.Category == CatBathroom && a.Phase == PhaseAny {
			return i
		}
	}
	return -1
}

func appendDay(out []span, acts []ActivityTemplate, seed int64, day, transitIdx int) []span {
	rng := rand.New(rand.NewSource(int64(mix(uint64(seed), 101, uint64(day)+7))))
	base := day * minutesPerDay
	sleep := sleepActivity(acts)

	// Night sleep runs from midnight to a wake time around 06:30, usually
	// broken by one short toilet visit — the only thing that exercises the
	// bathroom and hall sensors during night hours.
	wake := 6*60 + snap(rng.Intn(61))
	night := nightVisitActivity(acts)
	if night >= 0 && rng.Float64() < 0.7 {
		at := 60 + snap(rng.Intn(4*60)) // between 01:00 and 05:00
		dur := 3
		out = append(out, span{base, base + at, sleep})
		if transitIdx >= 0 {
			out = append(out, span{base + at, base + at + 1, transitIdx})
			at++
		}
		out = append(out, span{base + at, base + at + dur, night})
		out = append(out, span{base + at + dur, base + wake, sleep})
	} else {
		out = append(out, span{base, base + wake, sleep})
	}

	// Bedtime around 22:30. The last ten minutes before bed and the first
	// minutes after waking are always quiet (people potter about), so the
	// transitions into and out of sleep are funnelled through the same
	// quiet state as every other activity change.
	bed := 22*60 + snap(rng.Intn(61))
	windDown := bed - 10
	cur := appendGap(&out, base, wake, wake+5, transitIdx, rng)
	ro := newRoutine()
	for cur < windDown {
		phase := phaseAt(cur)
		idx := ro.pick(acts, rng, phase, sleep)
		if idx == NoActivity {
			// Idle gap, led by a short hall transit.
			gap := snap(5 + rng.Intn(26))
			cur = appendGap(&out, base, cur, min(cur+gap, windDown), transitIdx, rng)
			continue
		}
		dur := snap(int(acts[idx].MeanMinutes * (0.7 + 0.6*rng.Float64())))
		end := cur + dur
		if end > windDown {
			end = windDown
		}
		out = append(out, span{base + cur, base + end, idx})
		cur = end
		// A short pause always follows an activity — people transit through
		// the house between tasks. Funnelling every activity change through
		// a quiet state keeps the group-transition space linear in the
		// number of groups rather than quadratic, which is what real homes
		// look like and what makes 300 hours of precomputation sufficient.
		if cur < windDown {
			gap := snap(2 + rng.Intn(12))
			cur = appendGap(&out, base, cur, min(cur+gap, windDown), transitIdx, rng)
		}
	}
	// Quiet wind-down, then sleep to midnight.
	appendGap(&out, base, cur, bed, transitIdx, rng)
	out = append(out, span{base + bed, base + minutesPerDay, sleep})
	return out
}

// routine tracks a resident's habitual ordering of activities within a
// day. People are creatures of habit: the scheduler walks each phase's
// activities in a fixed order, with occasional substitutions and idle
// gaps, so day-to-day variation comes mostly from timing rather than from
// novel activity sequences (which would read as anomalies).
type routine struct {
	cursor map[Phase]int
}

func newRoutine() *routine {
	return &routine{cursor: make(map[Phase]int)}
}

// pick selects the next activity for the phase, or NoActivity (idle) with
// some probability. Sleep is excluded; it is scheduled explicitly.
func (ro *routine) pick(acts []ActivityTemplate, rng *rand.Rand, phase Phase, sleep int) int {
	if rng.Float64() < 0.2 {
		return NoActivity
	}
	var eligible []int
	for i, a := range acts {
		if i == sleep {
			continue
		}
		if a.Phase == PhaseAny || a.Phase == phase {
			eligible = append(eligible, i)
		}
	}
	if len(eligible) == 0 {
		return NoActivity
	}
	// Habitual order with an occasional deviation.
	if rng.Float64() < 0.03 {
		return eligible[rng.Intn(len(eligible))]
	}
	idx := eligible[ro.cursor[phase]%len(eligible)]
	ro.cursor[phase]++
	return idx
}

// activityAt returns the activity index covering minute m on a timeline
// (binary search), or NoActivity when m is uncovered.
func activityAt(tl []span, m int) int {
	lo, hi := 0, len(tl)
	for lo < hi {
		mid := (lo + hi) / 2
		switch {
		case m < tl[mid].startMin:
			hi = mid
		case m >= tl[mid].endMin:
			lo = mid + 1
		default:
			return tl[mid].act
		}
	}
	return NoActivity
}
