package simhome

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/event"
	"repro/internal/window"
)

func tinySpec() Spec {
	plan := smallRooms()
	rooms := roomsOf(plan)
	devs := binarySensors(rooms, []device.Type{device.Motion, device.DoorContact}, 6)
	devs = append(devs, numericSensors(rooms, []device.Type{device.Light, device.Temperature}, 4)...)
	devs = append(devs, DeviceSpec{"bulb-living", device.Actuator, device.SmartBulb, "living"})
	return Spec{
		Name:          "tiny",
		Hours:         48,
		Residents:     1,
		NumActivities: 8,
		Rooms:         plan,
		Devices:       devs,
	}
}

func TestNewValidation(t *testing.T) {
	s := tinySpec()
	s.Hours = 0
	if _, err := New(s, 1); err == nil {
		t.Error("zero hours accepted")
	}
	s = tinySpec()
	s.NumActivities = 999
	if _, err := New(s, 1); err == nil {
		t.Error("oversized activity count accepted")
	}
	s = tinySpec()
	s.Devices = append(s.Devices, s.Devices[0]) // duplicate name
	if _, err := New(s, 1); err == nil {
		t.Error("duplicate device accepted")
	}
}

func TestWindowDeterministic(t *testing.T) {
	h1, err := New(tinySpec(), 7)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := New(tinySpec(), 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, idx := range []int{0, 100, 999, 2879} {
		a, b := h1.Window(idx), h2.Window(idx)
		for i := range a.Binary {
			if a.Binary[i] != b.Binary[i] {
				t.Fatalf("window %d binary %d differs", idx, i)
			}
		}
		for j := range a.Numeric {
			for k := range a.Numeric[j] {
				if a.Numeric[j][k] != b.Numeric[j][k] {
					t.Fatalf("window %d numeric %d sample %d differs", idx, j, k)
				}
			}
		}
		if len(a.Actuated) != len(b.Actuated) {
			t.Fatalf("window %d actuated differs", idx)
		}
	}
}

func TestSeedChangesData(t *testing.T) {
	h1, _ := New(tinySpec(), 1)
	h2, _ := New(tinySpec(), 2)
	diff := false
	for idx := 0; idx < 500 && !diff; idx++ {
		a, b := h1.Window(idx), h2.Window(idx)
		for i := range a.Binary {
			if a.Binary[i] != b.Binary[i] {
				diff = true
			}
		}
	}
	if !diff {
		t.Error("different seeds produced identical binary streams")
	}
}

func TestWindowRandomAccessMatchesSequential(t *testing.T) {
	h, _ := New(tinySpec(), 3)
	seq := h.WindowRange(50, 60)
	for i, o := range seq {
		ra := h.Window(50 + i)
		if o.Index != ra.Index {
			t.Fatalf("index mismatch at %d", i)
		}
		for j := range o.Numeric {
			for k := range o.Numeric[j] {
				if o.Numeric[j][k] != ra.Numeric[j][k] {
					t.Fatal("random access differs from sequential")
				}
			}
		}
	}
}

func TestOccupancyDrivesSensors(t *testing.T) {
	h, _ := New(tinySpec(), 5)
	// Over two days, bedroom must be occupied at 03:00 (sleep) and motion
	// sensors should fire there far more often than in an empty room at
	// that hour.
	night := 3 * 60
	if !h.ActivityInRoom("bedroom", night) {
		t.Error("bedroom unoccupied at 03:00 (sleep missing)")
	}
	if h.ActivityInRoom("kitchen", night) {
		t.Error("kitchen occupied at 03:00")
	}
}

func TestNumericQuiescentWindowsAreConstant(t *testing.T) {
	h, _ := New(tinySpec(), 5)
	// Count windows where a numeric sensor has non-constant samples; with
	// noise at resolution/8 this must be rare.
	flickers, total := 0, 0
	for idx := 0; idx < 1440; idx++ {
		o := h.Window(idx)
		for _, samples := range o.Numeric {
			total++
			for _, s := range samples[1:] {
				if s != samples[0] {
					flickers++
					break
				}
			}
		}
	}
	// Room transitions legitimately change values BETWEEN windows, not
	// within, so any within-window flicker is quantization noise.
	if rate := float64(flickers) / float64(total); rate > 0.02 {
		t.Errorf("within-window flicker rate %.4f, want <= 0.02", rate)
	}
}

func TestActuatorRisingEdgesOnly(t *testing.T) {
	h, _ := New(tinySpec(), 5)
	// The bulb turns on when the living room is occupied at low daylight;
	// it must appear in Actuated only on state changes, so consecutive
	// windows cannot both list it.
	prev := false
	for idx := 0; idx < 2880; idx++ {
		o := h.Window(idx)
		fired := len(o.Actuated) > 0
		if fired && prev {
			t.Fatalf("actuator fired in consecutive windows at %d", idx)
		}
		prev = fired
	}
}

func TestEventsRoundTripThroughWindower(t *testing.T) {
	h, _ := New(tinySpec(), 9)
	const n = 120
	evts := h.Events(0, n)
	if !event.IsSorted(evts) {
		t.Fatal("Events output not sorted")
	}
	obs, err := window.FromEvents(h.Layout(), time.Minute, evts, n*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if len(obs) != n {
		t.Fatalf("windowed %d observations, want %d", len(obs), n)
	}
	// Binary activations and actuations must match the direct windows;
	// numeric samples match as multisets per window.
	for i := 0; i < n; i++ {
		direct := h.Window(i)
		for s := range direct.Binary {
			if direct.Binary[s] != obs[i].Binary[s] {
				t.Fatalf("window %d binary slot %d mismatch", i, s)
			}
		}
		if len(direct.Actuated) != len(obs[i].Actuated) {
			t.Fatalf("window %d actuated mismatch: %v vs %v", i, direct.Actuated, obs[i].Actuated)
		}
		for j := range direct.Numeric {
			if len(direct.Numeric[j]) != len(obs[i].Numeric[j]) {
				t.Fatalf("window %d numeric slot %d sample count mismatch", i, j)
			}
		}
	}
}

func TestAllSpecsInstantiate(t *testing.T) {
	for _, s := range AllSpecs() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			h, err := New(s, 1)
			if err != nil {
				t.Fatal(err)
			}
			reg := h.Registry()
			wantCounts := map[string][3]int{
				"houseA": {14, 0, 0}, "houseB": {27, 0, 0}, "houseC": {23, 0, 0},
				"twor": {68, 3, 0}, "hh102": {33, 79, 0},
				"D_houseA": {6, 31, 8}, "D_houseB": {6, 31, 8}, "D_houseC": {6, 31, 8},
				"D_twor": {6, 31, 8}, "D_hh102": {6, 31, 8},
			}
			w := wantCounts[s.Name]
			if reg.NumBinary() != w[0] || reg.NumNumeric() != w[1] || reg.NumActuators() != w[2] {
				t.Errorf("%s device counts = %d/%d/%d, want %d/%d/%d (Table 4.1)",
					s.Name, reg.NumBinary(), reg.NumNumeric(), reg.NumActuators(), w[0], w[1], w[2])
			}
			// Spot check one window.
			o := h.Window(0)
			if len(o.Binary) != reg.NumBinary() || len(o.Numeric) != reg.NumNumeric() {
				t.Error("window shape mismatch")
			}
		})
	}
}

func TestSpecByName(t *testing.T) {
	s, err := SpecByName("twor")
	if err != nil || s.Name != "twor" {
		t.Errorf("SpecByName(twor) = %v, %v", s.Name, err)
	}
	if _, err := SpecByName("nope"); err == nil {
		t.Error("unknown name accepted")
	}
	if len(ThirdPartyNames())+len(TestbedNames()) != len(AllSpecs()) {
		t.Error("name lists disagree with AllSpecs")
	}
}

// TestContextLearnable is the pivotal integration check: training DICE on a
// simulated home must produce a BOUNDED group catalogue (state sets recur)
// and near-zero violations on held-out fault-free data.
func TestContextLearnable(t *testing.T) {
	if testing.Short() {
		t.Skip("training integration test")
	}
	spec := tinySpec()
	spec.Hours = 14 * 24 // 14 days
	h, err := New(spec, 11)
	if err != nil {
		t.Fatal(err)
	}
	trainWindows := 10 * 24 * 60 // 10 days training
	tr := core.NewTrainer(h.Layout(), time.Minute)
	for i := 0; i < trainWindows; i++ {
		if err := tr.Calibrate(h.Window(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.FinishCalibration(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < trainWindows; i++ {
		if err := tr.Learn(h.Window(i)); err != nil {
			t.Fatal(err)
		}
	}
	ctx, err := tr.Context()
	if err != nil {
		t.Fatal(err)
	}
	if g := ctx.NumGroups(); g < 4 || g > 3000 {
		t.Errorf("group count %d out of sane range [4, 3000]", g)
	}
	deg := ctx.CorrelationDegree()
	if deg <= 0.3 || deg > float64(h.Registry().NumSensors()) {
		t.Errorf("correlation degree %.2f implausible", deg)
	}

	det, err := core.New(ctx)
	if err != nil {
		t.Fatal(err)
	}
	violations := 0
	tested := 0
	for i := trainWindows; i < h.Windows(); i++ {
		res, err := det.Process(h.Window(i))
		if err != nil {
			t.Fatal(err)
		}
		tested++
		if res.Detected {
			violations++
		}
	}
	if rate := float64(violations) / float64(tested); rate > 0.02 {
		t.Errorf("held-out violation rate %.4f (%d/%d), want <= 0.02",
			rate, violations, tested)
	}
}

func BenchmarkWindowTiny(b *testing.B) {
	h, err := New(tinySpec(), 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Window(i % h.Windows())
	}
}

func BenchmarkWindowHH102(b *testing.B) {
	h, err := New(SpecHH102(), 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Window(i % h.Windows())
	}
}
