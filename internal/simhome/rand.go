package simhome

import "math"

// Deterministic hashing underlies every random draw in the simulator: a
// sample is a pure function of (seed, device, window, sampleIndex), so any
// window of any dataset can be regenerated in O(1) without materializing
// the recording. This is the substitution mechanism described in DESIGN.md.

// splitmix64 is the finalizer from Vigna's SplitMix64 generator.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// mix folds several keys into one well-distributed 64-bit hash.
func mix(parts ...uint64) uint64 {
	h := uint64(0x8A91_7C6B_5D3E_1F2A)
	for _, p := range parts {
		h = splitmix64(h ^ p)
	}
	return h
}

// uniform maps a hash to [0, 1).
func uniform(h uint64) float64 {
	return float64(h>>11) / (1 << 53)
}

// gauss maps a hash to a standard normal deviate via Box-Muller, deriving
// the second uniform from a re-hash.
func gauss(h uint64) float64 {
	u1 := uniform(h)
	u2 := uniform(splitmix64(h))
	if u1 < 1e-300 {
		u1 = 1e-300
	}
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}
