package simhome

import (
	"reflect"
	"testing"
)

// A vacation view holds every room unoccupied for the interval and leaves
// the rest of the recording untouched; the base home is unmodified.
func TestWithOccupancyVacation(t *testing.T) {
	h, err := New(SpecDTwoR(), 11)
	if err != nil {
		t.Fatal(err)
	}
	from, to := 10*60, 17*60
	v := h.WithOccupancy(OccupancyChange{VacationFrom: from, VacationTo: to})
	for m := from; m < to; m += 30 {
		for _, room := range []string{"roomA", "roomB", "hall"} {
			if v.occupied(room, m) {
				t.Fatalf("minute %d: %s occupied during vacation", m, room)
			}
		}
		if v.cookingAnywhere(m) {
			t.Fatalf("minute %d: cooking during vacation", m)
		}
	}
	differs := false
	for m := 0; m < h.Windows(); m++ {
		inVac := m >= from && m < to
		for _, room := range []string{"roomA", "roomB", "hall"} {
			base := h.occupied(room, m)
			if !inVac && v.occupied(room, m) != base {
				t.Fatalf("minute %d: occupancy differs outside the vacation", m)
			}
			if inVac && base {
				differs = true
			}
		}
	}
	if !differs {
		t.Fatal("vacation interval never suppressed any occupancy")
	}
}

// A guest shadowing the household routine is occupancy-invisible: the
// occupancy union (and hence every generated window) matches the plain
// household, which is exactly why the scenario must not alert.
func TestWithOccupancyGuestFollowsRoutine(t *testing.T) {
	h, err := New(SpecDTwoR(), 11)
	if err != nil {
		t.Fatal(err)
	}
	g := h.WithOccupancy(OccupancyChange{GuestFrom: 8 * 60, GuestTo: 20 * 60})
	if g.occupantCount() != h.occupantCount()+1 {
		t.Fatalf("guest view has %d occupants, want %d", g.occupantCount(), h.occupantCount()+1)
	}
	for m := 0; m < h.Windows(); m += 7 {
		want := h.Window(m)
		got := g.Window(m)
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("window %d differs under a routine-following guest", m)
		}
	}
}
