// Package simhome is the smart-home substrate: a deterministic simulator
// that generates the sensor/actuator recordings DICE is evaluated on. It
// stands in for the ISLA/WSU public datasets and the paper's POSTECH
// testbed (see DESIGN.md §2 for the substitution argument): residents
// follow phase-structured activity schedules; binary sensors fire
// probabilistically near activities; numeric sensors follow per-type value
// models with quantized reporting; actuators obey the rule wiring described
// in §4.1.2 (bulbs on motion at night, fan on heat, blinds on light level).
//
// Every sample is a pure function of (seed, device, window, sample index),
// so any window of any dataset can be regenerated in O(1) and experiments
// are reproducible bit for bit.
package simhome

import (
	"fmt"
	"time"

	"repro/internal/device"
	"repro/internal/event"
	"repro/internal/window"
)

// DeviceSpec declares one device of a deployment.
type DeviceSpec struct {
	Name string
	Kind device.Kind
	Type device.Type
	Room string
}

// Spec describes a complete dataset to simulate (one row of Table 4.1).
type Spec struct {
	// Name is the dataset name (e.g. "houseA", "D_hh102").
	Name string
	// Hours is the recording length.
	Hours int
	// Residents is the number of independently scheduled occupants.
	Residents int
	// NumActivities selects how many ADL templates the residents perform.
	NumActivities int
	// SamplesPerWindow is how many readings a numeric sensor reports per
	// one-minute window.
	SamplesPerWindow int
	// DiurnalScale damps the outdoor daylight influence on numeric sensors
	// (0 = fully indoor/controlled, 1 = full curve).
	DiurnalScale float64
	// NumericResponse is the fraction of a room's numeric sensors that
	// react to activity in the room (sensor-chosen deterministically).
	// It models sparse instrumented deployments like hh102 where most
	// modules sit far from the action.
	NumericResponse float64
	// Rooms maps activity room categories to the concrete rooms of this
	// home.
	Rooms map[RoomCategory][]string
	// Devices is the deployment.
	Devices []DeviceSpec
}

// Home is an instantiated simulated smart home.
type Home struct {
	spec   Spec
	seed   int64
	reg    *device.Registry
	layout *window.Layout

	acts     []ActivityTemplate
	actRooms [][]string // concrete room per activity, per resident ("" for away)
	lines    [][]span   // one timeline per resident

	binDevs []binDev
	numDevs []numDev
	actDevs []actDev

	// af carries injected actuator faults (nil when fault-free).
	af *ActuatorFaults
	// occ carries a benign occupancy change (nil for the plain household).
	occ *OccupancyChange
}

type binDev struct {
	id   device.ID
	room string
}

type numDev struct {
	id       device.ID
	room     string
	model    numericModel
	responds bool
}

type actDev struct {
	id   device.ID
	room string
	typ  device.Type
}

// New instantiates a home from a spec and a seed.
func New(spec Spec, seed int64) (*Home, error) {
	if spec.Hours <= 0 {
		return nil, fmt.Errorf("simhome: %s: non-positive hours", spec.Name)
	}
	if spec.Residents <= 0 {
		spec.Residents = 1
	}
	if spec.SamplesPerWindow <= 0 {
		spec.SamplesPerWindow = 4
	}
	if spec.NumericResponse <= 0 {
		spec.NumericResponse = 1
	}
	acts, err := Activities(spec.NumActivities)
	if err != nil {
		return nil, fmt.Errorf("simhome: %s: %w", spec.Name, err)
	}

	reg := device.NewRegistry()
	for _, d := range spec.Devices {
		if _, err := reg.Add(d.Name, d.Kind, d.Type, d.Room); err != nil {
			return nil, fmt.Errorf("simhome: %s: %w", spec.Name, err)
		}
	}
	layout := window.NewLayout(reg)

	// The hall-transit pseudo-activity joins the activity list whenever the
	// home has a hall to walk through.
	transitIdx := -1
	if len(spec.Rooms[CatHall]) > 0 {
		transitIdx = len(acts)
		acts = append(acts, TransitTemplate)
	}

	h := &Home{
		spec:   spec,
		seed:   seed,
		reg:    reg,
		layout: layout,
		acts:   acts,
	}

	// Resolve each activity template to a concrete room, per resident:
	// when a category has several rooms (two bedrooms), residents rotate
	// through them so each has their own.
	h.actRooms = make([][]string, spec.Residents)
	for r := 0; r < spec.Residents; r++ {
		h.actRooms[r] = make([]string, len(acts))
		catCounts := make(map[RoomCategory]int)
		for i, a := range acts {
			rooms := spec.Rooms[a.Category]
			if a.Category == CatAway || len(rooms) == 0 {
				h.actRooms[r][i] = ""
				continue
			}
			h.actRooms[r][i] = rooms[(catCounts[a.Category]+r)%len(rooms)]
			catCounts[a.Category]++
		}
	}

	// Resident timelines.
	total := spec.Hours * 60
	h.lines = make([][]span, spec.Residents)
	for r := range h.lines {
		h.lines[r] = buildTimeline(acts, seed, r, total, transitIdx)
	}

	// Device models.
	for _, id := range reg.Binaries() {
		d := reg.MustGet(id)
		h.binDevs = append(h.binDevs, binDev{id: id, room: d.Room})
	}
	for _, id := range reg.Numerics() {
		d := reg.MustGet(id)
		responds := uniform(mix(uint64(seed), 0xDEAD, uint64(id))) < spec.NumericResponse
		h.numDevs = append(h.numDevs, numDev{
			id:       id,
			room:     d.Room,
			model:    numericModelFor(d.Type, spec.DiurnalScale),
			responds: responds,
		})
	}
	for _, id := range reg.Actuators() {
		d := reg.MustGet(id)
		h.actDevs = append(h.actDevs, actDev{id: id, room: d.Room, typ: d.Type})
	}
	return h, nil
}

// Spec returns the spec the home was built from.
func (h *Home) Spec() Spec { return h.spec }

// Registry returns the device registry.
func (h *Home) Registry() *device.Registry { return h.reg }

// Layout returns the window layout for the deployment.
func (h *Home) Layout() *window.Layout { return h.layout }

// Windows returns the total number of one-minute windows in the recording.
func (h *Home) Windows() int { return h.spec.Hours * 60 }

// Activities returns the resolved activity list (template + concrete room).
func (h *Home) Activities() []ActivityTemplate { return append([]ActivityTemplate(nil), h.acts...) }

// OccupancyChange describes a benign shift in who is home: a guest staying
// over, a vacation emptying the house, or both. These are occupancy-level
// stresses — no device misbehaves — so a detector that alerts on them is
// raising a false alarm. Guests adopt the household's routine (they shadow
// the last resident's schedule for the length of their stay), the pattern
// a context trained on that household has already seen; a vacation holds
// every resident in the away state for the interval, the same state the
// leave-home activity trains, just dwelt in longer.
type OccupancyChange struct {
	// GuestFrom/GuestTo bound the guest's stay in absolute recording
	// minutes (GuestFrom <= m < GuestTo). GuestTo <= GuestFrom means no
	// guest.
	GuestFrom, GuestTo int
	// VacationFrom/VacationTo bound the interval during which every
	// resident is away. VacationTo <= VacationFrom means no vacation.
	VacationFrom, VacationTo int
}

// WithOccupancy returns a view of the home under the given occupancy
// change. The underlying home is shared and unmodified, mirroring
// WithActuatorFaults.
func (h *Home) WithOccupancy(oc OccupancyChange) *Home {
	view := *h
	view.occ = &oc
	return &view
}

// occupantCount counts schedule slots: the residents plus the guest when
// one is configured.
func (h *Home) occupantCount() int {
	n := len(h.lines)
	if h.occ != nil && h.occ.GuestTo > h.occ.GuestFrom {
		n++
	}
	return n
}

// occupantActivity resolves occupant i's activity at minute m and the
// activity-to-room mapping that applies to them. Residents go away during a
// vacation; the extra slot beyond the residents is the guest, present only
// during their stay.
func (h *Home) occupantActivity(i, m int) (int, []string) {
	if i < len(h.lines) {
		if h.occ != nil && m >= h.occ.VacationFrom && m < h.occ.VacationTo {
			return NoActivity, nil
		}
		return activityAt(h.lines[i], m), h.actRooms[i]
	}
	if h.occ == nil || m < h.occ.GuestFrom || m >= h.occ.GuestTo {
		return NoActivity, nil
	}
	last := len(h.lines) - 1
	return activityAt(h.lines[last], m), h.actRooms[last]
}

// occupied reports whether any occupant's activity at minute m takes place
// in the given room.
func (h *Home) occupied(room string, m int) bool {
	if room == "" || m < 0 || m >= h.Windows() {
		return false
	}
	for i := 0; i < h.occupantCount(); i++ {
		act, rooms := h.occupantActivity(i, m)
		if act != NoActivity && rooms[act] == room {
			return true
		}
	}
	return false
}

// roomStateAt derives the full room state at minute m from every occupant's
// schedule.
func (h *Home) roomStateAt(room string, m int) roomState {
	var rs roomState
	if room == "" || m < 0 || m >= h.Windows() {
		return rs
	}
	for i := 0; i < h.occupantCount(); i++ {
		act, rooms := h.occupantActivity(i, m)
		if act == NoActivity || rooms[act] != room {
			continue
		}
		rs.occupied = true
		t := h.acts[act]
		if t.Restful {
			rs.restful = true
		}
		if t.Cooking {
			rs.cooking = true
		}
		if t.Water {
			rs.water = true
		}
	}
	if rs.occupied {
		rs.entering = !h.occupied(room, m-1)
		rs.leaving = !h.occupied(room, m+1)
	}
	return rs
}

// activeOccupied reports non-restful occupancy (someone awake and moving in
// the room), the condition motion-triggered actuators key on.
func (h *Home) activeOccupied(room string, m int) bool {
	rs := h.roomStateAt(room, m)
	return rs.occupied && !rs.restful
}

// restfulOccupied reports restful occupancy (sleep, TV, reading) in the
// room; comfort actuators key on it.
func (h *Home) restfulOccupied(room string, m int) bool {
	rs := h.roomStateAt(room, m)
	return rs.occupied && rs.restful
}

// cookingAnywhere reports whether a cooking activity is in progress in any
// room at minute m (the fan switch keys on kitchen heat).
func (h *Home) cookingAnywhere(m int) bool {
	if m < 0 || m >= h.Windows() {
		return false
	}
	for i := 0; i < h.occupantCount(); i++ {
		act, _ := h.occupantActivity(i, m)
		if act != NoActivity && h.acts[act].Cooking {
			return true
		}
	}
	return false
}

// ActivityInRoom exposes occupancy for tests and examples.
func (h *Home) ActivityInRoom(room string, minute int) bool { return h.occupied(room, minute) }

// ActuatorFaults injects actuator-level faults with physical consequences:
// a dead actuator never activates (and its effects — a bulb's light — never
// reach the sensors), while a spurious one also self-activates at random.
// Observation-level injection (internal/faults) cannot express this,
// because by the time an observation exists the actuator's effect is baked
// into the sensor readings.
type ActuatorFaults struct {
	// Dead actuators never turn on from FromMinute onward.
	Dead map[device.ID]bool
	// Spurious actuators additionally self-activate at random (~40% of
	// minutes) from FromMinute onward.
	Spurious map[device.ID]bool
	// Seed drives the spurious activations.
	Seed int64
	// FromMinute is the fault onset, in absolute recording minutes.
	FromMinute int
}

// WithActuatorFaults returns a view of the home whose actuators carry the
// given faults. The underlying home is shared and unmodified.
func (h *Home) WithActuatorFaults(af ActuatorFaults) *Home {
	view := *h
	view.af = &af
	return &view
}

// actuatorOn evaluates an actuator's rule at minute m (§4.1.2 wiring),
// then applies any injected actuator fault.
func (h *Home) actuatorOn(a actDev, m int) bool {
	if h.af != nil && m >= h.af.FromMinute {
		if h.af.Dead[a.id] {
			return false
		}
		if h.af.Spurious[a.id] &&
			uniform(mix(uint64(h.af.Seed), 5, uint64(a.id), uint64(m))) < 0.4 {
			return true
		}
	}
	return h.actuatorRule(a, m)
}

// actuatorRule is the fault-free §4.1.2 wiring.
func (h *Home) actuatorRule(a actDev, m int) bool {
	if m < 0 {
		return false
	}
	switch a.typ {
	case device.SmartBulb:
		// Hue-style: motion-triggered light (§4.1.2 states no darkness
		// condition), so restful occupancy (sleep, settled TV watching)
		// keeps it off and any active occupancy lights it.
		return h.activeOccupied(a.room, m)
	case device.FanController, device.SmartSwitch:
		// WeMo-style switch driving a fan off the kitchen temperature:
		// runs while cooking heats the home.
		return h.cookingAnywhere(m)
	case device.HumidifierSwitch:
		// Humidifier runs while its room is occupied restfully (sleeping).
		return h.restfulOccupied(a.room, m)
	case device.SmartBlind:
		// Blinds close for privacy while the room is restfully occupied
		// (the paper keys them on the light sensor and privacy; a closed
		// blind blocks daylight, which is what makes a stuck blind
		// observable).
		return h.restfulOccupied(a.room, m)
	case device.SmartSpeaker:
		// Echo-style speaker plays while someone relaxes in its room.
		return h.restfulOccupied(a.room, m)
	default:
		return false
	}
}

// roomEffects summarizes which actuator effects act on a room at minute m.
type roomEffects struct {
	bulb       bool
	speaker    bool
	humidifier bool
	fan        bool
	blind      bool
}

// effectsAt computes the actuator effects on a room at minute m.
func (h *Home) effectsAt(room string, m int) roomEffects {
	var e roomEffects
	for _, a := range h.actDevs {
		if a.room != room || !h.actuatorOn(a, m) {
			continue
		}
		switch a.typ {
		case device.SmartBulb:
			e.bulb = true
		case device.SmartSpeaker:
			e.speaker = true
		case device.HumidifierSwitch:
			e.humidifier = true
		case device.FanController, device.SmartSwitch:
			e.fan = true
		case device.SmartBlind:
			e.blind = true
		}
	}
	return e
}

// bulbOn reports whether any smart bulb lights the room at minute m.
func (h *Home) bulbOn(room string, m int) bool {
	return h.effectsAt(room, m).bulb
}

// Window generates the observation for window idx (minute idx). It is safe
// for concurrent use: generation is purely functional.
func (h *Home) Window(idx int) *window.Observation {
	o := h.layout.NewObservation(idx)
	// Room states are shared by every sensor in the room; compute lazily.
	states := make(map[string]roomState)
	stateOf := func(room string) roomState {
		if rs, ok := states[room]; ok {
			return rs
		}
		rs := h.roomStateAt(room, idx)
		states[room] = rs
		return rs
	}
	// Binary sensors: near-deterministic response with rare independent
	// misses and rarer spurious firings.
	for slot, b := range h.binDevs {
		d := h.reg.MustGet(b.id)
		u := uniform(mix(uint64(h.seed), 1, uint64(b.id), uint64(idx)))
		if binaryEligible(d.Type, stateOf(b.room)) {
			o.Binary[slot] = u >= missProb
		} else {
			o.Binary[slot] = u < falseFireProb
		}
	}
	// Numeric sensors.
	minOfDay := idx % minutesPerDay
	dl := daylight(minOfDay)
	effects := make(map[string]roomEffects)
	effectOf := func(room string) roomEffects {
		if e, ok := effects[room]; ok {
			return e
		}
		e := h.effectsAt(room, idx)
		effects[room] = e
		return e
	}
	for slot, n := range h.numDevs {
		m := n.model
		d := h.reg.MustGet(n.id)
		eff := effectOf(n.room)
		diurnal := m.diurnalAmp * dl
		if d.Type == device.Light && eff.blind {
			diurnal *= blindDaylightFactor
		}
		v := m.base + diurnal
		if n.responds && numericEligible(d.Type, stateOf(n.room)) {
			miss := uniform(mix(uint64(h.seed), 4, uint64(n.id), uint64(idx))) < missProb
			if !miss {
				v += m.actBoost
			}
		}
		if m.bulbBoost != 0 && eff.bulb {
			v += m.bulbBoost
		}
		switch d.Type {
		case device.Sound:
			if eff.speaker {
				v += speakerSoundBoost
			}
		case device.Humidity:
			if eff.humidifier {
				v += humidifierHumidBoost
			}
		case device.Temperature:
			if eff.fan {
				v += fanTempCool
			}
		}
		samples := make([]float64, h.spec.SamplesPerWindow)
		for i := range samples {
			noise := gauss(mix(uint64(h.seed), 2, uint64(n.id), uint64(idx), uint64(i))) * m.noiseSD
			samples[i] = quantize(v+noise, m.resolution)
		}
		o.Numeric[slot] = samples
	}
	// Actuators: rising edges only.
	for _, a := range h.actDevs {
		if h.actuatorOn(a, idx) && !h.actuatorOn(a, idx-1) {
			o.Actuated = append(o.Actuated, a.id)
		}
	}
	return o
}

// WindowRange generates windows [from, to).
func (h *Home) WindowRange(from, to int) []*window.Observation {
	if from < 0 {
		from = 0
	}
	if to > h.Windows() {
		to = h.Windows()
	}
	out := make([]*window.Observation, 0, max(0, to-from))
	for i := from; i < to; i++ {
		out = append(out, h.Window(i))
	}
	return out
}

// Events renders windows [from, to) as a sorted event stream, for dataset
// persistence and for replaying a home through the CoAP gateway. Binary
// firings land at a hashed second within their minute; numeric samples are
// evenly spaced; actuator activations land at the window start.
func (h *Home) Events(from, to int) []event.Event {
	var evts []event.Event
	if from < 0 {
		from = 0
	}
	if to > h.Windows() {
		to = h.Windows()
	}
	for idx := from; idx < to; idx++ {
		o := h.Window(idx)
		base := time.Duration(idx) * time.Minute
		for _, id := range o.Actuated {
			evts = append(evts, event.Event{At: base, Device: id, Value: 1})
		}
		for slot, fired := range o.Binary {
			if !fired {
				continue
			}
			id := h.layout.BinaryID(slot)
			sec := uniform(mix(uint64(h.seed), 3, uint64(id), uint64(idx))) * 59
			evts = append(evts, event.Event{
				At:     base + time.Duration(sec*float64(time.Second)),
				Device: id,
				Value:  1,
			})
		}
		for slot, samples := range o.Numeric {
			id := h.layout.NumericID(slot)
			step := time.Minute / time.Duration(len(samples)+1)
			for i, s := range samples {
				evts = append(evts, event.Event{
					At:     base + time.Duration(i+1)*step,
					Device: id,
					Value:  s,
				})
			}
		}
	}
	event.Sort(evts)
	return evts
}
