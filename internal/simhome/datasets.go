package simhome

import (
	"fmt"
	"strings"

	"repro/internal/device"
)

// The ten dataset specs of Table 4.1. The five third-party datasets
// (houseA/B/C from ISLA, twor/hh102 from WSU CASAS) are simulated with
// deployments matching their published sensor counts and activity list
// sizes; the five D_* datasets replicate the paper's own testbed (6 binary
// sensors, 31 numeric sensors, 8 actuators) while imitating each
// third-party dataset's activity list, exactly as §4.1.2 describes.
//
// Per-spec co-activation parameters (sensor mix, rooms, NumericResponse)
// are chosen so the resulting correlation degrees reproduce the ordering of
// Table 5.2: houseA lowest, D_* highest.

// smallRooms is the room plan used by the compact houses.
func smallRooms() map[RoomCategory][]string {
	return map[RoomCategory][]string{
		CatBedroom:  {"bedroom"},
		CatBathroom: {"bathroom"},
		CatKitchen:  {"kitchen"},
		CatLiving:   {"living"},
		CatHall:     {"hall"},
	}
}

// twoBedroomRooms is the plan for the two-resident homes.
func twoBedroomRooms() map[RoomCategory][]string {
	return map[RoomCategory][]string{
		CatBedroom:  {"bedroom1", "bedroom2"},
		CatBathroom: {"bathroom"},
		CatKitchen:  {"kitchen"},
		CatLiving:   {"living"},
		CatHall:     {"hall"},
	}
}

// roomsOf flattens the distinct concrete rooms of a plan in a stable order.
func roomsOf(plan map[RoomCategory][]string) []string {
	var out []string
	seen := make(map[string]bool)
	for _, cat := range []RoomCategory{CatBedroom, CatBathroom, CatKitchen, CatLiving, CatHall} {
		for _, r := range plan[cat] {
			if !seen[r] {
				seen[r] = true
				out = append(out, r)
			}
		}
	}
	return out
}

// suitableRooms filters a room list to the rooms where a binary sensor
// type can actually trigger: a float switch in a living room or a pressure
// mat in a kitchen would never fire and its faults would be undetectable by
// construction.
func suitableRooms(t device.Type, rooms []string) []string {
	var want []string
	switch t {
	case device.PressureMat:
		want = []string{"bedroom", "living"}
	case device.FloatSwitch:
		want = []string{"bathroom", "kitchen"}
	case device.FlameDetector:
		want = []string{"kitchen"}
	default:
		return rooms
	}
	var out []string
	for _, r := range rooms {
		for _, w := range want {
			if strings.HasPrefix(r, w) {
				out = append(out, r)
				break
			}
		}
	}
	if len(out) == 0 {
		return rooms
	}
	return out
}

// binarySensors spreads n binary sensors across rooms, cycling the given
// type mix and keeping each type in rooms where it can trigger.
func binarySensors(rooms []string, types []device.Type, n int) []DeviceSpec {
	out := make([]DeviceSpec, 0, n)
	perType := make(map[device.Type]int)
	for i := 0; i < n; i++ {
		// Each pass over the rooms places one sensor type, so a room gets a
		// mix of types regardless of how the two list lengths divide.
		t := types[(i/len(rooms))%len(types)]
		suitable := suitableRooms(t, rooms)
		room := suitable[perType[t]%len(suitable)]
		perType[t]++
		out = append(out, DeviceSpec{
			Name: fmt.Sprintf("%s-%s-%d", t, room, i),
			Kind: device.Binary,
			Type: t,
			Room: room,
		})
	}
	return out
}

// numericSensors spreads n numeric sensors across rooms, cycling the type
// mix.
func numericSensors(rooms []string, types []device.Type, n int) []DeviceSpec {
	out := make([]DeviceSpec, 0, n)
	for i := 0; i < n; i++ {
		t := types[(i/len(rooms))%len(types)]
		room := rooms[i%len(rooms)]
		out = append(out, DeviceSpec{
			Name: fmt.Sprintf("%s-%s-%d", t, room, i),
			Kind: device.Numeric,
			Type: t,
			Room: room,
		})
	}
	return out
}

// diceTestbedDevices reproduces the paper's deployment (Figure 4.1):
// 6 binary sensors, 31 numeric sensors, 8 actuators across four main rooms
// plus a hall.
func diceTestbedDevices() []DeviceSpec {
	var out []DeviceSpec
	mainRooms := []string{"kitchen", "bathroom", "bedroom", "living"}
	// 6 binary: four motion (one per main room), flame + float in kitchen/
	// bathroom.
	for i, r := range mainRooms {
		out = append(out, DeviceSpec{fmt.Sprintf("motion-%s-%d", r, i), device.Binary, device.Motion, r})
	}
	out = append(out,
		DeviceSpec{"flame-kitchen", device.Binary, device.FlameDetector, "kitchen"},
		DeviceSpec{"float-bathroom", device.Binary, device.FloatSwitch, "bathroom"},
	)
	// 31 numeric: light/temperature/humidity/sound in each main room (16),
	// ultrasonic in kitchen/living/hall (3), gas in kitchen (1), weight on
	// bed and couch (2), RSSI beacons in the four main rooms (4), plus
	// light/temp/humidity/sound/ultrasonic in the hall (5).
	for _, r := range mainRooms {
		out = append(out,
			DeviceSpec{"light-" + r, device.Numeric, device.Light, r},
			DeviceSpec{"temp-" + r, device.Numeric, device.Temperature, r},
			DeviceSpec{"humid-" + r, device.Numeric, device.Humidity, r},
			DeviceSpec{"sound-" + r, device.Numeric, device.Sound, r},
		)
	}
	out = append(out,
		DeviceSpec{"ultra-kitchen", device.Numeric, device.Ultrasonic, "kitchen"},
		DeviceSpec{"ultra-living", device.Numeric, device.Ultrasonic, "living"},
		DeviceSpec{"ultra-hall", device.Numeric, device.Ultrasonic, "hall"},
		DeviceSpec{"gas-kitchen", device.Numeric, device.Gas, "kitchen"},
		DeviceSpec{"weight-bedroom", device.Numeric, device.Weight, "bedroom"},
		DeviceSpec{"weight-living", device.Numeric, device.Weight, "living"},
	)
	for _, r := range mainRooms {
		out = append(out, DeviceSpec{"rssi-" + r, device.Numeric, device.RSSI, r})
	}
	out = append(out,
		DeviceSpec{"light-hall", device.Numeric, device.Light, "hall"},
		DeviceSpec{"temp-hall", device.Numeric, device.Temperature, "hall"},
		DeviceSpec{"humid-hall", device.Numeric, device.Humidity, "hall"},
		DeviceSpec{"sound-hall", device.Numeric, device.Sound, "hall"},
		DeviceSpec{"ultra-hall2", device.Numeric, device.Ultrasonic, "hall"},
	)
	// 8 actuators: three Hue bulbs, two WeMo switches (fan + humidifier),
	// two blinds, one Echo speaker (§4.1.2).
	out = append(out,
		DeviceSpec{"bulb-bedroom", device.Actuator, device.SmartBulb, "bedroom"},
		DeviceSpec{"bulb-living", device.Actuator, device.SmartBulb, "living"},
		DeviceSpec{"bulb-kitchen", device.Actuator, device.SmartBulb, "kitchen"},
		DeviceSpec{"fan-living", device.Actuator, device.FanController, "living"},
		DeviceSpec{"humidifier-bedroom", device.Actuator, device.HumidifierSwitch, "bedroom"},
		DeviceSpec{"blind-bedroom", device.Actuator, device.SmartBlind, "bedroom"},
		DeviceSpec{"blind-living", device.Actuator, device.SmartBlind, "living"},
		DeviceSpec{"speaker-living", device.Actuator, device.SmartSpeaker, "living"},
	)
	return out
}

// diceRooms is the room plan for the D_* testbed.
func diceRooms() map[RoomCategory][]string {
	return map[RoomCategory][]string{
		CatBedroom:  {"bedroom"},
		CatBathroom: {"bathroom"},
		CatKitchen:  {"kitchen"},
		CatLiving:   {"living"},
		CatHall:     {"hall"},
	}
}

// diceSpec builds a D_* spec imitating the named third-party dataset.
func diceSpec(name string, hours, activities, residents int) Spec {
	return Spec{
		Name:             name,
		Hours:            hours,
		Residents:        residents,
		NumActivities:    activities,
		SamplesPerWindow: 4,
		NumericResponse:  1,
		Rooms:            diceRooms(),
		Devices:          diceTestbedDevices(),
	}
}

// SpecHouseA: ISLA houseA — 14 binary sensors, sparse single-sensor
// responses, the lowest correlation degree of the ten (Table 5.2: 1.4).
func SpecHouseA() Spec {
	plan := smallRooms()
	rooms := roomsOf(plan)
	return Spec{
		Name:          "houseA",
		Hours:         576,
		Residents:     1,
		NumActivities: 16,
		Rooms:         plan,
		Devices: binarySensors(rooms,
			[]device.Type{device.DoorContact, device.Motion, device.PressureMat, device.FloatSwitch},
			14),
	}
}

// SpecHouseB: ISLA houseB — 27 binary sensors (Table 5.2 degree: 2.9).
func SpecHouseB() Spec {
	plan := smallRooms()
	rooms := roomsOf(plan)
	return Spec{
		Name:          "houseB",
		Hours:         648,
		Residents:     1,
		NumActivities: 25,
		Rooms:         plan,
		Devices: binarySensors(rooms,
			[]device.Type{device.Motion, device.DoorContact, device.FloatSwitch, device.PressureMat},
			27),
	}
}

// SpecHouseC: ISLA houseC — 23 binary sensors concentrated in fewer rooms
// with a motion-heavy mix (Table 5.2 degree: 4.6).
func SpecHouseC() Spec {
	plan := map[RoomCategory][]string{
		CatBedroom:  {"bedroom"},
		CatBathroom: {"bathroom"},
		CatKitchen:  {"kitchen"},
		CatLiving:   {"living"},
		CatHall:     {"living"}, // hall activities land in the living room
	}
	rooms := []string{"bedroom", "bathroom", "kitchen", "living"}
	return Spec{
		Name:          "houseC",
		Hours:         480,
		Residents:     1,
		NumActivities: 27,
		Rooms:         plan,
		Devices: binarySensors(rooms,
			[]device.Type{device.Motion, device.Motion, device.PressureMat, device.DoorContact},
			23),
	}
}

// SpecTwoR: WSU twor — 68 binary + 3 numeric, two residents (Table 5.2
// degree: 7.2, the highest of the third-party sets).
func SpecTwoR() Spec {
	plan := twoBedroomRooms()
	rooms := roomsOf(plan)
	devs := binarySensors(rooms,
		[]device.Type{device.Motion, device.Motion, device.DoorContact, device.PressureMat},
		68)
	devs = append(devs, numericSensors(rooms, []device.Type{device.Temperature}, 3)...)
	return Spec{
		Name:          "twor",
		Hours:         1104,
		Residents:     2,
		NumActivities: 9,
		Rooms:         plan,
		Devices:       devs,
	}
}

// SpecHH102: WSU hh102 — 33 binary + 79 numeric, but the numerics are all
// battery/light/temperature modules scattered across many rooms, so few of
// them react to any one activity (Table 5.2 degree: 3.8 despite 112
// sensors).
func SpecHH102() Spec {
	plan := map[RoomCategory][]string{
		CatBedroom:  {"bedroom1", "bedroom2"},
		CatBathroom: {"bathroom1", "bathroom2"},
		CatKitchen:  {"kitchen"},
		CatLiving:   {"living", "office"},
		CatHall:     {"hall"},
	}
	rooms := []string{"bedroom1", "bedroom2", "bathroom1", "bathroom2", "kitchen", "living", "office", "hall"}
	devs := binarySensors(rooms,
		[]device.Type{device.Motion, device.DoorContact, device.PressureMat, device.DoorContact},
		33)
	devs = append(devs, numericSensors(rooms,
		[]device.Type{device.Battery, device.Light, device.Temperature}, 79)...)
	return Spec{
		Name:            "hh102",
		Hours:           1488,
		Residents:       1,
		NumActivities:   30,
		NumericResponse: 0.35,
		Rooms:           plan,
		Devices:         devs,
	}
}

// SpecDHouseA through SpecDHH102 are the paper's own testbed runs imitating
// each third-party activity list (Table 4.1, bottom half).

// SpecDHouseA is D_houseA.
func SpecDHouseA() Spec { return diceSpec("D_houseA", 600, 16, 1) }

// SpecDHouseB is D_houseB.
func SpecDHouseB() Spec { return diceSpec("D_houseB", 650, 14, 1) }

// SpecDHouseC is D_houseC.
func SpecDHouseC() Spec { return diceSpec("D_houseC", 500, 18, 1) }

// SpecDTwoR is D_twor (two residents like its model dataset).
func SpecDTwoR() Spec { return diceSpec("D_twor", 1200, 9, 2) }

// SpecDHH102 is D_hh102.
func SpecDHH102() Spec { return diceSpec("D_hh102", 1500, 26, 1) }

// AllSpecs returns the ten dataset specs in the paper's order.
func AllSpecs() []Spec {
	return []Spec{
		SpecHouseA(), SpecHouseB(), SpecHouseC(), SpecTwoR(), SpecHH102(),
		SpecDHouseA(), SpecDHouseB(), SpecDHouseC(), SpecDTwoR(), SpecDHH102(),
	}
}

// SpecByName returns the spec with the given name.
func SpecByName(name string) (Spec, error) {
	for _, s := range AllSpecs() {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("simhome: unknown dataset %q", name)
}

// ThirdPartyNames lists the five simulated public datasets.
func ThirdPartyNames() []string {
	return []string{"houseA", "houseB", "houseC", "twor", "hh102"}
}

// TestbedNames lists the five D_* testbed datasets.
func TestbedNames() []string {
	return []string{"D_houseA", "D_houseB", "D_houseC", "D_twor", "D_hh102"}
}
