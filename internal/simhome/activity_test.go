package simhome

import (
	"testing"
	"testing/quick"
)

func poolActs(t testing.TB, n int) []ActivityTemplate {
	t.Helper()
	acts, err := Activities(n)
	if err != nil {
		t.Fatal(err)
	}
	return append(acts, TransitTemplate)
}

func TestActivitiesValidation(t *testing.T) {
	if _, err := Activities(0); err == nil {
		t.Error("zero activities accepted")
	}
	if _, err := Activities(1000); err == nil {
		t.Error("oversized activity count accepted")
	}
	acts, err := Activities(1)
	if err != nil {
		t.Fatal(err)
	}
	if acts[0].Name != "sleep" {
		t.Errorf("first activity = %q, want sleep", acts[0].Name)
	}
}

func TestPhaseAt(t *testing.T) {
	tests := []struct {
		min  int
		want Phase
	}{
		{0, PhaseNight}, {5 * 60, PhaseNight}, {7 * 60, PhaseMorning},
		{12 * 60, PhaseDay}, {18 * 60, PhaseEvening}, {23 * 60, PhaseNight},
	}
	for _, tt := range tests {
		if got := phaseAt(tt.min); got != tt.want {
			t.Errorf("phaseAt(%d) = %v, want %v", tt.min, got, tt.want)
		}
	}
}

// checkTimeline verifies the structural invariants of one timeline:
// spans sorted, non-overlapping, contiguous from 0 to total, activity
// indices in range.
func checkTimeline(t *testing.T, tl []span, nActs, total int) {
	t.Helper()
	if len(tl) == 0 {
		t.Fatal("empty timeline")
	}
	if tl[0].startMin != 0 {
		t.Errorf("timeline starts at %d, want 0", tl[0].startMin)
	}
	prevEnd := 0
	for i, s := range tl {
		if s.startMin != prevEnd {
			t.Fatalf("span %d starts at %d, previous ended at %d (gap or overlap)", i, s.startMin, prevEnd)
		}
		if s.endMin <= s.startMin {
			t.Fatalf("span %d empty or inverted: [%d, %d)", i, s.startMin, s.endMin)
		}
		if s.act != NoActivity && (s.act < 0 || s.act >= nActs) {
			t.Fatalf("span %d has activity %d out of range [0, %d)", i, s.act, nActs)
		}
		prevEnd = s.endMin
	}
	if prevEnd != total {
		t.Errorf("timeline ends at %d, want %d", prevEnd, total)
	}
}

func TestBuildTimelineInvariants(t *testing.T) {
	f := func(seedRaw uint16, nActsRaw, residentsRaw, daysRaw uint8) bool {
		nActs := 1 + int(nActsRaw)%20
		resident := int(residentsRaw) % 3
		days := 1 + int(daysRaw)%4
		acts := poolActs(t, nActs)
		total := days * minutesPerDay
		tl := buildTimeline(acts, int64(seedRaw), resident, total, len(acts)-1)
		if len(tl) == 0 {
			return false
		}
		prevEnd := 0
		if tl[0].startMin != 0 {
			return false
		}
		for _, s := range tl {
			if s.startMin != prevEnd || s.endMin <= s.startMin {
				return false
			}
			if s.act != NoActivity && (s.act < 0 || s.act >= len(acts)) {
				return false
			}
			prevEnd = s.endMin
		}
		return prevEnd == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestTimelineSleepsAtNight(t *testing.T) {
	acts := poolActs(t, 16)
	tl := buildTimeline(acts, 7, 0, 3*minutesPerDay, len(acts)-1)
	checkTimeline(t, tl, len(acts), 3*minutesPerDay)
	sleep := sleepActivity(acts)
	// 03:30 on each day must be sleep or (rarely) a night toilet visit.
	for d := 0; d < 3; d++ {
		m := d*minutesPerDay + 3*60 + 30
		act := activityAt(tl, m)
		if act == NoActivity {
			t.Errorf("day %d 03:30: idle, want sleep or a visit", d)
			continue
		}
		if act != sleep && acts[act].Category != CatBathroom && acts[act].Category != CatHall {
			t.Errorf("day %d 03:30: activity %q", d, acts[act].Name)
		}
	}
}

func TestResidentLagShiftsSchedule(t *testing.T) {
	acts := poolActs(t, 9)
	tl0 := buildTimeline(acts, 5, 0, minutesPerDay, len(acts)-1)
	tl1 := buildTimeline(acts, 5, 1, minutesPerDay, len(acts)-1)
	checkTimeline(t, tl0, len(acts), minutesPerDay)
	checkTimeline(t, tl1, len(acts), minutesPerDay)
	// Resident 1's mid-day spans are resident 0's shifted by residentLag.
	matched := 0
	for _, s := range tl0 {
		if s.act == NoActivity || s.startMin < 8*60 || s.startMin > 20*60 {
			continue
		}
		if activityAt(tl1, s.startMin+residentLag) == s.act {
			matched++
		}
	}
	if matched == 0 {
		t.Error("resident 1's schedule shows no lagged correspondence to resident 0's")
	}
}

func TestActivityAt(t *testing.T) {
	tl := []span{{0, 10, 1}, {10, 20, NoActivity}, {20, 30, 2}}
	tests := []struct {
		m    int
		want int
	}{
		{0, 1}, {9, 1}, {10, NoActivity}, {19, NoActivity}, {20, 2}, {29, 2},
		{30, NoActivity}, {-1, NoActivity},
	}
	for _, tt := range tests {
		if got := activityAt(tl, tt.m); got != tt.want {
			t.Errorf("activityAt(%d) = %d, want %d", tt.m, got, tt.want)
		}
	}
}

func TestSnap(t *testing.T) {
	tests := []struct{ in, want int }{
		{0, 5}, {2, 5}, {3, 5}, {7, 5}, {8, 10}, {12, 10}, {13, 15}, {60, 60},
	}
	for _, tt := range tests {
		if got := snap(tt.in); got != tt.want {
			t.Errorf("snap(%d) = %d, want %d", tt.in, got, tt.want)
		}
	}
}
