package eval

import (
	"fmt"
	"reflect"
	"sync/atomic"
	"testing"

	"repro/internal/simhome"
)

func TestResolveWorkers(t *testing.T) {
	if got := resolveWorkers(4, 100); got != 4 {
		t.Errorf("resolveWorkers(4, 100) = %d", got)
	}
	if got := resolveWorkers(8, 3); got != 3 {
		t.Errorf("resolveWorkers(8, 3) = %d, want clamp to items", got)
	}
	if got := resolveWorkers(0, 100); got < 1 {
		t.Errorf("resolveWorkers(0, 100) = %d, want >= 1", got)
	}
	if got := resolveWorkers(-2, 0); got != 1 {
		t.Errorf("resolveWorkers(-2, 0) = %d, want 1", got)
	}
}

func TestForEachIndexCoversAllIndices(t *testing.T) {
	for _, workers := range []int{1, 3, 8} {
		n := 57
		var hits = make([]int32, n)
		err := forEachIndex(workers, n, func(i int) error {
			atomic.AddInt32(&hits[i], 1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d run %d times", workers, i, h)
			}
		}
	}
}

func TestForEachIndexReportsLowestError(t *testing.T) {
	for _, workers := range []int{1, 4} {
		err := forEachIndex(workers, 40, func(i int) error {
			if i == 7 || i == 23 {
				return fmt.Errorf("boom at %d", i)
			}
			return nil
		})
		if err == nil || err.Error() != "boom at 7" {
			t.Errorf("workers=%d: err = %v, want boom at 7", workers, err)
		}
	}
}

// normalizeResult zeroes the wall-clock fields of a DatasetResult: they are
// the only quantities the determinism guarantee excludes (they measure the
// host, not the protocol).
func normalizeResult(r *DatasetResult) *DatasetResult {
	c := *r
	c.TrainTime = 0
	c.EvalTime = 0
	c.Workers = 0
	c.CorrelationCheckTime = 0
	c.TransitionCheckTime = 0
	c.IdentifyTime = 0
	return &c
}

// TestEvaluateTrainedParallelDeterminism: EvaluateTrained must produce
// identical metrics at workers=1 and workers=8 — the guarantee the parallel
// harness documents. Runs under -race this also proves the fan-out is
// race-free on the shared Trained/Context.
func TestEvaluateTrainedParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("evaluation integration test")
	}
	tr := trainFast(t)
	serial, err := EvaluateTrainedWorkers(tr, 1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := EvaluateTrainedWorkers(tr, 8)
	if err != nil {
		t.Fatal(err)
	}
	if serial.Workers != 1 || parallel.Workers != 8 {
		t.Errorf("worker counts: serial=%d parallel=%d", serial.Workers, parallel.Workers)
	}
	a, b := normalizeResult(serial), normalizeResult(parallel)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("serial and parallel results diverge:\nserial:   %+v\nparallel: %+v", a, b)
	}
	// Spot-check the interesting fields carry signal at all.
	if a.FaultySegments == 0 || a.FaultFreeSegments == 0 {
		t.Error("degenerate evaluation: no segments ran")
	}
}

// TestEvaluateAllMatchesPerDataset: the batch entry point must agree with
// dataset-at-a-time evaluation.
func TestEvaluateAllMatchesPerDataset(t *testing.T) {
	if testing.Short() {
		t.Skip("evaluation integration test")
	}
	spec := fastSpec()
	p := fastProto()
	p.Trials = 4
	var visited []string
	batch, err := EvaluateAll([]simhome.Spec{spec}, 5, p, 2, func(name string) {
		visited = append(visited, name)
	})
	if err != nil {
		t.Fatal(err)
	}
	single, err := EvaluateDatasetWorkers(spec, 5, p, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != 1 || len(visited) != 1 || visited[0] != spec.Name {
		t.Fatalf("batch shape: %d results, visited %v", len(batch), visited)
	}
	if !reflect.DeepEqual(normalizeResult(batch[0]), normalizeResult(single)) {
		t.Error("EvaluateAll diverges from EvaluateDatasetWorkers")
	}
}
