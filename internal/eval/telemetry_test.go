package eval

import (
	"strings"
	"testing"

	"repro/internal/telemetry"
)

// countersOnly filters a registry snapshot down to the deterministic series:
// counts and value histograms, excluding wall-clock timing histograms (any
// series whose name carries a "seconds" unit varies run to run by design).
func countersOnly(reg *telemetry.Registry) map[string]float64 {
	out := make(map[string]float64)
	for name, v := range reg.SnapshotMap() {
		if strings.Contains(name, "seconds") {
			continue
		}
		out[name] = v
	}
	return out
}

// TestEvalTelemetryDeterministic: two identical evaluation runs over the
// same trained context must land the exact same counter values, even with a
// worker pool — every increment is a pure function of (seed, trial index),
// and counter aggregation is commutative across workers.
func TestEvalTelemetryDeterministic(t *testing.T) {
	tr := trainFast(t)
	run := func() map[string]float64 {
		reg := telemetry.NewRegistry()
		tr.Protocol.Telemetry = reg
		if _, err := EvaluateTrainedWorkers(tr, 4); err != nil {
			t.Fatal(err)
		}
		return countersOnly(reg)
	}
	a := run()
	b := run()
	if len(a) == 0 {
		t.Fatal("evaluation registered no metrics")
	}
	if a["dice_detector_windows_total"] == 0 {
		t.Error("dice_detector_windows_total = 0 after a full evaluation")
	}
	if len(a) != len(b) {
		t.Errorf("snapshots differ in size: %d vs %d", len(a), len(b))
	}
	for name, av := range a {
		if bv, ok := b[name]; !ok {
			t.Errorf("second run is missing %s", name)
		} else if av != bv {
			t.Errorf("%s: run1 %g, run2 %g", name, av, bv)
		}
	}
}
