package eval

import (
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/gateway"
	"repro/internal/simhome"
	"repro/internal/wal"
)

// RecoveryBench configures the crash-recovery benchmark: one home's stream
// is replayed through a gateway under each WAL fsync policy to price
// durability on the ingest hot path, then a crash is simulated mid-stream
// (checkpoint at half, WAL tail beyond it) and recovery is timed.
type RecoveryBench struct {
	// Hours of stream replayed (default 2).
	Hours int
	// Seed drives the simulation (default 21).
	Seed int64
	// CheckpointAt is the fraction of the stream covered by the checkpoint
	// the crashed process left behind (default 0.5); everything after it
	// must come back from WAL replay alone.
	CheckpointAt float64
	// Dir holds the WAL segments and checkpoint (default: a temp dir,
	// removed afterwards).
	Dir string
}

func (o RecoveryBench) normalize() RecoveryBench {
	if o.Hours <= 0 {
		o.Hours = 2
	}
	if o.Seed == 0 {
		o.Seed = 21
	}
	if o.CheckpointAt <= 0 || o.CheckpointAt >= 1 {
		o.CheckpointAt = 0.5
	}
	return o
}

// RecoveryPolicyResult is one fsync policy's ingest cost.
type RecoveryPolicyResult struct {
	Policy       string  `json:"policy"` // "none" = no WAL attached
	ReplayMS     float64 `json:"replay_ms"`
	EventsPerSec float64 `json:"events_per_sec"`
	// OverheadPct is the replay slowdown relative to the no-WAL baseline.
	OverheadPct float64 `json:"overhead_pct"`
}

// RecoveryBenchResult is the outcome of one recovery benchmark run.
type RecoveryBenchResult struct {
	Hours        int                    `json:"hours"`
	Events       int64                  `json:"events"`
	Policies     []RecoveryPolicyResult `json:"policies"`
	CheckpointAt float64                `json:"checkpoint_at"`
	// ReplayedRecords is how many WAL records recovery re-applied (the
	// tail past the checkpoint, including clock advances).
	ReplayedRecords uint64  `json:"replayed_records"`
	RecoveryMS      float64 `json:"recovery_ms"`
	RecoveredPerSec float64 `json:"recovered_events_per_sec"`
	// BitIdentical reports whether the recovered gateway's stats match the
	// uncrashed run exactly — the property the WAL exists to provide.
	BitIdentical bool `json:"bit_identical"`
}

// RunRecoveryBench prices the WAL (per fsync policy) and times a
// checkpoint+WAL crash recovery, verifying the recovered state matches an
// uncrashed replay bit-for-bit.
func RunRecoveryBench(o RecoveryBench) (*RecoveryBenchResult, error) {
	o = o.normalize()
	spec := simhome.SpecDHouseA()
	spec.Name = "recovery-bench"
	trainH := 3 * 24
	spec.Hours = trainH + o.Hours + 1
	home, err := simhome.New(spec, o.Seed)
	if err != nil {
		return nil, err
	}
	trainW := trainH * 60
	tr := core.NewTrainer(home.Layout(), time.Minute)
	for i := 0; i < trainW; i++ {
		if err := tr.Calibrate(home.Window(i)); err != nil {
			return nil, err
		}
	}
	if err := tr.FinishCalibration(); err != nil {
		return nil, err
	}
	for i := 0; i < trainW; i++ {
		if err := tr.Learn(home.Window(i)); err != nil {
			return nil, err
		}
	}
	cctx, err := tr.Context()
	if err != nil {
		return nil, err
	}

	evts := home.Events(trainW, trainW+o.Hours*60)
	stream := make([]event.Event, len(evts))
	for i, e := range evts {
		e.At -= time.Duration(trainW) * time.Minute
		stream[i] = e
	}
	end := time.Duration(o.Hours) * time.Hour

	dir := o.Dir
	if dir == "" {
		dir, err = os.MkdirTemp("", "dice-recovery-*")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
	}

	res := &RecoveryBenchResult{Hours: o.Hours, Events: int64(len(stream)), CheckpointAt: o.CheckpointAt}

	// Price each fsync policy against a no-WAL baseline.
	replay := func(w *wal.Log) (time.Duration, gateway.Stats, error) {
		opts := []gateway.Option{gateway.WithConfig(core.Config{}), gateway.WithAlertBuffer(len(stream))}
		if w != nil {
			opts = append(opts, gateway.WithWAL(w))
		}
		gw, err := gateway.New(cctx, opts...)
		if err != nil {
			return 0, gateway.Stats{}, err
		}
		start := time.Now()
		for _, e := range stream {
			if err := gw.Ingest(e); err != nil {
				return 0, gateway.Stats{}, err
			}
		}
		if err := gw.AdvanceTo(end); err != nil {
			return 0, gateway.Stats{}, err
		}
		return time.Since(start), gw.Stats(), nil
	}
	baseTime, refStats, err := replay(nil)
	if err != nil {
		return nil, err
	}
	addPolicy := func(name string, d time.Duration) {
		p := RecoveryPolicyResult{Policy: name, ReplayMS: float64(d.Microseconds()) / 1000}
		if s := d.Seconds(); s > 0 {
			p.EventsPerSec = float64(len(stream)) / s
		}
		if baseTime > 0 {
			p.OverheadPct = 100 * (float64(d)/float64(baseTime) - 1)
		}
		res.Policies = append(res.Policies, p)
	}
	addPolicy("none", baseTime)
	for _, pol := range []wal.SyncPolicy{wal.SyncAlways, wal.SyncBatch, wal.SyncNever} {
		wdir := fmt.Sprintf("%s/price-%s", dir, pol)
		w, err := wal.Open(wdir, wal.Options{Sync: pol})
		if err != nil {
			return nil, err
		}
		d, st, err := replay(w)
		if err != nil {
			return nil, err
		}
		if cerr := w.Close(); cerr != nil {
			return nil, cerr
		}
		if st != refStats {
			return nil, fmt.Errorf("eval: %s-policy replay diverged from baseline", pol)
		}
		addPolicy(pol.String(), d)
	}

	// Crash simulation: full stream through a WAL-backed gateway, with a
	// checkpoint covering the first CheckpointAt of it. The "crash" is
	// simply abandoning that gateway; recovery rebuilds from the
	// checkpoint file plus the WAL tail and must land on refStats.
	crashDir := dir + "/crash"
	w, err := wal.Open(crashDir, wal.Options{Sync: wal.SyncBatch})
	if err != nil {
		return nil, err
	}
	gw, err := gateway.New(cctx, gateway.WithConfig(core.Config{}),
		gateway.WithAlertBuffer(len(stream)), gateway.WithWAL(w))
	if err != nil {
		return nil, err
	}
	cut := int(float64(len(stream)) * o.CheckpointAt)
	cpPath := crashDir + "/bench.ckpt"
	for i, e := range stream {
		if i == cut {
			if err := gateway.WriteCheckpoint(cpPath, gw.ExportCheckpoint()); err != nil {
				return nil, err
			}
		}
		if err := gw.Ingest(e); err != nil {
			return nil, err
		}
	}
	if err := gw.AdvanceTo(end); err != nil {
		return nil, err
	}
	if err := w.Sync(); err != nil {
		return nil, err
	}
	// Crash: gw and its in-memory state are abandoned here.

	w2, err := wal.Open(crashDir, wal.Options{Sync: wal.SyncBatch})
	if err != nil {
		return nil, err
	}
	defer w2.Close()
	recovered, err := gateway.New(cctx, gateway.WithConfig(core.Config{}),
		gateway.WithAlertBuffer(len(stream)), gateway.WithWAL(w2))
	if err != nil {
		return nil, err
	}
	recStart := time.Now()
	cp, err := gateway.ReadCheckpoint(cpPath)
	if err != nil {
		return nil, err
	}
	if err := recovered.RestoreCheckpoint(cp); err != nil {
		return nil, err
	}
	if err := recovered.RecoverWAL(); err != nil {
		return nil, err
	}
	recTime := time.Since(recStart)

	res.ReplayedRecords = w2.LastSeq() - cp.WALSeq
	res.RecoveryMS = float64(recTime.Microseconds()) / 1000
	replayedEvents := refStats.Events - cp.Stats.Events
	if s := recTime.Seconds(); s > 0 {
		res.RecoveredPerSec = float64(replayedEvents) / s
	}
	res.BitIdentical = recovered.Stats() == refStats
	if !res.BitIdentical {
		return res, fmt.Errorf("eval: recovered stats diverged:\n got  %+v\n want %+v", recovered.Stats(), refStats)
	}
	return res, nil
}
