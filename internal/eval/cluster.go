package eval

import (
	"context"
	"fmt"
	"net/http"
	"os"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/event"
	"repro/internal/gateway"
	"repro/internal/hub"
	"repro/internal/simhome"
	"repro/internal/wire"
)

// ClusterBench configures the federated-hub benchmark: N in-process nodes
// share one durable state tree, M homes stream batches over HTTP through
// one entry node, and mid-replay the bench performs one live migration and
// one node kill. It measures what federation costs (cluster throughput over
// solo-gateway throughput on the same streams) and what recovery buys
// (migration latency, fail-over re-adoption latency) while holding the
// project's core invariant: every home's final counters must equal a solo
// gateway replay bit for bit, straight through the handoff and the crash.
type ClusterBench struct {
	// Nodes is the cluster size (default 3; the last node is killed).
	Nodes int
	// Homes is the number of tenants spread over the cluster (default 6).
	Homes int
	// Hours of stream replayed per home (default 2).
	Hours int
	// Seed drives the simulation (default 21).
	Seed int64
	// BatchSize is readings per DWB1 report batch (default 64).
	BatchSize int
}

func (o ClusterBench) normalize() ClusterBench {
	if o.Nodes < 2 {
		o.Nodes = 3
	}
	if o.Homes <= 0 {
		o.Homes = 6
	}
	if o.Hours <= 0 {
		o.Hours = 2
	}
	if o.Seed == 0 {
		o.Seed = 21
	}
	if o.BatchSize <= 0 {
		o.BatchSize = 64
	}
	return o
}

// ClusterBenchResult is the outcome of one cluster benchmark run.
// EventsPerSec is the cluster replay (HTTP ingest, routing, migration, and
// fail-over included in the wall-clock); SoloEventsPerSec replays the same
// streams through in-process gateways, and Efficiency is their ratio — the
// machine-normalized number the perf gate tracks. BitIdentical reports
// whether every home's final counters matched solo despite the drill.
type ClusterBenchResult struct {
	Nodes             int             `json:"nodes"`
	Homes             int             `json:"homes"`
	Hours             int             `json:"hours_per_home"`
	BatchSize         int             `json:"batch_size"`
	TrainMS           float64         `json:"train_ms"`
	WallClockMS       float64         `json:"wall_clock_ms"`
	SoloWallClockMS   float64         `json:"solo_wall_clock_ms"`
	MigrationMS       float64         `json:"migration_ms"`
	FailoverDetectMS  float64         `json:"failover_detect_ms"`
	FailoverRecoverMS float64         `json:"failover_recover_ms"`
	Events            int64           `json:"events"`
	Alerts            int64           `json:"alerts"`
	EventsPerSec      float64         `json:"events_per_sec"`
	SoloEventsPerSec  float64         `json:"solo_events_per_sec"`
	Efficiency        float64         `json:"efficiency"`
	Handoffs          int64           `json:"handoffs"`
	Failovers         int64           `json:"failovers"`
	Replacements      int64           `json:"replacements"`
	Retries           int64           `json:"retries"`
	BitIdentical      bool            `json:"bit_identical"`
	PerHome           []HubHomeResult `json:"per_home"`
}

var clusterGwOpts = []gateway.Option{
	gateway.WithConfig(core.Config{}),
	gateway.WithAlertBuffer(4096),
}

// clusterSolo replays every stream through standalone gateways, one
// goroutine per home (matching the cluster's per-home concurrency), and
// returns the reference counters plus the wall-clock.
func clusterSolo(cctx *core.Context, names []string, streams [][]event.Event, end time.Duration) ([]HubHomeResult, time.Duration, error) {
	out := make([]HubHomeResult, len(names))
	errs := make(chan error, len(names))
	start := time.Now()
	var wg sync.WaitGroup
	for i := range names {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			gw, err := gateway.New(cctx, clusterGwOpts...)
			if err != nil {
				errs <- err
				return
			}
			for _, e := range streams[i] {
				if err := gw.Ingest(e); err != nil {
					errs <- err
					return
				}
			}
			if err := gw.AdvanceTo(end); err != nil {
				errs <- err
				return
			}
			drainAlerts(gw)
			out[i] = HubHomeResult{Home: names[i], Stats: gw.Stats()}
			errs <- nil
		}(i)
	}
	wg.Wait()
	wall := time.Since(start)
	close(errs)
	for err := range errs {
		if err != nil {
			return nil, 0, err
		}
	}
	return out, wall, nil
}

func drainAlerts(gw *gateway.Gateway) {
	for {
		select {
		case <-gw.Alerts():
		default:
			return
		}
	}
}

// RunClusterBench trains one context, boots o.Nodes federated nodes over
// loopback HTTP with a shared state tree, and replays every home's stream
// through the cluster while live-migrating one tenant and killing one node
// mid-stream. The solo replay of the same streams is both the throughput
// yardstick and the bit-identity oracle.
func RunClusterBench(o ClusterBench) (*ClusterBenchResult, error) {
	o = o.normalize()
	spec := simhome.SpecDHouseA()
	spec.Name = "cluster-bench"
	trainH := 3 * 24
	spec.Hours = trainH + o.Homes + o.Hours + 1
	home, err := simhome.New(spec, o.Seed)
	if err != nil {
		return nil, err
	}
	trainStart := time.Now()
	trainW := trainH * 60
	tr := core.NewTrainer(home.Layout(), time.Minute)
	for i := 0; i < trainW; i++ {
		if err := tr.Calibrate(home.Window(i)); err != nil {
			return nil, err
		}
	}
	if err := tr.FinishCalibration(); err != nil {
		return nil, err
	}
	for i := 0; i < trainW; i++ {
		if err := tr.Learn(home.Window(i)); err != nil {
			return nil, err
		}
	}
	cctx, err := tr.Context()
	if err != nil {
		return nil, err
	}
	trainTime := time.Since(trainStart)

	// Per-home stream slices at staggered offsets; odd homes carry a
	// spurious-actuation fault so the drill produces real alerts.
	end := time.Duration(o.Hours) * time.Hour
	names := make([]string, o.Homes)
	streams := make([][]event.Event, o.Homes)
	bulb, okBulb := home.Registry().Lookup("bulb-kitchen")
	for i := range streams {
		names[i] = fmt.Sprintf("home-%02d", i)
		start := trainW + i*60
		src := home
		if i%2 == 1 && okBulb {
			src = home.WithActuatorFaults(simhome.ActuatorFaults{
				Spurious:   map[device.ID]bool{bulb: true},
				Seed:       int64(100 + i),
				FromMinute: start,
			})
		}
		evts := src.Events(start, start+o.Hours*60)
		streams[i] = make([]event.Event, len(evts))
		for j, e := range evts {
			e.At -= time.Duration(start) * time.Minute
			streams[i][j] = e
		}
	}

	solo, soloWall, err := clusterSolo(cctx, names, streams, end)
	if err != nil {
		return nil, err
	}

	stateDir, err := os.MkdirTemp("", "dice-cluster-bench")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(stateDir) //nolint:errcheck // best-effort cleanup

	resolver := func(string) (*core.Context, []gateway.Option, error) {
		return cctx, clusterGwOpts, nil
	}
	ids := make([]string, o.Nodes)
	nodes := make([]*cluster.Node, o.Nodes)
	for i := range nodes {
		ids[i] = fmt.Sprintf("n%d", i)
		n, err := cluster.New(ids[i],
			cluster.WithCatalog(names, resolver),
			cluster.WithHubOptions(
				hub.WithShards(2),
				hub.WithCheckpointDir(stateDir),
				hub.WithWALDir(stateDir),
				hub.WithAlertBuffer(8192),
			),
			cluster.WithHeartbeat(100*time.Millisecond, 400*time.Millisecond, 1200*time.Millisecond),
			cluster.WithRetry(6, 25*time.Millisecond),
			cluster.WithCallTimeout(3*time.Second),
		)
		if err != nil {
			return nil, err
		}
		nodes[i] = n
	}
	defer func() {
		for _, n := range nodes {
			n.Close() //nolint:errcheck // bench teardown
		}
	}()
	for i, n := range nodes {
		for j, pid := range ids {
			if i == j {
				continue
			}
			if err := n.SetPeer(pid, nodes[j].Addr()); err != nil {
				return nil, err
			}
		}
	}
	for _, n := range nodes {
		if err := n.Start(); err != nil {
			return nil, err
		}
	}
	client := &cluster.Client{
		Base:    nodes[0].Addr(),
		HC:      &http.Client{},
		Retries: 10,
		Backoff: 25 * time.Millisecond,
	}

	// hostOf scans live nodes for the unique host of a home.
	hostOf := func(home string) *cluster.Node {
		for _, n := range nodes {
			if n.Closed() {
				continue
			}
			if _, ok := n.Hub().Tenant(home); ok {
				return n
			}
		}
		return nil
	}

	// Senders take the gate read-side per batch so the drill can freeze the
	// cluster between acked batches — the kill never races an in-flight
	// un-acked batch, which is what keeps the replay exactly-once.
	var (
		gate     sync.RWMutex
		sentMu   sync.Mutex
		sentN    int
		wg       sync.WaitGroup
		sendErrs = make(chan error, o.Homes)
	)
	totalBatches := 0
	for i := range streams {
		totalBatches += (len(streams[i]) + o.BatchSize - 1) / o.BatchSize
	}
	replayStart := time.Now()
	for i := range names {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			evts := streams[i]
			var buf []byte
			for lo := 0; lo < len(evts); lo += o.BatchSize {
				hi := min(lo+o.BatchSize, len(evts))
				buf = wire.AppendReport(buf[:0], evts[lo:hi])
				gate.RLock()
				err := client.Send(context.Background(), names[i], buf)
				gate.RUnlock()
				if err != nil {
					sendErrs <- fmt.Errorf("send %s: %w", names[i], err)
					return
				}
				sentMu.Lock()
				sentN++
				sentMu.Unlock()
			}
			buf = wire.AppendAdvance(buf[:0], end)
			gate.RLock()
			err := client.Send(context.Background(), names[i], buf)
			gate.RUnlock()
			if err != nil {
				sendErrs <- fmt.Errorf("advance %s: %w", names[i], err)
				return
			}
			sendErrs <- nil
		}(i)
	}
	waitSent := func(target int) error {
		deadline := time.Now().Add(60 * time.Second)
		for {
			sentMu.Lock()
			n := sentN
			sentMu.Unlock()
			if n >= target {
				return nil
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("cluster bench stalled at %d/%d acked batches", n, target)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}

	// One live migration at ~1/3: move a home between the two nodes that
	// will survive the kill. Throughput is measured on this first third —
	// the only window with no injected disturbance; the full wall-clock
	// (stalls included) is reported separately.
	killIdx := o.Nodes - 1
	var migrationTime time.Duration
	if err := waitSent(totalBatches / 3); err != nil {
		return nil, err
	}
	quietTime := time.Since(replayStart)
	quietBatches := totalBatches / 3
	gate.Lock()
	var migSrc *cluster.Node
	victim := ""
	for _, nm := range names {
		if h := hostOf(nm); h != nil && h != nodes[killIdx] {
			migSrc, victim = h, nm
			break
		}
	}
	if victim != "" {
		migDst := ids[0]
		if migSrc.ID() == ids[0] {
			migDst = ids[1]
		}
		mStart := time.Now()
		err := migSrc.Migrate(context.Background(), victim, migDst)
		migrationTime = time.Since(mStart)
		if err != nil {
			gate.Unlock()
			return nil, fmt.Errorf("migrate %s %s→%s: %w", victim, migSrc.ID(), migDst, err)
		}
	}
	gate.Unlock()

	// Kill the last node at ~2/3; time both the re-adoption of its homes
	// (fail-over proper) and the full drain-to-completion.
	if err := waitSent(2 * totalBatches / 3); err != nil {
		return nil, err
	}
	var killedHomes []string
	gate.Lock()
	for _, nm := range names {
		if h := hostOf(nm); h == nodes[killIdx] {
			killedHomes = append(killedHomes, nm)
		}
	}
	nodes[killIdx].Kill()
	killedAt := time.Now()
	gate.Unlock()
	var recoverTime time.Duration
	for {
		adopted := 0
		for _, nm := range killedHomes {
			if h := hostOf(nm); h != nil {
				adopted++
			}
		}
		if adopted == len(killedHomes) {
			recoverTime = time.Since(killedAt)
			break
		}
		if time.Since(killedAt) > 60*time.Second {
			return nil, fmt.Errorf("fail-over stalled: %d/%d homes re-adopted", adopted, len(killedHomes))
		}
		time.Sleep(2 * time.Millisecond)
	}
	wg.Wait()
	wall := time.Since(replayStart)
	close(sendErrs)
	for err := range sendErrs {
		if err != nil {
			return nil, err
		}
	}

	res := &ClusterBenchResult{
		Nodes:             o.Nodes,
		Homes:             o.Homes,
		Hours:             o.Hours,
		BatchSize:         o.BatchSize,
		TrainMS:           float64(trainTime.Microseconds()) / 1000,
		WallClockMS:       float64(wall.Microseconds()) / 1000,
		SoloWallClockMS:   float64(soloWall.Microseconds()) / 1000,
		MigrationMS:       float64(migrationTime.Microseconds()) / 1000,
		FailoverDetectMS:  1200, // deadAfter: detection is the silence budget by construction
		FailoverRecoverMS: float64(recoverTime.Microseconds()) / 1000,
		BitIdentical:      true,
	}
	for i, nm := range names {
		host := hostOf(nm)
		if host == nil {
			return nil, fmt.Errorf("home %s hosted nowhere after the drill", nm)
		}
		if err := host.Hub().Drain(nm); err != nil {
			return nil, err
		}
		tn, ok := host.Hub().Tenant(nm)
		if !ok {
			return nil, fmt.Errorf("home %s vanished mid-bench", nm)
		}
		st := tn.Stats()
		res.PerHome = append(res.PerHome, HubHomeResult{Home: nm, Stats: st})
		res.Events += st.Events
		res.Alerts += st.Alerts
		if st != solo[i].Stats {
			res.BitIdentical = false
		}
	}
	for _, n := range nodes {
		if n.Closed() {
			continue
		}
		res.Handoffs += n.Metric(cluster.MetricHandoffs)
		res.Failovers += n.Metric(cluster.MetricFailovers)
		res.Replacements += n.Metric(cluster.MetricReplacements)
		res.Retries += n.Metric(cluster.MetricRetries)
	}
	// Cluster rate comes from the quiet phase so the fixed fail-over
	// silence budget does not swamp the ratio the perf gate tracks.
	quietEvents := float64(res.Events) * float64(quietBatches) / float64(totalBatches)
	if s := quietTime.Seconds(); s > 0 {
		res.EventsPerSec = quietEvents / s
	}
	if s := soloWall.Seconds(); s > 0 {
		res.SoloEventsPerSec = float64(res.Events) / s
	}
	if res.SoloEventsPerSec > 0 {
		res.Efficiency = res.EventsPerSec / res.SoloEventsPerSec
	}
	return res, nil
}
