// Package eval implements the paper's evaluation protocol (§V) and the
// experiment runners behind every table and figure: 300 hours of
// precomputation, the remaining recording split into six-hour segments,
// each segment evaluated once fault-free (precision) and once with an
// injected fault (recall), detection/identification latency, per-stage
// computation time, correlation degree, and the per-fault-type split
// between the correlation and transition checks.
package eval

import "fmt"

// Metrics is a precision/recall accumulator. The zero value is ready.
type Metrics struct {
	TP float64
	FP float64
	FN float64
}

// AddTP/AddFP/AddFN increment the respective counters.
func (m *Metrics) AddTP(n float64) { m.TP += n }

// AddFP increments false positives.
func (m *Metrics) AddFP(n float64) { m.FP += n }

// AddFN increments false negatives.
func (m *Metrics) AddFN(n float64) { m.FN += n }

// Precision returns TP/(TP+FP), or 1 when nothing was flagged (no
// positives means no false alarms).
func (m Metrics) Precision() float64 {
	if m.TP+m.FP == 0 {
		return 1
	}
	return m.TP / (m.TP + m.FP)
}

// Recall returns TP/(TP+FN), or 1 when there was nothing to find.
func (m Metrics) Recall() float64 {
	if m.TP+m.FN == 0 {
		return 1
	}
	return m.TP / (m.TP + m.FN)
}

// F1 returns the harmonic mean of precision and recall.
func (m Metrics) F1() float64 {
	p, r := m.Precision(), m.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// String renders the metrics as percentages.
func (m Metrics) String() string {
	return fmt.Sprintf("P=%.1f%% R=%.1f%%", 100*m.Precision(), 100*m.Recall())
}

// MeanAccumulator tracks a running mean.
type MeanAccumulator struct {
	sum float64
	n   int
}

// Add folds in one value.
func (a *MeanAccumulator) Add(v float64) {
	a.sum += v
	a.n++
}

// Mean returns the running mean, or 0 with no samples.
func (a *MeanAccumulator) Mean() float64 {
	if a.n == 0 {
		return 0
	}
	return a.sum / float64(a.n)
}

// N returns the sample count.
func (a *MeanAccumulator) N() int { return a.n }
