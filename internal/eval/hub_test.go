package eval

import "testing"

func TestRunHubBench(t *testing.T) {
	res, err := RunHubBench(HubBench{Homes: 3, Shards: 2, Hours: 1, Passes: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Homes != 3 || res.Shards != 2 {
		t.Fatalf("echoed config wrong: %+v", res)
	}
	if res.Events == 0 || res.Windows == 0 {
		t.Errorf("bench replayed nothing: events=%d windows=%d", res.Events, res.Windows)
	}
	if res.EventsPerSec <= 0 {
		t.Errorf("events/sec = %v", res.EventsPerSec)
	}
	if len(res.PerHome) != 3 {
		t.Fatalf("per-home rows = %d, want 3", len(res.PerHome))
	}
	// Every home replays one hour => 60 windows each.
	for _, hr := range res.PerHome {
		if hr.Stats.Windows != 60 {
			t.Errorf("%s windows = %d, want 60", hr.Home, hr.Stats.Windows)
		}
	}
	// Shard ops account for every batch + advance + the drain barriers.
	// The binary pass routes one op per BatchSize events, not one per event.
	var ops int64
	for _, s := range res.PerShard {
		ops += s.Ops
		if s.Shed != 0 {
			t.Errorf("shard %d shed %d ops under blocking Ingest", s.Shard, s.Shed)
		}
	}
	wantMin := (res.Events+int64(res.BatchSize)-1)/int64(res.BatchSize) + 3
	if ops < wantMin {
		t.Errorf("shard ops = %d, want >= %d", ops, wantMin)
	}
	// Both wire paths must land every home on identical counters.
	if !res.BitIdentical {
		t.Errorf("JSON and binary passes diverged: %+v", res.PerHome)
	}
	if res.JSONEventsPerSec <= 0 || res.Speedup <= 0 {
		t.Errorf("baseline missing: json=%v speedup=%v", res.JSONEventsPerSec, res.Speedup)
	}
}
