package eval

import "testing"

func TestRunHubBench(t *testing.T) {
	res, err := RunHubBench(HubBench{Homes: 3, Shards: 2, Hours: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Homes != 3 || res.Shards != 2 {
		t.Fatalf("echoed config wrong: %+v", res)
	}
	if res.Events == 0 || res.Windows == 0 {
		t.Errorf("bench replayed nothing: events=%d windows=%d", res.Events, res.Windows)
	}
	if res.EventsPerSec <= 0 {
		t.Errorf("events/sec = %v", res.EventsPerSec)
	}
	if len(res.PerHome) != 3 {
		t.Fatalf("per-home rows = %d, want 3", len(res.PerHome))
	}
	// Every home replays one hour => 60 windows each.
	for _, hr := range res.PerHome {
		if hr.Stats.Windows != 60 {
			t.Errorf("%s windows = %d, want 60", hr.Home, hr.Stats.Windows)
		}
	}
	// Shard ops account for every ingest + advance + the drain barriers.
	var ops int64
	for _, s := range res.PerShard {
		ops += s.Ops
		if s.Shed != 0 {
			t.Errorf("shard %d shed %d ops under blocking Ingest", s.Shard, s.Shed)
		}
	}
	wantMin := res.Events + 3 // at least one advance per home rides along
	if ops < wantMin {
		t.Errorf("shard ops = %d, want >= %d", ops, wantMin)
	}
}
