package eval

import (
	"time"

	"repro/internal/faults"
	"repro/internal/simhome"
)

// DatasetResult aggregates every per-dataset quantity the paper reports:
// Fig 5.1 accuracy, Fig 5.2 latency, Fig 5.3 computation time, Table 5.1
// per-check detection time, Table 5.2 correlation degree, and Fig 5.4
// detection-ratio by fault type.
type DatasetResult struct {
	Name       string
	NumSensors int
	NumGroups  int
	Degree     float64
	TrainTime  time.Duration

	// Detection/identification accuracy (Fig 5.1).
	Detection      Metrics
	Identification Metrics

	// Latency in minutes from fault onset (Fig 5.2).
	MeanDetectMinutes   float64
	MeanIdentifyMinutes float64

	// Detection time split by the check that fired (Table 5.1), minutes.
	DetectMinutesByCheck map[string]float64

	// Mean per-window stage cost (Fig 5.3).
	CorrelationCheckTime time.Duration
	TransitionCheckTime  time.Duration
	IdentifyTime         time.Duration

	// Detection counts per fault type and check family (Fig 5.4).
	// Key: fault type name -> [correlation, transition] counts.
	DetectByType map[string][2]int

	// Raw counts for transparency.
	FaultySegments    int
	DetectedSegments  int
	FaultFreeSegments int
	FalsePositives    int
}

// EvaluateDataset runs the full §V protocol for one dataset spec.
func EvaluateDataset(spec simhome.Spec, seed int64, proto Protocol) (*DatasetResult, error) {
	t, err := Train(spec, seed, proto)
	if err != nil {
		return nil, err
	}
	return EvaluateTrained(t)
}

// EvaluateTrained runs the protocol against an existing precomputation.
func EvaluateTrained(t *Trained) (*DatasetResult, error) {
	proto := t.Protocol
	r := &DatasetResult{
		Name:                 t.Home.Spec().Name,
		NumSensors:           t.Home.Registry().NumSensors(),
		NumGroups:            t.Context.NumGroups(),
		Degree:               t.Context.CorrelationDegree(),
		TrainTime:            t.TrainTime,
		DetectMinutesByCheck: make(map[string]float64),
		DetectByType:         make(map[string][2]int),
	}

	// Fault-free pass over every distinct segment (precision).
	var corrT, transT, identT MeanAccumulator
	falsePos := 0
	for seg := 0; seg < t.NumSegments(); seg++ {
		out, err := t.RunSegment(seg, nil)
		if err != nil {
			return nil, err
		}
		if out.Detected {
			falsePos++
		}
		corrT.Add(float64(out.MeanCorrelation))
		transT.Add(float64(out.MeanTransition))
		identT.Add(float64(out.MeanIdentify))
	}
	r.FaultFreeSegments = t.NumSegments()
	r.FalsePositives = falsePos
	fpRate := float64(falsePos) / float64(t.NumSegments())

	// Faulty pass: Trials segments, cycling through the distinct segments
	// with a fresh random fault each trial (§4.2: sensor, fault type, and
	// insertion time chosen randomly).
	var detLatency, identLatency MeanAccumulator
	latencyByCheck := map[string]*MeanAccumulator{
		"correlation": {}, "transition": {},
	}
	minutesPerWindow := float64(proto.WindowsPerAggregate)
	for trial := 0; trial < proto.Trials; trial++ {
		fs, err := t.PlanFaults(trial)
		if err != nil {
			return nil, err
		}
		inj, err := t.InjectorFor(trial, fs)
		if err != nil {
			return nil, err
		}
		out, err := t.RunSegment(trial%t.NumSegments(), inj)
		if err != nil {
			return nil, err
		}
		r.FaultySegments++
		onset := fs[0].Onset
		for _, f := range fs[1:] {
			if f.Onset < onset {
				onset = f.Onset
			}
		}
		typeName := fs[0].Type.String()
		if out.Detected {
			r.DetectedSegments++
			r.Detection.AddTP(1)
			lat := float64(out.DetectedWindow-onset) * minutesPerWindow
			if lat < 0 {
				lat = 0
			}
			detLatency.Add(lat)
			family := "correlation"
			if out.Cause.IsTransition() {
				family = "transition"
			}
			latencyByCheck[family].Add(lat)
			cnt := r.DetectByType[typeName]
			if family == "correlation" {
				cnt[0]++
			} else {
				cnt[1]++
			}
			r.DetectByType[typeName] = cnt
		} else {
			r.Detection.AddFN(1)
		}
		// Identification scoring: micro-averaged set overlap between the
		// first alert and the injected devices.
		actual := make(map[int]bool, len(fs))
		for _, f := range fs {
			actual[int(f.Device)] = true
		}
		if out.Identified != nil {
			hits := 0
			for _, id := range out.Identified {
				if actual[int(id)] {
					hits++
				}
			}
			r.Identification.AddTP(float64(hits))
			r.Identification.AddFP(float64(len(out.Identified) - hits))
			r.Identification.AddFN(float64(len(fs) - hits))
			identLatency.Add(float64(out.IdentifiedWindow-onset) * minutesPerWindow)
		} else {
			r.Identification.AddFN(float64(len(fs)))
		}
	}
	// Detection false positives: the fault-free FP rate scaled to the same
	// number of trials, so precision is comparable to the paper's
	// 100-vs-100 protocol even when the recording has fewer distinct
	// segments.
	r.Detection.AddFP(fpRate * float64(proto.Trials))

	r.MeanDetectMinutes = detLatency.Mean()
	r.MeanIdentifyMinutes = identLatency.Mean()
	for k, acc := range latencyByCheck {
		if acc.N() > 0 {
			r.DetectMinutesByCheck[k] = acc.Mean()
		}
	}
	r.CorrelationCheckTime = time.Duration(corrT.Mean())
	r.TransitionCheckTime = time.Duration(transT.Mean())
	r.IdentifyTime = time.Duration(identT.Mean())
	return r, nil
}

// EvaluateAll runs the protocol for every dataset spec given.
func EvaluateAll(specs []simhome.Spec, seed int64, proto Protocol) ([]*DatasetResult, error) {
	out := make([]*DatasetResult, 0, len(specs))
	for _, s := range specs {
		r, err := EvaluateDataset(s, seed, proto)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// ActuatorProtocol adapts a protocol for the §5.1.3 actuator-fault
// experiment.
func ActuatorProtocol(p Protocol) Protocol {
	p.FaultClasses = faults.ActuatorTypes()
	return p
}

// MultiFaultProtocol adapts a protocol for the §VI multi-fault experiment:
// up to n simultaneous faults with numThre = n.
func MultiFaultProtocol(p Protocol, n int) Protocol {
	p.FaultsPerSegment = n
	p.Config.MaxFaults = n
	return p
}

// AblationResult captures one parameter-sweep cell (§VI "impact of
// different parameters").
type AblationResult struct {
	Label               string
	PrecomputeHours     int
	SegmentHours        int
	DurationMinutes     int
	Detection           Metrics
	Identification      Metrics
	MeanDetectMinutes   float64
	MeanIdentifyMinutes float64
	NumGroups           int
}

// RunAblation evaluates one parameter variation on a dataset.
func RunAblation(spec simhome.Spec, seed int64, proto Protocol, label string) (*AblationResult, error) {
	r, err := EvaluateDataset(spec, seed, proto)
	if err != nil {
		return nil, err
	}
	return &AblationResult{
		Label:               label,
		PrecomputeHours:     proto.normalize().PrecomputeHours,
		SegmentHours:        proto.normalize().SegmentHours,
		DurationMinutes:     proto.normalize().WindowsPerAggregate,
		Detection:           r.Detection,
		Identification:      r.Identification,
		MeanDetectMinutes:   r.MeanDetectMinutes,
		MeanIdentifyMinutes: r.MeanIdentifyMinutes,
		NumGroups:           r.NumGroups,
	}, nil
}
