package eval

import (
	"time"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/simhome"
)

// DatasetResult aggregates every per-dataset quantity the paper reports:
// Fig 5.1 accuracy, Fig 5.2 latency, Fig 5.3 computation time, Table 5.1
// per-check detection time, Table 5.2 correlation degree, and Fig 5.4
// detection-ratio by fault type.
type DatasetResult struct {
	Name       string
	NumSensors int
	NumGroups  int
	Degree     float64
	TrainTime  time.Duration

	// Detection/identification accuracy (Fig 5.1).
	Detection      Metrics
	Identification Metrics

	// Latency in minutes from fault onset (Fig 5.2).
	MeanDetectMinutes   float64
	MeanIdentifyMinutes float64

	// Detection time split by the check that fired (Table 5.1), minutes.
	DetectMinutesByCheck map[string]float64

	// Mean per-window stage cost (Fig 5.3).
	CorrelationCheckTime time.Duration
	TransitionCheckTime  time.Duration
	IdentifyTime         time.Duration

	// Detection counts per fault type and check family (Fig 5.4).
	// Key: fault type name -> [correlation, transition] counts.
	DetectByType map[string][2]int

	// Raw counts for transparency.
	FaultySegments    int
	DetectedSegments  int
	FaultFreeSegments int
	FalsePositives    int

	// EvalTime is the wall-clock cost of the evaluation passes (fault-free
	// plus faulty), excluding training. With Workers > 1 this shrinks while
	// every metric above stays bit-identical.
	EvalTime time.Duration
	// Workers is the pool size the evaluation actually ran with.
	Workers int
}

// EvaluateDataset runs the full §V protocol for one dataset spec with the
// default worker pool (GOMAXPROCS).
func EvaluateDataset(spec simhome.Spec, seed int64, proto Protocol) (*DatasetResult, error) {
	return EvaluateDatasetWorkers(spec, seed, proto, 0)
}

// EvaluateDatasetWorkers is EvaluateDataset with an explicit worker count
// (<= 0 means GOMAXPROCS).
func EvaluateDatasetWorkers(spec simhome.Spec, seed int64, proto Protocol, workers int) (*DatasetResult, error) {
	t, err := Train(spec, seed, proto)
	if err != nil {
		return nil, err
	}
	return EvaluateTrainedWorkers(t, workers)
}

// EvaluateTrained runs the protocol against an existing precomputation with
// the default worker pool (GOMAXPROCS).
func EvaluateTrained(t *Trained) (*DatasetResult, error) {
	return EvaluateTrainedWorkers(t, 0)
}

// trialRun carries one faulty trial's plan and outcome from the worker pool
// to the serial fold.
type trialRun struct {
	fs  []faults.Fault
	out SegmentOutcome
}

// EvaluateTrainedWorkers runs the protocol against an existing
// precomputation, fanning the fault-free segments and the faulty trials
// across a pool of workers goroutines (<= 0 means GOMAXPROCS).
//
// Determinism guarantee: every per-trial random draw is derived from the
// protocol seed and the trial index alone (PlanFaults, InjectorFor, and the
// simulator's hashed sampling), workers write their outcomes into
// index-addressed slots, and all aggregation happens afterwards in a single
// serial fold over those slots in index order. The resulting DatasetResult
// metrics are therefore bit-identical at any worker count; only the
// wall-clock fields (TrainTime, EvalTime, and the per-stage timing means)
// vary run to run.
func EvaluateTrainedWorkers(t *Trained, workers int) (*DatasetResult, error) {
	proto := t.Protocol
	r := &DatasetResult{
		Name:                 t.Home.Spec().Name,
		NumSensors:           t.Home.Registry().NumSensors(),
		NumGroups:            t.Context.NumGroups(),
		Degree:               t.Context.CorrelationDegree(),
		TrainTime:            t.TrainTime,
		DetectMinutesByCheck: make(map[string]float64),
		DetectByType:         make(map[string][2]int),
		Workers:              resolveWorkers(workers, proto.Trials+t.NumSegments()),
	}
	evalStart := time.Now()

	// PlanFaults lazily builds the shared fault-pool binarizer; force it
	// before the fan-out so workers only read the Trained.
	if err := t.ensureBinarizer(); err != nil {
		return nil, err
	}

	// Fault-free pass over every distinct segment (precision).
	segOuts := make([]SegmentOutcome, t.NumSegments())
	err := forEachIndex(workers, t.NumSegments(), func(seg int) error {
		out, err := t.RunSegment(seg, nil)
		segOuts[seg] = out
		return err
	})
	if err != nil {
		return nil, err
	}
	var corrT, transT, identT MeanAccumulator
	falsePos := 0
	for _, out := range segOuts {
		if out.Detected {
			falsePos++
		}
		corrT.Add(float64(out.MeanCorrelation))
		transT.Add(float64(out.MeanTransition))
		identT.Add(float64(out.MeanIdentify))
	}
	r.FaultFreeSegments = t.NumSegments()
	r.FalsePositives = falsePos
	fpRate := float64(falsePos) / float64(t.NumSegments())

	// Faulty pass: Trials segments, cycling through the distinct segments
	// with a fresh random fault each trial (§4.2: sensor, fault type, and
	// insertion time chosen randomly). Each trial is independent — a fresh
	// detector over a read-only context and a purely functional simulated
	// home — so trials fan out, and the fold below runs serially in trial
	// order for bit-identical aggregation.
	trials := make([]trialRun, proto.Trials)
	err = forEachIndex(workers, proto.Trials, func(trial int) error {
		fs, err := t.PlanFaults(trial)
		if err != nil {
			return err
		}
		inj, err := t.InjectorFor(trial, fs)
		if err != nil {
			return err
		}
		out, err := t.RunSegment(trial%t.NumSegments(), inj)
		if err != nil {
			return err
		}
		trials[trial] = trialRun{fs: fs, out: out}
		return nil
	})
	if err != nil {
		return nil, err
	}

	var detLatency, identLatency MeanAccumulator
	latencyByCheck := map[string]*MeanAccumulator{
		core.FamilyCorrelation: {}, core.FamilyTransition: {},
	}
	minutesPerWindow := float64(proto.WindowsPerAggregate)
	for trial := 0; trial < proto.Trials; trial++ {
		fs, out := trials[trial].fs, trials[trial].out
		r.FaultySegments++
		onset := fs[0].Onset
		for _, f := range fs[1:] {
			if f.Onset < onset {
				onset = f.Onset
			}
		}
		typeName := fs[0].Type.String()
		if out.Detected {
			r.DetectedSegments++
			r.Detection.AddTP(1)
			lat := float64(out.DetectedWindow-onset) * minutesPerWindow
			if lat < 0 {
				lat = 0
			}
			detLatency.Add(lat)
			family := out.Cause.Family()
			latencyByCheck[family].Add(lat)
			cnt := r.DetectByType[typeName]
			if family == core.FamilyCorrelation {
				cnt[0]++
			} else {
				cnt[1]++
			}
			r.DetectByType[typeName] = cnt
		} else {
			r.Detection.AddFN(1)
		}
		// Identification scoring: micro-averaged set overlap between the
		// first alert and the injected devices.
		actual := make(map[int]bool, len(fs))
		for _, f := range fs {
			actual[int(f.Device)] = true
		}
		if out.Identified != nil {
			hits := 0
			for _, id := range out.Identified {
				if actual[int(id)] {
					hits++
				}
			}
			r.Identification.AddTP(float64(hits))
			r.Identification.AddFP(float64(len(out.Identified) - hits))
			r.Identification.AddFN(float64(len(fs) - hits))
			identLatency.Add(float64(out.IdentifiedWindow-onset) * minutesPerWindow)
		} else {
			r.Identification.AddFN(float64(len(fs)))
		}
	}
	// Detection false positives: the fault-free FP rate scaled to the same
	// number of trials, so precision is comparable to the paper's
	// 100-vs-100 protocol even when the recording has fewer distinct
	// segments.
	r.Detection.AddFP(fpRate * float64(proto.Trials))

	r.MeanDetectMinutes = detLatency.Mean()
	r.MeanIdentifyMinutes = identLatency.Mean()
	for k, acc := range latencyByCheck {
		if acc.N() > 0 {
			r.DetectMinutesByCheck[k] = acc.Mean()
		}
	}
	r.CorrelationCheckTime = time.Duration(corrT.Mean())
	r.TransitionCheckTime = time.Duration(transT.Mean())
	r.IdentifyTime = time.Duration(identT.Mean())
	r.EvalTime = time.Since(evalStart)
	return r, nil
}

// EvaluateAll runs the protocol for every dataset spec given, fanning each
// dataset's segments and trials across workers goroutines (<= 0 means
// GOMAXPROCS). Datasets run in order — training is inherently serial — and
// progress, when non-nil, is called with each dataset's name before its run.
func EvaluateAll(specs []simhome.Spec, seed int64, proto Protocol, workers int, progress func(name string)) ([]*DatasetResult, error) {
	out := make([]*DatasetResult, 0, len(specs))
	for _, s := range specs {
		if progress != nil {
			progress(s.Name)
		}
		r, err := EvaluateDatasetWorkers(s, seed, proto, workers)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// ActuatorProtocol adapts a protocol for the §5.1.3 actuator-fault
// experiment.
func ActuatorProtocol(p Protocol) Protocol {
	p.FaultClasses = faults.ActuatorTypes()
	return p
}

// MultiFaultProtocol adapts a protocol for the §VI multi-fault experiment:
// up to n simultaneous faults with numThre = n.
func MultiFaultProtocol(p Protocol, n int) Protocol {
	p.FaultsPerSegment = n
	p.Config.MaxFaults = n
	return p
}

// AblationResult captures one parameter-sweep cell (§VI "impact of
// different parameters").
type AblationResult struct {
	Label               string
	PrecomputeHours     int
	SegmentHours        int
	DurationMinutes     int
	Detection           Metrics
	Identification      Metrics
	MeanDetectMinutes   float64
	MeanIdentifyMinutes float64
	NumGroups           int
}

// RunAblation evaluates one parameter variation on a dataset.
func RunAblation(spec simhome.Spec, seed int64, proto Protocol, label string) (*AblationResult, error) {
	r, err := EvaluateDataset(spec, seed, proto)
	if err != nil {
		return nil, err
	}
	return &AblationResult{
		Label:               label,
		PrecomputeHours:     proto.normalize().PrecomputeHours,
		SegmentHours:        proto.normalize().SegmentHours,
		DurationMinutes:     proto.normalize().WindowsPerAggregate,
		Detection:           r.Detection,
		Identification:      r.Identification,
		MeanDetectMinutes:   r.MeanDetectMinutes,
		MeanIdentifyMinutes: r.MeanIdentifyMinutes,
		NumGroups:           r.NumGroups,
	}, nil
}
