package eval

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// resolveWorkers maps a caller-supplied worker count to an effective pool
// size: <= 0 means GOMAXPROCS, and the pool never exceeds the number of
// work items.
func resolveWorkers(workers, items int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > items {
		workers = items
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// forEachIndex runs fn(0), ..., fn(n-1) across a pool of workers goroutines
// pulling indices from a shared counter. Results must be written by fn into
// caller-owned, index-addressed storage: with every per-index output slotted
// by index and all randomness derived from the index (as PlanFaults and
// InjectorFor already do), the outcome is bit-identical at any worker count —
// only the execution order varies. When an error occurs the remaining
// indices may be skipped; the error reported is the one raised at the lowest
// index, so failures are deterministic too.
func forEachIndex(workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	workers = resolveWorkers(workers, n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		next   atomic.Int64
		failed atomic.Bool
		wg     sync.WaitGroup
		mu     sync.Mutex
		errAt  = -1
		outErr error
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || failed.Load() {
					return
				}
				if err := fn(i); err != nil {
					mu.Lock()
					if errAt < 0 || i < errAt {
						errAt, outErr = i, err
					}
					mu.Unlock()
					failed.Store(true)
				}
			}
		}()
	}
	wg.Wait()
	return outErr
}
